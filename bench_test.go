// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper (each regenerates the experiment's rows
// at a fast scale; cmd/gss-bench runs the same code at any scale up to
// paper size), plus micro-benchmarks of the core sketch operations.
//
//	go test -bench=. -benchmem
package repro

import (
	"io"
	"testing"

	"repro/internal/adjlist"
	"repro/internal/experiments"
	"repro/internal/gss"
	"repro/internal/stream"
	"repro/internal/tcm"
)

// benchOpt keeps each experiment iteration around a second.
func benchOpt() experiments.Options {
	return experiments.Options{Scale: 0.004, QuerySample: 50, Seed: 1}
}

func runExperiment(b *testing.B, fn func(experiments.Options) []experiments.Table) {
	b.Helper()
	b.ReportAllocs()
	var tables []experiments.Table
	for i := 0; i < b.N; i++ {
		tables = fn(benchOpt())
	}
	// Surface the headline number of the last table so bench output is
	// readable on its own.
	if len(tables) > 0 && len(tables[0].Rows) > 0 {
		row := tables[0].Rows[len(tables[0].Rows)-1]
		if len(row) > 1 {
			b.ReportMetric(row[1], "headline")
		}
	}
	_ = io.Discard
}

// Benchmarks regenerating each figure/table (see DESIGN.md §4 for the
// experiment index).

func BenchmarkFig03Theory(b *testing.B)             { runExperiment(b, experiments.Fig03) }
func BenchmarkFig08EdgeQueryARE(b *testing.B)       { runExperiment(b, experiments.Fig08) }
func BenchmarkFig09PrecursorPrecision(b *testing.B) { runExperiment(b, experiments.Fig09) }
func BenchmarkFig10SuccessorPrecision(b *testing.B) { runExperiment(b, experiments.Fig10) }
func BenchmarkFig11NodeQueryARE(b *testing.B)       { runExperiment(b, experiments.Fig11) }
func BenchmarkFig12Reachability(b *testing.B)       { runExperiment(b, experiments.Fig12) }
func BenchmarkFig13BufferPercentage(b *testing.B)   { runExperiment(b, experiments.Fig13) }
func BenchmarkTable1UpdateSpeed(b *testing.B)       { runExperiment(b, experiments.Table1) }
func BenchmarkFig14Triangle(b *testing.B)           { runExperiment(b, experiments.Fig14) }
func BenchmarkFig15Subgraph(b *testing.B)           { runExperiment(b, experiments.Fig15) }

// Ablation benches for the design choices DESIGN.md §5 calls out.

func BenchmarkAblationFingerprint(b *testing.B) { runExperiment(b, experiments.Ablation) }
func BenchmarkValidateTheory(b *testing.B)      { runExperiment(b, experiments.Validate) }
func BenchmarkEdgeOnlyBaselines(b *testing.B)   { runExperiment(b, experiments.EdgeOnly) }
func BenchmarkGMatrixBaseline(b *testing.B)     { runExperiment(b, experiments.GMatrix) }

func ablationInsertBench(b *testing.B, cfg gss.Config) {
	b.Helper()
	items := stream.Generate(stream.CitHepPh().Scaled(0.01))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := gss.MustNew(cfg)
		for _, it := range items {
			g.Insert(it)
		}
	}
}

func BenchmarkAblationSquareHash(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		ablationInsertBench(b, gss.Config{Width: 72, Rooms: 2, SeqLen: 8, Candidates: 8})
	})
	b.Run("off", func(b *testing.B) {
		ablationInsertBench(b, gss.Config{Width: 72, Rooms: 2, DisableSquareHash: true})
	})
}

func BenchmarkAblationSampling(b *testing.B) {
	b.Run("on", func(b *testing.B) {
		ablationInsertBench(b, gss.Config{Width: 72, Rooms: 2, SeqLen: 8, Candidates: 8})
	})
	b.Run("off", func(b *testing.B) {
		ablationInsertBench(b, gss.Config{Width: 72, Rooms: 2, SeqLen: 8, DisableSampling: true})
	})
}

func BenchmarkAblationRooms(b *testing.B) {
	for _, rooms := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "rooms1", 2: "rooms2", 4: "rooms4"}[rooms], func(b *testing.B) {
			ablationInsertBench(b, gss.Config{Width: 72, Rooms: rooms, SeqLen: 8, Candidates: 8})
		})
	}
}

// Micro-benchmarks of the core operations (per-op costs behind Table I).

func benchStream() []stream.Item {
	return stream.Generate(stream.CitHepPh().Scaled(0.02))
}

func BenchmarkGSSInsert(b *testing.B) {
	items := benchStream()
	g := gss.MustNew(gss.Config{Width: 128, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Insert(items[i%len(items)])
	}
}

func BenchmarkGSSEdgeQuery(b *testing.B) {
	items := benchStream()
	g := gss.MustNew(gss.Config{Width: 128, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	for _, it := range items {
		g.Insert(it)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		g.EdgeWeight(it.Src, it.Dst)
	}
}

func BenchmarkGSSSuccessorQuery(b *testing.B) {
	items := benchStream()
	g := gss.MustNew(gss.Config{Width: 128, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	for _, it := range items {
		g.Insert(it)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Successors(items[i%len(items)].Src)
	}
}

func BenchmarkTCMInsert(b *testing.B) {
	items := benchStream()
	t := tcm.MustNew(tcm.Config{Width: 512, Depth: 4})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(items[i%len(items)])
	}
}

func BenchmarkAdjacencyListInsert(b *testing.B) {
	items := benchStream()
	b.ReportAllocs()
	b.ResetTimer()
	c := adjlist.NewClassic()
	for i := 0; i < b.N; i++ {
		it := items[i%len(items)]
		c.Insert(it.Src, it.Dst, it.Weight)
	}
}
