// Patterns: the §VII-I subgraph-matching pipeline on a labeled log
// window. A security team describes a suspicious login-pivot-exfil
// shape as a labeled pattern; VF2 searches for it through a GSS view of
// the window at a fraction of the window's memory.
//
//	go run ./examples/patterns
package main

import (
	"fmt"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/sjtree"
	"repro/internal/stream"
	"repro/internal/vf2"
)

// Edge labels for the log events.
const (
	labelLogin = 1
	labelExec  = 2
	labelCopy  = 3
)

func main() {
	// A window of labeled events. Planted attack: workstation logs into
	// a server, the server executes on a second server, which copies
	// data out to an external host.
	events := []stream.Item{
		{Src: "ws-17", Dst: "srv-a", Label: labelLogin},
		{Src: "srv-a", Dst: "srv-b", Label: labelExec},
		{Src: "srv-b", Dst: "ext-99", Label: labelCopy},
		// Benign background chatter.
		{Src: "ws-2", Dst: "srv-a", Label: labelLogin},
		{Src: "ws-3", Dst: "srv-b", Label: labelLogin},
		{Src: "srv-a", Dst: "srv-c", Label: labelExec},
		{Src: "srv-c", Dst: "nas-1", Label: labelCopy},
		{Src: "ws-2", Dst: "srv-c", Label: labelLogin},
	}
	win := sjtree.NewWindow(events)

	// Summarize the window in a GSS; weight carries the label.
	g := gss.MustNew(gss.Config{Width: 16, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4})
	for _, e := range win.Edges() {
		g.InsertEdge(e.Src, e.Dst, int64(e.Label))
	}
	view := query.NewLabeledView(g)

	// The attack shape: login -> exec -> copy along a directed chain.
	attack := vf2.Pattern{N: 4, Edges: []vf2.Edge{
		{From: 0, To: 1, Label: labelLogin},
		{From: 1, To: 2, Label: labelExec},
		{From: 2, To: 3, Label: labelCopy},
	}}
	assign, found := vf2.FindOne(view, attack)
	if !found {
		fmt.Println("no attack chain found")
		return
	}
	fmt.Printf("attack chain found: %s -login-> %s -exec-> %s -copy-> %s\n",
		assign[0], assign[1], assign[2], assign[3])

	// Cross-check against the exact window (the §VII-I correctness
	// criterion): every matched edge must really exist with its label.
	valid := true
	for _, e := range attack.Edges {
		if l, ok := win.EdgeLabel(assign[e.From], assign[e.To]); !ok || l != e.Label {
			valid = false
		}
	}
	fmt.Printf("match verified against the exact window: %v\n", valid)

	// A shape that should NOT exist in this window: two chained execs.
	benignCheck := vf2.Pattern{N: 3, Edges: []vf2.Edge{
		{From: 0, To: 1, Label: labelExec},
		{From: 1, To: 2, Label: labelExec},
	}}
	if _, found := vf2.FindOne(view, benignCheck); found {
		fmt.Println("exec->exec chain present (unexpected)")
	} else {
		fmt.Println("no exec->exec chain in this window (as expected)")
	}
}
