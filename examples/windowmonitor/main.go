// Windowmonitor: sliding-window summarization of an unbounded stream,
// deployed the way an operations dashboard would actually consume it —
// through the HTTP server's "windowed" backend. Collectors ship
// timestamped NDJSON to /ingest; the dashboard asks "who talked to
// whom in the last hour" over the query API; generation sketches
// rotate out as stream time advances, so memory stays bounded while
// queries always cover the most recent window.
//
//	go run ./examples/windowmonitor
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"

	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/stream"
)

func main() {
	// One hour of coverage in four 15-minute generations (time is in
	// seconds here), served over HTTP. httptest stands in for the
	// network: the traffic is byte-for-byte what remote collectors
	// would send.
	srv, err := server.NewWithOptions(
		gss.Config{Width: 128, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8},
		server.Options{Backend: "windowed", WindowSpan: 3600, WindowGenerations: 4,
			BatchSize: 1000})
	if err != nil {
		fail(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Simulate six hours of traffic: a persistent chatter pair, plus a
	// burst that happens only in hour two. Shipped in hourly NDJSON
	// uploads, as a collector flushing its spool would. Timestamps are
	// based at an arbitrary epoch second — time 0 on the wire means
	// "no timestamp, stamp on arrival", which is not what a replay
	// wants for its very first item.
	const base = int64(1_000_000)
	var flows []stream.Item
	flush := func() {
		var body bytes.Buffer
		if err := stream.EncodeNDJSON(&body, flows); err != nil {
			fail(err)
		}
		resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", &body)
		if err != nil {
			fail(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("ingest status %d", resp.StatusCode))
		}
		flows = flows[:0]
	}
	for tick := int64(0); tick < 6*3600; tick += 10 {
		flows = append(flows, stream.Item{Src: "app-frontend", Dst: "app-backend", Time: base + tick, Weight: 1})
		if tick >= 3600 && tick < 7200 {
			flows = append(flows, stream.Item{Src: "cron-job", Dst: "object-store", Time: base + tick, Weight: 20})
		}
		if tick%3600 == 3590 {
			flush()
		}
	}
	flush()

	// At the end of the run, the burst is hours outside the window and
	// must be gone; the persistent pair is still visible with roughly
	// one hour's worth of weight.
	var edge struct {
		Weight int64 `json:"weight"`
		Found  bool  `json:"found"`
	}
	getJSON(ts.URL+"/edge?src=cron-job&dst=object-store", &edge)
	if edge.Found {
		fmt.Println("burst still visible (unexpected)")
	} else {
		fmt.Println("hour-two burst correctly expired from the window")
	}
	getJSON(ts.URL+"/edge?src=app-frontend&dst=app-backend", &edge)
	fmt.Printf("frontend->backend messages in the last hour: ~%d (one hour is 360 ticks)\n", edge.Weight)

	var st gss.Stats
	getJSON(ts.URL+"/stats", &st)
	fmt.Printf("live generations: %d/4, expired: %d (%d items rotated out), bounded memory: %d KB\n",
		st.LiveGenerations, st.ExpiredGenerations, st.ExpiredItems, st.MatrixBytes/1024)

	var succ struct {
		Nodes []string `json:"nodes"`
	}
	getJSON(ts.URL+"/successors?v=app-frontend", &succ)
	fmt.Printf("current peers of app-frontend: %v\n", succ.Nodes)
}

func getJSON(url string, out interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("GET %s: status %d", url, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "windowmonitor:", err)
	os.Exit(1)
}
