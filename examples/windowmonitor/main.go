// Windowmonitor: sliding-window summarization of an unbounded stream —
// the extension in internal/window. An operations dashboard wants "who
// talked to whom in the last hour" without ever storing the stream:
// generation sketches rotate out as time advances, so memory stays
// bounded while queries always cover the most recent window.
//
//	go run ./examples/windowmonitor
package main

import (
	"fmt"

	"repro/internal/gss"
	"repro/internal/stream"
	"repro/internal/window"
)

func main() {
	// One hour of coverage in four 15-minute generations (time is in
	// seconds here).
	w := window.MustNew(window.Config{
		Sketch:      gss.Config{Width: 128, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8},
		Span:        3600,
		Generations: 4,
	})

	// Simulate six hours of traffic: a persistent chatter pair, plus a
	// burst that happens only in hour two.
	for tick := int64(0); tick < 6*3600; tick += 10 {
		w.Insert(stream.Item{Src: "app-frontend", Dst: "app-backend", Time: tick, Weight: 1})
		if tick >= 3600 && tick < 7200 {
			w.Insert(stream.Item{Src: "cron-job", Dst: "object-store", Time: tick, Weight: 20})
		}
	}

	// At the end of the run, the burst is hours outside the window and
	// must be gone; the persistent pair is still visible with roughly
	// one hour's worth of weight.
	if _, ok := w.EdgeWeight("cron-job", "object-store"); ok {
		fmt.Println("burst still visible (unexpected)")
	} else {
		fmt.Println("hour-two burst correctly expired from the window")
	}
	chat, _ := w.EdgeWeight("app-frontend", "app-backend")
	fmt.Printf("frontend->backend messages in the last hour: ~%d (one hour is 360 ticks)\n", chat)
	fmt.Printf("live generations: %d, bounded memory: %d KB\n",
		w.LiveGenerations(), w.MemoryBytes()/1024)
	fmt.Printf("current peers of app-frontend: %v\n", w.Successors("app-frontend"))
}
