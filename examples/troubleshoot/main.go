// Troubleshoot: use case 3 of the paper — real-time troubleshooting in
// a data center from communication logs. The sketch summarizes the log
// stream; traversal queries answer "can messages from service A reach
// service B", and edge queries recover per-link detail, without
// retaining the log.
//
//	go run ./examples/troubleshoot
package main

import (
	"fmt"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

func main() {
	g := gss.MustNew(gss.Config{Width: 128, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})

	// A day of communication log entries across a small service mesh.
	// Weight counts messages on the link.
	logs := []stream.Item{
		{Src: "web-1", Dst: "api-1", Weight: 1200}, {Src: "web-2", Dst: "api-1", Weight: 900},
		{Src: "api-1", Dst: "auth", Weight: 2100}, {Src: "api-1", Dst: "cache-1", Weight: 1800},
		{Src: "cache-1", Dst: "db-primary", Weight: 340}, {Src: "api-1", Dst: "queue", Weight: 760},
		{Src: "queue", Dst: "worker-1", Weight: 700}, {Src: "queue", Dst: "worker-2", Weight: 720},
		{Src: "worker-1", Dst: "db-primary", Weight: 410}, {Src: "worker-2", Dst: "db-replica", Weight: 390},
		{Src: "auth", Dst: "db-primary", Weight: 150}, {Src: "batch", Dst: "db-replica", Weight: 80},
	}
	for _, it := range logs {
		g.Insert(it)
	}

	// Ticket: "writes from web-1 never land in db-replica". Traversal
	// query over the summarized topology:
	for _, dst := range []string{"db-primary", "db-replica"} {
		ok := query.Reachable(g, "web-1", dst)
		fmt.Printf("web-1 -> %s reachable: %v", dst, ok)
		if ok {
			fmt.Printf("  via %v", query.Path(g, "web-1", dst))
		}
		fmt.Println()
	}
	// Root cause: the replica is fed only by worker-2 and batch.
	fmt.Printf("writers to db-replica: %v\n", g.Precursors("db-replica"))

	// Edge query: per-link message counts for the suspect hop.
	w, _ := g.EdgeWeight("queue", "worker-2")
	fmt.Printf("queue -> worker-2 carried %d messages\n", w)

	// Which services does the api node fan out to, and how hot is it?
	fmt.Printf("api-1 downstreams: %v (out volume %d)\n",
		g.Successors("api-1"), query.NodeOut(g, "api-1"))
}
