// Quickstart: build a Graph Stream Sketch over a small stream, run the
// three query primitives and a couple of compound queries, and compare
// against exact answers.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/adjlist"
	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

func main() {
	// The sample graph stream of the paper's Fig. 1.
	items := []stream.Item{
		{Src: "a", Dst: "b", Time: 1, Weight: 1}, {Src: "a", Dst: "c", Time: 2, Weight: 1},
		{Src: "b", Dst: "d", Time: 3, Weight: 1}, {Src: "a", Dst: "c", Time: 4, Weight: 1},
		{Src: "a", Dst: "f", Time: 5, Weight: 1}, {Src: "c", Dst: "f", Time: 6, Weight: 1},
		{Src: "a", Dst: "e", Time: 7, Weight: 1}, {Src: "a", Dst: "c", Time: 8, Weight: 3},
		{Src: "c", Dst: "f", Time: 9, Weight: 1}, {Src: "d", Dst: "a", Time: 10, Weight: 1},
		{Src: "d", Dst: "f", Time: 11, Weight: 1}, {Src: "f", Dst: "e", Time: 12, Weight: 3},
		{Src: "a", Dst: "g", Time: 13, Weight: 1}, {Src: "e", Dst: "b", Time: 14, Weight: 2},
		{Src: "d", Dst: "a", Time: 15, Weight: 1},
	}

	// A GSS sized like the paper's running example: a small matrix plus
	// fingerprints gives a node-hash range far beyond the matrix width.
	g := gss.MustNew(gss.Config{Width: 16, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4})
	exact := adjlist.New()
	for _, it := range items {
		g.Insert(it)
		exact.Insert(it.Src, it.Dst, it.Weight)
	}

	// Primitive 1: edge query. The repeated (a,c) items sum to 5.
	w, ok := g.EdgeWeight("a", "c")
	truth, _ := exact.EdgeWeight("a", "c")
	fmt.Printf("edge (a,c): sketch=%d exact=%d found=%v\n", w, truth, ok)

	// Primitive 2 and 3: 1-hop successors and precursors.
	fmt.Printf("successors(a): %v\n", g.Successors("a"))
	fmt.Printf("precursors(f): %v\n", g.Precursors("f"))

	// Compound queries built from the primitives (package query).
	fmt.Printf("node query out(a): sketch=%d exact=%d\n",
		query.NodeOut(g, "a"), exact.NodeOutWeight("a"))
	fmt.Printf("reachable a->e: sketch=%v exact=%v\n",
		query.Reachable(g, "a", "e"), exact.Reachable("a", "e"))
	fmt.Printf("path a->e: %v\n", query.Path(g, "a", "e"))

	// Sketch health.
	s := g.Stats()
	fmt.Printf("sketch: %d edges in matrix, %d in buffer, occupancy %.1f%%, %d bytes\n",
		s.MatrixEdges, s.BufferEdges, 100*s.Occupancy, s.MatrixBytes)
}
