// Cluster: three unmodified gss-server members behind the rendezvous
// router, plus a follower replica covering one of them — the smallest
// deployment that shows partitioned ingest, scatter-gather queries and
// fail-over working together. A stream is pushed through the router,
// cluster-wide queries are answered, then member 0 is killed without
// ceremony: reads for its partition swap to the follower while writes
// for it answer 429 until a primary returns.
//
//	go run ./examples/cluster
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

var cfg = gss.Config{Width: 256, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}

func main() {
	silent := func(string, ...interface{}) {}

	// Three partition primaries. In production each is its own
	// `gss-server -backend sharded` process on its own machine; here
	// they share a process but not a sketch.
	var members []*httptest.Server
	var urls []string
	for i := 0; i < 3; i++ {
		srv, err := server.NewWithOptions(cfg, server.Options{
			Backend: sketch.BackendSharded, Shards: 4, Logf: silent})
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		members = append(members, ts)
		urls = append(urls, ts.URL)
	}

	// A follower replica polling member 0 — the partition we will lose.
	follower, err := server.NewWithOptions(cfg, server.Options{
		Backend: sketch.BackendSharded, Shards: 4,
		FollowURL: urls[0], FollowInterval: 50 * time.Millisecond, Logf: silent})
	if err != nil {
		fail(err)
	}
	defer follower.Close()
	tsF := httptest.NewServer(follower.Handler())
	defer tsF.Close()

	rt, err := cluster.New(cluster.Config{
		Members:       urls,
		Failover:      map[string]string{urls[0]: tsF.URL},
		ProbeInterval: 100 * time.Millisecond,
		Logf:          silent,
	})
	if err != nil {
		fail(err)
	}
	defer rt.Close()
	router := httptest.NewServer(rt.Handler())
	defer router.Close()
	fmt.Printf("cluster up: 3 members + 1 follower behind %s\n\n", router.URL)

	// One stream, one endpoint: the router splits it by source node.
	items := stream.Generate(stream.DatasetConfig{Name: "cluster-demo",
		Nodes: 500, Edges: 20000, DegreeSkew: 1.6, WeightSkew: 1.3,
		MaxWeight: 500, Seed: 9})
	var buf bytes.Buffer
	if err := stream.EncodeNDJSON(&buf, items); err != nil {
		fail(err)
	}
	resp, err := http.Post(router.URL+"/ingest", "application/x-ndjson", &buf)
	if err != nil {
		fail(err)
	}
	var ing struct {
		Ingested int64 `json:"ingested"`
		Members  int   `json:"members"`
	}
	decode(resp, &ing)
	fmt.Printf("ingested %d items across %d members via one NDJSON upload\n", ing.Ingested, ing.Members)

	var st gss.Stats
	decode(get(router.URL+"/stats"), &st)
	fmt.Printf("cluster stats: %d items, %d matrix edges across the ring\n", st.Items, st.MatrixEdges)

	var heavy []struct {
		Srcs   []string `json:"srcs"`
		Dsts   []string `json:"dsts"`
		Weight int64    `json:"weight"`
	}
	decode(get(router.URL+"/heavy?min=2000"), &heavy)
	fmt.Printf("heavy hitters (weight >= 2000): %d sketch edges, merged from all members\n", len(heavy))

	src, dst := items[0].Src, items[len(items)-1].Dst
	var reach struct {
		Reachable bool `json:"reachable"`
	}
	decode(get(router.URL+"/reachable?src="+src+"&dst="+dst), &reach)
	fmt.Printf("reachable(%s -> %s) = %v via multi-round frontier fan-out\n\n", src, dst, reach.Reachable)

	// Let the follower converge, then kill member 0 the hard way.
	time.Sleep(200 * time.Millisecond)
	members[0].Close()
	fmt.Println("member 0 killed (no shutdown courtesy)")

	// Reads for its partition fail over transparently.
	decode(get(router.URL+"/stats"), &st)
	fmt.Printf("cluster stats still whole: %d items (partition 0 served by the follower)\n", st.Items)

	// Writes for the lost partition get backpressure, not silent loss.
	ownedBy0 := ""
	for i := 0; ownedBy0 == ""; i++ {
		key := fmt.Sprintf("probe-%d", i)
		if rt.Ring().Owner(key) == 0 {
			ownedBy0 = key
		}
	}
	body := fmt.Sprintf(`{"src":%q,"dst":"x"}`, ownedBy0)
	resp, err = http.Post(router.URL+"/insert", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		fail(err)
	}
	resp.Body.Close()
	fmt.Printf("write to the lost partition: HTTP %d with Retry-After=%ss — back off and retry\n",
		resp.StatusCode, resp.Header.Get("Retry-After"))

	cs := rt.Stats()
	fmt.Printf("router's view: %d/%d members down, %d reads failed over\n",
		cs.DownMembers, len(cs.Members), cs.Members[0].FailedOverReads)
}

func get(url string) *http.Response {
	resp, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	return resp
}

func decode(resp *http.Response, v interface{}) {
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "cluster example:", err)
	os.Exit(1)
}
