// Failover: durable checkpoints plus a read replica, exercised the way
// an outage actually unfolds. A primary checkpoints to disk while
// ingesting; a follower polls its snapshot and serves reads. Mid-stream
// the primary is killed without ceremony — no final checkpoint — and
// the dashboard keeps getting answers from the follower. The primary
// then restarts over the same checkpoint directory, recovers its last
// durable state, and the follower reconverges on it.
//
//	go run ./examples/failover
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

var cfg = gss.Config{Width: 128, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}

func main() {
	ckptDir, err := os.MkdirTemp("", "gss-failover-")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(ckptDir)

	// The primary listens on a fixed address so the follower's
	// configuration survives the restart, exactly like a service behind
	// a stable host:port in production.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	primaryAddr := ln.Addr().String()
	primaryURL := "http://" + primaryAddr

	// The crashed primary is deliberately never Closed — its in-memory
	// state must die exactly like a real crash would kill it.
	_, stopPrimary := startPrimary(ln, ckptDir)
	fmt.Printf("primary up at %s, checkpointing to %s\n", primaryURL, ckptDir)

	follower, err := server.NewWithOptions(cfg, server.Options{
		Backend: sketch.BackendSharded, Shards: 4,
		FollowURL: primaryURL, FollowInterval: 50 * time.Millisecond,
		Logf: func(string, ...interface{}) {}}) // polls against a dead primary are expected here
	if err != nil {
		fail(err)
	}
	defer follower.Close()
	tsF := httptest.NewServer(follower.Handler())
	defer tsF.Close()
	fmt.Printf("follower up at %s, polling every 50ms\n\n", tsF.URL)

	// Phase 1: stream flows, a checkpoint lands, follower tracks.
	items := exampleStream()
	ingest(primaryURL, items[:6000])
	checkpoint(primaryURL)
	ingest(primaryURL, items[6000:8000]) // the tail a crash will eat
	waitItems(tsF.URL, 8000)
	fmt.Printf("phase 1: primary has %d items (6000 durable in a checkpoint), follower caught up at %d\n",
		statsOf(primaryURL).Items, statsOf(tsF.URL).Items)

	// Phase 2: kill the primary. No Close, no final checkpoint — the
	// 2000 post-checkpoint items die with the process.
	stopPrimary()
	fmt.Println("\nphase 2: primary killed mid-stream (no shutdown courtesy)")
	fmt.Printf("  follower still answers: %d items, heavy edges: %d\n",
		statsOf(tsF.URL).Items, len(heavyOf(tsF.URL, 100)))
	if code := tryWrite(tsF.URL); code == http.StatusForbidden {
		fmt.Println("  follower refuses writes (403): the stream must wait for a primary")
	} else {
		fail(fmt.Errorf("follower accepted a write: status %d", code))
	}

	// Phase 3: restart the primary over the same checkpoint directory
	// and the same address.
	ln2, err := net.Listen("tcp", primaryAddr)
	if err != nil {
		fail(err)
	}
	primary2, stopPrimary2 := startPrimary(ln2, ckptDir)
	defer stopPrimary2()
	defer primary2.Close()
	recovered := statsOf(primaryURL).Items
	fmt.Printf("\nphase 3: primary restarted from newest checkpoint with %d items "+
		"(the %d items after the checkpoint were lost with the crash)\n", recovered, 8000-recovered)

	// The follower reconverges on the recovered primary — the primary
	// is the source of truth, even when the replica was briefly ahead.
	waitItems(tsF.URL, recovered)
	fmt.Printf("  follower reconverged at %d items\n", statsOf(tsF.URL).Items)

	// The stream resumes where operations wants it: collectors replay
	// their unacknowledged tail against the recovered primary.
	ingest(primaryURL, items[6000:10000])
	checkpoint(primaryURL)
	waitItems(tsF.URL, 10000)
	fmt.Printf("\nphase 4: stream resumed; primary at %d items, follower at %d, both consistent\n",
		statsOf(primaryURL).Items, statsOf(tsF.URL).Items)
}

// startPrimary serves a checkpointing sharded primary on ln and
// returns a stop func that kills the listener WITHOUT closing the
// server — the crash in this story.
func startPrimary(ln net.Listener, ckptDir string) (*server.Server, func()) {
	srv, err := server.NewWithOptions(cfg, server.Options{
		Backend: sketch.BackendSharded, Shards: 4,
		CheckpointDir: ckptDir, CheckpointInterval: time.Hour, // durability via explicit /checkpoint below
		Logf: func(string, ...interface{}) {}})
	if err != nil {
		fail(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	return srv, func() { hs.Close() }
}

// exampleStream is a deterministic flow log with a few heavy talkers.
func exampleStream() []stream.Item {
	return stream.Generate(stream.DatasetConfig{Name: "failover", Nodes: 400,
		Edges: 10000, DegreeSkew: 1.5, WeightSkew: 1.3, MaxWeight: 60, Seed: 17})
}

func ingest(baseURL string, items []stream.Item) {
	var body bytes.Buffer
	if err := stream.EncodeNDJSON(&body, items); err != nil {
		fail(err)
	}
	resp, err := http.Post(baseURL+"/ingest", "application/x-ndjson", &body)
	if err != nil {
		fail(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("ingest status %d", resp.StatusCode))
	}
}

func checkpoint(baseURL string) {
	resp, err := http.Post(baseURL+"/checkpoint", "", nil)
	if err != nil {
		fail(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("checkpoint status %d", resp.StatusCode))
	}
}

func tryWrite(baseURL string) int {
	resp, err := http.Post(baseURL+"/insert", "application/json",
		bytes.NewReader([]byte(`{"src":"x","dst":"y"}`)))
	if err != nil {
		fail(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func statsOf(baseURL string) gss.Stats {
	var st gss.Stats
	getJSON(baseURL+"/stats", &st)
	return st
}

func heavyOf(baseURL string, min int64) []json.RawMessage {
	var out []json.RawMessage
	getJSON(fmt.Sprintf("%s/heavy?min=%d", baseURL, min), &out)
	return out
}

// waitItems polls until the server reports n live items.
func waitItems(baseURL string, n int64) {
	deadline := time.Now().Add(10 * time.Second)
	for statsOf(baseURL).Items != n {
		if time.Now().After(deadline) {
			fail(fmt.Errorf("timed out waiting for %d items (at %d)", n, statsOf(baseURL).Items))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getJSON(url string, out interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("GET %s: status %d", url, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "failover:", err)
	os.Exit(1)
}
