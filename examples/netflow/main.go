// Netflow: use case 1 of the paper — summarize high-speed network
// traffic and hunt for malicious behaviour with node and heavy-hitter
// queries, the way a collector fleet would: flows are shipped to the
// sketch server's NDJSON bulk-ingest endpoint in batches and the
// detections run over the HTTP query API.
//
// A synthetic packet stream contains normal Zipfian traffic plus two
// planted anomalies: a port scanner (one source contacting very many
// destinations) and an exfiltration flow (one enormous edge weight).
// The sketch finds both without storing the stream.
//
//	go run ./examples/netflow
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"

	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/stream"
)

func main() {
	// A sharded sketch server, as a heavy-traffic deployment would run
	// it. httptest stands in for the network: the flow is byte-for-byte
	// what a remote collector would send.
	srv, err := server.NewWithOptions(
		gss.Config{Width: 256, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8},
		server.Options{Backend: "sharded", Shards: 4, BatchSize: 1000})
	if err != nil {
		fail(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(7))

	// Background traffic: 40k flows between 2k hosts.
	background := stream.DatasetConfig{Name: "traffic", Nodes: 2000, Edges: 40000,
		DegreeSkew: 1.7, WeightSkew: 1.5, MaxWeight: 900, Seed: 7}
	flows := stream.Generate(background)
	// Planted anomaly 1: one source scans 300 distinct hosts (port scan).
	for i := 0; i < 300; i++ {
		flows = append(flows, packet("scanner", stream.NodeID(rng.Intn(2000)), 1))
	}
	// Planted anomaly 2: one flow moves a huge byte count.
	flows = append(flows, packet("insider", "dropbox-host", 5_000_000))

	// Ship everything through the bulk path: NDJSON bodies of 10k flows
	// each, decoded and inserted server-side in batches of 1000.
	const reqFlows = 10000
	for off := 0; off < len(flows); off += reqFlows {
		end := off + reqFlows
		if end > len(flows) {
			end = len(flows)
		}
		var body bytes.Buffer
		if err := stream.EncodeNDJSON(&body, flows[off:end]); err != nil {
			fail(err)
		}
		resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", &body)
		if err != nil {
			fail(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("ingest status %d", resp.StatusCode))
		}
	}

	// Detection 1: fan-out. The successor primitive gives each host's
	// contact cardinality; the scanner shows up next to the natural
	// traffic hubs, which a baseline of historical fan-outs would
	// filter.
	var hosts struct {
		Nodes []string `json:"nodes"`
	}
	getJSON(ts.URL+"/nodes", &hosts)
	type fanout struct {
		host string
		n    int
	}
	var tops []fanout
	for _, h := range hosts.Nodes {
		var succ struct {
			Nodes []string `json:"nodes"`
		}
		getJSON(ts.URL+"/successors?v="+h, &succ)
		tops = append(tops, fanout{h, len(succ.Nodes)})
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].n > tops[j].n })
	fmt.Println("top fan-outs (scanner planted with 300 contacts):")
	for _, f := range tops[:3] {
		fmt.Printf("  %-8s contacted %d hosts\n", f.host, f.n)
	}

	// Detection 2: byte-volume heavy hitters via the reversible matrix
	// scan — no candidate list needed.
	var heavy []struct {
		Srcs   []string `json:"srcs"`
		Dsts   []string `json:"dsts"`
		Weight int64    `json:"weight"`
	}
	getJSON(ts.URL+"/heavy?min=1000000", &heavy)
	for _, he := range heavy {
		fmt.Printf("heavy flow: %v -> %v moved %d bytes\n", he.Srcs, he.Dsts, he.Weight)
	}

	// Detection 3: aggregate per-host upload volume (node query).
	var out struct {
		Out int64 `json:"out"`
	}
	getJSON(ts.URL+"/nodeout?v=insider", &out)
	fmt.Printf("insider total upload: %d bytes\n", out.Out)

	var s gss.Stats
	getJSON(ts.URL+"/stats", &s)
	fmt.Printf("sketch footprint: %d KB for %d flows (buffer %.4f%%)\n",
		s.MatrixBytes/1024, s.Items, 100*s.BufferPct)
}

func packet(src, dst string, bytes int64) stream.Item {
	return stream.Item{Src: src, Dst: dst, Weight: bytes}
}

func getJSON(url string, out interface{}) {
	resp, err := http.Get(url)
	if err != nil {
		fail(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "netflow:", err)
	os.Exit(1)
}
