// Netflow: use case 1 of the paper — summarize high-speed network
// traffic and hunt for malicious behaviour with node and heavy-hitter
// queries.
//
// A synthetic packet stream contains normal Zipfian traffic plus two
// planted anomalies: a port scanner (one source contacting very many
// destinations) and an exfiltration flow (one enormous edge weight).
// The sketch finds both without storing the stream.
//
//	go run ./examples/netflow
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	g := gss.MustNew(gss.Config{Width: 256, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})

	// Background traffic: 40k flows between 2k hosts.
	background := stream.DatasetConfig{Name: "traffic", Nodes: 2000, Edges: 40000,
		DegreeSkew: 1.7, WeightSkew: 1.5, MaxWeight: 900, Seed: 7}
	for _, it := range stream.Generate(background) {
		g.Insert(packet(it.Src, it.Dst, it.Weight))
	}

	// Planted anomaly 1: 10.9.9.9 scans 300 distinct hosts (port scan).
	for i := 0; i < 300; i++ {
		g.Insert(packet("scanner", stream.NodeID(rng.Intn(2000)), 1))
	}
	// Planted anomaly 2: one flow moves a huge byte count.
	g.Insert(packet("insider", "dropbox-host", 5_000_000))

	// Detection 1: fan-out. The successor primitive gives each host's
	// contact cardinality; the scanner shows up next to the natural
	// traffic hubs, which a baseline of historical fan-outs would
	// filter.
	type fanout struct {
		host string
		n    int
	}
	var tops []fanout
	for _, h := range g.Nodes() {
		tops = append(tops, fanout{h, len(g.Successors(h))})
	}
	sort.Slice(tops, func(i, j int) bool { return tops[i].n > tops[j].n })
	fmt.Println("top fan-outs (scanner planted with 300 contacts):")
	for _, f := range tops[:3] {
		fmt.Printf("  %-8s contacted %d hosts\n", f.host, f.n)
	}

	// Detection 2: byte-volume heavy hitters via the reversible matrix
	// scan — no candidate list needed.
	for _, he := range g.HeavyEdges(1_000_000) {
		fmt.Printf("heavy flow: %v -> %v moved %d bytes\n", he.Srcs, he.Dsts, he.Weight)
	}

	// Detection 3: aggregate per-host upload volume (node query).
	fmt.Printf("insider total upload: %d bytes\n", query.NodeOut(g, "insider"))

	s := g.Stats()
	fmt.Printf("sketch footprint: %d KB for %d flows (buffer %.4f%%)\n",
		s.MatrixBytes/1024, s.Items, 100*s.BufferPct)
}

func packet(src, dst string, bytes int64) stream.Item {
	return stream.Item{Src: src, Dst: dst, Weight: bytes}
}
