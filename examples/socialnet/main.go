// Socialnet: use case 2 of the paper — interaction graphs of a social
// network. The sketch answers friend-suggestion queries (successors of
// successors, ranked by interaction weight) and traces how a post
// spreads through reshares, using only the three query primitives.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"sort"

	"repro/internal/gss"
	"repro/internal/query"
)

func main() {
	g := gss.MustNew(gss.Config{Width: 128, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})

	// Interaction stream: edge weight counts interactions between users.
	interactions := []struct {
		from, to string
		n        int64
	}{
		{"alice", "bob", 12}, {"alice", "carol", 7}, {"bob", "carol", 3},
		{"bob", "dave", 9}, {"carol", "erin", 5}, {"dave", "erin", 2},
		{"erin", "frank", 8}, {"carol", "frank", 1}, {"frank", "grace", 4},
		{"dave", "grace", 6}, {"grace", "alice", 2}, {"heidi", "alice", 3},
	}
	for _, e := range interactions {
		g.InsertEdge(e.from, e.to, e.n)
	}

	// Friend suggestion for alice: people her contacts interact with,
	// whom she does not contact yet, scored by the path weight.
	suggest("alice", g)

	// Spread tracing: who can a post by alice reach, and along which
	// path does it get to frank?
	fmt.Printf("alice can reach frank: %v\n", query.Reachable(g, "alice", "frank"))
	fmt.Printf("spread path: %v\n", query.Path(g, "alice", "frank"))

	// Influence: total outgoing interaction volume per user.
	users := g.Nodes()
	sort.Slice(users, func(i, j int) bool {
		return query.NodeOut(g, users[i]) > query.NodeOut(g, users[j])
	})
	fmt.Println("top influencers by outgoing interactions:")
	for _, u := range users[:3] {
		fmt.Printf("  %-6s %d\n", u, query.NodeOut(g, u))
	}
}

func suggest(user string, g *gss.GSS) {
	direct := map[string]bool{user: true}
	for _, f := range g.Successors(user) {
		direct[f] = true
	}
	scores := map[string]int64{}
	for _, f := range g.Successors(user) {
		w1, _ := g.EdgeWeight(user, f)
		for _, ff := range g.Successors(f) {
			if direct[ff] {
				continue
			}
			w2, _ := g.EdgeWeight(f, ff)
			if s := w1 + w2; s > scores[ff] {
				scores[ff] = s
			}
		}
	}
	type cand struct {
		who   string
		score int64
	}
	var ranked []cand
	for who, s := range scores {
		ranked = append(ranked, cand{who, s})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].who < ranked[j].who
	})
	fmt.Printf("friend suggestions for %s:\n", user)
	for _, c := range ranked {
		fmt.Printf("  %-6s score %d\n", c.who, c.score)
	}
}
