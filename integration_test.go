// End-to-end integration tests across modules: stream file codec ->
// sketch build -> snapshot -> compound queries, matching ground truth.
package repro

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adjlist"
	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/tcm"
)

// TestEndToEndPipeline drives the full production flow: generate a
// stream, persist it to a GSS1 file, re-read it, build the sketch,
// checkpoint and restore the sketch, and answer compound queries —
// verifying parity with the exact store at each step.
func TestEndToEndPipeline(t *testing.T) {
	cfg := stream.EmailEuAll().Scaled(0.003)
	items := stream.Generate(cfg)

	// 1. Persist and reload the stream.
	path := filepath.Join(t.TempDir(), "stream.gss")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := stream.WriteAll(f, stream.NewSliceSource(items)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	loaded, err := stream.ReadAll(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(items) {
		t.Fatalf("reloaded %d items, wrote %d", len(loaded), len(items))
	}

	// 2. Build sketch and ground truth from the reloaded stream.
	g := gss.MustNew(gss.Config{Width: 48, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	exact := adjlist.New()
	for _, it := range loaded {
		g.Insert(it)
		exact.Insert(it.Src, it.Dst, it.Weight)
	}

	// 3. Checkpoint and restore.
	var snap bytes.Buffer
	if _, err := g.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := gss.ReadSketch(&snap)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Compound-query parity on the restored sketch.
	nodes := exact.Nodes()
	step := len(nodes)/50 + 1
	for i := 0; i < len(nodes); i += step {
		v := nodes[i]
		truth := exact.NodeOutWeight(v)
		if got := query.NodeOut(restored, v); got < truth {
			t.Fatalf("NodeOut(%s) = %d < exact %d", v, got, truth)
		}
		for _, u := range exact.Successors(v) {
			if !query.Reachable(restored, v, u) {
				t.Fatalf("direct edge (%s,%s) not reachable", v, u)
			}
		}
	}
}

// TestSummariesAgreeOnPrimitives cross-checks GSS and TCM against the
// exact store through the shared query.Summary interface.
func TestSummariesAgreeOnPrimitives(t *testing.T) {
	items := stream.Generate(stream.CitHepPh().Scaled(0.003))
	exact := query.NewExact()
	summaries := map[string]query.Summary{
		"gss": gss.MustNew(gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}),
		"tcm": tcm.MustNew(tcm.Config{Width: 1024, Depth: 4}),
	}
	for _, it := range items {
		exact.Insert(it)
		for _, s := range summaries {
			s.Insert(it)
		}
	}
	for name, s := range summaries {
		for _, it := range items[:400] {
			truth, _ := exact.EdgeWeight(it.Src, it.Dst)
			got, ok := s.EdgeWeight(it.Src, it.Dst)
			if !ok || got < truth {
				t.Fatalf("%s: edge (%s,%s) %d,%v want >= %d", name, it.Src, it.Dst, got, ok, truth)
			}
		}
	}
}

// TestDeletionFlowAcrossStack exercises negative-weight deletions from
// stream items through to compound queries.
func TestDeletionFlowAcrossStack(t *testing.T) {
	g := gss.MustNew(gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4})
	g.Insert(stream.Item{Src: "a", Dst: "b", Weight: 10})
	g.Insert(stream.Item{Src: "b", Dst: "c", Weight: 4})
	g.Insert(stream.Item{Src: "a", Dst: "b", Weight: -7})
	if w, _ := g.EdgeWeight("a", "b"); w != 3 {
		t.Fatalf("w(a,b) = %d, want 3", w)
	}
	if got := query.NodeOut(g, "a"); got != 3 {
		t.Fatalf("NodeOut(a) = %d, want 3", got)
	}
	if !query.Reachable(g, "a", "c") {
		t.Fatal("reachability broken after deletion")
	}
}
