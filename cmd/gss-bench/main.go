// Command gss-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	gss-bench -exp fig8                 # one experiment at fast scale
//	gss-bench -exp all -scale 0.1       # everything at 10% of paper scale
//	gss-bench -exp fig12 -datasets cit-HepPh,email-EuAll
//	gss-bench -list
//
// -scale 1.0 reproduces paper-size datasets (several GB of working set
// for the Caida figures; budget accordingly).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run (see -list)")
		scale    = flag.Float64("scale", 0, "dataset scale; 1.0 = paper scale, 0 = fast default")
		sample   = flag.Int("sample", 0, "max queries per configuration; 0 = default")
		seed     = flag.Int64("seed", 1, "query sampling seed")
		datasets = flag.String("datasets", "", "comma-separated dataset filter (paper names)")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}
	opt := experiments.Options{Scale: *scale, QuerySample: *sample, Seed: *seed}
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}
	if err := experiments.Run(*exp, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
