// Command gss-bench regenerates the paper's tables and figures, and
// benchmarks the HTTP ingestion pipeline.
//
// Usage:
//
//	gss-bench -exp fig8                 # one experiment at fast scale
//	gss-bench -exp all -scale 0.1       # everything at 10% of paper scale
//	gss-bench -exp fig12 -datasets cit-HepPh,email-EuAll
//	gss-bench -list
//	gss-bench -mode ingest -ingesters 4 # server-ingest throughput
//	gss-bench -mode query               # hash-native vs reference queries
//	gss-bench -mode window -span 600    # windowed vs unbounded backends
//	gss-bench -mode replica             # checkpoint cost + follower staleness
//	gss-bench -mode cluster             # routed multi-member scaling (1/2/4 members)
//	gss-bench -mode migrate             # membership change under live ingest
//	gss-bench -mode chaos               # strict vs partial read availability under faults
//
// -scale 1.0 reproduces paper-size datasets (several GB of working set
// for the Caida figures; budget accordingly).
//
// -mode ingest stands up the real HTTP server per backend and drives
// it with concurrent ingesters, comparing the per-item single-lock
// insert path against the batched NDJSON bulk path on the concurrent
// and sharded backends (items/sec), then the NDJSON bulk plane against
// the GSB1 binary plane (pre-hashed framed batches) per backend with
// interleaved rounds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		mode     = flag.String("mode", "paper", "bench mode: paper (experiments), ingest (server throughput), query (hash-native vs reference query stack), window (windowed vs unbounded), replica (checkpointing + follower staleness), cluster (routed multi-member scaling), migrate (membership change under live ingest) or chaos (degraded-read availability under an injected fault schedule)")
		exp      = flag.String("exp", "all", "experiment to run (see -list)")
		scale    = flag.Float64("scale", 0, "dataset scale; 1.0 = paper scale, 0 = fast default")
		sample   = flag.Int("sample", 0, "max queries per configuration; 0 = default")
		seed     = flag.Int64("seed", 1, "query sampling seed")
		datasets = flag.String("datasets", "", "comma-separated dataset filter (paper names)")
		list     = flag.Bool("list", false, "list experiments and exit")

		ingesters = flag.Int("ingesters", 4, "ingest/window mode: concurrent client goroutines")
		items     = flag.Int("items", 200000, "ingest/window mode: items per bulk measurement")
		batch     = flag.Int("batch", 1000, "ingest/window mode: server decode batch size")
		reqItems  = flag.Int("reqitems", 0, "ingest/window mode: items per bulk request (default 10*batch for ingest, 2*batch for window)")
		shards    = flag.Int("shards", 16, "ingest/window mode: shard count for the sharded backend")
		width     = flag.Int("width", 512, "ingest/window mode: sketch matrix width")

		span    = flag.Int64("span", 600, "window mode: window length in stream-time units")
		gens    = flag.Int("generations", 4, "window mode: windowed rotation granularity")
		windows = flag.Int("windows", 8, "window mode: how many windows the stream spans")

		nodes     = flag.Int("nodes", 20000, "query mode: node universe of the loaded stream")
		benchTime = flag.Float64("benchtime", 0.3, "query mode: seconds per measurement")

		memberCap = flag.Float64("member-cap", 6,
			"cluster mode: simulated per-member ingest capacity in MB/s (0 = uncapped, shared-CPU ceiling)")

		chaosPhase = flag.Duration("chaos-phase", 8*time.Second,
			"chaos mode: measured length of each read phase (strict, then partial)")

		ckptEvery = flag.Duration("checkpoint-interval", 200*time.Millisecond,
			"replica mode: primary checkpoint interval")
		followEvery = flag.Duration("follow-interval", 100*time.Millisecond,
			"replica mode: follower poll interval")

		jsonPath = flag.String("json", "",
			"also write machine-readable results (one measurement per quoted number) to this file")
	)
	flag.Parse()

	if *jsonPath != "" {
		enableReport(*mode)
	}
	finish := func() {
		if *jsonPath == "" {
			return
		}
		if err := writeReport(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "gss-bench: writing -json report:", err)
			os.Exit(1)
		}
	}

	switch *mode {
	case "query":
		opt := queryBenchOptions{Items: *items, Nodes: *nodes, Width: *width, MinTime: *benchTime}
		if err := runQueryBench(opt, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		finish()
		return
	case "ingest":
		opt := ingestOptions{Ingesters: *ingesters, Items: *items, Batch: *batch,
			ReqItems: *reqItems, Shards: *shards, Width: *width}
		if err := runIngestBench(opt, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		finish()
		return
	case "window":
		opt := windowBenchOptions{Ingesters: *ingesters, Items: *items, Batch: *batch,
			ReqItems: *reqItems, Shards: *shards, Width: *width,
			Span: *span, Generations: *gens, Windows: *windows}
		if err := runWindowBench(opt, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		finish()
		return
	case "replica":
		opt := replicaBenchOptions{Ingesters: *ingesters, Items: *items, Batch: *batch,
			ReqItems: *reqItems, Shards: *shards, Width: *width,
			CheckpointEach: *ckptEvery, FollowEach: *followEvery}
		if err := runReplicaBench(opt, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		finish()
		return
	case "cluster":
		opt := clusterBenchOptions{Ingesters: *ingesters, Items: *items, Batch: *batch,
			ReqItems: *reqItems, Width: *width, Nodes: *nodes, MemberCapMBps: *memberCap}
		if err := runClusterBench(opt, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		finish()
		return
	case "migrate":
		opt := migrateBenchOptions{Ingesters: *ingesters, Items: *items, Batch: *batch,
			ReqItems: *reqItems, Width: *width, Nodes: *nodes}
		if err := runMigrateBench(opt, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		finish()
		return
	case "chaos":
		opt := chaosBenchOptions{Seed: *seed, Readers: *ingesters, Items: *items,
			Nodes: *nodes, Width: *width, Phase: *chaosPhase}
		if err := runChaosBench(opt, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		finish()
		return
	case "paper":
	default:
		fmt.Fprintf(os.Stderr, "gss-bench: unknown -mode %q (want paper, ingest, query, window, replica, cluster, migrate or chaos)\n", *mode)
		os.Exit(2)
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.Name, e.Desc)
		}
		return
	}
	opt := experiments.Options{Scale: *scale, QuerySample: *sample, Seed: *seed}
	if *datasets != "" {
		opt.Datasets = strings.Split(*datasets, ",")
	}
	if err := experiments.Run(*exp, opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	finish()
}
