package main

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/faultproxy"
	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Chaos mode: what degraded reads buy under member failures. Three
// members sit behind seedable fault proxies; one fixed fault schedule
// (member outages, connection resets, injected 5xxs, latency) is
// replayed TWICE over the same scatter-read workload — once with
// strict reads, once with ?partial=1 — and the two phases report
// availability and tail latency side by side. The schedule is
// identical down to the millisecond in both phases, so the delta is
// the partial-read contract, not luck.
type chaosBenchOptions struct {
	Seed    int64         // fault-schedule and query-sampling seed
	Readers int           // concurrent read goroutines
	Items   int           // preloaded stream size
	Nodes   int           // node universe of the preloaded stream
	Width   int           // member sketch matrix width
	Phase   time.Duration // measured length of each phase
}

// chaosEvent is one scheduled fault action.
type chaosEvent struct {
	at     time.Duration
	member int
	act    int
}

const (
	chaosActDown = iota
	chaosActUp
	chaosActUp2 // ups outnumber downs so outages stay windows, not a state
	chaosActReset
	chaosActStatus
	chaosActLatency
	chaosActClear
)

// chaosBenchSchedule precomputes the fault timeline so both phases
// replay the exact same failures at the exact same offsets. At most
// members-1 proxies are ever down at once: with the whole fleet gone
// both modes answer 502 alike, which measures nothing — the scenario
// degraded reads exist for is "some members survive".
func chaosBenchSchedule(seed int64, span time.Duration, members int) []chaosEvent {
	rng := rand.New(rand.NewSource(seed))
	var evs []chaosEvent
	down := make([]bool, members)
	nDown := 0
	for at := time.Duration(0); ; {
		at += time.Duration(40+rng.Intn(140)) * time.Millisecond
		// Leave the tail of the phase event-free so in-flight deadlines
		// settle inside the measurement.
		if at >= span-300*time.Millisecond {
			return evs
		}
		ev := chaosEvent{at: at, member: rng.Intn(members), act: rng.Intn(7)}
		switch ev.act {
		case chaosActDown:
			if !down[ev.member] {
				if nDown == members-1 {
					ev.act = chaosActUp
				} else {
					down[ev.member] = true
					nDown++
				}
			}
		case chaosActUp, chaosActUp2:
			if down[ev.member] {
				down[ev.member] = false
				nDown--
			}
		}
		evs = append(evs, ev)
	}
}

func (ev chaosEvent) apply(p *faultproxy.Proxy) {
	switch ev.act {
	case chaosActDown:
		p.SetDown(true)
	case chaosActUp, chaosActUp2:
		p.SetDown(false)
	case chaosActReset:
		p.Set(faultproxy.Fault{Prob: 0.35, Reset: true})
	case chaosActStatus:
		p.Set(faultproxy.Fault{Prob: 0.5, Status: 503})
	case chaosActLatency:
		p.Set(faultproxy.Fault{Prob: 0.6, Latency: 60 * time.Millisecond})
	case chaosActClear:
		p.Set()
	}
}

// chaosPhaseResult is one phase's tally.
type chaosPhaseResult struct {
	name      string
	requests  int64
	ok        int64
	degraded  int64 // 200s answered from a subset of members
	latencies []time.Duration
}

func (r *chaosPhaseResult) availability() float64 {
	if r.requests == 0 {
		return 0
	}
	return 100 * float64(r.ok) / float64(r.requests)
}

func (r *chaosPhaseResult) percentile(p float64) time.Duration {
	if len(r.latencies) == 0 {
		return 0
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	i := int(p * float64(len(r.latencies)-1))
	return r.latencies[i]
}

func runChaosBench(opt chaosBenchOptions, w io.Writer) error {
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	if opt.Readers < 1 {
		opt.Readers = 4
	}
	if opt.Items < 1 {
		opt.Items = 50000
	}
	if opt.Nodes < 1 {
		opt.Nodes = 2000
	}
	if opt.Width < 1 {
		opt.Width = 512
	}
	if opt.Phase <= 0 {
		opt.Phase = 8 * time.Second
	}
	silent := func(string, ...interface{}) {}
	cfg := gss.Config{Width: opt.Width, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}

	const nMembers = 3
	proxies := make([]*faultproxy.Proxy, nMembers)
	memberURLs := make([]string, nMembers)
	for i := 0; i < nMembers; i++ {
		srv, err := server.NewWithOptions(cfg, server.Options{
			Backend: sketch.BackendConcurrent, Logf: silent})
		if err != nil {
			return err
		}
		defer srv.Close()
		backend := httptest.NewServer(srv.Handler())
		defer backend.Close()
		p, err := faultproxy.New(backend.URL, faultproxy.Options{Seed: opt.Seed, Logf: silent})
		if err != nil {
			return err
		}
		defer p.Close()
		proxies[i] = p
		memberURLs[i] = p.URL()
	}
	rt, err := cluster.New(cluster.Config{
		Members:       memberURLs,
		ProbeInterval: 50 * time.Millisecond,
		// Down proxies abort probes instantly, so a generous timeout does
		// not slow failure detection — it only keeps a CPU-saturated but
		// alive member (the preload pegs all three) from being declared
		// dead by a 50ms default budget.
		ProbeTimeout: 2 * time.Second,
		ReadTimeout:  2 * time.Second,
		// Five attempts per member: injected 5xxs answer instantly, so
		// retries are cheap and a member only counts failed when its
		// fault dice land five in a row.
		ReadRetries:       4,
		RetryBackoff:      10 * time.Millisecond,
		AllowPartialReads: true,
		Logf:              silent,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Preload against the healthy cluster, then freeze the dataset: the
	// phases are read-only so both replays query identical state.
	items := stream.Generate(stream.DatasetConfig{Name: "chaos-bench",
		Nodes: opt.Nodes, Edges: opt.Items, DegreeSkew: 1.3, WeightSkew: 1.2,
		MaxWeight: 500, UniformMix: 0.5, Seed: opt.Seed})
	if err := chaosPreload(front.URL, items); err != nil {
		return err
	}
	nodes := make([]string, 0, opt.Nodes)
	seen := make(map[string]bool)
	for _, it := range items {
		if !seen[it.Src] {
			seen[it.Src] = true
			nodes = append(nodes, it.Src)
		}
	}

	schedule := chaosBenchSchedule(opt.Seed, opt.Phase, nMembers)
	fmt.Fprintf(w, "chaos reads: %d members, %d readers, %d preloaded items, %s per phase, %d fault events (seed %d)\n",
		nMembers, opt.Readers, len(items), opt.Phase, len(schedule), opt.Seed)
	fmt.Fprintf(w, "identical fault schedule replayed for strict reads and ?partial=1 reads\n\n")

	results := make([]*chaosPhaseResult, 0, 2)
	for _, partial := range []bool{false, true} {
		name := "strict"
		if partial {
			name = "partial"
		}
		res, err := chaosBenchPhase(name, front.URL, rt, proxies, schedule, nodes, opt, partial)
		if err != nil {
			return err
		}
		results = append(results, res)
	}

	fmt.Fprintf(w, "%-8s %9s %9s %9s %7s %13s %9s %9s\n",
		"phase", "requests", "ok", "degraded", "failed", "availability", "p50", "p99")
	for _, r := range results {
		fmt.Fprintf(w, "%-8s %9d %9d %9d %7d %12.2f%% %9s %9s\n",
			r.name, r.requests, r.ok, r.degraded, r.requests-r.ok, r.availability(),
			r.percentile(0.50).Round(10*time.Microsecond),
			r.percentile(0.99).Round(10*time.Microsecond))
		record("chaos_availability", r.availability(), "percent", "phase", r.name)
		record("chaos_requests", float64(r.requests), "requests", "phase", r.name)
		record("chaos_degraded", float64(r.degraded), "requests", "phase", r.name)
		record("chaos_read_latency_p50", r.percentile(0.50).Seconds(), "seconds", "phase", r.name)
		record("chaos_read_latency_p99", r.percentile(0.99).Seconds(), "seconds", "phase", r.name)
	}
	fmt.Fprintf(w, "\ndegraded = answers served from the surviving members, flagged partial.\n")
	fmt.Fprintf(w, "strict fails any scatter read that touches a faulted member; partial\n")
	fmt.Fprintf(w, "turns those failures into flagged subset answers — that gap is the\n")
	fmt.Fprintf(w, "whole difference between the rows.\n")
	return nil
}

// chaosPreload pushes the dataset through the router in one request.
func chaosPreload(frontURL string, items []stream.Item) error {
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(stream.EncodeNDJSON(pw, items)) }()
	resp, err := http.Post(frontURL+"/ingest", "application/x-ndjson", pr)
	if err != nil {
		return fmt.Errorf("preload: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("preload: status %d: %s", resp.StatusCode, raw)
	}
	return nil
}

// chaosBenchPhase heals the cluster, then replays the schedule while
// the readers hammer the scatter endpoints.
func chaosBenchPhase(name, frontURL string, rt *cluster.Router, proxies []*faultproxy.Proxy,
	schedule []chaosEvent, nodes []string, opt chaosBenchOptions, partial bool) (*chaosPhaseResult, error) {
	// Fresh start: every proxy up and fault-free, and the router has
	// noticed.
	for _, p := range proxies {
		p.Clear()
	}
	deadline := time.Now().Add(10 * time.Second)
	for rt.Stats().DownMembers != 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("%s phase: cluster never healed between phases", name)
		}
		time.Sleep(10 * time.Millisecond)
	}

	res := &chaosPhaseResult{name: name}
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < opt.Readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			rng := rand.New(rand.NewSource(opt.Seed + int64(g)*7919))
			var reqs, ok, degraded int64
			var lats []time.Duration
			for {
				select {
				case <-stop:
					mu.Lock()
					res.requests += reqs
					res.ok += ok
					res.degraded += degraded
					res.latencies = append(res.latencies, lats...)
					mu.Unlock()
					return
				default:
				}
				v := url.QueryEscape(nodes[rng.Intn(len(nodes))])
				q := [...]string{
					"/nodes?limit=20", "/nodein?v=" + v, "/precursors?v=" + v,
					"/stats", "/heavy?min=2"}[rng.Intn(5)]
				sep := "?"
				for _, c := range q {
					if c == '?' {
						sep = "&"
					}
				}
				if partial {
					q += sep + "partial=1"
				}
				start := time.Now()
				resp, err := client.Get(frontURL + q)
				reqs++
				if err != nil {
					continue
				}
				io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
				resp.Body.Close()
				lats = append(lats, time.Since(start))
				if resp.StatusCode == http.StatusOK {
					ok++
					if resp.Header.Get("X-Gss-Partial") == "true" {
						degraded++
					}
				}
			}
		}(g)
	}

	start := time.Now()
	for _, ev := range schedule {
		if until := time.Until(start.Add(ev.at)); until > 0 {
			time.Sleep(until)
		}
		ev.apply(proxies[ev.member])
	}
	if until := time.Until(start.Add(opt.Phase)); until > 0 {
		time.Sleep(until)
	}
	close(stop)
	wg.Wait()
	for _, p := range proxies {
		p.Clear()
	}
	return res, nil
}
