package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/stream"
)

// Windowed-ingest throughput mode: the continuous-monitoring workload
// the whole-stream backends cannot serve. A timestamped stream spanning
// many windows — with per-window node churn, the way IP or session
// identifiers churn in production — is pushed through the bulk NDJSON
// path at full speed against both the windowed backend and the
// unbounded sharded backend. Reported per backend: sustained items/s
// and the steady-state summary size. The sharded sketch keeps every
// identifier and left-over edge it has ever seen, so its footprint
// grows with the stream; the windowed sketch rotates generations out
// and stays bounded by the configured window.
type windowBenchOptions struct {
	Ingesters   int   // concurrent client goroutines
	Items       int   // total stream items
	Batch       int   // server-side decode batch size
	ReqItems    int   // items per bulk HTTP request
	Shards      int   // shard count for the sharded run
	Width       int   // per-sketch matrix width
	Span        int64 // window length in stream-time units
	Generations int   // windowed rotation granularity
	Windows     int   // how many full windows the stream spans
}

func runWindowBench(opt windowBenchOptions, w io.Writer) error {
	if opt.Ingesters < 1 {
		opt.Ingesters = 4
	}
	if opt.Items < 1 {
		opt.Items = 200000
	}
	if opt.Batch < 1 {
		opt.Batch = 1000
	}
	if opt.ReqItems < 1 {
		// Request size bounds how far apart in stream time concurrent
		// clients can be (see the work queue in windowBenchOne), and
		// the skew must stay well inside the window or rotation drops
		// the laggards as stragglers. Cap the default so the Ingesters
		// requests in flight together span at most one generation —
		// a sliver of the (Generations-1)-generation slack — at any
		// -items/-batch combination. An explicit -reqitems is honored
		// as given; the drop counter reported below shows the cost.
		opt.ReqItems = 2 * opt.Batch
		density := float64(opt.Items) / float64(opt.Span*int64(opt.Windows))
		genSpan := float64(opt.Span / int64(opt.Generations))
		if cap := int(genSpan * density / float64(opt.Ingesters)); cap >= 1 && cap < opt.ReqItems {
			opt.ReqItems = cap
		}
	}
	if opt.Shards < 1 {
		opt.Shards = 16
	}
	if opt.Width < 1 {
		opt.Width = 512
	}
	if opt.Span < 1 {
		opt.Span = 600
	}
	if opt.Generations < 2 {
		opt.Generations = 4
	}
	if opt.Windows < 2 {
		opt.Windows = 8
	}

	items := windowStream(opt)
	fmt.Fprintf(w, "windowed-ingest throughput: %d items over %d windows of span %d (%d generations), "+
		"%d ingesters, batch=%d, req=%d, width=%d\n",
		opt.Items, opt.Windows, opt.Span, opt.Generations, opt.Ingesters, opt.Batch, opt.ReqItems, opt.Width)

	cfg := gss.Config{Width: opt.Width, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	type row struct {
		backend string
		elapsed time.Duration
		st      gss.Stats
	}
	var rows []row
	for _, backend := range []string{"windowed", "sharded"} {
		elapsed, st, err := windowBenchOne(backend, cfg, opt, items)
		if err != nil {
			return fmt.Errorf("%s: %w", backend, err)
		}
		rows = append(rows, row{backend, elapsed, st})
	}

	fmt.Fprintf(w, "\n%-10s %12s %12s %14s %12s %10s %8s\n",
		"backend", "items/sec", "live items", "resident edges", "nodes", "matrix KB", "gens")
	for _, r := range rows {
		gens := "-"
		if r.st.LiveGenerations > 0 {
			gens = fmt.Sprintf("%d/%d", r.st.LiveGenerations, opt.Generations)
		}
		fmt.Fprintf(w, "%-10s %12.0f %12d %14d %12d %10d %8s\n",
			r.backend, float64(opt.Items)/r.elapsed.Seconds(), r.st.Items,
			r.st.MatrixEdges+r.st.BufferEdges, r.st.IndexedNodes, r.st.MatrixBytes/1024, gens)
		record("window_throughput", float64(opt.Items)/r.elapsed.Seconds(), "items/sec",
			"backend", r.backend)
		record("window_live_items", float64(r.st.Items), "items", "backend", r.backend)
		record("window_resident_edges", float64(r.st.MatrixEdges+r.st.BufferEdges), "edges",
			"backend", r.backend)
		record("window_matrix_bytes", float64(r.st.MatrixBytes), "bytes", "backend", r.backend)
	}
	if st := rows[0].st; st.DroppedStragglers > 0 {
		fmt.Fprintf(w, "\nwindowed dropped %d stragglers (concurrent ingesters raced a rotation) "+
			"and expired %d generations (%d items)\n",
			st.DroppedStragglers, st.ExpiredGenerations, st.ExpiredItems)
	}
	fmt.Fprintln(w, "\nThe sharded backend retains every identifier and left-over edge of the whole"+
		"\nstream; the windowed backend holds only the last window and stays bounded.")
	return nil
}

// windowStream synthesizes a time-ordered stream spanning opt.Windows
// windows. Endpoints churn per window — each window draws from its own
// Zipfian universe — so an unbounded summary accumulates identifiers
// forever while a windowed one forgets them with the rotation.
func windowStream(opt windowBenchOptions) []stream.Item {
	rng := rand.New(rand.NewSource(42))
	nodesPerWindow := 2000
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(nodesPerWindow-1))
	items := make([]stream.Item, opt.Items)
	total := opt.Span * int64(opt.Windows)
	for i := range items {
		// 1-based: time 0 on the wire means "stamp on arrival", which
		// would teleport the replay's first items to the wall clock.
		t := 1 + int64(i)*total/int64(opt.Items)
		win := t / opt.Span
		s := zipf.Uint64()
		d := zipf.Uint64()
		if s == d {
			d = (d + 1) % uint64(nodesPerWindow)
		}
		items[i] = stream.Item{
			Src:    fmt.Sprintf("w%d:n%d", win, s),
			Dst:    fmt.Sprintf("w%d:n%d", win, d),
			Time:   t,
			Weight: int64(rng.Intn(100)) + 1,
		}
	}
	return items
}

func windowBenchOne(backend string, cfg gss.Config, opt windowBenchOptions, items []stream.Item) (time.Duration, gss.Stats, error) {
	srv, err := server.NewWithOptions(cfg, server.Options{
		Backend: backend, Shards: opt.Shards, BatchSize: opt.Batch,
		WindowSpan: opt.Span, WindowGenerations: opt.Generations})
	if err != nil {
		return 0, gss.Stats{}, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: opt.Ingesters * 2, MaxIdleConnsPerHost: opt.Ingesters * 2}}
	defer client.CloseIdleConnections()

	// One time-ordered queue of request bodies that every ingester
	// claims from: collectors in the field are synchronized by the wall
	// clock, so no client is ever a whole window behind another. The
	// in-flight skew is bounded by Ingesters requests — a sliver of the
	// window — where fully independent per-client replays would let a
	// fast client race stream time ahead and turn the laggards' entire
	// output into dropped stragglers.
	var bodies [][]byte
	for off := 0; off < len(items); off += opt.ReqItems {
		end := off + opt.ReqItems
		if end > len(items) {
			end = len(items)
		}
		var buf bytes.Buffer
		if err := stream.EncodeNDJSON(&buf, items[off:end]); err != nil {
			return 0, gss.Stats{}, err
		}
		bodies = append(bodies, buf.Bytes())
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, opt.Ingesters)
	start := time.Now()
	for g := 0; g < opt.Ingesters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				resp, err := client.Post(ts.URL+"/ingest", "application/x-ndjson", bytes.NewReader(bodies[i]))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return 0, gss.Stats{}, err
	default:
	}
	return elapsed, srv.Sketch().Stats(), nil
}
