package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Migrate mode: measure what a live membership change costs the
// workload that is running through it. Three log-backed members sit
// behind the router; concurrent ingesters push a continuous NDJSON
// stream while the bench adds a fourth member mid-load and then drains
// one of the originals, each via the admin endpoints the migration
// protocol serves. Reported per phase: sustained ingest rate before,
// during and after each change (the "during" dip is the protocol's
// whole-workload overhead — double-writes to moving keys, export
// bandwidth, catch-up relays), and the migration's own telemetry:
// total duration, handoff and cutover stalls (the only spans where
// writes block, i.e. the transient a latency SLO feels), and
// moved/forwarded/shadow volumes. A final
// cross-check demands the cluster's item count equal the acknowledged
// ingest total — a migration that loses or double-counts items under
// load fails the bench, not just the test suite.
type migrateBenchOptions struct {
	Ingesters int // concurrent client goroutines
	Items     int // distinct items in the replayed stream
	Batch     int // router + member decode batch size
	ReqItems  int // items per bulk HTTP request
	Width     int // member sketch matrix width
	Nodes     int // synthetic graph node count
}

// migratePhase is one measured slice of the timeline.
type migratePhase struct {
	name    string
	items   int64
	elapsed time.Duration
}

func (p migratePhase) rate() float64 { return float64(p.items) / p.elapsed.Seconds() }

func runMigrateBench(opt migrateBenchOptions, w io.Writer) error {
	if opt.Ingesters < 1 {
		opt.Ingesters = 4
	}
	if opt.Items < 1 {
		opt.Items = 200000
	}
	if opt.Batch < 1 {
		opt.Batch = 1000
	}
	if opt.ReqItems < opt.Batch {
		opt.ReqItems = 10 * opt.Batch
	}
	if opt.Width < 1 {
		opt.Width = 512
	}
	if opt.Nodes < 1 {
		opt.Nodes = 20000
	}
	// Steady-state slices long enough that one scheduler hiccup does not
	// masquerade as a migration dip.
	const settle = 1 * time.Second

	// Same distinct-edge-heavy mix as cluster mode: a migration moves a
	// partition's edge set, so the stream must populate real matrix
	// volume rather than a few hot edges that transfer for free.
	items := stream.Generate(stream.DatasetConfig{Name: "migrate-bench",
		Nodes: opt.Nodes, Edges: opt.Items, DegreeSkew: 1.2, WeightSkew: 1.2,
		MaxWeight: 1000, UniformMix: 0.9, Seed: 42})

	// Pre-render the request bodies once; ingesters replay the pool in a
	// loop so the stream never runs dry mid-migration.
	var bodies [][]byte
	for off := 0; off < len(items); off += opt.ReqItems {
		end := off + opt.ReqItems
		if end > len(items) {
			end = len(items)
		}
		var buf bytes.Buffer
		if err := stream.EncodeNDJSON(&buf, items[off:end]); err != nil {
			return err
		}
		bodies = append(bodies, buf.Bytes())
	}

	// Four log-backed members: migration's copy fence needs each loser's
	// operation log, so unlike cluster mode every member gets a LogDir
	// (default batched fsync — per-append sync would benchmark the disk,
	// not the migration). The fourth starts now but idles outside the
	// ring until the add.
	cfg := gss.Config{Width: opt.Width, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	silent := func(string, ...interface{}) {}
	var memberURLs []string
	for i := 0; i < 4; i++ {
		dir, err := os.MkdirTemp("", "gss-bench-migrate-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		srv, err := server.NewWithOptions(cfg, server.Options{
			Backend: sketch.BackendSingle, BatchSize: opt.Batch, Logf: silent,
			LogDir: dir})
		if err != nil {
			return err
		}
		defer srv.Close()
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		memberURLs = append(memberURLs, ts.URL)
	}
	joiner, initial := memberURLs[3], memberURLs[:3]

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 4 * (opt.Ingesters + 4), MaxIdleConnsPerHost: 2 * (opt.Ingesters + 4)}}
	defer client.CloseIdleConnections()
	rt, err := cluster.New(cluster.Config{Members: initial, BatchSize: opt.Batch,
		Client: client, Logf: silent, AllowMembershipChanges: true})
	if err != nil {
		return err
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	fmt.Fprintf(w, "migration under load: %d ingesters, batch=%d, req=%d items, width=%d, 3 members + 1 joiner\n",
		opt.Ingesters, opt.Batch, opt.ReqItems, opt.Width)

	// The load: ingesters replay the body pool until told to stop,
	// counting only server-acknowledged items. Any non-200 mid-migration
	// is a bench failure — the protocol promises writes never bounce.
	var (
		ingested atomic.Int64
		reqIdx   atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
	)
	errs := make(chan error, opt.Ingesters)
	for g := 0; g < opt.Ingesters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				body := bodies[int(reqIdx.Add(1)-1)%len(bodies)]
				resp, err := client.Post(front.URL+"/ingest", "application/x-ndjson", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var ack struct {
					Ingested int64 `json:"ingested"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&ack)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("ingest status %d", resp.StatusCode)
					return
				}
				if decErr != nil {
					errs <- fmt.Errorf("ingest ack: %w", decErr)
					return
				}
				ingested.Add(ack.Ingested)
			}
		}()
	}
	failed := func() error {
		select {
		case err := <-errs:
			return err
		default:
			return nil
		}
	}

	snap := func() (time.Time, int64) { return time.Now(), ingested.Load() }
	measure := func(name string, t0 time.Time, n0 int64) migratePhase {
		t1, n1 := snap()
		return migratePhase{name: name, items: n1 - n0, elapsed: t1.Sub(t0)}
	}
	change := func(endpoint, member string) (cluster.MigrationStatus, error) {
		body, err := json.Marshal(map[string]string{"url": member})
		if err != nil {
			return cluster.MigrationStatus{}, err
		}
		resp, err := client.Post(front.URL+endpoint+"?wait=1", "application/json", bytes.NewReader(body))
		if err != nil {
			return cluster.MigrationStatus{}, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			return cluster.MigrationStatus{}, fmt.Errorf("%s: status %d: %s", endpoint, resp.StatusCode, bytes.TrimSpace(msg))
		}
		var st cluster.MigrationStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return cluster.MigrationStatus{}, err
		}
		if st.Outcome != "done" {
			return st, fmt.Errorf("%s: migration %s: %s", endpoint, st.Outcome, st.Error)
		}
		return st, nil
	}

	var phases []migratePhase
	var migs []cluster.MigrationStatus

	// Timeline: baseline → add joiner → settle → drain an original →
	// settle. The drain victim is an ORIGINAL member so the second
	// migration moves warm, fully-populated partitions.
	t0, n0 := snap()
	time.Sleep(settle)
	phases = append(phases, measure("baseline    (3 members)", t0, n0))

	t0, n0 = snap()
	addSt, err := change("/cluster/members", joiner)
	if err != nil {
		return err
	}
	phases = append(phases, measure("add joiner  (migrating)", t0, n0))
	migs = append(migs, addSt)

	t0, n0 = snap()
	time.Sleep(settle)
	phases = append(phases, measure("settled     (4 members)", t0, n0))

	t0, n0 = snap()
	drainSt, err := change("/cluster/drain", initial[0])
	if err != nil {
		return err
	}
	phases = append(phases, measure("drain member(migrating)", t0, n0))
	migs = append(migs, drainSt)

	t0, n0 = snap()
	time.Sleep(settle)
	phases = append(phases, measure("settled     (3 members)", t0, n0))

	stop.Store(true)
	wg.Wait()
	if err := failed(); err != nil {
		return err
	}

	base := phases[0].rate()
	fmt.Fprintf(w, "\n%-24s %12s %12s\n", "phase", "items/sec", "vs baseline")
	for _, p := range phases {
		fmt.Fprintf(w, "%-24s %12.0f %11.2fx\n", p.name, p.rate(), p.rate()/base)
		record("migrate_phase_throughput", p.rate(), "items/sec", "phase", p.name)
	}
	fmt.Fprintln(w)
	for _, st := range migs {
		fmt.Fprintf(w, "%-5s %s: done in %.0fms (handoff stall %.1fms, cutover stall %.1fms), moved %d edges / %d KB, forwarded %d items, shadowed %d\n",
			st.Mode, st.Target, st.DurationMS, st.HandoffStallMS, st.CutoverStallMS,
			st.MovedEdges, st.MovedBytes/1024, st.ForwardedItems, st.ShadowItems)
		record("migrate_duration", st.DurationMS/1000, "seconds", "mode", st.Mode)
		record("migrate_handoff_stall", st.HandoffStallMS/1000, "seconds", "mode", st.Mode)
		record("migrate_cutover_stall", st.CutoverStallMS/1000, "seconds", "mode", st.Mode)
		record("migrate_moved_bytes", float64(st.MovedBytes), "bytes", "mode", st.Mode)
	}

	// Conservation under load: everything the servers acknowledged must
	// still be counted after two migrations moved partitions around.
	var st gss.Stats
	if err := getStats(client, front.URL+"/stats", &st); err != nil {
		return err
	}
	total := ingested.Load()
	if st.Items != total {
		return fmt.Errorf("cluster holds %d items after migrations, acknowledged %d", st.Items, total)
	}
	fmt.Fprintf(w, "\ncross-check: cluster holds %d items = acknowledged ingest total\n", total)
	return nil
}
