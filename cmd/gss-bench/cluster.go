package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Cluster mode: stand up N real gss-server members plus the router in
// front of them (httptest-backed, all in-process), push one NDJSON
// stream through the router with concurrent ingesters, and measure
// sustained items/sec at 1, 2 and 4 members, plus /reachable latency
// through the scatter-gather BFS at each size.
//
// In-process members share this machine's CPU, so raw member-count
// scaling cannot appear on a small host: partitioning CPU-bound work
// across processes on the same cores is a wash by construction. What
// production scale-out actually adds per member is a NODE — its own
// CPU and its own matrix budget. The bench therefore models each
// member as a node of finite ingest capacity (MemberCapMBps, a
// byte-rate throttle on the member's /ingest body — the only simulated
// ingredient, everything else is the real server and router code) and
// shows (a) routed throughput scaling with member count until the
// router itself saturates, and (b) the occ/buf columns: the same
// stream that drowns one member's matrix spreads thin across four.
// Uncapped rows (MemberCapMBps=0) measure the shared-CPU ceiling and
// the router's own overhead against a direct, router-less member.
type clusterBenchOptions struct {
	Ingesters     int     // concurrent client goroutines
	Items         int     // items per measurement
	Batch         int     // router + member decode batch size
	ReqItems      int     // items per bulk HTTP request
	Width         int     // member sketch matrix width
	Nodes         int     // synthetic graph node count
	ReachQueries  int     // reachability probes per member count
	MemberCapMBps float64 // simulated per-member ingest capacity (MB/s); 0 = uncapped
}

type clusterResult struct {
	members int
	items   int
	elapsed time.Duration
	reach   time.Duration // avg /reachable latency
	occ     float64       // most-loaded member's matrix occupancy
	bufPct  float64       // most-loaded member's buffer spill share
}

func (r clusterResult) rate() float64 { return float64(r.items) / r.elapsed.Seconds() }

func runClusterBench(opt clusterBenchOptions, w io.Writer) error {
	if opt.Ingesters < 1 {
		opt.Ingesters = 4
	}
	if opt.Items < 1 {
		opt.Items = 200000
	}
	if opt.Batch < 1 {
		opt.Batch = 1000
	}
	if opt.ReqItems < opt.Batch {
		opt.ReqItems = 10 * opt.Batch
	}
	if opt.Width < 1 {
		opt.Width = 512
	}
	if opt.Nodes < 1 {
		opt.Nodes = 20000
	}
	if opt.ReachQueries < 1 {
		opt.ReachQueries = 200
	}
	if opt.MemberCapMBps < 0 {
		opt.MemberCapMBps = 0
	}

	// The stream is distinct-edge-heavy (high uniform mix): scale-out
	// exists to carry an edge set no single node's matrix budget holds,
	// so the bench stream must actually stress that budget rather than
	// hammer a few hot Zipf edges that any one member could absorb.
	items := stream.Generate(stream.DatasetConfig{Name: "cluster-bench",
		Nodes: opt.Nodes, Edges: opt.Items, DegreeSkew: 1.2, WeightSkew: 1.2,
		MaxWeight: 1000, UniformMix: 0.9, Seed: 42})
	capNote := "uncapped members (shared-CPU ceiling)"
	if opt.MemberCapMBps > 0 {
		capNote = fmt.Sprintf("member capacity %.1f MB/s each (simulated node limit)", opt.MemberCapMBps)
	}
	fmt.Fprintf(w, "cluster throughput: %d ingesters, batch=%d, req=%d items, width=%d per member, %s\n",
		opt.Ingesters, opt.Batch, opt.ReqItems, opt.Width, capNote)

	// Rounds, not per-config reps: the member counts are measured
	// back-to-back inside one round so a load spike on the host skews a
	// whole round rather than one configuration, and the reported round
	// is the one that ran with the least interference (highest aggregate
	// throughput). Per-config best-of would let different configurations
	// sample different host weather and fabricate a scaling ratio.
	const rounds = 3
	memberCounts := []int{1, 2, 4}
	var results []clusterResult
	var bestSum float64
	for r := 0; r < rounds; r++ {
		var round []clusterResult
		var sum float64
		for _, n := range memberCounts {
			res, err := clusterBenchOne(n, opt, items, true)
			if err != nil {
				return fmt.Errorf("%d members: %w", n, err)
			}
			round = append(round, res)
			sum += res.rate()
		}
		if r == 0 || sum > bestSum {
			results, bestSum = round, sum
		}
	}

	// The occ/buf columns explain where the scaling comes from: each
	// member is an identically provisioned node, so partitioning the
	// edge set across more members keeps every matrix inside its budget
	// (low occupancy, no buffer spill) while a single node saturates.
	// On multi-core hosts the members' insert CPU parallelizes on top.
	base := results[0].rate()
	fmt.Fprintf(w, "\n%-8s %10s %12s %10s %14s %8s %8s\n",
		"members", "items", "items/sec", "speedup", "reachable avg", "occ", "buf")
	for _, r := range results {
		fmt.Fprintf(w, "%-8d %10d %12.0f %9.2fx %14s %7.1f%% %7.1f%%\n",
			r.members, r.items, r.rate(), r.rate()/base,
			r.reach.Round(time.Microsecond), 100*r.occ, 100*r.bufPct)
		members := fmt.Sprintf("%d", r.members)
		record("cluster_throughput", r.rate(), "items/sec", "members", members)
		record("cluster_reachable_latency", r.reach.Seconds(), "seconds", "members", members)
		record("cluster_occupancy", r.occ, "fraction", "members", members)
	}

	// Router overhead: the same single member driven directly (no
	// router, no cap) versus through the router — the difference is the
	// routing scan plus the extra hop, i.e. the serial share the router
	// adds to every deployment.
	uncapped := opt
	uncapped.MemberCapMBps = 0
	direct, err := clusterBenchOne(1, uncapped, items, false)
	if err != nil {
		return fmt.Errorf("direct baseline: %w", err)
	}
	routed, err := clusterBenchOne(1, uncapped, items, true)
	if err != nil {
		return fmt.Errorf("routed baseline: %w", err)
	}
	fmt.Fprintf(w, "\nrouter overhead (uncapped, 1 member): direct %.0f items/s vs routed %.0f items/s (%.0f%% of direct)\n",
		direct.rate(), routed.rate(), 100*routed.rate()/direct.rate())
	record("cluster_direct_throughput", direct.rate(), "items/sec")
	record("cluster_routed_throughput", routed.rate(), "items/sec")
	return nil
}

// byteLimiter paces bytes at a fixed rate, SHARED across all of one
// member's connections — the cap models the node, not the socket, so
// concurrent ingest streams must split it rather than multiply it.
type byteLimiter struct {
	mu   sync.Mutex
	bps  float64
	next time.Time // when the next byte may pass
}

func (l *byteLimiter) wait(n int) {
	l.mu.Lock()
	now := time.Now()
	if l.next.Before(now) {
		l.next = now
	}
	sleepUntil := l.next
	l.next = l.next.Add(time.Duration(float64(n) / l.bps * float64(time.Second)))
	l.mu.Unlock()
	time.Sleep(time.Until(sleepUntil))
}

// throttledBody applies the member's shared limiter to one /ingest
// request body.
type throttledBody struct {
	r   io.ReadCloser
	lim *byteLimiter
}

func (t *throttledBody) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if n > 0 {
		t.lim.wait(n)
	}
	return n, err
}

func (t *throttledBody) Close() error { return t.r.Close() }

// capMember wraps a member handler with the simulated capacity limit.
func capMember(h http.Handler, mbps float64) http.Handler {
	if mbps <= 0 {
		return h
	}
	lim := &byteLimiter{bps: mbps * 1e6}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/ingest" {
			r.Body = &throttledBody{r: r.Body, lim: lim}
		}
		h.ServeHTTP(w, r)
	})
}

// clusterBenchOne measures one configuration: n members behind the
// router (routed=true) or a single bare member (routed=false, the
// direct baseline — n must be 1).
func clusterBenchOne(n int, opt clusterBenchOptions, items []stream.Item, routed bool) (clusterResult, error) {
	// Collect the previous run's sketches and request bodies first so
	// their GC debt is not billed to this measurement.
	runtime.GC()
	cfg := gss.Config{Width: opt.Width, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	silent := func(string, ...interface{}) {}
	var memberURLs []string
	for i := 0; i < n; i++ {
		srv, err := server.NewWithOptions(cfg, server.Options{
			Backend: sketch.BackendSingle, BatchSize: opt.Batch, Logf: silent})
		if err != nil {
			return clusterResult{}, err
		}
		defer srv.Close()
		ts := httptest.NewServer(capMember(srv.Handler(), opt.MemberCapMBps))
		defer ts.Close()
		memberURLs = append(memberURLs, ts.URL)
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: 4 * (opt.Ingesters + n), MaxIdleConnsPerHost: 2 * (opt.Ingesters + n)}}
	defer client.CloseIdleConnections()
	frontURL := memberURLs[0]
	if routed {
		rt, err := cluster.New(cluster.Config{Members: memberURLs,
			BatchSize: opt.Batch, Client: client, Logf: silent})
		if err != nil {
			return clusterResult{}, err
		}
		defer rt.Close()
		ts := httptest.NewServer(rt.Handler())
		defer ts.Close()
		frontURL = ts.URL
	}

	// Pre-render NDJSON request bodies outside the timed section.
	bodies := make([][][]byte, opt.Ingesters)
	per := (len(items) + opt.Ingesters - 1) / opt.Ingesters
	for g := 0; g < opt.Ingesters; g++ {
		lo, hi := g*per, (g+1)*per
		if hi > len(items) {
			hi = len(items)
		}
		if lo >= hi {
			continue
		}
		chunk := items[lo:hi]
		for off := 0; off < len(chunk); off += opt.ReqItems {
			end := off + opt.ReqItems
			if end > len(chunk) {
				end = len(chunk)
			}
			var buf bytes.Buffer
			if err := stream.EncodeNDJSON(&buf, chunk[off:end]); err != nil {
				return clusterResult{}, err
			}
			bodies[g] = append(bodies[g], buf.Bytes())
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, opt.Ingesters)
	start := time.Now()
	for g := 0; g < opt.Ingesters; g++ {
		wg.Add(1)
		go func(reqs [][]byte) {
			defer wg.Done()
			for _, body := range reqs {
				resp, err := client.Post(frontURL+"/ingest", "application/x-ndjson", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(bodies[g])
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return clusterResult{}, err
	default:
	}

	// Cross-check: the cluster-wide /stats must account for every item.
	var st gss.Stats
	if err := getStats(client, frontURL+"/stats", &st); err != nil {
		return clusterResult{}, err
	}
	if st.Items != int64(len(items)) {
		return clusterResult{}, fmt.Errorf("cluster holds %d items, want %d", st.Items, len(items))
	}
	// Per-member load: the most loaded member's occupancy and buffer
	// spill tell whether the run was inside or past the matrix budget.
	var occ, bufPct float64
	for _, mu := range memberURLs {
		var ms gss.Stats
		if err := getStats(client, mu+"/stats", &ms); err != nil {
			return clusterResult{}, err
		}
		if ms.Occupancy > occ {
			occ = ms.Occupancy
		}
		if ms.BufferPct > bufPct {
			bufPct = ms.BufferPct
		}
	}

	// Reachability latency through the multi-round fan-out, probed on
	// stream edges (reachable within one BFS round): this measures the
	// per-round scatter cost — owner lookup plus one member round-trip
	// per frontier node — rather than the size of the graph, which is
	// what a negative probe's full walk would mostly measure.
	rnd := rand.New(rand.NewSource(7))
	reachStart := time.Now()
	for i := 0; i < opt.ReachQueries; i++ {
		it := items[rnd.Intn(len(items))]
		resp, err := client.Get(frontURL + "/reachable?src=" + it.Src + "&dst=" + it.Dst)
		if err != nil {
			return clusterResult{}, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	reach := time.Since(reachStart) / time.Duration(opt.ReachQueries)

	return clusterResult{members: n, items: len(items), elapsed: elapsed,
		reach: reach, occ: occ, bufPct: bufPct}, nil
}

func getStats(client *http.Client, url string, st *gss.Stats) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stats status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(st)
}
