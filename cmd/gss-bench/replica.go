package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Replica mode prices the durability and fail-over layer:
//
//  1. Ingest throughput on the same backend with checkpointing off vs
//     on — what the periodic snapshot loop costs the hot path.
//  2. Follower staleness: a read replica polling the primary while it
//     ingests at full speed; reported as the item lag sampled over the
//     run and the time to converge after ingest stops.
type replicaBenchOptions struct {
	Ingesters      int           // concurrent client goroutines
	Items          int           // total stream items
	Batch          int           // server-side decode batch size
	ReqItems       int           // items per bulk HTTP request
	Shards         int           // shard count
	Width          int           // sketch matrix width
	CheckpointEach time.Duration // primary checkpoint interval
	FollowEach     time.Duration // follower poll interval
}

func runReplicaBench(opt replicaBenchOptions, w io.Writer) error {
	if opt.Ingesters < 1 {
		opt.Ingesters = 4
	}
	if opt.Items < 1 {
		opt.Items = 200000
	}
	if opt.Batch < 1 {
		opt.Batch = 1000
	}
	if opt.ReqItems < 1 {
		opt.ReqItems = 10 * opt.Batch
	}
	if opt.Shards < 1 {
		opt.Shards = 16
	}
	if opt.Width < 1 {
		opt.Width = 512
	}
	if opt.CheckpointEach <= 0 {
		opt.CheckpointEach = 200 * time.Millisecond
	}
	if opt.FollowEach <= 0 {
		opt.FollowEach = 100 * time.Millisecond
	}

	cfg := gss.Config{Width: opt.Width, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	items := stream.Generate(stream.DatasetConfig{Name: "replica-bench",
		Nodes: 5000, Edges: opt.Items, DegreeSkew: 1.4, WeightSkew: 1.2,
		MaxWeight: 100, Seed: 7})
	bodies, err := requestBodies(items, opt.ReqItems)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replica bench: %d items, %d ingesters, batch=%d, req=%d, width=%d, shards=%d\n",
		opt.Items, opt.Ingesters, opt.Batch, opt.ReqItems, opt.Width, opt.Shards)

	// Part 1: checkpointing off vs on.
	fmt.Fprintf(w, "\n%-24s %12s %14s %12s\n", "configuration", "items/sec", "checkpoints", "ckpt bytes")
	for _, ckpt := range []bool{false, true} {
		srvOpt := server.Options{Backend: sketch.BackendSharded, Shards: opt.Shards,
			BatchSize: opt.Batch, Logf: func(string, ...interface{}) {}}
		label := "checkpointing off"
		var dir string
		if ckpt {
			label = fmt.Sprintf("checkpointing %s", opt.CheckpointEach)
			dir, err = os.MkdirTemp("", "gss-replica-bench-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			srvOpt.CheckpointDir = dir
			srvOpt.CheckpointInterval = opt.CheckpointEach
		}
		srv, err := server.NewWithOptions(cfg, srvOpt)
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		elapsed, err := driveIngest(ts.URL, bodies, opt.Ingesters)
		if err != nil {
			ts.Close()
			srv.Close()
			return err
		}
		var written, bytesWritten int64
		if ckpt {
			// Force one checkpoint of the final state so the report
			// shows a full-size checkpoint even on runs shorter than
			// the interval.
			resp, err := http.Post(ts.URL+"/checkpoint", "", nil)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			rs := replicaStatsOf(ts.URL)
			if rs.Checkpoint != nil {
				written, bytesWritten = rs.Checkpoint.Written, rs.Checkpoint.LastBytes
			}
		}
		ts.Close()
		srv.Close()
		if !ckpt {
			fmt.Fprintf(w, "%-24s %12.0f %14s %12s\n", label,
				float64(opt.Items)/elapsed.Seconds(), "-", "-")
		} else {
			fmt.Fprintf(w, "%-24s %12.0f %14d %12d\n", label,
				float64(opt.Items)/elapsed.Seconds(), written, bytesWritten)
			record("replica_checkpoint_bytes", float64(bytesWritten), "bytes",
				"configuration", label)
		}
		record("replica_ingest_throughput", float64(opt.Items)/elapsed.Seconds(), "items/sec",
			"configuration", label)
	}

	// Part 2: follower staleness while the primary ingests.
	primary, err := server.NewWithOptions(cfg, server.Options{
		Backend: sketch.BackendSharded, Shards: opt.Shards, BatchSize: opt.Batch})
	if err != nil {
		return err
	}
	defer primary.Close()
	tsP := httptest.NewServer(primary.Handler())
	defer tsP.Close()
	follower, err := server.NewWithOptions(cfg, server.Options{
		Backend: sketch.BackendSharded, Shards: opt.Shards,
		FollowURL: tsP.URL, FollowInterval: opt.FollowEach,
		Logf: func(string, ...interface{}) {}})
	if err != nil {
		return err
	}
	defer follower.Close()
	tsF := httptest.NewServer(follower.Handler())
	defer tsF.Close()

	var maxLag, lagSum, samples int64
	stopSampling := make(chan struct{})
	var samplerDone sync.WaitGroup
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		t := time.NewTicker(opt.FollowEach / 2)
		defer t.Stop()
		for {
			select {
			case <-stopSampling:
				return
			case <-t.C:
				lag := primary.Sketch().Stats().Items - follower.Sketch().Stats().Items
				if lag > maxLag {
					maxLag = lag
				}
				lagSum += lag
				samples++
			}
		}
	}()

	start := time.Now()
	if _, err := driveIngest(tsP.URL, bodies, opt.Ingesters); err != nil {
		close(stopSampling)
		samplerDone.Wait()
		return err
	}
	ingestElapsed := time.Since(start)
	close(stopSampling)
	samplerDone.Wait()

	// Convergence: how long after the last write until the follower
	// serves the final state (bounded by one poll plus one transfer).
	converge := time.Now()
	want := primary.Sketch().Stats().Items
	for follower.Sketch().Stats().Items != want {
		if time.Since(converge) > 30*time.Second {
			return fmt.Errorf("follower never converged: %d vs %d",
				follower.Sketch().Stats().Items, want)
		}
		time.Sleep(time.Millisecond)
	}
	convergence := time.Since(converge)
	rs := replicaStatsOf(tsF.URL)

	fmt.Fprintf(w, "\nfollower staleness (poll %s, primary ingesting %.0f items/s):\n",
		opt.FollowEach, float64(opt.Items)/ingestElapsed.Seconds())
	avg := int64(0)
	if samples > 0 {
		avg = lagSum / samples
	}
	fmt.Fprintf(w, "  item lag during ingest: avg %d, max %d (%d samples)\n", avg, maxLag, samples)
	fmt.Fprintf(w, "  converged %v after last write (interval %s)\n", convergence, opt.FollowEach)
	record("replica_follower_lag_avg", float64(avg), "items")
	record("replica_follower_lag_max", float64(maxLag), "items")
	record("replica_follower_convergence", convergence.Seconds(), "seconds")
	if rs.Follower != nil {
		fmt.Fprintf(w, "  polls=%d applied=%d failed=%d\n",
			rs.Follower.Polls, rs.Follower.Applied, rs.Follower.Failed)
	}

	// Part 3: snapshot-poll vs log-tail transfer cost. Both follower
	// modes bootstrap from one snapshot; the measurement starts after
	// that, so the table prices the steady state — what a converged
	// follower keeps paying per poll interval. The trickle workload (a
	// few items per interval) is where polling is pathological: the
	// snapshot body is dominated by the dense matrix arrays, whose
	// serialized size does not depend on how many items changed — or
	// whether any did.
	fmt.Fprintf(w, "\nsnapshot-poll vs log-tail steady-state transfer (poll %s):\n", opt.FollowEach)
	fmt.Fprintf(w, "%-10s %-9s %10s %14s %12s %14s\n",
		"workload", "mode", "items", "transferred", "bytes/item", "bytes/poll")
	type tkey struct {
		workload string
		tail     bool
	}
	perPoll := make(map[tkey]float64)
	trickleN := 600
	if trickleN > len(items) {
		trickleN = len(items)
	}
	trickleBodies, err := requestBodies(items[:trickleN], 20)
	if err != nil {
		return err
	}
	for _, workload := range []string{"trickle", "firehose"} {
		for _, tail := range []bool{false, true} {
			res, err := measureFollowerTransfer(cfg, opt, bodies, trickleBodies, workload == "trickle", tail)
			if err != nil {
				return err
			}
			mode := "snapshot"
			if tail {
				mode = "tail"
			}
			perItem := float64(res.bytes)
			if res.items > 0 {
				perItem /= float64(res.items)
			}
			fmt.Fprintf(w, "%-10s %-9s %10d %14d %12.0f %14.0f\n",
				workload, mode, res.items, res.bytes, perItem, res.perPoll)
			record("replica_transfer_bytes_per_poll", res.perPoll, "bytes",
				"workload", workload, "mode", mode)
			perPoll[tkey{workload, tail}] = res.perPoll
		}
	}
	for _, workload := range []string{"trickle", "firehose"} {
		snap, tl := perPoll[tkey{workload, false}], perPoll[tkey{workload, true}]
		if tl > 0 {
			fmt.Fprintf(w, "  %s: log tailing moves %.1fx fewer bytes per poll than snapshot polling\n",
				workload, snap/tl)
		}
	}

	fmt.Fprintln(w, "\nCheckpoints ride the same snapshot path queries use, so the cost is one"+
		"\nextra reader per interval; follower staleness is bounded by the poll interval"+
		"\nplus one transfer — a full snapshot when polling, just the item delta when"+
		"\ntailing the primary's operation log.")
	return nil
}

// transferResult is one cell of the part-3 table.
type transferResult struct {
	items   int64   // items ingested during the measured window
	bytes   int64   // snapshot + tailed bytes the follower transferred
	perPoll float64 // bytes per poll tick
}

// measureFollowerTransfer stands up a logging primary and one follower
// (snapshot-polling or log-tailing), lets the follower bootstrap and
// converge on a seed batch, then measures the transfer counters across
// the workload: trickle posts one small request per poll interval,
// firehose drives the full stream at max speed.
func measureFollowerTransfer(cfg gss.Config, opt replicaBenchOptions, bodies, trickleBodies [][]byte, trickle, tail bool) (transferResult, error) {
	var res transferResult
	quiet := func(string, ...interface{}) {}
	logDir, err := os.MkdirTemp("", "gss-replica-bench-log-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(logDir)
	primary, err := server.NewWithOptions(cfg, server.Options{
		Backend: sketch.BackendSharded, Shards: opt.Shards, BatchSize: opt.Batch,
		LogDir: logDir, Logf: quiet})
	if err != nil {
		return res, err
	}
	defer primary.Close()
	tsP := httptest.NewServer(primary.Handler())
	defer tsP.Close()

	// Seed batch: the follower's bootstrap snapshot covers this, keeping
	// the one-time bootstrap cost out of the steady-state numbers.
	if _, err := driveIngest(tsP.URL, bodies[:1], 1); err != nil {
		return res, err
	}

	follower, err := server.NewWithOptions(cfg, server.Options{
		Backend: sketch.BackendSharded, Shards: opt.Shards,
		FollowURL: tsP.URL, FollowInterval: opt.FollowEach, FollowTail: tail,
		Logf: quiet})
	if err != nil {
		return res, err
	}
	defer follower.Close()
	tsF := httptest.NewServer(follower.Handler())
	defer tsF.Close()

	waitConverged := func() error {
		deadline := time.Now().Add(30 * time.Second)
		for follower.Sketch().Stats().Items != primary.Sketch().Stats().Items {
			if time.Now().After(deadline) {
				return fmt.Errorf("follower never converged: %d vs %d",
					follower.Sketch().Stats().Items, primary.Sketch().Stats().Items)
			}
			time.Sleep(time.Millisecond)
		}
		return nil
	}
	if err := waitConverged(); err != nil {
		return res, err
	}
	base := replicaStatsOf(tsF.URL)
	baseItems := primary.Sketch().Stats().Items

	if trickle {
		client := &http.Client{}
		defer client.CloseIdleConnections()
		for _, body := range trickleBodies {
			resp, err := client.Post(tsP.URL+"/ingest", "application/x-ndjson", bytes.NewReader(body))
			if err != nil {
				return res, err
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return res, fmt.Errorf("trickle ingest status %d", resp.StatusCode)
			}
			time.Sleep(opt.FollowEach)
		}
	} else {
		if _, err := driveIngest(tsP.URL, bodies[1:], opt.Ingesters); err != nil {
			return res, err
		}
	}
	if err := waitConverged(); err != nil {
		return res, err
	}
	after := replicaStatsOf(tsF.URL)
	if base.Follower == nil || after.Follower == nil {
		return res, fmt.Errorf("follower stats missing from /replica/stats")
	}
	res.items = primary.Sketch().Stats().Items - baseItems
	res.bytes = (after.Follower.SnapshotBytes + after.Follower.TailedBytes) -
		(base.Follower.SnapshotBytes + base.Follower.TailedBytes)
	if polls := after.Follower.Polls - base.Follower.Polls; polls > 0 {
		res.perPoll = float64(res.bytes) / float64(polls)
	}
	return res, nil
}

func replicaStatsOf(baseURL string) server.ReplicaStats {
	var rs server.ReplicaStats
	resp, err := http.Get(baseURL + "/replica/stats")
	if err != nil {
		return rs
	}
	defer resp.Body.Close()
	_ = json.NewDecoder(resp.Body).Decode(&rs)
	return rs
}

// requestBodies pre-encodes the stream into NDJSON request bodies.
func requestBodies(items []stream.Item, reqItems int) ([][]byte, error) {
	var bodies [][]byte
	for off := 0; off < len(items); off += reqItems {
		end := off + reqItems
		if end > len(items) {
			end = len(items)
		}
		var buf bytes.Buffer
		if err := stream.EncodeNDJSON(&buf, items[off:end]); err != nil {
			return nil, err
		}
		bodies = append(bodies, buf.Bytes())
	}
	return bodies, nil
}

// driveIngest pushes the pre-encoded bodies through POST /ingest with
// n concurrent clients and returns the elapsed wall time.
func driveIngest(url string, bodies [][]byte, n int) (time.Duration, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: n * 2, MaxIdleConnsPerHost: n * 2}}
	defer client.CloseIdleConnections()
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	start := time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				resp, err := client.Post(url+"/ingest", "application/x-ndjson", bytes.NewReader(bodies[i]))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("ingest status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return 0, err
	default:
	}
	return time.Since(start), nil
}
