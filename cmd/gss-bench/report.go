package main

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"time"
)

// Machine-readable results. Every bench mode narrates a human table to
// stdout; with -json <file> it ALSO records each quoted number as one
// flat measurement row. The flat shape — name + label map + value +
// unit — survives mode-specific table layouts, so CI can archive every
// mode's artifact with one schema and diff runs with jq instead of
// screen-scraping the tables.
//
// The collector is a package-level no-op until main enables it, so the
// mode files sprinkle record() calls next to their Fprintf rows without
// threading a handle through every helper.

// benchMeasurement is one quoted number from a bench table.
type benchMeasurement struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
	Unit   string            `json:"unit"`
}

// benchReport is the artifact written to the -json path.
type benchReport struct {
	Schema     int                `json:"schema"` // bump on incompatible shape changes
	Mode       string             `json:"mode"`
	Go         string             `json:"go"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Started    time.Time          `json:"started"`
	ElapsedSec float64            `json:"elapsed_seconds"`
	Results    []benchMeasurement `json:"results"`
}

var reportMu sync.Mutex
var report *benchReport

// enableReport arms the collector for one mode run.
func enableReport(mode string) {
	reportMu.Lock()
	defer reportMu.Unlock()
	report = &benchReport{
		Schema: 1, Mode: mode,
		Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Started:    time.Now().UTC(),
	}
}

// record adds one measurement; labels alternate key, value. A no-op
// unless -json armed the collector.
func record(name string, value float64, unit string, labels ...string) {
	reportMu.Lock()
	defer reportMu.Unlock()
	if report == nil {
		return
	}
	m := benchMeasurement{Name: name, Value: value, Unit: unit}
	if len(labels) > 0 {
		m.Labels = make(map[string]string, len(labels)/2)
		for i := 0; i+1 < len(labels); i += 2 {
			m.Labels[labels[i]] = labels[i+1]
		}
	}
	report.Results = append(report.Results, m)
}

// writeReport finalizes the artifact. Atomic rename so a crashed or
// interrupted run cannot leave a truncated JSON file for CI to parse.
func writeReport(path string) error {
	reportMu.Lock()
	defer reportMu.Unlock()
	if report == nil {
		return nil
	}
	report.ElapsedSec = time.Since(report.Started).Seconds()
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
