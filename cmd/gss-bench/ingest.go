package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"time"

	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/stream"
)

// Server-ingest throughput mode: stand up the real HTTP server once
// per backend, drive it with N concurrent ingester goroutines, and
// report sustained items/sec. Two wire paths are measured:
//
//   - item: one POST /insert per item — the pre-pipeline deployment,
//     every item pays one HTTP request and one global lock acquisition.
//   - bulk: POST /ingest with NDJSON, decoded and inserted in batches —
//     the pipeline path, locks amortized over whole batches.
//
// The single/item row is the baseline the sharded/bulk speedup is
// quoted against.
//
// A second table compares the two bulk ingest planes — NDJSON versus
// the GSB1 binary batch format, where the producer hashes each
// identifier once and the server inserts straight from the carried
// hashes. Both planes are measured back-to-back within a round
// (the cluster bench's round discipline) so the quoted ratio is a
// same-weather comparison, and the reported round is the one with the
// highest combined throughput.
type ingestOptions struct {
	Ingesters int     // concurrent client goroutines
	Items     int     // items per bulk measurement
	ItemItems int     // items per per-item measurement (slower path)
	Batch     int     // server-side decode batch size
	ReqItems  int     // items per bulk HTTP request
	Shards    int     // shard count for the sharded backend
	Width     int     // sketch matrix width
	Nodes     int     // synthetic graph node count
	Scale     float64 // unused in ingest mode; kept for symmetry
}

type ingestResult struct {
	backend, path string
	items         int
	elapsed       time.Duration
}

func (r ingestResult) rate() float64 { return float64(r.items) / r.elapsed.Seconds() }

func runIngestBench(opt ingestOptions, w io.Writer) error {
	if opt.Ingesters < 1 {
		opt.Ingesters = 4
	}
	if opt.Items < 1 {
		opt.Items = 200000
	}
	if opt.ItemItems < 1 {
		opt.ItemItems = opt.Items / 10
		if opt.ItemItems > 20000 {
			opt.ItemItems = 20000
		}
	}
	if opt.Batch < 1 {
		opt.Batch = 1000
	}
	if opt.ReqItems < opt.Batch {
		opt.ReqItems = 10 * opt.Batch
	}
	if opt.Shards < 1 {
		opt.Shards = 16
	}
	if opt.Width < 1 {
		opt.Width = 512
	}
	if opt.Nodes < 1 {
		opt.Nodes = 20000
	}

	items := stream.Generate(stream.DatasetConfig{Name: "ingest-bench",
		Nodes: opt.Nodes, Edges: opt.Items, DegreeSkew: 1.5, WeightSkew: 1.2,
		MaxWeight: 1000, Seed: 42})
	fmt.Fprintf(w, "server-ingest throughput: %d ingesters, batch=%d, req=%d items, width=%d, shards=%d\n",
		opt.Ingesters, opt.Batch, opt.ReqItems, opt.Width, opt.Shards)

	cfg := gss.Config{Width: opt.Width, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	runs := []struct{ backend, path string }{
		{"single", "item"},
		{"single", "bulk"},
		{"concurrent", "bulk"},
		{"sharded", "bulk"},
	}
	var results []ingestResult
	for _, run := range runs {
		res, err := benchOne(run.backend, run.path, cfg, opt, items)
		if err != nil {
			return fmt.Errorf("%s/%s: %w", run.backend, run.path, err)
		}
		results = append(results, res)
	}

	base := results[0].rate()
	fmt.Fprintf(w, "\n%-12s %-6s %10s %12s %10s\n", "backend", "path", "items", "items/sec", "speedup")
	for _, r := range results {
		fmt.Fprintf(w, "%-12s %-6s %10d %12.0f %9.2fx\n",
			r.backend, r.path, r.items, r.rate(), r.rate()/base)
		record("ingest_throughput", r.rate(), "items/sec",
			"backend", r.backend, "path", r.path)
	}

	// Plane comparison: same stream, same server configuration, NDJSON
	// versus GSB1 binary. The planes are interleaved inside one round so
	// a host load spike skews a whole round, not one plane, and the
	// round with the highest combined throughput is the one reported —
	// per-plane best-of would let the two planes sample different host
	// weather and fabricate a ratio.
	const rounds = 3
	planeBackends := []string{"single", "concurrent", "sharded"}
	type planePair struct{ nd, bin ingestResult }
	best := make(map[string]planePair)
	for r := 0; r < rounds; r++ {
		for _, backend := range planeBackends {
			nd, err := benchOne(backend, "bulk", cfg, opt, items)
			if err != nil {
				return fmt.Errorf("%s/ndjson round %d: %w", backend, r, err)
			}
			bin, err := benchOne(backend, "binary", cfg, opt, items)
			if err != nil {
				return fmt.Errorf("%s/binary round %d: %w", backend, r, err)
			}
			cur, ok := best[backend]
			if !ok || nd.rate()+bin.rate() > cur.nd.rate()+cur.bin.rate() {
				best[backend] = planePair{nd: nd, bin: bin}
			}
		}
	}
	fmt.Fprintf(w, "\ningest planes: NDJSON vs GSB1 binary (interleaved, best of %d rounds)\n", rounds)
	fmt.Fprintf(w, "%-12s %14s %14s %8s\n", "backend", "ndjson/sec", "binary/sec", "ratio")
	for _, backend := range planeBackends {
		p := best[backend]
		fmt.Fprintf(w, "%-12s %14.0f %14.0f %7.2fx\n",
			backend, p.nd.rate(), p.bin.rate(), p.bin.rate()/p.nd.rate())
		record("ingest_plane_throughput", p.nd.rate(), "items/sec",
			"backend", backend, "plane", "ndjson")
		record("ingest_plane_throughput", p.bin.rate(), "items/sec",
			"backend", backend, "plane", "binary")
	}
	return nil
}

func benchOne(backend, path string, cfg gss.Config, opt ingestOptions, items []stream.Item) (ingestResult, error) {
	srv, err := server.NewWithOptions(cfg, server.Options{
		Backend: backend, Shards: opt.Shards, BatchSize: opt.Batch})
	if err != nil {
		return ingestResult{}, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns: opt.Ingesters * 2, MaxIdleConnsPerHost: opt.Ingesters * 2}}
	defer client.CloseIdleConnections()

	n := len(items)
	if path == "item" {
		n = opt.ItemItems
	}
	work := items[:n]

	// Pre-render request bodies outside the timed section so the
	// measurement is server ingest, not client-side encoding.
	bodies := make([][][]byte, opt.Ingesters) // per ingester, per request
	per := (n + opt.Ingesters - 1) / opt.Ingesters
	for g := 0; g < opt.Ingesters; g++ {
		lo, hi := g*per, (g+1)*per
		if hi > n {
			hi = n
		}
		if lo >= hi {
			continue
		}
		chunk := work[lo:hi]
		if path == "item" {
			for _, it := range chunk {
				bodies[g] = append(bodies[g], []byte(fmt.Sprintf(
					`{"src":%q,"dst":%q,"weight":%d}`, it.Src, it.Dst, it.Weight)))
			}
			continue
		}
		for off := 0; off < len(chunk); off += opt.ReqItems {
			end := off + opt.ReqItems
			if end > len(chunk) {
				end = len(chunk)
			}
			var buf bytes.Buffer
			if path == "binary" {
				// Pre-hashing here is the plane's contract, not a benchmark
				// cheat: the producer hashes once at the edge, untimed for
				// the server measurement. One frame per server decode batch
				// keeps the insert granularity identical across planes.
				bw := stream.NewBinaryBatchWriter(&buf)
				for o := off; o < end; o += opt.Batch {
					e := o + opt.Batch
					if e > end {
						e = end
					}
					if err := bw.WriteItems(chunk[o:e]); err != nil {
						return ingestResult{}, err
					}
				}
				if err := bw.Flush(); err != nil {
					return ingestResult{}, err
				}
			} else if err := stream.EncodeNDJSON(&buf, chunk[off:end]); err != nil {
				return ingestResult{}, err
			}
			bodies[g] = append(bodies[g], buf.Bytes())
		}
	}

	url := ts.URL + "/ingest"
	contentType := "application/x-ndjson"
	if path == "binary" {
		contentType = stream.ContentTypeBinary
	}
	if path == "item" {
		url = ts.URL + "/insert"
	}
	var wg sync.WaitGroup
	errs := make(chan error, opt.Ingesters)
	start := time.Now()
	for g := 0; g < opt.Ingesters; g++ {
		wg.Add(1)
		go func(reqs [][]byte) {
			defer wg.Done()
			for _, body := range reqs {
				resp, err := client.Post(url, contentType, bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}(bodies[g])
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errs:
		return ingestResult{}, err
	default:
	}
	if got := srv.Sketch().Stats().Items; got != int64(n) {
		return ingestResult{}, fmt.Errorf("ingested %d items, want %d", got, n)
	}
	return ingestResult{backend: backend, path: path, items: n, elapsed: elapsed}, nil
}
