package main

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

// Query benchmark: loads one sketch and measures the query stack — the
// edge primitive, the 1-hop set primitives and BFS-style reachability —
// on both the hash-native fast path and the retained pre-index
// reference implementations, so the speedup of the reverse column
// index, the occupancy-word row walk and the allocation-free traversal
// plane is quoted from the same loaded sketch.
type queryBenchOptions struct {
	Items   int     // stream items to load
	Nodes   int     // node universe of the synthetic stream
	Width   int     // sketch matrix width
	MinTime float64 // seconds each measurement must cover
}

func (o queryBenchOptions) withDefaults() queryBenchOptions {
	if o.Items <= 0 {
		o.Items = 200000
	}
	if o.Nodes <= 0 {
		o.Nodes = 20000
	}
	if o.Width <= 0 {
		o.Width = 512
	}
	if o.MinTime <= 0 {
		o.MinTime = 0.3
	}
	return o
}

// benchRate runs fn in growing rounds until minTime is covered and
// returns calls per second.
func benchRate(minTime float64, fn func(i int)) float64 {
	n, total := 0, time.Duration(0)
	round := 16
	for total.Seconds() < minTime {
		start := time.Now()
		for i := 0; i < round; i++ {
			fn(n + i)
		}
		total += time.Since(start)
		n += round
		if round < 1<<16 {
			round *= 2
		}
	}
	return float64(n) / total.Seconds()
}

func runQueryBench(opt queryBenchOptions, w io.Writer) error {
	opt = opt.withDefaults()
	items := stream.Generate(stream.DatasetConfig{
		Name: "querybench", Nodes: opt.Nodes, Edges: opt.Items,
		DegreeSkew: 1.5, WeightSkew: 1.3, MaxWeight: 100, UniformMix: 0.3, Seed: 7,
	})
	g, err := gss.New(gss.Config{Width: opt.Width})
	if err != nil {
		return err
	}
	g.InsertBatch(items)
	st := g.Stats()
	fmt.Fprintf(w, "query bench: %d items, width %d, %d matrix edges, %d buffered, %d indexed nodes\n",
		st.Items, st.Width, st.MatrixEdges, st.BufferEdges, st.IndexedNodes)

	rng := rand.New(rand.NewSource(11))
	endpoints := make([]string, 0, 2048)
	hashes := make([]uint64, 0, 2048)
	for i := 0; i < 2048; i++ {
		it := items[rng.Intn(len(items))]
		v := it.Src
		if i%2 == 1 {
			v = it.Dst
		}
		endpoints = append(endpoints, v)
		hashes = append(hashes, g.NodeHash(v))
	}
	pick := func(i int) (string, uint64) {
		j := i % len(endpoints)
		return endpoints[j], hashes[j]
	}

	fmt.Fprintf(w, "\n%-28s %14s %14s %9s\n", "workload", "before q/s", "after q/s", "speedup")
	row := func(name string, before, after float64) {
		fmt.Fprintf(w, "%-28s %14.0f %14.0f %8.1fx\n", name, before, after, after/before)
		record("query_rate", before, "queries/sec", "workload", name, "stack", "reference")
		record("query_rate", after, "queries/sec", "workload", name, "stack", "hash-native")
	}

	// Edge primitive: unchanged algorithmically, quoted for the mix.
	edgeRate := benchRate(opt.MinTime, func(i int) {
		it := items[i%len(items)]
		g.EdgeWeight(it.Src, it.Dst)
	})
	fmt.Fprintf(w, "%-28s %14s %14.0f %9s\n", "edge weight", "-", edgeRate, "-")
	record("query_rate", edgeRate, "queries/sec", "workload", "edge weight")

	// 1-hop successors: occupancy-word row walk vs per-slot strided scan.
	var hbuf []uint64
	succScan := benchRate(opt.MinTime, func(i int) {
		_, hv := pick(i)
		g.SuccessorHashesScan(hv)
	})
	succFast := benchRate(opt.MinTime, func(i int) {
		_, hv := pick(i)
		hbuf = g.AppendSuccessorHashes(hv, hbuf[:0])
	})
	row("1-hop successors (hash)", succScan, succFast)

	// 1-hop precursors: reverse column index vs full-matrix strided scan.
	precScan := benchRate(opt.MinTime, func(i int) {
		_, hv := pick(i)
		g.PrecursorHashesScan(hv)
	})
	precFast := benchRate(opt.MinTime, func(i int) {
		_, hv := pick(i)
		hbuf = g.AppendPrecursorHashes(hv, hbuf[:0])
	})
	row("1-hop precursors (hash)", precScan, precFast)

	// String-boundary 1-hop set queries (expansion + sort included).
	succStr := benchRate(opt.MinTime, func(i int) {
		v, _ := pick(i)
		g.Successors(v)
	})
	precStr := benchRate(opt.MinTime, func(i int) {
		v, _ := pick(i)
		g.Precursors(v)
	})
	fmt.Fprintf(w, "%-28s %14s %14.0f %9s\n", "successors (strings)", "-", succStr, "-")
	fmt.Fprintf(w, "%-28s %14s %14.0f %9s\n", "precursors (strings)", "-", precStr, "-")
	record("query_rate", succStr, "queries/sec", "workload", "successors (strings)")
	record("query_rate", precStr, "queries/sec", "workload", "precursors (strings)")

	// Compound traversals: the before-side is the full pre-PR stack —
	// strided scan primitives under the string-plane reference
	// algorithms (gss.ScanView) — the after-side the hash-native
	// traversal over the indexed primitives.
	ref := gss.ScanView{G: g}
	reachRef := benchRate(opt.MinTime, func(i int) {
		v, _ := pick(i)
		u, _ := pick(i + 7)
		query.Reachable(ref, v, u)
	})
	reachFast := benchRate(opt.MinTime, func(i int) {
		v, _ := pick(i)
		u, _ := pick(i + 7)
		query.Reachable(g, v, u)
	})
	row("reachability (BFS)", reachRef, reachFast)

	// 2-hop neighborhood: dense frontier vs string frontier.
	khopRef := benchRate(opt.MinTime, func(i int) {
		v, _ := pick(i)
		query.KHop(ref, v, 2)
	})
	khopFast := benchRate(opt.MinTime, func(i int) {
		v, _ := pick(i)
		query.KHop(g, v, 2)
	})
	row("2-hop neighborhood", khopRef, khopFast)

	// Node aggregate (successors + edge queries per successor).
	outRef := benchRate(opt.MinTime, func(i int) {
		v, _ := pick(i)
		query.NodeOut(ref, v)
	})
	outFast := benchRate(opt.MinTime, func(i int) {
		v, _ := pick(i)
		query.NodeOut(g, v)
	})
	row("node out-weight", outRef, outFast)
	return nil
}
