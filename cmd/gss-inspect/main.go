// Command gss-inspect loads a stream file (GSS1 records, GSB1 framed
// batches, or a text edge list — autodetected), builds a Graph Stream
// Sketch over it, and reports stream statistics, sketch occupancy and
// buffer health — the operational view a capacity planner needs before
// deploying GSS on a live stream. It can also answer ad-hoc queries.
//
// Usage:
//
//	gss-inspect -in traffic.gss
//	gss-inspect -in traffic.gss -width 2000 -fpbits 12
//	gss-inspect -in traffic.gss -edge "n1->n2" -succ n1 -reach "n1->n9"
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/adjlist"
	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

func main() {
	var (
		in     = flag.String("in", "", "input GSS1 stream file (required)")
		width  = flag.Int("width", 0, "matrix width; 0 = sqrt(edge count) heuristic")
		fpbits = flag.Int("fpbits", 16, "fingerprint bits")
		rooms  = flag.Int("rooms", 2, "rooms per bucket")
		seqlen = flag.Int("seqlen", 16, "square-hashing sequence length r")
		edge   = flag.String("edge", "", "edge query, formatted src->dst")
		succ   = flag.String("succ", "", "1-hop successor query for a node")
		prec   = flag.String("prec", "", "1-hop precursor query for a node")
		reach  = flag.String("reach", "", "reachability query, formatted src->dst")
	)
	flag.Parse()
	if *in == "" {
		fail("missing -in")
	}
	raw, err := os.ReadFile(*in)
	if err != nil {
		fail(err.Error())
	}
	// Autodetect: GSS1 record streams and GSB1 framed batch files each
	// start with their codec magic; anything else is treated as a text
	// edge list.
	var items []stream.Item
	if bytes.HasPrefix(raw, []byte("GSS1")) {
		items, err = stream.ReadAll(bytes.NewReader(raw))
	} else if bytes.HasPrefix(raw, []byte("GSB1")) {
		var hashed []stream.HashedItem
		hashed, err = stream.ReadAllBinary(bytes.NewReader(raw))
		items = stream.StripHashed(hashed, nil)
	} else {
		items, err = stream.ReadText(bytes.NewReader(raw))
	}
	if err != nil {
		fail(err.Error())
	}
	exact := adjlist.New()
	for _, it := range items {
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	w := *width
	if w <= 0 {
		w = 1
		for w*w < exact.EdgeCount() {
			w++
		}
	}
	g, err := gss.New(gss.Config{Width: w, FingerprintBits: *fpbits,
		Rooms: *rooms, SeqLen: *seqlen, Candidates: *seqlen})
	if err != nil {
		fail(err.Error())
	}
	for _, it := range items {
		g.Insert(it)
	}

	s := g.Stats()
	fmt.Printf("stream:   %d items, %d nodes, %d distinct edges, max out-degree %d\n",
		len(items), exact.NodeCount(), exact.EdgeCount(), exact.MaxOutDegree())
	fmt.Printf("sketch:   width=%d fp=%dbit rooms=%d r=%d k=%d\n",
		s.Width, s.FingerprintBits, s.Rooms, s.SeqLen, s.Candidates)
	fmt.Printf("matrix:   %d edges resident, occupancy %.2f%%, %d KB\n",
		s.MatrixEdges, 100*s.Occupancy, s.MatrixBytes/1024)
	fmt.Printf("buffer:   %d left-over edges (%.4f%% of sketch edges)\n",
		s.BufferEdges, 100*s.BufferPct)

	if *edge != "" {
		src, dst := splitArrow(*edge)
		w, ok := g.EdgeWeight(src, dst)
		truth, _ := exact.EdgeWeight(src, dst)
		fmt.Printf("edge %s->%s: sketch=%d found=%v exact=%d\n", src, dst, w, ok, truth)
	}
	if *succ != "" {
		fmt.Printf("successors(%s): %v\n", *succ, g.Successors(*succ))
	}
	if *prec != "" {
		fmt.Printf("precursors(%s): %v\n", *prec, g.Precursors(*prec))
	}
	if *reach != "" {
		src, dst := splitArrow(*reach)
		fmt.Printf("reachable %s->%s: sketch=%v exact=%v\n",
			src, dst, query.Reachable(g, src, dst), exact.Reachable(src, dst))
	}
}

func splitArrow(s string) (string, string) {
	parts := strings.SplitN(s, "->", 2)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		fail(fmt.Sprintf("bad edge syntax %q, want src->dst", s))
	}
	return parts[0], parts[1]
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "gss-inspect:", msg)
	os.Exit(2)
}
