// Command gss-server runs the HTTP-facing Graph Stream Sketch service
// (see internal/server for the API).
//
//	gss-server -addr :8080 -width 2000 -fpbits 16
//	gss-server -backend sharded -shards 16 -ingest-workers 4
//	gss-server -backend windowed -window-span 3600 -window-generations 4
//
// Durable primary (checkpoints + operation log) and a log-tailing read
// replica following it:
//
//	gss-server -addr :8080 -checkpoint-dir /var/lib/gss -log-dir /var/lib/gss/oplog
//	gss-server -addr :8081 -follow http://primary:8080 -follow-tail
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/sketch"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		width  = flag.Int("width", 1000, "matrix width m (≈ sqrt of expected edge count)")
		fpbits = flag.Int("fpbits", 16, "fingerprint bits")
		rooms  = flag.Int("rooms", 2, "rooms per bucket")
		seqlen = flag.Int("seqlen", 16, "square-hashing sequence length r")

		backend = flag.String("backend", sketch.BackendConcurrent,
			"sketch backend: "+strings.Join(sketch.Backends(), "|"))
		shards = flag.Int("shards", 8, "shard count (sharded backend only)")
		span   = flag.Int64("window-span", sketch.DefaultWindowSpan,
			"windowed backend: window length in stream-time units")
		gens = flag.Int("window-generations", sketch.DefaultWindowGenerations,
			"windowed backend: generation count (expiry granularity)")
		batch   = flag.Int("batch", 512, "default /ingest decode batch size")
		queue   = flag.Int("ingest-queue", 64, "async ingest queue capacity (batches)")
		workers = flag.Int("ingest-workers", 2, "async ingest worker goroutines")

		ckptDir = flag.String("checkpoint-dir", "",
			"durable checkpoints: recover from and periodically snapshot into this directory")
		ckptEvery = flag.Duration("checkpoint-interval", 30*time.Second,
			"time between periodic checkpoints")
		ckptKeep = flag.Int("checkpoint-keep", 3, "checkpoints to retain")
		logDir   = flag.String("log-dir", "",
			"append-only operation log: append every applied batch, replay on recovery, serve GET /log to tailing followers")
		logSync = flag.Duration("log-sync", 0,
			"operation log fsync batching window (0 = 50ms default, negative = fsync every append)")
		logSegBytes = flag.Int64("log-segment-bytes", 0,
			"operation log segment rotation threshold (0 = 8MiB default)")
		follow = flag.String("follow", "",
			"run as a read replica of the primary at this base URL (writes answer 403)")
		followEvery = flag.Duration("follow-interval", 2*time.Second,
			"read replica: poll interval")
		followTail = flag.Bool("follow-tail", false,
			"read replica: tail the primary's operation log instead of re-fetching snapshots")

		debugAddr = flag.String("debug-addr", "",
			"serve net/http/pprof on this separate address (empty disables; keep it off the service port)")
		slowQuery = flag.Duration("slow-query-log", 0,
			"log any request slower than this threshold, with its request ID (0 disables)")
	)
	flag.Parse()

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	var slow *telemetry.SlowQueryLog
	if *slowQuery > 0 {
		slow = telemetry.NewSlowQueryLog(*slowQuery, logger)
		// Registered before srv's deferred Close, so LIFO ordering drains
		// the log only after the server has stopped observing into it.
		defer slow.Close()
	}

	srv, err := server.NewWithOptions(
		gss.Config{Width: *width, FingerprintBits: *fpbits,
			Rooms: *rooms, SeqLen: *seqlen, Candidates: *seqlen},
		server.Options{Backend: *backend, Shards: *shards,
			WindowSpan: *span, WindowGenerations: *gens,
			BatchSize: *batch, QueueDepth: *queue, Workers: *workers,
			CheckpointDir: *ckptDir, CheckpointInterval: *ckptEvery,
			CheckpointKeep: *ckptKeep,
			LogDir:         *logDir, LogSyncEvery: *logSync, LogSegmentBytes: *logSegBytes,
			FollowURL: *follow, FollowInterval: *followEvery, FollowTail: *followTail,
			Logf: telemetry.Logf(logger), SlowQuery: slow})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gss-server:", err)
		os.Exit(2)
	}
	defer srv.Close()
	role := "primary"
	if *follow != "" {
		role = "follower of " + *follow
		if *followTail {
			role += " (log-tailing)"
		}
	}
	if *ckptDir != "" {
		role += ", checkpointing to " + *ckptDir
	}
	if *logDir != "" {
		role += ", logging to " + *logDir
	}
	fmt.Printf("gss-server listening on %s (backend=%s width=%d fp=%dbit rooms=%d r=%d batch=%d; %s)\n",
		*addr, *backend, *width, *fpbits, *rooms, *seqlen, *batch, role)

	if *debugAddr != "" {
		dbg, err := telemetry.StartDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gss-server: debug listener:", err)
			os.Exit(2)
		}
		defer dbg.Close()
		fmt.Printf("gss-server: pprof debug listener on http://%s/debug/pprof/\n", dbg.Addr())
	}

	// SIGINT/SIGTERM shut down gracefully: stop accepting requests,
	// then Close the server — which drains the async ingest queue and
	// takes the final checkpoint the ops runbook promises. A crash
	// (SIGKILL, OOM) skips all of this; that is what the periodic
	// checkpoints are for.
	// ReadHeaderTimeout bounds how long a client may dribble request
	// headers (unset, a slow-header client pins a connection forever —
	// Slowloris); no ReadTimeout, because /ingest legitimately streams
	// arbitrarily long bodies. IdleTimeout reclaims keep-alive
	// connections producers abandoned.
	hs := &http.Server{Addr: *addr, Handler: srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second, IdleTimeout: 2 * time.Minute}
	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		fmt.Printf("gss-server: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(drained)
	}()
	err = hs.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gss-server:", err)
		os.Exit(1)
	}
	// ListenAndServe returns the moment Shutdown is called; wait for
	// the drain to complete so the deferred Close (final checkpoint)
	// runs after the last in-flight ingest, not concurrently with it.
	<-drained
}
