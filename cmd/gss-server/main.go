// Command gss-server runs the HTTP-facing Graph Stream Sketch service
// (see internal/server for the API).
//
//	gss-server -addr :8080 -width 2000 -fpbits 16
//	gss-server -backend sharded -shards 16 -ingest-workers 4
//	gss-server -backend windowed -window-span 3600 -window-generations 4
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/gss"
	"repro/internal/server"
	"repro/internal/sketch"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		width  = flag.Int("width", 1000, "matrix width m (≈ sqrt of expected edge count)")
		fpbits = flag.Int("fpbits", 16, "fingerprint bits")
		rooms  = flag.Int("rooms", 2, "rooms per bucket")
		seqlen = flag.Int("seqlen", 16, "square-hashing sequence length r")

		backend = flag.String("backend", sketch.BackendConcurrent,
			"sketch backend: "+strings.Join(sketch.Backends(), "|"))
		shards = flag.Int("shards", 8, "shard count (sharded backend only)")
		span   = flag.Int64("window-span", sketch.DefaultWindowSpan,
			"windowed backend: window length in stream-time units")
		gens = flag.Int("window-generations", sketch.DefaultWindowGenerations,
			"windowed backend: generation count (expiry granularity)")
		batch   = flag.Int("batch", 512, "default /ingest decode batch size")
		queue   = flag.Int("ingest-queue", 64, "async ingest queue capacity (batches)")
		workers = flag.Int("ingest-workers", 2, "async ingest worker goroutines")
	)
	flag.Parse()

	srv, err := server.NewWithOptions(
		gss.Config{Width: *width, FingerprintBits: *fpbits,
			Rooms: *rooms, SeqLen: *seqlen, Candidates: *seqlen},
		server.Options{Backend: *backend, Shards: *shards,
			WindowSpan: *span, WindowGenerations: *gens,
			BatchSize: *batch, QueueDepth: *queue, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gss-server:", err)
		os.Exit(2)
	}
	defer srv.Close()
	fmt.Printf("gss-server listening on %s (backend=%s width=%d fp=%dbit rooms=%d r=%d batch=%d)\n",
		*addr, *backend, *width, *fpbits, *rooms, *seqlen, *batch)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "gss-server:", err)
		os.Exit(1)
	}
}
