// Command gss-server runs the HTTP-facing Graph Stream Sketch service
// (see internal/server for the API).
//
//	gss-server -addr :8080 -width 2000 -fpbits 16
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/gss"
	"repro/internal/server"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		width  = flag.Int("width", 1000, "matrix width m (≈ sqrt of expected edge count)")
		fpbits = flag.Int("fpbits", 16, "fingerprint bits")
		rooms  = flag.Int("rooms", 2, "rooms per bucket")
		seqlen = flag.Int("seqlen", 16, "square-hashing sequence length r")
	)
	flag.Parse()

	srv, err := server.New(gss.Config{Width: *width, FingerprintBits: *fpbits,
		Rooms: *rooms, SeqLen: *seqlen, Candidates: *seqlen})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gss-server:", err)
		os.Exit(2)
	}
	fmt.Printf("gss-server listening on %s (width=%d fp=%dbit rooms=%d r=%d)\n",
		*addr, *width, *fpbits, *rooms, *seqlen)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "gss-server:", err)
		os.Exit(1)
	}
}
