// Command gss-gen writes a synthetic graph-stream dataset to a GSS1
// binary stream file (see internal/stream's codec), a GSB1 framed
// batch file (the pre-hashed /ingest binary body), or a text edge
// list.
//
// Usage:
//
//	gss-gen -dataset cit-HepPh -scale 0.1 -out cit.gss
//	gss-gen -nodes 10000 -edges 100000 -skew 1.8 -out custom.gss
//	gss-gen -dataset lkml-reply -format gsb1 -out lkml.gsb
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/stream"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "named dataset: email-EuAll, cit-HepPh, web-NotreDame, lkml-reply, Caida-networkflow")
		scale   = flag.Float64("scale", 1.0, "scale factor for the named dataset")
		nodes   = flag.Int("nodes", 0, "custom dataset: node universe size")
		edges   = flag.Int("edges", 0, "custom dataset: stream item count")
		skew    = flag.Float64("skew", 1.8, "custom dataset: degree Zipf skew")
		labels  = flag.Int("labels", 0, "number of distinct edge labels (0 = unlabeled)")
		seed    = flag.Int64("seed", 1, "generation seed")
		format  = flag.String("format", "gss1", "output format: gss1 (binary record stream), gsb1 (framed pre-hashed batches, the /ingest binary body), or text (tab-separated edge list)")
		out     = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fail("missing -out")
	}
	cfg, err := resolveConfig(*dataset, *scale, *nodes, *edges, *skew, *seed)
	if err != nil {
		fail(err.Error())
	}
	cfg.Labels = *labels

	f, err := os.Create(*out)
	if err != nil {
		fail(err.Error())
	}
	defer f.Close()
	switch *format {
	case "gss1":
		err = stream.WriteAll(f, stream.NewGenerator(cfg))
	case "gsb1":
		err = writeGSB1(f, stream.NewGenerator(cfg))
	case "text":
		err = stream.WriteText(f, stream.Generate(cfg))
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fail(err.Error())
	}
	fmt.Printf("wrote %s: %d items over %d nodes (%s)\n", *out, cfg.Edges, cfg.Nodes, cfg.Name)
}

// writeGSB1 streams the dataset as framed pre-hashed batches — the
// exact body a producer posts to /ingest with Content-Type
// application/x-gss-batch, each identifier hashed once here and never
// again downstream. Frames of 4096 items keep memory flat however
// large the dataset.
func writeGSB1(w io.Writer, src stream.Source) error {
	bw := stream.NewBinaryBatchWriter(w)
	batch := make([]stream.Item, 0, 4096)
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		batch = append(batch, it)
		if len(batch) == cap(batch) {
			if err := bw.WriteItems(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	if err := bw.WriteItems(batch); err != nil {
		return err
	}
	return bw.Flush()
}

func resolveConfig(dataset string, scale float64, nodes, edges int, skew float64, seed int64) (stream.DatasetConfig, error) {
	if dataset == "" {
		if nodes <= 0 || edges <= 0 {
			return stream.DatasetConfig{}, fmt.Errorf("need -dataset, or -nodes and -edges")
		}
		return stream.DatasetConfig{Name: "custom", Nodes: nodes, Edges: edges,
			DegreeSkew: skew, WeightSkew: 1.5, MaxWeight: 1000, Seed: seed}, nil
	}
	for _, c := range []stream.DatasetConfig{
		stream.EmailEuAll(), stream.CitHepPh(), stream.WebNotreDame(),
		stream.LkmlReply(), stream.Caida(),
	} {
		if strings.EqualFold(c.Name, dataset) {
			c = c.Scaled(scale)
			c.Seed = seed
			return c, nil
		}
	}
	return stream.DatasetConfig{}, fmt.Errorf("unknown dataset %q", dataset)
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "gss-gen:", msg)
	os.Exit(2)
}
