// Command gss-router fronts N unmodified gss-server members as one
// logical Graph Stream Sketch (see internal/cluster for the routing
// rules: rendezvous-hash partitioning by source node, proxied
// single-member queries, scatter-gathered global ones, health-probed
// fail-over to follower replicas).
//
//	gss-router -addr :8090 \
//	    -member http://a:8080,http://b:8080,http://c:8080
//
// With a follower replica covering member a:
//
//	gss-router -addr :8090 \
//	    -member http://a:8080,http://b:8080,http://c:8080 \
//	    -failover http://a:8080=http://a-replica:8081 \
//	    -probe-interval 2s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", ":8090", "listen address")
		members = flag.String("member", "",
			"comma-separated member base URLs (required), e.g. http://a:8080,http://b:8080")
		failover = flag.String("failover", "",
			"comma-separated primary=followerURL pairs; reads for a down primary fail over to its follower")
		probeEvery = flag.Duration("probe-interval", 2*time.Second,
			"health probe interval (each member's /healthz)")
		batch    = flag.Int("batch", 512, "/ingest decode batch size")
		spillDir = flag.String("spill-dir", "",
			"durably absorb writes for down partitions into per-member spill logs under this directory, replayed on recovery")
		spillMax = flag.Int64("spill-max-bytes", 0,
			"per-member spill log budget (0 = 64MiB default); at the cap writes answer 429 again")
		allowMembership = flag.Bool("allow-membership-changes", false,
			"enable the live-migration admin endpoints (POST /cluster/members adds a member, POST /cluster/drain removes one)")
		stateDir = flag.String("state-dir", "",
			"persist cluster state here: the committed member list (overrides -member after a membership change) and the journal that lets a restart roll an interrupted migration back or forward")
		readTimeout = flag.Duration("read-timeout", 15*time.Second,
			"per-request deadline budget for read queries, fan-out included (0 disables; a request may narrow it with ?timeout_ms=)")
		readRetries = flag.Int("read-retries", 2,
			"extra attempts for an idempotent member read across primary and follower (-1 disables retries)")
		allowPartial = flag.Bool("allow-partial-reads", false,
			"let ?partial=1 requests accept a scatter-gather merge over the surviving members, flagged with partial/missing_members markers")
		maxRespBytes = flag.Int64("max-member-response-bytes", 0,
			"cap on one member's response body during scatter-gather decodes (0 = 64MiB default)")

		debugAddr = flag.String("debug-addr", "",
			"serve net/http/pprof on this separate address (empty disables; keep it off the service port)")
		slowQuery = flag.Duration("slow-query-log", 0,
			"log any request slower than this threshold, with its request ID and per-member timings (0 disables)")
	)
	flag.Parse()

	if *members == "" {
		fmt.Fprintln(os.Stderr, "gss-router: -member is required")
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	var slow *telemetry.SlowQueryLog
	if *slowQuery > 0 {
		slow = telemetry.NewSlowQueryLog(*slowQuery, logger)
		// Registered before rt's deferred Close, so LIFO ordering drains
		// the log only after the router has stopped observing into it.
		defer slow.Close()
	}
	cfg := cluster.Config{
		Members:                strings.Split(*members, ","),
		ProbeInterval:          *probeEvery,
		BatchSize:              *batch,
		SpillDir:               *spillDir,
		SpillMaxBytes:          *spillMax,
		AllowMembershipChanges: *allowMembership,
		StateDir:               *stateDir,
		ReadTimeout:            *readTimeout,
		ReadRetries:            *readRetries,
		MaxResponseBytes:       *maxRespBytes,
		AllowPartialReads:      *allowPartial,
		Logf:                   telemetry.Logf(logger),
		SlowQuery:              slow,
	}
	if *readRetries <= 0 {
		// Config treats 0 as "use the default"; the flag's 0 and -1 both
		// mean "no retries".
		cfg.ReadRetries = -1
	}
	if *failover != "" {
		cfg.Failover = make(map[string]string)
		for _, pair := range strings.Split(*failover, ",") {
			primary, follower, ok := strings.Cut(pair, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "gss-router: bad -failover pair %q (want primary=followerURL)\n", pair)
				os.Exit(2)
			}
			cfg.Failover[primary] = follower
		}
	}
	rt, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gss-router:", err)
		os.Exit(2)
	}
	defer rt.Close()
	role := ""
	if *spillDir != "" {
		role = ", spilling to " + *spillDir
	}
	if *allowMembership {
		role += ", membership changes enabled"
	}
	if *allowPartial {
		role += ", partial reads enabled"
	}
	fmt.Printf("gss-router listening on %s (%d members, %d with followers, probe every %s%s)\n",
		*addr, len(cfg.Members), len(cfg.Failover), *probeEvery, role)

	if *debugAddr != "" {
		dbg, err := telemetry.StartDebug(*debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gss-router: debug listener:", err)
			os.Exit(2)
		}
		defer dbg.Close()
		fmt.Printf("gss-router: pprof debug listener on http://%s/debug/pprof/\n", dbg.Addr())
	}

	// Same header/idle hardening as gss-server: a slow-header client
	// must not pin a connection, while /ingest bodies may stream for as
	// long as they like.
	hs := &http.Server{Addr: *addr, Handler: rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second, IdleTimeout: 2 * time.Minute}
	drained := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		fmt.Printf("gss-router: %v, shutting down\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(ctx)
		close(drained)
	}()
	err = hs.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gss-router:", err)
		os.Exit(1)
	}
	// Wait for in-flight requests to finish before the deferred Close
	// cancels their member fan-outs.
	<-drained
}
