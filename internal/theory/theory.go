// Package theory implements the closed-form accuracy and buffer-size
// models of §VI: the edge-collision probability (Eq. 8-12) behind the
// Fig. 3 surfaces, the per-primitive correct rates, and the left-over
// probability bound (Eq. 13-18). The experiment harness prints these
// next to the measured values so theory and practice can be compared
// directly.
package theory

import "math"

// EdgeCorrectRate is Eq. 12: the probability that an edge query on edge
// e is exact, where edges is |E|, adjacent is D (edges sharing an
// endpoint with e) and m is the node-hash range M.
//
//	P = exp(-(|E| + (M-1)·D) / M²)
func EdgeCorrectRate(edges, adjacent int64, m float64) float64 {
	if m <= 0 {
		return 0
	}
	return math.Exp(-(float64(edges) + (m-1)*float64(adjacent)) / (m * m))
}

// SuccessorCorrectRate is the §VI-B rate for a 1-hop successor (or
// precursor) query on a node v with degree d in a graph of |V| nodes:
// P^(|V|-d), with P the per-candidate edge correct rate. Following the
// analysis, each non-successor v' must avoid colliding into an existing
// edge (v,v').
func SuccessorCorrectRate(nodes, degree, edges int64, adjacent int64, m float64) float64 {
	p := EdgeCorrectRate(edges, adjacent, m)
	exponent := float64(nodes - degree)
	if exponent < 0 {
		exponent = 0
	}
	return math.Pow(p, exponent)
}

// NodeCollisionFreeRate is the §IV estimate that a node collides with no
// other node under a uniform map of |V| nodes into [0,M):
// (1-1/M)^(|V|-1) ≈ exp(-(|V|-1)/M).
func NodeCollisionFreeRate(nodes int64, m float64) float64 {
	if m <= 0 {
		return 0
	}
	return math.Exp(-float64(nodes-1) / m)
}

// Fig3Point computes one point of the Fig. 3 surfaces: the correct rate
// of each primitive as a function of the ratio M/|V| and the relevant
// degree parameter. The paper plots the edge query against d1+d2 (total
// adjacent edges) and the successor/precursor queries against the
// queried node's degree.
type Fig3Point struct {
	MOverV     float64
	Degree     int64
	EdgeQuery  float64
	SuccessorQ float64
	PrecursorQ float64
}

// Fig3Surface evaluates the Fig. 3 model over ratios × degrees for a
// graph with the given node count and average degree (|E| = avgDeg·|V|).
func Fig3Surface(nodes int64, avgDeg float64, ratios []float64, degrees []int64) []Fig3Point {
	edges := int64(avgDeg * float64(nodes))
	var out []Fig3Point
	for _, ratio := range ratios {
		m := ratio * float64(nodes)
		for _, d := range degrees {
			p := Fig3Point{
				MOverV:     ratio,
				Degree:     d,
				EdgeQuery:  EdgeCorrectRate(edges, d, m),
				SuccessorQ: SuccessorCorrectRate(nodes, d, edges, d, m),
			}
			p.PrecursorQ = p.SuccessorQ // symmetric under the model
			out = append(out, p)
		}
	}
	return out
}

// LeftOverProbability is Eq. 17-18: the probability that a new edge with
// D adjacent edges becomes a left-over edge when N edges are already
// stored in an m×m matrix with l rooms per bucket, r-long address
// sequences and k candidate buckets.
//
//	P = (1 - Pr)^k,
//	Pr = Σ_{n<l} Σ_{a<=n} C(N-D,a) C(D,n-a) (1/m²)^a (1/(rm))^{n-a}
//	     · exp(-((N-D-a)/m² + (D-n+a)/(rm)))
//
// Binomials are evaluated in log space so paper-scale N keeps working.
func LeftOverProbability(n, d int64, m, r, l, k int) float64 {
	if m <= 0 || r <= 0 || l <= 0 || k <= 0 {
		return 1
	}
	if d > n {
		d = n
	}
	m2 := float64(m) * float64(m)
	rm := float64(r) * float64(m)
	var pr float64
	for slots := 0; slots < l; slots++ {
		for a := 0; a <= slots; a++ {
			b := slots - a // adjacent edges in the bucket
			logTerm := logChoose(n-d, int64(a)) + logChoose(d, int64(b))
			logTerm += float64(a) * math.Log(1/m2)
			logTerm += float64(b) * math.Log(1/rm)
			logTerm += -((float64(n-d) - float64(a)) / m2) - ((float64(d) - float64(slots) + float64(a)) / rm)
			pr += math.Exp(logTerm)
		}
	}
	if pr > 1 {
		pr = 1
	}
	return math.Pow(1-pr, float64(k))
}

// logChoose is log C(n,k) via the log-gamma function; -Inf when k > n.
func logChoose(n, k int64) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	lg := func(x int64) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}
