package theory

import (
	"math"
	"testing"
)

func TestEdgeCorrectRatePaperExample(t *testing.T) {
	// §VI-C worked example: F=256, m=1000 so M=256000, |E|=5e5, D=200
	// gives correct rate exp(-0.00078) ≈ 0.9992.
	got := EdgeCorrectRate(5e5, 200, 256000)
	if math.Abs(got-0.9992) > 0.0002 {
		t.Fatalf("EdgeCorrectRate = %.5f, want ≈ 0.9992", got)
	}
	// TCM with the same matrix (M = m = 1000) gets ≈ 0.497 per the
	// paper.
	tcm := EdgeCorrectRate(5e5, 200, 1000)
	if math.Abs(tcm-0.497) > 0.02 {
		t.Fatalf("TCM-style correct rate = %.3f, want ≈ 0.497", tcm)
	}
}

func TestEdgeCorrectRateMonotonicity(t *testing.T) {
	// More hash range is never worse; more adjacent edges never better.
	base := EdgeCorrectRate(1e6, 100, 1e4)
	if EdgeCorrectRate(1e6, 100, 1e5) <= base {
		t.Fatal("larger M did not improve correct rate")
	}
	if EdgeCorrectRate(1e6, 10000, 1e4) >= base {
		t.Fatal("more adjacent edges did not hurt correct rate")
	}
	if got := EdgeCorrectRate(1e6, 100, 0); got != 0 {
		t.Fatalf("degenerate M: %f", got)
	}
}

func TestSuccessorCorrectRateShape(t *testing.T) {
	// The §IV claim behind Fig. 3: at M/|V| <= 1 the successor-query
	// accuracy collapses toward 0; at M/|V| >= 200 it exceeds ~0.8.
	const nodes = 100000
	const avgDeg = 5
	low := SuccessorCorrectRate(nodes, 10, avgDeg*nodes, 10, float64(nodes))
	if low > 0.01 {
		t.Fatalf("at M=|V| successor accuracy should be ~0, got %f", low)
	}
	high := SuccessorCorrectRate(nodes, 10, avgDeg*nodes, 10, 200*float64(nodes))
	if high < 0.8 {
		t.Fatalf("at M=200|V| successor accuracy should exceed 0.8, got %f", high)
	}
}

func TestSuccessorCorrectRateDegreeClamp(t *testing.T) {
	// degree > nodes must not produce a negative exponent blow-up.
	got := SuccessorCorrectRate(10, 100, 50, 10, 1e6)
	if got < 0 || got > 1 {
		t.Fatalf("rate out of range: %f", got)
	}
}

func TestNodeCollisionFreeRate(t *testing.T) {
	if got := NodeCollisionFreeRate(1, 100); got != 1 {
		t.Fatalf("single node must never collide: %f", got)
	}
	r1 := NodeCollisionFreeRate(1000, 1e6)
	r2 := NodeCollisionFreeRate(1000, 1e3)
	if r1 <= r2 {
		t.Fatal("larger range must reduce collisions")
	}
}

func TestFig3Surface(t *testing.T) {
	pts := Fig3Surface(1e5, 5, []float64{0.5, 1, 10, 100, 200}, []int64{2, 16, 128})
	if len(pts) != 15 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.EdgeQuery < 0 || p.EdgeQuery > 1 || p.SuccessorQ < 0 || p.SuccessorQ > 1 {
			t.Fatalf("point out of range: %+v", p)
		}
		if p.PrecursorQ != p.SuccessorQ {
			t.Fatalf("precursor should mirror successor in the model: %+v", p)
		}
	}
	// Accuracy must rise with M/|V| at fixed degree.
	var prev float64 = -1
	for _, p := range pts {
		if p.Degree != 16 {
			continue
		}
		if p.SuccessorQ < prev {
			t.Fatalf("successor rate not monotone in M/|V|: %+v", p)
		}
		prev = p.SuccessorQ
	}
}

func TestLeftOverProbabilityPaperExample(t *testing.T) {
	// §VI-D worked example: N=1e6, D=1e4, m=1000, r=8, l=3, k=8 gives
	// an upper-bound failure probability of about 0.002.
	got := LeftOverProbability(1e6, 1e4, 1000, 8, 3, 8)
	if got > 0.01 || got < 1e-5 {
		t.Fatalf("LeftOverProbability = %g, want ≈ 0.002", got)
	}
}

func TestLeftOverProbabilityShape(t *testing.T) {
	// More rooms, longer sequences and more candidates all reduce the
	// left-over probability; load increases it.
	base := LeftOverProbability(5e5, 1e3, 700, 8, 2, 8)
	if LeftOverProbability(5e5, 1e3, 700, 8, 3, 8) > base {
		t.Fatal("extra room increased left-over probability")
	}
	if LeftOverProbability(5e5, 1e3, 700, 8, 2, 16) > base {
		t.Fatal("extra candidates increased left-over probability")
	}
	if LeftOverProbability(2e6, 1e3, 700, 8, 2, 8) < base {
		t.Fatal("more load decreased left-over probability")
	}
	if got := LeftOverProbability(1e5, 10, 0, 8, 2, 8); got != 1 {
		t.Fatalf("degenerate matrix: %f", got)
	}
}

func TestLogChoose(t *testing.T) {
	if got := logChoose(5, 2); math.Abs(got-math.Log(10)) > 1e-9 {
		t.Fatalf("logChoose(5,2) = %f", got)
	}
	if !math.IsInf(logChoose(3, 5), -1) {
		t.Fatal("logChoose(3,5) should be -Inf")
	}
	if logChoose(7, 0) != 0 || logChoose(7, 7) != 0 {
		t.Fatal("boundary cases wrong")
	}
}
