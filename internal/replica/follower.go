package replica

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stream"
)

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// URL is the primary's base URL; the follower polls URL + "/snapshot"
	// (and URL + "/log" in tail mode).
	URL string
	// Interval between polls (default 2s). The first poll happens
	// immediately on Start, so a fresh follower serves current reads
	// within one interval.
	Interval time.Duration
	// Apply installs one fetched snapshot into the local sketch. It is
	// called from the poll goroutine with the response body; the body
	// must not be retained after it returns.
	Apply func(io.Reader) error
	// TailLog switches the follower to log-tailing: instead of
	// re-fetching the whole snapshot every interval, it reads
	// URL+"/log?from=<seq>" and applies only the items that arrived
	// since its position. The position is bootstrapped from one
	// snapshot fetch (the primary reports the snapshot's log sequence
	// in the X-Log-Seq header), and whenever the primary has retired
	// the follower's offset — or has no log at all — the follower
	// falls back to a snapshot fetch and resumes tailing from there.
	TailLog bool
	// ApplyItems applies one batch of tailed items in log order;
	// required when TailLog is set.
	ApplyItems func([]stream.Item) error
	// TailBatch caps the items requested per /log fetch (default 8192).
	TailBatch int
	// MaxSnapshotBytes bounds the buffered snapshot body (default
	// 1 GiB): bodies are buffered so byte-identical snapshots can be
	// skipped by hash without applying.
	MaxSnapshotBytes int64
	// Client is the HTTP client to poll with; nil uses a client with a
	// timeout derived from Interval.
	Client *http.Client
	// Logf receives warnings (failed polls); nil discards them.
	Logf func(string, ...interface{})
}

// FollowerStats counts a Follower's polls; served by the HTTP server's
// /replica/stats. Staleness is the time since the last successful
// poll — the upper bound on how far the replica's reads trail the
// primary (plus one fetch in flight). In tail mode LogSeq is the next
// log sequence the follower will read, LagItems how many items the
// primary reported beyond it at the last poll, and LagBytes that lag
// scaled by the follower's observed average record size (an estimate).
type FollowerStats struct {
	Polls           int64  `json:"polls"`
	Applied         int64  `json:"applied"`
	Failed          int64  `json:"failed"`
	LastAppliedUnix int64  `json:"last_applied_unix,omitempty"`
	StalenessMs     int64  `json:"staleness_ms"`
	LastError       string `json:"last_error,omitempty"`

	Mode             string `json:"mode"` // "snapshot" or "tail"
	SkippedUnchanged int64  `json:"skipped_unchanged"`
	SnapshotBytes    int64  `json:"snapshot_bytes"`

	TailPolls         int64  `json:"tail_polls,omitempty"`
	TailedItems       int64  `json:"tailed_items,omitempty"`
	TailedBytes       int64  `json:"tailed_bytes,omitempty"`
	SnapshotFallbacks int64  `json:"snapshot_fallbacks,omitempty"`
	LogSeq            uint64 `json:"log_seq,omitempty"`
	LagItems          int64  `json:"lag_items"`
	LagBytes          int64  `json:"lag_bytes"`
}

// Follower keeps a local sketch in sync with a primary, either by
// polling its snapshot endpoint or by tailing its operation log (see
// FollowerConfig.TailLog). Start launches the loop; Close stops it.
type Follower struct {
	cfg FollowerConfig

	mu          sync.Mutex
	polls       int64
	applied     int64
	failed      int64
	lastApplied time.Time
	lastError   string
	skipped     int64
	snapBytes   int64
	tailPolls   int64
	tailItems   int64
	tailBytes   int64
	fallbacks   int64
	lagItems    int64

	// Tail position; touched only by the poll goroutine.
	pos    uint64
	hasPos bool
	// lastHash fingerprints the last applied snapshot body so an
	// unchanged snapshot is not re-applied.
	lastHash [sha256.Size]byte
	hasHash  bool

	startOnce sync.Once
	closeOnce sync.Once
	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
}

// NewFollower validates cfg. The loop is not started until Start.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("replica: FollowerConfig.URL is required")
	}
	if cfg.Apply == nil {
		return nil, fmt.Errorf("replica: FollowerConfig.Apply is required")
	}
	if cfg.TailLog && cfg.ApplyItems == nil {
		return nil, fmt.Errorf("replica: FollowerConfig.ApplyItems is required with TailLog")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.TailBatch < 1 {
		cfg.TailBatch = 8192
	}
	if cfg.MaxSnapshotBytes < 1 {
		cfg.MaxSnapshotBytes = 1 << 30
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	if cfg.Client == nil {
		// A poll that outlives several intervals is worse than a failed
		// one — the next poll would fetch fresher state anyway.
		timeout := 4 * cfg.Interval
		if timeout < 10*time.Second {
			timeout = 10 * time.Second
		}
		cfg.Client = &http.Client{Timeout: timeout}
	}
	cfg.URL = strings.TrimRight(cfg.URL, "/")
	return &Follower{cfg: cfg,
		stop: make(chan struct{}), done: make(chan struct{})}, nil
}

// Start launches the poll loop, fetching once immediately.
func (f *Follower) Start() {
	f.startOnce.Do(func() {
		f.started.Store(true)
		go f.loop()
	})
}

func (f *Follower) loop() {
	defer close(f.done)
	f.pollOnce()
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.pollOnce()
		}
	}
}

// Close stops the poll loop and waits for it to exit. Safe to call
// more than once.
func (f *Follower) Close() {
	f.closeOnce.Do(func() {
		if !f.started.Load() {
			return
		}
		close(f.stop)
		<-f.done
	})
}

// pollResult reports what one poll did, for the counters.
type pollResult struct {
	applied bool // new state was applied
	skipped bool // snapshot fetched but byte-identical, apply skipped
}

func (f *Follower) pollOnce() {
	var res pollResult
	var err error
	if f.cfg.TailLog {
		res, err = f.tailOnce()
	} else {
		res, err = f.fetchSnapshot()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.polls++
	if err != nil {
		f.failed++
		f.lastError = err.Error()
		f.cfg.Logf("replica: poll %s: %v", f.cfg.URL, err)
		return
	}
	f.lastError = ""
	f.lastApplied = time.Now()
	if res.applied {
		f.applied++
	}
	if res.skipped {
		f.skipped++
	}
}

// errLogUnavailable marks tail fetches the primary cannot serve from
// the follower's position (offset retired, no log, position beyond the
// log); a snapshot fetch resynchronizes.
var errLogUnavailable = errors.New("log unavailable at position")

func (f *Follower) tailOnce() (pollResult, error) {
	// The position bootstraps from a snapshot: the primary stamps its
	// /snapshot response with the log sequence the body corresponds to.
	if !f.hasPos {
		return f.fetchSnapshot()
	}
	var res pollResult
	for {
		applied, caughtUp, err := f.fetchLog()
		if errors.Is(err, errLogUnavailable) {
			f.mu.Lock()
			f.fallbacks++
			f.mu.Unlock()
			f.hasPos = false
			return f.fetchSnapshot()
		}
		if err != nil {
			return res, err
		}
		res.applied = res.applied || applied
		if caughtUp {
			return res, nil
		}
	}
}

// fetchLog reads one batch from the primary's log at f.pos and applies
// it, advancing the position. caughtUp reports whether the primary had
// nothing further at response time.
func (f *Follower) fetchLog() (applied, caughtUp bool, err error) {
	u := fmt.Sprintf("%s/log?from=%d&max=%d", f.cfg.URL, f.pos, f.cfg.TailBatch)
	resp, err := f.cfg.Client.Get(u)
	if err != nil {
		return false, false, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	f.mu.Lock()
	f.tailPolls++
	f.mu.Unlock()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone, http.StatusNotFound, http.StatusRequestedRangeNotSatisfiable:
		// Retired offset, no log on the primary, or a position beyond
		// its end (the primary lost or reset its log): resync.
		return false, false, fmt.Errorf("%w (status %d)", errLogUnavailable, resp.StatusCode)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return false, false, fmt.Errorf("log status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, f.cfg.MaxSnapshotBytes))
	if err != nil {
		return false, false, fmt.Errorf("reading log body: %w", err)
	}
	items, err := stream.ReadAll(bytes.NewReader(body))
	if err != nil {
		return false, false, fmt.Errorf("decoding log body: %w", err)
	}
	next, err := strconv.ParseUint(resp.Header.Get("X-Log-Next"), 10, 64)
	if err != nil {
		return false, false, fmt.Errorf("bad X-Log-Next header: %w", err)
	}
	if uint64(len(items)) != next-f.pos {
		return false, false, fmt.Errorf("log body holds %d items for range [%d,%d)", len(items), f.pos, next)
	}
	if len(items) > 0 {
		if err := f.cfg.ApplyItems(items); err != nil {
			return false, false, fmt.Errorf("applying log items: %w", err)
		}
	}
	end, _ := strconv.ParseUint(resp.Header.Get("X-Log-End"), 10, 64)
	f.mu.Lock()
	f.pos = next // under mu so Stats can read it from another goroutine
	f.tailItems += int64(len(items))
	f.tailBytes += int64(len(body))
	if end >= next {
		f.lagItems = int64(end - next)
	}
	f.mu.Unlock()
	return len(items) > 0, end <= next, nil
}

// fetchSnapshot fetches the primary's full snapshot, skips the apply
// when the body is byte-identical to the last applied one, and (in
// tail mode) adopts the snapshot's log sequence as the tail position.
func (f *Follower) fetchSnapshot() (pollResult, error) {
	resp, err := f.cfg.Client.Get(f.cfg.URL + "/snapshot")
	if err != nil {
		return pollResult{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return pollResult{}, fmt.Errorf("snapshot status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, f.cfg.MaxSnapshotBytes))
	if err != nil {
		return pollResult{}, fmt.Errorf("reading snapshot: %w", err)
	}
	f.mu.Lock()
	f.snapBytes += int64(len(body))
	f.mu.Unlock()
	if seqRaw := resp.Header.Get("X-Log-Seq"); seqRaw != "" {
		if seq, err := strconv.ParseUint(seqRaw, 10, 64); err == nil {
			f.mu.Lock()
			f.pos = seq
			f.lagItems = 0
			f.mu.Unlock()
			f.hasPos = true
		}
	}
	hash := sha256.Sum256(body)
	if f.hasHash && hash == f.lastHash {
		// Byte-identical to what is already installed: rebuilding and
		// hot-swapping an equal sketch would only churn memory.
		return pollResult{skipped: true}, nil
	}
	if err := f.cfg.Apply(bytes.NewReader(body)); err != nil {
		return pollResult{}, err
	}
	f.lastHash, f.hasHash = hash, true
	return pollResult{applied: true}, nil
}

// Stats snapshots the poll counters.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{
		Polls:            f.polls,
		Applied:          f.applied,
		Failed:           f.failed,
		LastError:        f.lastError,
		Mode:             "snapshot",
		SkippedUnchanged: f.skipped,
		SnapshotBytes:    f.snapBytes,
	}
	if f.cfg.TailLog {
		st.Mode = "tail"
		st.TailPolls = f.tailPolls
		st.TailedItems = f.tailItems
		st.TailedBytes = f.tailBytes
		st.SnapshotFallbacks = f.fallbacks
		st.LogSeq = f.pos
		st.LagItems = f.lagItems
		if f.tailItems > 0 {
			st.LagBytes = f.lagItems * (f.tailBytes / f.tailItems)
		}
	}
	if !f.lastApplied.IsZero() {
		st.LastAppliedUnix = f.lastApplied.Unix()
		st.StalenessMs = time.Since(f.lastApplied).Milliseconds()
	}
	return st
}
