package replica

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FollowerConfig configures a Follower.
type FollowerConfig struct {
	// URL is the primary's base URL; the follower polls URL + "/snapshot".
	URL string
	// Interval between polls (default 2s). The first poll happens
	// immediately on Start, so a fresh follower serves current reads
	// within one interval.
	Interval time.Duration
	// Apply installs one fetched snapshot into the local sketch. It is
	// called from the poll goroutine with the response body; the body
	// must not be retained after it returns.
	Apply func(io.Reader) error
	// Client is the HTTP client to poll with; nil uses a client with a
	// timeout derived from Interval.
	Client *http.Client
	// Logf receives warnings (failed polls); nil discards them.
	Logf func(string, ...interface{})
}

// FollowerStats counts a Follower's polls; served by the HTTP server's
// /replica/stats. Staleness is the time since the last successful
// apply — the upper bound on how far the replica's reads trail the
// primary (plus one snapshot in flight).
type FollowerStats struct {
	Polls           int64  `json:"polls"`
	Applied         int64  `json:"applied"`
	Failed          int64  `json:"failed"`
	LastAppliedUnix int64  `json:"last_applied_unix,omitempty"`
	StalenessMs     int64  `json:"staleness_ms"`
	LastError       string `json:"last_error,omitempty"`
}

// Follower keeps a local sketch in sync with a primary by polling its
// snapshot endpoint. Start launches the loop; Close stops it.
type Follower struct {
	cfg FollowerConfig

	mu          sync.Mutex
	polls       int64
	applied     int64
	failed      int64
	lastApplied time.Time
	lastError   string

	startOnce sync.Once
	closeOnce sync.Once
	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
}

// NewFollower validates cfg. The loop is not started until Start.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("replica: FollowerConfig.URL is required")
	}
	if cfg.Apply == nil {
		return nil, fmt.Errorf("replica: FollowerConfig.Apply is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	if cfg.Client == nil {
		// A poll that outlives several intervals is worse than a failed
		// one — the next poll would fetch fresher state anyway.
		timeout := 4 * cfg.Interval
		if timeout < 10*time.Second {
			timeout = 10 * time.Second
		}
		cfg.Client = &http.Client{Timeout: timeout}
	}
	cfg.URL = strings.TrimRight(cfg.URL, "/")
	return &Follower{cfg: cfg,
		stop: make(chan struct{}), done: make(chan struct{})}, nil
}

// Start launches the poll loop, fetching once immediately.
func (f *Follower) Start() {
	f.startOnce.Do(func() {
		f.started.Store(true)
		go f.loop()
	})
}

func (f *Follower) loop() {
	defer close(f.done)
	f.pollOnce()
	t := time.NewTicker(f.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			f.pollOnce()
		}
	}
}

// Close stops the poll loop and waits for it to exit. Safe to call
// more than once.
func (f *Follower) Close() {
	f.closeOnce.Do(func() {
		if !f.started.Load() {
			return
		}
		close(f.stop)
		<-f.done
	})
}

func (f *Follower) pollOnce() {
	err := f.fetchApply()
	f.mu.Lock()
	defer f.mu.Unlock()
	f.polls++
	if err != nil {
		f.failed++
		f.lastError = err.Error()
		f.cfg.Logf("replica: poll %s: %v", f.cfg.URL, err)
		return
	}
	f.applied++
	f.lastApplied = time.Now()
	f.lastError = ""
}

func (f *Follower) fetchApply() error {
	resp, err := f.cfg.Client.Get(f.cfg.URL + "/snapshot")
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("snapshot status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return f.cfg.Apply(resp.Body)
}

// Stats snapshots the poll counters.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{
		Polls:     f.polls,
		Applied:   f.applied,
		Failed:    f.failed,
		LastError: f.lastError,
	}
	if !f.lastApplied.IsZero() {
		st.LastAppliedUnix = f.lastApplied.Unix()
		st.StalenessMs = time.Since(f.lastApplied).Milliseconds()
	}
	return st
}
