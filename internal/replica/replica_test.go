package replica

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// snapshotBytes returns a Snapshot func that always writes b.
func snapshotBytes(b []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		_, err := w.Write(b)
		return err
	}
}

func TestCheckpointWriteAndRecover(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCheckpointer(CheckpointConfig{
		Dir: dir, Interval: time.Hour, Snapshot: snapshotBytes([]byte("state-1")),
	})
	if err != nil {
		t.Fatal(err)
	}
	path, err := c.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "state-1" {
		t.Fatalf("checkpoint content = %q", got)
	}
	st := c.Stats()
	if st.Written != 1 || st.LastSeq != 1 || st.LastBytes != 7 {
		t.Fatalf("stats = %+v", st)
	}

	var restored []byte
	used, err := RecoverNewest(dir, func(r io.Reader) error {
		restored, _ = io.ReadAll(r)
		return nil
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if used != path || string(restored) != "state-1" {
		t.Fatalf("recovered %q from %q", restored, used)
	}
}

func TestCheckpointPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	var gen atomic.Int64
	c, err := NewCheckpointer(CheckpointConfig{
		Dir: dir, Interval: time.Hour, Keep: 2,
		Snapshot: func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "state-%d", gen.Add(1))
			return err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := c.CheckpointNow(); err != nil {
			t.Fatal(err)
		}
	}
	cks, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 2 || cks[0].Seq != 4 || cks[1].Seq != 5 {
		t.Fatalf("retained checkpoints = %+v", cks)
	}
	if st := c.Stats(); st.Pruned != 3 {
		t.Fatalf("pruned = %d, want 3", st.Pruned)
	}

	// A new Checkpointer over the same dir continues the sequence
	// instead of overwriting history.
	c2, err := NewCheckpointer(CheckpointConfig{
		Dir: dir, Interval: time.Hour, Snapshot: snapshotBytes([]byte("x"))})
	if err != nil {
		t.Fatal(err)
	}
	path, err := c2.CheckpointNow()
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != checkpointFile(6) {
		t.Fatalf("restarted seq = %s, want %s", filepath.Base(path), checkpointFile(6))
	}
}

// TestRecoverSkipsCorrupt: newest valid wins; corrupt checkpoints are
// skipped with a warning, not fatal.
func TestRecoverSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, checkpointFile(1)), []byte("good"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, checkpointFile(2)), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	var warned int
	used, err := RecoverNewest(dir, func(r io.Reader) error {
		b, _ := io.ReadAll(r)
		if string(b) != "good" {
			return errors.New("bad snapshot")
		}
		return nil
	}, func(string, ...interface{}) { warned++ })
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(used) != checkpointFile(1) {
		t.Fatalf("recovered from %s, want the older valid checkpoint", used)
	}
	if warned != 1 {
		t.Fatalf("warnings = %d, want 1", warned)
	}
}

func TestRecoverEmptyAndMissingDir(t *testing.T) {
	used, err := RecoverNewest(filepath.Join(t.TempDir(), "nope"), func(io.Reader) error { return nil }, nil)
	if err != nil || used != "" {
		t.Fatalf("missing dir: used=%q err=%v", used, err)
	}
}

// TestCheckpointFailureLeavesNoFile: a failing Snapshot must not leave
// a checkpoint (or stray temp file) behind.
func TestCheckpointFailureLeavesNoFile(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCheckpointer(CheckpointConfig{
		Dir: dir, Interval: time.Hour,
		Snapshot: func(w io.Writer) error {
			w.Write([]byte("partial"))
			return errors.New("mid-stream failure")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CheckpointNow(); err == nil {
		t.Fatal("failing snapshot reported success")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed checkpoint left files: %v", entries)
	}
	if st := c.Stats(); st.Failed != 1 || st.Written != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCheckpointerCloseStopsLoop: the loop goroutine exits on Close
// and a final checkpoint lands even if no tick ever fired.
func TestCheckpointerCloseStopsLoop(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	c, err := NewCheckpointer(CheckpointConfig{
		Dir: dir, Interval: time.Hour, Snapshot: snapshotBytes([]byte("final"))})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	c.Close()
	c.Close() // idempotent
	waitForGoroutines(t, before)
	cks, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) != 1 {
		t.Fatalf("final checkpoint missing: %+v", cks)
	}
}

func TestCheckpointerCloseWithoutStart(t *testing.T) {
	c, err := NewCheckpointer(CheckpointConfig{
		Dir: t.TempDir(), Snapshot: snapshotBytes(nil)})
	if err != nil {
		t.Fatal(err)
	}
	c.Close() // must not hang or panic
}

func TestFollowerPollsAndApplies(t *testing.T) {
	var state atomic.Value
	state.Store([]byte("v1"))
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/snapshot" {
			http.NotFound(w, r)
			return
		}
		w.Write(state.Load().([]byte))
	}))
	defer primary.Close()

	applied := make(chan []byte, 16)
	f, err := NewFollower(FollowerConfig{
		URL: primary.URL, Interval: 10 * time.Millisecond,
		Apply: func(r io.Reader) error {
			b, err := io.ReadAll(r)
			if err != nil {
				return err
			}
			applied <- b
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Close()

	// The first poll is immediate.
	select {
	case b := <-applied:
		if !bytes.Equal(b, []byte("v1")) {
			t.Fatalf("first apply = %q", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("first poll did not happen promptly")
	}
	// Subsequent polls see new primary state.
	state.Store([]byte("v2"))
	deadline := time.After(5 * time.Second)
	for {
		select {
		case b := <-applied:
			if bytes.Equal(b, []byte("v2")) {
				st := f.Stats()
				if st.Applied < 2 || st.Failed != 0 || st.LastAppliedUnix == 0 {
					t.Fatalf("stats = %+v", st)
				}
				return
			}
		case <-deadline:
			t.Fatal("follower never saw updated state")
		}
	}
}

// TestFollowerCountsFailures: a primary replying non-200, then an
// Apply error, both count as failures without stopping the loop.
func TestFollowerCountsFailures(t *testing.T) {
	var mode atomic.Int32 // 0: http 500, 1: ok
	primary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mode.Load() == 0 {
			http.Error(w, "snapshot failed", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer primary.Close()

	applyErr := errors.New("apply failed")
	var applyFail atomic.Bool
	applyFail.Store(true)
	f, err := NewFollower(FollowerConfig{
		URL: primary.URL, Interval: 5 * time.Millisecond,
		Apply: func(r io.Reader) error {
			io.Copy(io.Discard, r)
			if applyFail.Load() {
				return applyErr
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Close()

	waitFor(t, "an HTTP failure", func() bool { return f.Stats().Failed >= 1 })
	if st := f.Stats(); st.LastError == "" {
		t.Fatalf("no LastError after failure: %+v", st)
	}
	mode.Store(1) // primary healthy, apply still failing
	failedBefore := f.Stats().Failed
	waitFor(t, "an apply failure", func() bool { return f.Stats().Failed > failedBefore })
	applyFail.Store(false)
	waitFor(t, "a successful apply", func() bool { return f.Stats().Applied >= 1 })
	if st := f.Stats(); st.LastError != "" {
		t.Fatalf("LastError not cleared after success: %+v", st)
	}
}

// TestFollowerCloseStopsLoop: the poll goroutine exits on Close even
// while the primary is unreachable.
func TestFollowerCloseStopsLoop(t *testing.T) {
	before := runtime.NumGoroutine()
	f, err := NewFollower(FollowerConfig{
		URL: "http://127.0.0.1:0", Interval: 5 * time.Millisecond,
		Apply: func(io.Reader) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	time.Sleep(20 * time.Millisecond) // let a few failing polls happen
	f.Close()
	f.Close() // idempotent
	waitForGoroutines(t, before)
}

func waitFor(t *testing.T, what string, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !ok() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to %d (now %d)", want, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
