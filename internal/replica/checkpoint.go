// Package replica makes a sketch deployment durable and scalable on
// the read side: a Checkpointer periodically streams the sketch's
// snapshot to disk so a restarted process resumes from its last
// checkpoint instead of an empty summary, and a Follower polls a
// primary's /snapshot endpoint and hot-swaps the bytes into a local
// read replica. Both components are transport-agnostic — they work in
// terms of the snapshot/restore funcs the sketch backends already
// expose — and both run one background goroutine that stops cleanly
// on Close.
package replica

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Checkpoint files are checkpoint-<seq>.gss with a fixed-width decimal
// sequence number, so lexicographic directory order is checkpoint
// order. Writes go through a temp file + fsync + atomic rename: a
// crash mid-write leaves at worst a stray temp file, never a torn
// checkpoint under the real name.
var checkpointName = regexp.MustCompile(`^checkpoint-(\d{16})\.gss$`)

func checkpointFile(seq int64) string {
	return fmt.Sprintf("checkpoint-%016d.gss", seq)
}

// Checkpoint identifies one on-disk checkpoint.
type Checkpoint struct {
	Seq  int64
	Path string
}

// List returns the checkpoints in dir, oldest first. A missing
// directory is an empty list, not an error.
func List(dir string) ([]Checkpoint, error) {
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var cks []Checkpoint
	for _, e := range entries {
		m := checkpointName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		seq, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			continue
		}
		cks = append(cks, Checkpoint{Seq: seq, Path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(cks, func(i, j int) bool { return cks[i].Seq < cks[j].Seq })
	return cks, nil
}

// RecoverNewest restores from the newest valid checkpoint in dir:
// checkpoints are tried newest first, and one that fails to restore
// (torn by a crash, bit-rotted, wrong format) is logged and skipped
// rather than taking the process down — an older consistent state
// beats no state. It returns the path restored from, or "" when dir
// holds no usable checkpoint.
func RecoverNewest(dir string, restore func(io.Reader) error, logf func(string, ...interface{})) (string, error) {
	path, _, err := RecoverNewestWithMeta(dir, restore, logf)
	return path, err
}

// RecoverNewestWithMeta is RecoverNewest plus the restored checkpoint's
// meta sidecar (see CheckpointConfig.Meta): nil when the checkpoint
// predates sidecars or none was configured. The sidecar is renamed into
// place before its checkpoint, so a visible checkpoint written with
// Meta always has one.
func RecoverNewestWithMeta(dir string, restore func(io.Reader) error, logf func(string, ...interface{})) (string, []byte, error) {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	cks, err := List(dir)
	if err != nil {
		return "", nil, err
	}
	for i := len(cks) - 1; i >= 0; i-- {
		ck := cks[i]
		f, err := os.Open(ck.Path)
		if err != nil {
			logf("replica: skipping checkpoint %s: %v", ck.Path, err)
			continue
		}
		err = restore(f)
		f.Close()
		if err != nil {
			logf("replica: skipping corrupt checkpoint %s: %v", ck.Path, err)
			continue
		}
		return ck.Path, ReadMeta(ck.Path), nil
	}
	return "", nil, nil
}

// ReadMeta returns the meta sidecar bytes for the checkpoint at path,
// or nil when there is none.
func ReadMeta(path string) []byte {
	data, err := os.ReadFile(path + ".meta")
	if err != nil {
		return nil
	}
	return data
}

// CheckpointConfig configures a Checkpointer.
type CheckpointConfig struct {
	// Dir is the checkpoint directory; it is created if missing.
	Dir string
	// Interval between periodic checkpoints (default 30s). Close always
	// takes one final checkpoint, so a clean shutdown loses nothing.
	Interval time.Duration
	// Keep is how many checkpoints to retain (default 3; older ones are
	// pruned after each successful write).
	Keep int
	// Snapshot streams the current sketch state; it must be safe to
	// call from the checkpoint goroutine (every sketch.Sketch is).
	Snapshot func(io.Writer) error
	// Meta, when set, is called after each successful Snapshot (under
	// the same write lock) and its bytes are persisted in a
	// "<checkpoint>.meta" sidecar, renamed into place before the
	// checkpoint itself. The server stores the operation-log sequence
	// captured with the snapshot here, so recovery knows where log
	// replay resumes.
	Meta func() []byte
	// AfterCheckpoint, when set, runs after each successful checkpoint
	// and prune — the hook the server uses to retire operation-log
	// segments no retained checkpoint needs anymore.
	AfterCheckpoint func()
	// Logf receives warnings (failed writes, prune errors); nil
	// discards them.
	Logf func(string, ...interface{})
}

// CheckpointStats counts a Checkpointer's work; served by the HTTP
// server's /replica/stats.
type CheckpointStats struct {
	Written   int64  `json:"written"`
	Failed    int64  `json:"failed"`
	Pruned    int64  `json:"pruned"`
	LastSeq   int64  `json:"last_seq"`
	LastBytes int64  `json:"last_bytes"`
	LastUnix  int64  `json:"last_unix"`
	LastPath  string `json:"last_path"`
}

// Checkpointer periodically writes snapshots to disk. Start launches
// the loop; Close stops it after a final checkpoint. CheckpointNow is
// safe to call concurrently with the loop.
type Checkpointer struct {
	cfg CheckpointConfig

	// writeMu serializes checkpoint writes (loop vs CheckpointNow) and
	// guards nextSeq and stats.
	writeMu sync.Mutex
	nextSeq int64
	stats   CheckpointStats

	startOnce sync.Once
	closeOnce sync.Once
	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
}

// NewCheckpointer validates cfg, creates the directory, and seeds the
// sequence counter past any checkpoints already on disk (so a restart
// never overwrites history). The loop is not started until Start.
func NewCheckpointer(cfg CheckpointConfig) (*Checkpointer, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("replica: CheckpointConfig.Dir is required")
	}
	if cfg.Snapshot == nil {
		return nil, fmt.Errorf("replica: CheckpointConfig.Snapshot is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 30 * time.Second
	}
	if cfg.Keep < 1 {
		cfg.Keep = 3
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("replica: checkpoint dir: %w", err)
	}
	cks, err := List(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("replica: listing checkpoints: %w", err)
	}
	c := &Checkpointer{cfg: cfg, nextSeq: 1,
		stop: make(chan struct{}), done: make(chan struct{})}
	if n := len(cks); n > 0 {
		c.nextSeq = cks[n-1].Seq + 1
	}
	return c, nil
}

// Start launches the periodic checkpoint loop.
func (c *Checkpointer) Start() {
	c.startOnce.Do(func() {
		c.started.Store(true)
		go c.loop()
	})
}

func (c *Checkpointer) loop() {
	defer close(c.done)
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			// Final checkpoint: a clean shutdown persists everything the
			// sketch absorbed since the last tick.
			if _, err := c.CheckpointNow(); err != nil {
				c.cfg.Logf("replica: final checkpoint: %v", err)
			}
			return
		case <-t.C:
			if _, err := c.CheckpointNow(); err != nil {
				c.cfg.Logf("replica: checkpoint: %v", err)
			}
		}
	}
}

// Close stops the loop after one final checkpoint and waits for it to
// exit. Safe to call more than once; a never-started Checkpointer
// closes without checkpointing.
func (c *Checkpointer) Close() {
	c.closeOnce.Do(func() {
		if !c.started.Load() {
			return
		}
		close(c.stop)
		<-c.done
	})
}

// CheckpointNow writes one checkpoint synchronously and prunes old
// ones, returning the path written.
func (c *Checkpointer) CheckpointNow() (string, error) {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	path, n, err := c.writeLocked()
	if err != nil {
		c.stats.Failed++
		return "", err
	}
	c.stats.Written++
	c.stats.LastSeq = c.nextSeq
	c.stats.LastBytes = n
	c.stats.LastUnix = time.Now().Unix()
	c.stats.LastPath = path
	c.nextSeq++
	c.pruneLocked()
	if c.cfg.AfterCheckpoint != nil {
		c.cfg.AfterCheckpoint()
	}
	return path, nil
}

// writeLocked streams one snapshot to a temp file, fsyncs it, and
// atomically renames it into place. Callers hold writeMu.
func (c *Checkpointer) writeLocked() (string, int64, error) {
	tmp, err := os.CreateTemp(c.cfg.Dir, ".checkpoint-*.tmp")
	if err != nil {
		return "", 0, err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	cw := &countingWriter{w: tmp}
	if err := c.cfg.Snapshot(cw); err != nil {
		return "", 0, fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return "", 0, err
	}
	if err := tmp.Close(); err != nil {
		tmp = nil // already closed; just remove in the deferred cleanup
		return "", 0, err
	}
	final := filepath.Join(c.cfg.Dir, checkpointFile(c.nextSeq))
	if c.cfg.Meta != nil {
		// The sidecar lands before the checkpoint: a crash between the
		// two renames leaves an orphan sidecar (harmless, overwritten on
		// the next attempt), never a checkpoint without its meta.
		if err := writeFileSync(final+".meta", c.cfg.Meta()); err != nil {
			return "", 0, fmt.Errorf("meta sidecar: %w", err)
		}
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		return "", 0, err
	}
	tmp = nil // renamed away; nothing to clean up
	// Persist the rename itself (best effort — not all filesystems
	// support fsync on directories).
	if d, err := os.Open(c.cfg.Dir); err == nil {
		d.Sync()
		d.Close()
	}
	return final, cw.n, nil
}

// pruneLocked removes all but the newest Keep checkpoints. Callers
// hold writeMu.
func (c *Checkpointer) pruneLocked() {
	cks, err := List(c.cfg.Dir)
	if err != nil {
		c.cfg.Logf("replica: prune: %v", err)
		return
	}
	for i := 0; i+c.cfg.Keep < len(cks); i++ {
		if err := os.Remove(cks[i].Path); err != nil {
			c.cfg.Logf("replica: prune %s: %v", cks[i].Path, err)
			continue
		}
		os.Remove(cks[i].Path + ".meta") // best effort; may not exist
		c.stats.Pruned++
	}
}

// writeFileSync writes data via temp file + fsync + atomic rename, the
// same durability discipline as the checkpoints themselves.
func writeFileSync(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".meta-*.tmp")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(name, path)
	}
	if err != nil {
		os.Remove(name)
	}
	return err
}

// Stats snapshots the checkpoint counters.
func (c *Checkpointer) Stats() CheckpointStats {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.stats
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}
