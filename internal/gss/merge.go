package gss

import "errors"

// ErrConfigMismatch is returned when merging sketches with different
// configurations.
var ErrConfigMismatch = errors.New("gss: cannot merge sketches with different configurations")

// Merge folds other into g. Both sketches must share a configuration,
// so their node-hash decomposition and square-hashing sequences agree.
// Merging enables the distributed deployment pattern the paper's §I
// references anticipate: workers summarize disjoint sub-streams locally
// and a coordinator merges the sketches, with the same result as one
// sketch over the whole stream (weights add; placements may differ but
// queries are placement-independent).
//
// The merge relies on square hashing being reversible: every occupied
// room in other decodes back to its sketch-edge endpoints, which are
// then re-inserted into g through the normal path.
func (g *GSS) Merge(other *GSS) error {
	if g.cfg != other.cfg {
		return ErrConfigMismatch
	}
	m, l := other.cfg.Width, other.cfg.Rooms
	for slot := 0; slot < len(other.weights); slot++ {
		if !other.occupied(slot) {
			continue
		}
		bucket := slot / l
		row, col := uint32(bucket/m), uint32(bucket%m)
		hs, hd := other.decodeSlot(slot, row, col)
		g.insertHashed(hs, hd, other.weights[slot])
		g.items-- // insertHashed counts an item; merge moves edges, not items
	}
	for k, w := range other.buf.weights {
		g.insertHashed(k.s, k.d, w)
		g.items--
	}
	g.items += other.items
	if g.reg != nil && other.reg != nil {
		for hv, ids := range other.reg.ids {
			for _, id := range ids {
				g.reg.add(hv, id)
			}
		}
	}
	return nil
}
