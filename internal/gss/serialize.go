package gss

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/hashing"
)

// Binary sketch snapshot format (versioned, little-endian):
//
//	magic    "GSSK"            4 bytes
//	version  uint16            currently 1
//	config   8 x int32         width, fpBits, rooms, seqLen, candidates,
//	                           flags(squarehash off, sampling off, index off)
//	state    items int64, entries int32
//	matrix   idx bytes, fps uint32s, weights int64s, occ uint64s
//	buffer   count uint32, then (src,dst,weight) per edge
//	registry count uint32, then (hash, id string) per node (if enabled)
//
// Snapshots make GSS restartable: a stream processor can checkpoint the
// sketch and resume after failure without replaying the stream.

var sketchMagic = [4]byte{'G', 'S', 'S', 'K'}

const snapshotVersion = 1

// ErrBadSnapshot reports a malformed or incompatible snapshot.
var ErrBadSnapshot = errors.New("gss: bad sketch snapshot")

// WriteTo serializes the sketch. It implements io.WriterTo.
func (g *GSS) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	write := func(v interface{}) {
		if cw.err == nil {
			cw.err = binary.Write(cw, binary.LittleEndian, v)
		}
	}
	cw.Write(sketchMagic[:])
	write(uint16(snapshotVersion))
	var flags int32
	if g.cfg.DisableSquareHash {
		flags |= 1
	}
	if g.cfg.DisableSampling {
		flags |= 2
	}
	if g.cfg.DisableNodeIndex {
		flags |= 4
	}
	for _, v := range []int32{int32(g.cfg.Width), int32(g.cfg.FingerprintBits),
		int32(g.cfg.Rooms), int32(g.cfg.SeqLen), int32(g.cfg.Candidates), flags} {
		write(v)
	}
	write(g.items)
	write(int32(g.entries))
	cw.Write(g.idx)
	write(g.fps)
	write(g.weights)
	write(g.occ)

	// Map areas are emitted in sorted key order so identical sketch
	// state always serializes to identical bytes: followers compare
	// snapshot hashes to skip re-applying an unchanged primary, which
	// only works if the encoding is deterministic.
	write(uint32(len(g.buf.weights)))
	bufKeys := make([]edgeKey, 0, len(g.buf.weights))
	for k := range g.buf.weights {
		bufKeys = append(bufKeys, k)
	}
	sort.Slice(bufKeys, func(i, j int) bool {
		if bufKeys[i].s != bufKeys[j].s {
			return bufKeys[i].s < bufKeys[j].s
		}
		return bufKeys[i].d < bufKeys[j].d
	})
	for _, k := range bufKeys {
		write(k.s)
		write(k.d)
		write(g.buf.weights[k])
	}
	if g.reg == nil {
		write(uint32(0))
	} else {
		write(uint32(g.reg.count))
		hvs := make([]uint64, 0, len(g.reg.ids))
		for hv := range g.reg.ids {
			hvs = append(hvs, hv)
		}
		sort.Slice(hvs, func(i, j int) bool { return hvs[i] < hvs[j] })
		for _, hv := range hvs {
			for _, id := range g.reg.ids[hv] {
				write(hv)
				write(uint32(len(id)))
				cw.Write([]byte(id))
			}
		}
	}
	if cw.err == nil {
		cw.err = cw.w.(*bufio.Writer).Flush()
	}
	return cw.n, cw.err
}

// readExact reads exactly n bytes from r, growing the buffer in
// bounded chunks so the allocation never runs ahead of the data: a
// header that promises gigabytes backed by a few bytes of body fails
// after one chunk instead of reserving the promised size up front.
func readExact(r io.Reader, n int) ([]byte, error) {
	const chunk = 1 << 20
	first := n
	if first > chunk {
		first = chunk
	}
	buf := make([]byte, 0, first)
	for len(buf) < n {
		m := n - len(buf)
		if m > chunk {
			m = chunk
		}
		off := len(buf)
		buf = append(buf, make([]byte, m)...)
		if _, err := io.ReadFull(r, buf[off:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

// Snapshot serializes the sketch; it is WriteTo without the byte count,
// matching the common Sketch surface shared with the wrapper types.
func (g *GSS) Snapshot(w io.Writer) error {
	_, err := g.WriteTo(w)
	return err
}

// Restore replaces the sketch in place with the snapshot read from r.
// The sketch is unchanged on error. Like every other GSS method it is
// not safe for concurrent use.
func (g *GSS) Restore(r io.Reader) error {
	ng, err := ReadSketch(r)
	if err != nil {
		return err
	}
	*g = *ng
	return nil
}

// maxSnapshotWidth bounds the matrix width a snapshot may declare.
// The header is read before the matrix it describes, so an absurd
// declared width would otherwise make Restore allocate unbounded
// memory from a few forged bytes — a torn checkpoint or malicious
// /restore body must fail cheaply, not OOM the process. It equals the
// configuration cap, which normalized also enforces.
const maxSnapshotWidth = maxWidth

// ReadSketch deserializes a sketch snapshot written by WriteTo. It is
// safe on untrusted input: a malformed snapshot returns ErrBadSnapshot
// and never allocates much more memory than the input itself provides.
func ReadSketch(r io.Reader) (*GSS, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != sketchMagic {
		return nil, fmt.Errorf("%w: wrong magic", ErrBadSnapshot)
	}
	read := func(v interface{}) error { return binary.Read(br, binary.LittleEndian, v) }
	var version uint16
	if err := read(&version); err != nil || version != snapshotVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, version)
	}
	var raw [6]int32
	for i := range raw {
		if err := read(&raw[i]); err != nil {
			return nil, fmt.Errorf("%w: truncated config", ErrBadSnapshot)
		}
	}
	if raw[0] < 1 || raw[0] > maxSnapshotWidth {
		return nil, fmt.Errorf("%w: unreasonable width %d", ErrBadSnapshot, raw[0])
	}
	cfg := Config{
		Width: int(raw[0]), FingerprintBits: int(raw[1]), Rooms: int(raw[2]),
		SeqLen: int(raw[3]), Candidates: int(raw[4]),
		DisableSquareHash: raw[5]&1 != 0,
		DisableSampling:   raw[5]&2 != 0,
		DisableNodeIndex:  raw[5]&4 != 0,
	}
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	// The sketch is assembled area by area instead of through New:
	// every allocation below follows a successful incremental read, so
	// memory use is bounded by the actual input, not the declared
	// dimensions.
	slots := cfg.Width * cfg.Width * cfg.Rooms
	g := &GSS{
		cfg: cfg,
		nh:  hashing.NewNodeHasher(cfg.Width, cfg.FingerprintBits),
		buf: newBuffer(),
		sc:  newQueryScratch(cfg),
	}
	if !cfg.DisableNodeIndex {
		g.reg = newRegistry()
	}
	var entries int32
	if err := read(&g.items); err != nil {
		return nil, fmt.Errorf("%w: truncated state", ErrBadSnapshot)
	}
	if err := read(&entries); err != nil {
		return nil, fmt.Errorf("%w: truncated state", ErrBadSnapshot)
	}
	if entries < 0 || int(entries) > slots {
		return nil, fmt.Errorf("%w: %d entries exceed %d slots", ErrBadSnapshot, entries, slots)
	}
	g.entries = int(entries)
	if g.idx, err = readExact(br, slots); err != nil {
		return nil, fmt.Errorf("%w: truncated matrix", ErrBadSnapshot)
	}
	fpsRaw, err := readExact(br, 4*slots)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated matrix", ErrBadSnapshot)
	}
	g.fps = make([]uint32, slots)
	for i := range g.fps {
		g.fps[i] = binary.LittleEndian.Uint32(fpsRaw[4*i:])
	}
	wRaw, err := readExact(br, 8*slots)
	if err != nil {
		return nil, fmt.Errorf("%w: truncated matrix", ErrBadSnapshot)
	}
	g.weights = make([]int64, slots)
	for i := range g.weights {
		g.weights[i] = int64(binary.LittleEndian.Uint64(wRaw[8*i:]))
	}
	occRaw, err := readExact(br, 8*((slots+63)/64))
	if err != nil {
		return nil, fmt.Errorf("%w: truncated matrix", ErrBadSnapshot)
	}
	g.occ = make([]uint64, (slots+63)/64)
	for i := range g.occ {
		g.occ[i] = binary.LittleEndian.Uint64(occRaw[8*i:])
	}
	g.rebuildColumnIndex()
	var bufCount uint32
	if err := read(&bufCount); err != nil {
		return nil, fmt.Errorf("%w: truncated buffer", ErrBadSnapshot)
	}
	for i := uint32(0); i < bufCount; i++ {
		var s, d uint64
		var wgt int64
		if err := read(&s); err != nil {
			return nil, fmt.Errorf("%w: truncated buffer", ErrBadSnapshot)
		}
		if err := read(&d); err != nil {
			return nil, fmt.Errorf("%w: truncated buffer", ErrBadSnapshot)
		}
		if err := read(&wgt); err != nil {
			return nil, fmt.Errorf("%w: truncated buffer", ErrBadSnapshot)
		}
		g.buf.add(s, d, wgt)
	}
	var regCount uint32
	if err := read(&regCount); err != nil {
		return nil, fmt.Errorf("%w: truncated registry", ErrBadSnapshot)
	}
	for i := uint32(0); i < regCount; i++ {
		var hv uint64
		var n uint32
		if err := read(&hv); err != nil {
			return nil, fmt.Errorf("%w: truncated registry", ErrBadSnapshot)
		}
		if err := read(&n); err != nil {
			return nil, fmt.Errorf("%w: truncated registry", ErrBadSnapshot)
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("%w: unreasonable id length %d", ErrBadSnapshot, n)
		}
		id := make([]byte, n)
		if _, err := io.ReadFull(br, id); err != nil {
			return nil, fmt.Errorf("%w: truncated registry", ErrBadSnapshot)
		}
		if g.reg != nil {
			g.reg.add(hv, string(id))
		}
	}
	return g, nil
}
