package gss

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"slices"
	"sort"
	"sync"

	"repro/internal/hashing"
	"repro/internal/stream"
)

// Sharded partitions a GSS into independently locked shards keyed by
// the edge's endpoint pair, so multiple ingestion goroutines proceed in
// parallel as long as they touch different shards — the scale-out
// deployment the paper's distributed-graph-system references (§I)
// anticipate. Edge queries route to one shard; set queries union all
// shards (a node's edges spread across shards with its partners).
type Sharded struct {
	shards []shard
	seed   uint64

	// gate serializes Restore against everything else: normal
	// operations share it (RLock — no serialization among them, the
	// per-shard mutexes still carry the real synchronization), while
	// Restore takes it exclusively so no query or insert can observe
	// a half-swapped mix of old and new shards.
	gate sync.RWMutex
}

type shard struct {
	mu sync.Mutex
	g  *GSS
}

// NewSharded builds n shards, each a GSS with cfg scaled so the total
// matrix memory is comparable to one unsharded GSS of cfg (the width is
// divided by sqrt(n)).
func NewSharded(cfg Config, n int) (*Sharded, error) {
	// Validate the caller's config before width scaling, so an invalid
	// width is an error rather than silently floored to 1 by the
	// sqrt(n) division.
	if _, err := cfg.normalized(); err != nil {
		return nil, err
	}
	if n < 1 {
		n = 1
	}
	scaled := cfg
	scaled.Width = ScaleWidth(cfg.Width, n)
	s := &Sharded{shards: make([]shard, n), seed: 0x5eed}
	for i := range s.shards {
		g, err := New(scaled)
		if err != nil {
			return nil, err
		}
		s.shards[i].g = g
	}
	return s, nil
}

// ScaleWidth divides width by sqrt(n), flooring at 1: n partition
// sketches of the scaled width have the combined matrix memory of one
// sketch of the original width. Both the sharded and the windowed
// backend use it so a -width flag means the same total budget on every
// backend.
func ScaleWidth(width, n int) int {
	lo, hi := 1, width
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if mid*mid*n <= width*width {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// shardIndex routes an edge by its endpoint pair. It is defined in
// terms of shardIndexHashed so the string and carried-hash planes
// cannot drift: HashSeeded(v, seed) == Mix64(Hash64(v) ^ Mix64(seed)),
// and HashedItem carries exactly Hash64(v). The function (and with it
// snapshot compatibility — restore routing is keyed by shard count
// plus this function) is unchanged from the pre-hashed-plane layout.
func (s *Sharded) shardIndex(src, dst string) int {
	return s.shardIndexHashed(hashing.Hash64(src), hashing.Hash64(dst))
}

// shardIndexHashed is shardIndex over carried full-width hashes — no
// identifier re-hash.
func (s *Sharded) shardIndexHashed(h64s, h64d uint64) int {
	h := hashing.Mix64(h64s^hashing.Mix64(s.seed)) ^ hashing.Mix64(h64d^hashing.Mix64(s.seed+1))
	return int(h % uint64(len(s.shards)))
}

func (s *Sharded) shardFor(src, dst string) *shard {
	return &s.shards[s.shardIndex(src, dst)]
}

// Insert ingests one item; safe for concurrent use. The full item is
// routed to the owning shard — Time and Label must survive this layer
// for wrappers that depend on them.
func (s *Sharded) Insert(it stream.Item) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	sh := s.shardFor(it.Src, it.Dst)
	sh.mu.Lock()
	sh.g.Insert(it)
	sh.mu.Unlock()
}

// InsertBatch ingests a batch of items; safe for concurrent use. The
// batch is grouped by owning shard first, then each touched shard is
// locked exactly once for its whole group — under N ingester
// goroutines the per-item lock traffic of Insert becomes one
// acquisition per shard per batch, and goroutines working disjoint
// shard groups proceed in parallel.
func (s *Sharded) InsertBatch(items []stream.Item) {
	if len(items) == 0 {
		return
	}
	s.gate.RLock()
	defer s.gate.RUnlock()
	if len(s.shards) == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		sh.g.InsertBatch(items)
		sh.mu.Unlock()
		return
	}
	groups := make([][]stream.Item, len(s.shards))
	for _, it := range items {
		i := s.shardIndex(it.Src, it.Dst)
		groups[i] = append(groups[i], it)
	}
	for i, grp := range groups {
		if len(grp) == 0 {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.g.InsertBatch(grp)
		sh.mu.Unlock()
	}
}

// InsertHashedBatch ingests a pre-hashed batch; safe for concurrent
// use. Partitioning uses the carried hashes (shardIndexHashed), then
// each shard group takes that shard's lock once — the same grouping
// InsertBatch computes from strings, so the two planes place every
// edge identically. Groups may be reordered in place by the per-shard
// region sort.
func (s *Sharded) InsertHashedBatch(items []stream.HashedItem) {
	if len(items) == 0 {
		return
	}
	s.gate.RLock()
	defer s.gate.RUnlock()
	if len(s.shards) == 1 {
		sh := &s.shards[0]
		sh.mu.Lock()
		sh.g.InsertHashedBatch(items)
		sh.mu.Unlock()
		return
	}
	groups := make([][]stream.HashedItem, len(s.shards))
	for i := range items {
		g := s.shardIndexHashed(items[i].HSrc, items[i].HDst)
		groups[g] = append(groups[g], items[i])
	}
	for i, grp := range groups {
		if len(grp) == 0 {
			continue
		}
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.g.InsertHashedBatch(grp)
		sh.mu.Unlock()
	}
}

// InsertEdge adds w to edge (src,dst); safe for concurrent use. Like
// GSS.InsertEdge it is the explicit untimed entry point over Insert.
func (s *Sharded) InsertEdge(src, dst string, w int64) {
	s.Insert(stream.Item{Src: src, Dst: dst, Weight: w})
}

// EdgeWeight queries the owning shard.
func (s *Sharded) EdgeWeight(src, dst string) (int64, bool) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	sh := s.shardFor(src, dst)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.g.EdgeWeight(src, dst)
}

// Successors unions the shard-local successor sets.
func (s *Sharded) Successors(v string) []string {
	return s.unionAll(func(g *GSS) []string { return g.Successors(v) })
}

// Precursors unions the shard-local precursor sets.
func (s *Sharded) Precursors(v string) []string {
	return s.unionAll(func(g *GSS) []string { return g.Precursors(v) })
}

// Nodes unions the shard registries.
func (s *Sharded) Nodes() []string {
	return s.unionAll(func(g *GSS) []string { return g.Nodes() })
}

func (s *Sharded) unionAll(get func(*GSS) []string) []string {
	s.gate.RLock()
	defer s.gate.RUnlock()
	seen := map[string]bool{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, v := range get(sh.g) {
			seen[v] = true
		}
		sh.mu.Unlock()
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// The hash-native query plane. Every shard runs the same scaled
// configuration, so the node-hash space is shared: a hash value means
// the same node in every shard, and per-shard results concatenate
// without translation. An original edge lives in exactly one shard, so
// successor/precursor unions are duplicate-free by construction; only
// the node registry, which records an endpoint in every shard that
// stores one of its edges, needs deduplication.

// NodeHash maps an identifier into the shared compressed node space.
func (s *Sharded) NodeHash(v string) uint64 {
	s.gate.RLock()
	defer s.gate.RUnlock()
	return s.shards[0].g.NodeHash(v)
}

// EdgeWeightHash probes each shard for the sketch edge (hs, hd). The
// string form routes by original identifiers, which hashes cannot
// recover, so the hash form asks every shard; the owning shard answers
// and a miss everywhere falls through to not-found.
func (s *Sharded) EdgeWeightHash(hs, hd uint64) (int64, bool) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		w, ok := sh.g.EdgeWeightHash(hs, hd)
		sh.mu.Unlock()
		if ok {
			return w, true
		}
	}
	return 0, false
}

// AppendSuccessorHashes appends the union of the shard-local successor
// sets of hv to dst.
func (s *Sharded) AppendSuccessorHashes(hv uint64, dst []uint64) []uint64 {
	s.gate.RLock()
	defer s.gate.RUnlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		dst = sh.g.AppendSuccessorHashes(hv, dst)
		sh.mu.Unlock()
	}
	return dst
}

// AppendPrecursorHashes appends the union of the shard-local precursor
// sets of hv to dst.
func (s *Sharded) AppendPrecursorHashes(hv uint64, dst []uint64) []uint64 {
	s.gate.RLock()
	defer s.gate.RUnlock()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		dst = sh.g.AppendPrecursorHashes(hv, dst)
		sh.mu.Unlock()
	}
	return dst
}

// AppendNodeHashes appends the union of the shard registries' hash
// values to dst, deduplicated in place (sort + compact, no map).
func (s *Sharded) AppendNodeHashes(dst []uint64) []uint64 {
	s.gate.RLock()
	defer s.gate.RUnlock()
	mark := len(dst)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		dst = sh.g.AppendNodeHashes(dst)
		sh.mu.Unlock()
	}
	return DedupHashTail(dst, mark)
}

// AppendHashIDs appends the identifiers registered under hv across all
// shards, deduplicated (an endpoint registers in every shard holding
// one of its edges).
func (s *Sharded) AppendHashIDs(hv uint64, dst []string) []string {
	s.gate.RLock()
	defer s.gate.RUnlock()
	mark := len(dst)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		dst = sh.g.AppendHashIDs(hv, dst)
		sh.mu.Unlock()
	}
	// The per-hash identifier lists are tiny (collisions are rare by
	// design), so a quadratic scan beats sorting.
	out := dst[:mark]
	for _, id := range dst[mark:] {
		dup := false
		for _, have := range out[mark:] {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, id)
		}
	}
	return out
}

// SupportsHashQueries reports whether the shards back the hash plane.
func (s *Sharded) SupportsHashQueries() bool {
	s.gate.RLock()
	defer s.gate.RUnlock()
	return s.shards[0].g.SupportsHashQueries()
}

// DedupHashTail sorts dst[mark:] and removes duplicates in place — the
// union step every multi-partition hash query shares (shard registries
// here, window generations in internal/window).
func DedupHashTail(dst []uint64, mark int) []uint64 {
	tail := dst[mark:]
	if len(tail) < 2 {
		return dst
	}
	slices.Sort(tail)
	w := 1
	for i := 1; i < len(tail); i++ {
		if tail[i] != tail[i-1] {
			tail[w] = tail[i]
			w++
		}
	}
	return dst[:mark+w]
}

// Stats aggregates shard statistics.
func (s *Sharded) Stats() Stats {
	s.gate.RLock()
	defer s.gate.RUnlock()
	var agg Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st := sh.g.Stats()
		sh.mu.Unlock()
		if i == 0 {
			agg = st
			continue
		}
		agg.Items += st.Items
		agg.MatrixEdges += st.MatrixEdges
		agg.BufferEdges += st.BufferEdges
		agg.MatrixBytes += st.MatrixBytes
		agg.IndexedNodes += st.IndexedNodes
		agg.ReverseIndexBytes += st.ReverseIndexBytes
	}
	if total := agg.MatrixEdges + agg.BufferEdges; total > 0 {
		agg.BufferPct = float64(agg.BufferEdges) / float64(total)
	}
	return agg
}

// HeavyEdges merges the per-shard heavy-edge lists. An original edge
// lives in exactly one shard, so concatenation never double-counts; the
// merged list is re-sorted into the same order GSS.HeavyEdges uses.
func (s *Sharded) HeavyEdges(minWeight int64) []HeavyEdge {
	s.gate.RLock()
	defer s.gate.RUnlock()
	var out []HeavyEdge
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		out = append(out, sh.g.HeavyEdges(minWeight)...)
		sh.mu.Unlock()
	}
	SortHeavyEdges(out)
	return out
}

// ShardCount reports the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }

// Sharded snapshot format: magic "GSSH", shard count uint32, then each
// shard's GSS snapshot in shard order. Shard routing is a pure function
// of (seed, count), so a same-count restore preserves edge placement.
var shardedMagic = [4]byte{'G', 'S', 'S', 'H'}

// Snapshot serializes all shards, locking one shard at a time.
func (s *Sharded) Snapshot(w io.Writer) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(shardedMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(s.shards))); err != nil {
		return err
	}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		_, err := sh.g.WriteTo(bw)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Restore replaces every shard's sketch with the snapshot read from r.
// The snapshot's shard count must match this sketch's — routing is
// keyed by count, so restoring into a differently sharded sketch would
// silently misroute every future query. No shard is modified on error.
func (s *Sharded) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if m != shardedMagic {
		return fmt.Errorf("%w: not a sharded snapshot", ErrBadSnapshot)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return fmt.Errorf("%w: truncated shard count", ErrBadSnapshot)
	}
	if int(n) != len(s.shards) {
		return fmt.Errorf("%w: snapshot has %d shards, sketch has %d",
			ErrBadSnapshot, n, len(s.shards))
	}
	gs := make([]*GSS, n)
	for i := range gs {
		g, err := ReadSketch(br)
		if err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		gs[i] = g
	}
	s.gate.Lock()
	for i := range s.shards {
		s.shards[i].g = gs[i]
	}
	s.gate.Unlock()
	return nil
}
