package gss

import (
	"sort"
	"sync"

	"repro/internal/hashing"
	"repro/internal/stream"
)

// Sharded partitions a GSS into independently locked shards keyed by
// the edge's endpoint pair, so multiple ingestion goroutines proceed in
// parallel as long as they touch different shards — the scale-out
// deployment the paper's distributed-graph-system references (§I)
// anticipate. Edge queries route to one shard; set queries union all
// shards (a node's edges spread across shards with its partners).
type Sharded struct {
	shards []shard
	seed   uint64
}

type shard struct {
	mu sync.Mutex
	g  *GSS
}

// NewSharded builds n shards, each a GSS with cfg scaled so the total
// matrix memory is comparable to one unsharded GSS of cfg (the width is
// divided by sqrt(n)).
func NewSharded(cfg Config, n int) (*Sharded, error) {
	if n < 1 {
		n = 1
	}
	scaled := cfg
	scaled.Width = intSqrtScale(cfg.Width, n)
	s := &Sharded{shards: make([]shard, n), seed: 0x5eed}
	for i := range s.shards {
		g, err := New(scaled)
		if err != nil {
			return nil, err
		}
		s.shards[i].g = g
	}
	return s, nil
}

// intSqrtScale divides width by sqrt(n), flooring at 1.
func intSqrtScale(width, n int) int {
	lo, hi := 1, width
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if mid*mid*n <= width*width {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func (s *Sharded) shardFor(src, dst string) *shard {
	h := hashing.HashSeeded(src, s.seed) ^ hashing.HashSeeded(dst, s.seed+1)
	return &s.shards[h%uint64(len(s.shards))]
}

// Insert ingests one item; safe for concurrent use.
func (s *Sharded) Insert(it stream.Item) { s.InsertEdge(it.Src, it.Dst, it.Weight) }

// InsertEdge adds w to edge (src,dst); safe for concurrent use.
func (s *Sharded) InsertEdge(src, dst string, w int64) {
	sh := s.shardFor(src, dst)
	sh.mu.Lock()
	sh.g.InsertEdge(src, dst, w)
	sh.mu.Unlock()
}

// EdgeWeight queries the owning shard.
func (s *Sharded) EdgeWeight(src, dst string) (int64, bool) {
	sh := s.shardFor(src, dst)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.g.EdgeWeight(src, dst)
}

// Successors unions the shard-local successor sets.
func (s *Sharded) Successors(v string) []string {
	return s.unionAll(func(g *GSS) []string { return g.Successors(v) })
}

// Precursors unions the shard-local precursor sets.
func (s *Sharded) Precursors(v string) []string {
	return s.unionAll(func(g *GSS) []string { return g.Precursors(v) })
}

// Nodes unions the shard registries.
func (s *Sharded) Nodes() []string {
	return s.unionAll(func(g *GSS) []string { return g.Nodes() })
}

func (s *Sharded) unionAll(get func(*GSS) []string) []string {
	seen := map[string]bool{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, v := range get(sh.g) {
			seen[v] = true
		}
		sh.mu.Unlock()
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Stats aggregates shard statistics.
func (s *Sharded) Stats() Stats {
	var agg Stats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		st := sh.g.Stats()
		sh.mu.Unlock()
		if i == 0 {
			agg = st
			continue
		}
		agg.Items += st.Items
		agg.MatrixEdges += st.MatrixEdges
		agg.BufferEdges += st.BufferEdges
		agg.MatrixBytes += st.MatrixBytes
		agg.IndexedNodes += st.IndexedNodes
	}
	if total := agg.MatrixEdges + agg.BufferEdges; total > 0 {
		agg.BufferPct = float64(agg.BufferEdges) / float64(total)
	}
	return agg
}

// ShardCount reports the number of shards.
func (s *Sharded) ShardCount() int { return len(s.shards) }
