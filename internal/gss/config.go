// Package gss implements the Graph Stream Sketch of "Fast and Accurate
// Graph Stream Summarization" (Gou, Zou, Zhao, Yang — ICDE 2019).
//
// GSS compresses a graph stream G into a graph sketch Gh via a node hash
// H(v) with range M = m*F, and stores Gh in an m x m bucket matrix where
// each edge is identified by a fingerprint pair plus a square-hashing
// index pair; edges that find no room go to an exact left-over buffer.
// The combination gives O(|E|) space, O(1) update, and supports the
// three query primitives (edge, 1-hop successor, 1-hop precursor) from
// which arbitrary graph queries are composed (package query).
package gss

import (
	"errors"
	"fmt"
)

// Defaults mirror the experimental settings of §VII-C.
const (
	DefaultFingerprintBits = 16
	DefaultRooms           = 2
	DefaultSeqLen          = 16
	DefaultCandidates      = 16
	maxSeqLen              = 16 // index pairs are packed 4+4 bits
	maxRooms               = 64
	maxFingerprintBits     = 16
	// maxWidth bounds the matrix side length. It matches the snapshot
	// reader's cap (a wider matrix could not be restored) and keeps
	// node hashes under 2^36, so reverse-index entries can pack a
	// fingerprint, a sequence index and a whole source hash into one
	// word. A width-2^20 matrix already needs terabytes of room area,
	// so the cap is not a practical limit.
	maxWidth = 1 << 20
)

// Config configures a GSS instance. The zero value of the optional
// fields selects the fully augmented sketch of §V (square hashing on,
// mapped-bucket sampling on, paper defaults for the sizes); the Disable*
// fields turn individual optimizations off for ablations, reproducing
// the basic version of §IV when both are set with SeqLen 1.
type Config struct {
	// Width is m, the side length of the bucket matrix. Required.
	// The paper sets m ≈ sqrt(|E|).
	Width int

	// FingerprintBits sets F = 2^bits. The paper evaluates 12 and 16.
	// Defaults to 16.
	FingerprintBits int

	// Rooms is l, the number of edge slots per bucket (§V-B2).
	// Defaults to 2.
	Rooms int

	// SeqLen is r, the length of the square-hashing address sequence
	// (§V-A). Defaults to 16. Ignored (forced to 1) when
	// DisableSquareHash is set.
	SeqLen int

	// Candidates is k, the number of sampled candidate buckets among the
	// r*r mapped buckets (§V-B1). Defaults to min(16, r*r). Ignored when
	// DisableSampling is set (all r*r buckets are probed).
	Candidates int

	// DisableSquareHash reverts to the basic version's single mapped
	// bucket per edge (§IV).
	DisableSquareHash bool

	// DisableSampling probes all r*r mapped buckets instead of a k-sized
	// sample (the "GSS(no sampling)" row of Table I).
	DisableSampling bool

	// DisableNodeIndex drops the H(v) -> original-ID hash table. Edge
	// queries still work; successor/precursor queries then return
	// synthetic identifiers for the recovered hash values.
	DisableNodeIndex bool
}

// Normalized validates cfg and returns it with defaults filled,
// without allocating a sketch. Wrappers that hold a config for later
// sketch construction (windowed generations) validate with it up
// front instead of building and discarding a probe matrix.
func (cfg Config) Normalized() (Config, error) { return cfg.normalized() }

// normalized validates cfg and fills defaults.
func (cfg Config) normalized() (Config, error) {
	if cfg.Width <= 0 {
		return cfg, errors.New("gss: Config.Width must be positive")
	}
	if cfg.Width > maxWidth {
		return cfg, fmt.Errorf("gss: Config.Width must be at most %d, got %d", maxWidth, cfg.Width)
	}
	if cfg.FingerprintBits == 0 {
		cfg.FingerprintBits = DefaultFingerprintBits
	}
	if cfg.FingerprintBits < 1 || cfg.FingerprintBits > maxFingerprintBits {
		return cfg, fmt.Errorf("gss: FingerprintBits must be in [1,%d], got %d", maxFingerprintBits, cfg.FingerprintBits)
	}
	if cfg.Rooms == 0 {
		cfg.Rooms = DefaultRooms
	}
	if cfg.Rooms < 1 || cfg.Rooms > maxRooms {
		return cfg, fmt.Errorf("gss: Rooms must be in [1,%d], got %d", maxRooms, cfg.Rooms)
	}
	if cfg.DisableSquareHash {
		cfg.SeqLen = 1
		cfg.Candidates = 1
		cfg.DisableSampling = true
	}
	if cfg.SeqLen == 0 {
		cfg.SeqLen = DefaultSeqLen
	}
	if cfg.SeqLen < 1 || cfg.SeqLen > maxSeqLen {
		return cfg, fmt.Errorf("gss: SeqLen must be in [1,%d], got %d", maxSeqLen, cfg.SeqLen)
	}
	if cfg.DisableSampling {
		cfg.Candidates = cfg.SeqLen * cfg.SeqLen
	}
	if cfg.Candidates == 0 {
		cfg.Candidates = DefaultCandidates
		if max := cfg.SeqLen * cfg.SeqLen; cfg.Candidates > max {
			cfg.Candidates = max
		}
	}
	if cfg.Candidates < 1 || cfg.Candidates > cfg.SeqLen*cfg.SeqLen {
		return cfg, fmt.Errorf("gss: Candidates must be in [1,%d], got %d", cfg.SeqLen*cfg.SeqLen, cfg.Candidates)
	}
	return cfg, nil
}
