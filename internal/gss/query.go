package gss

import (
	"math/bits"
	"sort"
	"strconv"

	"repro/internal/hashing"
)

// EdgeWeight implements the edge query primitive: it returns the summed
// weight of edge (src,dst) and whether the edge was found. Weights are
// exact for the sketch-graph edge (Theorem 1); over-estimation happens
// only when distinct original edges collide in the node map.
func (g *GSS) EdgeWeight(src, dst string) (int64, bool) {
	return g.edgeWeightHashed(g.nh.Hash(src), g.nh.Hash(dst))
}

func (g *GSS) edgeWeightHashed(hvS, hvD uint64) (int64, bool) {
	return g.edgeWeightWith(hvS, hvD, &g.sc)
}

// edgeWeightWith is EdgeWeight over pre-hashed endpoints with
// caller-provided scratch, the form concurrent readers use.
func (g *GSS) edgeWeightWith(hvS, hvD uint64, sc *queryScratch) (int64, bool) {
	addrS, fpS := g.nh.Split(hvS)
	addrD, fpD := g.nh.Split(hvD)
	m := g.cfg.Width
	rows := hashing.AddressSequence(addrS, fpS, m, sc.rowSeq)
	cols := hashing.AddressSequence(addrD, fpD, m, sc.colSeq)
	fpPair := fpS<<16 | fpD

	var (
		found   int64
		matched bool
	)
	g.probeCandidates(fpS, fpD, sc.sample, func(i, j int) bool {
		idxPair := uint8(i)<<4 | uint8(j)
		base := (int(rows[i])*m + int(cols[j])) * g.cfg.Rooms
		for p := 0; p < g.cfg.Rooms; p++ {
			slot := base + p
			if !g.occupied(slot) {
				// Rooms fill in probe order and are never freed, so an
				// empty room here proves the edge was never stored in
				// the matrix: stop probing and fall back to the buffer.
				return true
			}
			if g.idx[slot] == idxPair && g.fps[slot] == fpPair {
				found = g.weights[slot]
				matched = true
				return true
			}
		}
		return false
	})
	if matched {
		return found, true
	}
	return g.buf.get(hvS, hvD)
}

// Successors implements the 1-hop successor query primitive: all
// original node identifiers 1-hop reachable from v according to the
// sketch. The result is a superset of the true successors (false
// positives only), sorted for determinism. Returns nil when none found.
func (g *GSS) Successors(v string) []string {
	return g.successorsWith(v, &g.sc)
}

// Precursors implements the 1-hop precursor query primitive.
func (g *GSS) Precursors(v string) []string {
	return g.precursorsWith(v, &g.sc)
}

// successorsWith and precursorsWith are the scratch-threaded forms of
// the set primitives, for readers sharing the sketch under a read lock.
// The hash set is accumulated in scratch; the only sort is the string
// sort at the public boundary, inside expand.
func (g *GSS) successorsWith(v string, sc *queryScratch) []string {
	sc.hashes = g.appendSuccessorHashesWith(g.nh.Hash(v), sc.hashes[:0], sc)
	return g.expand(sc.hashes)
}

func (g *GSS) precursorsWith(v string, sc *queryScratch) []string {
	sc.hashes = g.appendPrecursorHashesWith(g.nh.Hash(v), sc.hashes[:0], sc)
	return g.expand(sc.hashes)
}

// SuccessorHashes returns the sketch-graph successors of hash value hv.
// The result is freshly allocated and unordered; hot paths use
// AppendSuccessorHashes to reuse a caller buffer instead.
func (g *GSS) SuccessorHashes(hv uint64) []uint64 {
	return g.appendSuccessorHashesWith(hv, nil, &g.sc)
}

// PrecursorHashes returns the sketch-graph precursors of hash value hv,
// freshly allocated and unordered.
func (g *GSS) PrecursorHashes(hv uint64) []uint64 {
	return g.appendPrecursorHashesWith(hv, nil, &g.sc)
}

// AppendSuccessorHashes appends the sketch-graph successors of hash
// value hv to dst and returns it. Results are duplicate-free but carry
// no order guarantee. Like every other GSS method it is not safe for
// concurrent use; synchronized wrappers expose the same method under
// their locks.
func (g *GSS) AppendSuccessorHashes(hv uint64, dst []uint64) []uint64 {
	return g.appendSuccessorHashesWith(hv, dst, &g.sc)
}

// AppendPrecursorHashes appends the sketch-graph precursors of hash
// value hv to dst and returns it; duplicate-free, unordered.
func (g *GSS) AppendPrecursorHashes(hv uint64, dst []uint64) []uint64 {
	return g.appendPrecursorHashesWith(hv, dst, &g.sc)
}

// appendSuccessorHashesWith scans the r mapped rows of the matrix plus
// the buffer (§V). Occupied slots are found by walking the occupancy
// bitset a word at a time with TrailingZeros64, so a sparse row costs a
// handful of word loads instead of m*l per-slot probes.
//
// No deduplication is needed: a sketch edge is stored in exactly one
// room (repeat insertions re-walk the same candidate sequence and stop
// at the existing room before any empty one), matches are exact on the
// source hash value, distinct mapped rows recover disjoint edge sets,
// and the left-over buffer holds only edges the matrix rejected. The
// only duplicate source is the address sequence itself repeating a row
// value mod m, which the i-loop skips.
func (g *GSS) appendSuccessorHashesWith(hv uint64, dst []uint64, sc *queryScratch) []uint64 {
	addr, fp := g.nh.Split(hv)
	m, l, r := g.cfg.Width, g.cfg.Rooms, g.cfg.SeqLen
	rows := hashing.AddressSequence(addr, fp, m, sc.rowSeq)
rowLoop:
	for i := 0; i < r; i++ {
		row := rows[i]
		for k := 0; k < i; k++ {
			if rows[k] == row {
				continue rowLoop // same row, identical matches
			}
		}
		base := int(row) * m * l
		end := base + m*l
		firstWord, lastWord := base>>6, (end-1)>>6
		for w := firstWord; w <= lastWord; w++ {
			word := g.occ[w]
			if word == 0 {
				continue
			}
			if w == firstWord {
				word &= ^uint64(0) << (uint(base) & 63)
			}
			if w == lastWord && uint(end)&63 != 0 {
				word &= uint64(1)<<(uint(end)&63) - 1
			}
			for word != 0 {
				slot := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				if g.fps[slot]>>16 != fp {
					continue
				}
				// rows[is] == row is RecoverAddress(row, fp, is) == addr:
				// both sides add q_is(fp) to addr mod m, and rows is
				// already computed for this query — no LCG replay.
				is := int(g.idx[slot] >> 4)
				if is >= r || rows[is] != row {
					continue // same fingerprint, different source node
				}
				col := uint32((slot / l) % m)
				fpD := g.fps[slot] & 0xffff
				id := int(g.idx[slot] & 0x0f)
				hd := hashing.RecoverAddress(col, fpD, id, m)
				dst = append(dst, g.nh.Combine(hd, fpD))
			}
		}
	}
	return append(dst, g.buf.successors(hv)...)
}

// appendPrecursorHashesWith walks the reverse column index: the r
// mapped columns' entry lists plus the buffer. Cost is O(occupied
// rooms in the mapped columns), not O(m*l) per column, and the walk is
// a pure sequential scan: the entry's fingerprint plus cols[id] == col
// (which is RecoverAddress(col, fp, id) == addr restated through the
// query's own address sequence) identify a stored edge into hv
// exactly, and the entry carries the pre-decoded source hash, so
// neither the filter nor a match ever touches the matrix. The same
// single-storage argument as for successors makes the result
// duplicate-free once repeated column values are skipped.
func (g *GSS) appendPrecursorHashesWith(hv uint64, dst []uint64, sc *queryScratch) []uint64 {
	addr, fp := g.nh.Split(hv)
	m, r := g.cfg.Width, g.cfg.SeqLen
	cols := hashing.AddressSequence(addr, fp, m, sc.colSeq)
	fpTag := uint64(fp) << 48
	const hashMask = 1<<44 - 1
colLoop:
	for j := 0; j < r; j++ {
		col := cols[j]
		for k := 0; k < j; k++ {
			if cols[k] == col {
				continue colLoop
			}
		}
		for _, e := range g.colIdx[col] {
			if e&(0xffff<<48) != fpTag {
				continue
			}
			id := int(e>>44) & 0x0f
			if id >= r || cols[id] != col {
				continue
			}
			dst = append(dst, e&hashMask)
		}
	}
	return append(dst, g.buf.precursors(hv)...)
}

// SuccessorHashesScan is the pre-index successor scan retained as the
// reference implementation: a per-slot strided walk of the r mapped
// rows with map-based deduplication, sorted output. Differential tests
// pin the accelerated path to it, and gss-bench quotes it as the
// before-side of the query speedup.
func (g *GSS) SuccessorHashesScan(hv uint64) []uint64 {
	addr, fp := g.nh.Split(hv)
	m, l, r := g.cfg.Width, g.cfg.Rooms, g.cfg.SeqLen
	rows := hashing.AddressSequence(addr, fp, m, g.sc.rowSeq)
	seen := make(map[uint64]struct{})
	for i := 0; i < r; i++ {
		row := rows[i]
		base := int(row) * m * l
		for slot := base; slot < base+m*l; slot++ {
			if !g.occupied(slot) {
				continue
			}
			fpS := g.fps[slot] >> 16
			if fpS != fp {
				continue
			}
			is := int(g.idx[slot] >> 4)
			if is >= r || hashing.RecoverAddress(row, fpS, is, m) != addr {
				continue
			}
			col := uint32((slot / l) % m)
			fpD := g.fps[slot] & 0xffff
			id := int(g.idx[slot] & 0x0f)
			hd := hashing.RecoverAddress(col, fpD, id, m)
			seen[g.nh.Combine(hd, fpD)] = struct{}{}
		}
	}
	for _, d := range g.buf.successors(hv) {
		seen[d] = struct{}{}
	}
	return hashSet(seen)
}

// PrecursorHashesScan is the pre-index precursor scan retained as the
// reference implementation: a full O(m * m * l) strided walk over the r
// mapped columns. See SuccessorHashesScan.
func (g *GSS) PrecursorHashesScan(hv uint64) []uint64 {
	addr, fp := g.nh.Split(hv)
	m, l, r := g.cfg.Width, g.cfg.Rooms, g.cfg.SeqLen
	cols := hashing.AddressSequence(addr, fp, m, g.sc.colSeq)
	seen := make(map[uint64]struct{})
	for j := 0; j < r; j++ {
		col := cols[j]
		for row := 0; row < m; row++ {
			base := (row*m + int(col)) * l
			for p := 0; p < l; p++ {
				slot := base + p
				if !g.occupied(slot) {
					continue
				}
				fpD := g.fps[slot] & 0xffff
				if fpD != fp {
					continue
				}
				id := int(g.idx[slot] & 0x0f)
				if id >= r || hashing.RecoverAddress(col, fpD, id, m) != addr {
					continue
				}
				fpS := g.fps[slot] >> 16
				is := int(g.idx[slot] >> 4)
				hs := hashing.RecoverAddress(uint32(row), fpS, is, m)
				seen[g.nh.Combine(hs, fpS)] = struct{}{}
			}
		}
	}
	for _, s := range g.buf.precursors(hv) {
		seen[s] = struct{}{}
	}
	return hashSet(seen)
}

func hashSet(m map[uint64]struct{}) []uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// The hash-native query plane (query.HashSummary). Compound graph
// algorithms traverse uint64 hash values with these methods and expand
// to original identifiers once at the API edge, skipping the per-hop
// string expansion, map allocation and sorting of the string plane.

// NodeHash maps an original identifier into the sketch's compressed
// node space [0, M).
func (g *GSS) NodeHash(v string) uint64 { return g.nh.Hash(v) }

// EdgeWeightHash is the edge query primitive over pre-hashed endpoints.
func (g *GSS) EdgeWeightHash(hs, hd uint64) (int64, bool) {
	return g.edgeWeightHashed(hs, hd)
}

// AppendNodeHashes appends every hash value with at least one
// registered identifier to dst; duplicate-free, unordered. Returns dst
// unchanged when the node index is disabled.
func (g *GSS) AppendNodeHashes(dst []uint64) []uint64 {
	if g.reg == nil {
		return dst
	}
	for hv := range g.reg.ids {
		dst = append(dst, hv)
	}
	return dst
}

// AppendHashIDs appends the original identifiers registered under hv to
// dst. An empty result means the hash is unregistered — recovered from
// the matrix but never seen as an inserted endpoint (a set-query false
// positive the string plane silently drops in expand).
func (g *GSS) AppendHashIDs(hv uint64, dst []string) []string {
	if g.reg == nil {
		return dst
	}
	return append(dst, g.reg.ids[hv]...)
}

// SupportsHashQueries reports whether the hash-native query plane is
// backed: it needs the node index, which ties hash values back to
// original identifiers exactly the way the string plane's expand does.
func (g *GSS) SupportsHashQueries() bool { return g.reg != nil }

// expand converts recovered hash values to original node identifiers via
// the node-index hash table. Without the index, synthetic identifiers of
// the form "#<hash>" are returned.
func (g *GSS) expand(hvs []uint64) []string {
	if len(hvs) == 0 {
		return nil
	}
	var out []string
	for _, hv := range hvs {
		if g.reg == nil {
			out = append(out, "#"+strconv.FormatUint(hv, 10))
			continue
		}
		out = append(out, g.reg.lookup(hv)...)
	}
	sort.Strings(out)
	return out
}

// Nodes returns all node identifiers ever inserted, from the node-index
// hash table. It returns nil when the index is disabled.
func (g *GSS) Nodes() []string {
	if g.reg == nil {
		return nil
	}
	return g.reg.nodes()
}

// EachNode invokes fn for every registered original identifier, in
// arbitrary order. Aggregations that only need membership or a count
// (the windowed backend's cross-generation node statistics) use it to
// skip the sort and slice Nodes pays for.
func (g *GSS) EachNode(fn func(id string)) {
	if g.reg == nil {
		return
	}
	for _, ids := range g.reg.ids {
		for _, id := range ids {
			fn(id)
		}
	}
}
