package gss

import (
	"sort"
	"strconv"

	"repro/internal/hashing"
)

// EdgeWeight implements the edge query primitive: it returns the summed
// weight of edge (src,dst) and whether the edge was found. Weights are
// exact for the sketch-graph edge (Theorem 1); over-estimation happens
// only when distinct original edges collide in the node map.
func (g *GSS) EdgeWeight(src, dst string) (int64, bool) {
	return g.edgeWeightHashed(g.nh.Hash(src), g.nh.Hash(dst))
}

func (g *GSS) edgeWeightHashed(hvS, hvD uint64) (int64, bool) {
	return g.edgeWeightWith(hvS, hvD, &g.sc)
}

// edgeWeightWith is EdgeWeight over pre-hashed endpoints with
// caller-provided scratch, the form concurrent readers use.
func (g *GSS) edgeWeightWith(hvS, hvD uint64, sc *queryScratch) (int64, bool) {
	addrS, fpS := g.nh.Split(hvS)
	addrD, fpD := g.nh.Split(hvD)
	m := g.cfg.Width
	rows := hashing.AddressSequence(addrS, fpS, m, sc.rowSeq)
	cols := hashing.AddressSequence(addrD, fpD, m, sc.colSeq)
	fpPair := fpS<<16 | fpD

	var (
		found   int64
		matched bool
	)
	g.probeCandidates(fpS, fpD, sc.sample, func(i, j int) bool {
		idxPair := uint8(i)<<4 | uint8(j)
		base := (int(rows[i])*m + int(cols[j])) * g.cfg.Rooms
		for p := 0; p < g.cfg.Rooms; p++ {
			slot := base + p
			if !g.occupied(slot) {
				// Rooms fill in probe order and are never freed, so an
				// empty room here proves the edge was never stored in
				// the matrix: stop probing and fall back to the buffer.
				return true
			}
			if g.idx[slot] == idxPair && g.fps[slot] == fpPair {
				found = g.weights[slot]
				matched = true
				return true
			}
		}
		return false
	})
	if matched {
		return found, true
	}
	return g.buf.get(hvS, hvD)
}

// Successors implements the 1-hop successor query primitive: all
// original node identifiers 1-hop reachable from v according to the
// sketch. The result is a superset of the true successors (false
// positives only), sorted for determinism. Returns nil when none found.
func (g *GSS) Successors(v string) []string {
	return g.expand(g.SuccessorHashes(g.nh.Hash(v)))
}

// Precursors implements the 1-hop precursor query primitive.
func (g *GSS) Precursors(v string) []string {
	return g.expand(g.PrecursorHashes(g.nh.Hash(v)))
}

// successorsWith and precursorsWith are the scratch-threaded forms of
// the set primitives, for readers sharing the sketch under a read lock.
func (g *GSS) successorsWith(v string, sc *queryScratch) []string {
	return g.expand(g.successorHashesWith(g.nh.Hash(v), sc))
}

func (g *GSS) precursorsWith(v string, sc *queryScratch) []string {
	return g.expand(g.precursorHashesWith(g.nh.Hash(v), sc))
}

// SuccessorHashes returns the sketch-graph successors of hash value hv,
// scanning the r mapped rows of the matrix plus the buffer (§V).
func (g *GSS) SuccessorHashes(hv uint64) []uint64 {
	return g.successorHashesWith(hv, &g.sc)
}

func (g *GSS) successorHashesWith(hv uint64, sc *queryScratch) []uint64 {
	addr, fp := g.nh.Split(hv)
	m, l, r := g.cfg.Width, g.cfg.Rooms, g.cfg.SeqLen
	rows := hashing.AddressSequence(addr, fp, m, sc.rowSeq)
	seen := make(map[uint64]struct{})
	for i := 0; i < r; i++ {
		row := rows[i]
		base := int(row) * m * l
		for slot := base; slot < base+m*l; slot++ {
			if !g.occupied(slot) {
				continue
			}
			fpS := g.fps[slot] >> 16
			if fpS != fp {
				continue
			}
			is := int(g.idx[slot] >> 4)
			if is >= r || hashing.RecoverAddress(row, fpS, is, m) != addr {
				continue // same fingerprint, different source node
			}
			col := uint32((slot / l) % m)
			fpD := g.fps[slot] & 0xffff
			id := int(g.idx[slot] & 0x0f)
			hd := hashing.RecoverAddress(col, fpD, id, m)
			seen[g.nh.Combine(hd, fpD)] = struct{}{}
		}
	}
	for _, d := range g.buf.successors(hv) {
		seen[d] = struct{}{}
	}
	return hashSet(seen)
}

// PrecursorHashes returns the sketch-graph precursors of hash value hv,
// scanning the r mapped columns plus the buffer.
func (g *GSS) PrecursorHashes(hv uint64) []uint64 {
	return g.precursorHashesWith(hv, &g.sc)
}

func (g *GSS) precursorHashesWith(hv uint64, sc *queryScratch) []uint64 {
	addr, fp := g.nh.Split(hv)
	m, l, r := g.cfg.Width, g.cfg.Rooms, g.cfg.SeqLen
	cols := hashing.AddressSequence(addr, fp, m, sc.colSeq)
	seen := make(map[uint64]struct{})
	for j := 0; j < r; j++ {
		col := cols[j]
		for row := 0; row < m; row++ {
			base := (row*m + int(col)) * l
			for p := 0; p < l; p++ {
				slot := base + p
				if !g.occupied(slot) {
					continue
				}
				fpD := g.fps[slot] & 0xffff
				if fpD != fp {
					continue
				}
				id := int(g.idx[slot] & 0x0f)
				if id >= r || hashing.RecoverAddress(col, fpD, id, m) != addr {
					continue
				}
				fpS := g.fps[slot] >> 16
				is := int(g.idx[slot] >> 4)
				hs := hashing.RecoverAddress(uint32(row), fpS, is, m)
				seen[g.nh.Combine(hs, fpS)] = struct{}{}
			}
		}
	}
	for _, s := range g.buf.precursors(hv) {
		seen[s] = struct{}{}
	}
	return hashSet(seen)
}

func hashSet(m map[uint64]struct{}) []uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(m))
	for h := range m {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// expand converts recovered hash values to original node identifiers via
// the node-index hash table. Without the index, synthetic identifiers of
// the form "#<hash>" are returned.
func (g *GSS) expand(hvs []uint64) []string {
	if len(hvs) == 0 {
		return nil
	}
	var out []string
	for _, hv := range hvs {
		if g.reg == nil {
			out = append(out, "#"+strconv.FormatUint(hv, 10))
			continue
		}
		out = append(out, g.reg.lookup(hv)...)
	}
	sort.Strings(out)
	return out
}

// Nodes returns all node identifiers ever inserted, from the node-index
// hash table. It returns nil when the index is disabled.
func (g *GSS) Nodes() []string {
	if g.reg == nil {
		return nil
	}
	return g.reg.nodes()
}

// EachNode invokes fn for every registered original identifier, in
// arbitrary order. Aggregations that only need membership or a count
// (the windowed backend's cross-generation node statistics) use it to
// skip the sort and slice Nodes pays for.
func (g *GSS) EachNode(fn func(id string)) {
	if g.reg == nil {
		return
	}
	for _, ids := range g.reg.ids {
		for _, id := range ids {
			fn(id)
		}
	}
}
