package gss

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/adjlist"
	"repro/internal/stream"
)

func TestShardedMatchesExact(t *testing.T) {
	items := stream.Generate(stream.EmailEuAll().Scaled(0.002))
	s, err := NewSharded(Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact := adjlist.New()
	for _, it := range items {
		s.Insert(it)
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	for _, it := range items {
		want, _ := exact.EdgeWeight(it.Src, it.Dst)
		got, ok := s.EdgeWeight(it.Src, it.Dst)
		if !ok || got < want {
			t.Fatalf("edge (%s,%s): %d,%v want >= %d", it.Src, it.Dst, got, ok, want)
		}
	}
	nodes := exact.Nodes()
	if len(nodes) > 100 {
		nodes = nodes[:100]
	}
	for _, v := range nodes {
		got := map[string]bool{}
		for _, u := range s.Successors(v) {
			got[u] = true
		}
		for _, u := range exact.Successors(v) {
			if !got[u] {
				t.Fatalf("sharded lost successor %s of %s", u, v)
			}
		}
	}
}

func TestShardedParallelIngestion(t *testing.T) {
	items := stream.Generate(stream.LkmlReply().Scaled(0.002))
	s, err := NewSharded(Config{Width: 48, SeqLen: 4, Candidates: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(items); i += workers {
				s.Insert(items[i])
			}
		}(w)
	}
	wg.Wait()
	if got := s.Stats().Items; got != int64(len(items)) {
		t.Fatalf("items = %d, want %d", got, len(items))
	}
	missing := 0
	for _, it := range items {
		if _, ok := s.EdgeWeight(it.Src, it.Dst); !ok {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d edges lost under parallel ingestion", missing)
	}
}

func TestShardedMemoryComparable(t *testing.T) {
	single := MustNew(Config{Width: 64})
	s, err := NewSharded(Config{Width: 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 shards of width 32 = same total rooms as one width-64 sketch.
	if got, want := s.Stats().MatrixBytes, single.MemoryBytes(); got > want+want/8 {
		t.Fatalf("sharded memory %d far above single %d", got, want)
	}
	if s.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", s.ShardCount())
	}
}

func TestShardedDegenerateShardCount(t *testing.T) {
	s, err := NewSharded(Config{Width: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d, want 1", s.ShardCount())
	}
	s.InsertEdge("a", "b", 2)
	if w, ok := s.EdgeWeight("a", "b"); !ok || w != 2 {
		t.Fatalf("w = %d,%v", w, ok)
	}
}

func TestIntSqrtScale(t *testing.T) {
	cases := []struct{ w, n, want int }{
		{64, 4, 32}, {64, 1, 64}, {100, 2, 70}, {3, 100, 1},
	}
	for _, c := range cases {
		if got := ScaleWidth(c.w, c.n); got != c.want {
			t.Errorf("ScaleWidth(%d,%d) = %d, want %d", c.w, c.n, got, c.want)
		}
	}
}

// TestShardedInsertBatchMatchesItemwise is the batch-split-by-shard
// correctness check: grouping a batch by shard and inserting each group
// under one lock must land every item on the same shard, and therefore
// the same slot, as item-at-a-time insertion — identical edge weights
// and identical aggregate stats.
func TestShardedInsertBatchMatchesItemwise(t *testing.T) {
	items := stream.Generate(stream.EmailEuAll().Scaled(0.002))
	cfg := Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	itemwise, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		itemwise.Insert(it)
	}
	// Uneven batch sizes exercise the grouping boundaries.
	for off := 0; off < len(items); {
		end := off + 1 + off%97
		if end > len(items) {
			end = len(items)
		}
		batched.InsertBatch(items[off:end])
		off = end
	}
	if a, b := itemwise.Stats(), batched.Stats(); a != b {
		t.Fatalf("stats diverge:\nitemwise %+v\nbatched  %+v", a, b)
	}
	for _, it := range items {
		wa, oka := itemwise.EdgeWeight(it.Src, it.Dst)
		wb, okb := batched.EdgeWeight(it.Src, it.Dst)
		if wa != wb || oka != okb {
			t.Fatalf("edge (%s,%s): itemwise %d,%v batched %d,%v",
				it.Src, it.Dst, wa, oka, wb, okb)
		}
	}
}

// TestShardedBatchTotalsMatchSingle checks the sharded batched totals
// against one unsharded sketch: identical item counts, and per-edge
// weights that both dominate the exact ground truth.
func TestShardedBatchTotalsMatchSingle(t *testing.T) {
	items := stream.Generate(stream.LkmlReply().Scaled(0.002))
	single := MustNew(Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	sharded, err := NewSharded(Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact := adjlist.New()
	single.InsertBatch(items)
	sharded.InsertBatch(items)
	for _, it := range items {
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	if s, sh := single.Stats().Items, sharded.Stats().Items; s != sh || s != int64(len(items)) {
		t.Fatalf("items: single %d sharded %d want %d", s, sh, len(items))
	}
	for _, it := range items {
		want, _ := exact.EdgeWeight(it.Src, it.Dst)
		if w, ok := single.EdgeWeight(it.Src, it.Dst); !ok || w < want {
			t.Fatalf("single edge (%s,%s) = %d,%v want >= %d", it.Src, it.Dst, w, ok, want)
		}
		if w, ok := sharded.EdgeWeight(it.Src, it.Dst); !ok || w < want {
			t.Fatalf("sharded edge (%s,%s) = %d,%v want >= %d", it.Src, it.Dst, w, ok, want)
		}
	}
}

func TestShardedConcurrentInsertBatch(t *testing.T) {
	items := stream.Generate(stream.LkmlReply().Scaled(0.002))
	s, err := NewSharded(Config{Width: 48, SeqLen: 4, Candidates: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	var wg sync.WaitGroup
	per := (len(items) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(chunk []stream.Item) {
			defer wg.Done()
			for off := 0; off < len(chunk); off += 100 {
				end := off + 100
				if end > len(chunk) {
					end = len(chunk)
				}
				s.InsertBatch(chunk[off:end])
			}
		}(items[lo:hi])
	}
	wg.Wait()
	if got := s.Stats().Items; got != int64(len(items)) {
		t.Fatalf("items = %d, want %d", got, len(items))
	}
	for _, it := range items {
		if _, ok := s.EdgeWeight(it.Src, it.Dst); !ok {
			t.Fatalf("edge (%s,%s) lost under concurrent batch ingestion", it.Src, it.Dst)
		}
	}
}

func TestShardedSnapshotRestore(t *testing.T) {
	items := stream.Generate(stream.EmailEuAll().Scaled(0.001))
	cfg := Config{Width: 48, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	s, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.InsertBatch(items)
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := NewSharded(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if a, b := s.Stats(), restored.Stats(); a != b {
		t.Fatalf("stats diverge after restore: %+v vs %+v", a, b)
	}
	for _, it := range items {
		wa, oka := s.EdgeWeight(it.Src, it.Dst)
		wb, okb := restored.EdgeWeight(it.Src, it.Dst)
		if wa != wb || oka != okb {
			t.Fatalf("edge (%s,%s) diverges after restore", it.Src, it.Dst)
		}
	}

	// Shard-count mismatch must be rejected, not misrouted.
	wrong, err := NewSharded(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := wrong.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into 8 shards from a 4-shard snapshot accepted")
	}
	// A single-GSS snapshot is not a sharded snapshot.
	var single bytes.Buffer
	if err := MustNew(cfg).Snapshot(&single); err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(bytes.NewReader(single.Bytes())); err == nil {
		t.Fatal("restore from unsharded snapshot accepted")
	}
}

func TestShardedHeavyEdges(t *testing.T) {
	s, err := NewSharded(Config{Width: 32, SeqLen: 4, Candidates: 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s.InsertEdge("big", "flow", 500)
	s.InsertEdge("bigger", "flow", 900)
	s.InsertEdge("small", "flow", 2)
	heavy := s.HeavyEdges(100)
	if len(heavy) != 2 {
		t.Fatalf("heavy = %d edges, want 2", len(heavy))
	}
	if heavy[0].Weight != 900 || heavy[1].Weight != 500 {
		t.Fatalf("heavy order = %d,%d want 900,500", heavy[0].Weight, heavy[1].Weight)
	}
}
