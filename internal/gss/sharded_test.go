package gss

import (
	"sync"
	"testing"

	"repro/internal/adjlist"
	"repro/internal/stream"
)

func TestShardedMatchesExact(t *testing.T) {
	items := stream.Generate(stream.EmailEuAll().Scaled(0.002))
	s, err := NewSharded(Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	exact := adjlist.New()
	for _, it := range items {
		s.Insert(it)
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	for _, it := range items {
		want, _ := exact.EdgeWeight(it.Src, it.Dst)
		got, ok := s.EdgeWeight(it.Src, it.Dst)
		if !ok || got < want {
			t.Fatalf("edge (%s,%s): %d,%v want >= %d", it.Src, it.Dst, got, ok, want)
		}
	}
	nodes := exact.Nodes()
	if len(nodes) > 100 {
		nodes = nodes[:100]
	}
	for _, v := range nodes {
		got := map[string]bool{}
		for _, u := range s.Successors(v) {
			got[u] = true
		}
		for _, u := range exact.Successors(v) {
			if !got[u] {
				t.Fatalf("sharded lost successor %s of %s", u, v)
			}
		}
	}
}

func TestShardedParallelIngestion(t *testing.T) {
	items := stream.Generate(stream.LkmlReply().Scaled(0.002))
	s, err := NewSharded(Config{Width: 48, SeqLen: 4, Candidates: 4}, 8)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(items); i += workers {
				s.Insert(items[i])
			}
		}(w)
	}
	wg.Wait()
	if got := s.Stats().Items; got != int64(len(items)) {
		t.Fatalf("items = %d, want %d", got, len(items))
	}
	missing := 0
	for _, it := range items {
		if _, ok := s.EdgeWeight(it.Src, it.Dst); !ok {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d edges lost under parallel ingestion", missing)
	}
}

func TestShardedMemoryComparable(t *testing.T) {
	single := MustNew(Config{Width: 64})
	s, err := NewSharded(Config{Width: 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 4 shards of width 32 = same total rooms as one width-64 sketch.
	if got, want := s.Stats().MatrixBytes, single.MemoryBytes(); got > want+want/8 {
		t.Fatalf("sharded memory %d far above single %d", got, want)
	}
	if s.ShardCount() != 4 {
		t.Fatalf("ShardCount = %d", s.ShardCount())
	}
}

func TestShardedDegenerateShardCount(t *testing.T) {
	s, err := NewSharded(Config{Width: 16}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.ShardCount() != 1 {
		t.Fatalf("ShardCount = %d, want 1", s.ShardCount())
	}
	s.InsertEdge("a", "b", 2)
	if w, ok := s.EdgeWeight("a", "b"); !ok || w != 2 {
		t.Fatalf("w = %d,%v", w, ok)
	}
}

func TestIntSqrtScale(t *testing.T) {
	cases := []struct{ w, n, want int }{
		{64, 4, 32}, {64, 1, 64}, {100, 2, 70}, {3, 100, 1},
	}
	for _, c := range cases {
		if got := intSqrtScale(c.w, c.n); got != c.want {
			t.Errorf("intSqrtScale(%d,%d) = %d, want %d", c.w, c.n, got, c.want)
		}
	}
}
