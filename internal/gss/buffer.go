package gss

// buffer is the adjacency-list buffer B for left-over edges (Definition
// 5, item 4). It stores sketch-graph edges exactly, keyed by the hash
// values of the endpoints, with per-endpoint lists so the successor and
// precursor primitives can scan it.
type buffer struct {
	weights map[edgeKey]int64
	out     map[uint64][]uint64 // H(s) -> destinations
	in      map[uint64][]uint64 // H(d) -> sources
}

type edgeKey struct{ s, d uint64 }

func newBuffer() *buffer {
	return &buffer{
		weights: make(map[edgeKey]int64),
		out:     make(map[uint64][]uint64),
		in:      make(map[uint64][]uint64),
	}
}

// add accumulates w on sketch edge (s,d), registering the adjacency
// lists on first sight.
func (b *buffer) add(s, d uint64, w int64) {
	k := edgeKey{s, d}
	if _, ok := b.weights[k]; !ok {
		b.out[s] = append(b.out[s], d)
		b.in[d] = append(b.in[d], s)
	}
	b.weights[k] += w
}

// get returns the buffered weight of (s,d).
func (b *buffer) get(s, d uint64) (int64, bool) {
	w, ok := b.weights[edgeKey{s, d}]
	return w, ok
}

// successors returns the buffered destinations of s.
func (b *buffer) successors(s uint64) []uint64 { return b.out[s] }

// precursors returns the buffered sources of d.
func (b *buffer) precursors(d uint64) []uint64 { return b.in[d] }

// size is the number of distinct left-over sketch edges.
func (b *buffer) size() int { return len(b.weights) }
