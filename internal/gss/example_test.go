package gss_test

import (
	"fmt"

	"repro/internal/gss"
	"repro/internal/stream"
)

// Example builds a sketch over a tiny stream and runs the three query
// primitives of Definition 4.
func Example() {
	g := gss.MustNew(gss.Config{Width: 16, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4})
	g.Insert(stream.Item{Src: "a", Dst: "b", Weight: 1})
	g.Insert(stream.Item{Src: "a", Dst: "c", Weight: 2})
	g.Insert(stream.Item{Src: "a", Dst: "c", Weight: 3}) // weights sum

	w, ok := g.EdgeWeight("a", "c")
	fmt.Println("edge (a,c):", w, ok)
	fmt.Println("successors(a):", g.Successors("a"))
	fmt.Println("precursors(c):", g.Precursors("c"))
	// Output:
	// edge (a,c): 5 true
	// successors(a): [b c]
	// precursors(c): [a]
}

// ExampleGSS_HeavyEdges finds the heaviest flows by decoding the matrix
// directly — no candidate list needed, thanks to reversible square
// hashing.
func ExampleGSS_HeavyEdges() {
	g := gss.MustNew(gss.Config{Width: 16})
	g.InsertEdge("alice", "bob", 100)
	g.InsertEdge("carol", "dave", 7)
	for _, he := range g.HeavyEdges(50) {
		fmt.Println(he.Srcs, "->", he.Dsts, he.Weight)
	}
	// Output:
	// [alice] -> [bob] 100
}

// ExampleGSS_Merge aggregates two worker sketches into one, as a
// distributed ingestion tier would.
func ExampleGSS_Merge() {
	cfg := gss.Config{Width: 16}
	worker1 := gss.MustNew(cfg)
	worker2 := gss.MustNew(cfg)
	worker1.InsertEdge("x", "y", 3)
	worker2.InsertEdge("x", "y", 4)
	if err := worker1.Merge(worker2); err != nil {
		fmt.Println("merge failed:", err)
		return
	}
	w, _ := worker1.EdgeWeight("x", "y")
	fmt.Println("merged weight:", w)
	// Output:
	// merged weight: 7
}
