package gss

import (
	"testing"

	"repro/internal/stream"
)

// Microbenchmarks for the query primitives: the indexed/occupancy-word
// paths against the retained pre-index scans, on one loaded sketch.
// cmd/gss-bench -mode query measures the same comparison at deployment
// scale; these stay small enough for the CI bench-smoke step.

func benchSketch(b *testing.B) (*GSS, []uint64) {
	b.Helper()
	g := MustNew(Config{Width: 128})
	items := stream.Generate(stream.DatasetConfig{Name: "bench", Nodes: 2000,
		Edges: 30000, DegreeSkew: 1.5, WeightSkew: 1.3, MaxWeight: 100, Seed: 3})
	g.InsertBatch(items)
	hashes := make([]uint64, 512)
	for i := range hashes {
		it := items[(i*37)%len(items)]
		v := it.Src
		if i%2 == 1 {
			v = it.Dst
		}
		hashes[i] = g.NodeHash(v)
	}
	return g, hashes
}

func BenchmarkAppendPrecursorHashes(b *testing.B) {
	g, hashes := benchSketch(b)
	var buf []uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.AppendPrecursorHashes(hashes[i%len(hashes)], buf[:0])
	}
}

func BenchmarkPrecursorHashesScan(b *testing.B) {
	g, hashes := benchSketch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PrecursorHashesScan(hashes[i%len(hashes)])
	}
}

func BenchmarkAppendSuccessorHashes(b *testing.B) {
	g, hashes := benchSketch(b)
	var buf []uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.AppendSuccessorHashes(hashes[i%len(hashes)], buf[:0])
	}
}

func BenchmarkSuccessorHashesScan(b *testing.B) {
	g, hashes := benchSketch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.SuccessorHashesScan(hashes[i%len(hashes)])
	}
}

func BenchmarkSuccessorsStrings(b *testing.B) {
	g, hashes := benchSketch(b)
	_ = hashes
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Successors(stream.NodeID(i % 2000))
	}
}

func BenchmarkEdgeWeightHash(b *testing.B) {
	g, hashes := benchSketch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.EdgeWeightHash(hashes[i%len(hashes)], hashes[(i+1)%len(hashes)])
	}
}
