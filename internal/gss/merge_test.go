package gss

import (
	"testing"

	"repro/internal/adjlist"
	"repro/internal/stream"
)

func TestMergeConfigMismatch(t *testing.T) {
	a := MustNew(Config{Width: 16})
	b := MustNew(Config{Width: 32})
	if err := a.Merge(b); err != ErrConfigMismatch {
		t.Fatalf("err = %v, want ErrConfigMismatch", err)
	}
}

func TestMergeEquivalentToSingleSketch(t *testing.T) {
	items := stream.Generate(stream.EmailEuAll().Scaled(0.003))
	cfg := Config{Width: 56, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}

	// Split the stream across two workers, then merge.
	w1, w2 := MustNew(cfg), MustNew(cfg)
	whole := MustNew(cfg)
	exact := adjlist.New()
	for i, it := range items {
		if i%2 == 0 {
			w1.Insert(it)
		} else {
			w2.Insert(it)
		}
		whole.Insert(it)
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	if err := w1.Merge(w2); err != nil {
		t.Fatal(err)
	}
	if w1.Stats().Items != int64(len(items)) {
		t.Fatalf("merged item count %d, want %d", w1.Stats().Items, len(items))
	}
	// Merged queries match the single-sketch queries on every edge.
	for _, it := range items {
		mw, mok := w1.EdgeWeight(it.Src, it.Dst)
		sw, sok := whole.EdgeWeight(it.Src, it.Dst)
		if mok != sok || mw != sw {
			t.Fatalf("edge (%s,%s): merged %d,%v single %d,%v", it.Src, it.Dst, mw, mok, sw, sok)
		}
		truth, _ := exact.EdgeWeight(it.Src, it.Dst)
		if mw < truth {
			t.Fatalf("merged underestimates (%s,%s): %d < %d", it.Src, it.Dst, mw, truth)
		}
	}
	// Set queries survive the merge (registries union).
	nodes := exact.Nodes()
	if len(nodes) > 80 {
		nodes = nodes[:80]
	}
	for _, v := range nodes {
		got := map[string]bool{}
		for _, u := range w1.Successors(v) {
			got[u] = true
		}
		for _, u := range exact.Successors(v) {
			if !got[u] {
				t.Fatalf("merged sketch lost successor %s of %s", u, v)
			}
		}
	}
}

func TestMergeWithBufferedEdges(t *testing.T) {
	// Tiny matrices force both sides into their buffers; merging must
	// not lose anything.
	cfg := Config{Width: 3, FingerprintBits: 10, Rooms: 1, SeqLen: 2, Candidates: 2}
	a, b := MustNew(cfg), MustNew(cfg)
	for i := 0; i < 60; i++ {
		a.InsertEdge(stream.NodeID(i), stream.NodeID(i+100), 1)
		b.InsertEdge(stream.NodeID(i+200), stream.NodeID(i+300), 2)
	}
	if a.BufferSize() == 0 || b.BufferSize() == 0 {
		t.Fatal("test needs buffered edges on both sides")
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if w, ok := a.EdgeWeight(stream.NodeID(i), stream.NodeID(i+100)); !ok || w != 1 {
			t.Fatalf("own edge %d lost: %d,%v", i, w, ok)
		}
		if w, ok := a.EdgeWeight(stream.NodeID(i+200), stream.NodeID(i+300)); !ok || w != 2 {
			t.Fatalf("merged edge %d lost: %d,%v", i, w, ok)
		}
	}
}

func TestMergeOverlappingEdgesSumWeights(t *testing.T) {
	cfg := Config{Width: 16, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	a, b := MustNew(cfg), MustNew(cfg)
	a.InsertEdge("x", "y", 3)
	b.InsertEdge("x", "y", 4)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if w, _ := a.EdgeWeight("x", "y"); w != 7 {
		t.Fatalf("overlapping edge weight = %d, want 7", w)
	}
}

func TestMergeEmpty(t *testing.T) {
	cfg := Config{Width: 16}
	a, b := MustNew(cfg), MustNew(cfg)
	a.InsertEdge("p", "q", 5)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if w, _ := a.EdgeWeight("p", "q"); w != 5 {
		t.Fatalf("merge with empty changed weight: %d", w)
	}
	if err := b.Merge(a); err != nil {
		t.Fatal(err)
	}
	if w, _ := b.EdgeWeight("p", "q"); w != 5 {
		t.Fatalf("empty.Merge(a) lost edge: %d", w)
	}
}
