package gss

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/hashing"
	"repro/internal/stream"
)

func randomStream(n int, seed int64) []stream.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]stream.Item, n)
	for i := range items {
		items[i] = stream.Item{
			Src:    fmt.Sprintf("node-%d", rng.Intn(n/8+1)),
			Dst:    fmt.Sprintf("node-%d", rng.Intn(n/8+1)),
			Time:   int64(i),
			Weight: rng.Int63n(20) + 1,
			Label:  uint32(rng.Intn(3)),
		}
	}
	return items
}

// hashedQuerier is the query surface the plane-equivalence check needs,
// satisfied by GSS, Concurrent and Sharded alike.
type hashedQuerier interface {
	EdgeWeight(src, dst string) (int64, bool)
	Successors(v string) []string
	Precursors(v string) []string
	Nodes() []string
	Stats() Stats
}

// diffPlanes compares every observable of two sketches that ingested
// the same stream on different planes. The config must be oversized
// for the stream (no fingerprint collisions, no room overflow), so
// both planes answer exactly and must agree even though region packing
// may have parked edges in different candidate buckets.
func diffPlanes(t *testing.T, items []stream.Item, ref, hashed hashedQuerier) {
	t.Helper()
	if a, b := ref.Stats().Items, hashed.Stats().Items; a != b {
		t.Fatalf("item counts diverge: %d vs %d", a, b)
	}
	seen := map[[2]string]bool{}
	nodes := map[string]bool{}
	for _, it := range items {
		nodes[it.Src], nodes[it.Dst] = true, true
		k := [2]string{it.Src, it.Dst}
		if seen[k] {
			continue
		}
		seen[k] = true
		wa, oka := ref.EdgeWeight(it.Src, it.Dst)
		wb, okb := hashed.EdgeWeight(it.Src, it.Dst)
		if oka != okb || wa != wb {
			t.Fatalf("edge %v: string plane (%d,%v), hashed plane (%d,%v)", k, wa, oka, wb, okb)
		}
	}
	for v := range nodes {
		sa, sb := ref.Successors(v), hashed.Successors(v)
		sort.Strings(sa)
		sort.Strings(sb)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("successors(%s) diverge: %v vs %v", v, sa, sb)
		}
		pa, pb := ref.Precursors(v), hashed.Precursors(v)
		sort.Strings(pa)
		sort.Strings(pb)
		if !reflect.DeepEqual(pa, pb) {
			t.Fatalf("precursors(%s) diverge: %v vs %v", v, pa, pb)
		}
	}
	na, nb := ref.Nodes(), hashed.Nodes()
	sort.Strings(na)
	sort.Strings(nb)
	if !reflect.DeepEqual(na, nb) {
		t.Fatalf("node sets diverge: %d vs %d nodes", len(na), len(nb))
	}
}

// roomyConfig has no collisions and no buffer spill for the randomized
// streams below, so every answer is exact and the two ingest planes
// must agree observable-for-observable.
func roomyConfig() Config {
	return Config{Width: 128, FingerprintBits: 16, Rooms: 4, SeqLen: 8, Candidates: 8}
}

// TestInsertHashedBatchMatchesInsertBatch pins the binary ingest plane
// to the string plane on the plain GSS with randomized chunking on the
// hashed side.
func TestInsertHashedBatchMatchesInsertBatch(t *testing.T) {
	items := randomStream(4000, 99)
	ref := MustNew(roomyConfig())
	hashed := MustNew(roomyConfig())
	ref.InsertBatch(items)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < len(items); {
		j := i + 1 + rng.Intn(300)
		if j > len(items) {
			j = len(items)
		}
		hashed.InsertHashedBatch(stream.HashItems(items[i:j], nil))
		i = j
	}
	diffPlanes(t, items, ref, hashed)
}

// TestInsertHashedBatchUsesCarriedHashes is the no-re-hash assertion:
// a hashed item whose carried hashes belong to DIFFERENT identifiers
// must be placed (and register its strings) under the carried hashes.
// If any layer past the edge re-derived the hashes from Src/Dst, the
// edge would surface under ("x","y") instead.
func TestInsertHashedBatchUsesCarriedHashes(t *testing.T) {
	g := MustNew(smallConfig())
	hs, hd := hashing.Hash64("a"), hashing.Hash64("b")
	g.InsertHashedBatch([]stream.HashedItem{{
		Item: stream.Item{Src: "x", Dst: "y", Weight: 7},
		HSrc: hs, HDst: hd,
		FPs: stream.PackFingerprints(hs, hd),
	}})
	if w, ok := g.EdgeWeightHash(g.NodeHash("a"), g.NodeHash("b")); !ok || w != 7 {
		t.Fatalf("edge not found under the carried hashes: (%d, %v)", w, ok)
	}
	if _, ok := g.EdgeWeightHash(g.NodeHash("x"), g.NodeHash("y")); ok {
		t.Fatal("edge found under re-derived hashes: an insert layer re-hashed Src/Dst")
	}
	// The registry stored the strings under the carried hashes too.
	ids := g.AppendHashIDs(g.NodeHash("a"), nil)
	if !reflect.DeepEqual(ids, []string{"x"}) {
		t.Fatalf("registry under carried source hash = %v, want [x]", ids)
	}
}

// TestShardIndexHashedMatchesString pins the carried-hash shard router
// to the string one on random identifiers and shard counts — the
// invariant that keeps hashed inserts landing on the same shards as
// string inserts, snapshot compatibility included.
func TestShardIndexHashedMatchesString(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, shards := range []int{1, 2, 3, 7, 16} {
		s, err := NewSharded(smallConfig(), shards)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			src := fmt.Sprintf("s%d", rng.Intn(1000))
			dst := fmt.Sprintf("d%d", rng.Intn(1000))
			want := s.shardIndex(src, dst)
			got := s.shardIndexHashed(hashing.Hash64(src), hashing.Hash64(dst))
			if got != want {
				t.Fatalf("shards=%d (%s,%s): hashed route %d, string route %d",
					shards, src, dst, got, want)
			}
		}
	}
}

// TestShardedInsertHashedBatchMatchesInsertBatch runs the plane
// differential across the sharded wrapper: same shard routing, same
// per-shard answers.
func TestShardedInsertHashedBatchMatchesInsertBatch(t *testing.T) {
	items := randomStream(3000, 17)
	ref, err := NewSharded(roomyConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := NewSharded(roomyConfig(), 4)
	if err != nil {
		t.Fatal(err)
	}
	ref.InsertBatch(items)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < len(items); {
		j := i + 1 + rng.Intn(250)
		if j > len(items) {
			j = len(items)
		}
		hashed.InsertHashedBatch(stream.HashItems(items[i:j], nil))
		i = j
	}
	diffPlanes(t, items, ref, hashed)
}

// TestConcurrentInsertHashedBatch covers the locked wrapper's hashed
// entry point.
func TestConcurrentInsertHashedBatch(t *testing.T) {
	items := randomStream(1000, 41)
	ref, err := NewConcurrent(roomyConfig())
	if err != nil {
		t.Fatal(err)
	}
	hashed, err := NewConcurrent(roomyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref.InsertBatch(items)
	hashed.InsertHashedBatch(stream.HashItems(items, nil))
	diffPlanes(t, items, ref, hashed)
}

// TestRegionPackKeepsRegistryOrder: the registry records identifiers
// in arrival order even though hashed-batch matrix inserts are
// region-sorted, so collision listings stay deterministic across both
// planes. DisableNodeIndex-free tight config forces hash collisions so
// per-hash listing order is actually observable.
func TestRegionPackKeepsRegistryOrder(t *testing.T) {
	cfg := Config{Width: 16, FingerprintBits: 4, Rooms: 2, SeqLen: 4, Candidates: 4}
	items := randomStream(500, 3)
	a, b := MustNew(cfg), MustNew(cfg)
	a.InsertHashedBatch(stream.HashItems(items, nil))
	for _, it := range items {
		b.Insert(it)
	}
	// Per-hash listings must match the per-item reference exactly,
	// including order under collisions.
	hashes := b.AppendNodeHashes(nil)
	for _, hv := range hashes {
		got := a.AppendHashIDs(hv, nil)
		want := b.AppendHashIDs(hv, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("registry listing for hash %d diverged: %v vs %v", hv, got, want)
		}
	}
}
