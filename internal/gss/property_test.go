package gss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/adjlist"
	"repro/internal/stream"
)

// TestTheorem1NoCrossTalk verifies Theorem 1: the storage of the graph
// sketch inside GSS is exact — two sketch-graph edges have their weights
// merged iff they are the same sketch edge. We drive random streams and
// compare every sketch-edge weight against an exact recomputation on the
// hashed node space.
func TestTheorem1NoCrossTalk(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := MustNew(Config{Width: 8, FingerprintBits: 6, Rooms: 2, SeqLen: 4, Candidates: 4})
		// Exact weights per sketch edge (pair of hash values).
		want := map[[2]uint64]int64{}
		for i := 0; i < 400; i++ {
			src := stream.NodeID(rng.Intn(60))
			dst := stream.NodeID(rng.Intn(60))
			w := int64(rng.Intn(9) + 1)
			g.InsertEdge(src, dst, w)
			k := [2]uint64{g.nh.Hash(src), g.nh.Hash(dst)}
			want[k] += w
		}
		for k, w := range want {
			got, ok := g.edgeWeightHashed(k[0], k[1])
			if !ok || got != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchSuccessorsMatchHashedGraph verifies that the successor sets
// computed from the matrix+buffer equal the successor sets of the exact
// hashed graph Gh — i.e. the data structure introduces no error beyond
// the G -> Gh node mapping (the premise of the §VI-B analysis).
func TestSketchSuccessorsMatchHashedGraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := MustNew(Config{Width: 8, FingerprintBits: 6, Rooms: 1, SeqLen: 4, Candidates: 4})
		succ := map[uint64]map[uint64]bool{}
		prec := map[uint64]map[uint64]bool{}
		nodes := map[uint64]bool{}
		for i := 0; i < 300; i++ {
			src := stream.NodeID(rng.Intn(50))
			dst := stream.NodeID(rng.Intn(50))
			g.InsertEdge(src, dst, 1)
			hs, hd := g.nh.Hash(src), g.nh.Hash(dst)
			addSet(succ, hs, hd)
			addSet(prec, hd, hs)
			nodes[hs] = true
			nodes[hd] = true
		}
		for hv := range nodes {
			if !sameSet(g.SuccessorHashes(hv), succ[hv]) {
				return false
			}
			if !sameSet(g.PrecursorHashes(hv), prec[hv]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func addSet(m map[uint64]map[uint64]bool, k, v uint64) {
	s, ok := m[k]
	if !ok {
		s = map[uint64]bool{}
		m[k] = s
	}
	s[v] = true
}

func sameSet(got []uint64, want map[uint64]bool) bool {
	if len(got) != len(want) {
		return false
	}
	for _, h := range got {
		if !want[h] {
			return false
		}
	}
	return true
}

// TestOverEstimateOnly: with purely positive weights the estimate is
// always >= the truth and equality holds unless the edge collides.
func TestOverEstimateOnly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := MustNew(Config{Width: 16, FingerprintBits: 8, Rooms: 2, SeqLen: 4, Candidates: 4})
		exact := adjlist.New()
		for i := 0; i < 500; i++ {
			src := stream.NodeID(rng.Intn(80))
			dst := stream.NodeID(rng.Intn(80))
			w := int64(rng.Intn(20) + 1)
			g.InsertEdge(src, dst, w)
			exact.Insert(src, dst, w)
		}
		for _, v := range exact.Nodes() {
			for _, u := range exact.Successors(v) {
				want, _ := exact.EdgeWeight(v, u)
				got, ok := g.EdgeWeight(v, u)
				if !ok || got < want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestBufferAccounting: matrix entries plus buffered edges always equals
// the number of distinct sketch edges inserted.
func TestBufferAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := MustNew(Config{Width: 4, FingerprintBits: 8, Rooms: 1, SeqLen: 2, Candidates: 2})
		distinct := map[[2]uint64]bool{}
		for i := 0; i < 300; i++ {
			src := stream.NodeID(rng.Intn(64))
			dst := stream.NodeID(rng.Intn(64))
			g.InsertEdge(src, dst, 1)
			distinct[[2]uint64{g.nh.Hash(src), g.nh.Hash(dst)}] = true
		}
		s := g.Stats()
		return s.MatrixEdges+s.BufferEdges == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertionOrderInvariance: the final weights do not depend on the
// order items arrive in (addition commutes and slot assignment is
// stable under permutation only for weights, not placement — so we
// compare query results, not internal layout).
func TestInsertionOrderInvariance(t *testing.T) {
	items := stream.Generate(stream.CitHepPh().Scaled(0.001))
	build := func(perm []stream.Item) *GSS {
		g := MustNew(Config{Width: 32, FingerprintBits: 12, Rooms: 2, SeqLen: 4, Candidates: 4})
		for _, it := range perm {
			g.Insert(it)
		}
		return g
	}
	g1 := build(items)
	rev := make([]stream.Item, len(items))
	for i, it := range items {
		rev[len(items)-1-i] = it
	}
	g2 := build(rev)
	for _, it := range items {
		w1, ok1 := g1.EdgeWeight(it.Src, it.Dst)
		w2, ok2 := g2.EdgeWeight(it.Src, it.Dst)
		if ok1 != ok2 || w1 != w2 {
			t.Fatalf("order dependence on (%s,%s): %d,%v vs %d,%v", it.Src, it.Dst, w1, ok1, w2, ok2)
		}
	}
}

// TestDeleteToZeroStillFound: deleting an edge's full weight leaves a
// zero-weight entry (sketches cannot reclaim slots) but must not break
// other edges.
func TestDeleteToZeroStillFound(t *testing.T) {
	g := MustNew(smallConfig())
	g.InsertEdge("a", "b", 5)
	g.InsertEdge("c", "d", 9)
	g.InsertEdge("a", "b", -5)
	if w, ok := g.EdgeWeight("a", "b"); !ok || w != 0 {
		t.Fatalf("deleted edge: %d,%v want 0,true", w, ok)
	}
	if w, _ := g.EdgeWeight("c", "d"); w != 9 {
		t.Fatalf("unrelated edge disturbed: %d", w)
	}
}
