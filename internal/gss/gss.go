package gss

import (
	"math/bits"

	"repro/internal/hashing"
	"repro/internal/stream"
)

// GSS is a Graph Stream Sketch (Definition 5). It is not safe for
// concurrent use; wrap it in a mutex or shard streams by hash if
// parallel ingestion is needed.
type GSS struct {
	cfg Config
	nh  hashing.NodeHasher

	// Bucket matrix, struct-of-arrays per the bucket-separation layout
	// of §V-B2 (Fig. 7): index area, fingerprint area, weight area. Room
	// p of bucket (row, col) lives at slot (row*m+col)*l + p.
	idx     []uint8  // packed index pair: is<<4 | id
	fps     []uint32 // packed fingerprint pair: f(s)<<16 | f(d)
	weights []int64
	occ     []uint64 // occupancy bitset over room slots

	// colIdx is the per-column reverse index: colIdx[c] holds one entry
	// per occupied room in matrix column c, packed as
	// f(d)<<48 | id<<44 | H(s). The fingerprint plus destination
	// sequence index make the filter exact — f(d) and cols[id]==c
	// recover the destination hash by the same equation the matrix
	// decode uses — and the embedded source hash is the answer itself,
	// so a precursor query is a sequential scan of the r mapped
	// columns' lists that never touches the matrix: O(occupied rooms in
	// the mapped columns) instead of a full O(m*l) stride per column.
	// H(s) < 2^36 by the width cap, so one word holds everything. The
	// index is maintained on insert (rooms are never freed, so
	// append-only) and rebuilt from the matrix on Restore, which keeps
	// the snapshot format unchanged and old checkpoints loadable.
	colIdx [][]uint64

	buf     *buffer
	reg     *registry
	entries int   // occupied rooms in the matrix (distinct sketch edges there)
	items   int64 // stream items ingested

	// Scratch buffers so Insert and single-threaded queries do zero
	// allocations in steady state. Concurrent wrappers must NOT use
	// these from reader goroutines; they pass their own queryScratch
	// to the *With query variants instead.
	sc queryScratch
}

// queryScratch holds the per-call buffers a probe sequence needs: the
// two address sequences, the candidate sample, and a reusable hash
// accumulator for the set primitives. Readers that share a sketch under
// a read lock each bring their own scratch so queries stay
// allocation-free without racing on shared buffers.
type queryScratch struct {
	rowSeq, colSeq, sample []uint32
	hashes                 []uint64 // set-primitive accumulator, reused across calls
}

func newQueryScratch(cfg Config) queryScratch {
	return queryScratch{
		rowSeq: make([]uint32, cfg.SeqLen),
		colSeq: make([]uint32, cfg.SeqLen),
		sample: make([]uint32, cfg.Candidates),
	}
}

// New builds an empty GSS for cfg.
func New(cfg Config) (*GSS, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	slots := cfg.Width * cfg.Width * cfg.Rooms
	g := &GSS{
		cfg:     cfg,
		nh:      hashing.NewNodeHasher(cfg.Width, cfg.FingerprintBits),
		idx:     make([]uint8, slots),
		fps:     make([]uint32, slots),
		weights: make([]int64, slots),
		occ:     make([]uint64, (slots+63)/64),
		colIdx:  make([][]uint64, cfg.Width),
		buf:     newBuffer(),
		sc:      newQueryScratch(cfg),
	}
	if !cfg.DisableNodeIndex {
		g.reg = newRegistry()
	}
	return g, nil
}

// MustNew is New for configurations known valid at compile time; it
// panics on error.
func MustNew(cfg Config) *GSS {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the normalized configuration the sketch runs with.
func (g *GSS) Config() Config { return g.cfg }

func (g *GSS) occupied(slot int) bool { return g.occ[slot>>6]&(1<<(uint(slot)&63)) != 0 }
func (g *GSS) setOccupied(slot int)   { g.occ[slot>>6] |= 1 << (uint(slot) & 63) }

// colIdxEntry packs one reverse-index entry: destination fingerprint,
// destination sequence index, and the stored edge's source hash.
func colIdxEntry(fpD uint32, id int, hvS uint64) uint64 {
	return uint64(fpD)<<48 | uint64(id)<<44 | hvS
}

// rebuildColumnIndex derives the reverse column index from the
// occupancy bitset and matrix areas. Restore uses it so the snapshot
// format stays index-free and checkpoints written before the index
// existed load unchanged. A slot's contents fully determine its index
// entry (the source hash decodes via square-hash reversibility), so the
// rebuilt index answers identically to one maintained online.
func (g *GSS) rebuildColumnIndex() {
	m, l := g.cfg.Width, g.cfg.Rooms
	g.colIdx = make([][]uint64, m)
	for w, word := range g.occ {
		for word != 0 {
			slot := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if slot >= len(g.idx) { // trailing bits past the matrix
				break
			}
			bucket := slot / l
			row, col := bucket/m, bucket%m
			hs, _ := g.decodeSlot(slot, uint32(row), uint32(col))
			g.colIdx[col] = append(g.colIdx[col],
				colIdxEntry(g.fps[slot]&0xffff, int(g.idx[slot]&0x0f), hs))
		}
	}
}

// reverseIndexBytes is the payload footprint of the reverse column
// index: one packed uint64 per occupied room.
func (g *GSS) reverseIndexBytes() int64 {
	var n int64
	for _, list := range g.colIdx {
		n += int64(len(list)) * 8
	}
	return n
}

// Insert ingests one stream item: the edge is mapped into the graph
// sketch and stored per the augmented edge-updating procedure of §V.
// This is the primary ingestion entry point and receives the item
// whole — the plain GSS summarizes the entire stream, so Time and
// Label do not affect placement here, but wrappers that route by them
// (the sliding-window backend, future labeled sketches) rely on every
// layer forwarding the full item rather than just (src, dst, weight).
func (g *GSS) Insert(it stream.Item) {
	hs := g.nh.Hash(it.Src)
	hd := g.nh.Hash(it.Dst)
	if g.reg != nil {
		g.reg.add(hs, it.Src)
		g.reg.add(hd, it.Dst)
	}
	g.insertHashed(hs, hd, it.Weight)
}

// InsertBatch ingests a slice of stream items. On the plain GSS this is
// a straight loop; synchronized wrappers override it to amortize lock
// acquisitions over the whole batch.
func (g *GSS) InsertBatch(items []stream.Item) {
	for _, it := range items {
		g.Insert(it)
	}
}

// InsertEdge adds w to edge (src,dst) of the streaming graph. It is
// the explicit untimed entry point: callers that have no timestamp
// (ablation drivers, merge tooling) use it deliberately, everything on
// the stream path goes through Insert so the item survives whole.
func (g *GSS) InsertEdge(src, dst string, w int64) {
	g.Insert(stream.Item{Src: src, Dst: dst, Weight: w})
}

// insertHashed inserts the sketch-graph edge H(s) -> H(d).
func (g *GSS) insertHashed(hvS, hvD uint64, w int64) {
	g.items++
	addrS, fpS := g.nh.Split(hvS)
	addrD, fpD := g.nh.Split(hvD)
	m := g.cfg.Width
	rows := hashing.AddressSequence(addrS, fpS, m, g.sc.rowSeq)
	cols := hashing.AddressSequence(addrD, fpD, m, g.sc.colSeq)
	fpPair := fpS<<16 | fpD

	tryBucket := func(i, j int) bool {
		idxPair := uint8(i)<<4 | uint8(j)
		base := (int(rows[i])*m + int(cols[j])) * g.cfg.Rooms
		for p := 0; p < g.cfg.Rooms; p++ {
			slot := base + p
			if !g.occupied(slot) {
				g.setOccupied(slot)
				g.idx[slot] = idxPair
				g.fps[slot] = fpPair
				g.weights[slot] = w
				g.entries++
				col := cols[j]
				g.colIdx[col] = append(g.colIdx[col], colIdxEntry(fpD, j, hvS))
				return true
			}
			// Bucket separation: the cheap index-pair comparison gates
			// the fingerprint comparison (§V-B2).
			if g.idx[slot] == idxPair && g.fps[slot] == fpPair {
				g.weights[slot] += w
				return true
			}
		}
		return false
	}

	if g.probeCandidates(fpS, fpD, g.sc.sample, tryBucket) {
		return
	}
	// All candidate buckets occupied by other edges: left-over edge.
	g.buf.add(hvS, hvD, w)
}

// probeCandidates invokes visit over the candidate bucket sequence of
// this edge — either the k sampled pairs of Eq. 5 or all r*r mapped
// buckets in row-major order — stopping early when visit returns true.
// The order is a pure function of the fingerprint pair, which keeps
// repeat insertions of the same edge finding the same slot. The sample
// slice is caller-provided scratch of length cfg.Candidates.
func (g *GSS) probeCandidates(fpS, fpD uint32, sample []uint32, visit func(i, j int) bool) bool {
	r := g.cfg.SeqLen
	if g.cfg.DisableSampling || r == 1 {
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if visit(i, j) {
					return true
				}
			}
		}
		return false
	}
	seed := fpS + fpD // seed(e) = f(s) + f(d), §V-B1
	hashing.SampleSequence(seed, sample)
	for _, q := range sample {
		i, j := hashing.CandidatePair(q, r)
		if visit(i, j) {
			return true
		}
	}
	return false
}
