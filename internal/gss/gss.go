package gss

import (
	"repro/internal/hashing"
	"repro/internal/stream"
)

// GSS is a Graph Stream Sketch (Definition 5). It is not safe for
// concurrent use; wrap it in a mutex or shard streams by hash if
// parallel ingestion is needed.
type GSS struct {
	cfg Config
	nh  hashing.NodeHasher

	// Bucket matrix, struct-of-arrays per the bucket-separation layout
	// of §V-B2 (Fig. 7): index area, fingerprint area, weight area. Room
	// p of bucket (row, col) lives at slot (row*m+col)*l + p.
	idx     []uint8  // packed index pair: is<<4 | id
	fps     []uint32 // packed fingerprint pair: f(s)<<16 | f(d)
	weights []int64
	occ     []uint64 // occupancy bitset over room slots

	buf     *buffer
	reg     *registry
	entries int   // occupied rooms in the matrix (distinct sketch edges there)
	items   int64 // stream items ingested

	// Scratch buffers so Insert and single-threaded queries do zero
	// allocations in steady state. Concurrent wrappers must NOT use
	// these from reader goroutines; they pass their own queryScratch
	// to the *With query variants instead.
	sc queryScratch
}

// queryScratch holds the per-call buffers a probe sequence needs: the
// two address sequences and the candidate sample. Readers that share a
// sketch under a read lock each bring their own scratch so queries
// stay allocation-free without racing on shared buffers.
type queryScratch struct {
	rowSeq, colSeq, sample []uint32
}

func newQueryScratch(cfg Config) queryScratch {
	return queryScratch{
		rowSeq: make([]uint32, cfg.SeqLen),
		colSeq: make([]uint32, cfg.SeqLen),
		sample: make([]uint32, cfg.Candidates),
	}
}

// New builds an empty GSS for cfg.
func New(cfg Config) (*GSS, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	slots := cfg.Width * cfg.Width * cfg.Rooms
	g := &GSS{
		cfg:     cfg,
		nh:      hashing.NewNodeHasher(cfg.Width, cfg.FingerprintBits),
		idx:     make([]uint8, slots),
		fps:     make([]uint32, slots),
		weights: make([]int64, slots),
		occ:     make([]uint64, (slots+63)/64),
		buf:     newBuffer(),
		sc:      newQueryScratch(cfg),
	}
	if !cfg.DisableNodeIndex {
		g.reg = newRegistry()
	}
	return g, nil
}

// MustNew is New for configurations known valid at compile time; it
// panics on error.
func MustNew(cfg Config) *GSS {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the normalized configuration the sketch runs with.
func (g *GSS) Config() Config { return g.cfg }

func (g *GSS) occupied(slot int) bool { return g.occ[slot>>6]&(1<<(uint(slot)&63)) != 0 }
func (g *GSS) setOccupied(slot int)   { g.occ[slot>>6] |= 1 << (uint(slot) & 63) }

// Insert ingests one stream item: the edge is mapped into the graph
// sketch and stored per the augmented edge-updating procedure of §V.
// This is the primary ingestion entry point and receives the item
// whole — the plain GSS summarizes the entire stream, so Time and
// Label do not affect placement here, but wrappers that route by them
// (the sliding-window backend, future labeled sketches) rely on every
// layer forwarding the full item rather than just (src, dst, weight).
func (g *GSS) Insert(it stream.Item) {
	hs := g.nh.Hash(it.Src)
	hd := g.nh.Hash(it.Dst)
	if g.reg != nil {
		g.reg.add(hs, it.Src)
		g.reg.add(hd, it.Dst)
	}
	g.insertHashed(hs, hd, it.Weight)
}

// InsertBatch ingests a slice of stream items. On the plain GSS this is
// a straight loop; synchronized wrappers override it to amortize lock
// acquisitions over the whole batch.
func (g *GSS) InsertBatch(items []stream.Item) {
	for _, it := range items {
		g.Insert(it)
	}
}

// InsertEdge adds w to edge (src,dst) of the streaming graph. It is
// the explicit untimed entry point: callers that have no timestamp
// (ablation drivers, merge tooling) use it deliberately, everything on
// the stream path goes through Insert so the item survives whole.
func (g *GSS) InsertEdge(src, dst string, w int64) {
	g.Insert(stream.Item{Src: src, Dst: dst, Weight: w})
}

// insertHashed inserts the sketch-graph edge H(s) -> H(d).
func (g *GSS) insertHashed(hvS, hvD uint64, w int64) {
	g.items++
	addrS, fpS := g.nh.Split(hvS)
	addrD, fpD := g.nh.Split(hvD)
	m := g.cfg.Width
	rows := hashing.AddressSequence(addrS, fpS, m, g.sc.rowSeq)
	cols := hashing.AddressSequence(addrD, fpD, m, g.sc.colSeq)
	fpPair := fpS<<16 | fpD

	tryBucket := func(i, j int) bool {
		idxPair := uint8(i)<<4 | uint8(j)
		base := (int(rows[i])*m + int(cols[j])) * g.cfg.Rooms
		for p := 0; p < g.cfg.Rooms; p++ {
			slot := base + p
			if !g.occupied(slot) {
				g.setOccupied(slot)
				g.idx[slot] = idxPair
				g.fps[slot] = fpPair
				g.weights[slot] = w
				g.entries++
				return true
			}
			// Bucket separation: the cheap index-pair comparison gates
			// the fingerprint comparison (§V-B2).
			if g.idx[slot] == idxPair && g.fps[slot] == fpPair {
				g.weights[slot] += w
				return true
			}
		}
		return false
	}

	if g.probeCandidates(fpS, fpD, g.sc.sample, tryBucket) {
		return
	}
	// All candidate buckets occupied by other edges: left-over edge.
	g.buf.add(hvS, hvD, w)
}

// probeCandidates invokes visit over the candidate bucket sequence of
// this edge — either the k sampled pairs of Eq. 5 or all r*r mapped
// buckets in row-major order — stopping early when visit returns true.
// The order is a pure function of the fingerprint pair, which keeps
// repeat insertions of the same edge finding the same slot. The sample
// slice is caller-provided scratch of length cfg.Candidates.
func (g *GSS) probeCandidates(fpS, fpD uint32, sample []uint32, visit func(i, j int) bool) bool {
	r := g.cfg.SeqLen
	if g.cfg.DisableSampling || r == 1 {
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if visit(i, j) {
					return true
				}
			}
		}
		return false
	}
	seed := fpS + fpD // seed(e) = f(s) + f(d), §V-B1
	hashing.SampleSequence(seed, sample)
	for _, q := range sample {
		i, j := hashing.CandidatePair(q, r)
		if visit(i, j) {
			return true
		}
	}
	return false
}
