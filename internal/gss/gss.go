package gss

import (
	"math/bits"
	"sort"

	"repro/internal/hashing"
	"repro/internal/stream"
)

// GSS is a Graph Stream Sketch (Definition 5). It is not safe for
// concurrent use; wrap it in a mutex or shard streams by hash if
// parallel ingestion is needed.
type GSS struct {
	cfg Config
	nh  hashing.NodeHasher

	// Bucket matrix, struct-of-arrays per the bucket-separation layout
	// of §V-B2 (Fig. 7): index area, fingerprint area, weight area. Room
	// p of bucket (row, col) lives at slot (row*m+col)*l + p.
	idx     []uint8  // packed index pair: is<<4 | id
	fps     []uint32 // packed fingerprint pair: f(s)<<16 | f(d)
	weights []int64
	occ     []uint64 // occupancy bitset over room slots

	// colIdx is the per-column reverse index: colIdx[c] holds one entry
	// per occupied room in matrix column c, packed as
	// f(d)<<48 | id<<44 | H(s). The fingerprint plus destination
	// sequence index make the filter exact — f(d) and cols[id]==c
	// recover the destination hash by the same equation the matrix
	// decode uses — and the embedded source hash is the answer itself,
	// so a precursor query is a sequential scan of the r mapped
	// columns' lists that never touches the matrix: O(occupied rooms in
	// the mapped columns) instead of a full O(m*l) stride per column.
	// H(s) < 2^36 by the width cap, so one word holds everything. The
	// index is maintained on insert (rooms are never freed, so
	// append-only) and rebuilt from the matrix on Restore, which keeps
	// the snapshot format unchanged and old checkpoints loadable.
	colIdx [][]uint64

	buf     *buffer
	reg     *registry
	entries int   // occupied rooms in the matrix (distinct sketch edges there)
	items   int64 // stream items ingested

	// Scratch buffers so Insert and single-threaded queries do zero
	// allocations in steady state. Concurrent wrappers must NOT use
	// these from reader goroutines; they pass their own queryScratch
	// to the *With query variants instead.
	sc queryScratch

	// Batch-insert scratch: the hashed copy InsertBatch builds (so the
	// string path hashes each identifier exactly once) and the region
	// keys the batch sort orders by. Guarded by whatever serializes
	// inserts (the wrappers' locks; the plain GSS is single-threaded).
	hbatch []stream.HashedItem
	hkeys  []uint64
}

// queryScratch holds the per-call buffers a probe sequence needs: the
// two address sequences, the candidate sample, and a reusable hash
// accumulator for the set primitives. Readers that share a sketch under
// a read lock each bring their own scratch so queries stay
// allocation-free without racing on shared buffers.
type queryScratch struct {
	rowSeq, colSeq, sample []uint32
	hashes                 []uint64 // set-primitive accumulator, reused across calls
}

func newQueryScratch(cfg Config) queryScratch {
	return queryScratch{
		rowSeq: make([]uint32, cfg.SeqLen),
		colSeq: make([]uint32, cfg.SeqLen),
		sample: make([]uint32, cfg.Candidates),
	}
}

// New builds an empty GSS for cfg.
func New(cfg Config) (*GSS, error) {
	cfg, err := cfg.normalized()
	if err != nil {
		return nil, err
	}
	slots := cfg.Width * cfg.Width * cfg.Rooms
	g := &GSS{
		cfg:     cfg,
		nh:      hashing.NewNodeHasher(cfg.Width, cfg.FingerprintBits),
		idx:     make([]uint8, slots),
		fps:     make([]uint32, slots),
		weights: make([]int64, slots),
		occ:     make([]uint64, (slots+63)/64),
		colIdx:  make([][]uint64, cfg.Width),
		buf:     newBuffer(),
		sc:      newQueryScratch(cfg),
	}
	if !cfg.DisableNodeIndex {
		g.reg = newRegistry()
	}
	return g, nil
}

// MustNew is New for configurations known valid at compile time; it
// panics on error.
func MustNew(cfg Config) *GSS {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Config returns the normalized configuration the sketch runs with.
func (g *GSS) Config() Config { return g.cfg }

func (g *GSS) occupied(slot int) bool { return g.occ[slot>>6]&(1<<(uint(slot)&63)) != 0 }
func (g *GSS) setOccupied(slot int)   { g.occ[slot>>6] |= 1 << (uint(slot) & 63) }

// colIdxEntry packs one reverse-index entry: destination fingerprint,
// destination sequence index, and the stored edge's source hash.
func colIdxEntry(fpD uint32, id int, hvS uint64) uint64 {
	return uint64(fpD)<<48 | uint64(id)<<44 | hvS
}

// rebuildColumnIndex derives the reverse column index from the
// occupancy bitset and matrix areas. Restore uses it so the snapshot
// format stays index-free and checkpoints written before the index
// existed load unchanged. A slot's contents fully determine its index
// entry (the source hash decodes via square-hash reversibility), so the
// rebuilt index answers identically to one maintained online.
func (g *GSS) rebuildColumnIndex() {
	m, l := g.cfg.Width, g.cfg.Rooms
	g.colIdx = make([][]uint64, m)
	for w, word := range g.occ {
		for word != 0 {
			slot := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if slot >= len(g.idx) { // trailing bits past the matrix
				break
			}
			bucket := slot / l
			row, col := bucket/m, bucket%m
			hs, _ := g.decodeSlot(slot, uint32(row), uint32(col))
			g.colIdx[col] = append(g.colIdx[col],
				colIdxEntry(g.fps[slot]&0xffff, int(g.idx[slot]&0x0f), hs))
		}
	}
}

// reverseIndexBytes is the payload footprint of the reverse column
// index: one packed uint64 per occupied room.
func (g *GSS) reverseIndexBytes() int64 {
	var n int64
	for _, list := range g.colIdx {
		n += int64(len(list)) * 8
	}
	return n
}

// Insert ingests one stream item: the edge is mapped into the graph
// sketch and stored per the augmented edge-updating procedure of §V.
// This is the primary ingestion entry point and receives the item
// whole — the plain GSS summarizes the entire stream, so Time and
// Label do not affect placement here, but wrappers that route by them
// (the sliding-window backend, future labeled sketches) rely on every
// layer forwarding the full item rather than just (src, dst, weight).
func (g *GSS) Insert(it stream.Item) {
	hs := g.nh.Hash(it.Src)
	hd := g.nh.Hash(it.Dst)
	if g.reg != nil {
		g.reg.add(hs, it.Src)
		g.reg.add(hd, it.Dst)
	}
	g.insertHashed(hs, hd, it.Weight)
}

// InsertBatch ingests a slice of stream items. Each identifier is
// hashed exactly once, into a scratch copy of the batch, and the copy
// runs through the same hashed-batch core the binary ingest plane uses
// — the carried-hash math is one code path for both planes. The string
// plane inserts in arrival order, never region-packed: it is the
// reference plane, and its sketch state must stay a pure function of
// the item sequence regardless of how callers batch it (log replay
// after a crash re-batches at different boundaries and must reproduce
// the pre-crash sketch exactly).
func (g *GSS) InsertBatch(items []stream.Item) {
	if len(items) == 0 {
		return
	}
	g.hbatch = stream.HashItems(items, g.hbatch[:0])
	g.insertHashedBatch(g.hbatch, false)
}

// InsertHashedBatch ingests a pre-hashed batch: the carried hashes are
// reduced into this sketch's node space with one modulo each, and the
// identifier strings are only stored in the node registry — nothing on
// this path re-hashes Src or Dst. The batch is region-packed and may
// be reordered in place (see insertHashedBatch); room placement can
// therefore differ from what arrival-order inserts of the same items
// would produce — a different, equally valid summary of the same
// stream, identical wherever the sketch answers exactly.
func (g *GSS) InsertHashedBatch(items []stream.HashedItem) {
	g.insertHashedBatch(items, true)
}

// insertHashedBatch is the one batch-insert core. The registry sees
// the items in arrival order (listing order under hash collisions is
// observable); with pack set, the batch is then sorted by matrix
// region so room probes walk the bucket matrix mostly sequentially —
// the packing discipline the PR 4 query engine applied to reads,
// applied to writes. Reordering is sound: edge weights are commutative
// sums, and every candidate bucket of an edge stays a pure function of
// its hashes, so queries find the edge wherever the probe order parked
// it.
func (g *GSS) insertHashedBatch(items []stream.HashedItem, pack bool) {
	M := g.nh.M()
	if g.reg != nil {
		for i := range items {
			g.reg.add(items[i].HSrc%M, items[i].Src)
			g.reg.add(items[i].HDst%M, items[i].Dst)
		}
	}
	if pack {
		g.sortByRegion(items)
	}
	for i := range items {
		g.insertHashed(items[i].HSrc%M, items[i].HDst%M, items[i].Weight)
	}
}

// sortByRegion orders a batch by (source address, destination address,
// sampling seed): inserts touching the same bucket region become
// adjacent — repeat edges hit a warm slot, distinct edges in one
// region share cache lines — and the key is a pure function of the
// hashes, so both ingest planes order identically.
func (g *GSS) sortByRegion(items []stream.HashedItem) {
	if len(items) < 2 {
		return
	}
	M, F := g.nh.M(), g.nh.FSize
	keys := g.hkeys[:0]
	for i := range items {
		hvS, hvD := items[i].HSrc%M, items[i].HDst%M
		addrS, fpS := uint64(hvS/F), uint32(hvS%F)
		addrD, fpD := uint64(hvD/F), uint32(hvD%F)
		// addr < width <= 2^20, and the seed f(s)+f(d) < 2^17, so the
		// key packs into one word: addrS | addrD | seed.
		keys = append(keys, addrS<<44|addrD<<24|uint64(fpS+fpD))
	}
	g.hkeys = keys
	sort.Sort(&regionSort{keys: keys, items: items})
}

// regionSort co-sorts the key and item slices of one batch.
type regionSort struct {
	keys  []uint64
	items []stream.HashedItem
}

func (s *regionSort) Len() int           { return len(s.keys) }
func (s *regionSort) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *regionSort) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.items[i], s.items[j] = s.items[j], s.items[i]
}

// InsertEdge adds w to edge (src,dst) of the streaming graph. It is
// the explicit untimed entry point: callers that have no timestamp
// (ablation drivers, merge tooling) use it deliberately, everything on
// the stream path goes through Insert so the item survives whole.
func (g *GSS) InsertEdge(src, dst string, w int64) {
	g.Insert(stream.Item{Src: src, Dst: dst, Weight: w})
}

// insertHashed inserts the sketch-graph edge H(s) -> H(d).
func (g *GSS) insertHashed(hvS, hvD uint64, w int64) {
	g.items++
	addrS, fpS := g.nh.Split(hvS)
	addrD, fpD := g.nh.Split(hvD)
	m := g.cfg.Width
	rows := hashing.AddressSequence(addrS, fpS, m, g.sc.rowSeq)
	cols := hashing.AddressSequence(addrD, fpD, m, g.sc.colSeq)
	fpPair := fpS<<16 | fpD

	tryBucket := func(i, j int) bool {
		idxPair := uint8(i)<<4 | uint8(j)
		base := (int(rows[i])*m + int(cols[j])) * g.cfg.Rooms
		for p := 0; p < g.cfg.Rooms; p++ {
			slot := base + p
			if !g.occupied(slot) {
				g.setOccupied(slot)
				g.idx[slot] = idxPair
				g.fps[slot] = fpPair
				g.weights[slot] = w
				g.entries++
				col := cols[j]
				g.colIdx[col] = append(g.colIdx[col], colIdxEntry(fpD, j, hvS))
				return true
			}
			// Bucket separation: the cheap index-pair comparison gates
			// the fingerprint comparison (§V-B2).
			if g.idx[slot] == idxPair && g.fps[slot] == fpPair {
				g.weights[slot] += w
				return true
			}
		}
		return false
	}

	if g.probeCandidates(fpS, fpD, g.sc.sample, tryBucket) {
		return
	}
	// All candidate buckets occupied by other edges: left-over edge.
	g.buf.add(hvS, hvD, w)
}

// probeCandidates invokes visit over the candidate bucket sequence of
// this edge — either the k sampled pairs of Eq. 5 or all r*r mapped
// buckets in row-major order — stopping early when visit returns true.
// The order is a pure function of the fingerprint pair, which keeps
// repeat insertions of the same edge finding the same slot. The sample
// slice is caller-provided scratch of length cfg.Candidates.
func (g *GSS) probeCandidates(fpS, fpD uint32, sample []uint32, visit func(i, j int) bool) bool {
	r := g.cfg.SeqLen
	if g.cfg.DisableSampling || r == 1 {
		for i := 0; i < r; i++ {
			for j := 0; j < r; j++ {
				if visit(i, j) {
					return true
				}
			}
		}
		return false
	}
	seed := fpS + fpD // seed(e) = f(s) + f(d), §V-B1
	hashing.SampleSequence(seed, sample)
	for _, q := range sample {
		i, j := hashing.CandidatePair(q, r)
		if visit(i, j) {
			return true
		}
	}
	return false
}
