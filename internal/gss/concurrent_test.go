package gss

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/stream"
)

func TestConcurrentValidation(t *testing.T) {
	if _, err := NewConcurrent(Config{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestConcurrentMatchesSerial(t *testing.T) {
	items := stream.Generate(stream.CitHepPh().Scaled(0.002))
	cfg := Config{Width: 48, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	serial := MustNew(cfg)
	conc, err := NewConcurrent(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		serial.Insert(it)
		conc.Insert(it)
	}
	for _, it := range items[:500] {
		w1, ok1 := serial.EdgeWeight(it.Src, it.Dst)
		w2, ok2 := conc.EdgeWeight(it.Src, it.Dst)
		if w1 != w2 || ok1 != ok2 {
			t.Fatalf("divergence on (%s,%s)", it.Src, it.Dst)
		}
	}
	if conc.Stats() != serial.Stats() {
		t.Fatalf("stats diverge: %+v vs %+v", conc.Stats(), serial.Stats())
	}
}

// TestConcurrentRace drives parallel writers and readers; `go test
// -race` validates the locking discipline.
func TestConcurrentRace(t *testing.T) {
	conc, err := NewConcurrent(Config{Width: 32, SeqLen: 4, Candidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	items := stream.Generate(stream.EmailEuAll().Scaled(0.001))
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for _, it := range items {
			conc.Insert(it)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < len(items); i += 5 {
			conc.EdgeWeight(items[i].Src, items[i].Dst)
			conc.Successors(items[i].Src)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < len(items); i += 7 {
			conc.Precursors(items[i].Dst)
			conc.Stats()
			conc.Nodes()
		}
	}()
	wg.Wait()
	// After all writers finish, every edge must be present.
	missing := 0
	for _, it := range items {
		if _, ok := conc.EdgeWeight(it.Src, it.Dst); !ok {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d edges lost under concurrency", missing)
	}
}

func TestConcurrentParallelReaders(t *testing.T) {
	conc, err := NewConcurrent(Config{Width: 32, SeqLen: 4, Candidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	conc.InsertEdge("a", "b", 5)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if w, ok := conc.EdgeWeight("a", "b"); !ok || w != 5 {
					panic("reader saw wrong value")
				}
				conc.Successors("a")
			}
		}()
	}
	wg.Wait()
}

// TestConcurrentReaderHammer drives many query goroutines against one
// batch writer. Under `go test -race` this validates that readers use
// per-call scratch (not the sketch's own probe buffers, and not a
// whole-struct copy) while the writer mutates the matrix.
func TestConcurrentReaderHammer(t *testing.T) {
	conc, err := NewConcurrent(Config{Width: 48, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	items := stream.Generate(stream.EmailEuAll().Scaled(0.001))
	// Pre-load half so readers have data from the start.
	conc.InsertBatch(items[:len(items)/2])

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // one batch writer
		defer wg.Done()
		rest := items[len(items)/2:]
		for off := 0; off < len(rest); off += 50 {
			end := off + 50
			if end > len(rest) {
				end = len(rest)
			}
			conc.InsertBatch(rest[off:end])
		}
		close(done)
	}()
	const readers = 8
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			for {
				select {
				case <-done:
					return
				default:
				}
				it := items[i%len(items)]
				conc.EdgeWeight(it.Src, it.Dst)
				conc.Successors(it.Src)
				conc.Precursors(it.Dst)
				i += readers
			}
		}(r)
	}
	wg.Wait()

	if got := conc.Stats().Items; got != int64(len(items)) {
		t.Fatalf("items = %d, want %d", got, len(items))
	}
	for _, it := range items {
		if _, ok := conc.EdgeWeight(it.Src, it.Dst); !ok {
			t.Fatalf("edge (%s,%s) lost", it.Src, it.Dst)
		}
	}
}

func TestConcurrentSnapshotRestore(t *testing.T) {
	conc, err := NewConcurrent(Config{Width: 32, SeqLen: 4, Candidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	conc.InsertEdge("a", "b", 7)
	var buf bytes.Buffer
	if err := conc.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	conc2, err := NewConcurrent(Config{Width: 32, SeqLen: 4, Candidates: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := conc2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if w, ok := conc2.EdgeWeight("a", "b"); !ok || w != 7 {
		t.Fatalf("restored edge = %d,%v", w, ok)
	}
	if err := conc2.Restore(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage restore accepted")
	}
	if w, ok := conc2.EdgeWeight("a", "b"); !ok || w != 7 {
		t.Fatalf("state clobbered by failed restore: %d,%v", w, ok)
	}
}
