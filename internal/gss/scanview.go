package gss

import "repro/internal/stream"

// ScanView is the sketch's query surface wired to the retained pre-index
// scan implementations (SuccessorHashesScan / PrecursorHashesScan): a
// full-stride matrix walk with per-call map deduplication and hash-set
// sorting, exactly the shape the query stack had before the reverse
// column index and the occupancy-word row walk existed. It deliberately
// does not implement the hash-native plane, so compound algorithms run
// their string-based reference paths over it.
//
// Differential tests pin the accelerated primitives to it, and
// gss-bench -mode query quotes it as the before-side of every speedup.
// It reads through to the same sketch, so both sides answer from
// identical state.
type ScanView struct{ G *GSS }

// Insert ingests one stream item (query.Summary).
func (s ScanView) Insert(it stream.Item) { s.G.Insert(it) }

// EdgeWeight is the edge query primitive (unchanged by the index).
func (s ScanView) EdgeWeight(src, dst string) (int64, bool) { return s.G.EdgeWeight(src, dst) }

// Successors answers via the pre-index strided row scan.
func (s ScanView) Successors(v string) []string {
	return s.G.expand(s.G.SuccessorHashesScan(s.G.nh.Hash(v)))
}

// Precursors answers via the pre-index full-matrix column scan.
func (s ScanView) Precursors(v string) []string {
	return s.G.expand(s.G.PrecursorHashesScan(s.G.nh.Hash(v)))
}

// Nodes enumerates registered identifiers.
func (s ScanView) Nodes() []string { return s.G.Nodes() }
