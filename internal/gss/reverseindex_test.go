package gss

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stream"
)

// Differential battery for the accelerated set primitives: the reverse
// column index walk and the occupancy-word row walk must answer
// exactly like the retained pre-index scans on every configuration,
// including after the paths that rebuild or merge the index.

func sortedHashes(hs []uint64) []uint64 {
	out := append([]uint64{}, hs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func diffSets(t *testing.T, label string, got, want []uint64) {
	t.Helper()
	g, w := sortedHashes(got), sortedHashes(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d hashes, scan reference has %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: sets diverge at %d: %d vs %d", label, i, g[i], w[i])
		}
	}
	// The indexed paths promise duplicate-free results without a map.
	for i := 1; i < len(g); i++ {
		if g[i] == g[i-1] {
			t.Fatalf("%s: duplicate hash %d in indexed result", label, g[i])
		}
	}
}

// checkAgainstScan diffs both set primitives against their scan
// references for every node the stream touched, plus probes that were
// never inserted.
func checkAgainstScan(t *testing.T, label string, g *GSS, items []stream.Item) {
	t.Helper()
	nodes := map[string]bool{}
	for _, it := range items {
		nodes[it.Src], nodes[it.Dst] = true, true
	}
	for i := 0; i < 7; i++ {
		nodes[fmt.Sprintf("never-inserted-%d", i)] = true
	}
	for v := range nodes {
		hv := g.NodeHash(v)
		diffSets(t, label+": successors of "+v,
			g.AppendSuccessorHashes(hv, nil), g.SuccessorHashesScan(hv))
		diffSets(t, label+": precursors of "+v,
			g.AppendPrecursorHashes(hv, nil), g.PrecursorHashesScan(hv))
	}
}

func reverseIndexConfigs() map[string]Config {
	return map[string]Config{
		"default":      {Width: 48},
		"tiny-matrix":  {Width: 8}, // heavy collisions, buffer spill
		"one-room":     {Width: 32, Rooms: 1},
		"no-sampling":  {Width: 32, DisableSampling: true, SeqLen: 4},
		"basic-sketch": {Width: 32, DisableSquareHash: true},
		"short-seq":    {Width: 32, SeqLen: 3, Candidates: 5},
	}
}

func reverseIndexStream(n int, seed int64) []stream.Item {
	return stream.Generate(stream.DatasetConfig{Name: "revidx", Nodes: 120, Edges: n,
		DegreeSkew: 1.4, WeightSkew: 1.3, MaxWeight: 50, Seed: seed})
}

func TestReverseIndexMatchesScan(t *testing.T) {
	for name, cfg := range reverseIndexConfigs() {
		t.Run(name, func(t *testing.T) {
			g := MustNew(cfg)
			items := reverseIndexStream(3000, 41)
			g.InsertBatch(items)
			if st := g.Stats(); name == "tiny-matrix" && st.BufferEdges == 0 {
				t.Fatal("tiny matrix did not spill to the buffer; test loses coverage")
			}
			checkAgainstScan(t, "ingest", g, items)
		})
	}
}

// TestReverseIndexSurvivesRestore proves the rebuilt index answers
// identically: the snapshot format carries no index, so Restore must
// reconstruct it from the matrix alone.
func TestReverseIndexSurvivesRestore(t *testing.T) {
	g := MustNew(Config{Width: 24})
	items := reverseIndexStream(2500, 43)
	g.InsertBatch(items)

	var snap bytes.Buffer
	if _, err := g.WriteTo(&snap); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSketch(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstScan(t, "restored", restored, items)

	// The restored index must also match the online one's answers.
	for _, it := range items[:200] {
		hv := g.NodeHash(it.Dst)
		diffSets(t, "online vs rebuilt precursors",
			restored.AppendPrecursorHashes(hv, nil), g.AppendPrecursorHashes(hv, nil))
	}

	// And the restored sketch keeps maintaining it on further inserts.
	more := reverseIndexStream(500, 47)
	restored.InsertBatch(more)
	checkAgainstScan(t, "restored+ingest", restored, append(items, more...))
}

// TestReverseIndexSurvivesMerge covers the other index-mutating path:
// Merge re-inserts decoded edges, which must keep the index aligned.
func TestReverseIndexSurvivesMerge(t *testing.T) {
	cfg := Config{Width: 24}
	a, b := MustNew(cfg), MustNew(cfg)
	itemsA := reverseIndexStream(1500, 53)
	itemsB := reverseIndexStream(1500, 59)
	a.InsertBatch(itemsA)
	b.InsertBatch(itemsB)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	checkAgainstScan(t, "merged", a, append(itemsA, itemsB...))
}

// TestScanViewMatchesStringPlane pins the pre-PR reference view to the
// accelerated string plane: same sketch, same answers, so benchmark
// before/after numbers measure speed, not semantic drift.
func TestScanViewMatchesStringPlane(t *testing.T) {
	g := MustNew(Config{Width: 32})
	items := reverseIndexStream(2000, 61)
	g.InsertBatch(items)
	sv := ScanView{G: g}
	for _, it := range items[:300] {
		for _, v := range []string{it.Src, it.Dst} {
			if got, want := sv.Successors(v), g.Successors(v); !equalStrings(got, want) {
				t.Fatalf("ScanView successors of %s = %v, string plane %v", v, got, want)
			}
			if got, want := sv.Precursors(v), g.Precursors(v); !equalStrings(got, want) {
				t.Fatalf("ScanView precursors of %s = %v, string plane %v", v, got, want)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAppendHashAPIsAppend ensures the Append* primitives append to the
// caller's buffer instead of clobbering it.
func TestAppendHashAPIsAppend(t *testing.T) {
	g := MustNew(Config{Width: 32})
	g.InsertEdge("a", "b", 1)
	prefix := []uint64{42}
	out := g.AppendSuccessorHashes(g.NodeHash("a"), prefix)
	if len(out) != 2 || out[0] != 42 {
		t.Fatalf("AppendSuccessorHashes clobbered the prefix: %v", out)
	}
	out = g.AppendPrecursorHashes(g.NodeHash("b"), prefix)
	if len(out) != 2 || out[0] != 42 {
		t.Fatalf("AppendPrecursorHashes clobbered the prefix: %v", out)
	}
	ids := g.AppendHashIDs(g.NodeHash("a"), []string{"x"})
	if len(ids) != 2 || ids[0] != "x" || ids[1] != "a" {
		t.Fatalf("AppendHashIDs = %v", ids)
	}
}

// TestReverseIndexRandomOps interleaves inserts with query checks so
// index maintenance is validated mid-stream, not only at the end.
func TestReverseIndexRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	g := MustNew(Config{Width: 16})
	var inserted []stream.Item
	for round := 0; round < 8; round++ {
		batch := make([]stream.Item, 200)
		for i := range batch {
			batch[i] = stream.Item{
				Src:    stream.NodeID(rng.Intn(80)),
				Dst:    stream.NodeID(rng.Intn(80)),
				Weight: int64(rng.Intn(9) + 1),
			}
		}
		g.InsertBatch(batch)
		inserted = append(inserted, batch...)
		for i := 0; i < 30; i++ {
			v := stream.NodeID(rng.Intn(90)) // occasionally never-inserted
			hv := g.NodeHash(v)
			diffSets(t, "mid-stream precursors",
				g.AppendPrecursorHashes(hv, nil), g.PrecursorHashesScan(hv))
			diffSets(t, "mid-stream successors",
				g.AppendSuccessorHashes(hv, nil), g.SuccessorHashesScan(hv))
		}
	}
	checkAgainstScan(t, "final", g, inserted)
}
