package gss

import (
	"bytes"
	"testing"

	"repro/internal/stream"
)

func buildSketchForSnapshot(t *testing.T, cfg Config) (*GSS, []stream.Item) {
	t.Helper()
	items := stream.Generate(stream.EmailEuAll().Scaled(0.002))
	g := MustNew(cfg)
	for _, it := range items {
		g.Insert(it)
	}
	return g, items
}

func TestSnapshotRoundTrip(t *testing.T) {
	g, items := buildSketchForSnapshot(t, Config{Width: 32, FingerprintBits: 12, Rooms: 2, SeqLen: 4, Candidates: 4})
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	g2, err := ReadSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Config() != g.Config() {
		t.Fatalf("config mismatch: %+v vs %+v", g2.Config(), g.Config())
	}
	if g2.Stats() != g.Stats() {
		t.Fatalf("stats mismatch: %+v vs %+v", g2.Stats(), g.Stats())
	}
	for _, it := range items {
		w1, ok1 := g.EdgeWeight(it.Src, it.Dst)
		w2, ok2 := g2.EdgeWeight(it.Src, it.Dst)
		if w1 != w2 || ok1 != ok2 {
			t.Fatalf("edge (%s,%s): %d,%v vs %d,%v", it.Src, it.Dst, w1, ok1, w2, ok2)
		}
	}
	// Set queries must survive too (registry round-trips).
	v := items[0].Src
	s1, s2 := g.Successors(v), g2.Successors(v)
	if len(s1) != len(s2) {
		t.Fatalf("successors differ after restore: %v vs %v", s1, s2)
	}
	// The restored sketch must accept further inserts.
	g2.InsertEdge("post-restore", "node", 7)
	if w, ok := g2.EdgeWeight("post-restore", "node"); !ok || w != 7 {
		t.Fatalf("restored sketch broken for new inserts: %d,%v", w, ok)
	}
}

func TestSnapshotRoundTripWithBufferedEdges(t *testing.T) {
	g, items := buildSketchForSnapshot(t, Config{Width: 4, FingerprintBits: 8, Rooms: 1, SeqLen: 2, Candidates: 2})
	if g.BufferSize() == 0 {
		t.Fatal("test needs buffered edges; shrink the matrix")
	}
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.BufferSize() != g.BufferSize() {
		t.Fatalf("buffer size %d vs %d", g2.BufferSize(), g.BufferSize())
	}
	for _, it := range items[:200] {
		w1, _ := g.EdgeWeight(it.Src, it.Dst)
		w2, _ := g2.EdgeWeight(it.Src, it.Dst)
		if w1 != w2 {
			t.Fatalf("buffered edge weight mismatch on (%s,%s)", it.Src, it.Dst)
		}
	}
}

func TestSnapshotNoIndex(t *testing.T) {
	g := MustNew(Config{Width: 16, DisableNodeIndex: true})
	g.InsertEdge("a", "b", 3)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadSketch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Nodes() != nil {
		t.Fatal("restored no-index sketch grew an index")
	}
	if w, ok := g2.EdgeWeight("a", "b"); !ok || w != 3 {
		t.Fatalf("edge lost: %d,%v", w, ok)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ReadSketch(bytes.NewReader([]byte("not a sketch"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Truncations at every prefix must error, not panic.
	g := MustNew(Config{Width: 8})
	g.InsertEdge("a", "b", 1)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{0, 3, 4, 5, 10, 30, len(raw) / 2, len(raw) - 1} {
		if _, err := ReadSketch(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSnapshotVersionCheck(t *testing.T) {
	g := MustNew(Config{Width: 8})
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 0xFF // corrupt version
	if _, err := ReadSketch(bytes.NewReader(raw)); err == nil {
		t.Fatal("wrong version accepted")
	}
}
