package gss

import (
	"io"
	"sync"

	"repro/internal/stream"
)

// Concurrent wraps a GSS with a read-write mutex so one ingester and
// many queriers can share it. Insertion stays O(1); queries take the
// read lock, so they run in parallel with each other but exclude
// inserts — the usual summary-structure deployment (hot path writes,
// periodic analytical reads).
type Concurrent struct {
	mu sync.RWMutex
	g  *GSS

	// Per-call probe scratch for readers. The sketch's own buffers
	// belong to the writer; readers running in parallel under RLock
	// each borrow a queryScratch here instead of copying the whole
	// GSS struct per query. The pool is replaced together with g on
	// Restore (scratch sizes follow the config), so both are read
	// under the same lock.
	scratch *sync.Pool
}

func newScratchPool(cfg Config) *sync.Pool {
	return &sync.Pool{New: func() interface{} {
		sc := newQueryScratch(cfg)
		return &sc
	}}
}

// NewConcurrent builds a thread-safe GSS.
func NewConcurrent(cfg Config) (*Concurrent, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Concurrent{g: g, scratch: newScratchPool(g.cfg)}, nil
}

// Insert ingests one stream item.
func (c *Concurrent) Insert(it stream.Item) {
	c.mu.Lock()
	c.g.Insert(it)
	c.mu.Unlock()
}

// InsertBatch ingests a batch under one lock acquisition.
func (c *Concurrent) InsertBatch(items []stream.Item) {
	c.mu.Lock()
	c.g.InsertBatch(items)
	c.mu.Unlock()
}

// InsertEdge adds w to edge (src,dst).
func (c *Concurrent) InsertEdge(src, dst string, w int64) {
	c.mu.Lock()
	c.g.InsertEdge(src, dst, w)
	c.mu.Unlock()
}

// EdgeWeight is the edge query primitive.
func (c *Concurrent) EdgeWeight(src, dst string) (int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc := c.scratch.Get().(*queryScratch)
	defer c.scratch.Put(sc)
	return c.g.edgeWeightWith(c.g.nh.Hash(src), c.g.nh.Hash(dst), sc)
}

// Successors is the 1-hop successor primitive.
func (c *Concurrent) Successors(v string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc := c.scratch.Get().(*queryScratch)
	defer c.scratch.Put(sc)
	return c.g.successorsWith(v, sc)
}

// Precursors is the 1-hop precursor primitive.
func (c *Concurrent) Precursors(v string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc := c.scratch.Get().(*queryScratch)
	defer c.scratch.Put(sc)
	return c.g.precursorsWith(v, sc)
}

// Nodes lists registered node identifiers.
func (c *Concurrent) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.Nodes()
}

// Stats snapshots sketch statistics.
func (c *Concurrent) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.Stats()
}

// HeavyEdges lists sketch edges at or above minWeight. The matrix scan
// uses no probe scratch, so the read lock alone suffices.
func (c *Concurrent) HeavyEdges(minWeight int64) []HeavyEdge {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.HeavyEdges(minWeight)
}

// Snapshot serializes the sketch while holding the read lock.
func (c *Concurrent) Snapshot(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, err := c.g.WriteTo(w)
	return err
}

// Restore replaces the sketch with the snapshot read from r. The old
// sketch stays in place on error.
func (c *Concurrent) Restore(r io.Reader) error {
	g, err := ReadSketch(r)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.g = g
	c.scratch = newScratchPool(g.cfg)
	c.mu.Unlock()
	return nil
}
