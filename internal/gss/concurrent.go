package gss

import (
	"io"
	"sync"

	"repro/internal/stream"
)

// Concurrent wraps a GSS with a read-write mutex so one ingester and
// many queriers can share it. Insertion stays O(1); queries take the
// read lock, so they run in parallel with each other but exclude
// inserts — the usual summary-structure deployment (hot path writes,
// periodic analytical reads).
type Concurrent struct {
	mu sync.RWMutex
	g  *GSS

	// Per-call probe scratch for readers. The sketch's own buffers
	// belong to the writer; readers running in parallel under RLock
	// each borrow a queryScratch here instead of copying the whole
	// GSS struct per query. The pool is replaced together with g on
	// Restore (scratch sizes follow the config), so both are read
	// under the same lock.
	scratch *sync.Pool
}

func newScratchPool(cfg Config) *sync.Pool {
	return &sync.Pool{New: func() interface{} {
		sc := newQueryScratch(cfg)
		return &sc
	}}
}

// NewConcurrent builds a thread-safe GSS.
func NewConcurrent(cfg Config) (*Concurrent, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Concurrent{g: g, scratch: newScratchPool(g.cfg)}, nil
}

// Insert ingests one stream item.
func (c *Concurrent) Insert(it stream.Item) {
	c.mu.Lock()
	c.g.Insert(it)
	c.mu.Unlock()
}

// InsertBatch ingests a batch under one lock acquisition.
func (c *Concurrent) InsertBatch(items []stream.Item) {
	c.mu.Lock()
	c.g.InsertBatch(items)
	c.mu.Unlock()
}

// InsertHashedBatch ingests a pre-hashed batch under one lock
// acquisition; the batch may be reordered in place.
func (c *Concurrent) InsertHashedBatch(items []stream.HashedItem) {
	c.mu.Lock()
	c.g.InsertHashedBatch(items)
	c.mu.Unlock()
}

// InsertEdge adds w to edge (src,dst).
func (c *Concurrent) InsertEdge(src, dst string, w int64) {
	c.mu.Lock()
	c.g.InsertEdge(src, dst, w)
	c.mu.Unlock()
}

// EdgeWeight is the edge query primitive.
func (c *Concurrent) EdgeWeight(src, dst string) (int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc := c.scratch.Get().(*queryScratch)
	defer c.scratch.Put(sc)
	return c.g.edgeWeightWith(c.g.nh.Hash(src), c.g.nh.Hash(dst), sc)
}

// Successors is the 1-hop successor primitive.
func (c *Concurrent) Successors(v string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc := c.scratch.Get().(*queryScratch)
	defer c.scratch.Put(sc)
	return c.g.successorsWith(v, sc)
}

// Precursors is the 1-hop precursor primitive.
func (c *Concurrent) Precursors(v string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc := c.scratch.Get().(*queryScratch)
	defer c.scratch.Put(sc)
	return c.g.precursorsWith(v, sc)
}

// The hash-native query plane, under the read lock. Each call borrows
// pooled probe scratch like the string primitives, so parallel readers
// running BFS frontiers stay allocation-free on the sketch side.

// NodeHash maps an identifier into the sketch's compressed node space.
// The mapping is a pure function of the configuration, but the sketch
// pointer itself can be swapped by Restore, so it still takes the lock.
func (c *Concurrent) NodeHash(v string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.NodeHash(v)
}

// EdgeWeightHash is the edge primitive over pre-hashed endpoints.
func (c *Concurrent) EdgeWeightHash(hs, hd uint64) (int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc := c.scratch.Get().(*queryScratch)
	defer c.scratch.Put(sc)
	return c.g.edgeWeightWith(hs, hd, sc)
}

// AppendSuccessorHashes appends the sketch successors of hv to dst.
func (c *Concurrent) AppendSuccessorHashes(hv uint64, dst []uint64) []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc := c.scratch.Get().(*queryScratch)
	defer c.scratch.Put(sc)
	return c.g.appendSuccessorHashesWith(hv, dst, sc)
}

// AppendPrecursorHashes appends the sketch precursors of hv to dst.
func (c *Concurrent) AppendPrecursorHashes(hv uint64, dst []uint64) []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	sc := c.scratch.Get().(*queryScratch)
	defer c.scratch.Put(sc)
	return c.g.appendPrecursorHashesWith(hv, dst, sc)
}

// AppendNodeHashes appends every registered node hash to dst.
func (c *Concurrent) AppendNodeHashes(dst []uint64) []uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.AppendNodeHashes(dst)
}

// AppendHashIDs appends the identifiers registered under hv to dst.
func (c *Concurrent) AppendHashIDs(hv uint64, dst []string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.AppendHashIDs(hv, dst)
}

// SupportsHashQueries reports whether the wrapped sketch backs the
// hash-native query plane.
func (c *Concurrent) SupportsHashQueries() bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.SupportsHashQueries()
}

// Nodes lists registered node identifiers.
func (c *Concurrent) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.Nodes()
}

// Stats snapshots sketch statistics.
func (c *Concurrent) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.Stats()
}

// HeavyEdges lists sketch edges at or above minWeight. The matrix scan
// uses no probe scratch, so the read lock alone suffices.
func (c *Concurrent) HeavyEdges(minWeight int64) []HeavyEdge {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.HeavyEdges(minWeight)
}

// Snapshot serializes the sketch while holding the read lock.
func (c *Concurrent) Snapshot(w io.Writer) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, err := c.g.WriteTo(w)
	return err
}

// Restore replaces the sketch with the snapshot read from r. The old
// sketch stays in place on error.
func (c *Concurrent) Restore(r io.Reader) error {
	g, err := ReadSketch(r)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.g = g
	c.scratch = newScratchPool(g.cfg)
	c.mu.Unlock()
	return nil
}
