package gss

import (
	"sync"

	"repro/internal/stream"
)

// Concurrent wraps a GSS with a read-write mutex so one ingester and
// many queriers can share it. Insertion stays O(1); queries take the
// read lock, so they run in parallel with each other but exclude
// inserts — the usual summary-structure deployment (hot path writes,
// periodic analytical reads).
type Concurrent struct {
	mu sync.RWMutex
	g  *GSS
}

// NewConcurrent builds a thread-safe GSS.
func NewConcurrent(cfg Config) (*Concurrent, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return &Concurrent{g: g}, nil
}

// Insert ingests one stream item.
func (c *Concurrent) Insert(it stream.Item) {
	c.mu.Lock()
	c.g.Insert(it)
	c.mu.Unlock()
}

// InsertEdge adds w to edge (src,dst).
func (c *Concurrent) InsertEdge(src, dst string, w int64) {
	c.mu.Lock()
	c.g.InsertEdge(src, dst, w)
	c.mu.Unlock()
}

// EdgeWeight is the edge query primitive.
func (c *Concurrent) EdgeWeight(src, dst string) (int64, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	// The scratch sequence buffers are per-sketch; clone-free reads
	// need their own. Query paths allocate nothing else, so a small
	// stack copy keeps RLock concurrency real.
	g := *c.g
	g.rowSeq = make([]uint32, c.g.cfg.SeqLen)
	g.colSeq = make([]uint32, c.g.cfg.SeqLen)
	g.sample = make([]uint32, c.g.cfg.Candidates)
	return g.EdgeWeight(src, dst)
}

// Successors is the 1-hop successor primitive.
func (c *Concurrent) Successors(v string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g := *c.g
	g.rowSeq = make([]uint32, c.g.cfg.SeqLen)
	g.colSeq = make([]uint32, c.g.cfg.SeqLen)
	g.sample = make([]uint32, c.g.cfg.Candidates)
	return g.Successors(v)
}

// Precursors is the 1-hop precursor primitive.
func (c *Concurrent) Precursors(v string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	g := *c.g
	g.rowSeq = make([]uint32, c.g.cfg.SeqLen)
	g.colSeq = make([]uint32, c.g.cfg.SeqLen)
	g.sample = make([]uint32, c.g.cfg.Candidates)
	return g.Precursors(v)
}

// Nodes lists registered node identifiers.
func (c *Concurrent) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.Nodes()
}

// Stats snapshots sketch statistics.
func (c *Concurrent) Stats() Stats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.Stats()
}
