package gss

import "sort"

// registry is the <H(v), v> hash table of §IV that makes the node map
// reversible: given a recovered hash value, it returns every original
// identifier that maps there. Several identifiers sharing a hash value
// is exactly the node-collision event the accuracy analysis (§VI-B)
// quantifies.
type registry struct {
	ids   map[uint64][]string
	count int
}

func newRegistry() *registry {
	return &registry{ids: make(map[uint64][]string)}
}

// add registers id under hash value hv if not already present. The list
// per hash value is tiny in any sane configuration (collisions are rare
// by design), so the linear containment scan is cheap.
func (r *registry) add(hv uint64, id string) {
	for _, existing := range r.ids[hv] {
		if existing == id {
			return
		}
	}
	r.ids[hv] = append(r.ids[hv], id)
	r.count++
}

// lookup returns the original identifiers registered under hv.
func (r *registry) lookup(hv uint64) []string { return r.ids[hv] }

// nodes returns every registered identifier, sorted.
func (r *registry) nodes() []string {
	out := make([]string, 0, r.count)
	for _, list := range r.ids {
		out = append(out, list...)
	}
	sort.Strings(out)
	return out
}
