package gss

import (
	"sort"

	"repro/internal/hashing"
)

// Stats summarizes the state of a sketch for capacity planning and for
// the buffer-size experiments (Fig. 13).
type Stats struct {
	Width           int
	Rooms           int
	SeqLen          int
	Candidates      int
	FingerprintBits int

	Items        int64 // stream items ingested (windowed: still live in the window)
	MatrixEdges  int   // distinct sketch edges resident in the matrix
	BufferEdges  int   // distinct left-over sketch edges in the buffer
	Occupancy    float64
	BufferPct    float64 // BufferEdges / (MatrixEdges + BufferEdges)
	MatrixBytes  int64
	IndexedNodes int // registered original identifiers, 0 if index disabled

	// ReverseIndexBytes is the footprint of the per-column reverse
	// index that accelerates precursor queries: 8 bytes per occupied
	// room. Reported separately from MatrixBytes, which stays the
	// paper-comparable sketch-proper figure.
	ReverseIndexBytes int64

	// Sliding-window backends (internal/window) only; zero on the
	// whole-stream backends.
	WindowSpan         int64 // window length in stream-time units
	LiveGenerations    int   // resident generation sketches
	ExpiredGenerations int64 // generations rotated out since creation
	ExpiredItems       int64 // items that left the window with them
	DroppedStragglers  int64 // items older than the window on arrival
}

// Stats returns a snapshot of the sketch state.
func (g *GSS) Stats() Stats {
	s := Stats{
		Width:           g.cfg.Width,
		Rooms:           g.cfg.Rooms,
		SeqLen:          g.cfg.SeqLen,
		Candidates:      g.cfg.Candidates,
		FingerprintBits: g.cfg.FingerprintBits,
		Items:           g.items,
		MatrixEdges:     g.entries,
		BufferEdges:     g.buf.size(),
		MatrixBytes:     g.MemoryBytes(),

		ReverseIndexBytes: g.reverseIndexBytes(),
	}
	slots := g.cfg.Width * g.cfg.Width * g.cfg.Rooms
	if slots > 0 {
		s.Occupancy = float64(g.entries) / float64(slots)
	}
	if total := s.MatrixEdges + s.BufferEdges; total > 0 {
		s.BufferPct = float64(s.BufferEdges) / float64(total)
	}
	if g.reg != nil {
		s.IndexedNodes = g.reg.count
	}
	return s
}

// BufferSize returns the number of distinct left-over sketch edges
// currently in buffer B.
func (g *GSS) BufferSize() int { return g.buf.size() }

// BufferPercentage is the Fig. 13 metric: left-over edges as a fraction
// of all distinct sketch edges stored.
func (g *GSS) BufferPercentage() float64 {
	total := g.entries + g.buf.size()
	if total == 0 {
		return 0
	}
	return float64(g.buf.size()) / float64(total)
}

// MemoryBytes is the matrix footprint: fingerprint area (4 bytes/room),
// weight area (8 bytes/room), index area (1 byte/room) and the occupancy
// bitset. The node-index hash table is excluded — the paper's memory
// comparisons concern the sketch proper, and every baseline needs the
// same reverse table for set queries.
func (g *GSS) MemoryBytes() int64 {
	return int64(len(g.fps))*4 + int64(len(g.weights))*8 + int64(len(g.idx)) + int64(len(g.occ))*8
}

// HeavyEdge is a sketch-graph edge whose weight reached a threshold,
// with the original identifiers recovered through the node index.
type HeavyEdge struct {
	SrcHash, DstHash uint64
	Srcs, Dsts       []string // empty when the node index is disabled
	Weight           int64
}

// HeavyEdges returns every sketch edge with weight >= minWeight. This is
// the edge-heavy-hitter extension gMatrix advertises (§II); GSS supports
// it directly because square hashing is reversible — each occupied room
// decodes back to the hash values of both endpoints without any probe.
func (g *GSS) HeavyEdges(minWeight int64) []HeavyEdge {
	m, l := g.cfg.Width, g.cfg.Rooms
	var out []HeavyEdge
	for slot := 0; slot < len(g.weights); slot++ {
		if !g.occupied(slot) || g.weights[slot] < minWeight {
			continue
		}
		bucket := slot / l
		row, col := uint32(bucket/m), uint32(bucket%m)
		hs, hd := g.decodeSlot(slot, row, col)
		out = append(out, g.heavyEdge(hs, hd, g.weights[slot]))
	}
	for k, w := range g.buf.weights {
		if w >= minWeight {
			out = append(out, g.heavyEdge(k.s, k.d, w))
		}
	}
	SortHeavyEdges(out)
	return out
}

// SortHeavyEdges applies the canonical heavy-edge order: weight
// descending, then endpoint hashes for determinism. Backends that
// merge per-partition lists (sharded shards, windowed generations)
// re-sort with the same function so all backends agree.
func SortHeavyEdges(out []HeavyEdge) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].SrcHash != out[j].SrcHash {
			return out[i].SrcHash < out[j].SrcHash
		}
		return out[i].DstHash < out[j].DstHash
	})
}

// decodeSlot recovers the sketch-edge endpoints stored at slot, using
// the reversibility property of the LR address sequences.
func (g *GSS) decodeSlot(slot int, row, col uint32) (hs, hd uint64) {
	m := g.cfg.Width
	fpS := g.fps[slot] >> 16
	fpD := g.fps[slot] & 0xffff
	is := int(g.idx[slot] >> 4)
	id := int(g.idx[slot] & 0x0f)
	addrS := hashing.RecoverAddress(row, fpS, is, m)
	addrD := hashing.RecoverAddress(col, fpD, id, m)
	return g.nh.Combine(addrS, fpS), g.nh.Combine(addrD, fpD)
}

func (g *GSS) heavyEdge(hs, hd uint64, w int64) HeavyEdge {
	he := HeavyEdge{SrcHash: hs, DstHash: hd, Weight: w}
	if g.reg != nil {
		he.Srcs = g.reg.lookup(hs)
		he.Dsts = g.reg.lookup(hd)
	}
	return he
}
