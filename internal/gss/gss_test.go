package gss

import (
	"testing"

	"repro/internal/adjlist"
	"repro/internal/stream"
)

func smallConfig() Config {
	return Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"missing width", Config{}, false},
		{"negative width", Config{Width: -5}, false},
		{"defaults fill", Config{Width: 10}, true},
		{"fp too long", Config{Width: 10, FingerprintBits: 17}, false},
		{"too many rooms", Config{Width: 10, Rooms: 100}, false},
		{"seq too long", Config{Width: 10, SeqLen: 17}, false},
		{"candidates over r2", Config{Width: 10, SeqLen: 2, Candidates: 5}, false},
		{"basic version", Config{Width: 10, DisableSquareHash: true}, true},
	}
	for _, c := range cases {
		_, err := New(c.cfg)
		if (err == nil) != c.ok {
			t.Errorf("%s: err=%v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestConfigNormalizationDefaults(t *testing.T) {
	g := MustNew(Config{Width: 10})
	cfg := g.Config()
	if cfg.FingerprintBits != 16 || cfg.Rooms != 2 || cfg.SeqLen != 16 || cfg.Candidates != 16 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	basic := MustNew(Config{Width: 10, DisableSquareHash: true})
	if basic.Config().SeqLen != 1 || basic.Config().Candidates != 1 {
		t.Fatalf("basic version not normalized: %+v", basic.Config())
	}
	nosample := MustNew(Config{Width: 10, SeqLen: 4, DisableSampling: true})
	if nosample.Config().Candidates != 16 {
		t.Fatalf("no-sampling should probe all r^2: %+v", nosample.Config())
	}
}

func TestEdgeQueryBasics(t *testing.T) {
	g := MustNew(smallConfig())
	g.InsertEdge("a", "b", 3)
	g.InsertEdge("a", "b", 2)
	g.InsertEdge("b", "a", 7)
	if w, ok := g.EdgeWeight("a", "b"); !ok || w != 5 {
		t.Fatalf("w(a,b) = %d,%v want 5,true", w, ok)
	}
	if w, ok := g.EdgeWeight("b", "a"); !ok || w != 7 {
		t.Fatalf("w(b,a) = %d,%v want 7,true", w, ok)
	}
	if _, ok := g.EdgeWeight("a", "zzz"); ok {
		t.Fatal("absent edge reported present")
	}
}

func TestDeletionViaNegativeWeight(t *testing.T) {
	g := MustNew(smallConfig())
	g.Insert(stream.Item{Src: "a", Dst: "b", Weight: 10})
	g.Insert(stream.Item{Src: "a", Dst: "b", Weight: -4})
	if w, _ := g.EdgeWeight("a", "b"); w != 6 {
		t.Fatalf("w = %d after deletion, want 6", w)
	}
}

func TestPaperExampleStream(t *testing.T) {
	// Fig. 1 stream against the Fig. 2-style sketch: every edge weight
	// must be recovered exactly with a comfortably sized sketch.
	items := []stream.Item{
		{Src: "a", Dst: "b", Weight: 1}, {Src: "a", Dst: "c", Weight: 1},
		{Src: "b", Dst: "d", Weight: 1}, {Src: "a", Dst: "c", Weight: 1},
		{Src: "a", Dst: "f", Weight: 1}, {Src: "c", Dst: "f", Weight: 1},
		{Src: "a", Dst: "e", Weight: 1}, {Src: "a", Dst: "c", Weight: 3},
		{Src: "c", Dst: "f", Weight: 1}, {Src: "d", Dst: "a", Weight: 1},
		{Src: "d", Dst: "f", Weight: 1}, {Src: "f", Dst: "e", Weight: 3},
		{Src: "a", Dst: "g", Weight: 1}, {Src: "e", Dst: "b", Weight: 2},
		{Src: "d", Dst: "a", Weight: 1},
	}
	g := MustNew(Config{Width: 16, FingerprintBits: 8, Rooms: 2, SeqLen: 2, Candidates: 4})
	exact := adjlist.New()
	for _, it := range items {
		g.Insert(it)
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	for _, it := range items {
		want, _ := exact.EdgeWeight(it.Src, it.Dst)
		got, ok := g.EdgeWeight(it.Src, it.Dst)
		if !ok || got != want {
			t.Fatalf("w(%s,%s) = %d,%v want %d", it.Src, it.Dst, got, ok, want)
		}
	}
	if got := g.Successors("a"); len(got) < 5 {
		t.Fatalf("Successors(a) = %v, want at least {b,c,e,f,g}", got)
	}
}

// TestNoFalseNegatives is the core soundness property: every true edge
// must be found, every true successor/precursor must be in the reported
// set. GSS has false positives only (§VII-B).
func TestNoFalseNegatives(t *testing.T) {
	items := stream.Generate(stream.EmailEuAll().Scaled(0.004))
	g := MustNew(Config{Width: 48, FingerprintBits: 12, Rooms: 2, SeqLen: 8, Candidates: 8})
	exact := adjlist.New()
	for _, it := range items {
		g.Insert(it)
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	for _, it := range items {
		want, _ := exact.EdgeWeight(it.Src, it.Dst)
		got, ok := g.EdgeWeight(it.Src, it.Dst)
		if !ok {
			t.Fatalf("false negative on edge (%s,%s)", it.Src, it.Dst)
		}
		if got < want {
			t.Fatalf("underestimate on edge (%s,%s): %d < %d", it.Src, it.Dst, got, want)
		}
	}
	nodes := exact.Nodes()
	if len(nodes) > 300 {
		nodes = nodes[:300]
	}
	for _, v := range nodes {
		succ := toSet(g.Successors(v))
		for _, u := range exact.Successors(v) {
			if !succ[u] {
				t.Fatalf("successor %s of %s missing", u, v)
			}
		}
		prec := toSet(g.Precursors(v))
		for _, u := range exact.Precursors(v) {
			if !prec[u] {
				t.Fatalf("precursor %s of %s missing", u, v)
			}
		}
	}
}

// TestHighAccuracyWithLongFingerprints checks the paper's headline
// claim: with 16-bit fingerprints and m ≈ sqrt(|E|), edge weights are
// exact and successor sets have no false positives for almost every
// node.
func TestHighAccuracyWithLongFingerprints(t *testing.T) {
	items := stream.Generate(stream.CitHepPh().Scaled(0.01))
	exact := adjlist.New()
	for _, it := range items {
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	g := MustNew(Config{Width: 72, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	for _, it := range items {
		g.Insert(it)
	}
	wrongWeights := 0
	for _, it := range items {
		want, _ := exact.EdgeWeight(it.Src, it.Dst)
		if got, _ := g.EdgeWeight(it.Src, it.Dst); got != want {
			wrongWeights++
		}
	}
	if wrongWeights > len(items)/200 { // > 0.5% is far off the paper's ARE
		t.Fatalf("%d/%d edge weights wrong", wrongWeights, len(items))
	}
	falsePos, totalReported := 0, 0
	for _, v := range exact.Nodes() {
		got := g.Successors(v)
		trueSucc := toSet(exact.Successors(v))
		totalReported += len(got)
		for _, u := range got {
			if !trueSucc[u] {
				falsePos++
			}
		}
	}
	if totalReported == 0 {
		t.Fatal("no successors reported at all")
	}
	if frac := float64(falsePos) / float64(totalReported); frac > 0.02 {
		t.Fatalf("successor false-positive rate %.3f too high", frac)
	}
}

func TestSuccessorsPrecursorsSymmetry(t *testing.T) {
	items := stream.Generate(stream.LkmlReply().Scaled(0.002))
	g := MustNew(smallConfig())
	for _, it := range items {
		g.Insert(it)
	}
	// If u is reported as a successor of v, then v must be reported as a
	// precursor of u: both decode the same stored rooms.
	nodes := g.Nodes()
	if len(nodes) > 120 {
		nodes = nodes[:120]
	}
	for _, v := range nodes {
		for _, u := range g.Successors(v) {
			prec := toSet(g.Precursors(u))
			if !prec[v] {
				t.Fatalf("asymmetry: %s in Succ(%s) but %s not in Prec(%s)", u, v, v, u)
			}
		}
	}
}

func TestBufferOverflowPath(t *testing.T) {
	// A deliberately tiny matrix forces left-over edges into the buffer;
	// queries must remain exact for the sketch graph (Theorem 1 says the
	// storage itself never loses or mixes sketch edges).
	g := MustNew(Config{Width: 2, FingerprintBits: 16, Rooms: 1, SeqLen: 1, Candidates: 1, DisableSampling: true})
	exact := adjlist.New()
	items := stream.Generate(stream.EmailEuAll().Scaled(0.001))
	for _, it := range items {
		g.Insert(it)
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	if g.BufferSize() == 0 {
		t.Fatal("expected left-over edges with a 2x2 matrix")
	}
	missing := 0
	for _, it := range items {
		if _, ok := g.EdgeWeight(it.Src, it.Dst); !ok {
			missing++
		}
	}
	if missing > 0 {
		t.Fatalf("%d edges lost despite buffer", missing)
	}
	// Successor queries must surface buffered edges too.
	v := items[0].Src
	succ := toSet(g.Successors(v))
	for _, u := range exact.Successors(v) {
		if !succ[u] {
			t.Fatalf("buffered successor %s of %s missing", u, v)
		}
	}
}

func TestSquareHashReducesBuffer(t *testing.T) {
	// The §V-A claim behind Fig. 13: square hashing shrinks the buffer
	// dramatically at equal memory.
	items := stream.Generate(stream.WebNotreDame().Scaled(0.002))
	with := MustNew(Config{Width: 56, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	without := MustNew(Config{Width: 56, FingerprintBits: 16, Rooms: 2, DisableSquareHash: true})
	for _, it := range items {
		with.Insert(it)
		without.Insert(it)
	}
	if w, wo := with.BufferPercentage(), without.BufferPercentage(); w >= wo {
		t.Fatalf("square hashing did not help: with=%.4f without=%.4f", w, wo)
	}
}

func TestRoomsReduceBuffer(t *testing.T) {
	items := stream.Generate(stream.WebNotreDame().Scaled(0.002))
	// Same memory: l=1 at width w*sqrt(2) vs l=2 at width w (§VII-G).
	one := MustNew(Config{Width: 79, FingerprintBits: 16, Rooms: 1, SeqLen: 8, Candidates: 8})
	two := MustNew(Config{Width: 56, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	for _, it := range items {
		one.Insert(it)
		two.Insert(it)
	}
	if two.BufferPercentage() > one.BufferPercentage() {
		t.Fatalf("2 rooms worse than 1: %.4f vs %.4f", two.BufferPercentage(), one.BufferPercentage())
	}
}

func TestStats(t *testing.T) {
	g := MustNew(smallConfig())
	g.InsertEdge("a", "b", 1)
	g.InsertEdge("c", "d", 2)
	s := g.Stats()
	if s.Items != 2 || s.MatrixEdges != 2 || s.BufferEdges != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if s.IndexedNodes != 4 {
		t.Fatalf("IndexedNodes = %d, want 4", s.IndexedNodes)
	}
	if s.Occupancy <= 0 || s.Occupancy > 1 {
		t.Fatalf("occupancy = %f", s.Occupancy)
	}
	if s.MatrixBytes != g.MemoryBytes() || s.MatrixBytes <= 0 {
		t.Fatalf("memory accounting broken: %d", s.MatrixBytes)
	}
}

func TestNodesRegistry(t *testing.T) {
	g := MustNew(smallConfig())
	g.InsertEdge("x", "y", 1)
	g.InsertEdge("y", "z", 1)
	nodes := g.Nodes()
	if len(nodes) != 3 {
		t.Fatalf("Nodes = %v", nodes)
	}
	noIdx := MustNew(Config{Width: 8, DisableNodeIndex: true})
	noIdx.InsertEdge("x", "y", 1)
	if noIdx.Nodes() != nil {
		t.Fatal("disabled index must return nil nodes")
	}
	if succ := noIdx.Successors("x"); len(succ) != 1 || succ[0][0] != '#' {
		t.Fatalf("expected synthetic successor IDs, got %v", succ)
	}
}

func TestHeavyEdges(t *testing.T) {
	g := MustNew(smallConfig())
	g.InsertEdge("a", "b", 100)
	g.InsertEdge("a", "c", 5)
	g.InsertEdge("d", "e", 40)
	heavy := g.HeavyEdges(40)
	if len(heavy) != 2 {
		t.Fatalf("HeavyEdges(40) returned %d edges", len(heavy))
	}
	if heavy[0].Weight != 100 || heavy[1].Weight != 40 {
		t.Fatalf("heavy edges unsorted: %+v", heavy)
	}
	if len(heavy[0].Srcs) != 1 || heavy[0].Srcs[0] != "a" {
		t.Fatalf("heavy edge did not decode to original ID: %+v", heavy[0])
	}
}

func TestHeavyEdgesIncludesBuffered(t *testing.T) {
	g := MustNew(Config{Width: 2, Rooms: 1, DisableSquareHash: true})
	for i := 0; i < 64; i++ {
		g.InsertEdge(stream.NodeID(i), stream.NodeID(i+1000), 99)
	}
	if g.BufferSize() == 0 {
		t.Skip("no buffered edges in this layout")
	}
	heavy := g.HeavyEdges(99)
	if len(heavy) != 64 {
		t.Fatalf("HeavyEdges missed buffered edges: got %d, want 64", len(heavy))
	}
}

func toSet(xs []string) map[string]bool {
	m := make(map[string]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}
