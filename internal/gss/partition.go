package gss

import (
	"errors"

	"repro/internal/stream"
)

// Partition operations back the cluster tier's live migration: when a
// member joins or drains, the keys the rendezvous ring re-maps must
// move. The sketch cannot ship raw matrix regions — members may run
// different backends and configurations — so a partition moves in item
// space: ExportPartition re-materializes every sketch edge whose
// source node satisfies the caller's predicate as an ordinary stream
// item (square hashing is reversible, and the node registry recovers
// the original identifiers), and DropPartition rebuilds the sketch
// without those edges once the new owner has absorbed them. Both sides
// of the move use the public ingest path, which is what makes the
// transfer backend- and config-agnostic.
//
// The recovery is exact up to the sketch's own collision semantics: a
// hash value whose registered identifiers disagree on the predicate
// ("mixed") cannot be split, so its edges stay put and are counted in
// the report; likewise edges with no registered identifier (only
// possible with the node index disabled, which errors out entirely).

// ErrNoNodeIndex is returned by the partition operations when the
// sketch was built with DisableNodeIndex: without the <H(v), v>
// registry there is no way to re-materialize original identifiers.
var ErrNoNodeIndex = errors.New("gss: partition operations require the node index")

// PartitionReport summarizes one partition export or drop.
type PartitionReport struct {
	// Edges is the number of distinct sketch edges the predicate
	// matched (exported, or dropped).
	Edges int64
	// Items is the stream-item count DropPartition removed from
	// Stats().Items (the caller-provided budget, clamped to the items
	// present). Zero on export.
	Items int64
	// Mixed counts sketch edges left in place because identifiers
	// colliding on the source hash value disagreed on the predicate.
	Mixed int64
	// Unattributed counts sketch edges left in place because an
	// endpoint hash had no registered identifier.
	Unattributed int64
}

// Add folds another report into r (multi-shard and multi-generation
// backends aggregate per-sketch reports with it).
func (r *PartitionReport) Add(o PartitionReport) {
	r.Edges += o.Edges
	r.Items += o.Items
	r.Mixed += o.Mixed
	r.Unattributed += o.Unattributed
}

// Per-hash-value predicate classes.
const (
	classUnattributed = iota // no registered identifier
	classStay
	classMove
	classMixed
)

// partitionOracle memoizes the moving predicate per hash value: the
// predicate is evaluated once per distinct node, not once per edge.
type partitionOracle struct {
	reg    *registry
	moving func(id string) bool
	cache  map[uint64]uint8
}

func newPartitionOracle(reg *registry, moving func(id string) bool) *partitionOracle {
	return &partitionOracle{reg: reg, moving: moving, cache: make(map[uint64]uint8)}
}

func (po *partitionOracle) class(hv uint64) uint8 {
	if c, ok := po.cache[hv]; ok {
		return c
	}
	ids := po.reg.lookup(hv)
	var c uint8 = classUnattributed
	if len(ids) > 0 {
		c = classStay
		if po.moving(ids[0]) {
			c = classMove
		}
		for _, id := range ids[1:] {
			if po.moving(id) != (c == classMove) {
				c = classMixed
				break
			}
		}
	}
	po.cache[hv] = c
	return c
}

// ExportPartition streams every sketch edge whose source node moves
// under the predicate to emit, as plain items carrying the first
// registered identifier of each endpoint and the edge's aggregated
// weight. The sketch is not modified. Emission order is unspecified;
// inserts are commutative, so the receiving sketch is unaffected.
// Items are emitted with Time zero; time-aware wrappers (the sliding
// window) stamp their own notion of stream time.
func (g *GSS) ExportPartition(moving func(id string) bool, emit func(stream.Item) error) (PartitionReport, error) {
	if g.reg == nil {
		return PartitionReport{}, ErrNoNodeIndex
	}
	po := newPartitionOracle(g.reg, moving)
	var rep PartitionReport
	export := func(hs, hd uint64, w int64) error {
		switch po.class(hs) {
		case classMove:
			dsts := g.reg.lookup(hd)
			if len(dsts) == 0 {
				rep.Unattributed++
				return nil
			}
			rep.Edges++
			return emit(stream.Item{Src: g.reg.lookup(hs)[0], Dst: dsts[0], Weight: w})
		case classMixed:
			rep.Mixed++
		case classUnattributed:
			rep.Unattributed++
		}
		return nil
	}
	m, l := g.cfg.Width, g.cfg.Rooms
	for slot := 0; slot < len(g.weights); slot++ {
		if !g.occupied(slot) {
			continue
		}
		bucket := slot / l
		row, col := uint32(bucket/m), uint32(bucket%m)
		hs, hd := g.decodeSlot(slot, row, col)
		if err := export(hs, hd, g.weights[slot]); err != nil {
			return rep, err
		}
	}
	for k, w := range g.buf.weights {
		if err := export(k.s, k.d, w); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// DropPartition removes every sketch edge whose source node moves
// under the predicate, following the Merge pattern in reverse: a fresh
// sketch is rebuilt from the staying edges (each occupied room decodes
// back to its endpoints and re-inserts through the normal path) and
// swapped in wholesale. items is the stream-item count to subtract
// from Stats().Items — the caller knows how many items the departed
// partition absorbed (the migrator counts what the new owner
// confirmed); it is clamped to the items present. The node registry is
// kept whole, moved identifiers included: a moved node can still
// appear as the destination of a staying edge, and cluster-wide node
// enumeration unions member answers, so stale entries cost memory but
// never correctness.
func (g *GSS) DropPartition(moving func(id string) bool, items int64) (PartitionReport, error) {
	if g.reg == nil {
		return PartitionReport{}, ErrNoNodeIndex
	}
	fresh, err := New(g.cfg)
	if err != nil {
		return PartitionReport{}, err
	}
	po := newPartitionOracle(g.reg, moving)
	var rep PartitionReport
	keep := func(hs, hd uint64) bool {
		switch po.class(hs) {
		case classMove:
			if len(g.reg.lookup(hd)) == 0 {
				rep.Unattributed++
				return true
			}
			rep.Edges++
			return false
		case classMixed:
			rep.Mixed++
		case classUnattributed:
			rep.Unattributed++
		}
		return true
	}
	m, l := g.cfg.Width, g.cfg.Rooms
	for slot := 0; slot < len(g.weights); slot++ {
		if !g.occupied(slot) {
			continue
		}
		bucket := slot / l
		row, col := uint32(bucket/m), uint32(bucket%m)
		hs, hd := g.decodeSlot(slot, row, col)
		if keep(hs, hd) {
			fresh.insertHashed(hs, hd, g.weights[slot])
			fresh.items-- // moving edges, not counting items
		}
	}
	for k, w := range g.buf.weights {
		if keep(k.s, k.d) {
			fresh.insertHashed(k.s, k.d, w)
			fresh.items--
		}
	}
	if items < 0 {
		items = 0
	}
	if items > g.items {
		items = g.items
	}
	fresh.items = g.items - items
	rep.Items = items
	fresh.reg = g.reg
	*g = *fresh
	return rep, nil
}

// AbsorbItems adds n to the stream-item counter without touching the
// matrix. It is the receiving side of a drain's counter rebase: the
// export aggregates a departing member's items into one weighted item
// per edge, so the gainers' counters under-count by exactly (fenced
// item count − exported edges). The migrator delivers that delta here
// after cutover so the cluster-total Stats().Items stays exact.
// Non-positive n is a no-op.
func (g *GSS) AbsorbItems(n int64) error {
	if n > 0 {
		g.items += n
	}
	return nil
}

// ExportPartition on the concurrent backend runs under the read lock:
// the export only decodes, so parallel queries stay unblocked (the
// deployment above serializes it against writes with its own barrier).
func (c *Concurrent) ExportPartition(moving func(id string) bool, emit func(stream.Item) error) (PartitionReport, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.g.ExportPartition(moving, emit)
}

// DropPartition on the concurrent backend takes the write lock for the
// rebuild-and-swap.
func (c *Concurrent) DropPartition(moving func(id string) bool, items int64) (PartitionReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.g.DropPartition(moving, items)
}

// AbsorbItems on the concurrent backend takes the write lock (it
// mutates the counter).
func (c *Concurrent) AbsorbItems(n int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.g.AbsorbItems(n)
}

// ExportPartition on the sharded backend exports shard by shard under
// each shard's mutex; emit sees one shard at a time.
func (s *Sharded) ExportPartition(moving func(id string) bool, emit func(stream.Item) error) (PartitionReport, error) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	var rep PartitionReport
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		r, err := sh.g.ExportPartition(moving, emit)
		sh.mu.Unlock()
		rep.Add(r)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// DropPartition on the sharded backend drops shard by shard. The item
// budget is split greedily: each shard absorbs as much of the
// remainder as it holds. Only the aggregate Stats().Items is
// observable, so any split summing to the budget is equivalent — and
// the shards together always hold at least the budget, because the
// departed partition's items all live in some shard.
func (s *Sharded) DropPartition(moving func(id string) bool, items int64) (PartitionReport, error) {
	s.gate.RLock()
	defer s.gate.RUnlock()
	var rep PartitionReport
	remaining := items
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		take := remaining
		if have := sh.g.items; take > have {
			take = have
		}
		r, err := sh.g.DropPartition(moving, take)
		sh.mu.Unlock()
		remaining -= r.Items
		rep.Add(r)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// AbsorbItems on the sharded backend credits shard 0: only the
// aggregate Stats().Items is observable, so any single shard carrying
// the rebased count is equivalent.
func (s *Sharded) AbsorbItems(n int64) error {
	s.gate.RLock()
	defer s.gate.RUnlock()
	sh := &s.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.g.AbsorbItems(n)
}
