package telemetry

import (
	"context"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// DebugServer serves net/http/pprof on its own listener, so profiling
// never shares a port (or a request path) with production traffic.
// Opt-in via the binaries' -debug-addr flag; bind it to localhost or a
// management network — the profile endpoints expose heap contents.
type DebugServer struct {
	srv       *http.Server
	ls        net.Listener
	done      chan struct{}
	closeOnce sync.Once
}

// StartDebug listens on addr and serves the pprof index, profiles and
// traces under /debug/pprof/. Close releases the listener and waits
// for the serve goroutine.
func StartDebug(addr string) (*DebugServer, error) {
	ls, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second},
		ls:   ls,
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		_ = d.srv.Serve(ls)
	}()
	return d, nil
}

// Addr is the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ls.Addr().String() }

// Close shuts the listener down and waits for the serve goroutine to
// exit, so a Close-then-leak-check sees zero goroutines.
func (d *DebugServer) Close() {
	d.closeOnce.Do(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = d.srv.Shutdown(ctx)
		<-d.done
	})
}
