package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestMiddlewareByteIdentical is the load-bearing guarantee: the
// instrumented handler's response — status, headers it set, body bytes
// — is identical to the bare handler's, for bodies written with and
// without an explicit WriteHeader and for error statuses. (The one
// addition is the X-Gss-Request-Id response header, which is the
// middleware's documented job, not a mutation of the handler's
// output.)
func TestMiddlewareByteIdentical(t *testing.T) {
	handlers := map[string]http.HandlerFunc{
		"implicit 200": func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"items":%d}`, 42)
		},
		"explicit 429": func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, `{"error":"queue full"}`)
		},
		"no body": func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusNoContent)
		},
		"chunked flush": func(w http.ResponseWriter, r *http.Request) {
			io.WriteString(w, "part1\n")
			if f, ok := w.(http.Flusher); ok {
				f.Flush()
			}
			io.WriteString(w, "part2\n")
		},
	}
	hm := NewHTTPMetrics(NewRegistry(), nil)
	for name, h := range handlers {
		bare := httptest.NewRecorder()
		h(bare, httptest.NewRequest("GET", "/x", nil))

		wrapped := httptest.NewRecorder()
		hm.Wrap("/x", h)(wrapped, httptest.NewRequest("GET", "/x", nil))

		if bare.Code != wrapped.Code {
			t.Errorf("%s: status %d != %d", name, wrapped.Code, bare.Code)
		}
		if !bytes.Equal(bare.Body.Bytes(), wrapped.Body.Bytes()) {
			t.Errorf("%s: body %q != %q", name, wrapped.Body.String(), bare.Body.String())
		}
		for k, v := range bare.Header() {
			if got := wrapped.Header().Values(k); strings.Join(got, ",") != strings.Join(v, ",") {
				t.Errorf("%s: header %s = %v, want %v", name, k, got, v)
			}
		}
		if wrapped.Header().Get(HeaderRequestID) == "" {
			t.Errorf("%s: no request ID minted", name)
		}
	}
}

func TestMiddlewareCountsAndRequestID(t *testing.T) {
	reg := NewRegistry()
	hm := NewHTTPMetrics(reg, nil)
	var seenID string
	h := hm.Wrap("/edge", func(w http.ResponseWriter, r *http.Request) {
		seenID = RequestID(r.Context())
		if r.URL.Query().Get("fail") != "" {
			http.Error(w, "nope", http.StatusBadGateway)
			return
		}
		io.WriteString(w, "ok")
	})

	rec := httptest.NewRecorder()
	h(rec, httptest.NewRequest("GET", "/edge", nil))
	if seenID == "" || rec.Header().Get(HeaderRequestID) != seenID {
		t.Fatalf("request ID not minted/echoed: ctx=%q header=%q", seenID, rec.Header().Get(HeaderRequestID))
	}

	// An upstream-minted ID is adopted, not replaced.
	req := httptest.NewRequest("GET", "/edge", nil)
	req.Header.Set(HeaderRequestID, "upstream-123")
	rec = httptest.NewRecorder()
	h(rec, req)
	if seenID != "upstream-123" || rec.Header().Get(HeaderRequestID) != "upstream-123" {
		t.Fatalf("upstream ID not adopted: ctx=%q header=%q", seenID, rec.Header().Get(HeaderRequestID))
	}

	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/edge?fail=1", nil))

	if got := reg.Counter("gss_http_requests_total", "Requests served, by route and status class.",
		L("route", "/edge"), L("class", "2xx")).Value(); got != 2 {
		t.Fatalf("2xx count = %d, want 2", got)
	}
	if got := reg.Counter("gss_http_requests_total", "Requests served, by route and status class.",
		L("route", "/edge"), L("class", "5xx")).Value(); got != 1 {
		t.Fatalf("5xx count = %d, want 1", got)
	}
	if got := reg.Histogram("gss_http_request_seconds", "Request latency in seconds, by route.",
		nil, L("route", "/edge")).Count(); got != 3 {
		t.Fatalf("latency observations = %d, want 3", got)
	}
	if got := reg.Gauge("gss_http_in_flight", "Requests currently being served, by route.",
		L("route", "/edge")).Value(); got != 0 {
		t.Fatalf("in-flight after completion = %d, want 0", got)
	}
}

// TestSlowQueryLogging: over-threshold requests land in the log with
// their trace spans and request ID; under-threshold requests do not.
func TestSlowQueryLogging(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	slow := NewSlowQueryLog(5*time.Millisecond, logger)
	defer slow.Close()
	hm := NewHTTPMetrics(NewRegistry(), slow)

	h := hm.Wrap("/reachable", func(w http.ResponseWriter, r *http.Request) {
		TraceFrom(r.Context()).Add(SpanRecord{
			Target: "http://member-a:8080", Op: "/successors?v=x",
			Attempts: 2, Duration: 9 * time.Millisecond, Err: "connection refused",
		})
		time.Sleep(10 * time.Millisecond)
		io.WriteString(w, "ok")
	})
	req := httptest.NewRequest("GET", "/reachable", nil)
	req.Header.Set(HeaderRequestID, "trace-me")
	h(httptest.NewRecorder(), req)

	fast := hm.Wrap("/edge", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	fast(httptest.NewRecorder(), httptest.NewRequest("GET", "/edge", nil))

	deadline := time.Now().Add(2 * time.Second)
	for {
		s := buf.String()
		if strings.Contains(s, "slow query") &&
			strings.Contains(s, "trace-me") &&
			strings.Contains(s, "member-a") &&
			strings.Contains(s, "attempts=2") &&
			strings.Contains(s, "connection refused") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow query never logged with trace; log:\n%s", s)
		}
		time.Sleep(time.Millisecond)
	}
	if strings.Contains(buf.String(), "/edge") {
		t.Fatalf("fast request logged as slow:\n%s", buf.String())
	}
}

// TestSlowQueryLogStopsOnClose and TestDebugServerStopsOnClose are the
// goroutine-leak checks the issue demands: both background loops must
// be gone after Close.
func TestSlowQueryLogStopsOnClose(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		slow := NewSlowQueryLog(time.Millisecond, slog.New(slog.NewTextHandler(io.Discard, nil)))
		slow.observe("/x", "id", time.Second, 200, nil)
		slow.Close()
		slow.Close() // double Close is safe
	}
	waitForGoroutines(t, before)
}

func TestDebugServerStopsOnClose(t *testing.T) {
	before := runtime.NumGoroutine()
	d, err := StartDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + d.Addr() + "/debug/pprof/")
	if err != nil {
		d.Close()
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("goroutine")) {
		t.Fatalf("pprof index: status %d body %q", resp.StatusCode, body[:min(len(body), 200)])
	}
	d.Close()
	d.Close() // double Close is safe
	http.DefaultClient.CloseIdleConnections()
	waitForGoroutines(t, before)
}

func waitForGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > want {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to %d (now %d)", want, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// BenchmarkMiddlewareOverhead prices one wrapped request against the
// bare handler — the per-request cost the <2% ingest budget rests on
// (one request covers a whole ingest batch, so ~100ns here is noise
// against a 512-item insert).
func BenchmarkMiddlewareOverhead(b *testing.B) {
	handler := func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, `{"ok":true}`)
	}
	b.Run("bare", func(b *testing.B) {
		req := httptest.NewRequest("GET", "/x", nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			handler(&nopResponseWriter{}, req)
		}
	})
	b.Run("wrapped", func(b *testing.B) {
		hm := NewHTTPMetrics(NewRegistry(), nil)
		h := hm.Wrap("/x", handler)
		req := httptest.NewRequest("GET", "/x", nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h(&nopResponseWriter{}, req)
		}
	})
}

type nopResponseWriter struct{ h http.Header }

func (w *nopResponseWriter) Header() http.Header {
	if w.h == nil {
		w.h = make(http.Header)
	}
	return w.h
}
func (w *nopResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (w *nopResponseWriter) WriteHeader(int)             {}
