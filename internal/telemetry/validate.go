package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// A hand-rolled strict validator for the Prometheus text exposition
// format (0.0.4). It exists so the /metrics surface is pinned by a
// parser the repo controls — a scrape that only "looks right" to a
// lenient consumer still fails the test battery here. Checked:
//
//   - every sample is preceded by HELP and TYPE lines for its family,
//     in that order, exactly once per family
//   - metric and label names match the spec grammar
//   - label values are well-formed quoted strings with valid escapes
//   - sample values parse as Go floats ("+Inf", "NaN" included)
//   - within a family, series label signatures are consistent and no
//     (name, labels) series repeats
//   - histogram families expose ascending, cumulative _bucket series
//     ending in le="+Inf", plus _sum and _count, with _count equal to
//     the +Inf bucket
//   - counter samples are non-negative
//
// Validate returns the family names in exposition order.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type familyState struct {
	name    string
	typ     string
	help    bool
	labels  string          // joined label-name signature of the first series
	seen    map[string]bool // full series keys, for duplicate detection
	samples int

	// histogram bookkeeping, keyed by the non-le label signature
	hist map[string]*histState
}

type histState struct {
	lastLe  float64
	lastCum float64
	infSeen bool
	infVal  float64
	sum     bool
	count   bool
	countV  float64
}

// Validate parses one exposition body strictly. On success it returns
// the family names in the order their TYPE lines appeared.
func Validate(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	fams := make(map[string]*familyState)
	var order []string
	var cur *familyState
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q in HELP", lineNo, name)
			}
			if f, ok := fams[name]; ok && f.help {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			fams[name] = &familyState{name: name, help: true,
				seen: make(map[string]bool), hist: make(map[string]*histState)}
			cur = fams[name]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line", lineNo)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown TYPE %q", lineNo, typ)
			}
			f, ok := fams[name]
			if !ok || !f.help {
				return nil, fmt.Errorf("line %d: TYPE %s before its HELP", lineNo, name)
			}
			if f.typ != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			f.typ = typ
			order = append(order, name)
			cur = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		f := sampleFamily(fams, name)
		if f == nil || f.typ == "" {
			return nil, fmt.Errorf("line %d: sample %s before HELP/TYPE", lineNo, name)
		}
		if cur == nil || f != cur {
			return nil, fmt.Errorf("line %d: sample %s outside its family block", lineNo, name)
		}
		if err := checkSample(f, name, labels, value); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, name := range order {
		f := fams[name]
		if f.samples == 0 {
			continue // an empty family (no series yet) is legal
		}
		if f.typ == "histogram" {
			for sig, h := range f.hist {
				if !h.infSeen {
					return nil, fmt.Errorf("histogram %s{%s}: no le=\"+Inf\" bucket", name, sig)
				}
				if !h.sum || !h.count {
					return nil, fmt.Errorf("histogram %s{%s}: missing _sum or _count", name, sig)
				}
				if h.countV != h.infVal {
					return nil, fmt.Errorf("histogram %s{%s}: _count %v != +Inf bucket %v",
						name, sig, h.countV, h.infVal)
				}
			}
		}
	}
	return order, nil
}

// sampleFamily maps a sample name to its family, folding histogram
// suffixes onto the base name.
func sampleFamily(fams map[string]*familyState, name string) *familyState {
	if f, ok := fams[name]; ok {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if f, ok := fams[base]; ok && (f.typ == "histogram" || f.typ == "summary") {
				return f
			}
		}
	}
	return nil
}

// parseSample splits `name{labels} value` into parts, validating the
// grammar of each.
func parseSample(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !metricNameRe.MatchString(name) {
		return "", nil, 0, fmt.Errorf("bad metric name %q", name)
	}
	rest = rest[i:]
	if rest[0] == '{' {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++ // skip the escaped char
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimLeft(rest, " ")
	// An optional timestamp may follow the value; we do not emit them,
	// so reject anything after the first field.
	fields := strings.Fields(rest)
	if len(fields) != 1 {
		return "", nil, 0, fmt.Errorf("expected a single value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		name := s[:eq]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %s: value not quoted", name)
		}
		s = s[1:]
		var val strings.Builder
		closed := false
		for i := 0; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("label %s: dangling escape", name)
				}
				switch s[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("label %s: bad escape \\%c", name, s[i+1])
				}
				i++
				continue
			}
			if c == '"' {
				s = s[i+1:]
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return nil, fmt.Errorf("label %s: unterminated value", name)
		}
		out = append(out, Label{Name: name, Value: val.String()})
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}

// histSeriesKey identifies one histogram sub-series: the full
// name=value label set minus the le bucket label.
func histSeriesKey(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		if l.Name == "le" {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

func labelSignature(labels []Label, dropLe bool) string {
	names := make([]string, 0, len(labels))
	for _, l := range labels {
		if dropLe && l.Name == "le" {
			continue
		}
		names = append(names, l.Name)
	}
	return strings.Join(names, ",")
}

func seriesKey(name string, labels []Label) string {
	var sb strings.Builder
	sb.WriteString(name)
	for _, l := range labels {
		sb.WriteByte('\xff')
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
	}
	return sb.String()
}

func checkSample(f *familyState, name string, labels []Label, value float64) error {
	f.samples++
	key := seriesKey(name, labels)
	if f.seen[key] {
		return fmt.Errorf("duplicate series %s", key)
	}
	f.seen[key] = true
	if f.typ == "counter" && value < 0 {
		return fmt.Errorf("counter %s has negative value %v", name, value)
	}
	if f.typ != "histogram" {
		sig := labelSignature(labels, false)
		if f.labels == "" && f.samples == 1 {
			f.labels = sig
		} else if sig != f.labels {
			return fmt.Errorf("%s: inconsistent label names %q vs %q", name, sig, f.labels)
		}
		return nil
	}
	// Histogram sub-series bookkeeping, keyed by the non-le label
	// name=value pairs — each labeled series (e.g. each route) carries
	// its own bucket ladder, so the ascending/cumulative checks must
	// not bleed across series within the family.
	sig := histSeriesKey(labels)
	h := f.hist[sig]
	if h == nil {
		h = &histState{lastLe: math.Inf(-1)}
		f.hist[sig] = h
	}
	switch {
	case strings.HasSuffix(name, "_bucket"):
		var le string
		for _, l := range labels {
			if l.Name == "le" {
				le = l.Value
			}
		}
		if le == "" {
			return fmt.Errorf("%s: bucket without le label", name)
		}
		if le == "+Inf" {
			h.infSeen = true
			h.infVal = value
			if value < h.lastCum {
				return fmt.Errorf("%s: +Inf bucket %v below cumulative %v", name, value, h.lastCum)
			}
			return nil
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("%s: bad le %q", name, le)
		}
		if h.infSeen {
			return fmt.Errorf("%s: bucket le=%q after +Inf", name, le)
		}
		if bound <= h.lastLe {
			return fmt.Errorf("%s: bucket bounds not ascending at le=%q", name, le)
		}
		if value < h.lastCum {
			return fmt.Errorf("%s: bucket counts not cumulative at le=%q (%v < %v)",
				name, le, value, h.lastCum)
		}
		h.lastLe, h.lastCum = bound, value
	case strings.HasSuffix(name, "_sum"):
		h.sum = true
	case strings.HasSuffix(name, "_count"):
		h.count = true
		h.countV = value
	default:
		return fmt.Errorf("histogram family got plain sample %s", name)
	}
	return nil
}
