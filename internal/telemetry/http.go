package telemetry

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// HeaderRequestID carries the request ID minted at the edge. The
// router forwards it on every member request it fans a read into, so
// one slow scatter-gather correlates across the router's and the
// members' logs.
const HeaderRequestID = "X-Gss-Request-Id"

type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyTrace
)

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// WithRequestID returns ctx carrying the request ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKeyRequestID, id)
}

// newRequestID mints a 16-hex-char random ID. Collision resistance
// only needs to cover concurrent requests in one correlation window,
// so 64 random bits from the fast non-crypto source are plenty.
func newRequestID() string {
	var b [8]byte
	v := rand.Uint64()
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return hex.EncodeToString(b[:])
}

// Trace accumulates the per-member spans of one request as it fans
// out, for the slow-query log. Safe for concurrent use — scatter
// goroutines append in parallel.
type Trace struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// SpanRecord is one downstream call inside a traced request.
type SpanRecord struct {
	Target   string        // member base URL (or other downstream name)
	Op       string        // path+query issued
	Attempts int           // total tries the retry discipline spent
	Duration time.Duration // wall time across all attempts
	Err      string        // "" on success
}

// TraceFrom returns the Trace carried by ctx, or nil when the request
// is not being traced.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKeyTrace).(*Trace)
	return t
}

// WithTrace returns ctx carrying t.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKeyTrace, t)
}

// Add records one span.
func (t *Trace) Add(s SpanRecord) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// HTTPMetrics wires per-route instrumentation over a mux's handlers:
// a request counter by status class, an in-flight gauge and a latency
// histogram per route, all registered once at Wrap time so the
// request path touches only atomics. The wrapped handler's response
// bytes pass through untouched — instrumentation must never change
// what is on the wire.
type HTTPMetrics struct {
	reg  *Registry
	slow *SlowQueryLog // nil disables slow-query logging
}

// NewHTTPMetrics builds the middleware factory for one registry.
// slow may be nil.
func NewHTTPMetrics(reg *Registry, slow *SlowQueryLog) *HTTPMetrics {
	return &HTTPMetrics{reg: reg, slow: slow}
}

// routeInstruments is the pre-registered per-route set.
type routeInstruments struct {
	byClass  [6]*Counter // index = status/100; 0 collects the impossible
	inFlight *Gauge
	latency  *Histogram
}

// Wrap instruments h under the given route label. The same route can
// be wrapped repeatedly (handlers are rebuilt in tests); counts
// accumulate on the same series. Every request gets a request ID: an
// incoming X-Gss-Request-Id (minted by an upstream router) is adopted,
// otherwise one is minted here, and either way it is echoed on the
// response and carried in the request context.
func (hm *HTTPMetrics) Wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	ri := &routeInstruments{
		inFlight: hm.reg.Gauge("gss_http_in_flight",
			"Requests currently being served, by route.", L("route", route)),
		latency: hm.reg.Histogram("gss_http_request_seconds",
			"Request latency in seconds, by route.", nil, L("route", route)),
	}
	for class := 1; class <= 5; class++ {
		ri.byClass[class] = hm.reg.Counter("gss_http_requests_total",
			"Requests served, by route and status class.",
			L("route", route), L("class", strconv.Itoa(class)+"xx"))
	}
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(HeaderRequestID)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(HeaderRequestID, id)
		ctx := WithRequestID(r.Context(), id)
		var trace *Trace
		if hm.slow != nil {
			trace = &Trace{}
			ctx = WithTrace(ctx, trace)
		}
		r = r.WithContext(ctx)

		ri.inFlight.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		elapsed := time.Since(start)
		ri.inFlight.Dec()
		ri.latency.Observe(elapsed.Seconds())
		class := sw.status() / 100
		if class < 1 || class > 5 {
			class = 0
		}
		if c := ri.byClass[class]; c != nil {
			c.Inc()
		}
		if hm.slow != nil {
			hm.slow.observe(route, id, elapsed, sw.status(), trace)
		}
	}
}

// statusWriter records the status code while passing everything else
// through byte-identically. It forwards Flush so streaming handlers
// behave the same instrumented, and exposes Unwrap for
// http.ResponseController.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK // handler wrote nothing: net/http sends 200
	}
	return w.code
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
