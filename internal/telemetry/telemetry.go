// Package telemetry is the repo's zero-dependency metrics plane: a
// registry of atomic counters, gauges and fixed-bucket histograms with
// Prometheus text exposition (served at GET /metrics by both
// gss-server and gss-router), plus the request-tracing, slow-query
// logging and pprof plumbing the HTTP tier shares.
//
// The design splits registration from observation so the hot path
// stays lock-free: instrumentation sites call Registry.Counter /
// Gauge / Histogram ONCE at wiring time (the registry takes a mutex
// there) and keep the returned handle; every subsequent Inc / Add /
// Observe is a plain atomic operation with no map lookup and no lock.
// On-demand values — sketch occupancy, oplog sequences, follower lag —
// register as GaugeFunc / CounterFunc closures evaluated only when a
// scrape happens, so idle metrics cost nothing.
//
// All handles are safe for concurrent use, and the zero value of
// Counter and Gauge is usable standalone (no registry) — packages like
// internal/faultproxy use them as documented-memory-order counters
// without exporting anything.
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// ready to use. Value loads with the same acquire semantics the atomic
// package documents, so a test that reads a counter another goroutine
// bumped observes a consistent value without extra synchronization.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotonic; callers must not pass negative n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency histogram bounds in seconds:
// half a millisecond to ten seconds, roughly exponential — wide enough
// for an in-memory sketch read (tens of µs land in the first bucket)
// and a retried cross-member scatter (seconds land in the last ones).
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are chosen
// at registration and never change, so Observe is a linear scan over a
// small array plus three atomics — no locks, no allocation.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile returns an estimate of the q-quantile (0 < q < 1) from the
// bucket counts: the upper bound of the bucket the quantile falls in,
// or the largest finite bound when it falls in the +Inf bucket. Used
// by the slow-query plumbing and tests; scrapers compute quantiles
// from the exposed buckets instead.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if cum >= rank {
			return b
		}
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Label is one name="value" pair on a metric series. Series under a
// family must all carry the same label names in the same order.
type Label struct{ Name, Value string }

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family: exactly one of the value
// fields is set.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	cfn    func() int64
	gfn    func() float64
	h      *Histogram
}

// family is all the series sharing one metric name.
type family struct {
	name, help string
	kind       metricKind
	labelNames []string

	mu     sync.Mutex
	series []*series
	index  map[string]*series // keyed by the joined label values
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. Registration takes the registry lock;
// observation through the returned handles does not.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Value)
		sb.WriteByte('\xff')
	}
	return sb.String()
}

// family returns (creating if needed) the family for name, checking
// that kind and label names match any earlier registration. Metric
// and label names are wiring-time constants, so a mismatch is a
// programming error and panics rather than limping along with a
// family that cannot expose coherently.
func (r *Registry) family(name, help string, kind metricKind, labels []Label) *family {
	names := make([]string, len(labels))
	for i, l := range labels {
		names[i] = l.Name
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, labelNames: names,
			index: make(map[string]*series)}
		r.fams[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: %s registered as %s, now requested as %s", name, f.kind, kind))
	}
	if len(f.labelNames) != len(names) {
		panic(fmt.Sprintf("telemetry: %s registered with labels %v, now requested with %v", name, f.labelNames, names))
	}
	for i := range names {
		if f.labelNames[i] != names[i] {
			panic(fmt.Sprintf("telemetry: %s registered with labels %v, now requested with %v", name, f.labelNames, names))
		}
	}
	return f
}

// lookupOrAdd returns the existing series for the label values, or
// installs one built by mk. Registration is idempotent: asking for the
// same (name, label values) twice returns the same handle, so a
// rebuilt handler or a re-added cluster member keeps its counts.
func (f *family) lookupOrAdd(labels []Label, mk func() *series) *series {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.index[key]; ok {
		return s
	}
	s := mk()
	f.index[key] = s
	f.series = append(f.series, s)
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, kindCounter, labels)
	s := f.lookupOrAdd(labels, func() *series {
		return &series{labels: labels, c: &Counter{}}
	})
	if s.c == nil {
		panic(fmt.Sprintf("telemetry: %s%v registered as a counter func, now requested as a counter", name, labels))
	}
	return s.c
}

// CounterFunc registers a counter whose value is computed at scrape
// time — the bridge for monotonic counts that already live in another
// subsystem's stats (oplog appends, pipeline drops) without moving
// them. Re-registering the same series replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	f := r.family(name, help, kindCounter, labels)
	s := f.lookupOrAdd(labels, func() *series {
		return &series{labels: labels}
	})
	f.mu.Lock()
	s.cfn = fn
	f.mu.Unlock()
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, kindGauge, labels)
	s := f.lookupOrAdd(labels, func() *series {
		return &series{labels: labels, g: &Gauge{}}
	})
	if s.g == nil {
		panic(fmt.Sprintf("telemetry: %s%v registered as a gauge func, now requested as a gauge", name, labels))
	}
	return s.g
}

// GaugeFunc registers a gauge computed at scrape time. Re-registering
// the same series replaces the function — a follower that reconnects
// re-points the lag gauge at its new stats without leaking the old
// closure.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, kindGauge, labels)
	s := f.lookupOrAdd(labels, func() *series {
		return &series{labels: labels}
	})
	f.mu.Lock()
	s.gfn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns the existing) histogram series.
// bounds are ascending upper bucket bounds in the observed unit
// (seconds for latencies); nil means DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: %s histogram bounds not ascending: %v", name, bounds))
		}
	}
	f := r.family(name, help, kindHistogram, labels)
	s := f.lookupOrAdd(labels, func() *series {
		return &series{labels: labels, h: &Histogram{
			bounds: bounds, counts: make([]atomic.Int64, len(bounds))}}
	})
	return s.h
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatLabels renders {a="x",b="y"}, with extra appended after the
// series labels (histogram "le").
func formatLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatValue renders a sample value the way Prometheus expects:
// integers without an exponent, floats with full precision.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Write renders the registry in the Prometheus text exposition
// format (version 0.0.4), families sorted by name and series by label
// values, so two scrapes of identical state are byte-identical.
func (r *Registry) Write(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		// Snapshot the series — including the func pointers, which
		// re-registration may swap under f.mu — so the render loop never
		// reads a field another goroutine is writing.
		f.mu.Lock()
		series := make([]series, len(f.series))
		for i, s := range f.series {
			series[i] = *s
		}
		f.mu.Unlock()
		sort.Slice(series, func(i, j int) bool {
			return labelKey(series[i].labels) < labelKey(series[j].labels)
		})
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range series {
			switch {
			case s.h != nil:
				var cum int64
				for i, b := range s.h.bounds {
					cum += s.h.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
						formatLabels(s.labels, L("le", formatValue(b))), cum)
				}
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name,
					formatLabels(s.labels, L("le", "+Inf")), s.h.Count())
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name,
					formatLabels(s.labels), formatValue(s.h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name,
					formatLabels(s.labels), s.h.Count())
			case s.c != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, formatLabels(s.labels), s.c.Value())
			case s.g != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, formatLabels(s.labels), s.g.Value())
			case s.cfn != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, formatLabels(s.labels), s.cfn())
			case s.gfn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, formatLabels(s.labels), formatValue(s.gfn()))
			}
		}
	}
	return bw.Flush()
}

// Families returns the sorted registered family names (for golden
// tests that pin the metric set).
func (r *Registry) Families() []string {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	return names
}

// Handler serves the exposition at GET (or HEAD) /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Write(w)
	})
}
