package telemetry

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// SlowQueryLog asynchronously logs requests that ran past a threshold,
// with the per-member span trace when one was recorded — the flight
// recorder for "why was this one scatter-gather slow". Logging runs on
// its own goroutine so the request path pays one channel send, and a
// full channel drops the record (counted) rather than stalling a
// handler on the logger.
type SlowQueryLog struct {
	threshold time.Duration
	logger    *slog.Logger
	ch        chan slowRecord
	done      chan struct{}
	dropped   Counter
	closeOnce sync.Once
}

type slowRecord struct {
	route   string
	id      string
	elapsed time.Duration
	status  int
	trace   *Trace
}

// NewSlowQueryLog starts the logging goroutine. threshold must be
// positive; logger nil means slog.Default(). Close stops the
// goroutine after draining queued records.
func NewSlowQueryLog(threshold time.Duration, logger *slog.Logger) *SlowQueryLog {
	if logger == nil {
		logger = slog.Default()
	}
	l := &SlowQueryLog{
		threshold: threshold,
		logger:    logger,
		ch:        make(chan slowRecord, 64),
		done:      make(chan struct{}),
	}
	go l.loop()
	return l
}

// Threshold returns the configured slow threshold.
func (l *SlowQueryLog) Threshold() time.Duration { return l.threshold }

// Dropped counts records lost to a full log queue.
func (l *SlowQueryLog) Dropped() int64 { return l.dropped.Value() }

// observe enqueues one finished request if it crossed the threshold.
func (l *SlowQueryLog) observe(route, id string, elapsed time.Duration, status int, trace *Trace) {
	if elapsed < l.threshold {
		return
	}
	select {
	case l.ch <- slowRecord{route: route, id: id, elapsed: elapsed, status: status, trace: trace}:
	default:
		l.dropped.Inc()
	}
}

func (l *SlowQueryLog) loop() {
	defer close(l.done)
	for rec := range l.ch {
		attrs := []any{
			slog.String("route", rec.route),
			slog.String("request_id", rec.id),
			slog.Int64("elapsed_ms", rec.elapsed.Milliseconds()),
			slog.Int("status", rec.status),
			slog.String("threshold", l.threshold.String()),
		}
		if spans := rec.trace.Spans(); len(spans) > 0 {
			parts := make([]string, len(spans))
			for i, s := range spans {
				p := fmt.Sprintf("%s %s attempts=%d ms=%d",
					s.Target, s.Op, s.Attempts, s.Duration.Milliseconds())
				if s.Err != "" {
					p += " err=" + s.Err
				}
				parts[i] = p
			}
			attrs = append(attrs, slog.String("members", strings.Join(parts, "; ")))
		}
		l.logger.Warn("slow query", attrs...)
	}
}

// Close stops the logger goroutine after draining what is queued.
// Safe to call more than once; the caller must not observe afterwards.
func (l *SlowQueryLog) Close() {
	l.closeOnce.Do(func() {
		close(l.ch)
		<-l.done
	})
}

// Logf adapts a structured logger to the `func(format, args...)`
// signature threaded through the pre-slog layers (server.Options.Logf,
// cluster.Config.Logf). The format-string call sites keep working
// unmodified; their output lands in the structured stream at Info.
func Logf(logger *slog.Logger) func(format string, args ...interface{}) {
	if logger == nil {
		logger = slog.Default()
	}
	return func(format string, args ...interface{}) {
		logger.Info(fmt.Sprintf(format, args...))
	}
}
