package telemetry

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Dec()
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
	// Re-registration returns the same handle with counts intact.
	if again := r.Counter("test_ops_total", "ops"); again.Value() != 5 {
		t.Fatalf("re-registered counter lost its value: %d", again.Value())
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %v, want bucket bound 1", q)
	}
	if q := h.Quantile(0.99); q != 10 {
		t.Fatalf("p99 = %v, want largest finite bound 10", q)
	}
}

func TestLabeledSeriesIndependent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_reqs_total", "reqs", L("route", "/a"))
	b := r.Counter("test_reqs_total", "reqs", L("route", "/b"))
	a.Add(3)
	b.Add(9)
	if a.Value() != 3 || b.Value() != 9 {
		t.Fatalf("labeled series not independent: %d, %d", a.Value(), b.Value())
	}
	if same := r.Counter("test_reqs_total", "reqs", L("route", "/a")); same != a {
		t.Fatal("same label values did not return the same handle")
	}
}

func TestMismatchedRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x_total", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same name as a gauge did not panic")
		}
	}()
	r.Gauge("test_x_total", "x")
}

// TestExpositionValidates round-trips a fully loaded registry through
// the strict hand-rolled validator: every metric type, labeled and
// unlabeled series, escaped label values, scrape-time funcs.
func TestExpositionValidates(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests.", L("route", "/x"), L("class", "2xx")).Add(12)
	r.Counter("app_requests_total", "Requests.", L("route", "/y"), L("class", "5xx")).Inc()
	r.Gauge("app_in_flight", "In flight.").Set(3)
	r.GaugeFunc("app_occupancy", "Occupancy.", func() float64 { return 0.375 })
	r.CounterFunc("app_synced_total", "Syncs.", func() int64 { return 42 })
	h := r.Histogram("app_latency_seconds", "Latency.", nil, L("route", "/x"))
	h.Observe(0.002)
	h.Observe(0.3)
	h.Observe(30) // lands in +Inf
	r.Counter("app_weird_total", "Escapes.", L("member", "http://a:1/\"q\"\n")).Inc()

	var buf bytes.Buffer
	if err := r.Write(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := Validate(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exposition failed strict validation: %v\n%s", err, buf.String())
	}
	want := []string{"app_in_flight", "app_latency_seconds", "app_occupancy",
		"app_requests_total", "app_synced_total", "app_weird_total"}
	if strings.Join(fams, " ") != strings.Join(want, " ") {
		t.Fatalf("families = %v, want %v", fams, want)
	}
	// Two scrapes of identical state must be byte-identical.
	var again bytes.Buffer
	if err := r.Write(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("two scrapes of identical state differ")
	}
}

// TestValidatorRejectsMalformed feeds the validator hand-broken
// expositions; a validator that cannot fail is not validating.
func TestValidatorRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before HELP/TYPE": "a_total 1\n",
		"TYPE before HELP":        "# TYPE a_total counter\na_total 1\n",
		"bad metric name":         "# HELP 9bad x\n# TYPE 9bad counter\n9bad 1\n",
		"bad label name": "# HELP a x\n# TYPE a counter\n" +
			"a{9bad=\"v\"} 1\n",
		"unquoted label value": "# HELP a x\n# TYPE a counter\na{l=v} 1\n",
		"bad escape":           "# HELP a x\n# TYPE a counter\na{l=\"\\q\"} 1\n",
		"bad value":            "# HELP a x\n# TYPE a counter\na{l=\"v\"} one\n",
		"negative counter":     "# HELP a x\n# TYPE a counter\na -1\n",
		"duplicate series":     "# HELP a x\n# TYPE a counter\na 1\na 2\n",
		"inconsistent labels": "# HELP a x\n# TYPE a gauge\n" +
			"a{l=\"v\"} 1\na{m=\"v\"} 2\n",
		"unknown type": "# HELP a x\n# TYPE a widget\na 1\n",
		"histogram buckets not cumulative": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"histogram bounds not ascending": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
		"histogram missing +Inf": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n",
		"histogram missing sum": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 1\nh_count 1\n",
		"histogram count mismatch": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 2\n",
		"sample outside family block": "# HELP a x\n# TYPE a counter\n" +
			"# HELP b x\n# TYPE b counter\na 1\n",
	}
	for name, body := range cases {
		if _, err := Validate(strings.NewReader(body)); err == nil {
			t.Errorf("%s: validator accepted malformed exposition:\n%s", name, body)
		}
	}
}

// TestConcurrentObservation hammers all three metric kinds from many
// goroutines while a scraper renders — the -race pass proves the hot
// path needs no external synchronization.
func TestConcurrentObservation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_total", "t")
	g := r.Gauge("t_gauge", "t")
	h := r.Histogram("t_seconds", "t", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Add(1)
				g.Dec()
				h.Observe(float64(j) / 1000)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf bytes.Buffer
			for j := 0; j < 50; j++ {
				buf.Reset()
				if err := r.Write(&buf); err != nil {
					t.Error(err)
					return
				}
				if _, err := Validate(bytes.NewReader(buf.Bytes())); err != nil {
					t.Errorf("mid-flight scrape invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
}
