package query

import (
	"reflect"
	"testing"

	"repro/internal/gss"
	"repro/internal/stream"
	"repro/internal/tcm"
	"repro/internal/vf2"
)

// summaries under test: every compound query must behave on all of them.
func testSummaries() map[string]Summary {
	return map[string]Summary{
		"exact": NewExact(),
		"gss":   gss.MustNew(gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}),
		"tcm":   tcm.MustNew(tcm.Config{Width: 512, Depth: 4}),
	}
}

func chainItems() []stream.Item {
	return []stream.Item{
		{Src: "a", Dst: "b", Weight: 2},
		{Src: "b", Dst: "c", Weight: 3},
		{Src: "c", Dst: "d", Weight: 4},
		{Src: "a", Dst: "c", Weight: 5},
		{Src: "x", Dst: "y", Weight: 1},
	}
}

func TestNodeOutAcrossSummaries(t *testing.T) {
	for name, s := range testSummaries() {
		Build(s, stream.NewSliceSource(chainItems()))
		if got := NodeOut(s, "a"); got < 7 {
			t.Errorf("%s: NodeOut(a) = %d, want >= 7", name, got)
		}
		if got := NodeIn(s, "c"); got < 8 {
			t.Errorf("%s: NodeIn(c) = %d, want >= 8", name, got)
		}
		if got := NodeOut(s, "y"); got != 0 {
			t.Errorf("%s: NodeOut(y) = %d, want 0", name, got)
		}
	}
}

func TestReachableAcrossSummaries(t *testing.T) {
	for name, s := range testSummaries() {
		Build(s, stream.NewSliceSource(chainItems()))
		if !Reachable(s, "a", "d") {
			t.Errorf("%s: a->d must be reachable", name)
		}
		if !Reachable(s, "a", "a") {
			t.Errorf("%s: trivial reachability failed", name)
		}
		// Summaries have false positives only; the exact store must be
		// exactly right on negatives.
		if name == "exact" && Reachable(s, "d", "a") {
			t.Errorf("%s: d->a must be unreachable", name)
		}
	}
}

func TestPath(t *testing.T) {
	s := NewExact()
	Build(s, stream.NewSliceSource(chainItems()))
	p := Path(s, "a", "d")
	if len(p) < 3 || p[0] != "a" || p[len(p)-1] != "d" {
		t.Fatalf("Path(a,d) = %v", p)
	}
	// Every hop must be a real edge.
	for i := 0; i+1 < len(p); i++ {
		if _, ok := s.EdgeWeight(p[i], p[i+1]); !ok {
			t.Fatalf("path hop (%s,%s) is not an edge", p[i], p[i+1])
		}
	}
	if Path(s, "d", "a") != nil {
		t.Fatal("nonexistent path returned")
	}
	if got := Path(s, "a", "a"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("trivial path = %v", got)
	}
}

func TestTriangles(t *testing.T) {
	tri := []stream.Item{
		{Src: "a", Dst: "b", Weight: 1},
		{Src: "b", Dst: "c", Weight: 1},
		{Src: "c", Dst: "a", Weight: 1},
		{Src: "c", Dst: "d", Weight: 1},
	}
	for _, name := range []string{"exact", "gss"} {
		s := testSummaries()[name]
		Build(s, stream.NewSliceSource(tri))
		if got := Triangles(s); got != 1 {
			t.Errorf("%s: Triangles = %d, want 1", name, got)
		}
	}
}

func TestTrianglesMatchesExactOnStream(t *testing.T) {
	items := stream.Generate(stream.CitHepPh().Scaled(0.004))
	exact := NewExact()
	g := gss.MustNew(gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	for _, it := range items {
		exact.Insert(it)
		g.Insert(it)
	}
	want := exact.G.Triangles()
	got := Triangles(g)
	// GSS has false-positive edges only, so its count can exceed but
	// not trail the exact count; with 16-bit fingerprints it should be
	// nearly exact.
	if got < want {
		t.Fatalf("GSS triangle count %d below exact %d", got, want)
	}
	if want > 0 && float64(got-want)/float64(want) > 0.05 {
		t.Fatalf("GSS triangle count %d too far above exact %d", got, want)
	}
	// And the query.Triangles path on the exact store must agree with
	// the specialized adjlist implementation.
	if viaQuery := Triangles(exact); viaQuery != want {
		t.Fatalf("query.Triangles(exact) = %d, adjlist = %d", viaQuery, want)
	}
}

func TestReconstruct(t *testing.T) {
	items := chainItems()
	s := NewExact()
	Build(s, stream.NewSliceSource(items))
	got := Reconstruct(s)
	if len(got) != len(items) {
		t.Fatalf("Reconstruct returned %d edges, want %d", len(got), len(items))
	}
	for _, it := range items {
		found := false
		for _, e := range got {
			if e.Src == it.Src && e.Dst == it.Dst && e.Weight == it.Weight {
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %v missing from reconstruction", it)
		}
	}
}

func TestReconstructGSSCoversStream(t *testing.T) {
	items := stream.Generate(stream.EmailEuAll().Scaled(0.001))
	g := gss.MustNew(gss.Config{Width: 48, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	exact := NewExact()
	for _, it := range items {
		g.Insert(it)
		exact.Insert(it)
	}
	rec := map[[2]string]int64{}
	for _, e := range Reconstruct(g) {
		rec[[2]string{e.Src, e.Dst}] = e.Weight
	}
	for _, e := range Reconstruct(exact) {
		w, ok := rec[[2]string{e.Src, e.Dst}]
		if !ok {
			t.Fatalf("reconstruction lost edge (%s,%s)", e.Src, e.Dst)
		}
		if w < e.Weight {
			t.Fatalf("reconstruction underestimates (%s,%s): %d < %d", e.Src, e.Dst, w, e.Weight)
		}
	}
}

func TestDegree(t *testing.T) {
	s := NewExact()
	Build(s, stream.NewSliceSource(chainItems()))
	out, in := Degree(s, "c")
	if out != 1 || in != 2 {
		t.Fatalf("Degree(c) = %d,%d want 1,2", out, in)
	}
}

func TestLabeledViewSubgraphMatching(t *testing.T) {
	// End-to-end §VII-I flow: deduplicated labeled window edges go into
	// GSS with weight = label; VF2 matches against the sketch view.
	g := gss.MustNew(gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	edges := []stream.Item{
		{Src: "a", Dst: "b", Weight: 3}, // label 3
		{Src: "b", Dst: "c", Weight: 7},
		{Src: "c", Dst: "a", Weight: 9},
	}
	for _, e := range edges {
		g.Insert(e)
	}
	view := NewLabeledView(g)
	p := vf2.Pattern{N: 3, Edges: []vf2.Edge{
		{From: 0, To: 1, Label: 3}, {From: 1, To: 2, Label: 7}, {From: 2, To: 0, Label: 9}}}
	assign, ok := vf2.FindOne(view, p)
	if !ok {
		t.Fatal("labeled triangle not found through GSS view")
	}
	if assign[0] != "a" || assign[1] != "b" || assign[2] != "c" {
		t.Fatalf("assignment = %v", assign)
	}
	bad := vf2.Pattern{N: 2, Edges: []vf2.Edge{{From: 0, To: 1, Label: 99}}}
	if _, ok := vf2.FindOne(view, bad); ok {
		t.Fatal("phantom label matched")
	}
}

func TestBuildDrainsSource(t *testing.T) {
	src := stream.NewSliceSource(chainItems())
	s := Build(NewExact(), src)
	if _, ok := src.Next(); ok {
		t.Fatal("Build left items in the source")
	}
	if len(s.Nodes()) != 6 {
		t.Fatalf("Nodes = %v", s.Nodes())
	}
}
