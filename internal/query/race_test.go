package query

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/gss"
	"repro/internal/stream"
)

// TestHashQueriesParallel hammers the hash-native algorithms from many
// goroutines over one shared concurrent sketch while a writer keeps
// inserting. Under -race this proves the pooled traversal scratch and
// the backend's pooled probe scratch never share state across readers;
// functionally it proves pooled buffers are fully reset between loans
// (a stale frontier or visited map would change answers
// nondeterministically).
func TestHashQueriesParallel(t *testing.T) {
	c, err := gss.NewConcurrent(gss.Config{Width: 64})
	if err != nil {
		t.Fatal(err)
	}
	items := stream.Generate(stream.DatasetConfig{Name: "race", Nodes: 80,
		Edges: 1500, DegreeSkew: 1.5, WeightSkew: 1.3, MaxWeight: 40, Seed: 13})
	c.InsertBatch(items)

	if _, ok := HashView(c); !ok {
		t.Fatal("concurrent backend does not expose the hash plane")
	}

	// Fixed probes with answers recorded up front. The writer below
	// only re-inserts items already in the sketch: weights grow but the
	// edge set — and with it every reachability and k-hop answer — is
	// invariant, so any flip is a scratch-sharing bug, not stream
	// churn.
	probes := []string{items[0].Src, items[1].Src, items[2].Dst, items[3].Dst, "ghost"}
	wantReach := map[[2]string]bool{}
	wantKHop := map[string]string{}
	for _, a := range probes {
		wantKHop[a] = strings.Join(KHop(c, a, 2), ",")
		for _, b := range probes {
			wantReach[[2]string{a, b}] = Reachable(c, a, b)
		}
	}

	var wg, writerWG sync.WaitGroup
	stop := make(chan struct{})
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Insert(items[i%len(items)])
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 60; round++ {
				a := probes[(g+round)%len(probes)]
				b := probes[(g+2*round)%len(probes)]
				if got := Reachable(c, a, b); got != wantReach[[2]string{a, b}] {
					t.Errorf("Reachable(%s,%s) flipped to %v under concurrency", a, b, got)
					return
				}
				if got := strings.Join(KHop(c, a, 2), ","); got != wantKHop[a] {
					t.Errorf("KHop(%s) changed under concurrency", a)
					return
				}
				// Weight-dependent answers drift as the writer bumps
				// weights; these run for race coverage only.
				NodeOut(c, a)
				ShortestPath(c, a, b)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	writerWG.Wait()
}
