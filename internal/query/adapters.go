package query

import (
	"repro/internal/adjlist"
	"repro/internal/stream"
)

// Exact adapts the exact adjacency store to the Summary interface so
// ground truth and sketches run through identical query code.
type Exact struct{ G *adjlist.Graph }

// NewExact returns an empty exact summary.
func NewExact() Exact { return Exact{G: adjlist.New()} }

// Insert implements Summary.
func (e Exact) Insert(it stream.Item) { e.G.Insert(it.Src, it.Dst, it.Weight) }

// EdgeWeight implements Summary.
func (e Exact) EdgeWeight(src, dst string) (int64, bool) { return e.G.EdgeWeight(src, dst) }

// Successors implements Summary.
func (e Exact) Successors(v string) []string { return e.G.Successors(v) }

// Precursors implements Summary.
func (e Exact) Precursors(v string) []string { return e.G.Precursors(v) }

// Nodes implements Summary.
func (e Exact) Nodes() []string { return e.G.Nodes() }

// LabeledView adapts a Summary to the vf2.Graph interface for subgraph
// matching, interpreting edge weights as labels. This is how GSS serves
// the §VII-I experiment: window edges are deduplicated and inserted once
// with weight = label, so an edge query recovers the label.
//
// Set queries against a sketch scan matrix rows, which is far more
// expensive than a map lookup; since a backtracking matcher revisits
// the same nodes constantly, the view memoizes neighbor sets and edge
// labels. The view must not outlive modifications to the summary.
type LabeledView struct {
	S Summary

	succ   map[string][]string
	prec   map[string][]string
	labels map[[2]string]labelEntry
}

type labelEntry struct {
	label uint32
	ok    bool
}

// NewLabeledView returns a memoizing vf2.Graph view of s.
func NewLabeledView(s Summary) *LabeledView {
	return &LabeledView{
		S:      s,
		succ:   make(map[string][]string),
		prec:   make(map[string][]string),
		labels: make(map[[2]string]labelEntry),
	}
}

// Nodes implements vf2.Graph.
func (lv *LabeledView) Nodes() []string { return lv.S.Nodes() }

// Successors implements vf2.Graph.
func (lv *LabeledView) Successors(v string) []string {
	if out, ok := lv.succ[v]; ok {
		return out
	}
	out := lv.S.Successors(v)
	lv.succ[v] = out
	return out
}

// Precursors implements vf2.Graph.
func (lv *LabeledView) Precursors(v string) []string {
	if out, ok := lv.prec[v]; ok {
		return out
	}
	out := lv.S.Precursors(v)
	lv.prec[v] = out
	return out
}

// EdgeLabel implements vf2.Graph.
func (lv *LabeledView) EdgeLabel(src, dst string) (uint32, bool) {
	k := [2]string{src, dst}
	if e, ok := lv.labels[k]; ok {
		return e.label, e.ok
	}
	var e labelEntry
	if w, ok := lv.S.EdgeWeight(src, dst); ok && w > 0 {
		e = labelEntry{label: uint32(w), ok: true}
	}
	lv.labels[k] = e
	return e.label, e.ok
}
