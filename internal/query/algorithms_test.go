package query

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/gss"
	"repro/internal/stream"
)

func diamondItems() []stream.Item {
	// a -> b -> d, a -> c -> d, d -> e; island: x -> y
	return []stream.Item{
		{Src: "a", Dst: "b", Weight: 1}, {Src: "b", Dst: "d", Weight: 4},
		{Src: "a", Dst: "c", Weight: 2}, {Src: "c", Dst: "d", Weight: 1},
		{Src: "d", Dst: "e", Weight: 3}, {Src: "x", Dst: "y", Weight: 1},
	}
}

func TestKHop(t *testing.T) {
	s := NewExact()
	Build(s, stream.NewSliceSource(diamondItems()))
	if got := KHop(s, "a", 1); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("KHop(a,1) = %v", got)
	}
	if got := KHop(s, "a", 2); !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Fatalf("KHop(a,2) = %v", got)
	}
	if got := KHop(s, "a", 10); !reflect.DeepEqual(got, []string{"b", "c", "d", "e"}) {
		t.Fatalf("KHop(a,10) = %v", got)
	}
	if KHop(s, "a", 0) != nil {
		t.Fatal("KHop with k=0 must be empty")
	}
	if KHop(s, "unknown", 3) != nil {
		t.Fatal("KHop of unknown node must be empty")
	}
}

func TestWeaklyConnectedComponents(t *testing.T) {
	s := NewExact()
	Build(s, stream.NewSliceSource(diamondItems()))
	comps := WeaklyConnectedComponents(s)
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	if !reflect.DeepEqual(comps[0], []string{"a", "b", "c", "d", "e"}) {
		t.Fatalf("large component = %v", comps[0])
	}
	if !reflect.DeepEqual(comps[1], []string{"x", "y"}) {
		t.Fatalf("small component = %v", comps[1])
	}
}

func TestPageRank(t *testing.T) {
	s := NewExact()
	Build(s, stream.NewSliceSource(diamondItems()))
	rank := PageRank(s, 0.85, 30)
	var sum float64
	for _, r := range rank {
		if r < 0 {
			t.Fatalf("negative rank: %v", rank)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %f, want 1", sum)
	}
	// d receives from both branches and must outrank the leaves' feeder b.
	if rank["d"] <= rank["b"] {
		t.Fatalf("rank[d]=%f <= rank[b]=%f", rank["d"], rank["b"])
	}
}

func TestPageRankEmpty(t *testing.T) {
	if PageRank(NewExact(), 0.85, 10) != nil {
		t.Fatal("empty graph should rank nil")
	}
}

func TestPageRankAgreesAcrossStores(t *testing.T) {
	items := stream.Generate(stream.CitHepPh().Scaled(0.002))
	exact := NewExact()
	g := gss.MustNew(gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8})
	for _, it := range items {
		exact.Insert(it)
		g.Insert(it)
	}
	re := PageRank(exact, 0.85, 20)
	rg := PageRank(g, 0.85, 20)
	var maxDiff float64
	for v, r := range re {
		if d := math.Abs(r - rg[v]); d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff > 0.01 {
		t.Fatalf("PageRank diverges between exact and GSS: max diff %f", maxDiff)
	}
}

func TestShortestPath(t *testing.T) {
	s := NewExact()
	Build(s, stream.NewSliceSource(diamondItems()))
	path, cost, ok := ShortestPath(s, "a", "d")
	if !ok || cost != 3 {
		t.Fatalf("ShortestPath(a,d) = %v cost=%d ok=%v, want cost 3 via c", path, cost, ok)
	}
	if !reflect.DeepEqual(path, []string{"a", "c", "d"}) {
		t.Fatalf("path = %v", path)
	}
	if _, _, ok := ShortestPath(s, "e", "a"); ok {
		t.Fatal("phantom path found")
	}
	if p, c, ok := ShortestPath(s, "a", "a"); !ok || c != 0 || len(p) != 1 {
		t.Fatalf("trivial path broken: %v %d %v", p, c, ok)
	}
}

func TestShortestPathPrefersLightDetour(t *testing.T) {
	s := NewExact()
	Build(s, stream.NewSliceSource([]stream.Item{
		{Src: "a", Dst: "z", Weight: 100},
		{Src: "a", Dst: "m", Weight: 1},
		{Src: "m", Dst: "z", Weight: 1},
	}))
	path, cost, ok := ShortestPath(s, "a", "z")
	if !ok || cost != 2 || len(path) != 3 {
		t.Fatalf("detour not taken: %v cost=%d", path, cost)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	s := NewExact()
	// Triangle: coefficient 1.
	Build(s, stream.NewSliceSource([]stream.Item{
		{Src: "a", Dst: "b", Weight: 1},
		{Src: "b", Dst: "c", Weight: 1},
		{Src: "c", Dst: "a", Weight: 1},
	}))
	if got := ClusteringCoefficient(s); math.Abs(got-1) > 1e-9 {
		t.Fatalf("triangle coefficient = %f, want 1", got)
	}
	// Star: no triangles, coefficient 0.
	star := NewExact()
	Build(star, stream.NewSliceSource([]stream.Item{
		{Src: "hub", Dst: "l1", Weight: 1},
		{Src: "hub", Dst: "l2", Weight: 1},
		{Src: "hub", Dst: "l3", Weight: 1},
	}))
	if got := ClusteringCoefficient(star); got != 0 {
		t.Fatalf("star coefficient = %f, want 0", got)
	}
	if got := ClusteringCoefficient(NewExact()); got != 0 {
		t.Fatalf("empty coefficient = %f", got)
	}
}

func TestDegreeDistribution(t *testing.T) {
	s := NewExact()
	Build(s, stream.NewSliceSource(diamondItems()))
	hist := DegreeDistribution(s)
	// a has 2 out-edges; b,c,d,x have 1; e,y have 0.
	if hist[2] != 1 || hist[1] != 4 || hist[0] != 2 {
		t.Fatalf("hist = %v", hist)
	}
}

func TestTopKByOutWeight(t *testing.T) {
	s := NewExact()
	Build(s, stream.NewSliceSource(diamondItems()))
	top := TopKByOutWeight(s, 2)
	// b has out weight 4, a has 3.
	if !reflect.DeepEqual(top, []string{"b", "a"}) {
		t.Fatalf("top2 = %v", top)
	}
	if got := TopKByOutWeight(s, 100); len(got) != 7 {
		t.Fatalf("overlong k returned %d nodes", len(got))
	}
}

func TestAlgorithmsRunOnGSS(t *testing.T) {
	// Every algorithm must accept the sketch directly.
	g := gss.MustNew(gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4})
	Build(g, stream.NewSliceSource(diamondItems()))
	if got := KHop(g, "a", 2); len(got) != 3 {
		t.Fatalf("KHop on GSS = %v", got)
	}
	if comps := WeaklyConnectedComponents(g); len(comps) != 2 {
		t.Fatalf("components on GSS = %v", comps)
	}
	if _, cost, ok := ShortestPath(g, "a", "e"); !ok || cost != 6 {
		t.Fatalf("ShortestPath on GSS cost = %d ok=%v", cost, ok)
	}
}
