package query

import (
	"container/heap"
	"slices"
	"sort"
	"sync"
)

// HashSummary is the hash-native query plane of a summary: the same
// three primitives as Summary, but over the uint64 hash values the
// sketch actually stores. Compound algorithms traverse hashes with
// dense integer frontiers and expand to original identifiers once at
// the API edge, instead of paying hash -> string expansion, a string
// sort and a fresh visited map on every hop.
//
// The Append* methods append to a caller-provided buffer and return it,
// so steady-state traversals allocate nothing on the summary side.
// Results are duplicate-free but unordered.
//
// The plane is tied to the node index: only hash values with at least
// one registered identifier are traversed (AppendHashIDs returning
// empty marks a false-positive hash the string plane's expand would
// silently drop), which keeps both planes answering identically.
// Identifiers that collide onto one hash value are treated as a single
// node here, where the string plane enumerates them separately; the
// node map makes collisions rare by design, and StripHash always
// recovers the reference behavior.
type HashSummary interface {
	// NodeHash maps an original identifier into the summary's hash space.
	NodeHash(v string) uint64
	// EdgeWeightHash is the edge query primitive over hash values.
	EdgeWeightHash(hs, hd uint64) (int64, bool)
	// AppendSuccessorHashes appends the 1-hop successor hashes of hv.
	AppendSuccessorHashes(hv uint64, dst []uint64) []uint64
	// AppendPrecursorHashes appends the 1-hop precursor hashes of hv.
	AppendPrecursorHashes(hv uint64, dst []uint64) []uint64
	// AppendNodeHashes appends every registered node hash, deduplicated.
	AppendNodeHashes(dst []uint64) []uint64
	// AppendHashIDs appends the original identifiers registered under hv.
	AppendHashIDs(hv uint64, dst []string) []string
	// SupportsHashQueries reports whether the plane is actually backed;
	// wrappers around hash-incapable summaries return false and callers
	// fall back to the string plane.
	SupportsHashQueries() bool
}

// HashView returns the hash-native plane of s when it has a backed one.
// The compound algorithms in this package call it to pick their fast
// path; summaries that don't implement HashSummary (or whose node index
// is disabled) run the string-based reference implementations instead.
func HashView(s Summary) (HashSummary, bool) {
	h, ok := s.(HashSummary)
	if !ok || !h.SupportsHashQueries() {
		return nil, false
	}
	return h, true
}

// StripHash hides s's hash-native plane, forcing every algorithm in
// this package onto the string-based reference implementations. The
// equivalence suite pins the fast path to the reference with it, and
// gss-bench uses it as the before-side of traversal speedups.
func StripHash(s Summary) Summary { return stripped{s} }

type stripped struct{ Summary }

// traversal is the pooled scratch a hash-native algorithm needs: the
// hash -> dense id assignment, the dense id -> hash reverse, an integer
// frontier, and reusable buffers for neighbor and identifier lookups.
// Dense ids make visited checks and frontiers slice-indexed; the map is
// touched once per distinct hash, not once per edge.
type traversal struct {
	ids    map[uint64]int32 // hash -> dense id
	hashes []uint64         // dense id -> hash
	queue  []int32
	nbr    []uint64
	idbuf  []string
}

var traversalPool = sync.Pool{New: func() interface{} {
	return &traversal{ids: make(map[uint64]int32)}
}}

func getTraversal() *traversal { return traversalPool.Get().(*traversal) }

func putTraversal(t *traversal) {
	clear(t.ids)
	t.hashes = t.hashes[:0]
	t.queue = t.queue[:0]
	t.nbr = t.nbr[:0]
	t.idbuf = t.idbuf[:0]
	traversalPool.Put(t)
}

// intern assigns (or returns) the dense id of hv.
func (t *traversal) intern(hv uint64) (id int32, fresh bool) {
	if id, ok := t.ids[hv]; ok {
		return id, false
	}
	id = int32(len(t.hashes))
	t.ids[hv] = id
	t.hashes = append(t.hashes, hv)
	return id, true
}

// registered reports whether hv has at least one registered identifier
// — the hashes the string plane's expand would keep.
func (t *traversal) registered(h HashSummary, hv uint64) bool {
	t.idbuf = h.AppendHashIDs(hv, t.idbuf[:0])
	return len(t.idbuf) > 0
}

// hashHasID reports whether id is registered under hv.
func (t *traversal) hashHasID(h HashSummary, hv uint64, id string) bool {
	t.idbuf = h.AppendHashIDs(hv, t.idbuf[:0])
	for _, have := range t.idbuf {
		if have == id {
			return true
		}
	}
	return false
}

// reachableHash answers Reachable over the hash plane with a
// bidirectional BFS: a forward frontier over successor queries from src
// and a backward frontier over precursor queries from dst, always
// expanding the smaller side. The reverse column index is what makes
// the backward half as cheap as the forward one — precisely the
// reverse-query capability TCM-style baselines are sold on. The answer
// is identical to the one-directional reference: a directed path
// src ->* dst through registered intermediate hashes exists iff the two
// frontiers meet (at a registered hash or at either endpoint's hash).
// Frontiers only cross registered hashes, matching the reference whose
// expand step drops unregistered recoveries, and dst counts as
// reachable only if it is itself registered — the string BFS can only
// ever see dst as an expanded identifier.
func reachableHash(h HashSummary, src, dst string) bool {
	if src == dst {
		return true
	}
	t := getTraversal()
	defer putTraversal(t)
	ht := h.NodeHash(dst)
	if !t.hashHasID(h, ht, dst) {
		return false
	}
	hs := h.NodeHash(src)
	if hs == ht {
		// src and dst are distinct identifiers on the same sketch node.
		// The string BFS only answers true when dst shows up in some
		// visited node's successor list, i.e. when an edge back into
		// this hash exists — so the question becomes "does hs lie on a
		// directed cycle", not a bidirectional search between two
		// distinct hashes.
		return selfReach(h, t, hs)
	}
	// The pooled ids map doubles as the side tag here: fwd or bwd
	// instead of dense ids. hs and ht are pre-tagged, so the case-0
	// branches below only ever see interior hashes.
	const fwd, bwd = 1, 2
	side := t.ids
	side[hs], side[ht] = fwd, bwd
	fq := []uint64{hs}
	bq := []uint64{ht}
	for len(fq) > 0 && len(bq) > 0 {
		if len(fq) <= len(bq) {
			var next []uint64
			for _, hv := range fq {
				t.nbr = h.AppendSuccessorHashes(hv, t.nbr[:0])
				for _, n := range t.nbr {
					switch side[n] {
					case bwd:
						return true
					case 0:
						if !t.registered(h, n) {
							continue
						}
						side[n] = fwd
						next = append(next, n)
					}
				}
			}
			fq = next
		} else {
			var next []uint64
			for _, hv := range bq {
				t.nbr = h.AppendPrecursorHashes(hv, t.nbr[:0])
				for _, n := range t.nbr {
					switch side[n] {
					case fwd:
						return true
					case 0:
						if !t.registered(h, n) {
							continue
						}
						side[n] = bwd
						next = append(next, n)
					}
				}
			}
			bq = next
		}
	}
	return false
}

// selfReach reports whether sketch node hv lies on a directed cycle
// (including a self-loop) through registered hashes — the condition for
// src to reach dst when both map to the same hash. One forward BFS from
// hv looking for hv again.
func selfReach(h HashSummary, t *traversal, hv uint64) bool {
	start, _ := t.intern(hv)
	t.queue = append(t.queue[:0], start)
	for len(t.queue) > 0 {
		cur := t.queue[0]
		t.queue = t.queue[1:]
		t.nbr = h.AppendSuccessorHashes(t.hashes[cur], t.nbr[:0])
		for _, n := range t.nbr {
			if n == hv {
				return true
			}
			if _, ok := t.ids[n]; ok {
				continue
			}
			if !t.registered(h, n) {
				continue
			}
			id, _ := t.intern(n)
			t.queue = append(t.queue, id)
		}
	}
	return false
}

// kHopHash is KHop over the hash plane: BFS to depth k with dense
// frontiers, one expansion to identifiers at the end.
func kHopHash(h HashSummary, v string, k int) []string {
	if k <= 0 {
		return nil
	}
	t := getTraversal()
	defer putTraversal(t)
	start, _ := t.intern(h.NodeHash(v))
	frontier := append(t.queue[:0], start)
	var next []int32
	for depth := 0; depth < k && len(frontier) > 0; depth++ {
		next = next[:0]
		for _, cur := range frontier {
			t.nbr = h.AppendSuccessorHashes(t.hashes[cur], t.nbr[:0])
			for _, hv := range t.nbr {
				if _, ok := t.ids[hv]; ok {
					continue
				}
				if !t.registered(h, hv) {
					continue
				}
				id, _ := t.intern(hv)
				next = append(next, id)
			}
		}
		frontier, next = next, frontier
	}
	// Everything interned beyond the start node was reached within k
	// hops; expand once and sort once at the string boundary.
	var out []string
	for _, hv := range t.hashes[1:] {
		out = h.AppendHashIDs(hv, out)
	}
	sort.Strings(out)
	return out
}

// wccHash computes the weakly connected components over registered
// hashes, expanding each component to identifiers at the edge.
func wccHash(h HashSummary) [][]string {
	t := getTraversal()
	defer putTraversal(t)
	all := h.AppendNodeHashes(nil)
	slices.Sort(all) // deterministic discovery order
	var comps [][]string
	for _, root := range all {
		if _, ok := t.ids[root]; ok {
			continue
		}
		id, _ := t.intern(root)
		t.queue = append(t.queue[:0], id)
		compStart := id
		for len(t.queue) > 0 {
			cur := t.queue[0]
			t.queue = t.queue[1:]
			hv := t.hashes[cur]
			t.nbr = h.AppendSuccessorHashes(hv, t.nbr[:0])
			t.nbr = h.AppendPrecursorHashes(hv, t.nbr)
			for _, n := range t.nbr {
				if _, ok := t.ids[n]; ok {
					continue
				}
				if !t.registered(h, n) {
					continue
				}
				nid, _ := t.intern(n)
				t.queue = append(t.queue, nid)
			}
		}
		var comp []string
		for _, hv := range t.hashes[compStart:] {
			comp = h.AppendHashIDs(hv, comp)
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// pageRankHash runs weighted PageRank over the hash plane with dense
// float slices, expanding per-node scores to identifiers at the edge.
func pageRankHash(h HashSummary, damping float64, iters int) map[string]float64 {
	t := getTraversal()
	defer putTraversal(t)
	all := h.AppendNodeHashes(nil)
	slices.Sort(all) // deterministic summation order
	n := len(all)
	if n == 0 {
		return nil
	}
	for _, hv := range all {
		t.intern(hv)
	}
	// CSR-style adjacency over dense ids.
	type outEdge struct {
		to int32
		w  float64
	}
	adj := make([][]outEdge, n)
	outWeight := make([]float64, n)
	for i, hv := range all {
		t.nbr = h.AppendSuccessorHashes(hv, t.nbr[:0])
		for _, d := range t.nbr {
			did, ok := t.ids[d]
			if !ok {
				continue // unregistered recovery, invisible to the reference
			}
			if w, okw := h.EdgeWeightHash(hv, d); okw && w > 0 {
				adj[i] = append(adj[i], outEdge{to: did, w: float64(w)})
				outWeight[i] += float64(w)
			}
		}
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		var danglingMass float64
		for i := range all {
			if outWeight[i] == 0 {
				danglingMass += rank[i]
				continue
			}
			share := rank[i] / outWeight[i]
			for _, e := range adj[i] {
				next[e.to] += damping * share * e.w
			}
		}
		base := (1-damping)/float64(n) + damping*danglingMass/float64(n)
		for i := range next {
			next[i] += base
		}
		rank, next = next, rank
	}
	out := make(map[string]float64, n)
	for i, hv := range all {
		t.idbuf = h.AppendHashIDs(hv, t.idbuf[:0])
		for _, id := range t.idbuf {
			out[id] = rank[i]
		}
	}
	return out
}

// shortestPathHash is Dijkstra over the hash plane. Ties between
// equal-cost paths may resolve differently from the string reference
// (frontier orders differ), but the cost and reachability verdict are
// identical; intermediate hops expand to their first registered
// identifier.
func shortestPathHash(h HashSummary, src, dst string) (path []string, cost int64, ok bool) {
	if src == dst {
		return []string{src}, 0, true
	}
	t := getTraversal()
	defer putTraversal(t)
	ht := h.NodeHash(dst)
	if !t.hashHasID(h, ht, dst) {
		return nil, 0, false
	}
	start, _ := t.intern(h.NodeHash(src))
	const unset = int32(-1)
	dist := []int64{0}
	parent := []int32{unset}
	done := []bool{false}
	grow := func(id int32) {
		for int(id) >= len(dist) {
			dist = append(dist, 0)
			parent = append(parent, unset)
			done = append(done, false)
		}
	}
	pq := &denseHeap{{id: start, dist: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(denseDist)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		hv := t.hashes[cur.id]
		if hv == ht {
			return t.tracePathHash(h, cur.id, src, dst, parent), cur.dist, true
		}
		t.nbr = h.AppendSuccessorHashes(hv, t.nbr[:0])
		// The neighbor buffer is reused per pop, so capture weights
		// before any recursive use; EdgeWeightHash does not touch nbr.
		for _, d := range t.nbr {
			w, okw := h.EdgeWeightHash(hv, d)
			if !okw || w <= 0 {
				continue // zero/negative residues are not traversable
			}
			if _, seen := t.ids[d]; !seen && d != ht && !t.registered(h, d) {
				continue
			}
			nd := cur.dist + w
			id, fresh := t.intern(d)
			grow(id)
			if fresh || (!done[id] && nd < dist[id]) {
				dist[id] = nd
				parent[id] = cur.id
				heap.Push(pq, denseDist{id: id, dist: nd})
			}
		}
	}
	return nil, 0, false
}

// tracePathHash walks dense parents back from cur and expands each hop:
// the endpoints keep the caller's identifiers, intermediates take their
// first registered identifier (unique unless hashes collide).
func (t *traversal) tracePathHash(h HashSummary, cur int32, src, dst string, parent []int32) []string {
	var rev []string
	for id := cur; id >= 0; id = parent[id] {
		switch {
		case id == cur:
			rev = append(rev, dst)
		case parent[id] < 0: // the start node
			rev = append(rev, src)
		default:
			t.idbuf = h.AppendHashIDs(t.hashes[id], t.idbuf[:0])
			if len(t.idbuf) == 0 {
				rev = append(rev, "")
			} else {
				rev = append(rev, t.idbuf[0])
			}
		}
	}
	out := make([]string, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

type denseDist struct {
	id   int32
	dist int64
}

type denseHeap []denseDist

func (h denseHeap) Len() int            { return len(h) }
func (h denseHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h denseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *denseHeap) Push(x interface{}) { *h = append(*h, x.(denseDist)) }
func (h *denseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// trianglesHash counts triangles in the undirected projection over the
// hash plane: neighbor sets are sorted uint64 slices intersected with a
// merge walk, no per-node string sets.
func trianglesHash(h HashSummary) int64 {
	all := h.AppendNodeHashes(nil)
	slices.Sort(all)
	n := len(all)
	rank := make(map[uint64]int32, n)
	for i, hv := range all {
		rank[hv] = int32(i)
	}
	neigh := make([][]uint64, n)
	var buf []uint64
	for i, hv := range all {
		buf = h.AppendSuccessorHashes(hv, buf[:0])
		buf = h.AppendPrecursorHashes(hv, buf)
		set := make([]uint64, 0, len(buf))
		for _, d := range buf {
			if d == hv {
				continue // self-loop
			}
			if _, ok := rank[d]; !ok {
				continue // unregistered recovery
			}
			set = append(set, d)
		}
		slices.Sort(set)
		set = slices.Compact(set) // successor and precursor lists overlap
		neigh[i] = set
	}
	var count int64
	for i, hv := range all {
		for _, u := range neigh[i] {
			if u <= hv {
				continue
			}
			j := rank[u]
			// Count common neighbors w > u of the edge {hv, u}.
			count += countCommonAbove(neigh[i], neigh[j], u)
		}
	}
	return count
}

// countCommonAbove merges two sorted neighbor lists counting common
// elements strictly greater than floor.
func countCommonAbove(a, b []uint64, floor uint64) int64 {
	i := sort.Search(len(a), func(k int) bool { return a[k] > floor })
	j := sort.Search(len(b), func(k int) bool { return b[k] > floor })
	var n int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// nodeOutHash sums the out-edge weights of v over the hash plane.
func nodeOutHash(h HashSummary, v string) int64 {
	t := getTraversal()
	defer putTraversal(t)
	hv := h.NodeHash(v)
	t.nbr = h.AppendSuccessorHashes(hv, t.nbr[:0])
	var sum int64
	for _, d := range t.nbr {
		if !t.registered(h, d) {
			continue
		}
		if w, ok := h.EdgeWeightHash(hv, d); ok {
			sum += w
		}
	}
	return sum
}

// nodeInHash sums the in-edge weights of v over the hash plane.
func nodeInHash(h HashSummary, v string) int64 {
	t := getTraversal()
	defer putTraversal(t)
	hv := h.NodeHash(v)
	t.nbr = h.AppendPrecursorHashes(hv, t.nbr[:0])
	var sum int64
	for _, s := range t.nbr {
		if !t.registered(h, s) {
			continue
		}
		if w, ok := h.EdgeWeightHash(s, hv); ok {
			sum += w
		}
	}
	return sum
}
