package query_test

import (
	"fmt"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

// Example composes compound queries from the primitives: node
// aggregates, reachability and a path, all through the sketch.
func Example() {
	g := gss.MustNew(gss.Config{Width: 16, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4})
	query.Build(g, stream.NewSliceSource([]stream.Item{
		{Src: "a", Dst: "b", Weight: 2},
		{Src: "b", Dst: "c", Weight: 3},
		{Src: "a", Dst: "c", Weight: 5},
	}))
	fmt.Println("node out(a):", query.NodeOut(g, "a"))
	fmt.Println("reachable a->c:", query.Reachable(g, "a", "c"))
	fmt.Println("path a->c:", query.Path(g, "a", "c"))
	// Output:
	// node out(a): 7
	// reachable a->c: true
	// path a->c: [a c]
}

// ExampleShortestPath runs weighted Dijkstra over the sketch: the
// lighter two-hop detour beats the heavy direct edge.
func ExampleShortestPath() {
	g := gss.MustNew(gss.Config{Width: 16})
	g.InsertEdge("a", "z", 100)
	g.InsertEdge("a", "m", 1)
	g.InsertEdge("m", "z", 1)
	path, cost, _ := query.ShortestPath(g, "a", "z")
	fmt.Println(path, cost)
	// Output:
	// [a m z] 2
}
