package query

import (
	"container/heap"
	"sort"
)

// This file implements classic graph algorithms purely on top of the
// three query primitives, demonstrating the paper's §I claim that "all
// kinds of queries and algorithms can be supported" once the primitives
// exist. Each runs identically on GSS, TCM or the exact store.

// KHop returns the set of nodes reachable from v in at most k hops
// (excluding v itself), sorted. Hash-capable summaries run dense
// integer frontiers and expand to identifiers once at the end.
func KHop(s Summary, v string, k int) []string {
	if h, ok := HashView(s); ok {
		return kHopHash(h, v, k)
	}
	if k <= 0 {
		return nil
	}
	visited := map[string]bool{v: true}
	frontier := []string{v}
	var out []string
	for depth := 0; depth < k && len(frontier) > 0; depth++ {
		var next []string
		for _, u := range frontier {
			for _, w := range s.Successors(u) {
				if !visited[w] {
					visited[w] = true
					next = append(next, w)
					out = append(out, w)
				}
			}
		}
		frontier = next
	}
	sort.Strings(out)
	return out
}

// WeaklyConnectedComponents returns the components of the undirected
// projection of the summarized graph, each sorted, ordered by size
// descending then lexicographically.
func WeaklyConnectedComponents(s Summary) [][]string {
	if h, ok := HashView(s); ok {
		return wccHash(h)
	}
	visited := map[string]bool{}
	var comps [][]string
	for _, v := range s.Nodes() {
		if visited[v] {
			continue
		}
		var comp []string
		queue := []string{v}
		visited[v] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, w := range append(s.Successors(u), s.Precursors(u)...) {
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
		sort.Strings(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// PageRank runs weighted PageRank over the summarized graph for iters
// iterations with the given damping factor, returning the score of
// every node. Edge weights from the edge-query primitive weight the
// rank distribution, so heavy interaction edges carry more rank — the
// influence analysis of the paper's social-network use case.
func PageRank(s Summary, damping float64, iters int) map[string]float64 {
	if h, ok := HashView(s); ok {
		return pageRankHash(h, damping, iters)
	}
	nodes := s.Nodes()
	n := len(nodes)
	if n == 0 {
		return nil
	}
	// Materialize the out-adjacency once through the primitives.
	type outEdge struct {
		to string
		w  float64
	}
	adj := make(map[string][]outEdge, n)
	outWeight := make(map[string]float64, n)
	for _, v := range nodes {
		for _, u := range s.Successors(v) {
			if w, ok := s.EdgeWeight(v, u); ok && w > 0 {
				adj[v] = append(adj[v], outEdge{to: u, w: float64(w)})
				outWeight[v] += float64(w)
			}
		}
	}
	rank := make(map[string]float64, n)
	for _, v := range nodes {
		rank[v] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		next := make(map[string]float64, n)
		var danglingMass float64
		for _, v := range nodes {
			if outWeight[v] == 0 {
				danglingMass += rank[v]
				continue
			}
			share := rank[v] / outWeight[v]
			for _, e := range adj[v] {
				next[e.to] += damping * share * e.w
			}
		}
		base := (1-damping)/float64(n) + damping*danglingMass/float64(n)
		for _, v := range nodes {
			next[v] += base
		}
		rank = next
	}
	return rank
}

// ShortestPath returns the minimum-total-weight directed path from src
// to dst (Dijkstra over the primitives; weights must be positive) and
// its cost. ok is false when dst is unreachable.
func ShortestPath(s Summary, src, dst string) (path []string, cost int64, ok bool) {
	if h, okh := HashView(s); okh {
		return shortestPathHash(h, src, dst)
	}
	if src == dst {
		return []string{src}, 0, true
	}
	dist := map[string]int64{src: 0}
	parent := map[string]string{}
	done := map[string]bool{}
	pq := &nodeHeap{{node: src, dist: 0}}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(nodeDist)
		if done[cur.node] {
			continue
		}
		done[cur.node] = true
		if cur.node == dst {
			return tracePath(parentToMap(parent, src), src, dst), cur.dist, true
		}
		for _, u := range s.Successors(cur.node) {
			w, okw := s.EdgeWeight(cur.node, u)
			if !okw || w <= 0 {
				continue // zero/negative residues are not traversable
			}
			nd := cur.dist + w
			if old, seen := dist[u]; !seen || nd < old {
				dist[u] = nd
				parent[u] = cur.node
				heap.Push(pq, nodeDist{node: u, dist: nd})
			}
		}
	}
	return nil, 0, false
}

func parentToMap(parent map[string]string, src string) map[string]string {
	m := make(map[string]string, len(parent)+1)
	for k, v := range parent {
		m[k] = v
	}
	m[src] = src
	return m
}

type nodeDist struct {
	node string
	dist int64
}

type nodeHeap []nodeDist

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeDist)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// ClusteringCoefficient returns the global clustering coefficient of
// the undirected projection: 3 x triangles / connected triples.
func ClusteringCoefficient(s Summary) float64 {
	nodes := s.Nodes()
	neigh := make(map[string]map[string]bool, len(nodes))
	for _, v := range nodes {
		set := make(map[string]bool)
		for _, u := range s.Successors(v) {
			if u != v {
				set[u] = true
			}
		}
		for _, u := range s.Precursors(v) {
			if u != v {
				set[u] = true
			}
		}
		neigh[v] = set
	}
	var triples float64
	for _, set := range neigh {
		d := float64(len(set))
		triples += d * (d - 1) / 2
	}
	if triples == 0 {
		return 0
	}
	return 3 * float64(Triangles(s)) / triples
}

// DegreeDistribution returns the out-degree histogram of the
// summarized graph: hist[d] = number of nodes with out-degree d.
func DegreeDistribution(s Summary) map[int]int {
	hist := map[int]int{}
	for _, v := range s.Nodes() {
		hist[len(s.Successors(v))]++
	}
	return hist
}

// TopKByOutWeight returns the k nodes with the largest aggregate
// out-weight (node query), descending; ties break lexicographically.
func TopKByOutWeight(s Summary, k int) []string {
	nodes := s.Nodes()
	type scored struct {
		node string
		w    int64
	}
	all := make([]scored, 0, len(nodes))
	for _, v := range nodes {
		all = append(all, scored{v, NodeOut(s, v)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].node < all[j].node
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].node
	}
	return out
}
