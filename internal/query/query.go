// Package query builds compound graph queries out of the three query
// primitives of Definition 4 (edge query, 1-hop successor query, 1-hop
// precursor query). Everything here runs unchanged against any Summary —
// GSS, TCM, or the exact store — which is precisely the paper's point:
// once the primitives exist, "almost all algorithms for graphs can be
// implemented with these primitives" (§I).
package query

import (
	"sort"

	"repro/internal/stream"
)

// Summary is the common face of a graph-stream summary: the three query
// primitives plus ingestion and node enumeration. gss.GSS, tcm.TCM and
// adjlist.Graph all satisfy it (via thin adapters where signatures
// differ).
type Summary interface {
	Insert(it stream.Item)
	EdgeWeight(src, dst string) (int64, bool)
	Successors(v string) []string
	Precursors(v string) []string
	Nodes() []string
}

// Build inserts every item from src into s and returns s.
func Build(s Summary, src stream.Source) Summary {
	for {
		it, ok := src.Next()
		if !ok {
			return s
		}
		s.Insert(it)
	}
}

// NodeOut is the paper's node query (§VII-E): the summed weight of all
// edges with source node v, composed from the successor primitive and
// edge queries. Hash-capable summaries answer without materializing a
// single string.
func NodeOut(s Summary, v string) int64 {
	if h, ok := HashView(s); ok {
		return nodeOutHash(h, v)
	}
	var sum int64
	for _, u := range s.Successors(v) {
		if w, ok := s.EdgeWeight(v, u); ok {
			sum += w
		}
	}
	return sum
}

// NodeIn is the aggregate over incoming edges of v.
func NodeIn(s Summary, v string) int64 {
	if h, ok := HashView(s); ok {
		return nodeInHash(h, v)
	}
	var sum int64
	for _, u := range s.Precursors(v) {
		if w, ok := s.EdgeWeight(u, v); ok {
			sum += w
		}
	}
	return sum
}

// Reachable answers the reachability query of §VII-F with a BFS over
// successor queries. Because summaries have false positives only, a
// "false" answer is certain while a "true" answer may be spurious —
// hence the paper's true-negative-recall metric. Hash-capable
// summaries run the BFS entirely in hash space (reachableHash); the
// string BFS below is the reference implementation.
func Reachable(s Summary, src, dst string) bool {
	if h, ok := HashView(s); ok {
		return reachableHash(h, src, dst)
	}
	if src == dst {
		return true
	}
	visited := map[string]bool{src: true}
	queue := []string{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range s.Successors(v) {
			if u == dst {
				return true
			}
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	return false
}

// Path returns one directed path from src to dst found by BFS, or nil.
func Path(s Summary, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	parent := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range s.Successors(v) {
			if _, seen := parent[u]; seen {
				continue
			}
			parent[u] = v
			if u == dst {
				return tracePath(parent, src, dst)
			}
			queue = append(queue, u)
		}
	}
	return nil
}

func tracePath(parent map[string]string, src, dst string) []string {
	var rev []string
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	out := make([]string, len(rev))
	for i, v := range rev {
		out[len(rev)-1-i] = v
	}
	return out
}

// Triangles estimates the number of triangles in the undirected
// projection of the summarized graph (§VII-I) by enumerating neighbor
// sets through the primitives. Each triangle {a,b,c} is counted once.
// Hash-capable summaries count over sorted hash slices with merge
// intersections instead of per-node string sets.
func Triangles(s Summary) int64 {
	if h, ok := HashView(s); ok {
		return trianglesHash(h)
	}
	nodes := s.Nodes()
	neigh := make(map[string]map[string]bool, len(nodes))
	for _, v := range nodes {
		set := make(map[string]bool)
		for _, u := range s.Successors(v) {
			if u != v {
				set[u] = true
			}
		}
		for _, u := range s.Precursors(v) {
			if u != v {
				set[u] = true
			}
		}
		neigh[v] = set
	}
	var count int64
	for v, nv := range neigh {
		for u := range nv {
			if u <= v {
				continue
			}
			nu := neigh[u]
			small, large := nv, nu
			if len(nu) < len(nv) {
				small, large = nu, nv
			}
			for w := range small {
				if w > u && large[w] {
					count++
				}
			}
		}
	}
	return count
}

// Reconstruct rebuilds the full summarized graph as edge items by
// running successor queries over every node and edge queries for
// weights — the graph-reconstruction procedure described after
// Definition 4. The output is sorted and deterministic.
func Reconstruct(s Summary) []stream.Item {
	var out []stream.Item
	for _, v := range s.Nodes() {
		for _, u := range s.Successors(v) {
			w, ok := s.EdgeWeight(v, u)
			if !ok {
				continue
			}
			out = append(out, stream.Item{Src: v, Dst: u, Weight: w})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Degree reports the successor/precursor set sizes of v.
func Degree(s Summary, v string) (out, in int) {
	return len(s.Successors(v)), len(s.Precursors(v))
}
