package oplog

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/stream"
)

// The log's open path parses whatever bytes a crash (or an operator)
// left in the segment directory, and the record decoder parses payloads
// that were on disk across a process boundary. Both must recover the
// longest valid prefix or reject — never panic, never invent items.

// frameRecord wraps one encoded item payload in the on-disk record
// framing: [len u32 LE][crc32 u32 LE][payload].
func frameRecord(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// segBytes builds a well-formed segment file image holding items.
func segBytes(firstSeq uint64, items []stream.Item) []byte {
	var b []byte
	b = append(b, segMagic[:]...)
	b = binary.LittleEndian.AppendUint64(b, firstSeq)
	for _, it := range items {
		b = frameRecord(b, stream.AppendItem(nil, it))
	}
	return b
}

var logOpenSeeds = func() [][]byte {
	good := segBytes(0, []stream.Item{
		{Src: "a", Dst: "b", Time: 1, Weight: 1, Label: 0},
		{Src: "c", Dst: "d", Time: 2, Weight: -5, Label: 7},
	})
	torn := append(append([]byte{}, good...), 0x09, 0x00)
	badMagic := append([]byte{}, good...)
	badMagic[0] = 'X'
	flipped := append([]byte{}, good...)
	flipped[len(flipped)-1] ^= 0x01
	huge := segBytes(0, nil)
	huge = binary.LittleEndian.AppendUint32(huge, 1<<31)
	huge = binary.LittleEndian.AppendUint32(huge, 0)
	return [][]byte{
		good, torn, badMagic, flipped, huge,
		segMagic[:3],
		{},
		segBytes(12345, nil),
	}
}()

// FuzzLogOpen throws arbitrary bytes into a segment file and opens the
// log over it. Open must either succeed — in which case every surviving
// record reads back cleanly and new appends work — or fail with an
// error; any panic or post-open read failure is a bug.
func FuzzLogOpen(f *testing.F) {
	for _, seed := range logOpenSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segFile(0)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(Options{Dir: dir, Logf: func(string, ...interface{}) {}})
		if err != nil {
			return
		}
		defer l.Close()
		// Whatever survived the scan must stream back without error.
		var n uint64
		seq := l.OldestSeq()
		for {
			next, err := l.ReadFrom(seq, 1024, func(stream.Item) error { n++; return nil })
			if err != nil {
				t.Fatalf("ReadFrom(%d) over recovered log: %v", seq, err)
			}
			if next == seq {
				break
			}
			seq = next
		}
		if n != l.NextSeq()-l.OldestSeq() {
			t.Fatalf("recovered %d items but seq span is [%d,%d)", n, l.OldestSeq(), l.NextSeq())
		}
		// The recovered log accepts appends that continue the sequence.
		it := stream.Item{Src: "x", Dst: "y", Time: 3, Weight: 1, Label: 1}
		first, next, err := l.Append([]stream.Item{it})
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if first != seq || next != seq+1 {
			t.Fatalf("append after recovery at [%d,%d), want [%d,%d)", first, next, seq, seq+1)
		}
		got := stream.Item{}
		if _, err := l.ReadFrom(first, 1, func(i stream.Item) error { got = i; return nil }); err != nil {
			t.Fatalf("reading appended record: %v", err)
		}
		if got != it {
			t.Fatalf("appended record diverged: %+v", got)
		}
	})
}

var logRecordSeeds = [][]byte{
	stream.AppendItem(nil, stream.Item{Src: "a", Dst: "b", Time: 1, Weight: 1, Label: 0}),
	stream.AppendItem(nil, stream.Item{Src: "", Dst: "", Time: -1 << 62, Weight: 1 << 62, Label: 1<<32 - 1}),
	{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff},
	{0x01},
	{},
}

// FuzzLogRecord drives the record payload decoder shared with the GSS1
// stream codec: arbitrary bytes either decode to an item that re-encodes
// to the exact consumed prefix, or error.
func FuzzLogRecord(f *testing.F) {
	for _, seed := range logRecordSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		it, n, err := stream.DecodeItem(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeItem consumed %d of %d bytes", n, len(data))
		}
		again := stream.AppendItem(nil, it)
		back, m, err := stream.DecodeItem(again)
		if err != nil || m != len(again) || back != it {
			t.Fatalf("re-encode round trip: %+v %d %v", back, m, err)
		}
	})
}

// TestGenerateOplogFuzzCorpus follows the repo corpus convention:
// committed seeds under testdata/fuzz replay on every go test run;
// GSS_GEN_CORPUS=1 regenerates them.
func TestGenerateOplogFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzLogOpen")
	if os.Getenv("GSS_GEN_CORPUS") == "" {
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			t.Fatalf("committed fuzz corpus missing (%v); regenerate with GSS_GEN_CORPUS=1", err)
		}
		return
	}
	for sub, seeds := range map[string][][]byte{
		"FuzzLogOpen":   logOpenSeeds,
		"FuzzLogRecord": logRecordSeeds,
	} {
		d := filepath.Join("testdata", "fuzz", sub)
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			name := filepath.Join(d, "seed-"+strconv.Itoa(i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
