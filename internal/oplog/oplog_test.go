package oplog

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
)

func testItems(n int, tag string) []stream.Item {
	items := make([]stream.Item, n)
	for i := range items {
		items[i] = stream.Item{
			Src:    fmt.Sprintf("%s-src-%d", tag, i%97),
			Dst:    fmt.Sprintf("%s-dst-%d", tag, i%89),
			Time:   int64(1000 + i),
			Weight: int64(i%7 + 1),
			Label:  uint32(i % 5),
		}
	}
	return items
}

func openTestLog(t *testing.T, dir string, opt Options) *Log {
	t.Helper()
	opt.Dir = dir
	if opt.Logf == nil {
		opt.Logf = t.Logf
	}
	l, err := Open(opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

// appendBatches feeds items in fixed-size batches so segment rotation
// (which only happens between batches) actually produces a multi-segment
// log under small SegmentBytes.
func appendBatches(t *testing.T, l *Log, items []stream.Item, batchSize int) {
	t.Helper()
	for off := 0; off < len(items); off += batchSize {
		end := off + batchSize
		if end > len(items) {
			end = len(items)
		}
		if _, _, err := l.Append(items[off:end]); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
}

func readAll(t *testing.T, l *Log, from uint64) []stream.Item {
	t.Helper()
	var items []stream.Item
	seq := from
	for {
		next, err := l.ReadFrom(seq, 1000, func(it stream.Item) error {
			items = append(items, it)
			return nil
		})
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", seq, err)
		}
		if next == seq {
			return items
		}
		seq = next
	}
}

func TestLogAppendReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	defer l.Close()
	items := testItems(2500, "rt")
	// Append in uneven batches so batch boundaries do not line up with
	// the sparse index interval.
	for off := 0; off < len(items); {
		end := off + 1 + off%17
		if end > len(items) {
			end = len(items)
		}
		first, next, err := l.Append(items[off:end])
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if first != uint64(off) || next != uint64(end) {
			t.Fatalf("Append seqs: got [%d,%d), want [%d,%d)", first, next, off, end)
		}
		off = end
	}
	if got := readAll(t, l, 0); !reflect.DeepEqual(got, items) {
		t.Fatalf("round trip diverged: %d items back, want %d", len(got), len(items))
	}
	// Mid-stream reads from arbitrary offsets, crossing index entries.
	for _, from := range []uint64{1, 511, 512, 513, 1024, 2499, 2500} {
		got := readAll(t, l, from)
		want := items[from:]
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ReadFrom(%d): %d items, want %d", from, len(got), len(want))
		}
	}
	if _, err := l.ReadFrom(2501, 10, nil); err != ErrFuture {
		t.Fatalf("read past end: err = %v, want ErrFuture", err)
	}
}

func TestLogReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	items := testItems(700, "re")
	l := openTestLog(t, dir, Options{SegmentBytes: 4 << 10})
	if _, _, err := l.Append(items[:400]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l = openTestLog(t, dir, Options{SegmentBytes: 4 << 10})
	defer l.Close()
	if got := l.NextSeq(); got != 400 {
		t.Fatalf("NextSeq after reopen = %d, want 400", got)
	}
	first, next, err := l.Append(items[400:])
	if err != nil {
		t.Fatal(err)
	}
	if first != 400 || next != 700 {
		t.Fatalf("appended [%d,%d), want [400,700)", first, next)
	}
	if got := readAll(t, l, 0); !reflect.DeepEqual(got, items) {
		t.Fatalf("reopened log lost items: %d back, want %d", len(got), len(items))
	}
	if st := l.Stats(); st.Segments < 2 {
		t.Fatalf("expected rotation under 4KiB segments, stats: %+v", st)
	}
}

func TestLogRetention(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SegmentBytes: 2 << 10})
	defer l.Close()
	items := testItems(2000, "ret")
	appendBatches(t, l, items, 50)
	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("test needs several segments, got %d", st.Segments)
	}
	l.Retain(1000)
	oldest := l.OldestSeq()
	if oldest == 0 || oldest > 1000 {
		t.Fatalf("OldestSeq after Retain(1000) = %d, want (0,1000]", oldest)
	}
	// Everything at and beyond the retained boundary still reads back.
	if got := readAll(t, l, oldest); !reflect.DeepEqual(got, items[oldest:]) {
		t.Fatalf("post-retention read lost items")
	}
	if _, err := l.ReadFrom(oldest-1, 10, func(stream.Item) error { return nil }); err != ErrRetired {
		t.Fatalf("read below retention: err = %v, want ErrRetired", err)
	}
	// Retain never removes the active segment even when seq covers it.
	l.Retain(1 << 60)
	if got := l.NextSeq(); got != 2000 {
		t.Fatalf("NextSeq after over-retain = %d, want 2000", got)
	}
}

func TestLogRotateThenRetainResets(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	defer l.Close()
	if _, _, err := l.Append(testItems(100, "rr")); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	l.Retain(l.NextSeq())
	if got := l.OldestSeq(); got != 100 {
		t.Fatalf("OldestSeq after rotate+retain = %d, want 100", got)
	}
	if st := l.Stats(); st.Segments != 1 {
		t.Fatalf("segments after rotate+retain = %d, want 1", st.Segments)
	}
	// The log keeps appending seamlessly after a full reset.
	if first, _, err := l.Append(testItems(5, "rr2")); err != nil || first != 100 {
		t.Fatalf("append after reset: first=%d err=%v", first, err)
	}
}

func TestLogSkipTo(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{})
	defer l.Close()
	if err := l.SkipTo(5000); err != nil {
		t.Fatalf("SkipTo: %v", err)
	}
	if got := l.NextSeq(); got != 5000 {
		t.Fatalf("NextSeq after SkipTo = %d, want 5000", got)
	}
	if got := l.OldestSeq(); got != 5000 {
		t.Fatalf("OldestSeq after SkipTo = %d, want 5000", got)
	}
	items := testItems(10, "skip")
	if first, _, err := l.Append(items); err != nil || first != 5000 {
		t.Fatalf("append after skip: first=%d err=%v", first, err)
	}
	if err := l.SkipTo(4000); err == nil {
		t.Fatal("SkipTo behind next seq must error")
	}
	if got := readAll(t, l, 5000); !reflect.DeepEqual(got, items) {
		t.Fatal("read after SkipTo diverged")
	}
	if _, err := l.ReadFrom(4999, 1, nil); err != ErrRetired {
		t.Fatalf("read below skip: err = %v, want ErrRetired", err)
	}
}

// --- crash-point tests -------------------------------------------------
//
// A crash can land between append and fsync (torn record at the tail),
// or between sealing a segment and writing the next one (partial or
// headerless trailing file). Each scenario is staged by mutilating the
// on-disk state the way the kill would, and reopening must truncate to
// the longest valid prefix and replay cleanly — including accepting new
// appends that continue the sequence.

// lastSegment returns the path of the newest segment file in dir.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var last string
	for _, e := range entries {
		if segName.MatchString(e.Name()) {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return last
}

// buildLog writes n items into dir (in small batches, so rotation can
// kick in) and closes the log cleanly.
func buildLog(t *testing.T, dir string, n int, opt Options) []stream.Item {
	t.Helper()
	items := testItems(n, "crash")
	l := openTestLog(t, dir, opt)
	appendBatches(t, l, items, 50)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return items
}

// reopenAndVerify opens dir and asserts the longest valid prefix
// survived, then appends fresh items and reads the whole log back.
func reopenAndVerify(t *testing.T, dir string, want []stream.Item) {
	t.Helper()
	l := openTestLog(t, dir, Options{})
	defer l.Close()
	got := readAll(t, l, l.OldestSeq())
	if !reflect.DeepEqual(got, want[l.OldestSeq():]) {
		t.Fatalf("recovered %d items, want %d from seq %d",
			len(got), len(want)-int(l.OldestSeq()), l.OldestSeq())
	}
	if next := l.NextSeq(); next != uint64(len(want)) {
		t.Fatalf("NextSeq after recovery = %d, want %d", next, len(want))
	}
	fresh := testItems(20, "after")
	first, _, err := l.Append(fresh)
	if err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
	if first != uint64(len(want)) {
		t.Fatalf("post-recovery append at seq %d, want %d", first, len(want))
	}
	again := readAll(t, l, uint64(len(want)))
	if !reflect.DeepEqual(again, fresh) {
		t.Fatal("post-recovery appends unreadable")
	}
}

func TestLogCrashTornPayload(t *testing.T) {
	dir := t.TempDir()
	items := buildLog(t, dir, 300, Options{})
	// Kill between append and fsync: the last record's payload is only
	// partially on disk.
	path := lastSegment(t, dir)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	reopenAndVerify(t, dir, items[:299])
}

func TestLogCrashTornRecordHeader(t *testing.T) {
	dir := t.TempDir()
	items := buildLog(t, dir, 300, Options{})
	path := lastSegment(t, dir)
	// A dangling half-written length prefix after the last good record.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reopenAndVerify(t, dir, items)
}

func TestLogCrashCorruptCRC(t *testing.T) {
	dir := t.TempDir()
	items := buildLog(t, dir, 300, Options{})
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit of the final record: CRC catches it and the
	// tail truncates to the previous record.
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	reopenAndVerify(t, dir, items[:299])
}

func TestLogCrashDuringRotation(t *testing.T) {
	dir := t.TempDir()
	items := buildLog(t, dir, 600, Options{SegmentBytes: 8 << 10})
	// Kill between creating the next segment file and writing its
	// header: a short headerless trailing file.
	stub := filepath.Join(dir, segFile(600))
	if err := os.WriteFile(stub, segMagic[:2], 0o644); err != nil {
		t.Fatal(err)
	}
	reopenAndVerify(t, dir, items)
	if _, err := os.Stat(stub); !os.IsNotExist(err) {
		// reopenAndVerify appended, so a fresh segment may exist under
		// the same name — but the torn stub itself must not survive as-is.
		data, err := os.ReadFile(stub)
		if err == nil && len(data) < headerLen {
			t.Fatal("headerless rotation stub survived reopen")
		}
	}
}

func TestLogCrashRenamedSegmentDropped(t *testing.T) {
	dir := t.TempDir()
	items := buildLog(t, dir, 900, Options{SegmentBytes: 8 << 10})
	// A segment whose name disagrees with its header (operator copied a
	// file around) must be dropped, along with everything after it.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if segName.MatchString(e.Name()) {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	if len(segs) < 2 {
		t.Fatalf("need >=2 segments, have %d", len(segs))
	}
	bogus := filepath.Join(dir, segFile(1<<40))
	if err := os.Rename(segs[1], bogus); err != nil {
		t.Fatal(err)
	}
	l := openTestLog(t, dir, Options{})
	defer l.Close()
	if next := l.NextSeq(); next >= 900 {
		t.Fatalf("renamed segment not dropped: NextSeq=%d", next)
	}
	got := readAll(t, l, 0)
	if !reflect.DeepEqual(got, items[:len(got)]) {
		t.Fatal("surviving prefix diverged")
	}
}

func TestLogCrashMidSegmentCorruptionDropsSuffix(t *testing.T) {
	dir := t.TempDir()
	items := buildLog(t, dir, 2000, Options{SegmentBytes: 4 << 10})
	// Corrupt a record inside a *sealed* segment: sealed corruption is
	// not a torn tail, so the segment and all its successors drop,
	// leaving the longest valid prefix.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if segName.MatchString(e.Name()) {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, have %d", len(segs))
	}
	mid := segs[1]
	data, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen+recHeaderLen+2] ^= 0xff
	if err := os.WriteFile(mid, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l := openTestLog(t, dir, Options{})
	defer l.Close()
	got := readAll(t, l, 0)
	if len(got) == 0 || len(got) >= 2000 {
		t.Fatalf("recovered %d items, want a proper prefix", len(got))
	}
	if !reflect.DeepEqual(got, items[:len(got)]) {
		t.Fatal("surviving prefix diverged")
	}
}

func TestLogSyncBatching(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SyncEvery: time.Hour})
	defer l.Close()
	for i := 0; i < 50; i++ {
		if _, _, err := l.Append(testItems(2, "sync")); err != nil {
			t.Fatal(err)
		}
	}
	// One sync from the first append (lastSync zero = long ago), then
	// the hour-long window swallows the rest.
	if st := l.Stats(); st.Syncs > 2 {
		t.Fatalf("sync batching off: %d syncs for 50 appends", st.Syncs)
	}
	l2dir := t.TempDir()
	l2 := openTestLog(t, l2dir, Options{SyncEvery: -1})
	defer l2.Close()
	for i := 0; i < 10; i++ {
		if _, _, err := l2.Append(testItems(2, "sync")); err != nil {
			t.Fatal(err)
		}
	}
	if st := l2.Stats(); st.Syncs < 10 {
		t.Fatalf("SyncEvery<0 must sync every append: %d syncs for 10 appends", st.Syncs)
	}
}

// TestLogConcurrentAppendRead exercises the committed-view contract: a
// reader never sees a torn record, whatever the interleaving. Run
// under -race in CI.
func TestLogConcurrentAppendRead(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SegmentBytes: 16 << 10, SyncEvery: time.Millisecond})
	defer l.Close()
	items := testItems(4000, "conc")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for off := 0; off < len(items); off += 50 {
			end := off + 50
			if end > len(items) {
				end = len(items)
			}
			if _, _, err := l.Append(items[off:end]); err != nil {
				t.Errorf("Append: %v", err)
				return
			}
		}
	}()
	readers := 3
	wg.Add(readers)
	for r := 0; r < readers; r++ {
		go func() {
			defer wg.Done()
			var seq uint64
			var got []stream.Item
			for int(seq) < len(items) {
				next, err := l.ReadFrom(seq, 512, func(it stream.Item) error {
					got = append(got, it)
					return nil
				})
				if err != nil {
					t.Errorf("ReadFrom(%d): %v", seq, err)
					return
				}
				if next == seq {
					runtime.Gosched()
					continue
				}
				seq = next
			}
			if !reflect.DeepEqual(got, items) {
				t.Errorf("concurrent reader diverged at %d items", len(got))
			}
		}()
	}
	wg.Wait()
	// Retention racing reads: tailing from a retired offset must come
	// back as ErrRetired, never a torn result.
	l.Retain(2000)
	if _, err := l.ReadFrom(0, 10, func(stream.Item) error { return nil }); err != ErrRetired && err != nil {
		t.Fatalf("post-retention read: %v", err)
	}
}

// TestLogNoGoroutines pins the design decision that durability is
// piggybacked on appends: the log owns no background goroutines, so
// Close has nothing to leak.
func TestLogNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SyncEvery: 50 * time.Millisecond})
	if _, _, err := l.Append(testItems(100, "g")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, _, err := l.Append(testItems(1, "g")); err == nil {
		t.Fatal("append after Close must fail")
	}
}

func TestLogCursorReplay(t *testing.T) {
	dir := t.TempDir()
	l := openTestLog(t, dir, Options{SegmentBytes: 4 << 10})
	defer l.Close()
	items := testItems(1500, "cur")
	if _, _, err := l.Append(items); err != nil {
		t.Fatal(err)
	}
	cur := l.Cursor(300)
	got := stream.Collect(cur)
	if cur.Err() != nil {
		t.Fatalf("cursor: %v", cur.Err())
	}
	if !reflect.DeepEqual(got, items[300:]) {
		t.Fatalf("cursor replay: %d items, want %d", len(got), len(items)-300)
	}
	if cur.Seq() != 1500 {
		t.Fatalf("cursor Seq = %d, want 1500", cur.Seq())
	}
}

// sanity check on the record framing helpers used by the fuzz target.
func TestRecordFrame(t *testing.T) {
	it := stream.Item{Src: "a", Dst: "b", Time: 5, Weight: -3, Label: 9}
	payload := stream.AppendItem(nil, it)
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if len(frame) != recHeaderLen+len(payload) {
		t.Fatal("frame layout drifted")
	}
	back, n, err := stream.DecodeItem(payload)
	if err != nil || n != len(payload) || back != it {
		t.Fatalf("DecodeItem: %+v %d %v", back, n, err)
	}
}
