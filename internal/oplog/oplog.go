// Package oplog is a segmented append-only log of stream items — the
// replication and recovery substrate of the service tier. Primaries
// append every applied insert/ingest batch before acknowledging it, so
// crash recovery is the newest checkpoint plus a log replay from its
// sequence number, and followers tail deltas from an offset instead of
// re-fetching whole snapshots. The cluster router uses the same log as
// a durable spill buffer for writes bound to a down partition.
//
// On-disk layout: one directory of segment files named
// seg-<firstSeq:016d>.log. Each segment is
//
//	magic    [4]byte "GLG1"
//	firstSeq uint64 LE (must match the name; detects renamed files)
//	records: for each item
//	  length uint32 LE (payload bytes)
//	  crc    uint32 LE (IEEE CRC-32 of the payload)
//	  payload (stream.AppendItem encoding)
//
// Sequence numbers are item ordinals: the i-th item ever appended has
// seq i (0-based), and a segment's name is the seq of its first record.
// A record is the unit of integrity (one CRC per item), a segment the
// unit of retention. Appends go to the last segment; when it exceeds
// SegmentBytes it is sealed and a new one starts. Retain(seq) removes
// sealed segments that lie entirely below seq — the caller keys it to
// the newest durable checkpoint, so the log never outgrows what
// recovery still needs.
//
// Durability follows a group-commit discipline: appends are written
// (one write syscall per batch) immediately, but fsync is batched —
// at most one sync per SyncEvery of wall time, plus one on rotation
// and Close. A crash can therefore lose up to SyncEvery of acked
// appends; Open truncates whatever torn tail the crash left behind and
// replays cleanly from there. SyncEvery <= 0 syncs every append.
package oplog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/stream"
)

var segMagic = [4]byte{'G', 'L', 'G', '1'}

const (
	headerLen     = 12      // magic + firstSeq
	recHeaderLen  = 8       // length + crc
	maxRecordLen  = 4 << 20 // two max-length identifiers plus varints, with slack
	indexEvery    = 512     // records per sparse-offset index entry
	defaultSegLen = 8 << 20
)

var segName = regexp.MustCompile(`^seg-(\d{16})\.log$`)

func segFile(firstSeq uint64) string {
	return fmt.Sprintf("seg-%016d.log", firstSeq)
}

// ErrRetired reports a read from an offset whose segment has been
// removed by retention (or lost to a forward gap): the items below the
// oldest retained sequence are only available via a snapshot.
var ErrRetired = errors.New("oplog: offset retired; fall back to a snapshot")

// ErrFuture reports a read from an offset beyond the end of the log —
// a follower that outran the primary it tails (typically because the
// primary restarted with a fresh log).
var ErrFuture = errors.New("oplog: offset beyond end of log")

// Options configures Open.
type Options struct {
	// Dir is the log directory; created if missing.
	Dir string
	// SegmentBytes is the rotation threshold (default 8 MiB). Reads and
	// retention work at segment granularity, so smaller segments mean
	// finer retention but more files.
	SegmentBytes int64
	// SyncEvery is the fsync batching window: an append syncs only when
	// the previous sync is at least this old (plus always on rotation
	// and Close). <= 0 syncs every append. The window is the group-
	// commit durability trade: a crash can lose up to SyncEvery of
	// acknowledged appends, which Open's torn-tail truncation absorbs.
	SyncEvery time.Duration
	// Logf receives warnings (torn tails truncated, invalid segments
	// dropped); nil discards them.
	Logf func(string, ...interface{})
}

// Stats is a point-in-time snapshot of the log, served by the HTTP
// tier's stats endpoints.
type Stats struct {
	Segments  int    `json:"segments"`
	OldestSeq uint64 `json:"oldest_seq"`
	NextSeq   uint64 `json:"next_seq"`
	SizeBytes int64  `json:"size_bytes"`

	AppendedItems   int64 `json:"appended_items"`
	AppendedBytes   int64 `json:"appended_bytes"`
	Syncs           int64 `json:"syncs"`
	Rotations       int64 `json:"rotations"`
	RetiredSegments int64 `json:"retired_segments"`
}

// segment is one log file. For the active (last) segment, count/size
// grow under the log mutex; sealed segments are immutable.
type segment struct {
	firstSeq uint64
	path     string
	count    uint64  // records
	size     int64   // committed bytes (records fully written)
	offsets  []int64 // byte offset of record i*indexEvery, for seeks
}

func (s *segment) end() uint64 { return s.firstSeq + s.count }

// Log is a segmented append-only item log. All methods are safe for
// concurrent use; reads run against committed bytes without blocking
// appends for the duration of the file I/O.
type Log struct {
	opt Options

	mu       sync.Mutex
	segs     []*segment // oldest first; last is active
	active   *os.File
	lastSync time.Time
	scratch  []byte
	stats    Stats
	closed   bool
}

// Open scans dir, truncates any torn tail the last crash left, and
// readies the log for appends. Invalid trailing segments (torn during
// rotation, renamed, or out of sequence) are dropped with a warning:
// an append-only log trusts its longest valid prefix.
func Open(opt Options) (*Log, error) {
	if opt.Dir == "" {
		return nil, fmt.Errorf("oplog: Options.Dir is required")
	}
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = defaultSegLen
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...interface{}) {}
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("oplog: %w", err)
	}
	l := &Log{opt: opt}
	if err := l.scanDir(); err != nil {
		return nil, err
	}
	if len(l.segs) == 0 {
		if err := l.startSegmentLocked(0); err != nil {
			return nil, err
		}
	} else {
		// Reopen the last segment for appending.
		last := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(last.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("oplog: reopening %s: %w", last.path, err)
		}
		if _, err := f.Seek(last.size, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("oplog: seeking %s: %w", last.path, err)
		}
		l.active = f
	}
	l.refreshGauges()
	return l, nil
}

// scanDir loads every segment, validating headers, sequence continuity
// and record integrity. The first invalid point truncates: a torn tail
// in the last segment is cut at the last good record, and any segment
// that fails validation drops together with everything after it.
func (l *Log) scanDir() error {
	entries, err := os.ReadDir(l.opt.Dir)
	if err != nil {
		return fmt.Errorf("oplog: %w", err)
	}
	var cands []segCand
	for _, e := range entries {
		m := segName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		seq, err := strconv.ParseUint(m[1], 10, 64)
		if err != nil {
			continue
		}
		cands = append(cands, segCand{seq, filepath.Join(l.opt.Dir, e.Name())})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].firstSeq < cands[j].firstSeq })
	for i, c := range cands {
		if n := len(l.segs); n > 0 && c.firstSeq != l.segs[n-1].end() {
			l.dropFrom(cands[i:], "sequence gap after %d", l.segs[n-1].end())
			break
		}
		seg, err := scanSegment(c.path, c.firstSeq, i == len(cands)-1, l.opt.Logf)
		if err != nil {
			l.dropFrom(cands[i:], "%v", err)
			break
		}
		l.segs = append(l.segs, seg)
	}
	return nil
}

// segCand is a directory entry that looks like a segment, before
// validation.
type segCand struct {
	firstSeq uint64
	path     string
}

// dropFrom removes invalid trailing segment files so appends restart
// from a clean prefix.
func (l *Log) dropFrom(cands []segCand, format string, args ...interface{}) {
	l.opt.Logf("oplog: dropping %d segment(s) from %s: %s",
		len(cands), cands[0].path, fmt.Sprintf(format, args...))
	for _, c := range cands {
		if err := os.Remove(c.path); err != nil {
			l.opt.Logf("oplog: removing %s: %v", c.path, err)
		}
	}
}

// scanSegment validates one segment file. For the last (appendable)
// segment a torn tail is truncated in place; for sealed segments any
// corruption is an error (the caller drops the segment).
func scanSegment(path string, firstSeq uint64, last bool, logf func(string, ...interface{})) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("opening %s: %w", path, err)
	}
	defer f.Close()
	var hdr [headerLen]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("%s: short header: %w", path, err)
	}
	if [4]byte(hdr[:4]) != segMagic {
		return nil, fmt.Errorf("%s: bad magic", path)
	}
	if got := binary.LittleEndian.Uint64(hdr[4:]); got != firstSeq {
		return nil, fmt.Errorf("%s: header seq %d does not match name", path, got)
	}
	seg := &segment{firstSeq: firstSeq, path: path, size: headerLen}
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	fileSize := info.Size()
	var rec [recHeaderLen]byte
	payload := make([]byte, 0, 256)
	torn := func(why string) (*segment, error) {
		if !last {
			return nil, fmt.Errorf("%s: %s at record %d (sealed segment)", path, why, seg.count)
		}
		logf("oplog: %s: truncating torn tail (%s) at offset %d (%d records kept)",
			path, why, seg.size, seg.count)
		if err := os.Truncate(path, seg.size); err != nil {
			return nil, fmt.Errorf("%s: truncating torn tail: %w", path, err)
		}
		return seg, nil
	}
	for seg.size < fileSize {
		if fileSize-seg.size < recHeaderLen {
			return torn("short record header")
		}
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			return torn("unreadable record header")
		}
		n := binary.LittleEndian.Uint32(rec[:4])
		crc := binary.LittleEndian.Uint32(rec[4:])
		if n > maxRecordLen {
			return torn("oversized record")
		}
		if fileSize-seg.size-recHeaderLen < int64(n) {
			return torn("short payload")
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return torn("unreadable payload")
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return torn("crc mismatch")
		}
		if _, _, err := stream.DecodeItem(payload); err != nil {
			return torn("undecodable payload")
		}
		if seg.count%indexEvery == 0 {
			seg.offsets = append(seg.offsets, seg.size)
		}
		seg.size += recHeaderLen + int64(n)
		seg.count++
	}
	return seg, nil
}

// startSegmentLocked seals the current active file (if any) and begins
// a new segment whose first record will carry firstSeq.
func (l *Log) startSegmentLocked(firstSeq uint64) error {
	if l.active != nil {
		if err := l.syncLocked(); err != nil {
			return err
		}
		if err := l.active.Close(); err != nil {
			return err
		}
		l.active = nil
		l.stats.Rotations++
	}
	path := filepath.Join(l.opt.Dir, segFile(firstSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("oplog: creating segment: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:4], segMagic[:])
	binary.LittleEndian.PutUint64(hdr[4:], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("oplog: writing segment header: %w", err)
	}
	// The header is durable before any record can be acked from it, so
	// a crash right after rotation leaves a valid empty segment, not a
	// headerless file the next Open must drop.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	l.active = f
	l.segs = append(l.segs, &segment{firstSeq: firstSeq, path: path, size: headerLen})
	return nil
}

func (l *Log) activeSeg() *segment { return l.segs[len(l.segs)-1] }

// Append writes one record per item and returns the sequence number of
// the first item and the log's next sequence after the batch. The
// whole batch lands in one write; the fsync policy decides whether the
// call also syncs (see Options.SyncEvery).
func (l *Log) Append(items []stream.Item) (first, next uint64, err error) {
	return l.appendPayloads(len(items), func(i int, buf []byte) []byte {
		return stream.AppendItem(buf, items[i])
	})
}

// AppendEncoded writes one record per already-encoded item payload —
// the bytes a stream.AppendItem call would have produced, as carried
// verbatim inside binary ingest frames. It is byte-identical on disk
// to Append on the decoded items, minus the decode and re-encode: the
// record header (length + CRC) is computed here, so a corrupted
// payload is caught by the same integrity machinery either way.
func (l *Log) AppendEncoded(payloads [][]byte) (first, next uint64, err error) {
	return l.appendPayloads(len(payloads), func(i int, buf []byte) []byte {
		return append(buf, payloads[i]...)
	})
}

// appendPayloads is the shared append core: payload appends record i's
// payload bytes to buf. Record headers, sparse-index marks, the single
// write syscall, rollback, sync policy and rotation are identical for
// both entry points.
func (l *Log) appendPayloads(n int, payload func(i int, buf []byte) []byte) (first, next uint64, err error) {
	if n == 0 {
		l.mu.Lock()
		defer l.mu.Unlock()
		seq := l.nextSeqLocked()
		return seq, seq, nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, fmt.Errorf("oplog: closed")
	}
	seg := l.activeSeg()
	first = seg.end()

	buf := l.scratch[:0]
	type recMark struct {
		off int64 // offset within the segment file
	}
	var marks []recMark
	off := seg.size
	for i := 0; i < n; i++ {
		if (seg.count+uint64(i))%indexEvery == 0 {
			marks = append(marks, recMark{off})
		}
		hdrAt := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
		buf = payload(i, buf)
		p := buf[hdrAt+recHeaderLen:]
		binary.LittleEndian.PutUint32(buf[hdrAt:], uint32(len(p)))
		binary.LittleEndian.PutUint32(buf[hdrAt+4:], crc32.ChecksumIEEE(p))
		off += int64(recHeaderLen + len(p))
	}
	l.scratch = buf[:0]
	if _, err := l.active.Write(buf); err != nil {
		// The file may now hold a torn batch; roll it back so committed
		// state and disk agree (the next Open would truncate it anyway).
		if terr := l.active.Truncate(seg.size); terr == nil {
			l.active.Seek(seg.size, io.SeekStart)
		}
		return 0, 0, fmt.Errorf("oplog: append: %w", err)
	}
	for _, m := range marks {
		seg.offsets = append(seg.offsets, m.off)
	}
	seg.size = off
	seg.count += uint64(n)
	l.stats.AppendedItems += int64(n)
	l.stats.AppendedBytes += int64(len(buf))

	if l.opt.SyncEvery <= 0 || time.Since(l.lastSync) >= l.opt.SyncEvery {
		if err := l.syncLocked(); err != nil {
			return 0, 0, err
		}
	}
	if seg.size >= l.opt.SegmentBytes {
		if err := l.startSegmentLocked(seg.end()); err != nil {
			return 0, 0, err
		}
	}
	l.refreshGauges()
	return first, seg.end(), nil
}

func (l *Log) syncLocked() error {
	if err := l.active.Sync(); err != nil {
		return fmt.Errorf("oplog: sync: %w", err)
	}
	l.lastSync = time.Now()
	l.stats.Syncs++
	return nil
}

// Sync forces an fsync of the active segment — the durable point for
// callers that need one now rather than within SyncEvery.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

// NextSeq returns the sequence the next appended item will get; items
// [OldestSeq, NextSeq) are currently readable.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeqLocked()
}

func (l *Log) nextSeqLocked() uint64 { return l.activeSeg().end() }

// OldestSeq returns the first sequence still retained.
func (l *Log) OldestSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.segs[0].firstSeq
}

// Rotate seals the active segment so that Retain can retire everything
// appended so far. A fresh empty segment takes over.
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("oplog: closed")
	}
	if l.activeSeg().count == 0 {
		return nil // already empty; nothing to seal
	}
	if err := l.startSegmentLocked(l.nextSeqLocked()); err != nil {
		return err
	}
	l.refreshGauges()
	return nil
}

// Retain removes sealed segments that lie entirely below seq. Callers
// key seq to the newest durable checkpoint: everything below it is
// recoverable from the checkpoint, so the log no longer needs it. The
// active segment always stays.
func (l *Log) Retain(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	keep := 0
	for keep < len(l.segs)-1 && l.segs[keep].end() <= seq {
		if err := os.Remove(l.segs[keep].path); err != nil {
			l.opt.Logf("oplog: retiring %s: %v", l.segs[keep].path, err)
			break
		}
		l.stats.RetiredSegments++
		keep++
	}
	if keep > 0 {
		l.segs = append(l.segs[:0], l.segs[keep:]...)
	}
	l.refreshGauges()
}

// SkipTo fast-forwards an empty-or-behind log to seq: used when a
// checkpoint proves newer than the log's end (the log directory was
// lost or swapped), so new appends get sequence numbers the checkpoint
// does not already cover. It is an error when the log already holds
// records at or beyond seq.
func (l *Log) SkipTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("oplog: closed")
	}
	if next := l.nextSeqLocked(); next > seq {
		return fmt.Errorf("oplog: SkipTo(%d) behind next seq %d", seq, next)
	} else if next == seq {
		return nil
	}
	if err := l.startSegmentLocked(seq); err != nil {
		return err
	}
	// The empty pre-skip segments serve nothing; retire them so
	// OldestSeq reflects the skip.
	keep := 0
	for keep < len(l.segs)-1 {
		if err := os.Remove(l.segs[keep].path); err != nil {
			l.opt.Logf("oplog: retiring %s: %v", l.segs[keep].path, err)
			break
		}
		keep++
	}
	if keep > 0 {
		l.segs = append(l.segs[:0], l.segs[keep:]...)
	}
	l.refreshGauges()
	return nil
}

// refreshGauges recomputes the point-in-time stats fields. Callers
// hold mu.
func (l *Log) refreshGauges() {
	l.stats.Segments = len(l.segs)
	l.stats.OldestSeq = l.segs[0].firstSeq
	l.stats.NextSeq = l.nextSeqLocked()
	var size int64
	for _, s := range l.segs {
		size += s.size
	}
	l.stats.SizeBytes = size
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Close syncs and closes the active segment. Appends after Close fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.active.Sync()
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// segView is the immutable slice of segment state a read works
// against: committed count/size captured under the lock, file I/O
// done without it.
type segView struct {
	firstSeq uint64
	path     string
	count    uint64
	size     int64
	offsets  []int64
}

// view snapshots the committed segment list. The offsets slice is
// shared with the appender, but appends only ever extend it past the
// captured length, so indexes below len are stable.
func (l *Log) view() []segView {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]segView, len(l.segs))
	for i, s := range l.segs {
		out[i] = segView{firstSeq: s.firstSeq, path: s.path,
			count: s.count, size: s.size, offsets: s.offsets[:len(s.offsets):len(s.offsets)]}
	}
	return out
}

// ReadFrom streams up to maxItems committed records starting at
// sequence from, calling emit for each, and returns the next sequence
// to read. from below the retained range returns ErrRetired; from
// beyond the committed end returns ErrFuture; from exactly at the end
// returns (from, nil) with no emissions. An emit error aborts the read
// and is returned as-is.
func (l *Log) ReadFrom(from uint64, maxItems int, emit func(it stream.Item) error) (uint64, error) {
	if maxItems <= 0 {
		maxItems = 1 << 16
	}
	segs := l.view()
	if from < segs[0].firstSeq {
		return from, ErrRetired
	}
	last := segs[len(segs)-1]
	if from > last.firstSeq+last.count {
		return from, ErrFuture
	}
	// Locate the segment holding from.
	i := sort.Search(len(segs), func(i int) bool { return segs[i].firstSeq > from }) - 1
	if from > segs[i].firstSeq+segs[i].count {
		// from falls in a forward gap left by SkipTo: those records never
		// existed; only a snapshot covers them.
		return from, ErrRetired
	}
	seq := from
	for ; i < len(segs) && maxItems > 0; i++ {
		n, err := readSegment(segs[i], seq, maxItems, emit)
		seq += uint64(n)
		maxItems -= n
		if err != nil {
			if os.IsNotExist(err) {
				// Retired between view and open; the caller retries and
				// gets a consistent ErrRetired.
				return from, ErrRetired
			}
			return seq, err
		}
		if seq < segs[i].firstSeq+segs[i].count {
			break // maxItems exhausted mid-segment
		}
	}
	return seq, nil
}

// readSegment emits records [seq, …) of one segment view, bounded by
// maxItems and the committed size, returning how many were emitted.
func readSegment(sv segView, seq uint64, maxItems int, emit func(it stream.Item) error) (int, error) {
	if seq >= sv.firstSeq+sv.count {
		return 0, nil
	}
	f, err := os.Open(sv.path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	rel := seq - sv.firstSeq
	pos := int64(headerLen)
	skip := rel
	if k := int(rel / indexEvery); k < len(sv.offsets) {
		pos = sv.offsets[k]
		skip = rel % indexEvery
	}
	if _, err := f.Seek(pos, io.SeekStart); err != nil {
		return 0, err
	}
	emitted := 0
	var rec [recHeaderLen]byte
	payload := make([]byte, 0, 256)
	remaining := sv.firstSeq + sv.count - seq + skip
	for remaining > 0 && emitted < maxItems {
		if pos+recHeaderLen > sv.size {
			return emitted, fmt.Errorf("oplog: %s: committed size %d cut a record short", sv.path, sv.size)
		}
		if _, err := io.ReadFull(f, rec[:]); err != nil {
			return emitted, fmt.Errorf("oplog: %s: %w", sv.path, err)
		}
		n := binary.LittleEndian.Uint32(rec[:4])
		crc := binary.LittleEndian.Uint32(rec[4:])
		if n > maxRecordLen || pos+recHeaderLen+int64(n) > sv.size {
			return emitted, fmt.Errorf("oplog: %s: invalid record at offset %d", sv.path, pos)
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(f, payload); err != nil {
			return emitted, fmt.Errorf("oplog: %s: %w", sv.path, err)
		}
		pos += recHeaderLen + int64(n)
		if skip > 0 {
			skip--
			remaining--
			continue
		}
		if crc32.ChecksumIEEE(payload) != crc {
			return emitted, fmt.Errorf("oplog: %s: crc mismatch at offset %d", sv.path, pos)
		}
		it, _, err := stream.DecodeItem(payload)
		if err != nil {
			return emitted, fmt.Errorf("oplog: %s: %w", sv.path, err)
		}
		if err := emit(it); err != nil {
			return emitted, err
		}
		emitted++
		remaining--
	}
	return emitted, nil
}

// Cursor is a pull-style reader over the log, adapting ReadFrom to
// stream.Source for replay into a sketch (see sketch.Replay).
type Cursor struct {
	l    *Log
	next uint64
	buf  []stream.Item
	pos  int
	err  error
	done bool
}

// Cursor returns a Source positioned at from.
func (l *Log) Cursor(from uint64) *Cursor {
	return &Cursor{l: l, next: from}
}

// Next implements stream.Source. It refills from the log in chunks;
// check Err after the stream ends.
func (c *Cursor) Next() (stream.Item, bool) {
	for c.pos >= len(c.buf) {
		if c.done || c.err != nil {
			return stream.Item{}, false
		}
		c.buf = c.buf[:0]
		c.pos = 0
		next, err := c.l.ReadFrom(c.next, 4096, func(it stream.Item) error {
			c.buf = append(c.buf, it)
			return nil
		})
		if err != nil {
			c.err = err
			return stream.Item{}, false
		}
		if next == c.next {
			c.done = true
			return stream.Item{}, false
		}
		c.next = next
	}
	it := c.buf[c.pos]
	c.pos++
	return it, true
}

// Err reports the first read error; nil after a clean end.
func (c *Cursor) Err() error { return c.err }

// Seq returns the sequence of the next unread record.
func (c *Cursor) Seq() uint64 { return c.next - uint64(len(c.buf)-c.pos) }
