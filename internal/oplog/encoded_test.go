package oplog

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/stream"
)

// TestAppendEncodedMatchesAppend pins the decode-free append path to
// the item path byte-for-byte: the same items, fed once as structs and
// once as their pre-encoded payloads (as a binary ingest frame carries
// them), must produce identical segment files — headers, CRCs, sparse
// index, rotation points, everything.
func TestAppendEncodedMatchesAppend(t *testing.T) {
	items := testItems(700, "enc")
	dirA, dirB := t.TempDir(), t.TempDir()
	// Small segments so the comparison also covers rotation.
	opt := Options{SegmentBytes: 4 << 10, SyncEvery: -1}

	la := openTestLog(t, dirA, opt)
	appendBatches(t, la, items, 64)
	if err := la.Close(); err != nil {
		t.Fatal(err)
	}

	lb := openTestLog(t, dirB, opt)
	var payloads [][]byte
	for off := 0; off < len(items); off += 64 {
		end := off + 64
		if end > len(items) {
			end = len(items)
		}
		payloads = payloads[:0]
		for _, it := range items[off:end] {
			payloads = append(payloads, stream.AppendItem(nil, it))
		}
		if _, _, err := lb.AppendEncoded(payloads); err != nil {
			t.Fatalf("AppendEncoded: %v", err)
		}
	}
	if lb.NextSeq() != uint64(len(items)) {
		t.Fatalf("NextSeq = %d, want %d", lb.NextSeq(), len(items))
	}
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}

	ea, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := os.ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(ea) < 2 {
		t.Fatalf("only %d segments; rotation not exercised", len(ea))
	}
	if len(ea) != len(eb) {
		t.Fatalf("segment counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].Name() != eb[i].Name() {
			t.Fatalf("segment %d: name %q vs %q", i, ea[i].Name(), eb[i].Name())
		}
		a, err := os.ReadFile(filepath.Join(dirA, ea[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, eb[i].Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("segment %s differs between Append and AppendEncoded", ea[i].Name())
		}
	}

	// And the encoded log replays to the original items.
	lc := openTestLog(t, dirB, opt)
	defer lc.Close()
	if got := readAll(t, lc, 0); !reflect.DeepEqual(got, items) {
		t.Fatal("encoded log replays different items")
	}
}

// TestAppendEncodedEmpty mirrors Append's empty-batch contract.
func TestAppendEncodedEmpty(t *testing.T) {
	l := openTestLog(t, t.TempDir(), Options{})
	defer l.Close()
	first, next, err := l.AppendEncoded(nil)
	if err != nil || first != 0 || next != 0 {
		t.Fatalf("AppendEncoded(nil) = %d,%d,%v", first, next, err)
	}
}
