package gsketch

import (
	"math/rand"
	"testing"

	"repro/internal/cms"
	"repro/internal/stream"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := New(Config{TotalCounters: 10, Partitions: 8, Depth: 4}, nil); err == nil {
		t.Fatal("budget below partition minimum accepted")
	}
	s := MustNew(Config{TotalCounters: 4096}, nil)
	if s.cfg.Partitions != 8 || s.cfg.Depth != 4 {
		t.Fatalf("defaults: %+v", s.cfg)
	}
}

func TestNeverUnderestimates(t *testing.T) {
	items := stream.Generate(stream.EmailEuAll().Scaled(0.002))
	s := MustNew(Config{TotalCounters: 1 << 16}, items[:len(items)/10])
	exact := map[string]int64{}
	for _, it := range items {
		s.InsertItem(it)
		exact[cms.EdgeKey(it.Src, it.Dst)] += it.Weight
	}
	for _, it := range items {
		want := exact[cms.EdgeKey(it.Src, it.Dst)]
		got, ok := s.EdgeWeight(it.Src, it.Dst)
		if !ok || got < want {
			t.Fatalf("edge (%s,%s): got %d,%v want >= %d", it.Src, it.Dst, got, ok, want)
		}
	}
}

func TestWorkloadAwarePartitioning(t *testing.T) {
	// A sample dominated by one hot source should produce visibly
	// unequal partition widths.
	var sample []stream.Item
	for i := 0; i < 900; i++ {
		sample = append(sample, stream.Item{Src: "hot", Dst: stream.NodeID(i), Weight: 1})
	}
	for i := 0; i < 100; i++ {
		sample = append(sample, stream.Item{Src: stream.NodeID(i), Dst: "x", Weight: 1})
	}
	s := MustNew(Config{TotalCounters: 1 << 14, Partitions: 8}, sample)
	ws := s.PartitionWidths()
	if ws[len(ws)-1] < 4*ws[0] {
		t.Fatalf("expected skewed partition widths, got %v", ws)
	}
}

func TestUniformWithoutSample(t *testing.T) {
	s := MustNew(Config{TotalCounters: 1 << 12, Partitions: 4}, nil)
	ws := s.PartitionWidths()
	if ws[0] != ws[len(ws)-1] {
		t.Fatalf("expected uniform widths without sample, got %v", ws)
	}
}

func TestBudgetRespected(t *testing.T) {
	items := stream.Generate(stream.CitHepPh().Scaled(0.001))
	cfg := Config{TotalCounters: 1 << 12, Partitions: 8, Depth: 4}
	s := MustNew(cfg, items)
	if got, budget := s.MemoryBytes(), int64(cfg.TotalCounters)*8; got > budget+budget/8 {
		t.Fatalf("memory %d exceeds budget %d", got, budget)
	}
}

func TestAccuracyBeatsGlobalCMOnSkewedWorkload(t *testing.T) {
	// gSketch's pitch: at equal memory, partitioning by source reduces
	// error on skewed workloads.
	cfg := stream.LkmlReply().Scaled(0.005)
	items := stream.Generate(cfg)
	const counters = 1 << 12
	gs := MustNew(Config{TotalCounters: counters, Partitions: 16}, items[:len(items)/2])
	cm := cms.MustNew(cms.Config{Width: counters / 4, Depth: 4})
	exact := map[string]int64{}
	for _, it := range items {
		gs.InsertItem(it)
		cm.InsertItem(it)
		exact[cms.EdgeKey(it.Src, it.Dst)] += it.Weight
	}
	var gsErr, cmErr float64
	for k, w := range exact {
		gsErr += float64(gs.parts[gs.partition(keySrc(k))].Estimate(k) - w)
		cmErr += float64(cm.Estimate(k) - w)
	}
	if gsErr > cmErr*1.2 {
		t.Fatalf("gSketch error %.0f worse than CM %.0f despite workload-aware partitioning", gsErr, cmErr)
	}
}

func keySrc(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == 0 {
			return key[:i]
		}
	}
	return key
}

func TestDeterministicRouting(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := MustNew(Config{TotalCounters: 1 << 10}, nil)
	for i := 0; i < 100; i++ {
		src := stream.NodeID(rng.Intn(50))
		if s.partition(src) != s.partition(src) {
			t.Fatal("partition routing not deterministic")
		}
	}
}
