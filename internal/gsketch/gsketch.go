// Package gsketch implements gSketch ("gSketch: on query estimation in
// graph streams", PVLDB 2011), the partitioned-CM-sketch baseline of
// §II. gSketch improves on one global CM sketch by splitting the global
// space budget across partitions of source nodes, sized from a workload
// sample so that heavy sources get proportionally wider sketches. Like
// CM sketches it answers only edge-weight (and per-source aggregate)
// queries — no topology.
package gsketch

import (
	"errors"
	"sort"

	"repro/internal/cms"
	"repro/internal/hashing"
	"repro/internal/stream"
)

// Config configures a gSketch.
type Config struct {
	// TotalCounters is the global budget of 8-byte counters, divided
	// across partitions.
	TotalCounters int
	// Partitions is the number of source-node partitions. Defaults to 8.
	Partitions int
	// Depth is the per-partition CM depth. Defaults to 4.
	Depth int
	Seed  uint64
}

// Sketch is a gSketch: a partition function over source nodes plus one
// CM sketch per partition. Not safe for concurrent use.
type Sketch struct {
	cfg    Config
	parts  []*cms.Sketch
	shares []int
	items  int64
}

// New builds a gSketch whose partition widths are proportional to the
// per-partition item frequency observed in sample, mirroring the
// workload-aware sketch partitioning of the PVLDB paper. An empty
// sample yields uniform partitions.
func New(cfg Config, sample []stream.Item) (*Sketch, error) {
	if cfg.TotalCounters <= 0 {
		return nil, errors.New("gsketch: Config.TotalCounters must be positive")
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 8
	}
	if cfg.Partitions < 1 {
		return nil, errors.New("gsketch: Config.Partitions must be positive")
	}
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	if cfg.TotalCounters < cfg.Partitions*cfg.Depth {
		return nil, errors.New("gsketch: TotalCounters too small for partition layout")
	}
	s := &Sketch{cfg: cfg}
	// Estimate per-partition load from the sample. Collision error in a
	// CM row grows with the number of *distinct* keys, not raw item
	// volume, so each partition's share follows its distinct sampled
	// edges.
	counts := make([]int, cfg.Partitions)
	seen := make(map[string]bool, len(sample))
	for _, it := range sample {
		k := cms.EdgeKey(it.Src, it.Dst)
		if seen[k] {
			continue
		}
		seen[k] = true
		counts[s.partition(it.Src)]++
	}
	total := len(seen)
	perRowBudget := cfg.TotalCounters / cfg.Depth
	minWidth := 1
	s.shares = make([]int, cfg.Partitions)
	assigned := 0
	for p := 0; p < cfg.Partitions; p++ {
		var w int
		if total == 0 {
			w = perRowBudget / cfg.Partitions
		} else {
			w = perRowBudget * counts[p] / total
		}
		if w < minWidth {
			w = minWidth
		}
		s.shares[p] = w
		assigned += w
	}
	// Renormalize if rounding plus minimums overshot the budget.
	for assigned > perRowBudget {
		i := maxIdx(s.shares)
		if s.shares[i] <= minWidth {
			break
		}
		s.shares[i]--
		assigned--
	}
	for p := 0; p < cfg.Partitions; p++ {
		part, err := cms.New(cms.Config{Width: s.shares[p], Depth: cfg.Depth,
			Seed: cfg.Seed + uint64(p)*7919})
		if err != nil {
			return nil, err
		}
		s.parts = append(s.parts, part)
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config, sample []stream.Item) *Sketch {
	s, err := New(cfg, sample)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Sketch) partition(src string) int {
	return int(hashing.HashSeeded(src, s.cfg.Seed^0xabcdef) % uint64(s.cfg.Partitions))
}

func maxIdx(xs []int) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// InsertItem routes the item to its source partition.
func (s *Sketch) InsertItem(it stream.Item) { s.InsertEdge(it.Src, it.Dst, it.Weight) }

// InsertEdge adds w to edge (src,dst).
func (s *Sketch) InsertEdge(src, dst string, w int64) {
	s.items++
	s.parts[s.partition(src)].Add(cms.EdgeKey(src, dst), w)
}

// EdgeWeight estimates the weight of (src,dst).
func (s *Sketch) EdgeWeight(src, dst string) (int64, bool) {
	est := s.parts[s.partition(src)].Estimate(cms.EdgeKey(src, dst))
	return est, est != 0
}

// PartitionWidths exposes the per-partition row widths (sorted copies)
// for tests and diagnostics.
func (s *Sketch) PartitionWidths() []int {
	out := make([]int, len(s.shares))
	copy(out, s.shares)
	sort.Ints(out)
	return out
}

// MemoryBytes sums the partition footprints.
func (s *Sketch) MemoryBytes() int64 {
	var sum int64
	for _, p := range s.parts {
		sum += p.MemoryBytes()
	}
	return sum
}

// ItemCount is the number of items inserted.
func (s *Sketch) ItemCount() int64 { return s.items }
