package triest

import (
	"math"
	"testing"

	"repro/internal/adjlist"
	"repro/internal/stream"
)

func TestValidation(t *testing.T) {
	if _, err := New(2, 1); err == nil {
		t.Fatal("tiny capacity accepted")
	}
	if _, err := New(100, 1); err != nil {
		t.Fatal(err)
	}
}

func TestExactWhenSampleHoldsEverything(t *testing.T) {
	// With capacity >= stream length TRIEST is exact: xi = 1 and every
	// triangle is counted.
	tr := MustNew(1000, 1)
	edges := [][2]string{
		{"a", "b"}, {"b", "c"}, {"c", "a"}, // triangle 1
		{"c", "d"}, {"d", "a"}, // triangle 2 (a,c,d)
		{"x", "y"},
	}
	for _, e := range edges {
		tr.AddEdge(e[0], e[1])
	}
	if got := tr.Estimate(); got != 2 {
		t.Fatalf("Estimate = %f, want 2", got)
	}
	if tr.SampleSize() != len(edges) {
		t.Fatalf("SampleSize = %d", tr.SampleSize())
	}
}

func TestSelfLoopsIgnored(t *testing.T) {
	tr := MustNew(10, 1)
	tr.AddEdge("a", "a")
	if tr.EdgesSeen() != 0 || tr.SampleSize() != 0 {
		t.Fatal("self loop was counted")
	}
}

func TestReservoirBounded(t *testing.T) {
	tr := MustNew(50, 3)
	for i := 0; i < 5000; i++ {
		tr.AddEdge(stream.NodeID(i%200), stream.NodeID((i*7+1)%200))
	}
	if tr.SampleSize() > 50 {
		t.Fatalf("reservoir exceeded capacity: %d", tr.SampleSize())
	}
	if tr.EdgesSeen() < 4900 { // minus skipped self loops
		t.Fatalf("EdgesSeen = %d", tr.EdgesSeen())
	}
}

func TestEstimateAccuracyOnRealStream(t *testing.T) {
	// §VII-I / Fig. 14: TRIEST achieves small relative error when the
	// reservoir holds a reasonable fraction of the (deduplicated) edges.
	items := stream.Generate(stream.CitHepPh().Scaled(0.02))
	exact := adjlist.New()
	seen := map[[2]string]bool{}
	var unique [][2]string
	for _, it := range items {
		exact.Insert(it.Src, it.Dst, it.Weight)
		k := [2]string{it.Src, it.Dst}
		if it.Src > it.Dst {
			k = [2]string{it.Dst, it.Src}
		}
		if !seen[k] {
			seen[k] = true
			unique = append(unique, k)
		}
	}
	truth := float64(exact.Triangles())
	if truth == 0 {
		t.Skip("no triangles in scaled stream")
	}
	// Average a few runs: TRIEST is a randomized estimator.
	var est float64
	const runs = 5
	for r := 0; r < runs; r++ {
		tr := MustNew(len(unique)/2, int64(r+1))
		for _, e := range unique {
			tr.AddEdge(e[0], e[1])
		}
		est += tr.Estimate()
	}
	est /= runs
	if rel := math.Abs(est-truth) / truth; rel > 0.30 {
		t.Fatalf("relative error %.3f too high (est %.0f, truth %.0f)", rel, est, truth)
	}
}

func TestEstimateUnbiasedOverRuns(t *testing.T) {
	// The estimator mean over many seeds must approach the truth.
	edges := [][2]string{}
	// A clique of 12 nodes: C(12,3) = 220 triangles.
	for i := 0; i < 12; i++ {
		for j := i + 1; j < 12; j++ {
			edges = append(edges, [2]string{stream.NodeID(i), stream.NodeID(j)})
		}
	}
	var sum float64
	const runs = 60
	for r := 0; r < runs; r++ {
		tr := MustNew(30, int64(r)) // less than half the 66 edges
		for _, e := range edges {
			tr.AddEdge(e[0], e[1])
		}
		sum += tr.Estimate()
	}
	mean := sum / runs
	if mean < 110 || mean > 330 {
		t.Fatalf("mean estimate %f far from truth 220", mean)
	}
}

func TestMemoryBytesGrowsWithSample(t *testing.T) {
	tr := MustNew(100, 1)
	if tr.MemoryBytes() != 0 {
		t.Fatal("empty estimator reports memory")
	}
	tr.AddEdge("a", "b")
	if tr.MemoryBytes() <= 0 {
		t.Fatal("memory not accounted")
	}
}
