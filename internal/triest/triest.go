// Package triest implements TRIEST-base ("TRIEST: Counting local and
// global triangles in fully-dynamic streams with fixed memory size",
// KDD 2016), the triangle-counting baseline of Fig. 14. It keeps a
// fixed-size uniform reservoir of undirected edges and maintains an
// unscaled triangle counter that is re-scaled by the inverse sampling
// probability at query time.
package triest

import (
	"errors"
	"math/rand"
)

// Triest is a TRIEST-base estimator. It assumes each undirected edge
// appears once in the stream (the paper uniques the dataset's edges for
// TRIEST in §VII-I). Not safe for concurrent use.
type Triest struct {
	capacity int
	rng      *rand.Rand

	edges [][2]string
	adj   map[string]map[string]bool

	seen    int64   // t: edges observed so far
	counter float64 // tau: unscaled global triangle counter
}

// New returns a TRIEST-base estimator holding at most capacity edges.
func New(capacity int, seed int64) (*Triest, error) {
	if capacity < 6 {
		return nil, errors.New("triest: capacity must be at least 6")
	}
	return &Triest{
		capacity: capacity,
		rng:      rand.New(rand.NewSource(seed)),
		adj:      make(map[string]map[string]bool),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(capacity int, seed int64) *Triest {
	t, err := New(capacity, seed)
	if err != nil {
		panic(err)
	}
	return t
}

// AddEdge feeds one undirected edge to the estimator.
func (tr *Triest) AddEdge(u, v string) {
	if u == v {
		return
	}
	tr.seen++
	if tr.sampleEdge() {
		tr.updateCounter(u, v, +1)
		tr.insert(u, v)
	}
}

// sampleEdge implements the reservoir rule: always keep the first
// capacity edges; afterwards keep edge t with probability capacity/t,
// evicting a uniform resident edge (whose triangles are uncounted).
func (tr *Triest) sampleEdge() bool {
	if int64(len(tr.edges)) < int64(tr.capacity) {
		return true
	}
	if tr.rng.Float64() < float64(tr.capacity)/float64(tr.seen) {
		i := tr.rng.Intn(len(tr.edges))
		old := tr.edges[i]
		tr.edges[i] = tr.edges[len(tr.edges)-1]
		tr.edges = tr.edges[:len(tr.edges)-1]
		tr.remove(old[0], old[1])
		tr.updateCounter(old[0], old[1], -1)
		return true
	}
	return false
}

// updateCounter adjusts tau by the number of triangles (u,v) closes
// with the current sample.
func (tr *Triest) updateCounter(u, v string, delta float64) {
	nu, nv := tr.adj[u], tr.adj[v]
	if len(nu) == 0 || len(nv) == 0 {
		return
	}
	if len(nv) < len(nu) {
		nu, nv = nv, nu
	}
	for w := range nu {
		if nv[w] {
			tr.counter += delta
		}
	}
}

func (tr *Triest) insert(u, v string) {
	tr.edges = append(tr.edges, [2]string{u, v})
	tr.link(u, v)
	tr.link(v, u)
}

func (tr *Triest) link(a, b string) {
	m, ok := tr.adj[a]
	if !ok {
		m = make(map[string]bool)
		tr.adj[a] = m
	}
	m[b] = true
}

func (tr *Triest) remove(u, v string) {
	delete(tr.adj[u], v)
	delete(tr.adj[v], u)
	if len(tr.adj[u]) == 0 {
		delete(tr.adj, u)
	}
	if len(tr.adj[v]) == 0 {
		delete(tr.adj, v)
	}
}

// Estimate returns the global triangle-count estimate:
// tau * max(1, t(t-1)(t-2) / (M(M-1)(M-2))).
func (tr *Triest) Estimate() float64 {
	t := float64(tr.seen)
	m := float64(tr.capacity)
	xi := t * (t - 1) * (t - 2) / (m * (m - 1) * (m - 2))
	if xi < 1 {
		xi = 1
	}
	return tr.counter * xi
}

// EdgesSeen is t, the number of stream edges observed.
func (tr *Triest) EdgesSeen() int64 { return tr.seen }

// SampleSize is the current reservoir occupancy.
func (tr *Triest) SampleSize() int { return len(tr.edges) }

// MemoryBytes approximates the reservoir footprint: two string headers
// plus adjacency entries per sampled edge. Used to match memories with
// GSS in Fig. 14.
func (tr *Triest) MemoryBytes() int64 {
	// Two 16-byte string headers per edge in the slice, mirrored in the
	// adjacency index (2 map entries of ~48 bytes each, amortized).
	return int64(len(tr.edges)) * (2*16 + 2*48)
}
