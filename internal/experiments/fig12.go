package experiments

import (
	"fmt"

	"repro/internal/adjlist"
	"repro/internal/metrics"
	"repro/internal/query"
)

// Fig12 reproduces the reachability true-negative-recall sweep of
// Fig. 12: query sets of unreachable node pairs (100 in the paper),
// with the recall of "unreachable" answers per structure.
func Fig12(opt Options) []Table {
	const pairsWanted = 100
	var out []Table
	for _, cfg := range accuracyDatasets() {
		if !opt.wantDataset(cfg.Name) {
			continue
		}
		ds := loadDataset(cfg, opt.scale())
		pairs := unreachablePairs(ds.exact, pairsWanted, opt.Seed+4)
		if len(pairs) == 0 {
			continue
		}
		ratio := tcmRatioForSetQueries(cfg.Name)
		t := Table{
			Title: fmt.Sprintf("Fig. 12 Reachability true negative recall — %s", cfg.Name),
			Cols: []string{"width", "GSS(fsize=12)", "GSS(fsize=16)",
				fmt.Sprintf("TCM(%g*memory)", ratio)},
			Notes: fmt.Sprintf("%d unreachable pairs", len(pairs)),
		}
		for _, w := range scaledWidths(cfg.Name, opt.scale()) {
			g12 := gssFor(cfg.Name, w, 12)
			g16 := gssFor(cfg.Name, w, 16)
			tc := tcmWithMemoryRatio(g16, ratio)
			for _, it := range ds.items {
				g12.Insert(it)
				g16.Insert(it)
				tc.Insert(it)
			}
			var r12, r16, rtc metrics.Recall
			for _, p := range pairs {
				r12.Observe(!query.Reachable(g12, p[0], p[1]))
				r16.Observe(!query.Reachable(g16, p[0], p[1]))
				rtc.Observe(!query.Reachable(tc, p[0], p[1]))
			}
			t.Rows = append(t.Rows, []float64{float64(w), r12.Value(), r16.Value(), rtc.Value()})
		}
		out = append(out, t)
	}
	return out
}

// unreachablePairs draws up to n node pairs that are unreachable in the
// exact graph, as the Fig. 12 query generator does.
func unreachablePairs(exact *adjlist.Graph, n int, seed int64) [][2]string {
	nodes := exact.Nodes()
	if len(nodes) < 2 {
		return nil
	}
	rng := newRand(seed)
	var out [][2]string
	for attempts := 0; len(out) < n && attempts < 60*n; attempts++ {
		s := nodes[rng.Intn(len(nodes))]
		d := nodes[rng.Intn(len(nodes))]
		if s == d || exact.Reachable(s, d) {
			continue
		}
		out = append(out, [2]string{s, d})
	}
	return out
}
