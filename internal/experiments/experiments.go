// Package experiments regenerates every table and figure of the paper's
// evaluation (§VII). Each Fig*/Table* function returns printable tables
// with the same rows/series the paper reports; cmd/gss-bench exposes
// them on the command line and bench_test.go wires them into testing.B.
//
// Experiments run on synthetic datasets shaped like the paper's (see
// DESIGN.md §3) at a configurable scale: Options.Scale = 1 is paper
// scale, the defaults keep `go test` and `go test -bench` fast. Matrix
// widths scale with sqrt(scale) because the paper sets m ≈ sqrt(|E|).
package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/adjlist"
	"repro/internal/gss"
	"repro/internal/stream"
	"repro/internal/tcm"
)

// Options controls experiment scale and sampling.
type Options struct {
	// Scale is the dataset scale factor; 1.0 reproduces paper-size
	// datasets. 0 selects the experiment's fast default (see
	// DefaultScale).
	Scale float64
	// QuerySample bounds the number of set/node queries per
	// configuration (the paper queries every node; sampling keeps the
	// default runs fast). 0 selects DefaultQuerySample.
	QuerySample int
	// Seed drives query sampling and unreachable-pair generation.
	Seed int64
	// Datasets restricts the run to the named datasets (paper names);
	// empty means the experiment's full set.
	Datasets []string
}

// Defaults for fast runs.
const (
	DefaultScale       = 0.01
	DefaultQuerySample = 400
	// CaidaExtraScale further shrinks the Caida dataset, whose paper
	// size (445M items) is far beyond the others.
	CaidaExtraScale = 1.0 / 64
)

func (o Options) scale() float64 {
	if o.Scale <= 0 {
		return DefaultScale
	}
	return o.Scale
}

func (o Options) querySample() int {
	if o.QuerySample <= 0 {
		return DefaultQuerySample
	}
	return o.QuerySample
}

func (o Options) wantDataset(name string) bool {
	if len(o.Datasets) == 0 {
		return true
	}
	for _, d := range o.Datasets {
		if strings.EqualFold(d, name) {
			return true
		}
	}
	return false
}

// Table is one printable experiment result (a sub-figure or table).
type Table struct {
	Title string
	Cols  []string
	Rows  [][]float64
	Notes string
}

// Fprint renders the table as aligned text.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	if t.Notes != "" {
		fmt.Fprintf(w, "   (%s)\n", t.Notes)
	}
	widths := make([]int, len(t.Cols))
	cells := make([][]string, len(t.Rows))
	for i, col := range t.Cols {
		widths[i] = len(col)
	}
	for r, row := range t.Rows {
		cells[r] = make([]string, len(row))
		for c, v := range row {
			cells[r][c] = formatCell(v)
			if c < len(widths) && len(cells[r][c]) > widths[c] {
				widths[c] = len(cells[r][c])
			}
		}
	}
	for i, col := range t.Cols {
		if i > 0 {
			fmt.Fprint(w, "  ")
		}
		fmt.Fprintf(w, "%*s", widths[i], col)
	}
	fmt.Fprintln(w)
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%*s", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

func formatCell(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}

// dataset bundles a generated stream with its exact ground truth.
type dataset struct {
	cfg   stream.DatasetConfig
	items []stream.Item
	exact *adjlist.Graph
}

func loadDataset(cfg stream.DatasetConfig, scale float64) *dataset {
	if cfg.Name == "Caida-networkflow" {
		scale *= CaidaExtraScale
	}
	scaled := cfg.Scaled(scale)
	items := stream.Generate(scaled)
	exact := adjlist.New()
	for _, it := range items {
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	return &dataset{cfg: scaled, items: items, exact: exact}
}

// accuracyDatasets is the five-dataset suite of Figs. 8-12.
func accuracyDatasets() []stream.DatasetConfig {
	return []stream.DatasetConfig{
		stream.EmailEuAll(), stream.CitHepPh(), stream.WebNotreDame(),
		stream.LkmlReply(), stream.Caida(),
	}
}

// paperWidths maps each dataset to the matrix-width sweep of the
// paper's figures.
func paperWidths(name string) []int {
	switch name {
	case "email-EuAll":
		return []int{600, 700, 800, 900, 1000}
	case "cit-HepPh":
		return []int{400, 550, 700, 850, 1000}
	case "web-NotreDame":
		return []int{800, 900, 1000, 1100, 1200}
	case "lkml-reply":
		return []int{300, 475, 650, 825, 1000}
	case "Caida-networkflow":
		return []int{5000, 6250, 7500, 8750, 10000}
	default:
		return []int{600, 800, 1000}
	}
}

// scaledWidths shrinks the paper's width sweep with sqrt(scale), since
// m tracks sqrt(|E|).
func scaledWidths(name string, scale float64) []int {
	if name == "Caida-networkflow" {
		scale *= CaidaExtraScale
	}
	f := math.Sqrt(scale)
	ws := paperWidths(name)
	out := make([]int, len(ws))
	for i, w := range ws {
		sw := int(math.Round(float64(w) * f))
		if sw < 16 {
			sw = 16
		}
		out[i] = sw
	}
	return out
}

// gssFor builds a GSS in the paper's §VII-C configuration: r=k=16 for
// the large datasets, r=k=8 for the two small ones.
func gssFor(dsName string, width, fpBits int) *gss.GSS {
	r := 16
	if dsName == "email-EuAll" || dsName == "cit-HepPh" {
		r = 8
	}
	return gss.MustNew(gss.Config{
		Width: width, FingerprintBits: fpBits, Rooms: 2, SeqLen: r, Candidates: r,
	})
}

// tcmWithMemoryRatio builds a 4-sketch TCM sized to ratio times the
// memory of the given GSS (the 8x / 256x / 16x budgets of §VII-C).
func tcmWithMemoryRatio(g *gss.GSS, ratio float64) *tcm.TCM {
	budget := int64(float64(g.MemoryBytes()) * ratio)
	const depth = 4
	w := tcm.WidthForMemory(budget, depth)
	return tcm.MustNew(tcm.Config{Width: w, Depth: depth, Seed: 99})
}

// tcmRatioForSetQueries is the per-dataset memory multiplier the paper
// grants TCM in the set-query experiments (256x, except 16x on the two
// big streams where the authors hit server memory limits).
func tcmRatioForSetQueries(dsName string) float64 {
	switch dsName {
	case "web-NotreDame", "Caida-networkflow":
		return 16
	default:
		return 256
	}
}

// sampleNodes draws a deterministic sample of up to n node IDs.
func sampleNodes(exact *adjlist.Graph, n int, seed int64) []string {
	nodes := exact.Nodes()
	if len(nodes) <= n {
		return nodes
	}
	rng := newRand(seed)
	idx := rng.Perm(len(nodes))[:n]
	sort.Ints(idx)
	out := make([]string, n)
	for i, j := range idx {
		out[i] = nodes[j]
	}
	return out
}

// sampleEdges draws a deterministic sample of up to n distinct edges.
func sampleEdges(exact *adjlist.Graph, n int, seed int64) [][2]string {
	var edges [][2]string
	for _, v := range exact.Nodes() {
		for _, u := range exact.Successors(v) {
			edges = append(edges, [2]string{v, u})
		}
	}
	if len(edges) <= n {
		return edges
	}
	rng := newRand(seed)
	idx := rng.Perm(len(edges))[:n]
	sort.Ints(idx)
	out := make([][2]string, n)
	for i, j := range idx {
		out[i] = edges[j]
	}
	return out
}
