package experiments

import (
	"fmt"

	"repro/internal/metrics"
)

// Fig08 reproduces the edge-query ARE sweep of Fig. 8: for each dataset
// and matrix width, the average relative error of edge queries for GSS
// with 12- and 16-bit fingerprints and for TCM at 8 times the memory of
// the 16-bit GSS.
func Fig08(opt Options) []Table {
	var out []Table
	for _, cfg := range accuracyDatasets() {
		if !opt.wantDataset(cfg.Name) {
			continue
		}
		ds := loadDataset(cfg, opt.scale())
		queries := sampleEdges(ds.exact, 4*opt.querySample(), opt.Seed+1)
		t := Table{
			Title: fmt.Sprintf("Fig. 8 Edge query ARE — %s", cfg.Name),
			Cols:  []string{"width", "GSS(fsize=12)", "GSS(fsize=16)", "TCM(8*memory)"},
			Notes: fmt.Sprintf("|V|=%d |E|=%d items=%d queries=%d",
				ds.exact.NodeCount(), ds.exact.EdgeCount(), len(ds.items), len(queries)),
		}
		for _, w := range scaledWidths(cfg.Name, opt.scale()) {
			g12 := gssFor(cfg.Name, w, 12)
			g16 := gssFor(cfg.Name, w, 16)
			tc := tcmWithMemoryRatio(g16, 8)
			for _, it := range ds.items {
				g12.Insert(it)
				g16.Insert(it)
				tc.Insert(it)
			}
			var a12, a16, atc metrics.ARE
			for _, q := range queries {
				truth, _ := ds.exact.EdgeWeight(q[0], q[1])
				e12, _ := g12.EdgeWeight(q[0], q[1])
				e16, _ := g16.EdgeWeight(q[0], q[1])
				etc, _ := tc.EdgeWeight(q[0], q[1])
				a12.Observe(e12, truth)
				a16.Observe(e16, truth)
				atc.Observe(etc, truth)
			}
			t.Rows = append(t.Rows, []float64{float64(w), a12.Value(), a16.Value(), atc.Value()})
		}
		out = append(out, t)
	}
	return out
}
