package experiments

import (
	"fmt"
	"math"

	"repro/internal/query"
	"repro/internal/sjtree"
	"repro/internal/stream"
	"repro/internal/vf2"
)

// Fig15 reproduces the subgraph-matching comparison of Fig. 15 on
// web-NotreDame: windows of the labeled stream, query patterns of 6, 9,
// 12 and 15 edges extracted by random walk, matched with VF2 over a GSS
// sized to one tenth of the exact matcher's memory. Correct rate is the
// fraction of matches whose every edge exists in the window with the
// right label; the exact baseline (standing in for SJ-tree) is correct
// by construction.
func Fig15(opt Options) []Table {
	cfg := stream.WebNotreDame()
	if !opt.wantDataset(cfg.Name) {
		return nil
	}
	cfg.Labels = 16 // ports/protocol labels of §VII-I
	scaled := cfg.Scaled(opt.scale())
	items := stream.Generate(scaled)
	windowSizes := scaledWindowSizes(opt.scale(), len(items))
	patternSizes := []int{6, 9, 12, 15}
	const windowsPerSize = 3
	const patternsPerKind = 3

	t := Table{
		Title: "Fig. 15 Subgraph matching correct rate — web-NotreDame",
		Cols:  []string{"windowsize", "GSS", "SJtree"},
		Notes: fmt.Sprintf("patterns of %v edges by random walk, GSS at ~1/10 memory", patternSizes),
	}
	rng := newRand(opt.Seed + 5)
	for _, wsize := range windowSizes {
		var gssCorrect, total int
		for wi := 0; wi < windowsPerSize; wi++ {
			start := rng.Intn(maxInt(1, len(items)-wsize))
			window := sjtree.NewWindow(items[start : start+wsize])
			// GSS at roughly a tenth of the exact window footprint:
			// window memory ≈ 100 B/edge, GSS bytes ≈ m²·l·13.
			width := int(math.Sqrt(float64(window.EdgeCount()*100) / 10 / (2 * 13)))
			if width < 8 {
				width = 8
			}
			g := gssFor(cfg.Name, width, 16)
			for _, e := range window.Edges() {
				// Weight carries the label so edge queries recover it.
				g.InsertEdge(e.Src, e.Dst, int64(e.Label))
			}
			view := query.NewLabeledView(g)
			for _, psize := range patternSizes {
				for pi := 0; pi < patternsPerKind; pi++ {
					pattern, _, ok := sjtree.RandomWalkPattern(window, rng, psize)
					if !ok {
						continue
					}
					// The paper's query set consists of patterns its
					// systems can match; a pattern the exact matcher
					// cannot resolve within the search budget is
					// outside the experiment's regime for both sides,
					// so skip it rather than mis-score either system.
					if _, st := vf2.FindOneStatus(window, pattern, vf2.DefaultMaxSteps); st != vf2.StatusFound {
						continue
					}
					total++
					assign, found := vf2.FindOne(view, pattern)
					if found && embeddingValid(window, pattern, assign) {
						gssCorrect++
					}
				}
			}
		}
		if total == 0 {
			continue
		}
		t.Rows = append(t.Rows, []float64{
			float64(wsize),
			float64(gssCorrect) / float64(total),
			1.0, // exact matcher: every extracted pattern is found correctly
		})
	}
	return []Table{t}
}

// embeddingValid checks a reported assignment edge-by-edge against the
// exact window: a match through the sketch counts as correct only if it
// is a real embedding (§VII-I's correct-rate metric).
func embeddingValid(w *sjtree.Window, p vf2.Pattern, assign map[int]string) bool {
	for _, e := range p.Edges {
		label, ok := w.EdgeLabel(assign[e.From], assign[e.To])
		if !ok || (e.Label != 0 && label != e.Label) {
			return false
		}
	}
	return true
}

// scaledWindowSizes shrinks the paper's 10k-50k window sweep to the
// generated stream length.
func scaledWindowSizes(scale float64, streamLen int) []int {
	var out []int
	for _, w := range []int{10000, 20000, 30000, 40000, 50000} {
		s := int(float64(w) * scale * 10) // windows shrink slower than |E|
		if s < 200 {
			s = 200
		}
		if s >= streamLen {
			s = streamLen - 1
		}
		if len(out) > 0 && out[len(out)-1] >= s {
			continue
		}
		out = append(out, s)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
