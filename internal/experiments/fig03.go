package experiments

import "repro/internal/theory"

// Fig03 evaluates the theoretical accuracy model of §VI-B over the
// M/|V| ratios and degrees that Fig. 3 plots: the correct rate of the
// edge query and the 1-hop successor/precursor queries as functions of
// the hash range.
func Fig03(opt Options) []Table {
	const nodes = 100000
	const avgDeg = 5
	ratios := []float64{0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500}
	degrees := []int64{2, 8, 32, 128, 512}

	edge := Table{
		Title: "Fig. 3(a) Edge query correct rate (theory)",
		Cols:  []string{"M/|V|", "d=2", "d=8", "d=32", "d=128", "d=512"},
		Notes: "d is d1+d2, edges adjacent to the queried edge; |V|=1e5, |E|=5e5",
	}
	succ := Table{
		Title: "Fig. 3(b) 1-hop successor query correct rate (theory)",
		Cols:  []string{"M/|V|", "d=2", "d=8", "d=32", "d=128", "d=512"},
		Notes: "d is the out-degree of the queried node",
	}
	prec := Table{
		Title: "Fig. 3(c) 1-hop precursor query correct rate (theory)",
		Cols:  []string{"M/|V|", "d=2", "d=8", "d=32", "d=128", "d=512"},
		Notes: "symmetric to the successor model with in-degree",
	}
	pts := theory.Fig3Surface(nodes, avgDeg, ratios, degrees)
	byRatio := map[float64][]theory.Fig3Point{}
	for _, p := range pts {
		byRatio[p.MOverV] = append(byRatio[p.MOverV], p)
	}
	for _, r := range ratios {
		erow := []float64{r}
		srow := []float64{r}
		prow := []float64{r}
		for _, p := range byRatio[r] {
			erow = append(erow, p.EdgeQuery)
			srow = append(srow, p.SuccessorQ)
			prow = append(prow, p.PrecursorQ)
		}
		edge.Rows = append(edge.Rows, erow)
		succ.Rows = append(succ.Rows, srow)
		prec.Rows = append(prec.Rows, prow)
	}
	return []Table{edge, succ, prec}
}
