package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Experiment is a named, runnable reproduction of one paper table or
// figure.
type Experiment struct {
	Name string
	Desc string
	Run  func(Options) []Table
}

// All returns the experiment catalog in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig3", "Theoretical correct rates vs M/|V| (Fig. 3)", Fig03},
		{"fig8", "Edge query ARE vs width (Fig. 8)", Fig08},
		{"fig9", "1-hop precursor precision vs width (Fig. 9)", Fig09},
		{"fig10", "1-hop successor precision vs width (Fig. 10)", Fig10},
		{"fig11", "Node query ARE vs width (Fig. 11)", Fig11},
		{"fig12", "Reachability true negative recall vs width (Fig. 12)", Fig12},
		{"fig13", "Buffer percentage vs width (Fig. 13)", Fig13},
		{"table1", "Update speed in Mips (Table I)", Table1},
		{"fig14", "Triangle counting vs TRIEST (Fig. 14)", Fig14},
		{"fig15", "Subgraph matching vs SJ-tree (Fig. 15)", Fig15},
		{"ablation", "Design-choice ablations (fingerprints, square hash, sampling, rooms)", Ablation},
		{"validate", "Theory vs measurement for the §VI models", Validate},
		{"scaling", "Sharded-GSS parallel ingestion throughput (extension)", Scaling},
		{"edgeonly", "GSS vs CM/CU/gSketch on edge queries at equal memory", EdgeOnly},
		{"gmatrix", "gMatrix vs TCM vs GSS (reverse-hash baseline)", GMatrix},
	}
}

// Lookup finds an experiment by name (case-insensitive).
func Lookup(name string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.Name, name) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Names lists the available experiment names, sorted.
func Names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment (or all of them for "all") and
// prints its tables to w.
func Run(name string, opt Options, w io.Writer) error {
	if strings.EqualFold(name, "all") {
		for _, e := range All() {
			fmt.Fprintf(w, "### %s — %s\n\n", e.Name, e.Desc)
			for _, t := range e.Run(opt) {
				t.Fprint(w)
			}
		}
		return nil
	}
	e, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(Names(), ", "))
	}
	for _, t := range e.Run(opt) {
		t.Fprint(w)
	}
	return nil
}
