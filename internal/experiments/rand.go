package experiments

import "math/rand"

// newRand centralizes RNG construction so every experiment is
// deterministic in its seed.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
