package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cms"
	"repro/internal/gmatrix"
	"repro/internal/gsketch"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// EdgeOnly compares GSS against the counter-array baselines of §II —
// Count-Min, CU and gSketch — on the one query they support, edge
// weights, at equal memory. The paper dismisses these baselines for not
// supporting topology queries; this table shows GSS also beats or
// matches them on their home turf once the matrix is at |E| scale.
func EdgeOnly(opt Options) []Table {
	cfg := stream.LkmlReply()
	ds := loadDataset(cfg, opt.scale())
	queries := sampleEdges(ds.exact, 4*opt.querySample(), opt.Seed+9)
	t := Table{
		Title: "Edge-only baselines: edge query ARE at equal memory",
		Cols:  []string{"width", "GSS(fsize=16)", "CM", "CU", "gSketch"},
		Notes: fmt.Sprintf("%s, |E|=%d; CM/CU/gSketch sized to the GSS byte budget",
			cfg.Name, ds.exact.EdgeCount()),
	}
	for _, w := range scaledWidths(cfg.Name, opt.scale()) {
		g := gssFor(cfg.Name, w, 16)
		budget := g.MemoryBytes()
		counters := int(budget / 8)
		depth := 4
		cm := cms.MustNew(cms.Config{Width: counters / depth, Depth: depth, Seed: 10})
		cu := cms.MustNew(cms.Config{Width: counters / depth, Depth: depth, Seed: 11, Conservative: true})
		gsk := gsketch.MustNew(gsketch.Config{TotalCounters: counters, Partitions: 16, Depth: depth, Seed: 12},
			ds.items[:len(ds.items)/2])
		for _, it := range ds.items {
			g.Insert(it)
			cm.InsertItem(it)
			cu.InsertItem(it)
			gsk.InsertItem(it)
		}
		var aGSS, aCM, aCU, aGSK metrics.ARE
		for _, q := range queries {
			truth, _ := ds.exact.EdgeWeight(q[0], q[1])
			observe := func(a *metrics.ARE, est int64) { a.Observe(est, truth) }
			eg, _ := g.EdgeWeight(q[0], q[1])
			observe(&aGSS, eg)
			ec, _ := cm.EdgeWeight(q[0], q[1])
			observe(&aCM, ec)
			eu, _ := cu.EdgeWeight(q[0], q[1])
			observe(&aCU, eu)
			ek, _ := gsk.EdgeWeight(q[0], q[1])
			observe(&aGSK, ek)
		}
		t.Rows = append(t.Rows, []float64{float64(w),
			aGSS.Value(), aCM.Value(), aCU.Value(), aGSK.Value()})
	}
	return []Table{t}
}

// GMatrix compares gMatrix against TCM and GSS on edge-query ARE and
// successor precision, substantiating the §II claim that gMatrix's
// reversible hashing buys decompression but "the accuracy of gMatrix is
// no better than TCM". gMatrix operates on integer node IDs, so this
// experiment maps the synthetic node names to their ordinals.
func GMatrix(opt Options) []Table {
	cfg := stream.CitHepPh()
	ds := loadDataset(cfg, opt.scale())
	nodes := sampleNodes(ds.exact, opt.querySample()/2, opt.Seed+10)
	edges := sampleEdges(ds.exact, 2*opt.querySample(), opt.Seed+11)
	t := Table{
		Title: "gMatrix vs TCM vs GSS",
		Cols:  []string{"width", "edgeARE(GSS16)", "edgeARE(TCM)", "edgeARE(gMatrix)", "succPrec(TCM)", "succPrec(gMatrix)"},
		Notes: fmt.Sprintf("%s; TCM and gMatrix at 8x GSS memory, both 4 sketches", cfg.Name),
	}
	for _, w := range scaledWidths(cfg.Name, opt.scale()) {
		g := gssFor(cfg.Name, w, 16)
		tc := tcmWithMemoryRatio(g, 8)
		gmWidth := tcmWidthOf(tc)
		gm := gmatrix.MustNew(gmatrix.Config{Width: gmWidth, Depth: 4,
			IDSpace: uint64(ds.cfg.Nodes), Seed: 21})
		for _, it := range ds.items {
			g.Insert(it)
			tc.Insert(it)
			gm.InsertEdge(nodeOrdinal(it.Src), nodeOrdinal(it.Dst), it.Weight)
		}
		var aG, aT, aM metrics.ARE
		for _, q := range edges {
			truth, _ := ds.exact.EdgeWeight(q[0], q[1])
			eg, _ := g.EdgeWeight(q[0], q[1])
			et, _ := tc.EdgeWeight(q[0], q[1])
			em, _ := gm.EdgeWeight(nodeOrdinal(q[0]), nodeOrdinal(q[1]))
			aG.Observe(eg, truth)
			aT.Observe(et, truth)
			aM.Observe(em, truth)
		}
		var pT, pM metrics.AvgPrecision
		for _, v := range nodes {
			truth := ds.exact.Successors(v)
			mustObserve(&pT, tc.Successors(v), truth)
			// gMatrix reports ordinals; convert both sides.
			var got []string
			for _, id := range gm.Successors(nodeOrdinal(v)) {
				got = append(got, stream.NodeID(int(id)))
			}
			mustObserve(&pM, got, truth)
		}
		t.Rows = append(t.Rows, []float64{float64(w),
			aG.Value(), aT.Value(), aM.Value(), pT.Value(), pM.Value()})
	}
	return []Table{t}
}

// nodeOrdinal recovers the integer ordinal behind a synthetic node ID
// ("n123" -> 123).
func nodeOrdinal(id string) uint64 {
	s := strings.TrimPrefix(id, "n")
	var n uint64
	for i := 0; i < len(s); i++ {
		n = n*10 + uint64(s[i]-'0')
	}
	return n
}

// tcmWidthOf exposes a TCM's per-sketch width for sizing gMatrix
// identically.
func tcmWidthOf(t interface{ MemoryBytes() int64 }) int {
	// depth 4, 8-byte counters: bytes = 4*w*w*8.
	b := t.MemoryBytes()
	w := 1
	for int64(w+1)*int64(w+1)*32 <= b {
		w++
	}
	return w
}
