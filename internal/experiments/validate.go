package experiments

import (
	"fmt"

	"repro/internal/gss"
	"repro/internal/theory"
)

// Validate compares the §VI closed-form models against measurement on
// one dataset: the edge-query correct rate of Eq. 12 across fingerprint
// lengths (i.e. across M = m·F), and the left-over probability bound of
// Eq. 16-18 against the observed buffer percentage across widths. The
// theory is an upper bound on error (it ignores second-order effects),
// so measured accuracy should sit at or above the prediction.
func Validate(opt Options) []Table {
	cfg := accuracyDatasets()[1] // cit-HepPh
	ds := loadDataset(cfg, opt.scale())
	edges := sampleEdges(ds.exact, 2*opt.querySample(), opt.Seed+8)
	width := scaledWidths(cfg.Name, opt.scale())[2]

	acc := Table{
		Title: "Validation: edge-query correct rate, Eq. 12 vs measured",
		Cols:  []string{"fpBits", "M", "predicted", "measured"},
		Notes: fmt.Sprintf("%s, width=%d, |E|=%d", cfg.Name, width, ds.exact.EdgeCount()),
	}
	for _, bits := range []int{2, 4, 6, 8, 12, 16} {
		g := gss.MustNew(gss.Config{Width: width, FingerprintBits: bits,
			Rooms: 2, SeqLen: 8, Candidates: 8})
		for _, it := range ds.items {
			g.Insert(it)
		}
		m := float64(width) * float64(uint64(1)<<uint(bits))
		var predicted float64
		correct := 0
		for _, q := range edges {
			d := int64(ds.exact.OutDegree(q[0]) + ds.exact.InDegree(q[0]) +
				ds.exact.OutDegree(q[1]) + ds.exact.InDegree(q[1]))
			predicted += theory.EdgeCorrectRate(int64(ds.exact.EdgeCount()), d, m)
			truth, _ := ds.exact.EdgeWeight(q[0], q[1])
			if est, ok := g.EdgeWeight(q[0], q[1]); ok && est == truth {
				correct++
			}
		}
		predicted /= float64(len(edges))
		measured := float64(correct) / float64(len(edges))
		acc.Rows = append(acc.Rows, []float64{float64(bits), m, predicted, measured})
	}

	buf := Table{
		Title: "Validation: left-over probability, Eq. 16-18 vs measured buffer pct",
		Cols:  []string{"width", "predictedBound", "measured"},
		Notes: fmt.Sprintf("%s, rooms=2, r=k=8; the bound is for the final edge, measured is the average", cfg.Name),
	}
	n := int64(ds.exact.EdgeCount())
	// Average adjacency for the bound: 2|E|/|V| edges touch an average
	// node, and an edge has two endpoints.
	d := 4 * n / int64(ds.exact.NodeCount())
	for _, w := range scaledWidths(cfg.Name, opt.scale()) {
		g := gss.MustNew(gss.Config{Width: w, Rooms: 2, SeqLen: 8, Candidates: 8,
			DisableNodeIndex: true})
		for _, it := range ds.items {
			g.Insert(it)
		}
		bound := theory.LeftOverProbability(n, d, w, 8, 2, 8)
		buf.Rows = append(buf.Rows, []float64{float64(w), bound, g.BufferPercentage()})
	}
	return []Table{acc, buf}
}
