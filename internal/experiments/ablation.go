package experiments

import (
	"fmt"

	"repro/internal/gss"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Ablation quantifies each design decision of DESIGN.md §5 in
// isolation on one dataset: fingerprint length (edge-query ARE and
// successor precision), square hashing and rooms (buffer percentage),
// and candidate sampling (probes per insert, via buffer cost).
func Ablation(opt Options) []Table {
	cfg := stream.CitHepPh()
	ds := loadDataset(cfg, opt.scale())
	width := scaledWidths(cfg.Name, opt.scale())[2]
	nodes := sampleNodes(ds.exact, opt.querySample()/2, opt.Seed+6)
	edges := sampleEdges(ds.exact, opt.querySample(), opt.Seed+7)

	fpT := Table{
		Title: "Ablation: fingerprint length",
		Cols:  []string{"fpBits", "edgeARE", "succPrecision", "matrixKB"},
		Notes: fmt.Sprintf("%s, width=%d, rooms=2, r=k=8", cfg.Name, width),
	}
	for _, bits := range []int{4, 8, 12, 16} {
		g := gss.MustNew(gss.Config{Width: width, FingerprintBits: bits,
			Rooms: 2, SeqLen: 8, Candidates: 8})
		for _, it := range ds.items {
			g.Insert(it)
		}
		var are metrics.ARE
		for _, q := range edges {
			truth, _ := ds.exact.EdgeWeight(q[0], q[1])
			est, _ := g.EdgeWeight(q[0], q[1])
			are.Observe(est, truth)
		}
		var prec metrics.AvgPrecision
		for _, v := range nodes {
			mustObserve(&prec, g.Successors(v), ds.exact.Successors(v))
		}
		fpT.Rows = append(fpT.Rows, []float64{float64(bits), are.Value(),
			prec.Value(), float64(g.MemoryBytes()) / 1024})
	}

	structT := Table{
		Title: "Ablation: square hashing, sampling, rooms",
		Cols:  []string{"variant#", "bufferPct", "matrixEdges", "bufferEdges"},
		Notes: "1=full 2=no-sampling 3=no-squarehash 4=rooms-1 5=rooms-4 (same width)",
	}
	variants := []gss.Config{
		{Width: width, Rooms: 2, SeqLen: 8, Candidates: 8},
		{Width: width, Rooms: 2, SeqLen: 8, DisableSampling: true},
		{Width: width, Rooms: 2, DisableSquareHash: true},
		{Width: width, Rooms: 1, SeqLen: 8, Candidates: 8},
		{Width: width, Rooms: 4, SeqLen: 8, Candidates: 8},
	}
	for i, vc := range variants {
		vc.DisableNodeIndex = true
		g := gss.MustNew(vc)
		for _, it := range ds.items {
			g.Insert(it)
		}
		s := g.Stats()
		structT.Rows = append(structT.Rows, []float64{float64(i + 1),
			s.BufferPct, float64(s.MatrixEdges), float64(s.BufferEdges)})
	}
	return []Table{fpT, structT}
}
