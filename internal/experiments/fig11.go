package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/query"
)

// Fig11 reproduces the node-query ARE sweep of Fig. 11: the aggregate
// out-weight of every sampled node, estimated through the successor and
// edge primitives, against the same TCM memory grants as the set-query
// experiments.
func Fig11(opt Options) []Table {
	var out []Table
	for _, cfg := range accuracyDatasets() {
		if !opt.wantDataset(cfg.Name) {
			continue
		}
		ds := loadDataset(cfg, opt.scale())
		nodes := sampleNodes(ds.exact, opt.querySample(), opt.Seed+3)
		ratio := tcmRatioForSetQueries(cfg.Name)
		t := Table{
			Title: fmt.Sprintf("Fig. 11 Node query ARE — %s", cfg.Name),
			Cols: []string{"width", "GSS(fsize=12)", "GSS(fsize=16)",
				fmt.Sprintf("TCM(%g*memory)", ratio)},
			Notes: fmt.Sprintf("|V|=%d |E|=%d queried nodes=%d",
				ds.exact.NodeCount(), ds.exact.EdgeCount(), len(nodes)),
		}
		for _, w := range scaledWidths(cfg.Name, opt.scale()) {
			g12 := gssFor(cfg.Name, w, 12)
			g16 := gssFor(cfg.Name, w, 16)
			tc := tcmWithMemoryRatio(g16, ratio)
			for _, it := range ds.items {
				g12.Insert(it)
				g16.Insert(it)
				tc.Insert(it)
			}
			var a12, a16, atc metrics.ARE
			for _, v := range nodes {
				truth := ds.exact.NodeOutWeight(v)
				a12.Observe(query.NodeOut(g12, v), truth)
				a16.Observe(query.NodeOut(g16, v), truth)
				// TCM answers node queries natively as a row sum.
				atc.Observe(tc.NodeOutWeight(v), truth)
			}
			t.Rows = append(t.Rows, []float64{float64(w), a12.Value(), a16.Value(), atc.Value()})
		}
		out = append(out, t)
	}
	return out
}
