package experiments

import (
	"fmt"

	"repro/internal/metrics"
)

// Fig09 reproduces the 1-hop precursor average-precision sweep of
// Fig. 9: GSS (12/16-bit fingerprints) vs TCM at 256x memory (16x on
// the two big streams).
func Fig09(opt Options) []Table { return setQuerySweep(opt, false) }

// Fig10 reproduces the 1-hop successor average-precision sweep of
// Fig. 10.
func Fig10(opt Options) []Table { return setQuerySweep(opt, true) }

func setQuerySweep(opt Options, successors bool) []Table {
	kind, fig := "precursor", 9
	if successors {
		kind, fig = "successor", 10
	}
	var out []Table
	for _, cfg := range accuracyDatasets() {
		if !opt.wantDataset(cfg.Name) {
			continue
		}
		ds := loadDataset(cfg, opt.scale())
		nodes := sampleNodes(ds.exact, opt.querySample(), opt.Seed+2)
		ratio := tcmRatioForSetQueries(cfg.Name)
		t := Table{
			Title: fmt.Sprintf("Fig. %d 1-hop %s avg precision — %s", fig, kind, cfg.Name),
			Cols: []string{"width", "GSS(fsize=12)", "GSS(fsize=16)",
				fmt.Sprintf("TCM(%g*memory)", ratio)},
			Notes: fmt.Sprintf("|V|=%d |E|=%d queried nodes=%d",
				ds.exact.NodeCount(), ds.exact.EdgeCount(), len(nodes)),
		}
		for _, w := range scaledWidths(cfg.Name, opt.scale()) {
			g12 := gssFor(cfg.Name, w, 12)
			g16 := gssFor(cfg.Name, w, 16)
			tc := tcmWithMemoryRatio(g16, ratio)
			for _, it := range ds.items {
				g12.Insert(it)
				g16.Insert(it)
				tc.Insert(it)
			}
			var p12, p16, ptc metrics.AvgPrecision
			for _, v := range nodes {
				var truth, r12, r16, rtc []string
				if successors {
					truth = ds.exact.Successors(v)
					r12, r16, rtc = g12.Successors(v), g16.Successors(v), tc.Successors(v)
				} else {
					truth = ds.exact.Precursors(v)
					r12, r16, rtc = g12.Precursors(v), g16.Precursors(v), tc.Precursors(v)
				}
				// All three structures are false-positive-only; a
				// soundness error here is a bug worth surfacing loudly.
				mustObserve(&p12, r12, truth)
				mustObserve(&p16, r16, truth)
				mustObserve(&ptc, rtc, truth)
			}
			t.Rows = append(t.Rows, []float64{float64(w), p12.Value(), p16.Value(), ptc.Value()})
		}
		out = append(out, t)
	}
	return out
}

func mustObserve(p *metrics.AvgPrecision, reported, truth []string) {
	if err := p.Observe(reported, truth); err != nil {
		panic(fmt.Sprintf("experiments: summary violated no-false-negative invariant: %v", err))
	}
}
