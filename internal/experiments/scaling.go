package experiments

import (
	"runtime"
	"sync"
	"time"

	"repro/internal/gss"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Scaling measures parallel ingestion throughput of the sharded GSS
// (an extension beyond the paper, whose sketch is single-threaded):
// Mips as a function of shard count with one ingesting goroutine per
// shard, at constant total matrix memory.
func Scaling(opt Options) []Table {
	cfg := stream.LkmlReply()
	ds := loadDataset(cfg, opt.scale())
	width := scaledWidths(cfg.Name, opt.scale())[4]
	t := Table{
		Title: "Scaling: sharded ingestion throughput",
		Cols:  []string{"shards", "goroutines", "Mips"},
		Notes: "constant total matrix memory; GOMAXPROCS=" +
			itoa(runtime.GOMAXPROCS(0)),
	}
	for _, shards := range []int{1, 2, 4, 8} {
		s, err := gss.NewSharded(gss.Config{Width: width, FingerprintBits: 16,
			Rooms: 2, SeqLen: 16, Candidates: 16}, shards)
		if err != nil {
			continue
		}
		workers := shards
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(ds.items); i += workers {
					s.Insert(ds.items[i])
				}
			}(w)
		}
		wg.Wait()
		mips := metrics.Mips(int64(len(ds.items)), time.Since(start))
		t.Rows = append(t.Rows, []float64{float64(shards), float64(workers), mips})
	}
	return []Table{t}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
