package experiments

import (
	"fmt"
	"math"

	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/triest"
)

// Fig14 reproduces the triangle-counting comparison of Fig. 14 on
// cit-HepPh: relative error of the global triangle count for GSS and
// TRIEST at matched memory budgets. TRIEST does not support multi-edges,
// so the stream is deduplicated for it (as the paper does); GSS ingests
// the deduplicated edges too so both see the same simple graph.
func Fig14(opt Options) []Table {
	cfg := stream.CitHepPh()
	if !opt.wantDataset(cfg.Name) {
		return nil
	}
	// Triangle counting through set queries is the most expensive
	// compound query; run it a notch smaller than the accuracy suite.
	ds := loadDataset(cfg, opt.scale()*0.5)
	unique := dedupe(ds.items)
	truth := float64(ds.exact.Triangles())
	t := Table{
		Title: "Fig. 14 Triangle count relative error — cit-HepPh",
		Cols:  []string{"memoryKB", "GSS", "TRIEST"},
		Notes: fmt.Sprintf("true triangles=%d, %d unique undirected edges", int64(truth), len(unique)),
	}
	if truth == 0 {
		t.Notes += " (no triangles at this scale)"
		return []Table{t}
	}
	// Paper sweeps 2.5-5 MB at full scale; scale the budget with the
	// edge count.
	baseBytes := float64(len(unique)) * 40
	for _, factor := range []float64{0.5, 0.7, 0.9, 1.1, 1.3} {
		budget := int64(baseBytes * factor)
		// GSS sized to the budget: bytes ≈ m² * rooms * 13.
		width := int(math.Sqrt(float64(budget) / (2 * 13)))
		if width < 8 {
			width = 8
		}
		g := gssFor(cfg.Name, width, 16)
		for _, it := range unique {
			g.Insert(it)
		}
		gssEst := float64(query.Triangles(g))

		capacity := int(budget / 128)
		if capacity < 6 {
			capacity = 6
		}
		// TRIEST is randomized; average a few seeds as the paper's
		// repeated runs do.
		var triEst float64
		const runs = 3
		for r := 0; r < runs; r++ {
			tr := triest.MustNew(capacity, opt.Seed+int64(r))
			for _, it := range unique {
				tr.AddEdge(it.Src, it.Dst)
			}
			triEst += tr.Estimate()
		}
		triEst /= runs

		t.Rows = append(t.Rows, []float64{
			float64(budget) / 1024,
			math.Abs(gssEst-truth) / truth,
			math.Abs(triEst-truth) / truth,
		})
	}
	return []Table{t}
}

// dedupe keeps the first occurrence of each undirected edge.
func dedupe(items []stream.Item) []stream.Item {
	seen := map[[2]string]bool{}
	var out []stream.Item
	for _, it := range items {
		k := [2]string{it.Src, it.Dst}
		if it.Src > it.Dst {
			k = [2]string{it.Dst, it.Src}
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, stream.Item{Src: it.Src, Dst: it.Dst, Weight: 1})
	}
	return out
}
