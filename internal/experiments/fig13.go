package experiments

import (
	"fmt"
	"math"

	"repro/internal/gss"
	"repro/internal/stream"
)

// Fig13 reproduces the buffer-percentage sweep of Fig. 13 on the three
// larger datasets: GSS with 1 or 2 rooms per bucket, with and without
// square hashing. As in the paper, the x-axis width w applies to the
// 2-room variants; 1-room variants use width w*sqrt(2) so all four
// curves compare at equal memory.
func Fig13(opt Options) []Table {
	var out []Table
	for _, cfg := range []stream.DatasetConfig{
		stream.WebNotreDame(), stream.LkmlReply(), stream.Caida(),
	} {
		if !opt.wantDataset(cfg.Name) {
			continue
		}
		ds := loadDataset(cfg, opt.scale())
		t := Table{
			Title: fmt.Sprintf("Fig. 13 Buffer percentage — %s", cfg.Name),
			Cols: []string{"width", "Room=1", "Room=2",
				"Room=1(NoSquareHash)", "Room=2(NoSquareHash)"},
			Notes: fmt.Sprintf("|E|=%d distinct edges", ds.exact.EdgeCount()),
		}
		r := 16
		if cfg.Name == "email-EuAll" || cfg.Name == "cit-HepPh" {
			r = 8
		}
		for _, w := range scaledWidths(cfg.Name, opt.scale()) {
			w1 := int(math.Round(float64(w) * math.Sqrt2))
			variants := []*gss.GSS{
				gss.MustNew(gss.Config{Width: w1, Rooms: 1, SeqLen: r, Candidates: r, DisableNodeIndex: true}),
				gss.MustNew(gss.Config{Width: w, Rooms: 2, SeqLen: r, Candidates: r, DisableNodeIndex: true}),
				gss.MustNew(gss.Config{Width: w1, Rooms: 1, DisableSquareHash: true, DisableNodeIndex: true}),
				gss.MustNew(gss.Config{Width: w, Rooms: 2, DisableSquareHash: true, DisableNodeIndex: true}),
			}
			for _, it := range ds.items {
				for _, g := range variants {
					g.Insert(it)
				}
			}
			row := []float64{float64(w)}
			for _, g := range variants {
				row = append(row, g.BufferPercentage())
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out
}
