package experiments

import (
	"time"

	"repro/internal/adjlist"
	"repro/internal/gss"
	"repro/internal/metrics"
	"repro/internal/stream"
)

// Table1 reproduces the update-speed comparison of Table I, in million
// insertions per second: GSS, GSS without candidate sampling, TCM (same
// settings as the accuracy experiments) and the classic adjacency list.
// The paper repeats each insertion pass and averages; Repeats controls
// that here.
func Table1(opt Options) []Table {
	const repeats = 3
	t := Table{
		Title: "Table I Update speed (Mips)",
		Cols:  []string{"dataset#", "GSS", "GSS(no sampling)", "TCM", "AdjacencyLists"},
		Notes: "rows: 1=email-EuAll 2=cit-HepPh 3=web-NotreDame; 16-bit fingerprints",
	}
	for i, cfg := range []stream.DatasetConfig{
		stream.EmailEuAll(), stream.CitHepPh(), stream.WebNotreDame(),
	} {
		if !opt.wantDataset(cfg.Name) {
			continue
		}
		ds := loadDataset(cfg, opt.scale())
		width := scaledWidths(cfg.Name, opt.scale())[2] // middle of the sweep
		r := 16
		if cfg.Name == "email-EuAll" || cfg.Name == "cit-HepPh" {
			r = 8
		}

		gssMips := measureMips(repeats, ds.items, func() inserter {
			return gssFor(cfg.Name, width, 16)
		})
		noSampleMips := measureMips(repeats, ds.items, func() inserter {
			return gss.MustNew(gss.Config{Width: width, FingerprintBits: 16,
				Rooms: 2, SeqLen: r, DisableSampling: true})
		})
		tcmMips := measureMips(repeats, ds.items, func() inserter {
			return tcmWithMemoryRatio(gssFor(cfg.Name, width, 16), 8)
		})
		adjMips := measureMips(repeats, ds.items, func() inserter {
			return classicInserter{adjlist.NewClassic()}
		})
		t.Rows = append(t.Rows, []float64{float64(i + 1), gssMips, noSampleMips, tcmMips, adjMips})
	}
	return []Table{t}
}

type inserter interface{ Insert(it stream.Item) }

type classicInserter struct{ c *adjlist.Classic }

func (ci classicInserter) Insert(it stream.Item) { ci.c.Insert(it.Src, it.Dst, it.Weight) }

// measureMips inserts the whole stream `repeats` times into fresh
// structures and averages the throughput.
func measureMips(repeats int, items []stream.Item, build func() inserter) float64 {
	var total float64
	for r := 0; r < repeats; r++ {
		s := build()
		start := time.Now()
		for _, it := range items {
			s.Insert(it)
		}
		total += metrics.Mips(int64(len(items)), time.Since(start))
	}
	return total / float64(repeats)
}
