package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// fastOpt keeps smoke runs quick while still exercising every code
// path: tiny datasets, one small dataset per multi-dataset figure.
func fastOpt(datasets ...string) Options {
	return Options{Scale: 0.004, QuerySample: 60, Seed: 1, Datasets: datasets}
}

func TestFig03ShapesMatchPaper(t *testing.T) {
	tables := Fig03(Options{})
	if len(tables) != 3 {
		t.Fatalf("Fig03 returned %d tables", len(tables))
	}
	succ := tables[1]
	// At M/|V| <= 1 the successor correct rate collapses; at 200 it is
	// above 0.8 for small degrees (the §IV observation).
	first, last := succ.Rows[1], succ.Rows[len(succ.Rows)-2] // ratios 1 and 200
	if first[0] != 1 || last[0] != 200 {
		t.Fatalf("unexpected ratio rows: %v ... %v", first, last)
	}
	if first[1] > 0.01 {
		t.Errorf("successor rate at M=|V| should be ~0, got %f", first[1])
	}
	if last[1] < 0.8 {
		t.Errorf("successor rate at M=200|V| should be > 0.8, got %f", last[1])
	}
}

func TestFig08GSSBeatsTCM(t *testing.T) {
	tables := Fig08(fastOpt("cit-HepPh"))
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, row := range tables[0].Rows {
		w, gss12, gss16, tcm := row[0], row[1], row[2], row[3]
		if gss16 > gss12+1e-9 {
			t.Errorf("width %.0f: longer fingerprints worse (%.4f > %.4f)", w, gss16, gss12)
		}
		if gss16 > tcm {
			t.Errorf("width %.0f: GSS16 ARE %.4f worse than TCM %.4f at 1/8 memory", w, gss16, tcm)
		}
	}
	// Paper headline: GSS error is orders of magnitude below TCM's.
	last := tables[0].Rows[len(tables[0].Rows)-1]
	if last[2] > 0.01 {
		t.Errorf("GSS16 ARE at max width = %.4f, want ~0", last[2])
	}
}

func TestFig09And10GSSBeatsTCM(t *testing.T) {
	for name, fn := range map[string]func(Options) []Table{"fig9": Fig09, "fig10": Fig10} {
		tables := fn(fastOpt("email-EuAll"))
		if len(tables) != 1 {
			t.Fatalf("%s: got %d tables", name, len(tables))
		}
		for _, row := range tables[0].Rows {
			w, gss16, tcm := row[0], row[2], row[3]
			if gss16 < 0.95 {
				t.Errorf("%s width %.0f: GSS16 precision %.3f, want ~1", name, w, gss16)
			}
			if gss16+1e-9 < tcm {
				t.Errorf("%s width %.0f: GSS16 %.3f below TCM %.3f despite 1/256 memory", name, w, gss16, tcm)
			}
		}
	}
}

func TestFig11NodeQuery(t *testing.T) {
	tables := Fig11(fastOpt("cit-HepPh"))
	for _, row := range tables[0].Rows {
		if gss16 := row[2]; gss16 > 0.05 {
			t.Errorf("width %.0f: GSS16 node ARE %.4f, want ~0", row[0], gss16)
		}
	}
}

func TestFig12Reachability(t *testing.T) {
	tables := Fig12(fastOpt("cit-HepPh"))
	if len(tables) == 0 {
		t.Skip("no unreachable pairs at this scale")
	}
	for _, row := range tables[0].Rows {
		gss16, tcm := row[2], row[3]
		if gss16 < 0.9 {
			t.Errorf("width %.0f: GSS16 recall %.3f, want ~1", row[0], gss16)
		}
		if gss16+1e-9 < tcm {
			t.Errorf("width %.0f: GSS16 recall %.3f below TCM %.3f", row[0], gss16, tcm)
		}
	}
}

func TestFig13BufferShape(t *testing.T) {
	tables := Fig13(fastOpt("lkml-reply"))
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	rows := tables[0].Rows
	for _, row := range rows {
		room1, room2, room1NoSq, room2NoSq := row[1], row[2], row[3], row[4]
		// Square hashing dominates: each square-hash variant beats its
		// no-square-hash counterpart.
		if room1 > room1NoSq+1e-9 || room2 > room2NoSq+1e-9 {
			t.Errorf("square hashing did not reduce buffer: %v", row)
		}
		_ = room1
	}
	// Largest width with square hashing: buffer ~0 (the §VII-G result).
	last := rows[len(rows)-1]
	if last[2] > 0.001 {
		t.Errorf("Room=2 buffer pct at max width = %f, want ~0", last[2])
	}
	// Buffer shrinks with width for the weakest variant.
	if rows[0][4] < rows[len(rows)-1][4] {
		t.Errorf("no-squarehash buffer did not shrink with width: %v vs %v", rows[0], rows[len(rows)-1])
	}
}

func TestTable1Shape(t *testing.T) {
	opt := fastOpt("cit-HepPh")
	opt.Scale = 0.03 // large enough that hub adjacency lists get long
	tables := Table1(opt)
	if len(tables) != 1 || len(tables[0].Rows) != 1 {
		t.Fatalf("unexpected shape: %+v", tables)
	}
	row := tables[0].Rows[0]
	gssMips, noSampling, tcmMips, adj := row[1], row[2], row[3], row[4]
	if gssMips <= 0 || noSampling <= 0 || tcmMips <= 0 || adj <= 0 {
		t.Fatalf("non-positive throughput: %v", row)
	}
	// The paper's qualitative result — GSS and TCM in the same league,
	// both much faster than adjacency lists — is asserted loosely here
	// because wall-clock micro-runs are noisy; the bench harness
	// produces the Table I numbers proper.
	if gssMips*2 < adj {
		t.Errorf("GSS (%.2f Mips) far slower than adjacency lists (%.2f Mips)", gssMips, adj)
	}
}

func TestFig14Shape(t *testing.T) {
	tables := Fig14(Options{Scale: 0.02, QuerySample: 50, Seed: 1})
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	if len(tables[0].Rows) == 0 {
		t.Skip("no triangles at this scale")
	}
	for _, row := range tables[0].Rows {
		gssErr, triErr := row[1], row[2]
		if gssErr > 0.05 {
			t.Errorf("GSS triangle error %.4f, want ~0 (paper: <1%%)", gssErr)
		}
		if triErr > 1.0 {
			t.Errorf("TRIEST error implausibly high: %.4f", triErr)
		}
	}
}

func TestFig15Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("subgraph-matching experiment takes ~25s; skipped under -short")
	}
	tables := Fig15(Options{Scale: 0.01, Seed: 2})
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	if len(tables[0].Rows) == 0 {
		t.Skip("no windows at this scale")
	}
	for _, row := range tables[0].Rows {
		gssRate, sjRate := row[1], row[2]
		if sjRate != 1.0 {
			t.Errorf("exact matcher correct rate %.3f, must be 1", sjRate)
		}
		if gssRate < 0.9 {
			t.Errorf("window %.0f: GSS correct rate %.3f, paper shows ~1", row[0], gssRate)
		}
	}
}

func TestAblationShape(t *testing.T) {
	tables := Ablation(fastOpt())
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	fp := tables[0]
	// Longer fingerprints: monotonically non-worse precision.
	for i := 1; i < len(fp.Rows); i++ {
		if fp.Rows[i][2]+1e-9 < fp.Rows[i-1][2] {
			t.Errorf("precision fell with longer fingerprints: %v -> %v", fp.Rows[i-1], fp.Rows[i])
		}
	}
	st := tables[1]
	full, noSq := st.Rows[0][1], st.Rows[2][1]
	if full > noSq+1e-9 {
		t.Errorf("full GSS buffer pct %.4f above no-squarehash %.4f", full, noSq)
	}
}

func TestRegistryRunAndLookup(t *testing.T) {
	if _, ok := Lookup("fig8"); !ok {
		t.Fatal("fig8 missing from registry")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("phantom experiment found")
	}
	var buf bytes.Buffer
	if err := Run("fig3", Options{}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 3(a)") {
		t.Fatalf("unexpected output: %s", buf.String()[:100])
	}
	if err := Run("bogus", Options{}, &buf); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Names()) != len(All()) {
		t.Fatal("Names/All mismatch")
	}
}

func TestTableFprintAlignment(t *testing.T) {
	tab := Table{
		Title: "T", Cols: []string{"a", "b"},
		Rows:  [][]float64{{1, 0.5}, {10000, 0.25}},
		Notes: "n",
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "(n)", "10000", "0.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.scale() != DefaultScale || o.querySample() != DefaultQuerySample {
		t.Fatal("defaults not applied")
	}
	if !o.wantDataset("anything") {
		t.Fatal("empty dataset filter must match everything")
	}
	o.Datasets = []string{"cit-hepph"}
	if !o.wantDataset("cit-HepPh") || o.wantDataset("email-EuAll") {
		t.Fatal("dataset filter broken")
	}
}

func TestValidateTheoryMatchesMeasurement(t *testing.T) {
	tables := Validate(fastOpt())
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	acc := tables[0]
	for _, row := range acc.Rows {
		predicted, measured := row[2], row[3]
		// Eq. 12 tracks measurement within a few points across two
		// orders of magnitude of M.
		if diff := measured - predicted; diff < -0.1 || diff > 0.15 {
			t.Errorf("fpBits %.0f: predicted %.3f vs measured %.3f", row[0], predicted, measured)
		}
	}
	// Accuracy must rise with fingerprint length in both columns.
	first, last := acc.Rows[0], acc.Rows[len(acc.Rows)-1]
	if last[3] < first[3] {
		t.Error("measured accuracy fell with longer fingerprints")
	}
	buf := tables[1]
	// The bound and the measurement must both vanish as width grows.
	lastRow := buf.Rows[len(buf.Rows)-1]
	if lastRow[1] > 0.01 || lastRow[2] > 0.01 {
		t.Errorf("buffer did not vanish at max width: %v", lastRow)
	}
}

func TestScalingShape(t *testing.T) {
	tables := Scaling(Options{Scale: 0.01})
	if len(tables) != 1 || len(tables[0].Rows) != 4 {
		t.Fatalf("unexpected shape: %+v", tables)
	}
	for _, row := range tables[0].Rows {
		if row[2] <= 0 {
			t.Fatalf("non-positive throughput: %v", row)
		}
	}
}

func TestEdgeOnlyBaselines(t *testing.T) {
	tables := EdgeOnly(fastOpt())
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	last := tables[0].Rows[len(tables[0].Rows)-1]
	gssARE, cmARE, cuARE := last[1], last[2], last[3]
	if gssARE > cmARE+1e-9 {
		t.Errorf("GSS ARE %.4f worse than CM %.4f at equal memory", gssARE, cmARE)
	}
	if cuARE > cmARE+1e-9 {
		t.Errorf("CU ARE %.4f worse than CM %.4f (conservative update must tighten)", cuARE, cmARE)
	}
}

func TestGMatrixComparison(t *testing.T) {
	tables := GMatrix(fastOpt())
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, row := range tables[0].Rows {
		gssARE, tcmARE, gmARE := row[1], row[2], row[3]
		if gssARE > tcmARE+1e-9 || gssARE > gmARE+1e-9 {
			t.Errorf("width %.0f: GSS ARE %.4f not best (tcm %.4f, gmatrix %.4f)",
				row[0], gssARE, tcmARE, gmARE)
		}
	}
}
