package faultproxy

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// backend returns a test server echoing method, path and body length,
// plus a /big endpoint with a sized body.
func backend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/big":
			w.Header().Set("Content-Type", "application/octet-stream")
			big := make([]byte, 256<<10)
			_, _ = w.Write(big)
		default:
			body, _ := io.ReadAll(r.Body)
			fmt.Fprintf(w, "%s %s %d", r.Method, r.URL.RequestURI(), len(body))
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

func newProxy(t *testing.T, target string, opt Options) *Proxy {
	t.Helper()
	p, err := New(target, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func get(t *testing.T, client *http.Client, url string) (*http.Response, string, error) {
	t.Helper()
	resp, err := client.Do(mustReq(t, url))
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, string(body), err
}

func mustReq(t *testing.T, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

// TestProxyTransparent: with no faults the proxy relays method, path,
// query and body untouched.
func TestProxyTransparent(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	resp, err := http.Post(p.URL()+"/echo?a=1&b=2", "text/plain", strings.NewReader("hello"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if got, want := string(body), "POST /echo?a=1&b=2 5"; got != want {
		t.Fatalf("relayed %q, want %q", got, want)
	}
	if st := p.Stats(); st.Forwarded != 1 || st.Requests != 1 {
		t.Fatalf("stats %+v, want 1 forwarded of 1", st)
	}
}

// TestProxyStatusInjection: a matching Status rule answers without
// reaching the backend; other paths pass through.
func TestProxyStatusInjection(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	p.Set(Fault{Path: "/nodes", Status: http.StatusServiceUnavailable})

	resp, _, err := get(t, http.DefaultClient, p.URL()+"/nodes?limit=0")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	resp, body, err := get(t, http.DefaultClient, p.URL()+"/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("unfaulted path: %v status %d", err, resp.StatusCode)
	}
	if !strings.HasPrefix(body, "GET /stats") {
		t.Fatalf("unfaulted body %q", body)
	}
	if st := p.Stats(); st.Injected != 1 {
		t.Fatalf("injected %d, want 1", st.Injected)
	}
}

// TestProxyReset: a reset fault tears the connection with no response.
func TestProxyReset(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	p.Set(Fault{Reset: true})
	_, _, err := get(t, http.DefaultClient, p.URL()+"/x")
	if err == nil {
		t.Fatal("reset fault produced a clean response")
	}
	if st := p.Stats(); st.Resets != 1 || st.Forwarded != 0 {
		t.Fatalf("stats %+v, want 1 reset, 0 forwarded", st)
	}
}

// TestProxyDownKillRevive: the kill switch aborts everything, revive
// restores service, and the backend kept its state (it was never
// touched).
func TestProxyDownKillRevive(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	p.Kill()
	if _, _, err := get(t, http.DefaultClient, p.URL()+"/x"); err == nil {
		t.Fatal("killed proxy answered")
	}
	p.Revive()
	resp, _, err := get(t, http.DefaultClient, p.URL()+"/x")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("revived proxy: %v status %v", err, resp)
	}
}

// TestProxyLatency: a latency fault delays the round trip; a kill
// landing during the sleep aborts it.
func TestProxyLatency(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	p.Set(Fault{Path: "/slow", Latency: 80 * time.Millisecond})

	start := time.Now()
	resp, _, err := get(t, http.DefaultClient, p.URL()+"/slow")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("latency fault broke the request: %v", err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("request returned in %v, want >= 80ms", d)
	}

	// Kill mid-sleep: the delayed request must abort, not complete.
	p.Set(Fault{Path: "/slow", Latency: 300 * time.Millisecond})
	errc := make(chan error, 1)
	go func() {
		_, _, err := get(t, http.DefaultClient, p.URL()+"/slow")
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	p.Kill()
	if err := <-errc; err == nil {
		t.Fatal("request delayed across a kill still completed")
	}
	p.Revive()
}

// TestProxyBlackhole: a blackholed request never answers until the
// client gives up; clearing the rules releases a waiting one.
func TestProxyBlackhole(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	p.Set(Fault{Blackhole: true})

	client := &http.Client{Timeout: 150 * time.Millisecond}
	start := time.Now()
	_, _, err := get(t, client, p.URL()+"/x")
	if err == nil {
		t.Fatal("blackholed request completed")
	}
	if d := time.Since(start); d < 140*time.Millisecond {
		t.Fatalf("blackholed request failed after only %v — not held", d)
	}

	// A second blackholed request is released by Clear, as an abort.
	errc := make(chan error, 1)
	go func() {
		_, err := http.Get(p.URL() + "/y")
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	p.Clear()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("released blackhole produced a clean response")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Clear did not release the blackholed request")
	}
	if st := p.Stats(); st.Blackholed != 2 {
		t.Fatalf("blackholed %d, want 2", st.Blackholed)
	}
}

// TestProxyTruncatedBody: the status goes out, the body cuts off at
// the configured byte — the client must observe a broken transfer, not
// a clean short body.
func TestProxyTruncatedBody(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	p.Set(Fault{Path: "/big", TruncateBody: 1024})

	resp, err := http.Get(p.URL() + "/big")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (truncation is mid-body)", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err == nil && int64(len(body)) >= 256<<10 {
		t.Fatalf("read the full %d-byte body through a truncating proxy", len(body))
	}
	if err == nil && resp.ContentLength > 0 && int64(len(body)) == resp.ContentLength {
		t.Fatal("truncated transfer looked clean to the client")
	}
	if st := p.Stats(); st.Truncated != 1 {
		t.Fatalf("truncated %d, want 1", st.Truncated)
	}
}

// TestProxyThrottledBody: a byte-rate throttle stretches the transfer.
func TestProxyThrottledBody(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	// 256 KiB body at 512 KiB/s ≈ 500ms.
	p.Set(Fault{Path: "/big", BytesPerSec: 512 << 10})
	start := time.Now()
	resp, err := http.Get(p.URL() + "/big")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(body) != 256<<10 {
		t.Fatalf("throttled read: %v (%d bytes)", err, len(body))
	}
	if d := time.Since(start); d < 200*time.Millisecond {
		t.Fatalf("256KiB at 512KiB/s took %v, want >= 200ms", d)
	}
}

// TestProxyProbabilisticDeterminism: the same seed plays the same
// fault sequence; a different seed plays a different one (with
// overwhelming probability over 64 draws).
func TestProxyProbabilisticDeterminism(t *testing.T) {
	ts := backend(t)
	run := func(seed int64) string {
		p := newProxy(t, ts.URL, Options{Seed: seed})
		defer p.Close()
		p.Set(Fault{Prob: 0.5, Status: http.StatusServiceUnavailable})
		var out strings.Builder
		for i := 0; i < 64; i++ {
			resp, _, err := get(t, http.DefaultClient, p.URL()+"/x")
			switch {
			case err != nil:
				t.Fatal(err)
			case resp.StatusCode == http.StatusOK:
				out.WriteByte('.')
			default:
				out.WriteByte('F')
			}
		}
		return out.String()
	}
	a, b, c := run(7), run(7), run(8)
	if a != b {
		t.Fatalf("same seed, different schedules:\n%s\n%s", a, b)
	}
	if a == c {
		t.Fatalf("different seeds, identical schedules: %s", a)
	}
	if !strings.Contains(a, "F") || !strings.Contains(a, ".") {
		t.Fatalf("Prob 0.5 produced a degenerate schedule: %s", a)
	}
}

// TestProxyFlap: the schedule alternates up and down.
func TestProxyFlap(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	p.StartFlap(40*time.Millisecond, 40*time.Millisecond)
	var ok, fail int
	deadline := time.Now().Add(400 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, _, err := get(t, http.DefaultClient, p.URL()+"/x"); err == nil {
			ok++
		} else {
			fail++
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.StopFlap()
	if ok == 0 || fail == 0 {
		t.Fatalf("flap schedule never alternated: %d ok, %d failed", ok, fail)
	}
	// After StopFlap the proxy is up.
	if _, _, err := get(t, http.DefaultClient, p.URL()+"/x"); err != nil {
		t.Fatalf("proxy down after StopFlap: %v", err)
	}
}

// TestProxyWaitIdle: inflight tracks requests through the backend, and
// WaitIdle observes the drain.
func TestProxyWaitIdle(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	p.Set(Fault{Path: "/slow", Latency: 150 * time.Millisecond})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = get(t, http.DefaultClient, p.URL()+"/slow")
	}()
	deadline := time.Now().Add(2 * time.Second)
	for p.Inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("inflight never rose")
		}
		time.Sleep(time.Millisecond)
	}
	if !p.WaitIdle(5 * time.Second) {
		t.Fatal("WaitIdle timed out")
	}
	<-done
}

// TestProxyCloseReleasesGoroutines: the loop-owning-package convention
// — everything the proxy spawned exits on Close, including a flap
// schedule and a blackholed request.
func TestProxyCloseReleasesGoroutines(t *testing.T) {
	ts := backend(t)
	before := runtime.NumGoroutine()
	p, err := New(ts.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.StartFlap(time.Hour, time.Hour)
	p.Add(Fault{Path: "/hole", Blackhole: true})
	errc := make(chan error, 1)
	go func() {
		_, err := http.Get(p.URL() + "/hole")
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond)
	p.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("blackholed request survived Close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not release the blackholed request")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		// The aborted client connection can leave an idle keep-alive
		// loop in the default transport; that is the client's goroutine,
		// not the proxy's.
		http.DefaultClient.CloseIdleConnections()
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not return to %d (now %d)", before, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestProxyUpstreamDead: a dead backend behind a live proxy surfaces
// as a torn connection, not a clean error page — callers must treat it
// like any other transport failure.
func TestProxyUpstreamDead(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	ts.Close()
	if _, _, err := get(t, http.DefaultClient, p.URL()+"/x"); err == nil {
		t.Fatal("dead upstream produced a clean response")
	}
	if st := p.Stats(); st.UpstreamErr != 1 {
		t.Fatalf("upstream errors %d, want 1", st.UpstreamErr)
	}
}

// TestProxyComposedFaults: latency composes with a terminal fault, and
// the first terminal rule wins.
func TestProxyComposedFaults(t *testing.T) {
	ts := backend(t)
	p := newProxy(t, ts.URL, Options{})
	p.Set(
		Fault{Latency: 60 * time.Millisecond},
		Fault{Status: http.StatusBadGateway},
		Fault{Reset: true}, // second terminal rule: must not override
	)
	start := time.Now()
	resp, _, err := get(t, http.DefaultClient, p.URL()+"/x")
	if err != nil {
		t.Fatalf("composed fault reset the connection (second terminal rule won): %v", err)
	}
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if time.Since(start) < 60*time.Millisecond {
		t.Fatal("latency rule did not compose with the status rule")
	}
}
