// Package faultproxy is a seedable fault-injecting reverse proxy for
// exercising degraded-network behavior in tests and benchmarks.
//
// A Proxy listens on its own address and forwards every request to one
// target base URL, byte-transparently (request and response bodies
// stream through unbuffered, so long-lived transfers like /ingest
// uploads, /log tails and partition exports work through it). Faults
// are injected at the proxy, so the backend's state and its listener
// survive every failure mode — exactly the property fault tests need:
// "the process is unreachable" without "the process lost its data" or
// "another test stole its port".
//
// Supported faults, composable per request and scoped by path prefix:
//
//   - added latency (fixed plus seeded jitter)
//   - connection reset (RST before any response byte)
//   - blackhole (accept the request, never answer)
//   - HTTP status injection (e.g. 503 without reaching the backend)
//   - slow response bodies (byte-rate throttle)
//   - truncated response bodies (cut mid-body after the status went out)
//   - a down switch and a flap schedule driving it
//
// Probabilistic faults draw from one seeded source, so a fault
// schedule replays identically for a given seed. All controls are safe
// for concurrent use while traffic flows.
//
// Faults that fire BEFORE the forward (reset, blackhole, status,
// down) guarantee the backend never saw the request — important when
// the caller needs retry-safety for non-idempotent traffic. Body
// faults (throttle, truncate) fire after the backend has already
// processed the request, and belong on idempotent read paths.
package faultproxy

import (
	"context"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Fault is one injection rule. Zero-valued fields do not participate:
// a Fault{Path: "/nodes", Status: 503} injects a plain 503 on /nodes
// requests and nothing else. When several rules match one request
// their effects compose: latencies add, and the first rule (in Set
// order) asking for a terminal fault (Reset, Blackhole, Status) wins.
type Fault struct {
	// Path restricts the rule to request paths with this prefix; ""
	// matches every request.
	Path string
	// Prob is the per-request probability in (0,1] that the rule
	// fires. Outside that range the rule always fires.
	Prob float64

	// Latency delays the request before anything else happens, plus a
	// uniformly drawn addition in [0,Jitter).
	Latency time.Duration
	Jitter  time.Duration

	// Reset closes the client connection with no response bytes — the
	// transport-level "connection reset" a crashed peer produces.
	Reset bool
	// Blackhole accepts the request and never answers. The connection
	// is held until the client gives up (request context cancelled),
	// the rules change, or the proxy closes; then it is reset.
	Blackhole bool
	// Status, when non-zero, answers this HTTP status with a small
	// JSON body without reaching the backend.
	Status int

	// BytesPerSec throttles the response body copy to roughly this
	// rate (0 = unthrottled).
	BytesPerSec int
	// TruncateBody, when > 0, cuts the connection after this many
	// response-body bytes — the status and headers have already gone
	// out, so the client sees a truncated 200, the silent failure mode
	// real networks produce.
	TruncateBody int64
}

// Options configures a Proxy.
type Options struct {
	// Seed seeds the probability and jitter source (0 = 1).
	Seed int64
	// Addr is the listen address ("127.0.0.1:0" by default).
	Addr string
	// Logf receives operational notes; nil silences them.
	Logf func(format string, args ...interface{})
}

// Stats counts what the proxy did, by outcome.
type Stats struct {
	Requests    int64 `json:"requests"`
	Forwarded   int64 `json:"forwarded"`
	Resets      int64 `json:"resets"` // includes down-switch aborts
	Blackholed  int64 `json:"blackholed"`
	Injected    int64 `json:"injected_status"`
	Truncated   int64 `json:"truncated_bodies"`
	Delayed     int64 `json:"delayed"`
	UpstreamErr int64 `json:"upstream_errors"` // backend unreachable through the proxy
}

// Proxy is one fault-injecting reverse proxy in front of one target.
type Proxy struct {
	target    *url.URL
	transport *http.Transport
	srv       *http.Server
	ls        net.Listener
	logf      func(string, ...interface{})

	mu      sync.Mutex
	rng     *rand.Rand
	faults  []Fault
	down    bool
	release chan struct{} // closed on every rule change; unblocks blackholes

	// conns tracks open client connections so a kill can sever
	// in-flight requests the way a crashed process would.
	conns map[net.Conn]struct{}

	inflight atomic.Int64

	// Outcome counters are telemetry atomics, so a proxy embedded in a
	// live harness can hand them to a registry-backed dashboard while
	// Stats() keeps serving the plain snapshot.
	requests    telemetry.Counter
	forwarded   telemetry.Counter
	resets      telemetry.Counter
	blackholed  telemetry.Counter
	injected    telemetry.Counter
	truncated   telemetry.Counter
	delayed     telemetry.Counter
	upstreamErr telemetry.Counter

	flapMu   sync.Mutex
	flapStop chan struct{}
	flapDone chan struct{}

	closeOnce sync.Once
	closed    chan struct{}
}

// New starts a proxy forwarding to target (a base URL such as
// "http://127.0.0.1:8080"). Close releases the listener.
func New(target string, opt Options) (*Proxy, error) {
	u, err := url.Parse(strings.TrimRight(strings.TrimSpace(target), "/"))
	if err != nil {
		return nil, err
	}
	if opt.Addr == "" {
		opt.Addr = "127.0.0.1:0"
	}
	if opt.Seed == 0 {
		opt.Seed = 1
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	ls, err := net.Listen("tcp", opt.Addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		target: u,
		transport: &http.Transport{
			DialContext: (&net.Dialer{
				Timeout:   10 * time.Second,
				KeepAlive: 30 * time.Second,
			}).DialContext,
			ResponseHeaderTimeout: 30 * time.Second,
			MaxIdleConnsPerHost:   16,
		},
		ls:      ls,
		logf:    logf,
		rng:     rand.New(rand.NewSource(opt.Seed)),
		release: make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
	}
	p.srv = &http.Server{
		Handler: http.HandlerFunc(p.handle),
		// ErrorLog noise (client resets, aborted bodies) is the whole
		// point of this proxy; keep it out of test output.
		ErrorLog: nil,
		ConnState: func(c net.Conn, st http.ConnState) {
			switch st {
			case http.StateNew:
				p.mu.Lock()
				p.conns[c] = struct{}{}
				p.mu.Unlock()
			case http.StateClosed, http.StateHijacked:
				p.mu.Lock()
				delete(p.conns, c)
				p.mu.Unlock()
			}
		},
	}
	go func() { _ = p.srv.Serve(ls) }()
	return p, nil
}

// URL is the proxy's base URL — the address callers (routers, probers,
// followers) should be pointed at.
func (p *Proxy) URL() string { return "http://" + p.ls.Addr().String() }

// Target is the backend base URL the proxy forwards to.
func (p *Proxy) Target() string { return p.target.String() }

// Close stops the flap schedule (if any), severs every connection and
// releases the listener. Blackholed requests are released.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() {
		p.StopFlap()
		close(p.closed)
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = p.srv.Shutdown(ctx)
		p.CloseClientConnections()
		p.transport.CloseIdleConnections()
	})
}

// Set replaces the fault rule set. Blackholed requests waiting under
// the old rules are released (and reset).
func (p *Proxy) Set(faults ...Fault) {
	p.mu.Lock()
	p.faults = append([]Fault(nil), faults...)
	close(p.release)
	p.release = make(chan struct{})
	p.mu.Unlock()
}

// Add appends one fault rule without disturbing the others.
func (p *Proxy) Add(f Fault) {
	p.mu.Lock()
	p.faults = append(p.faults, f)
	close(p.release)
	p.release = make(chan struct{})
	p.mu.Unlock()
}

// Clear removes every fault rule and brings the proxy up. Blackholed
// requests are released.
func (p *Proxy) Clear() {
	p.mu.Lock()
	p.faults = nil
	p.down = false
	close(p.release)
	p.release = make(chan struct{})
	p.mu.Unlock()
}

// SetDown flips the blanket kill switch: while down, every request —
// including one already sleeping in a latency fault — aborts with a
// connection reset and the backend never sees it.
func (p *Proxy) SetDown(down bool) {
	p.mu.Lock()
	p.down = down
	close(p.release)
	p.release = make(chan struct{})
	p.mu.Unlock()
}

// Down reports the kill switch.
func (p *Proxy) Down() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// CloseClientConnections severs every open client connection, so
// in-flight requests die at the transport level like a process crash.
func (p *Proxy) CloseClientConnections() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		if tcp, ok := c.(*net.TCPConn); ok {
			_ = tcp.SetLinger(0)
		}
		_ = c.Close()
	}
}

// Kill is SetDown(true) plus CloseClientConnections — the one-call
// process-crash simulation.
func (p *Proxy) Kill() {
	p.SetDown(true)
	p.CloseClientConnections()
}

// Revive is SetDown(false).
func (p *Proxy) Revive() { p.SetDown(false) }

// StartFlap drives the down switch on a schedule: up for up, then down
// (with connections severed) for down, repeating until StopFlap or
// Close. At most one flap schedule runs at a time; starting a new one
// replaces the old.
func (p *Proxy) StartFlap(up, down time.Duration) {
	p.StopFlap()
	p.flapMu.Lock()
	stop := make(chan struct{})
	done := make(chan struct{})
	p.flapStop, p.flapDone = stop, done
	p.flapMu.Unlock()
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-p.closed:
				return
			case <-time.After(up):
			}
			p.Kill()
			select {
			case <-stop:
				p.Revive()
				return
			case <-p.closed:
				return
			case <-time.After(down):
			}
			p.Revive()
		}
	}()
}

// StopFlap halts the flap schedule and leaves the proxy up.
func (p *Proxy) StopFlap() {
	p.flapMu.Lock()
	stop, done := p.flapStop, p.flapDone
	p.flapStop, p.flapDone = nil, nil
	p.flapMu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Inflight is the number of requests currently inside the proxy
// (including time spent in the backend).
func (p *Proxy) Inflight() int64 { return p.inflight.Load() }

// WaitIdle blocks until no request is in flight, or the timeout
// elapses; it reports whether the proxy went idle.
func (p *Proxy) WaitIdle(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for p.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// Stats snapshots the outcome counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Requests:    p.requests.Value(),
		Forwarded:   p.forwarded.Value(),
		Resets:      p.resets.Value(),
		Blackholed:  p.blackholed.Value(),
		Injected:    p.injected.Value(),
		Truncated:   p.truncated.Value(),
		Delayed:     p.delayed.Value(),
		UpstreamErr: p.upstreamErr.Value(),
	}
}

// effect is the composed verdict of every matching rule for one
// request, drawn once so the probability source stays deterministic.
type effect struct {
	latency   time.Duration
	reset     bool
	blackhole bool
	status    int
	bps       int
	truncate  int64 // 0 = no truncation
}

// decide composes the fault rules into one per-request effect and
// returns the release channel to wait on for blackholes.
func (p *Proxy) decide(path string) (effect, chan struct{}) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var e effect
	for _, f := range p.faults {
		if f.Path != "" && !strings.HasPrefix(path, f.Path) {
			continue
		}
		if f.Prob > 0 && f.Prob <= 1 && p.rng.Float64() >= f.Prob {
			continue
		}
		e.latency += f.Latency
		if f.Jitter > 0 {
			e.latency += time.Duration(p.rng.Int63n(int64(f.Jitter)))
		}
		terminal := e.reset || e.blackhole || e.status != 0
		if !terminal {
			switch {
			case f.Reset:
				e.reset = true
			case f.Blackhole:
				e.blackhole = true
			case f.Status != 0:
				e.status = f.Status
			}
		}
		if f.BytesPerSec > 0 && (e.bps == 0 || f.BytesPerSec < e.bps) {
			e.bps = f.BytesPerSec
		}
		if f.TruncateBody > 0 && (e.truncate == 0 || f.TruncateBody < e.truncate) {
			e.truncate = f.TruncateBody
		}
	}
	return e, p.release
}

func (p *Proxy) isDown() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.down
}

// abort severs the client connection without a response: hijack and
// linger-0 close (a true RST) when possible, else the abort panic the
// net/http server converts into a torn connection.
func (p *Proxy) abort(w http.ResponseWriter) {
	p.resets.Inc()
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			if tcp, ok := conn.(*net.TCPConn); ok {
				_ = tcp.SetLinger(0)
			}
			_ = conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

func (p *Proxy) handle(w http.ResponseWriter, r *http.Request) {
	p.inflight.Add(1)
	defer p.inflight.Add(-1)
	p.requests.Inc()

	if p.isDown() {
		p.abort(w)
		return
	}
	e, release := p.decide(r.URL.Path)

	if e.latency > 0 {
		p.delayed.Inc()
		select {
		case <-time.After(e.latency):
		case <-r.Context().Done():
			p.abort(w)
			return
		case <-p.closed:
			p.abort(w)
			return
		}
		// A kill that landed during the sleep still aborts the request
		// — "died mid-transfer" for callers widening fault windows with
		// latency.
		if p.isDown() {
			p.abort(w)
			return
		}
	}
	switch {
	case e.reset:
		p.abort(w)
		return
	case e.blackhole:
		p.blackholed.Inc()
		select {
		case <-r.Context().Done():
		case <-release:
		case <-p.closed:
		}
		p.abort(w)
		return
	case e.status != 0:
		p.injected.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(e.status)
		_, _ = w.Write([]byte(`{"error":"faultproxy: injected status"}`))
		return
	}
	p.forward(w, r, e)
}

// forward relays the request to the target and streams the response
// back, applying body-level faults.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, e effect) {
	out, err := http.NewRequestWithContext(r.Context(), r.Method,
		p.target.String()+r.URL.RequestURI(), r.Body)
	if err != nil {
		p.upstreamErr.Inc()
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	out.Header = r.Header.Clone()
	stripHopByHop(out.Header)
	out.ContentLength = r.ContentLength
	resp, err := p.transport.RoundTrip(out)
	if err != nil {
		p.upstreamErr.Inc()
		p.logf("faultproxy: forwarding %s %s: %v", r.Method, r.URL.Path, err)
		p.abort(w) // to the client a dead backend is a torn connection
		return
	}
	defer resp.Body.Close()
	p.forwarded.Inc()
	hdr := w.Header()
	for k, vs := range resp.Header {
		hdr[k] = vs
	}
	stripHopByHop(hdr)
	w.WriteHeader(resp.StatusCode)
	if err := p.copyBody(w, resp.Body, e); err != nil {
		// Truncation requested, or the copy tore: abandon the
		// connection so the client observes the cut instead of a clean
		// end-of-body.
		panic(http.ErrAbortHandler)
	}
}

// copyBody streams the response body, honoring the throttle and the
// truncation point. A non-nil return means the connection must die.
func (p *Proxy) copyBody(w http.ResponseWriter, body io.Reader, e effect) error {
	flusher, _ := w.(http.Flusher)
	chunk := 32 << 10
	var pause time.Duration
	if e.bps > 0 {
		// ~20 pauses per second keeps the rate roughly right without a
		// token bucket.
		chunk = e.bps / 20
		if chunk < 1 {
			chunk = 1
		}
		pause = 50 * time.Millisecond
	}
	buf := make([]byte, chunk)
	var written int64
	for {
		limit := int64(len(buf))
		if e.truncate > 0 && e.truncate-written < limit {
			limit = e.truncate - written
		}
		if limit <= 0 {
			p.truncated.Inc()
			return io.ErrShortWrite
		}
		n, rerr := body.Read(buf[:limit])
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return werr
			}
			written += int64(n)
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr == io.EOF {
			return nil
		}
		if rerr != nil {
			return rerr
		}
		if pause > 0 {
			select {
			case <-p.closed:
				return io.ErrClosedPipe
			case <-time.After(pause):
			}
		}
	}
}

// stripHopByHop removes connection-scoped headers that must not be
// forwarded by a proxy.
func stripHopByHop(h http.Header) {
	for _, k := range []string{"Connection", "Keep-Alive", "Proxy-Connection",
		"Te", "Trailer", "Transfer-Encoding", "Upgrade"} {
		h.Del(k)
	}
}
