package stream

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadTextBasics(t *testing.T) {
	const in = `# comment
% konect-style comment

a b
c d 5
e f 7 1200
g h 2 1300 9
`
	items, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 4 {
		t.Fatalf("got %d items", len(items))
	}
	if items[0] != (Item{Src: "a", Dst: "b", Weight: 1, Time: 0}) {
		t.Fatalf("default fields wrong: %+v", items[0])
	}
	if items[1].Weight != 5 || items[1].Time != 1 {
		t.Fatalf("weight/ordinal wrong: %+v", items[1])
	}
	if items[2].Time != 1200 {
		t.Fatalf("timestamp wrong: %+v", items[2])
	}
	if items[3].Label != 9 {
		t.Fatalf("label wrong: %+v", items[3])
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"loner\n",
		"a b notanumber\n",
		"a b 1 notatime\n",
		"a b 1 2 notalabel\n",
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	items := Generate(CitHepPh().Scaled(0.001))
	var buf bytes.Buffer
	if err := WriteText(&buf, items); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("round trip lost items: %d vs %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("mismatch at %d: %+v vs %+v", i, got[i], items[i])
		}
	}
}

func TestReadTextEmpty(t *testing.T) {
	items, err := ReadText(strings.NewReader("# just comments\n"))
	if err != nil || len(items) != 0 {
		t.Fatalf("items=%v err=%v", items, err)
	}
}
