package stream

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestSliceSource(t *testing.T) {
	items := []Item{{Src: "a", Dst: "b", Weight: 1}, {Src: "b", Dst: "c", Weight: 2}}
	src := NewSliceSource(items)
	got := Collect(src)
	if len(got) != 2 || got[0].Src != "a" || got[1].Dst != "c" {
		t.Fatalf("Collect = %v", got)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("exhausted source returned an item")
	}
	src.Reset()
	if it, ok := src.Next(); !ok || it.Src != "a" {
		t.Fatal("Reset did not rewind")
	}
}

func TestItemString(t *testing.T) {
	it := Item{Src: "a", Dst: "b", Time: 3, Weight: 7}
	if got, want := it.String(), "(a, b; 3; 7)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := EmailEuAll().Scaled(0.01)
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != cfg.Edges {
		t.Fatalf("generated %d items, want %d", len(a), cfg.Edges)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("generation not deterministic at item %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateProperties(t *testing.T) {
	cfg := CitHepPh().Scaled(0.02)
	items := Generate(cfg)
	nodes := map[string]bool{}
	for i, it := range items {
		if it.Src == it.Dst {
			t.Fatalf("self loop at %d: %v", i, it)
		}
		if it.Weight < 1 || it.Weight > int64(cfg.MaxWeight) {
			t.Fatalf("weight out of range: %v", it)
		}
		if it.Time != int64(i) {
			t.Fatalf("timestamps not monotone at %d", i)
		}
		nodes[it.Src] = true
		nodes[it.Dst] = true
	}
	if len(nodes) < 2 || len(nodes) > cfg.Nodes {
		t.Fatalf("touched %d nodes, universe %d", len(nodes), cfg.Nodes)
	}
}

func TestGenerateSkewIsPowerLaw(t *testing.T) {
	// The max out-degree must vastly exceed the mean for a power-law
	// endpoint distribution; this is the skew the paper's square hashing
	// targets.
	cfg := WebNotreDame().Scaled(0.02)
	items := Generate(cfg)
	deg := map[string]int{}
	for _, it := range items {
		deg[it.Src]++
	}
	maxDeg, sum := 0, 0
	for _, d := range deg {
		sum += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sum) / float64(len(deg))
	if float64(maxDeg) < 20*mean {
		t.Fatalf("degree distribution insufficiently skewed: max=%d mean=%.1f", maxDeg, mean)
	}
}

func TestGenerateLabels(t *testing.T) {
	cfg := WebNotreDame().Scaled(0.005)
	cfg.Labels = 8
	for _, it := range Generate(cfg) {
		if it.Label < 1 || it.Label > 8 {
			t.Fatalf("label out of range: %v", it)
		}
	}
}

func TestScaledMinimums(t *testing.T) {
	cfg := EmailEuAll().Scaled(1e-9)
	if cfg.Nodes < 64 || cfg.Edges < 128 {
		t.Fatalf("Scaled lost minimums: %+v", cfg)
	}
	full := Caida()
	if got := full.Scaled(1.0); got.Nodes != full.Nodes || got.Edges != full.Edges {
		t.Fatalf("Scaled(1.0) changed counts: %+v", got)
	}
}

func TestScaledPreservesShapeParameters(t *testing.T) {
	c := LkmlReply().Scaled(0.25)
	if c.DegreeSkew != LkmlReply().DegreeSkew || !c.MultiEdge {
		t.Fatal("Scaled must preserve skew and multigraph flags")
	}
	wantN := int(math.Round(float64(LkmlReply().Nodes) * 0.25))
	if c.Nodes != wantN {
		t.Fatalf("Nodes = %d, want %d", c.Nodes, wantN)
	}
}

func TestGeneratorLazyMatchesGenerate(t *testing.T) {
	cfg := LkmlReply().Scaled(0.01)
	eager := Generate(cfg)
	lazy := Collect(NewGenerator(cfg))
	if len(eager) != len(lazy) {
		t.Fatalf("lazy %d items, eager %d", len(lazy), len(eager))
	}
	for i := range eager {
		if eager[i] != lazy[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	items := Generate(EmailEuAll().Scaled(0.005))
	var buf bytes.Buffer
	if err := WriteAll(&buf, NewSliceSource(items)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(items) {
		t.Fatalf("decoded %d items, want %d", len(got), len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("round-trip mismatch at %d: %v vs %v", i, got[i], items[i])
		}
	}
}

func TestCodecRoundTripQuick(t *testing.T) {
	f := func(src, dst string, tm, w int64, label uint32) bool {
		in := Item{Src: src, Dst: dst, Time: tm, Weight: w, Label: label}
		var buf bytes.Buffer
		if err := WriteAll(&buf, NewSliceSource([]Item{in})); err != nil {
			return false
		}
		out, err := ReadAll(&buf)
		return err == nil && len(out) == 1 && out[0] == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCodecEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, NewSliceSource(nil)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream round-trip: %v items, err=%v", got, err)
	}
}

func TestCodecBadMagic(t *testing.T) {
	if _, err := ReadAll(bytes.NewReader([]byte("NOPE....."))); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, NewSliceSource([]Item{{Src: "abc", Dst: "def", Weight: 5}})); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadAll(bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated stream decoded without error")
	}
}

// TestCodecTruncatedAfterLengthPrefix pins a fuzzer-found case: a body
// cut immediately after a record's string-length prefix (zero content
// bytes follow the promise) must surface as a truncation error, not
// decode as a clean empty stream.
func TestCodecTruncatedAfterLengthPrefix(t *testing.T) {
	got, err := ReadAll(bytes.NewReader([]byte("GSS1\x05")))
	if err == nil {
		t.Fatalf("length-prefix-only stream decoded cleanly: %v items", got)
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := EmailEuAll().Scaled(0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
