package stream

import "repro/internal/hashing"

// HashedItem is a stream item carrying its endpoint hashes, computed
// once at the edge of the system. HSrc and HDst are the full 64-bit
// hashing.Hash64 values of Src and Dst — deliberately NOT reduced into
// any sketch's node space, because the node-space modulus M differs per
// backend (sharded and windowed backends scale the matrix width).
// Every consumer derives its local node hash with a single modulo;
// since every fingerprint range F = 2^fpBits divides every M, the
// fingerprints derived from HSrc%M equal HSrc's own low fingerprint
// bits, so one wire representation serves every backend without
// re-hashing the identifier strings.
type HashedItem struct {
	Item
	HSrc uint64 // hashing.Hash64(Src)
	HDst uint64 // hashing.Hash64(Dst)
	FPs  uint32 // PackFingerprints(HSrc, HDst)
}

// PackFingerprints packs the width-stable 16-bit fingerprint halves of
// the two endpoint hashes: f16(src)<<16 | f16(dst). A backend with
// fpBits-bit fingerprints recovers its own pair by masking each half
// with 2^fpBits-1 (fingerprint ranges are powers of two ≤ 2^16, so the
// low 16 bits of the full hash contain every backend's fingerprint).
// The binary wire format also uses the packed pair as a cheap
// integrity check on the carried hashes.
func PackFingerprints(hsrc, hdst uint64) uint32 {
	return uint32(hsrc&0xffff)<<16 | uint32(hdst&0xffff)
}

// HashItem computes the edge hashes of it once and returns the item in
// carried-hash form.
func HashItem(it Item) HashedItem {
	hs := hashing.Hash64(it.Src)
	hd := hashing.Hash64(it.Dst)
	return HashedItem{Item: it, HSrc: hs, HDst: hd, FPs: PackFingerprints(hs, hd)}
}

// HashItems appends the hashed form of every item to dst and returns
// the extended slice; pass dst[:0] to reuse a scratch buffer.
func HashItems(items []Item, dst []HashedItem) []HashedItem {
	for _, it := range items {
		dst = append(dst, HashItem(it))
	}
	return dst
}

// StripHashed appends the plain items of a hashed batch to dst — the
// adapter direction for sinks that only speak []Item.
func StripHashed(items []HashedItem, dst []Item) []Item {
	for i := range items {
		dst = append(dst, items[i].Item)
	}
	return dst
}
