package stream

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Text edge-list support: the format used by SNAP/KONECT exports, so
// the paper's real datasets can be fed in directly when available.
// Each non-comment line is
//
//	src dst [weight [time [label]]]
//
// separated by tabs or spaces; '#' and '%' start comment lines.
// Missing weight defaults to 1, missing time to the line ordinal.

// ReadText decodes an edge-list text stream.
func ReadText(r io.Reader) ([]Item, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var items []Item
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		it, err := parseTextLine(line, int64(len(items)))
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", lineNo, err)
		}
		items = append(items, it)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return items, nil
}

func parseTextLine(line string, ordinal int64) (Item, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Item{}, fmt.Errorf("want at least src and dst, got %q", line)
	}
	it := Item{Src: fields[0], Dst: fields[1], Weight: 1, Time: ordinal}
	if len(fields) >= 3 {
		w, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return Item{}, fmt.Errorf("bad weight %q: %v", fields[2], err)
		}
		it.Weight = w
	}
	if len(fields) >= 4 {
		ts, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil {
			return Item{}, fmt.Errorf("bad timestamp %q: %v", fields[3], err)
		}
		it.Time = ts
	}
	if len(fields) >= 5 {
		label, err := strconv.ParseUint(fields[4], 10, 32)
		if err != nil {
			return Item{}, fmt.Errorf("bad label %q: %v", fields[4], err)
		}
		it.Label = uint32(label)
	}
	return it, nil
}

// WriteText encodes items as a tab-separated edge list with all five
// fields, preceded by a comment header.
func WriteText(w io.Writer, items []Item) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# src\tdst\tweight\ttime\tlabel"); err != nil {
		return err
	}
	for _, it := range items {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%d\t%d\n",
			it.Src, it.Dst, it.Weight, it.Time, it.Label); err != nil {
			return err
		}
	}
	return bw.Flush()
}
