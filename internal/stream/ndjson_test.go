package stream

import (
	"bytes"
	"strings"
	"testing"
)

func TestNDJSONRoundTrip(t *testing.T) {
	items := Generate(DatasetConfig{Name: "rt", Nodes: 50, Edges: 500,
		DegreeSkew: 1.3, WeightSkew: 1.1, MaxWeight: 99, Seed: 3})
	var buf bytes.Buffer
	if err := EncodeNDJSON(&buf, items); err != nil {
		t.Fatal(err)
	}
	var got []Item
	n, err := DecodeNDJSON(&buf, 64, func(batch []Item) error {
		got = append(got, batch...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(items)) {
		t.Fatalf("decoded %d items, want %d", n, len(items))
	}
	for i := range items {
		if got[i] != items[i] {
			t.Fatalf("item %d: %+v != %+v", i, got[i], items[i])
		}
	}
}

func TestNDJSONBatchSizes(t *testing.T) {
	const total = 10
	var buf bytes.Buffer
	var items []Item
	for i := 0; i < total; i++ {
		items = append(items, Item{Src: NodeID(i), Dst: NodeID(i + 1), Weight: int64(i)})
	}
	if err := EncodeNDJSON(&buf, items); err != nil {
		t.Fatal(err)
	}
	d := NewBatchDecoder(bytes.NewReader(buf.Bytes()), 4)
	var sizes []int
	for {
		b := d.Next()
		if b == nil {
			break
		}
		sizes = append(sizes, len(b))
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Fatalf("batch sizes = %v, want [4 4 2]", sizes)
	}
	if d.Items() != total {
		t.Fatalf("Items() = %d, want %d", d.Items(), total)
	}
}

func TestNDJSONDefaultsAndBlankLines(t *testing.T) {
	in := "{\"src\":\"a\",\"dst\":\"b\"}\n\n  \n{\"src\":\"c\",\"dst\":\"d\",\"weight\":0}\n"
	d := NewBatchDecoder(strings.NewReader(in), 10)
	batch := d.Next()
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
	if len(batch) != 2 {
		t.Fatalf("decoded %d items, want 2", len(batch))
	}
	if batch[0].Weight != 1 {
		t.Fatalf("omitted weight = %d, want default 1", batch[0].Weight)
	}
	if batch[1].Weight != 0 {
		t.Fatalf("explicit zero weight = %d, want 0", batch[1].Weight)
	}
}

func TestNDJSONErrors(t *testing.T) {
	cases := []struct {
		name, in string
		wantLine string
	}{
		{"malformed", "{\"src\":\"a\",\"dst\":\"b\"}\nnot json\n", "line 2"},
		{"missing dst", "{\"src\":\"a\"}\n", "line 1"},
		{"missing src", "{\"dst\":\"b\"}\n", "line 1"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var got []Item
			_, err := DecodeNDJSON(strings.NewReader(c.in), 8, func(b []Item) error {
				got = append(got, b...)
				return nil
			})
			if err == nil {
				t.Fatal("want error")
			}
			if !strings.Contains(err.Error(), c.wantLine) {
				t.Fatalf("error %q does not name %s", err, c.wantLine)
			}
		})
	}
	// Items before the bad line still come through.
	var got []Item
	n, err := DecodeNDJSON(strings.NewReader("{\"src\":\"a\",\"dst\":\"b\"}\nbad\n"), 1,
		func(b []Item) error { got = append(got, b...); return nil })
	if err == nil || n != 1 || len(got) != 1 {
		t.Fatalf("partial decode: n=%d got=%d err=%v", n, len(got), err)
	}
}

func TestNDJSONOversizedLine(t *testing.T) {
	long := strings.Repeat("x", maxNDJSONLine+10)
	in := "{\"src\":\"" + long + "\",\"dst\":\"b\"}\n"
	_, err := DecodeNDJSON(strings.NewReader(in), 8, func([]Item) error { return nil })
	if err == nil {
		t.Fatal("oversized line accepted")
	}
}
