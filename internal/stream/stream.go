// Package stream models graph streams (Definition 1 of the paper): an
// unbounded sequence of items, each a directed edge with a timestamp and
// a weight. It also provides deterministic synthetic dataset generators
// that stand in for the paper's evaluation datasets (see DESIGN.md §3)
// and a compact binary codec for stream files.
package stream

import (
	"fmt"
	"strconv"
)

// Item is one element of a graph stream: a directed edge from Src to Dst
// observed at time Time with weight Weight. A negative weight deletes
// (part of) a previously inserted item, per Definition 1.
type Item struct {
	Src    string
	Dst    string
	Time   int64
	Weight int64
	Label  uint32 // optional edge label (ports/protocol in §VII-I); 0 if unused
}

// String renders the item in the paper's (src, dst; t; w) notation.
func (it Item) String() string {
	return fmt.Sprintf("(%s, %s; %d; %d)", it.Src, it.Dst, it.Time, it.Weight)
}

// Source yields the items of a graph stream in order. Next returns false
// when the stream is exhausted.
type Source interface {
	Next() (Item, bool)
}

// SliceSource adapts an in-memory slice to a Source.
type SliceSource struct {
	items []Item
	pos   int
}

// NewSliceSource returns a Source over items.
func NewSliceSource(items []Item) *SliceSource { return &SliceSource{items: items} }

// Next implements Source.
func (s *SliceSource) Next() (Item, bool) {
	if s.pos >= len(s.items) {
		return Item{}, false
	}
	it := s.items[s.pos]
	s.pos++
	return it, true
}

// Reset rewinds the source to the beginning of the stream.
func (s *SliceSource) Reset() { s.pos = 0 }

// Collect drains src into a slice.
func Collect(src Source) []Item {
	var items []Item
	for {
		it, ok := src.Next()
		if !ok {
			return items
		}
		items = append(items, it)
	}
}

// NodeID formats the canonical synthetic node identifier for ordinal i.
// All generators use it, so ground-truth stores and sketches agree on
// identifiers.
func NodeID(i int) string { return "n" + strconv.Itoa(i) }
