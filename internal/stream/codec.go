package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary stream-file format:
//
//	magic   [4]byte  "GSS1"
//	records: for each item
//	  srcLen  uvarint, src bytes
//	  dstLen  uvarint, dst bytes
//	  time    varint
//	  weight  varint
//	  label   uvarint
//
// The format is append-friendly: a reader consumes records until EOF, so
// a stream file can be tailed while a producer is still writing.

var magic = [4]byte{'G', 'S', 'S', '1'}

// ErrBadMagic is returned when a stream file does not start with the
// expected header.
var ErrBadMagic = errors.New("stream: bad magic, not a GSS1 stream file")

// maxIDLen bounds the identifier lengths the binary decoders accept; a
// forged length prefix must not turn into an arbitrary allocation.
const maxIDLen = 1 << 20

// AppendItem appends the binary record encoding of it to buf and
// returns the extended slice. The record layout is the GSS1 field
// sequence without the stream header, so it doubles as the payload
// format of length-prefixed record logs (internal/oplog).
func AppendItem(buf []byte, it Item) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(it.Src)))
	buf = append(buf, it.Src...)
	buf = binary.AppendUvarint(buf, uint64(len(it.Dst)))
	buf = append(buf, it.Dst...)
	buf = binary.AppendVarint(buf, it.Time)
	buf = binary.AppendVarint(buf, it.Weight)
	return binary.AppendUvarint(buf, uint64(it.Label))
}

// DecodeItem decodes one AppendItem record from the front of b,
// returning the item and the number of bytes consumed. Trailing bytes
// are left for the caller; a short or malformed prefix is an error.
func DecodeItem(b []byte) (Item, int, error) {
	var it Item
	pos := 0
	readString := func() (string, error) {
		n, k := binary.Uvarint(b[pos:])
		if k <= 0 {
			return "", fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
		}
		if n > maxIDLen {
			return "", fmt.Errorf("stream: unreasonable string length %d", n)
		}
		pos += k
		if uint64(len(b)-pos) < n {
			return "", fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
		}
		s := string(b[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}
	var err error
	if it.Src, err = readString(); err != nil {
		return Item{}, 0, err
	}
	if it.Dst, err = readString(); err != nil {
		return Item{}, 0, err
	}
	readVarint := func() (int64, error) {
		v, k := binary.Varint(b[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
		}
		pos += k
		return v, nil
	}
	if it.Time, err = readVarint(); err != nil {
		return Item{}, 0, err
	}
	if it.Weight, err = readVarint(); err != nil {
		return Item{}, 0, err
	}
	label, k := binary.Uvarint(b[pos:])
	if k <= 0 {
		return Item{}, 0, fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
	}
	pos += k
	if label > 1<<32-1 {
		return Item{}, 0, fmt.Errorf("stream: label %d overflows uint32", label)
	}
	it.Label = uint32(label)
	return it, pos, nil
}

// Writer encodes items to an io.Writer in the GSS1 binary format.
type Writer struct {
	w       *bufio.Writer
	scratch []byte
	started bool
}

// NewWriter returns a Writer emitting to w. The header is written on the
// first WriteItem call.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), scratch: make([]byte, 0, 64)}
}

// WriteItem appends one item to the stream file.
func (sw *Writer) WriteItem(it Item) error {
	if !sw.started {
		if _, err := sw.w.Write(magic[:]); err != nil {
			return err
		}
		sw.started = true
	}
	sw.scratch = AppendItem(sw.scratch[:0], it)
	_, err := sw.w.Write(sw.scratch)
	return err
}

// Flush writes any buffered data to the underlying writer. Callers must
// Flush before closing the destination.
func (sw *Writer) Flush() error {
	if !sw.started { // an empty stream still gets a valid header
		if _, err := sw.w.Write(magic[:]); err != nil {
			return err
		}
		sw.started = true
	}
	return sw.w.Flush()
}

// Reader decodes a GSS1 stream file. It implements Source; decoding
// errors after a well-formed prefix surface through Err.
type Reader struct {
	r       *bufio.Reader
	started bool
	err     error
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

// Next implements Source. It returns false at EOF or on the first
// malformed record; check Err to distinguish.
func (sr *Reader) Next() (Item, bool) {
	if sr.err != nil {
		return Item{}, false
	}
	if !sr.started {
		var got [4]byte
		if _, err := io.ReadFull(sr.r, got[:]); err != nil {
			sr.setErr(err)
			return Item{}, false
		}
		if got != magic {
			sr.err = ErrBadMagic
			return Item{}, false
		}
		sr.started = true
	}
	src, err := sr.readString()
	if err != nil {
		sr.setErr(err) // EOF here is a clean end of stream
		return Item{}, false
	}
	var it Item
	it.Src = src
	if it.Dst, err = sr.readString(); err != nil {
		sr.err = truncated(err)
		return Item{}, false
	}
	if it.Time, err = binary.ReadVarint(sr.r); err != nil {
		sr.err = truncated(err)
		return Item{}, false
	}
	if it.Weight, err = binary.ReadVarint(sr.r); err != nil {
		sr.err = truncated(err)
		return Item{}, false
	}
	label, err := binary.ReadUvarint(sr.r)
	if err != nil {
		sr.err = truncated(err)
		return Item{}, false
	}
	it.Label = uint32(label)
	return it, true
}

// Err reports the first error encountered; nil after a clean EOF.
func (sr *Reader) Err() error { return sr.err }

func (sr *Reader) setErr(err error) {
	if err == io.EOF {
		return // clean end of stream
	}
	sr.err = err
}

func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
	}
	return err
}

func (sr *Reader) readString() (string, error) {
	n, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return "", err // EOF before any byte: a clean record boundary
	}
	if n > maxIDLen {
		return "", fmt.Errorf("stream: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(sr.r, buf); err != nil {
		if err == io.EOF {
			// The length prefix promised bytes that never arrived. ReadFull
			// only maps EOF to ErrUnexpectedEOF after a partial read; a
			// zero-byte read must be promoted too, or a body cut right
			// after the prefix would pass as a clean end of stream.
			err = io.ErrUnexpectedEOF
		}
		return "", err
	}
	return string(buf), nil
}

// WriteAll encodes all items from src to w and flushes.
func WriteAll(w io.Writer, src Source) error {
	sw := NewWriter(w)
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		if err := sw.WriteItem(it); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// ReadAll decodes every item from r.
func ReadAll(r io.Reader) ([]Item, error) {
	sr := NewReader(r)
	items := Collect(sr)
	return items, sr.Err()
}
