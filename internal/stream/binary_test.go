package stream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/hashing"
)

func testHashedItems(n int, seed int64) []HashedItem {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Src:    fmt.Sprintf("src-%d", rng.Intn(n/2+1)),
			Dst:    fmt.Sprintf("dst-%d", rng.Intn(n/2+1)),
			Time:   rng.Int63n(1000) - 100,
			Weight: rng.Int63n(50) - 10,
			Label:  uint32(rng.Intn(5)),
		}
	}
	return HashItems(items, nil)
}

func TestHashItemCarriesFullHashes(t *testing.T) {
	it := HashItem(Item{Src: "alpha", Dst: "beta", Weight: 3})
	if it.HSrc != hashing.Hash64("alpha") || it.HDst != hashing.Hash64("beta") {
		t.Fatalf("HashItem carried %#x/%#x, want full Hash64 values", it.HSrc, it.HDst)
	}
	if it.FPs != PackFingerprints(it.HSrc, it.HDst) {
		t.Fatalf("FPs %#x inconsistent with hashes", it.FPs)
	}
	// The carried 16-bit fingerprint halves must contain every
	// backend's fingerprint: for any fpBits <= 16, H64 % 2^fpBits is a
	// mask of the carried half.
	for _, fpBits := range []int{4, 8, 12, 16} {
		f := uint64(1) << fpBits
		want := it.HSrc % f
		if got := uint64(it.FPs>>16) & (f - 1); got != want {
			t.Fatalf("fpBits=%d: carried src fingerprint %d, want %d", fpBits, got, want)
		}
	}
}

func TestBinaryBatchRoundTrip(t *testing.T) {
	items := testHashedItems(500, 7)
	var buf bytes.Buffer
	bw := NewBinaryBatchWriter(&buf)
	for i := 0; i < len(items); i += 64 {
		end := i + 64
		if end > len(items) {
			end = len(items)
		}
		if err := bw.WriteBatch(items[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, items) {
		t.Fatalf("round trip diverged: got %d items", len(got))
	}
}

func TestBinaryDecoderReuseMatchesFresh(t *testing.T) {
	items := testHashedItems(300, 11)
	var buf bytes.Buffer
	bw := NewBinaryBatchWriter(&buf)
	for i := 0; i < len(items); i += 37 {
		end := i + 37
		if end > len(items) {
			end = len(items)
		}
		if err := bw.WriteBatch(items[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}

	fresh, err := ReadAllBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dec := NewBinaryBatchDecoder(bytes.NewReader(buf.Bytes()))
	dec.SetReuse(true)
	var reused []HashedItem
	for {
		b := dec.Next()
		if b == nil {
			break
		}
		// Payload views are alive exactly while the batch is: they must
		// decode back to the batch's items.
		for i, p := range dec.Payloads() {
			it, n, err := DecodeItem(p)
			if err != nil || n != len(p) {
				t.Fatalf("payload %d: %v (consumed %d of %d)", i, err, n, len(p))
			}
			if it != b[i].Item {
				t.Fatalf("payload %d decodes to %+v, batch holds %+v", i, it, b[i].Item)
			}
		}
		reused = append(reused, b...)
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, reused) {
		t.Fatalf("reuse decode diverged from fresh decode")
	}
	if dec.Items() != int64(len(items)) {
		t.Fatalf("Items() = %d, want %d", dec.Items(), len(items))
	}
}

func TestBinaryWriterSplitsOversizedBatches(t *testing.T) {
	items := testHashedItems(maxFrameItems+10, 3)
	var buf bytes.Buffer
	bw := NewBinaryBatchWriter(&buf)
	if err := bw.WriteBatch(items); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	dec := NewBinaryBatchDecoder(bytes.NewReader(buf.Bytes()))
	var got int
	for {
		b := dec.Next()
		if b == nil {
			break
		}
		got += len(b)
	}
	if err := dec.Err(); err != nil {
		t.Fatal(err)
	}
	if got != len(items) || dec.Frames() < 2 {
		t.Fatalf("decoded %d items in %d frames, want %d items in >=2 frames",
			got, dec.Frames(), len(items))
	}
}

// TestBinaryForgedLengths pins the maxIDLen discipline: forged frame
// lengths, record counts, and identifier lengths are rejected by
// validation, not by attempting the allocation they claim to need.
func TestBinaryForgedLengths(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		bw := NewBinaryBatchWriter(&buf)
		if err := bw.WriteBatch(testHashedItems(3, 1)); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	cases := map[string][]byte{
		"bad magic": append([]byte("GSSX"), valid[4:]...),
		"frame length past cap": append(append([]byte{}, batchMagic[:]...),
			binary.AppendUvarint(nil, maxFrameBytes+1)...),
		"count past cap": func() []byte {
			b := append([]byte{}, batchMagic[:]...)
			body := binary.AppendUvarint(nil, maxFrameItems+1)
			b = binary.AppendUvarint(b, uint64(len(body)))
			return append(b, body...)
		}(),
		"count claims more records than the frame holds": func() []byte {
			b := append([]byte{}, batchMagic[:]...)
			body := binary.AppendUvarint(nil, 1000) // 1000 records, no bytes
			b = binary.AppendUvarint(b, uint64(len(body)))
			return append(b, body...)
		}(),
		"identifier length past maxIDLen": func() []byte {
			rec := make([]byte, hashedPrefixLen)
			var hs, hd uint64 = 1, 2
			binary.LittleEndian.PutUint64(rec[0:8], hs)
			binary.LittleEndian.PutUint64(rec[8:16], hd)
			binary.LittleEndian.PutUint32(rec[16:20], PackFingerprints(hs, hd))
			rec = binary.AppendUvarint(rec, maxIDLen+1)
			rec = append(rec, make([]byte, 64)...) // some bytes, far fewer than claimed
			b := append([]byte{}, batchMagic[:]...)
			body := binary.AppendUvarint(nil, 1)
			body = append(body, rec...)
			b = binary.AppendUvarint(b, uint64(len(body)))
			return append(b, body...)
		}(),
		"fingerprints disagree with hashes": func() []byte {
			it := HashItem(Item{Src: "a", Dst: "b", Weight: 1})
			it.FPs ^= 1
			rec := AppendHashedItem(nil, it)
			b := append([]byte{}, batchMagic[:]...)
			body := binary.AppendUvarint(nil, 1)
			body = append(body, rec...)
			b = binary.AppendUvarint(b, uint64(len(body)))
			return append(b, body...)
		}(),
		"trailing bytes after the frame's records": func() []byte {
			rec := AppendHashedItem(nil, HashItem(Item{Src: "a", Dst: "b", Weight: 1}))
			b := append([]byte{}, batchMagic[:]...)
			body := binary.AppendUvarint(nil, 1)
			body = append(body, rec...)
			body = append(body, 0xee)
			b = binary.AppendUvarint(b, uint64(len(body)))
			return append(b, body...)
		}(),
	}
	for name, data := range cases {
		dec := NewBinaryBatchDecoder(bytes.NewReader(data))
		for dec.Next() != nil {
		}
		if dec.Err() == nil {
			t.Errorf("%s: decoder accepted the stream", name)
		}
	}

	// Truncations of a valid stream never panic and never vouch for a
	// torn frame: every full frame decoded before the cut is fine, the
	// cut frame is not.
	for cut := 0; cut < len(valid); cut++ {
		dec := NewBinaryBatchDecoder(bytes.NewReader(valid[:cut]))
		for dec.Next() != nil {
		}
		if cut > 4 && dec.Err() == nil && dec.Items() != 0 {
			t.Fatalf("cut at %d: accepted %d items from a torn frame", cut, dec.Items())
		}
	}
}

// TestScanHashedRecordDifferential pins the router's fast scan to the
// reference decoder: on any byte prefix they agree on accept/reject,
// consumed length, and the routing key.
func TestScanHashedRecordDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var rec []byte
	for trial := 0; trial < 2000; trial++ {
		it := HashItem(Item{
			Src:    fmt.Sprintf("s%d", rng.Intn(100)),
			Dst:    fmt.Sprintf("d%d", rng.Intn(100)),
			Time:   rng.Int63n(2000) - 1000,
			Weight: rng.Int63n(100) - 50,
			Label:  uint32(rng.Intn(10)),
		})
		rec = AppendHashedItem(rec[:0], it)
		// Exercise the intact record, truncations, and single-byte
		// corruptions.
		b := rec
		switch trial % 3 {
		case 1:
			b = rec[:rng.Intn(len(rec)+1)]
		case 2:
			b = append([]byte{}, rec...)
			b[rng.Intn(len(b))] ^= 1 << uint(rng.Intn(8))
		}
		want, wantN, wantErr := DecodeHashedItem(b)
		hs, n, err := ScanHashedRecord(b)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("scan err=%v, decode err=%v on %x", err, wantErr, b)
		}
		if err == nil && (n != wantN || hs != want.HSrc) {
			t.Fatalf("scan (%d, %#x), decode (%d, %#x) on %x", n, hs, wantN, want.HSrc, b)
		}
	}
}

func FuzzBinaryBatchDecode(f *testing.F) {
	for _, seed := range binaryFuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Never panic; whatever is accepted is internally consistent.
		dec := NewBinaryBatchDecoder(bytes.NewReader(data))
		var fresh []HashedItem
		for {
			b := dec.Next()
			if b == nil {
				break
			}
			for i := range b {
				if b[i].FPs != PackFingerprints(b[i].HSrc, b[i].HDst) {
					t.Fatalf("decoder vouched for inconsistent fingerprints: %+v", b[i])
				}
			}
			for i, p := range dec.Payloads() {
				it, n, err := DecodeItem(p)
				if err != nil || n != len(p) || it != b[i].Item {
					t.Fatalf("payload %d inconsistent with decoded item", i)
				}
			}
			fresh = append(fresh, b...)
		}
		freshErr := dec.Err()

		// Reuse mode decodes the same stream to the same items.
		dec2 := NewBinaryBatchDecoder(bytes.NewReader(data))
		dec2.SetReuse(true)
		var reused []HashedItem
		for {
			b := dec2.Next()
			if b == nil {
				break
			}
			reused = append(reused, b...)
		}
		if (freshErr == nil) != (dec2.Err() == nil) || !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("reuse decode diverged: %d vs %d items (%v vs %v)",
				len(fresh), len(reused), freshErr, dec2.Err())
		}

		// The router's record scan agrees with the reference decoder on
		// arbitrary bytes.
		want, wantN, wantErr := DecodeHashedItem(data)
		hs, n, err := ScanHashedRecord(data)
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("scan err=%v, decode err=%v", err, wantErr)
		}
		if err == nil && (n != wantN || hs != want.HSrc) {
			t.Fatalf("scan (%d, %#x) != decode (%d, %#x)", n, hs, wantN, want.HSrc)
		}

		// What was accepted re-encodes and re-decodes identically.
		if len(fresh) == 0 {
			return
		}
		var buf bytes.Buffer
		bw := NewBinaryBatchWriter(&buf)
		if err := bw.WriteBatch(fresh); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatalf("re-encode flush: %v", err)
		}
		again, err := ReadAllBinary(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decode of writer output: %v", err)
		}
		if !reflect.DeepEqual(fresh, again) {
			t.Fatalf("round trip diverged")
		}
	})
}

// binaryFuzzSeeds builds the committed seed corpus for
// FuzzBinaryBatchDecode: valid streams, boundary shapes, and forgeries.
func binaryFuzzSeeds() [][]byte {
	valid := func(items []HashedItem, per int) []byte {
		var buf bytes.Buffer
		bw := NewBinaryBatchWriter(&buf)
		for i := 0; i < len(items); i += per {
			end := i + per
			if end > len(items) {
				end = len(items)
			}
			if err := bw.WriteBatch(items[i:end]); err != nil {
				panic(err)
			}
		}
		if err := bw.Flush(); err != nil {
			panic(err)
		}
		return buf.Bytes()
	}
	small := HashItems([]Item{
		{Src: "a", Dst: "b", Weight: 1},
		{Src: "b", Dst: "c", Time: -5, Weight: -2, Label: 7},
		{Src: "", Dst: "", Weight: 0},
	}, nil)
	two := valid(small, 2)
	forgedFPs := append([]byte{}, two...)
	forgedFPs[len(forgedFPs)-1] ^= 0x40
	return [][]byte{
		valid(small, 3),
		two,
		valid(nil, 1),                 // magic only
		two[:len(two)-3],              // torn last frame
		append([]byte("GSSX"), 1, 2),  // wrong magic
		append([]byte{}, two[:11]...), // cut mid-record
		forgedFPs,                     // corrupt tail byte
		binary.AppendUvarint(append([]byte{}, batchMagic[:]...), maxFrameBytes+7), // forged frame length
	}
}
