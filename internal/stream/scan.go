package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"io"
)

// Routing scan: the cluster router forwards NDJSON lines to partition
// members verbatim, so the only decode work it fundamentally owes per
// item is "which source node is this?" plus enough validation that a
// member will not choke mid-stream on a line the router vouched for.
// ScanItemLine answers exactly that: a single left-to-right pass over
// the line that extracts src and dst and structurally validates the
// rest, falling back to the full reference decode whenever the fast
// scan cannot PROVE the reference would accept the line with the same
// endpoints. The fast path is therefore sound by construction — it
// only ever accepts a subset of what the reference accepts — and the
// differential fuzz target (FuzzScanItemLine) pins the two together.

// ErrMissingEndpoints mirrors the batch decoder's contract: an item
// without both endpoints is not routable.
var ErrMissingEndpoints = errors.New("stream: src and dst are required")

// ScanItemLine extracts the endpoints of one NDJSON item line without
// materializing the item. It accepts exactly the lines the NDJSON
// batch decoder accepts (same JSON grammar, same required fields) and
// returns the same src and dst values.
func ScanItemLine(line []byte) (src, dst string, err error) {
	if s, d, ok := scanItemFast(line); ok {
		return s, d, nil
	}
	var wi wireItem
	if err := json.Unmarshal(line, &wi); err != nil {
		return "", "", err
	}
	if wi.Src == "" || wi.Dst == "" {
		return "", "", ErrMissingEndpoints
	}
	return wi.Src, wi.Dst, nil
}

// scanItemFast is the no-allocation-but-the-answer pass. It reports
// ok=false — punting to the reference decoder — on anything it cannot
// prove: escape sequences or non-ASCII bytes in strings (encoding/json
// unescapes and replaces invalid UTF-8), numbers that might overflow
// or are not plain integers where the wire type demands one, duplicate
// endpoint keys (last occurrence wins, so every occurrence must be
// provable), deep nesting, or any structural irregularity.
func scanItemFast(line []byte) (src, dst string, ok bool) {
	i := skipWS(line, 0)
	if i >= len(line) || line[i] != '{' {
		return "", "", false
	}
	i++
	first := true
	for {
		i = skipWS(line, i)
		if i >= len(line) {
			return "", "", false
		}
		if line[i] == '}' {
			i++
			break
		}
		if !first {
			if line[i] != ',' {
				return "", "", false
			}
			i = skipWS(line, i+1)
		}
		first = false
		key, j, kOK := scanPlainString(line, i)
		if !kOK {
			return "", "", false
		}
		i = skipWS(line, j)
		if i >= len(line) || line[i] != ':' {
			return "", "", false
		}
		i = skipWS(line, i+1)
		var vOK bool
		switch {
		case bytes.Equal(key, srcKey), bytes.Equal(key, dstKey):
			var val []byte
			val, j, vOK = scanPlainString(line, i)
			if !vOK || len(val) == 0 {
				return "", "", false
			}
			if bytes.Equal(key, srcKey) {
				src = string(val)
			} else {
				dst = string(val)
			}
		case bytes.Equal(key, weightKey), bytes.Equal(key, timeKey):
			// int64 wire fields: up to 18 digits cannot overflow.
			j, vOK = scanPlainInt(line, i, 18, true)
		case bytes.Equal(key, labelKey):
			// uint32 wire field: up to 9 digits, no sign.
			j, vOK = scanPlainInt(line, i, 9, false)
		default:
			// encoding/json matches struct fields case-insensitively
			// (last occurrence wins), so a key like "SRC" would bind to
			// the src field in the reference decode — only the exact
			// spellings above are provable here.
			for _, known := range [...][]byte{srcKey, dstKey, weightKey, timeKey, labelKey} {
				if bytes.EqualFold(key, known) {
					return "", "", false
				}
			}
			j, vOK = scanAnyValue(line, i, 0)
		}
		if !vOK {
			return "", "", false
		}
		i = j
	}
	if skipWS(line, i) != len(line) {
		return "", "", false
	}
	if src == "" || dst == "" {
		return "", "", false
	}
	return src, dst, true
}

var (
	srcKey    = []byte("src")
	dstKey    = []byte("dst")
	weightKey = []byte("weight")
	timeKey   = []byte("time")
	labelKey  = []byte("label")
)

func skipWS(b []byte, i int) int {
	for i < len(b) {
		switch b[i] {
		case ' ', '\t', '\r', '\n':
			i++
		default:
			return i
		}
	}
	return i
}

// scanPlainString accepts a JSON string containing only printable
// ASCII with no escapes — the identifier alphabet the fast path can
// pass through byte-for-byte. Anything else (escapes, multi-byte
// UTF-8, control bytes) punts to the reference decoder.
func scanPlainString(b []byte, i int) (val []byte, next int, ok bool) {
	if i >= len(b) || b[i] != '"' {
		return nil, 0, false
	}
	start := i + 1
	for j := start; j < len(b); j++ {
		c := b[j]
		if c == '"' {
			return b[start:j], j + 1, true
		}
		if c == '\\' || c < 0x20 || c > 0x7e {
			return nil, 0, false
		}
	}
	return nil, 0, false
}

// scanPlainInt accepts a plain JSON integer of at most maxDigits
// digits (JSON forbids leading zeros and a leading '+'); neg allows a
// minus sign. Fractions, exponents and longer tokens punt.
func scanPlainInt(b []byte, i, maxDigits int, neg bool) (next int, ok bool) {
	if i < len(b) && b[i] == '-' {
		if !neg {
			return 0, false
		}
		i++
	}
	start := i
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		i++
	}
	n := i - start
	if n == 0 || n > maxDigits {
		return 0, false
	}
	if b[start] == '0' && n > 1 {
		return 0, false
	}
	// A following '.', 'e' or 'E' would make this a non-integer.
	if i < len(b) && (b[i] == '.' || b[i] == 'e' || b[i] == 'E') {
		return 0, false
	}
	return i, true
}

// maxScanDepth bounds nested unknown values; deeper punts.
const maxScanDepth = 16

// scanAnyValue validates one JSON value of any kind under the fast
// path's strict rules (plain strings, integer-or-simple numbers,
// bounded nesting).
func scanAnyValue(b []byte, i, depth int) (next int, ok bool) {
	if depth > maxScanDepth || i >= len(b) {
		return 0, false
	}
	switch b[i] {
	case '"':
		_, j, sOK := scanPlainString(b, i)
		return j, sOK
	case 't':
		return scanLiteral(b, i, "true")
	case 'f':
		return scanLiteral(b, i, "false")
	case 'n':
		return scanLiteral(b, i, "null")
	case '{':
		i = skipWS(b, i+1)
		first := true
		for {
			if i >= len(b) {
				return 0, false
			}
			if b[i] == '}' {
				return i + 1, true
			}
			if !first {
				if b[i] != ',' {
					return 0, false
				}
				i = skipWS(b, i+1)
			}
			first = false
			_, j, kOK := scanPlainString(b, i)
			if !kOK {
				return 0, false
			}
			i = skipWS(b, j)
			if i >= len(b) || b[i] != ':' {
				return 0, false
			}
			i = skipWS(b, i+1)
			j, vOK := scanAnyValue(b, i, depth+1)
			if !vOK {
				return 0, false
			}
			i = skipWS(b, j)
		}
	case '[':
		i = skipWS(b, i+1)
		first := true
		for {
			if i >= len(b) {
				return 0, false
			}
			if b[i] == ']' {
				return i + 1, true
			}
			if !first {
				if b[i] != ',' {
					return 0, false
				}
				i = skipWS(b, i+1)
			}
			first = false
			j, vOK := scanAnyValue(b, i, depth+1)
			if !vOK {
				return 0, false
			}
			i = skipWS(b, j)
		}
	default:
		// A number of any JSON shape; restrict to the integer form the
		// scanner can prove (floats on unknown keys punt — rare).
		return scanPlainInt(b, i, 18, true)
	}
}

func scanLiteral(b []byte, i int, lit string) (int, bool) {
	if len(b)-i < len(lit) || string(b[i:i+len(lit)]) != lit {
		return 0, false
	}
	return i + len(lit), true
}

// NewLineScanner returns a bufio.Scanner over r configured with the
// NDJSON line limits the batch decoder uses, for callers that route
// raw lines instead of decoding items.
func NewLineScanner(r io.Reader) *bufio.Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxNDJSONLine)
	return sc
}
