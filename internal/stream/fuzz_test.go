package stream

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
)

// Decoder robustness: the NDJSON batch decoder sits directly behind
// POST /ingest and the text reader behind dataset loading, so both
// parse attacker- or operator-supplied bytes. Whatever the input, they
// must return items or an error — never panic — and what they do
// accept must round-trip through the matching encoder.

var ndjsonSeeds = [][]byte{
	[]byte(`{"src":"a","dst":"b"}`),
	[]byte("{\"src\":\"a\",\"dst\":\"b\",\"weight\":5,\"time\":9,\"label\":2}\n{\"src\":\"b\",\"dst\":\"c\"}\n"),
	[]byte("\n\n{\"src\":\"a\",\"dst\":\"b\"}\n\n"),
	[]byte(`{"src":"","dst":"b"}`),
	[]byte(`{"src":"a"`),
	[]byte("{\"src\":\"a\",\"dst\":\"b\",\"weight\":-3}\nnot json\n"),
	[]byte("{\"src\":\"\\u00e9\",\"dst\":\"\\ud83d\\ude00\"}\n"),
	{0xff, 0xfe, '{', '}'},
}

func decodeAll(tb testing.TB, data []byte, batchSize int) []Item {
	tb.Helper()
	dec := NewBatchDecoder(bytes.NewReader(data), batchSize)
	var items []Item
	for {
		batch := dec.Next()
		if batch == nil {
			break
		}
		if len(batch) > batchSize && batchSize >= 1 {
			tb.Fatalf("batch of %d exceeds size %d", len(batch), batchSize)
		}
		items = append(items, batch...)
	}
	if dec.Items() != int64(len(items)) {
		tb.Fatalf("Items() = %d, but %d decoded", dec.Items(), len(items))
	}
	for _, it := range items {
		if it.Src == "" || it.Dst == "" {
			tb.Fatalf("decoder passed an item without endpoints: %+v", it)
		}
	}
	return items
}

func FuzzNDJSONDecode(f *testing.F) {
	for _, seed := range ndjsonSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// The same bytes must decode to the same items at any batch
		// size — batching is an amortization knob, not a semantic one.
		items := decodeAll(t, data, 1)
		for _, batchSize := range []int{3, 512} {
			if again := decodeAll(t, data, batchSize); !reflect.DeepEqual(items, again) {
				t.Fatalf("batch size %d decoded %d items, size 1 decoded %d",
					batchSize, len(again), len(items))
			}
		}
		if len(items) == 0 {
			return
		}
		// What was accepted re-encodes and re-decodes identically.
		var buf bytes.Buffer
		if err := EncodeNDJSON(&buf, items); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		dec := NewBatchDecoder(&buf, len(items))
		again := dec.Next()
		if err := dec.Err(); err != nil {
			t.Fatalf("re-decode of encoder output: %v", err)
		}
		if !reflect.DeepEqual(items, again) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", again, items)
		}
	})
}

func FuzzReadText(f *testing.F) {
	f.Add([]byte("a b\n"))
	f.Add([]byte("# comment\n% comment\na\tb\t5\t9\t2\n"))
	f.Add([]byte("a b notanumber\n"))
	f.Add([]byte("lonely\n"))
	f.Add([]byte("a b 9223372036854775807 -1 4294967295\n"))
	f.Add([]byte{0x00, 0x09, 0x20, 0x0a})
	f.Fuzz(func(t *testing.T, data []byte) {
		items, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, it := range items {
			if it.Src == "" || it.Dst == "" {
				t.Fatalf("reader passed an item without endpoints: %+v", it)
			}
		}
		if len(items) == 0 {
			return
		}
		// Accepted items survive a write/read cycle: WriteText emits all
		// five fields and ReadText's whitespace split can't resurrect
		// ambiguity, because accepted identifiers never contain spaces.
		var buf bytes.Buffer
		if err := WriteText(&buf, items); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("re-decode of writer output: %v", err)
		}
		if !reflect.DeepEqual(items, again) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", again, items)
		}
	})
}

// TestGenerateStreamFuzzCorpus mirrors the sketch package's corpus
// convention: committed seeds under testdata/fuzz replay on every go
// test run; GSS_GEN_CORPUS=1 regenerates them.
func TestGenerateStreamFuzzCorpus(t *testing.T) {
	if os.Getenv("GSS_GEN_CORPUS") == "" {
		for _, sub := range []string{"FuzzNDJSONDecode", "FuzzBinaryBatchDecode"} {
			dir := filepath.Join("testdata", "fuzz", sub)
			entries, err := os.ReadDir(dir)
			if err != nil || len(entries) == 0 {
				t.Fatalf("committed %s fuzz corpus missing (%v); regenerate with GSS_GEN_CORPUS=1", sub, err)
			}
		}
		return
	}
	for sub, seeds := range map[string][][]byte{
		"FuzzBinaryBatchDecode": binaryFuzzSeeds(),
		"FuzzNDJSONDecode":      ndjsonSeeds,
		"FuzzReadText": {
			[]byte("a b\n"),
			[]byte("# c\na\tb\t5\t9\t2\n"),
			[]byte("a b 1 2 3 extra\n"),
		},
		"FuzzScanItemLine": {
			[]byte(`{"src":"a","dst":"b"}`),
			[]byte(`{"src":"a","dst":"b","weight":5,"time":9,"label":2}`),
			[]byte(`{"src":"a","dst":"b","SRC":"z"}`),
			[]byte(`{"src":"a","dst":"b","weight":01}`),
			[]byte(`{"src":"a","dst":"b","x":{"y":[true,null,1.5]}}`),
			[]byte(`{"src":"é","dst":"b"}`),
		},
	} {
		d := filepath.Join("testdata", "fuzz", sub)
		if err := os.MkdirAll(d, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
			name := filepath.Join(d, "seed-"+strconv.Itoa(i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
