package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// NDJSON wire format: one JSON object per line, the same field names
// the HTTP API uses. "src" and "dst" are required; "weight" defaults
// to 1 when omitted (an unweighted edge observation); "time" and
// "label" default to 0. Blank lines are skipped, so files can carry
// visual spacing and a trailing newline. NDJSON is the bulk-ingest
// wire form: a producer streams lines, the server decodes them into
// batches and inserts each batch under amortized locking.

// wireItem is Item under the wire field names. Its underlying struct is
// identical to Item's (field names, types and order — only the tags
// differ), so a *Item converts directly to *wireItem and the decoder
// unmarshals into the batch slot in place, with no intermediate copy.
type wireItem struct {
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	Time   int64  `json:"time,omitempty"`
	Weight int64  `json:"weight"`
	Label  uint32 `json:"label,omitempty"`
}

// jsonItem mirrors Item with the wire field names (encode side).
type jsonItem = wireItem

// maxNDJSONLine bounds one encoded item; longer lines are malformed.
const maxNDJSONLine = 1 << 20

// BatchDecoder streams an NDJSON item stream in batches, so an
// arbitrarily long request body is ingested with bounded memory.
type BatchDecoder struct {
	sc        *bufio.Scanner
	batchSize int
	line      int   // 1-based number of the last line read
	items     int64 // items decoded so far
	err       error

	reuse bool
	buf   []Item // batch backing array, recycled when reuse is set
}

// NewBatchDecoder returns a decoder reading NDJSON from r that yields
// batches of up to batchSize items (values < 1 mean 1).
func NewBatchDecoder(r io.Reader, batchSize int) *BatchDecoder {
	if batchSize < 1 {
		batchSize = 1
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxNDJSONLine)
	return &BatchDecoder{sc: sc, batchSize: batchSize}
}

// SetReuse controls batch-slice ownership. When reuse is on, Next
// recycles one backing array across calls, so the returned batch is
// only valid until the next Next call — the right mode for callers that
// fully consume each batch before asking for the next (the server's
// sync ingest path), where it removes the per-batch slice allocation.
// Off (the default), every call returns a fresh slice the caller may
// retain or hand off (e.g. to an async worker pool).
func (d *BatchDecoder) SetReuse(reuse bool) { d.reuse = reuse }

// Next returns the next batch of decoded items. It returns a nil slice
// once the stream is exhausted; check Err afterwards. See SetReuse for
// batch ownership.
func (d *BatchDecoder) Next() []Item {
	if d.err != nil {
		return nil
	}
	var batch []Item
	if d.reuse {
		if d.buf == nil {
			d.buf = make([]Item, 0, d.batchSize)
		}
		batch = d.buf[:0]
	}
	for len(batch) < d.batchSize {
		if !d.sc.Scan() {
			if err := d.sc.Err(); err != nil {
				d.err = fmt.Errorf("stream: ndjson line %d: %w", d.line+1, err)
			}
			break
		}
		d.line++
		line := bytes.TrimSpace(d.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if batch == nil {
			batch = make([]Item, 0, d.batchSize)
		}
		// Decode straight into the batch slot: omitted weight means one
		// observation, and a failed line is truncated back off.
		batch = append(batch, Item{Weight: 1})
		slot := (*wireItem)(&batch[len(batch)-1])
		if err := json.Unmarshal(line, slot); err != nil {
			batch = batch[:len(batch)-1]
			d.err = fmt.Errorf("stream: ndjson line %d: %w", d.line, err)
			break
		}
		if slot.Src == "" || slot.Dst == "" {
			batch = batch[:len(batch)-1]
			d.err = fmt.Errorf("stream: ndjson line %d: src and dst are required", d.line)
			break
		}
	}
	d.items += int64(len(batch))
	if d.reuse {
		d.buf = batch
	}
	if len(batch) == 0 {
		return nil
	}
	return batch
}

// Err reports the first decode error; nil after a clean end of stream.
// Items decoded before the bad line are still returned by Next, so a
// caller can report how much of a partially bad upload was ingested.
func (d *BatchDecoder) Err() error { return d.err }

// Line reports the number of the last NDJSON line read (1-based).
func (d *BatchDecoder) Line() int { return d.line }

// Items reports how many items have been decoded so far.
func (d *BatchDecoder) Items() int64 { return d.items }

// EncodeNDJSON writes items to w in the NDJSON wire format.
func EncodeNDJSON(w io.Writer, items []Item) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, it := range items {
		if err := enc.Encode(jsonItem{Src: it.Src, Dst: it.Dst,
			Weight: it.Weight, Time: it.Time, Label: it.Label}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeNDJSON reads the whole NDJSON stream from r in batches of
// batchSize, invoking fn for each batch. It returns the total item
// count and the first decode or callback error.
func DecodeNDJSON(r io.Reader, batchSize int, fn func([]Item) error) (int64, error) {
	d := NewBatchDecoder(r, batchSize)
	for {
		batch := d.Next()
		if batch == nil {
			return d.Items(), d.Err()
		}
		if err := fn(batch); err != nil {
			return d.Items(), err
		}
	}
}
