package stream

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// NDJSON wire format: one JSON object per line, the same field names
// the HTTP API uses. "src" and "dst" are required; "weight" defaults
// to 1 when omitted (an unweighted edge observation); "time" and
// "label" default to 0. Blank lines are skipped, so files can carry
// visual spacing and a trailing newline. NDJSON is the bulk-ingest
// wire form: a producer streams lines, the server decodes them into
// batches and inserts each batch under amortized locking.

// jsonItem mirrors Item with the wire field names.
type jsonItem struct {
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	Weight int64  `json:"weight"`
	Time   int64  `json:"time,omitempty"`
	Label  uint32 `json:"label,omitempty"`
}

// maxNDJSONLine bounds one encoded item; longer lines are malformed.
const maxNDJSONLine = 1 << 20

// BatchDecoder streams an NDJSON item stream in batches, so an
// arbitrarily long request body is ingested with bounded memory.
type BatchDecoder struct {
	sc        *bufio.Scanner
	batchSize int
	line      int   // 1-based number of the last line read
	items     int64 // items decoded so far
	err       error
}

// NewBatchDecoder returns a decoder reading NDJSON from r that yields
// batches of up to batchSize items (values < 1 mean 1).
func NewBatchDecoder(r io.Reader, batchSize int) *BatchDecoder {
	if batchSize < 1 {
		batchSize = 1
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxNDJSONLine)
	return &BatchDecoder{sc: sc, batchSize: batchSize}
}

// Next returns the next batch of decoded items. It returns a nil slice
// once the stream is exhausted; check Err afterwards. Each call
// allocates a fresh slice, so callers may retain or hand off batches
// (e.g. to an async worker pool) without copying.
func (d *BatchDecoder) Next() []Item {
	if d.err != nil {
		return nil
	}
	var batch []Item
	for len(batch) < d.batchSize {
		if !d.sc.Scan() {
			if err := d.sc.Err(); err != nil {
				d.err = fmt.Errorf("stream: ndjson line %d: %w", d.line+1, err)
			}
			break
		}
		d.line++
		line := bytes.TrimSpace(d.sc.Bytes())
		if len(line) == 0 {
			continue
		}
		ji := jsonItem{Weight: 1} // omitted weight means one observation
		if err := json.Unmarshal(line, &ji); err != nil {
			d.err = fmt.Errorf("stream: ndjson line %d: %w", d.line, err)
			break
		}
		if ji.Src == "" || ji.Dst == "" {
			d.err = fmt.Errorf("stream: ndjson line %d: src and dst are required", d.line)
			break
		}
		if batch == nil {
			batch = make([]Item, 0, d.batchSize)
		}
		batch = append(batch, Item{Src: ji.Src, Dst: ji.Dst,
			Weight: ji.Weight, Time: ji.Time, Label: ji.Label})
	}
	d.items += int64(len(batch))
	if len(batch) == 0 {
		return nil
	}
	return batch
}

// Err reports the first decode error; nil after a clean end of stream.
// Items decoded before the bad line are still returned by Next, so a
// caller can report how much of a partially bad upload was ingested.
func (d *BatchDecoder) Err() error { return d.err }

// Line reports the number of the last NDJSON line read (1-based).
func (d *BatchDecoder) Line() int { return d.line }

// Items reports how many items have been decoded so far.
func (d *BatchDecoder) Items() int64 { return d.items }

// EncodeNDJSON writes items to w in the NDJSON wire format.
func EncodeNDJSON(w io.Writer, items []Item) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encode appends the newline
	for _, it := range items {
		if err := enc.Encode(jsonItem{Src: it.Src, Dst: it.Dst,
			Weight: it.Weight, Time: it.Time, Label: it.Label}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DecodeNDJSON reads the whole NDJSON stream from r in batches of
// batchSize, invoking fn for each batch. It returns the total item
// count and the first decode or callback error.
func DecodeNDJSON(r io.Reader, batchSize int, fn func([]Item) error) (int64, error) {
	d := NewBatchDecoder(r, batchSize)
	for {
		batch := d.Next()
		if batch == nil {
			return d.Items(), d.Err()
		}
		if err := fn(batch); err != nil {
			return d.Items(), err
		}
	}
}
