package stream

import (
	"math"
	"math/rand"
)

// DatasetConfig describes a synthetic graph-stream dataset. Endpoints are
// drawn from a Zipf (power-law) distribution over the node set, matching
// the degree skew of the real graphs the paper evaluates on; weights are
// Zipfian as in §VII-A ("We use the Zipfian distribution to add the
// weight to each edge").
type DatasetConfig struct {
	Name       string
	Nodes      int     // |V|: size of the node universe
	Edges      int     // number of stream items generated
	DegreeSkew float64 // Zipf s parameter for endpoint selection (>1)
	WeightSkew float64 // Zipf s parameter for edge weights (>1)
	MaxWeight  int     // weights fall in [1, MaxWeight]
	MultiEdge  bool    // documentation flag: dataset is a multigraph log (lkml, Caida)
	UniformMix float64 // fraction of endpoints drawn uniformly instead of Zipf (widens |V|)
	Labels     int     // number of distinct edge labels; 0 leaves items unlabeled
	Seed       int64   // deterministic generation seed
}

// Paper-matched dataset configurations (node and edge counts from
// §VII-A). The generators are synthetic substitutes; see DESIGN.md §3 for
// the substitution rationale.

// EmailEuAll mirrors the email-EuAll communication network:
// 265,214 nodes and 420,045 edges.
func EmailEuAll() DatasetConfig {
	return DatasetConfig{Name: "email-EuAll", Nodes: 265214, Edges: 420045,
		DegreeSkew: 1.8, WeightSkew: 1.5, MaxWeight: 1000, UniformMix: 0.5, Seed: 1}
}

// CitHepPh mirrors the Arxiv HEP-PH citation graph: 34,546 nodes and
// 421,578 edges.
func CitHepPh() DatasetConfig {
	return DatasetConfig{Name: "cit-HepPh", Nodes: 34546, Edges: 421578,
		DegreeSkew: 1.6, WeightSkew: 1.5, MaxWeight: 1000, UniformMix: 0.45, Seed: 2}
}

// WebNotreDame mirrors the University of Notre Dame web graph:
// 325,729 nodes and 1,497,134 edges.
func WebNotreDame() DatasetConfig {
	return DatasetConfig{Name: "web-NotreDame", Nodes: 325729, Edges: 1497134,
		DegreeSkew: 2.0, WeightSkew: 1.5, MaxWeight: 1000, UniformMix: 0.5, Seed: 3}
}

// LkmlReply mirrors the Linux kernel mailing list reply network: 63,399
// nodes and 1,096,440 timestamped communication records (a multigraph).
func LkmlReply() DatasetConfig {
	return DatasetConfig{Name: "lkml-reply", Nodes: 63399, Edges: 1096440,
		DegreeSkew: 1.7, WeightSkew: 1.4, MaxWeight: 100, MultiEdge: true, UniformMix: 0.35, Seed: 4}
}

// Caida mirrors the CAIDA anonymized traces: 2,601,005 IP addresses and
// 445,440,480 communication records. Callers are expected to run it
// scaled down (see DatasetConfig.Scaled); full scale is reachable through
// cmd/gss-bench.
func Caida() DatasetConfig {
	return DatasetConfig{Name: "Caida-networkflow", Nodes: 2601005, Edges: 445440480,
		DegreeSkew: 1.9, WeightSkew: 1.4, MaxWeight: 100, MultiEdge: true, UniformMix: 0.35, Seed: 5}
}

// Scaled returns a copy of c with node and edge counts multiplied by
// scale (minimums keep degenerate configs usable). The skew parameters
// are preserved, so the shape of the degree distribution — the property
// the experiments depend on — is unchanged.
func (c DatasetConfig) Scaled(scale float64) DatasetConfig {
	out := c
	out.Nodes = maxInt(64, int(math.Round(float64(c.Nodes)*scale)))
	out.Edges = maxInt(128, int(math.Round(float64(c.Edges)*scale)))
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Generate materializes the dataset as a stream of items ordered by
// timestamp. Generation is deterministic in c.Seed.
func Generate(c DatasetConfig) []Item {
	items := make([]Item, 0, c.Edges)
	src := NewGenerator(c)
	for {
		it, ok := src.Next()
		if !ok {
			return items
		}
		items = append(items, it)
	}
}

// Generator produces a dataset lazily, so that very large configurations
// (e.g. Caida at full scale) can be streamed into a sketch without ever
// holding the whole item slice in memory.
type Generator struct {
	cfg     DatasetConfig
	rng     *rand.Rand
	srcZipf *rand.Zipf
	dstZipf *rand.Zipf
	wZipf   *rand.Zipf
	emitted int
}

// NewGenerator returns a lazy Source for c.
func NewGenerator(c DatasetConfig) *Generator {
	if c.Nodes < 2 {
		c.Nodes = 2
	}
	if c.DegreeSkew <= 1 {
		c.DegreeSkew = 1.5
	}
	if c.WeightSkew <= 1 {
		c.WeightSkew = 1.5
	}
	if c.MaxWeight < 1 {
		c.MaxWeight = 1
	}
	rng := rand.New(rand.NewSource(c.Seed))
	return &Generator{
		cfg: c,
		rng: rng,
		// Two independent endpoint distributions: hubs as sources need
		// not be hubs as destinations, which is true of the web and
		// email graphs the paper uses.
		srcZipf: rand.NewZipf(rng, c.DegreeSkew, 1, uint64(c.Nodes-1)),
		dstZipf: rand.NewZipf(rng, c.DegreeSkew, 1, uint64(c.Nodes-1)),
		wZipf:   rand.NewZipf(rng, c.WeightSkew, 1, uint64(c.MaxWeight-1)),
	}
}

// endpoint draws one endpoint ordinal: uniform with probability
// UniformMix, Zipf otherwise.
func (g *Generator) endpoint(z *rand.Zipf) uint64 {
	if g.cfg.UniformMix > 0 && g.rng.Float64() < g.cfg.UniformMix {
		return uint64(g.rng.Intn(g.cfg.Nodes))
	}
	return z.Uint64()
}

// Next implements Source.
func (g *Generator) Next() (Item, bool) {
	if g.emitted >= g.cfg.Edges {
		return Item{}, false
	}
	var s, d uint64
	for {
		// Endpoints mix a Zipf head (hubs) with a uniform tail so that
		// both the degree skew and the node count of the real datasets
		// are matched. The Zipf ranks are scattered over the ordinal
		// space so node IDs carry no structure; a fixed odd multiplier
		// keeps the mapping a bijection mod Nodes.
		s = g.endpoint(g.srcZipf)
		d = g.endpoint(g.dstZipf)
		if s != d {
			break
		}
	}
	n := uint64(g.cfg.Nodes)
	it := Item{
		Src:    NodeID(int((s * 2654435761) % n)),
		Dst:    NodeID(int((d*2654435761 + 1) % n)),
		Time:   int64(g.emitted),
		Weight: int64(g.wZipf.Uint64()) + 1,
	}
	if it.Src == it.Dst { // possible after scattering; keep graphs loop-free
		it.Dst = NodeID(int((d*2654435761 + 2) % n))
		if it.Src == it.Dst {
			it.Dst = NodeID(int((d*2654435761 + 3) % n))
		}
	}
	if g.cfg.Labels > 0 {
		it.Label = uint32(g.rng.Intn(g.cfg.Labels)) + 1
	}
	g.emitted++
	return it, true
}
