package stream

import (
	"bytes"
	"strings"
	"testing"
)

// Benchmark and semantics coverage for BatchDecoder's allocation diet:
// in-place decoding (no jsonItem -> Item double copy) and, with
// SetReuse, one recycled batch slice for a whole stream.

func benchNDJSON(b *testing.B, items int) []byte {
	b.Helper()
	src := make([]Item, items)
	for i := range src {
		src[i] = Item{Src: NodeID(i % 97), Dst: NodeID(i % 89), Weight: int64(i%7 + 1),
			Time: int64(i), Label: uint32(i % 3)}
	}
	var buf bytes.Buffer
	if err := EncodeNDJSON(&buf, src); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchmarkDecoder(b *testing.B, reuse bool) {
	data := benchNDJSON(b, 4096)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewBatchDecoder(bytes.NewReader(data), 512)
		d.SetReuse(reuse)
		var n int
		for {
			batch := d.Next()
			if batch == nil {
				break
			}
			n += len(batch)
		}
		if err := d.Err(); err != nil || n != 4096 {
			b.Fatalf("decoded %d items, err %v", n, err)
		}
	}
}

func BenchmarkBatchDecoderFresh(b *testing.B) { benchmarkDecoder(b, false) }
func BenchmarkBatchDecoderReuse(b *testing.B) { benchmarkDecoder(b, true) }

// TestBatchDecoderReuse pins the ownership contract: with reuse on, the
// same backing array comes back and carries the next batch's items;
// with reuse off (the async-pipeline mode), retained batches stay
// intact after further Next calls.
func TestBatchDecoderReuse(t *testing.T) {
	const in = "{\"src\":\"a\",\"dst\":\"b\"}\n{\"src\":\"c\",\"dst\":\"d\"}\n{\"src\":\"e\",\"dst\":\"f\"}\n"

	d := NewBatchDecoder(strings.NewReader(in), 1)
	d.SetReuse(true)
	first := d.Next()
	if len(first) != 1 || first[0].Src != "a" {
		t.Fatalf("first batch = %v", first)
	}
	second := d.Next()
	if len(second) != 1 || second[0].Src != "c" {
		t.Fatalf("second batch = %v", second)
	}
	if &first[0] != &second[0] {
		t.Fatal("reuse mode did not recycle the batch backing array")
	}
	if first[0].Src != "c" {
		t.Fatalf("recycled slot should hold the new item, has %q", first[0].Src)
	}

	d = NewBatchDecoder(strings.NewReader(in), 1)
	retained := d.Next()
	d.Next()
	d.Next()
	if retained[0].Src != "a" {
		t.Fatalf("fresh mode clobbered a retained batch: %v", retained)
	}
}

// TestBatchDecoderReuseErrorTruncates ensures a bad line does not leak
// a half-decoded item into the recycled batch.
func TestBatchDecoderReuseErrorTruncates(t *testing.T) {
	d := NewBatchDecoder(strings.NewReader("{\"src\":\"a\",\"dst\":\"b\"}\n{\"src\":\"\",\"dst\":\"x\"}\n"), 8)
	d.SetReuse(true)
	batch := d.Next()
	if len(batch) != 1 || batch[0].Src != "a" {
		t.Fatalf("batch before the bad line = %v", batch)
	}
	if d.Err() == nil {
		t.Fatal("missing src accepted")
	}
	if d.Items() != 1 {
		t.Fatalf("Items = %d, want 1", d.Items())
	}
}
