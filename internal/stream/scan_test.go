package stream

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// refScan is the reference the fast routing scan must agree with: the
// same wire decode the NDJSON batch decoder performs, plus the
// required-endpoints rule.
func refScan(line []byte) (string, string, bool) {
	var wi wireItem
	if err := json.Unmarshal(line, &wi); err != nil {
		return "", "", false
	}
	if wi.Src == "" || wi.Dst == "" {
		return "", "", false
	}
	return wi.Src, wi.Dst, true
}

func TestScanItemLineAgreesWithReference(t *testing.T) {
	lines := []string{
		`{"src":"a","dst":"b"}`,
		`{"src":"a","dst":"b","weight":5,"time":9,"label":2}`,
		`  {  "src" : "a" , "dst" : "b" }  `,
		`{"dst":"b","src":"a"}`,
		`{"src":"a","dst":"b","weight":-3}`,
		`{"src":"a","dst":"b","extra":{"nested":[1,2,{"x":null}]}}`,
		`{"src":"a","dst":"b","note":"plain ascii"}`,
		`{"src":"a","dst":"b","src":"c"}`,                   // duplicate: last wins
		`{"src":"a","dst":"b","SRC":"z"}`,                   // case-insensitive bind
		`{"src":"é","dst":"b"}`,                             // escape: slow path
		`{"src":"é","dst":"b"}`,                             // multi-byte: slow path
		`{"src":"a","dst":""}`,                              // missing endpoint
		`{"src":"a"}`,                                       // missing dst
		`{"src":"a","dst":"b","weight":1.5}`,                // float into int64
		`{"src":"a","dst":"b","weight":"5"}`,                // string into int64
		`{"src":"a","dst":"b","label":-1}`,                  // negative into uint32
		`{"src":"a","dst":"b","label":4294967296}`,          // uint32 overflow
		`{"src":"a","dst":"b","time":12345678901}`,          // big but valid int64
		`{"src":"a","dst":"b","weight":01}`,                 // leading zero
		`{"src":"a","dst":"b"} trailing`,                    // trailing garbage
		`{"src":"a","dst":"b","extra":1e3}`,                 // exponent on unknown key
		`["src","dst"]`,                                     // not an object
		`{"src":"a","dst":"b",}`,                            // trailing comma
		`{"src":"a" "dst":"b"}`,                             // missing comma
		`{"src":"a","dst":"b","deep":` + deepJSON(40) + `}`, // beyond scan depth
		``,
		`not json`,
	}
	for _, line := range lines {
		b := []byte(line)
		wantSrc, wantDst, wantOK := refScan(b)
		gotSrc, gotDst, err := ScanItemLine(b)
		if wantOK != (err == nil) {
			t.Errorf("%s: scan err=%v, reference ok=%v", line, err, wantOK)
			continue
		}
		if wantOK && (gotSrc != wantSrc || gotDst != wantDst) {
			t.Errorf("%s: scan (%q,%q), reference (%q,%q)", line, gotSrc, gotDst, wantSrc, wantDst)
		}
	}
}

func deepJSON(depth int) string {
	return strings.Repeat(`[`, depth) + `1` + strings.Repeat(`]`, depth)
}

// TestScanItemLineFastPathCoverage pins that the common wire shapes
// actually take the fast path — the point of the scanner is that the
// router does not pay a full decode per item.
func TestScanItemLineFastPathCoverage(t *testing.T) {
	fast := [][]byte{
		[]byte(`{"src":"n12","dst":"n9","weight":3,"time":17}`),
		[]byte(`{"src":"a","dst":"b"}`),
		[]byte(`{"src":"a","dst":"b","weight":-1,"label":7}`),
	}
	for _, line := range fast {
		if _, _, ok := scanItemFast(line); !ok {
			t.Errorf("fast path punted on a canonical line: %s", line)
		}
	}
	slow := [][]byte{
		[]byte(`{"src":"é","dst":"b"}`),
		[]byte(`{"src":"a","dst":"b","SRC":"z"}`),
	}
	for _, line := range slow {
		if _, _, ok := scanItemFast(line); ok {
			t.Errorf("fast path claimed a line it cannot prove: %s", line)
		}
	}
}

// FuzzScanItemLine is the differential target: on every input the
// routing scan and the reference decode must agree on acceptance and,
// when accepting, on the endpoints. This is what makes the fast path's
// "sound by construction" claim checkable.
func FuzzScanItemLine(f *testing.F) {
	for _, seed := range ndjsonSeeds {
		for _, line := range bytes.Split(seed, []byte("\n")) {
			if len(line) > 0 {
				f.Add(line)
			}
		}
	}
	f.Add([]byte(`{"src":"a","dst":"b","SRC":"z"}`))
	f.Add([]byte(`{"src":"a","dst":"b","weight":01}`))
	f.Add([]byte(`{"src":"a","dst":"b","x":{"y":[true,null,1.5]}}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		wantSrc, wantDst, wantOK := refScan(line)
		gotSrc, gotDst, err := ScanItemLine(line)
		if wantOK != (err == nil) {
			t.Fatalf("scan err=%v, reference ok=%v for %q", err, wantOK, line)
		}
		if wantOK && (gotSrc != wantSrc || gotDst != wantDst) {
			t.Fatalf("scan (%q,%q), reference (%q,%q) for %q", gotSrc, gotDst, wantSrc, wantDst, line)
		}
	})
}

func BenchmarkScanItemLine(b *testing.B) {
	line := []byte(`{"src":"n123456","dst":"n654321","weight":42,"time":1700000000}`)
	b.Run("scan", func(b *testing.B) {
		b.SetBytes(int64(len(line)))
		for i := 0; i < b.N; i++ {
			if _, _, err := ScanItemLine(line); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unmarshal", func(b *testing.B) {
		b.SetBytes(int64(len(line)))
		for i := 0; i < b.N; i++ {
			var wi wireItem
			if err := json.Unmarshal(line, &wi); err != nil {
				b.Fatal(err)
			}
		}
	})
}
