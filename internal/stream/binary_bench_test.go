package stream

import (
	"bytes"
	"testing"
)

// Benchmarks for the GSB1 binary plane, the regression baseline behind
// the NDJSON-vs-binary ratios quoted in the README: the server's full
// frame+record decode (BinaryBatchDecoder) and the router's
// routing-only walk (FrameReader + ScanHashedRecord), which never
// materializes an item. CI's bench smoke compiles and runs both once.

func benchGSB1(b *testing.B, items, frameSize int) []byte {
	b.Helper()
	src := make([]Item, items)
	for i := range src {
		src[i] = Item{Src: NodeID(i % 97), Dst: NodeID(i % 89), Weight: int64(i%7 + 1),
			Time: int64(i), Label: uint32(i % 3)}
	}
	var buf bytes.Buffer
	bw := NewBinaryBatchWriter(&buf)
	for off := 0; off < len(src); off += frameSize {
		end := off + frameSize
		if end > len(src) {
			end = len(src)
		}
		if err := bw.WriteItems(src[off:end]); err != nil {
			b.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

func benchmarkBinaryDecoder(b *testing.B, reuse bool) {
	data := benchGSB1(b, 4096, 512)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := NewBinaryBatchDecoder(bytes.NewReader(data))
		d.SetReuse(reuse)
		var n int
		for {
			batch := d.Next()
			if batch == nil {
				break
			}
			n += len(batch)
		}
		if err := d.Err(); err != nil || n != 4096 {
			b.Fatalf("decoded %d items, err %v", n, err)
		}
	}
}

func BenchmarkBinaryBatchDecodeFresh(b *testing.B) { benchmarkBinaryDecoder(b, false) }
func BenchmarkBinaryBatchDecodeReuse(b *testing.B) { benchmarkBinaryDecoder(b, true) }

// BenchmarkBinaryRoutingScan is the router's half of the plane: walk
// frames, read each record's carried H(src) and its length, and touch
// nothing else — the binary analogue of BenchmarkScanItemLine.
func BenchmarkBinaryRoutingScan(b *testing.B) {
	data := benchGSB1(b, 4096, 512)
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := NewFrameReader(bytes.NewReader(data))
		fr.SetReuse(true)
		var n int
		var sink uint64
		for {
			records, count := fr.Next()
			if records == nil {
				break
			}
			pos := 0
			for j := 0; j < count; j++ {
				hsrc, rn, err := ScanHashedRecord(records[pos:])
				if err != nil {
					b.Fatal(err)
				}
				sink ^= hsrc
				pos += rn
			}
			n += count
		}
		if err := fr.Err(); err != nil || n != 4096 {
			b.Fatalf("scanned %d records, err %v (sink %d)", n, err, sink)
		}
	}
}
