package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Binary batch wire format ("GSB1") — the hash-once ingest plane.
//
//	magic   [4]byte  "GSB1"
//	frames: until EOF
//	  frameLen uvarint        // byte length of the frame body
//	  body:
//	    count  uvarint        // records in this frame
//	    records × count:
//	      hsrc uint64 LE      // hashing.Hash64(src), full 64 bits
//	      hdst uint64 LE      // hashing.Hash64(dst)
//	      fps  uint32 LE      // PackFingerprints(hsrc, hdst)
//	      payload             // the GSS1 record layout (AppendItem)
//
// The producer hashes each identifier exactly once and every layer
// downstream — cluster router, server, shard, generation, matrix —
// reuses the carried hashes. The record tail after the 20-byte hash
// prefix is byte-for-byte the GSS1 record (and therefore the
// internal/oplog payload format), so a server can append accepted
// records to its operation log, and a router can spill them for a down
// partition, without a decode/re-encode round trip.
//
// The length prefix makes a frame the unit of both streaming (one
// frame is buffered at a time, never the whole body) and atomicity (a
// frame is fully validated before any of its items is vouched for).
// The fps field doubles as an integrity check: a record whose packed
// fingerprints disagree with its carried hashes is rejected, so a
// corrupt or misframed prefix cannot smuggle wrong hashes past the
// edge.

// ContentTypeBinary is the /ingest Content-Type selecting this format.
const ContentTypeBinary = "application/x-gss-batch"

// IngestPlane resolves an /ingest Content-Type to an ingest plane:
// NDJSON (the default — bare requests, x-ndjson, json and curl's
// untyped --data-binary default all mean the text plane) or this GSB1
// binary batch plane. Unknown types are a
// deliberate !ok so a client posting, say, protobuf learns immediately
// instead of producing line-1 parse errors. Shared by every ingest
// front door (server and cluster router) so the content-type table
// cannot drift between them.
func IngestPlane(contentType string) (binary bool, ok bool) {
	ct := contentType
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i] // drop parameters (charset=...)
	}
	ct = strings.ToLower(strings.TrimSpace(ct))
	switch ct {
	case "", "application/x-ndjson", "application/json",
		// curl's --data-binary default; `curl --data-binary @file /ingest`
		// is the documented quickstart and must keep working untyped.
		"application/x-www-form-urlencoded":
		return false, true
	case ContentTypeBinary:
		return true, true
	default:
		return false, false
	}
}

var batchMagic = [4]byte{'G', 'S', 'B', '1'}

// ErrBadBatchMagic is returned when a binary batch stream does not
// start with the GSB1 header.
var ErrBadBatchMagic = errors.New("stream: bad magic, not a GSB1 batch stream")

const (
	// hashedPrefixLen is the fixed hash prefix of a record: hsrc,
	// hdst, fps.
	hashedPrefixLen = 8 + 8 + 4
	// minHashedRecordLen is the smallest possible record: the hash
	// prefix plus five one-byte varints (empty src, empty dst, time 0,
	// weight 0, label 0). Frame validation uses it to bound the batch
	// allocation a forged count could otherwise request.
	minHashedRecordLen = hashedPrefixLen + 5
	// maxFrameBytes bounds one frame body, keeping the maxIDLen
	// discipline: a forged frame length allocates at most this much.
	maxFrameBytes = 8 << 20
	// maxFrameItems bounds one frame's record count (the same cap the
	// server puts on a decode batch).
	maxFrameItems = 1 << 16
)

// BinaryMagic returns the GSB1 stream header bytes.
func BinaryMagic() [4]byte { return batchMagic }

// AppendHashedItem appends the binary record encoding of it to buf:
// the 20-byte hash prefix followed by the GSS1 payload. The caller's
// FPs field is written as-is (HashItem fills it consistently; the
// decoder rejects a mismatched pair).
func AppendHashedItem(buf []byte, it HashedItem) []byte {
	var p [hashedPrefixLen]byte
	binary.LittleEndian.PutUint64(p[0:8], it.HSrc)
	binary.LittleEndian.PutUint64(p[8:16], it.HDst)
	binary.LittleEndian.PutUint32(p[16:20], it.FPs)
	buf = append(buf, p[:]...)
	return AppendItem(buf, it.Item)
}

// DecodeHashedItem decodes one AppendHashedItem record from the front
// of b, returning the item and the bytes consumed. The packed
// fingerprints must match the carried hashes.
func DecodeHashedItem(b []byte) (HashedItem, int, error) {
	if len(b) < hashedPrefixLen {
		return HashedItem{}, 0, fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
	}
	var it HashedItem
	it.HSrc = binary.LittleEndian.Uint64(b[0:8])
	it.HDst = binary.LittleEndian.Uint64(b[8:16])
	it.FPs = binary.LittleEndian.Uint32(b[16:20])
	if it.FPs != PackFingerprints(it.HSrc, it.HDst) {
		return HashedItem{}, 0, fmt.Errorf("stream: record fingerprints %#x disagree with carried hashes", it.FPs)
	}
	item, n, err := DecodeItem(b[hashedPrefixLen:])
	if err != nil {
		return HashedItem{}, 0, err
	}
	it.Item = item
	return it, hashedPrefixLen + n, nil
}

// HashedRecordPayload returns the GSS1 payload view of one validated
// binary record — the bytes after the fixed hash prefix, which are
// exactly what an operation log or a router's spill log appends, with
// no decode/re-encode round trip. The record must have been vouched
// for by ScanHashedRecord or DecodeHashedItem first.
func HashedRecordPayload(rec []byte) []byte { return rec[hashedPrefixLen:] }

// ScanHashedRecord is the router's fast path over one record: it
// extracts the carried source hash (the routing key) and structurally
// validates the full record — length prefixes bounded by maxIDLen,
// varints well-formed, fingerprints consistent with the hashes —
// without materializing the identifier strings or hashing anything.
// It accepts exactly the records DecodeHashedItem accepts (pinned by
// FuzzBinaryBatchDecode), so a frame forwarded verbatim after a scan
// will be accepted by the member's full decoder.
func ScanHashedRecord(b []byte) (hsrc uint64, n int, err error) {
	if len(b) < hashedPrefixLen {
		return 0, 0, fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
	}
	hsrc = binary.LittleEndian.Uint64(b[0:8])
	hdst := binary.LittleEndian.Uint64(b[8:16])
	fps := binary.LittleEndian.Uint32(b[16:20])
	if fps != PackFingerprints(hsrc, hdst) {
		return 0, 0, fmt.Errorf("stream: record fingerprints %#x disagree with carried hashes", fps)
	}
	pos := hashedPrefixLen
	for i := 0; i < 2; i++ { // src, dst
		l, k := binary.Uvarint(b[pos:])
		if k <= 0 {
			return 0, 0, fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
		}
		if l > maxIDLen {
			return 0, 0, fmt.Errorf("stream: unreasonable string length %d", l)
		}
		pos += k
		if uint64(len(b)-pos) < l {
			return 0, 0, fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
		}
		pos += int(l)
	}
	for i := 0; i < 2; i++ { // time, weight
		if _, k := binary.Varint(b[pos:]); k <= 0 {
			return 0, 0, fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
		} else {
			pos += k
		}
	}
	label, k := binary.Uvarint(b[pos:])
	if k <= 0 {
		return 0, 0, fmt.Errorf("stream: truncated record: %w", io.ErrUnexpectedEOF)
	}
	if label > 1<<32-1 {
		return 0, 0, fmt.Errorf("stream: label %d overflows uint32", label)
	}
	pos += k
	return hsrc, pos, nil
}

// AppendFrameHeader appends a GSB1 frame header — the frame length and
// the record count — for a body holding count records in recordsLen
// bytes. Callers that assemble frames from already-encoded records
// (the cluster router re-framing per partition) write header + records
// and get a frame identical to one the BinaryBatchWriter produces.
func AppendFrameHeader(dst []byte, count, recordsLen int) []byte {
	var cnt [binary.MaxVarintLen64]byte
	cn := binary.PutUvarint(cnt[:], uint64(count))
	dst = binary.AppendUvarint(dst, uint64(cn+recordsLen))
	return append(dst, cnt[:cn]...)
}

// BinaryBatchWriter encodes hashed batches as a GSB1 stream. One
// WriteBatch is one frame — the consumer-side batch granularity —
// except that batches past the frame caps split transparently.
type BinaryBatchWriter struct {
	w       *bufio.Writer
	body    []byte // records of the open frame
	rec     []byte // one-record scratch
	hdr     []byte // frame-header scratch
	count   int
	started bool
}

// NewBinaryBatchWriter returns a writer emitting to w. The magic is
// written on the first frame (or by Flush for an empty stream).
func NewBinaryBatchWriter(w io.Writer) *BinaryBatchWriter {
	return &BinaryBatchWriter{w: bufio.NewWriter(w)}
}

// WriteBatch writes items as one frame (splitting only past the frame
// caps). An empty batch writes nothing.
func (bw *BinaryBatchWriter) WriteBatch(items []HashedItem) error {
	for i := range items {
		bw.rec = AppendHashedItem(bw.rec[:0], items[i])
		if bw.count > 0 && (bw.count >= maxFrameItems || len(bw.body)+len(bw.rec) > maxFrameBytes) {
			if err := bw.flushFrame(); err != nil {
				return err
			}
		}
		bw.body = append(bw.body, bw.rec...)
		bw.count++
	}
	return bw.flushFrame()
}

// WriteItems hashes items and writes them as one frame — the
// convenience path for producers starting from plain items.
func (bw *BinaryBatchWriter) WriteItems(items []Item) error {
	for i := range items {
		bw.rec = AppendHashedItem(bw.rec[:0], HashItem(items[i]))
		if bw.count > 0 && (bw.count >= maxFrameItems || len(bw.body)+len(bw.rec) > maxFrameBytes) {
			if err := bw.flushFrame(); err != nil {
				return err
			}
		}
		bw.body = append(bw.body, bw.rec...)
		bw.count++
	}
	return bw.flushFrame()
}

func (bw *BinaryBatchWriter) flushFrame() error {
	if bw.count == 0 {
		return nil
	}
	if err := bw.writeMagic(); err != nil {
		return err
	}
	bw.hdr = AppendFrameHeader(bw.hdr[:0], bw.count, len(bw.body))
	if _, err := bw.w.Write(bw.hdr); err != nil {
		return err
	}
	if _, err := bw.w.Write(bw.body); err != nil {
		return err
	}
	bw.body = bw.body[:0]
	bw.count = 0
	return nil
}

func (bw *BinaryBatchWriter) writeMagic() error {
	if bw.started {
		return nil
	}
	if _, err := bw.w.Write(batchMagic[:]); err != nil {
		return err
	}
	bw.started = true
	return nil
}

// Flush writes any buffered data (and the header, so an empty stream
// is still a valid GSB1 stream). Call before closing the destination.
func (bw *BinaryBatchWriter) Flush() error {
	if err := bw.writeMagic(); err != nil {
		return err
	}
	return bw.w.Flush()
}

// FrameReader streams the frame layer of a GSB1 body: magic, length
// prefix and record count are validated — caps enforced before any
// allocation, so a forged frame length or record count is rejected by
// validation, not by attempting the allocation it claims to need — and
// the raw records region is handed back without touching the records
// themselves. The cluster router runs on this layer (ScanHashedRecord
// per record, forwarding the bytes verbatim); BinaryBatchDecoder
// builds the full decode on top of it.
type FrameReader struct {
	r       *bufio.Reader
	started bool
	reuse   bool
	err     error
	frame   []byte
	frames  int
}

// NewFrameReader returns a frame reader over a GSB1 body.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReaderSize(r, 64<<10)}
}

// SetReuse(true) lets the reader recycle the frame buffer across Next
// calls. Only safe when the caller fully consumes a frame (including
// any views into it) before the next Next.
func (fr *FrameReader) SetReuse(v bool) { fr.reuse = v }

// Next returns the records region and record count of the next
// non-empty frame, or (nil, 0) at EOF or on error (check Err). Valid
// empty frames are counted and skipped. The region's record boundaries
// are NOT validated here — the consumer walks it with ScanHashedRecord
// or DecodeHashedItem and must reject trailing bytes itself.
func (fr *FrameReader) Next() ([]byte, int) {
	if fr.err != nil {
		return nil, 0
	}
	if !fr.started {
		var got [4]byte
		if _, err := io.ReadFull(fr.r, got[:]); err != nil {
			if err != io.EOF { // empty body: clean end, zero frames
				fr.err = truncated(err)
			}
			return nil, 0
		}
		if got != batchMagic {
			fr.err = ErrBadBatchMagic
			return nil, 0
		}
		fr.started = true
	}
	for {
		frameLen, err := binary.ReadUvarint(fr.r)
		if err != nil {
			if err != io.EOF {
				fr.err = truncated(err)
			}
			return nil, 0
		}
		if frameLen < 1 || frameLen > maxFrameBytes {
			fr.err = fmt.Errorf("stream: unreasonable frame length %d", frameLen)
			return nil, 0
		}
		var body []byte
		if fr.reuse && cap(fr.frame) >= int(frameLen) {
			body = fr.frame[:frameLen]
		} else {
			body = make([]byte, frameLen)
			if fr.reuse {
				fr.frame = body
			}
		}
		if _, err := io.ReadFull(fr.r, body); err != nil {
			fr.err = truncated(err)
			return nil, 0
		}
		count, k := binary.Uvarint(body)
		if k <= 0 {
			fr.err = fmt.Errorf("stream: truncated frame: %w", io.ErrUnexpectedEOF)
			return nil, 0
		}
		if count > maxFrameItems {
			fr.err = fmt.Errorf("stream: unreasonable frame record count %d", count)
			return nil, 0
		}
		if count*minHashedRecordLen > uint64(len(body)-k) {
			fr.err = fmt.Errorf("stream: frame too short for %d records", count)
			return nil, 0
		}
		fr.frames++
		if count == 0 {
			continue // valid but empty frame
		}
		return body[k:], int(count)
	}
}

// Err reports the first frame-layer error; nil after a clean EOF.
func (fr *FrameReader) Err() error { return fr.err }

// Frames counts structurally valid frames read so far, empty ones
// included.
func (fr *FrameReader) Frames() int { return fr.frames }

// BinaryBatchDecoder streams a GSB1 body frame by frame. Memory use is
// one frame, never the whole body; a forged frame length or record
// count fails validation before it can allocate past the frame caps.
type BinaryBatchDecoder struct {
	fr       *FrameReader
	reuse    bool
	err      error
	batch    []HashedItem
	payloads [][]byte
	frames   int
	items    int64
}

// NewBinaryBatchDecoder returns a decoder reading from r.
func NewBinaryBatchDecoder(r io.Reader) *BinaryBatchDecoder {
	return &BinaryBatchDecoder{fr: NewFrameReader(r)}
}

// SetReuse(true) lets the decoder recycle the batch slice, the frame
// buffer, and with them the Payloads views across Next calls. Only
// safe when the caller fully consumes a batch before the next Next —
// the sync ingest path. The identifier strings are always fresh.
func (d *BinaryBatchDecoder) SetReuse(v bool) {
	d.reuse = v
	d.fr.SetReuse(v)
}

// Next returns the next frame's items, or nil at EOF or on error
// (check Err). A frame is atomic: its items are returned only when
// the whole frame validated.
func (d *BinaryBatchDecoder) Next() []HashedItem {
	if d.err != nil {
		return nil
	}
	records, count := d.fr.Next()
	if records == nil {
		return nil
	}
	var batch []HashedItem
	var payloads [][]byte
	if d.reuse {
		batch, payloads = d.batch[:0], d.payloads[:0]
	} else {
		batch = make([]HashedItem, 0, count)
		payloads = make([][]byte, 0, count)
	}
	pos := 0
	for i := 0; i < count; i++ {
		it, n, err := DecodeHashedItem(records[pos:])
		if err != nil {
			d.err = err
			return nil
		}
		batch = append(batch, it)
		payloads = append(payloads, records[pos+hashedPrefixLen:pos+n])
		pos += n
	}
	if pos != len(records) {
		d.err = fmt.Errorf("stream: frame holds %d bytes past its %d records", len(records)-pos, count)
		return nil
	}
	d.frames++
	d.items += int64(count)
	d.batch, d.payloads = batch, payloads
	return batch
}

// Payloads returns the raw GSS1 payload of every record in the batch
// last returned by Next — the exact bytes an operation log or spill
// log appends, with no re-encode. Views into the frame buffer: under
// SetReuse(true) they are valid only until the next Next call.
func (d *BinaryBatchDecoder) Payloads() [][]byte { return d.payloads }

// Err reports the first error encountered; nil after a clean EOF.
func (d *BinaryBatchDecoder) Err() error {
	if d.err != nil {
		return d.err
	}
	return d.fr.Err()
}

// Frames counts fully decoded frames.
func (d *BinaryBatchDecoder) Frames() int { return d.frames }

// Items counts items across fully decoded frames.
func (d *BinaryBatchDecoder) Items() int64 { return d.items }

// ReadAllBinary decodes every item of a GSB1 stream — the audit path
// (gss-inspect) and tests; servers stream frame by frame instead.
func ReadAllBinary(r io.Reader) ([]HashedItem, error) {
	d := NewBinaryBatchDecoder(r)
	var out []HashedItem
	for {
		b := d.Next()
		if b == nil {
			break
		}
		out = append(out, b...)
	}
	return out, d.Err()
}
