package tcm

import (
	"testing"

	"repro/internal/adjlist"
	"repro/internal/stream"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := New(Config{Width: 8, Depth: -1}); err == nil {
		t.Fatal("negative depth accepted")
	}
	s := MustNew(Config{Width: 8})
	if s.cfg.Depth != 4 {
		t.Fatalf("default depth = %d, want 4", s.cfg.Depth)
	}
}

func TestEdgeWeightNoUnderestimate(t *testing.T) {
	items := stream.Generate(stream.EmailEuAll().Scaled(0.002))
	exact := adjlist.New()
	s := MustNew(Config{Width: 64, Depth: 4})
	for _, it := range items {
		s.Insert(it)
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	for _, it := range items {
		want, _ := exact.EdgeWeight(it.Src, it.Dst)
		got, ok := s.EdgeWeight(it.Src, it.Dst)
		if !ok {
			t.Fatalf("false negative on (%s,%s)", it.Src, it.Dst)
		}
		if got < want {
			t.Fatalf("CM-style min estimate underestimated: %d < %d", got, want)
		}
	}
}

func TestSuccessorsSuperset(t *testing.T) {
	items := stream.Generate(stream.CitHepPh().Scaled(0.002))
	exact := adjlist.New()
	s := MustNew(Config{Width: 128, Depth: 4})
	for _, it := range items {
		s.Insert(it)
		exact.Insert(it.Src, it.Dst, it.Weight)
	}
	nodes := exact.Nodes()
	if len(nodes) > 150 {
		nodes = nodes[:150]
	}
	for _, v := range nodes {
		got := map[string]bool{}
		for _, u := range s.Successors(v) {
			got[u] = true
		}
		for _, u := range exact.Successors(v) {
			if !got[u] {
				t.Fatalf("TCM lost successor %s of %s", u, v)
			}
		}
		gotP := map[string]bool{}
		for _, u := range s.Precursors(v) {
			gotP[u] = true
		}
		for _, u := range exact.Precursors(v) {
			if !gotP[u] {
				t.Fatalf("TCM lost precursor %s of %s", u, v)
			}
		}
	}
}

func TestMoreSketchesNeverHurtEdgeEstimates(t *testing.T) {
	items := stream.Generate(stream.LkmlReply().Scaled(0.001))
	one := MustNew(Config{Width: 32, Depth: 1})
	four := MustNew(Config{Width: 32, Depth: 4})
	for _, it := range items {
		one.Insert(it)
		four.Insert(it)
	}
	for _, it := range items[:500] {
		w1, _ := one.EdgeWeight(it.Src, it.Dst)
		w4, _ := four.EdgeWeight(it.Src, it.Dst)
		if w4 > w1 {
			t.Fatalf("min over more sketches increased estimate: %d > %d", w4, w1)
		}
	}
}

func TestNodeOutWeight(t *testing.T) {
	s := MustNew(Config{Width: 256, Depth: 4})
	s.InsertEdge("a", "b", 3)
	s.InsertEdge("a", "c", 4)
	s.InsertEdge("x", "y", 100)
	got := s.NodeOutWeight("a")
	if got < 7 {
		t.Fatalf("NodeOutWeight(a) = %d, want >= 7", got)
	}
}

func TestUnknownNode(t *testing.T) {
	s := MustNew(Config{Width: 16})
	s.InsertEdge("a", "b", 1)
	if got := s.Successors("nope"); got != nil {
		t.Fatalf("unknown node successors = %v", got)
	}
	if got := s.Precursors("nope"); got != nil {
		t.Fatalf("unknown node precursors = %v", got)
	}
}

func TestNodesAndCounts(t *testing.T) {
	s := MustNew(Config{Width: 16})
	s.InsertEdge("b", "a", 1)
	s.InsertEdge("a", "c", 1)
	nodes := s.Nodes()
	if len(nodes) != 3 || nodes[0] != "a" {
		t.Fatalf("Nodes = %v", nodes)
	}
	if s.ItemCount() != 2 {
		t.Fatalf("ItemCount = %d", s.ItemCount())
	}
}

func TestMemoryAndWidthForMemory(t *testing.T) {
	s := MustNew(Config{Width: 100, Depth: 4})
	if got := s.MemoryBytes(); got != 4*100*100*8 {
		t.Fatalf("MemoryBytes = %d", got)
	}
	w := WidthForMemory(s.MemoryBytes(), 4)
	if w != 100 {
		t.Fatalf("WidthForMemory round trip = %d, want 100", w)
	}
	if w := WidthForMemory(8*256, 1); w*w*8 > 8*256 {
		t.Fatalf("WidthForMemory overshoots: %d", w)
	}
}

func TestDeletion(t *testing.T) {
	s := MustNew(Config{Width: 64})
	s.InsertEdge("a", "b", 9)
	s.InsertEdge("a", "b", -4)
	if w, _ := s.EdgeWeight("a", "b"); w != 5 {
		t.Fatalf("w = %d after deletion", w)
	}
}
