// Package tcm implements TCM ("Graph stream summarization: From big
// bang to big crunch", SIGMOD 2016), the state-of-the-art baseline the
// paper compares against. A TCM summary is d independent graph sketches,
// each an M x M adjacency matrix of counters under its own node hash
// function. Edge and node estimates take the minimum over sketches; set
// queries intersect the per-sketch candidate sets ("report the most
// accurate value", §II).
package tcm

import (
	"errors"
	"sort"

	"repro/internal/hashing"
	"repro/internal/stream"
)

// Config configures a TCM summary.
type Config struct {
	// Width is M, the side length of each adjacency matrix (which for
	// TCM is also the node-hash range).
	Width int
	// Depth is the number of independent graph sketches. The paper's
	// experiments use 4.
	Depth int
	// Seed derives the per-sketch hash functions.
	Seed uint64
}

// TCM is a multi-sketch TCM summary. Not safe for concurrent use.
type TCM struct {
	cfg      Config
	counters [][]int64 // Depth matrices, each Width*Width
	names    []string  // node ordinal -> identifier
	ordinals map[string]int
	// rowIndex[v hash in sketch 0] -> node ordinals, for fast candidate
	// enumeration in set queries.
	rowIndex map[uint32][]int
	items    int64
}

// New builds an empty TCM summary.
func New(cfg Config) (*TCM, error) {
	if cfg.Width <= 0 {
		return nil, errors.New("tcm: Config.Width must be positive")
	}
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	if cfg.Depth < 1 {
		return nil, errors.New("tcm: Config.Depth must be positive")
	}
	t := &TCM{
		cfg:      cfg,
		counters: make([][]int64, cfg.Depth),
		ordinals: make(map[string]int),
		rowIndex: make(map[uint32][]int),
	}
	for k := range t.counters {
		t.counters[k] = make([]int64, cfg.Width*cfg.Width)
	}
	return t, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *TCM {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

func (t *TCM) hash(v string, sketch int) uint32 {
	return uint32(hashing.HashSeeded(v, t.cfg.Seed+uint64(sketch)*0x9e3779b97f4a7c15) % uint64(t.cfg.Width))
}

func (t *TCM) register(v string) int {
	if ord, ok := t.ordinals[v]; ok {
		return ord
	}
	ord := len(t.names)
	t.ordinals[v] = ord
	t.names = append(t.names, v)
	h0 := t.hash(v, 0)
	t.rowIndex[h0] = append(t.rowIndex[h0], ord)
	return ord
}

// Insert ingests one stream item.
func (t *TCM) Insert(it stream.Item) { t.InsertEdge(it.Src, it.Dst, it.Weight) }

// InsertEdge adds w to edge (src,dst) in every sketch.
func (t *TCM) InsertEdge(src, dst string, w int64) {
	t.items++
	t.register(src)
	t.register(dst)
	for k := 0; k < t.cfg.Depth; k++ {
		t.counters[k][int(t.hash(src, k))*t.cfg.Width+int(t.hash(dst, k))] += w
	}
}

// EdgeWeight estimates the weight of (src,dst) as the minimum over
// sketches. With additive positive weights TCM never underestimates, so
// a zero minimum means the edge is absent.
func (t *TCM) EdgeWeight(src, dst string) (int64, bool) {
	est := t.edgeEstimate(src, dst)
	return est, est != 0
}

func (t *TCM) edgeEstimate(src, dst string) int64 {
	var est int64
	for k := 0; k < t.cfg.Depth; k++ {
		c := t.counters[k][int(t.hash(src, k))*t.cfg.Width+int(t.hash(dst, k))]
		if k == 0 || c < est {
			est = c
		}
	}
	return est
}

// Successors returns every registered node u with a nonzero counter on
// (v,u) in all sketches: the paper's row scan of the adjacency matrix,
// with the hash table mapping matrix columns back to original IDs, and
// the intersection over the d sketches for accuracy.
func (t *TCM) Successors(v string) []string { return t.neighbors(v, true) }

// Precursors is the column-wise analogue of Successors.
func (t *TCM) Precursors(v string) []string { return t.neighbors(v, false) }

func (t *TCM) neighbors(v string, forward bool) []string {
	if _, ok := t.ordinals[v]; !ok {
		return nil
	}
	w := t.cfg.Width
	h0 := int(t.hash(v, 0))
	var out []string
	// Scan the sketch-0 row (or column); each nonzero cell yields the
	// registered nodes hashing there as candidates, which sketches
	// 1..d-1 then confirm or reject.
	for c := 0; c < w; c++ {
		var cnt int64
		if forward {
			cnt = t.counters[0][h0*w+c]
		} else {
			cnt = t.counters[0][c*w+h0]
		}
		if cnt == 0 {
			continue
		}
		for _, ord := range t.rowIndex[uint32(c)] {
			u := t.names[ord]
			var est int64
			if forward {
				est = t.edgeEstimate(v, u)
			} else {
				est = t.edgeEstimate(u, v)
			}
			if est != 0 {
				out = append(out, u)
			}
		}
	}
	sort.Strings(out)
	return out
}

// NodeOutWeight estimates the paper's node query: the sum of the
// weights of all edges with source v, computed per sketch as a full row
// sum and minimized across sketches.
func (t *TCM) NodeOutWeight(v string) int64 {
	var est int64
	for k := 0; k < t.cfg.Depth; k++ {
		row := int(t.hash(v, k)) * t.cfg.Width
		var sum int64
		for c := 0; c < t.cfg.Width; c++ {
			sum += t.counters[k][row+c]
		}
		if k == 0 || sum < est {
			est = sum
		}
	}
	return est
}

// Nodes returns all registered node identifiers, sorted.
func (t *TCM) Nodes() []string {
	out := make([]string, len(t.names))
	copy(out, t.names)
	sort.Strings(out)
	return out
}

// MemoryBytes is the counter footprint across all sketches.
func (t *TCM) MemoryBytes() int64 {
	return int64(t.cfg.Depth) * int64(t.cfg.Width) * int64(t.cfg.Width) * 8
}

// ItemCount is the number of stream items ingested.
func (t *TCM) ItemCount() int64 { return t.items }

// WidthForMemory returns the per-sketch matrix width M such that depth
// matrices of M x M 8-byte counters use at most bytes. This is how the
// experiments grant TCM its 8x / 256x memory budgets (§VII-C).
func WidthForMemory(bytes int64, depth int) int {
	if depth < 1 {
		depth = 1
	}
	w := 1
	for int64(w+1)*int64(w+1)*int64(depth)*8 <= bytes {
		w++
	}
	return w
}
