// Package metrics implements the evaluation metrics of §VII-B: average
// relative error (ARE) for weight queries, average precision for set
// queries, true negative recall for reachability, buffer percentage,
// and insertion throughput in million insertions per second (Mips).
package metrics

import (
	"errors"
	"time"
)

// RelativeError is RE(q) = est/truth - 1 for a single weight query.
// Truth must be nonzero.
func RelativeError(est, truth int64) float64 {
	return float64(est)/float64(truth) - 1
}

// ARE accumulates average relative error over a query set.
type ARE struct {
	sum float64
	n   int
}

// Observe adds one (estimate, truth) observation; zero-truth queries
// are skipped, as the paper's query sets contain only existing edges
// and nodes.
func (a *ARE) Observe(est, truth int64) {
	if truth == 0 {
		return
	}
	a.sum += RelativeError(est, truth)
	a.n++
}

// Value returns the average relative error observed so far.
func (a *ARE) Value() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sum / float64(a.n)
}

// Count is the number of scored queries.
func (a *ARE) Count() int { return a.n }

// Precision is |truth| / |reported| for one set query with
// false-positives-only semantics (truth ⊆ reported). It returns 1 for
// an empty truth set correctly reported empty, and errors if reported
// lost a truth element — callers treat that as a soundness bug, not a
// metric value.
func Precision(reported, truth []string) (float64, error) {
	rep := make(map[string]bool, len(reported))
	for _, r := range reported {
		rep[r] = true
	}
	for _, t := range truth {
		if !rep[t] {
			return 0, errors.New("metrics: reported set lost a true element (false negative)")
		}
	}
	if len(rep) == 0 {
		return 1, nil
	}
	return float64(len(truth)) / float64(len(rep)), nil
}

// AvgPrecision accumulates the average precision of a query set.
type AvgPrecision struct {
	sum float64
	n   int
}

// Observe records one set query. It propagates Precision's soundness
// error.
func (p *AvgPrecision) Observe(reported, truth []string) error {
	v, err := Precision(reported, truth)
	if err != nil {
		return err
	}
	p.sum += v
	p.n++
	return nil
}

// Value returns the average precision.
func (p *AvgPrecision) Value() float64 {
	if p.n == 0 {
		return 0
	}
	return p.sum / float64(p.n)
}

// Recall accumulates true negative recall (§VII-B): the fraction of
// known-unreachable query pairs correctly reported unreachable.
type Recall struct {
	correct, total int
}

// Observe records one unreachable-pair query: reportedUnreachable is
// the summary's answer.
func (r *Recall) Observe(reportedUnreachable bool) {
	r.total++
	if reportedUnreachable {
		r.correct++
	}
}

// Value returns the recall in [0,1].
func (r *Recall) Value() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.correct) / float64(r.total)
}

// Mips converts an insertion count and elapsed time to million
// insertions per second, the Table I unit.
func Mips(insertions int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(insertions) / elapsed.Seconds() / 1e6
}
