package metrics

import (
	"math"
	"testing"
	"time"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRelativeError(t *testing.T) {
	if got := RelativeError(110, 100); !approx(got, 0.1) {
		t.Fatalf("RE = %f", got)
	}
	if got := RelativeError(100, 100); got != 0 {
		t.Fatalf("RE exact = %f", got)
	}
}

func TestAREAccumulation(t *testing.T) {
	var a ARE
	a.Observe(110, 100) // 0.1
	a.Observe(100, 100) // 0
	a.Observe(50, 0)    // skipped
	if a.Count() != 2 {
		t.Fatalf("Count = %d", a.Count())
	}
	if got := a.Value(); !approx(got, 0.05) {
		t.Fatalf("ARE = %f", got)
	}
	var empty ARE
	if empty.Value() != 0 {
		t.Fatal("empty ARE nonzero")
	}
}

func TestPrecision(t *testing.T) {
	p, err := Precision([]string{"a", "b", "c", "d"}, []string{"a", "b"})
	if err != nil || p != 0.5 {
		t.Fatalf("Precision = %f, %v", p, err)
	}
	p, err = Precision([]string{"a"}, []string{"a"})
	if err != nil || p != 1 {
		t.Fatalf("perfect precision = %f, %v", p, err)
	}
	p, err = Precision(nil, nil)
	if err != nil || p != 1 {
		t.Fatalf("empty/empty precision = %f, %v", p, err)
	}
	if _, err = Precision([]string{"a"}, []string{"a", "b"}); err == nil {
		t.Fatal("false negative undetected")
	}
}

func TestPrecisionDeduplicatesReported(t *testing.T) {
	p, err := Precision([]string{"a", "a", "b"}, []string{"a"})
	if err != nil || p != 0.5 {
		t.Fatalf("Precision with dup reported = %f, %v", p, err)
	}
}

func TestAvgPrecision(t *testing.T) {
	var ap AvgPrecision
	if err := ap.Observe([]string{"a", "b"}, []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := ap.Observe([]string{"x"}, []string{"x"}); err != nil {
		t.Fatal(err)
	}
	if got := ap.Value(); !approx(got, 0.75) {
		t.Fatalf("AvgPrecision = %f", got)
	}
}

func TestRecall(t *testing.T) {
	var r Recall
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	if got := r.Value(); got < 0.66 || got > 0.67 {
		t.Fatalf("Recall = %f", got)
	}
	var empty Recall
	if empty.Value() != 0 {
		t.Fatal("empty recall nonzero")
	}
}

func TestMips(t *testing.T) {
	if got := Mips(2_000_000, time.Second); got != 2 {
		t.Fatalf("Mips = %f", got)
	}
	if got := Mips(100, 0); got != 0 {
		t.Fatalf("Mips zero-duration = %f", got)
	}
}
