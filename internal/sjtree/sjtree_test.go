package sjtree

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
	"repro/internal/vf2"
)

func windowItems() []stream.Item {
	cfg := stream.WebNotreDame().Scaled(0.008)
	cfg.Labels = 5
	return stream.Generate(cfg)
}

func firstN(items []stream.Item, n int) []stream.Item {
	if len(items) < n {
		return items
	}
	return items[:n]
}

func TestWindowBasics(t *testing.T) {
	w := NewWindow([]stream.Item{
		{Src: "a", Dst: "b", Label: 1},
		{Src: "a", Dst: "b", Label: 2}, // repeated edge: first label wins
		{Src: "b", Dst: "c", Label: 3},
		{Src: "x", Dst: "x", Label: 4}, // self loop dropped
	})
	if w.EdgeCount() != 2 {
		t.Fatalf("EdgeCount = %d, want 2", w.EdgeCount())
	}
	if l, ok := w.EdgeLabel("a", "b"); !ok || l != 1 {
		t.Fatalf("EdgeLabel(a,b) = %d,%v", l, ok)
	}
	if got := w.Successors("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Successors(a) = %v", got)
	}
	if got := w.Precursors("c"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Precursors(c) = %v", got)
	}
	if len(w.Nodes()) != 3 {
		t.Fatalf("Nodes = %v", w.Nodes())
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	items := firstN(windowItems(), 2000)
	w := NewWindow(items)
	edges := w.Edges()
	if len(edges) != w.EdgeCount() {
		t.Fatalf("Edges() returned %d, EdgeCount %d", len(edges), w.EdgeCount())
	}
	w2 := NewWindow(edges)
	if w2.EdgeCount() != w.EdgeCount() {
		t.Fatal("rebuilding from Edges() changed the graph")
	}
	for _, e := range edges[:200] {
		if l, ok := w2.EdgeLabel(e.Src, e.Dst); !ok || l != e.Label {
			t.Fatalf("label mismatch on (%s,%s)", e.Src, e.Dst)
		}
	}
}

func TestMatchFindsPlantedPattern(t *testing.T) {
	w := NewWindow([]stream.Item{
		{Src: "a", Dst: "b", Label: 1},
		{Src: "b", Dst: "c", Label: 2},
		{Src: "c", Dst: "d", Label: 3},
	})
	p := vf2.Pattern{N: 3, Edges: []vf2.Edge{
		{From: 0, To: 1, Label: 1}, {From: 1, To: 2, Label: 2}}}
	assign, ok := w.Match(p)
	if !ok || assign[0] != "a" || assign[1] != "b" || assign[2] != "c" {
		t.Fatalf("Match = %v, %v", assign, ok)
	}
}

func TestRandomWalkPatternIsAlwaysMatchable(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive matchability sweep takes ~2s; skipped under -short")
	}
	// The defining property of the Fig. 15 query generator: a pattern
	// extracted from the window must be found in that window by the
	// exact matcher (SJ-tree's correct rate is 1.0).
	w := NewWindow(firstN(windowItems(), 5000))
	rng := rand.New(rand.NewSource(7))
	extracted := 0
	for _, size := range []int{6, 9, 12, 15} {
		for i := 0; i < 5; i++ {
			p, witness, ok := RandomWalkPattern(w, rng, size)
			if !ok {
				continue
			}
			extracted++
			if len(p.Edges) != size {
				t.Fatalf("pattern has %d edges, want %d", len(p.Edges), size)
			}
			// The witness itself must be an embedding.
			for _, e := range p.Edges {
				if l, ok := w.EdgeLabel(witness[e.From], witness[e.To]); !ok || l != e.Label {
					t.Fatalf("witness is not an embedding at edge %v", e)
				}
			}
			switch _, st := vf2.FindOneStatus(w, p, vf2.DefaultMaxSteps); st {
			case vf2.StatusFound:
			case vf2.StatusBudget:
				// Subgraph isomorphism is NP-complete; a rare pattern
				// can defeat the bounded search even when its witness
				// exists. Inconclusive, not a correctness failure.
			default:
				t.Fatalf("exact matcher definitively missed its own window's pattern (size %d)", size)
			}
		}
	}
	if extracted < 10 {
		t.Fatalf("only %d patterns extracted; generator too weak", extracted)
	}
}

func TestRandomWalkPatternDegenerateInputs(t *testing.T) {
	w := NewWindow(nil)
	rng := rand.New(rand.NewSource(1))
	if _, _, ok := RandomWalkPattern(w, rng, 3); ok {
		t.Fatal("pattern extracted from empty window")
	}
	w2 := NewWindow([]stream.Item{{Src: "a", Dst: "b"}})
	if _, _, ok := RandomWalkPattern(w2, rng, 10); ok {
		t.Fatal("10-edge pattern extracted from 1-edge window")
	}
	if p, _, ok := RandomWalkPattern(w2, rng, 1); !ok || len(p.Edges) != 1 {
		t.Fatal("1-edge pattern should be extractable")
	}
}
