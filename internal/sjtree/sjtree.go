// Package sjtree provides the exact windowed subgraph-matching baseline
// standing in for SJ-tree ("A selectivity based approach to continuous
// pattern detection in streaming graphs") in the Fig. 15 experiment.
//
// Substitution note (DESIGN.md §3): the original SJ-tree is an
// incremental join tree over partial matches. What Fig. 15 measures is
// its *exactness* (correct rate 1.0) against GSS's approximate matching
// at one tenth the memory, so an exact labeled window graph with a
// complete matcher preserves the comparison; the incremental machinery
// would change throughput constants only.
package sjtree

import (
	"math/rand"
	"sort"

	"repro/internal/stream"
	"repro/internal/vf2"
)

// Window is an exact labeled directed graph over a window of a graph
// stream. The first label observed for an edge wins; repeated edges do
// not stack (pattern matching is about topology plus labels, not
// weights).
type Window struct {
	adj   map[string]map[string]uint32
	radj  map[string]map[string]bool
	nodes []string
}

// NewWindow builds a window graph from items.
func NewWindow(items []stream.Item) *Window {
	w := &Window{
		adj:  make(map[string]map[string]uint32),
		radj: make(map[string]map[string]bool),
	}
	for _, it := range items {
		w.addEdge(it.Src, it.Dst, it.Label)
	}
	w.nodes = make([]string, 0, len(w.adj))
	for v := range w.adj {
		w.nodes = append(w.nodes, v)
	}
	sort.Strings(w.nodes)
	return w
}

func (w *Window) addEdge(src, dst string, label uint32) {
	if src == dst {
		return
	}
	os, ok := w.adj[src]
	if !ok {
		os = make(map[string]uint32)
		w.adj[src] = os
	}
	if _, exists := os[dst]; !exists {
		os[dst] = label
		is, ok := w.radj[dst]
		if !ok {
			is = make(map[string]bool)
			w.radj[dst] = is
		}
		is[src] = true
	}
	if _, ok := w.adj[dst]; !ok {
		w.adj[dst] = make(map[string]uint32)
	}
}

// Nodes implements vf2.Graph.
func (w *Window) Nodes() []string { return w.nodes }

// Successors implements vf2.Graph.
func (w *Window) Successors(v string) []string {
	out := make([]string, 0, len(w.adj[v]))
	for u := range w.adj[v] {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Precursors implements vf2.Graph.
func (w *Window) Precursors(v string) []string {
	out := make([]string, 0, len(w.radj[v]))
	for u := range w.radj[v] {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// EdgeLabel implements vf2.Graph.
func (w *Window) EdgeLabel(src, dst string) (uint32, bool) {
	label, ok := w.adj[src][dst]
	return label, ok
}

// EdgeCount returns the number of distinct directed edges.
func (w *Window) EdgeCount() int {
	n := 0
	for _, os := range w.adj {
		n += len(os)
	}
	return n
}

// Edges enumerates all distinct labeled edges as stream items (weight
// 1), useful for loading the window into a sketch.
func (w *Window) Edges() []stream.Item {
	var out []stream.Item
	for src, os := range w.adj {
		for dst, label := range os {
			out = append(out, stream.Item{Src: src, Dst: dst, Weight: 1, Label: label})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// Match runs the exact matcher over the window.
func (w *Window) Match(p vf2.Pattern) (map[int]string, bool) {
	return vf2.FindOne(w, p)
}

// RandomWalkPattern extracts a connected pattern with edgeCount edges by
// random walk over the window (the Fig. 15 query generator), returning
// the pattern and the witnessing assignment. ok is false when the walk
// cannot reach edgeCount distinct edges from its random start.
func RandomWalkPattern(w *Window, rng *rand.Rand, edgeCount int) (vf2.Pattern, map[int]string, bool) {
	if len(w.nodes) == 0 || edgeCount < 1 {
		return vf2.Pattern{}, nil, false
	}
	for attempt := 0; attempt < 20; attempt++ {
		start := w.nodes[rng.Intn(len(w.nodes))]
		if len(w.adj[start]) == 0 {
			continue
		}
		patIdx := map[string]int{start: 0}
		names := []string{start}
		var edges []vf2.Edge
		usedEdge := map[[2]string]bool{}
		for len(edges) < edgeCount {
			// Pick a visited node that still has an unused out-edge.
			progressed := false
			for _, i := range rng.Perm(len(names)) {
				v := names[i]
				succ := w.Successors(v)
				for _, j := range rng.Perm(len(succ)) {
					u := succ[j]
					if usedEdge[[2]string{v, u}] {
						continue
					}
					usedEdge[[2]string{v, u}] = true
					if _, ok := patIdx[u]; !ok {
						patIdx[u] = len(names)
						names = append(names, u)
					}
					label, _ := w.EdgeLabel(v, u)
					edges = append(edges, vf2.Edge{From: patIdx[v], To: patIdx[u], Label: label})
					progressed = true
					break
				}
				if progressed {
					break
				}
			}
			if !progressed {
				break
			}
		}
		if len(edges) < edgeCount {
			continue
		}
		assign := make(map[int]string, len(names))
		for name, idx := range patIdx {
			assign[idx] = name
		}
		return vf2.Pattern{N: len(names), Edges: edges}, assign, true
	}
	return vf2.Pattern{}, nil, false
}
