// Package window extends GSS to sliding-window summarization of
// unbounded streams — an extension beyond the paper (its sketches grow
// with the whole stream). A Sliding summary keeps g generation sketches
// covering span/g time units each; expired generations are dropped
// whole, so the summary always covers between span·(g-1)/g and span
// time units and memory stays bounded regardless of stream length.
//
// Queries merge all live generations: weights add up, neighbor sets
// union, preserving the false-positive-only semantics of GSS.
//
// Sliding implements the full sketch.Sketch deployment surface
// (batched ingestion, heavy edges, statistics, snapshot/restore), so
// it plugs into the HTTP server and benchmark harness as the
// "windowed" backend. Like the plain GSS it is not safe for
// concurrent use; the backend factory wraps it in a mutex adapter.
package window

import (
	"errors"
	"math"
	"sort"

	"repro/internal/gss"
	"repro/internal/hashing"
	"repro/internal/stream"
)

// Config configures a sliding-window summary.
type Config struct {
	// Sketch is the per-generation GSS configuration.
	Sketch gss.Config
	// Span is the window length in stream-time units.
	Span int64
	// Generations is the rotation granularity g (>= 2). More
	// generations mean finer expiry at more memory.
	Generations int
}

// Sliding is a sliding-window GSS. Not safe for concurrent use.
type Sliding struct {
	cfg   Config
	skCfg gss.Config // normalized per-generation configuration
	nh    hashing.NodeHasher
	gens  []generation

	// epoch is the current (newest) generation index,
	// floorDiv(time, genSpan). It is meaningless until started is set
	// by the first insert: epoch 0 is a real epoch (as is -1 for
	// pre-epoch timestamps), so no int64 value can act as a sentinel.
	epoch   int64
	started bool

	expiredGens       int64 // generations rotated out since creation
	expiredItems      int64 // items those generations summarized
	droppedStragglers int64 // items already older than the window on arrival
}

type generation struct {
	epoch  int64
	sketch *gss.GSS
}

// New builds an empty sliding-window summary.
func New(cfg Config) (*Sliding, error) {
	if cfg.Span <= 0 {
		return nil, errors.New("window: Config.Span must be positive")
	}
	if cfg.Generations < 2 {
		return nil, errors.New("window: Config.Generations must be at least 2")
	}
	if cfg.Span < int64(cfg.Generations) {
		return nil, errors.New("window: Span must be at least Generations time units")
	}
	skCfg, err := cfg.Sketch.Normalized()
	if err != nil {
		return nil, err
	}
	return &Sliding{cfg: cfg, skCfg: skCfg,
		nh: hashing.NewNodeHasher(skCfg.Width, skCfg.FingerprintBits)}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Sliding {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the configuration the summary runs with.
func (s *Sliding) Config() Config { return s.cfg }

func (s *Sliding) genSpan() int64 { return s.cfg.Span / int64(s.cfg.Generations) }

// floorDiv divides rounding toward negative infinity, so pre-epoch
// (negative) timestamps land in epochs -1, -2, ... instead of
// collapsing into epoch 0 alongside the adjacent positive times (as
// Go's truncating division would make them).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// advance moves the epoch cursor forward to epoch (rotating out
// generations that leave the window) and reports whether an item in
// epoch is still inside the window.
func (s *Sliding) advance(epoch int64) bool {
	if !s.started {
		s.started = true
		s.epoch = epoch
	} else if epoch > s.epoch {
		s.epoch = epoch
		s.expire()
	}
	return epoch > s.epoch-int64(s.cfg.Generations)
}

// Insert ingests one item, rotating generations forward to the item's
// timestamp. Items must arrive in non-decreasing time order; stragglers
// older than the window are dropped (and counted in Stats).
func (s *Sliding) Insert(it stream.Item) {
	epoch := floorDiv(it.Time, s.genSpan())
	if !s.advance(epoch) {
		s.droppedStragglers++
		return
	}
	s.generationFor(epoch).Insert(it)
}

// InsertBatch ingests a slice of items, grouping consecutive same-epoch
// runs so rotation and the generation lookup happen once per run
// instead of once per item — on a time-ordered stream that is one
// lookup per generation touched by the batch.
func (s *Sliding) InsertBatch(items []stream.Item) {
	span := s.genSpan()
	for i := 0; i < len(items); {
		epoch := floorDiv(items[i].Time, span)
		j := i + 1
		for j < len(items) && floorDiv(items[j].Time, span) == epoch {
			j++
		}
		if s.advance(epoch) {
			s.generationFor(epoch).InsertBatch(items[i:j])
		} else {
			s.droppedStragglers += int64(j - i)
		}
		i = j
	}
}

// InsertHashedBatch ingests a pre-hashed batch, the binary ingest
// plane's entry point: the same consecutive same-epoch run grouping as
// InsertBatch, with each run forwarded to its live generation's hashed
// path — the carried hashes reduce into the generation's node space
// there, so nothing in the windowed layer re-hashes an identifier.
// Runs may be reordered in place by the generation's region sort
// (run boundaries are computed first, so grouping is unaffected).
func (s *Sliding) InsertHashedBatch(items []stream.HashedItem) {
	span := s.genSpan()
	for i := 0; i < len(items); {
		epoch := floorDiv(items[i].Time, span)
		j := i + 1
		for j < len(items) && floorDiv(items[j].Time, span) == epoch {
			j++
		}
		if s.advance(epoch) {
			s.generationFor(epoch).InsertHashedBatch(items[i:j])
		} else {
			s.droppedStragglers += int64(j - i)
		}
		i = j
	}
}

func (s *Sliding) generationFor(epoch int64) *gss.GSS {
	for i := range s.gens {
		if s.gens[i].epoch == epoch {
			return s.gens[i].sketch
		}
	}
	// Built from the stored normalized config — the single source of
	// truth Stats reports and Restore validates against.
	sk := gss.MustNew(s.skCfg)
	s.gens = append(s.gens, generation{epoch: epoch, sketch: sk})
	sort.Slice(s.gens, func(i, j int) bool { return s.gens[i].epoch < s.gens[j].epoch })
	return sk
}

// expire drops generations that left the window.
func (s *Sliding) expire() {
	oldest := s.epoch - int64(s.cfg.Generations) + 1
	kept := s.gens[:0]
	for _, g := range s.gens {
		if g.epoch >= oldest {
			kept = append(kept, g)
		} else {
			s.expiredGens++
			s.expiredItems += g.sketch.Stats().Items
		}
	}
	for i := len(kept); i < len(s.gens); i++ {
		s.gens[i] = generation{}
	}
	s.gens = kept
}

// EdgeWeight sums the edge's weight over all live generations.
func (s *Sliding) EdgeWeight(src, dst string) (int64, bool) {
	var sum int64
	found := false
	for _, g := range s.gens {
		if w, ok := g.sketch.EdgeWeight(src, dst); ok {
			sum += w
			found = true
		}
	}
	return sum, found
}

// Successors unions the 1-hop successors across generations.
func (s *Sliding) Successors(v string) []string {
	return s.unionSets(func(g *gss.GSS) []string { return g.Successors(v) })
}

// Precursors unions the 1-hop precursors across generations.
func (s *Sliding) Precursors(v string) []string {
	return s.unionSets(func(g *gss.GSS) []string { return g.Precursors(v) })
}

// Nodes unions the registered nodes across generations.
func (s *Sliding) Nodes() []string {
	return s.unionSets(func(g *gss.GSS) []string { return g.Nodes() })
}

// The hash-native query plane (query.HashSummary). Every generation
// runs the same normalized configuration, so hash values mean the same
// node in every generation and cross-generation unions need no
// translation. Unlike the sharded backend, the same edge can live in
// several generations (one per window slice it was observed in), so
// set unions deduplicate the appended tail in place.

// NodeHash maps an identifier into the shared compressed node space.
func (s *Sliding) NodeHash(v string) uint64 { return s.nh.Hash(v) }

// EdgeWeightHash sums the sketch edge's weight over live generations.
func (s *Sliding) EdgeWeightHash(hs, hd uint64) (int64, bool) {
	var sum int64
	found := false
	for _, g := range s.gens {
		if w, ok := g.sketch.EdgeWeightHash(hs, hd); ok {
			sum += w
			found = true
		}
	}
	return sum, found
}

// AppendSuccessorHashes appends the union of per-generation successor
// sets of hv to dst.
func (s *Sliding) AppendSuccessorHashes(hv uint64, dst []uint64) []uint64 {
	mark := len(dst)
	for _, g := range s.gens {
		dst = g.sketch.AppendSuccessorHashes(hv, dst)
	}
	return gss.DedupHashTail(dst, mark)
}

// AppendPrecursorHashes appends the union of per-generation precursor
// sets of hv to dst.
func (s *Sliding) AppendPrecursorHashes(hv uint64, dst []uint64) []uint64 {
	mark := len(dst)
	for _, g := range s.gens {
		dst = g.sketch.AppendPrecursorHashes(hv, dst)
	}
	return gss.DedupHashTail(dst, mark)
}

// AppendNodeHashes appends the union of per-generation registries.
func (s *Sliding) AppendNodeHashes(dst []uint64) []uint64 {
	mark := len(dst)
	for _, g := range s.gens {
		dst = g.sketch.AppendNodeHashes(dst)
	}
	return gss.DedupHashTail(dst, mark)
}

// AppendHashIDs appends the identifiers registered under hv across
// generations, deduplicated (a node active in several generations
// registers in each).
func (s *Sliding) AppendHashIDs(hv uint64, dst []string) []string {
	mark := len(dst)
	for _, g := range s.gens {
		next := g.sketch.AppendHashIDs(hv, dst)
		// Drop ids already appended by an earlier generation; per-hash
		// lists are tiny, so the scan is cheap.
		out := next[:len(dst)]
		for _, id := range next[len(dst):] {
			dup := false
			for _, have := range out[mark:] {
				if have == id {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, id)
			}
		}
		dst = out
	}
	return dst
}

// SupportsHashQueries reports whether the generations back the hash
// plane; the normalized config decides, so an empty window answers too.
func (s *Sliding) SupportsHashQueries() bool { return !s.skCfg.DisableNodeIndex }

func (s *Sliding) unionSets(get func(*gss.GSS) []string) []string {
	seen := map[string]bool{}
	for _, g := range s.gens {
		for _, v := range get(g.sketch) {
			seen[v] = true
		}
	}
	return sortedKeys(seen)
}

func sortedKeys(seen map[string]bool) []string {
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// HeavyEdges lists sketch edges whose weight summed over the live
// window reaches minWeight. An edge's window weight is spread over up
// to Generations sketches, so every generation is scanned unfiltered
// and the per-edge sums are thresholded afterwards — an edge heavy in
// total but light in every single generation is still found.
func (s *Sliding) HeavyEdges(minWeight int64) []gss.HeavyEdge {
	type key struct{ s, d uint64 }
	merged := map[key]*gss.HeavyEdge{}
	for _, g := range s.gens {
		for _, he := range g.sketch.HeavyEdges(math.MinInt64) {
			k := key{he.SrcHash, he.DstHash}
			m, ok := merged[k]
			if !ok {
				cp := he
				merged[k] = &cp
				continue
			}
			m.Weight += he.Weight
			m.Srcs = unionStrings(m.Srcs, he.Srcs)
			m.Dsts = unionStrings(m.Dsts, he.Dsts)
		}
	}
	var out []gss.HeavyEdge
	for _, he := range merged {
		if he.Weight >= minWeight {
			out = append(out, *he)
		}
	}
	gss.SortHeavyEdges(out)
	return out
}

// unionStrings merges two identifier lists, deduplicated and sorted.
func unionStrings(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	seen := make(map[string]bool, len(a)+len(b))
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		seen[v] = true
	}
	return sortedKeys(seen)
}

// Stats aggregates the live generations' statistics and reports the
// window counters: live/expired generation counts, items expired with
// them, and stragglers dropped on arrival. Items counts only what the
// live window still summarizes.
func (s *Sliding) Stats() gss.Stats {
	st := gss.Stats{
		Width:           s.skCfg.Width,
		Rooms:           s.skCfg.Rooms,
		SeqLen:          s.skCfg.SeqLen,
		Candidates:      s.skCfg.Candidates,
		FingerprintBits: s.skCfg.FingerprintBits,

		WindowSpan:         s.cfg.Span,
		LiveGenerations:    len(s.gens),
		ExpiredGenerations: s.expiredGens,
		ExpiredItems:       s.expiredItems,
		DroppedStragglers:  s.droppedStragglers,
	}
	for _, g := range s.gens {
		gs := g.sketch.Stats()
		st.Items += gs.Items
		st.MatrixEdges += gs.MatrixEdges
		st.BufferEdges += gs.BufferEdges
		st.MatrixBytes += gs.MatrixBytes
		st.ReverseIndexBytes += gs.ReverseIndexBytes
	}
	// Deduplicated across generations — a node active in every
	// generation is still one node, and this count must agree with
	// Nodes(). Only the count is needed, so the unsorted iterator
	// avoids per-generation sorts on every stats poll. (The
	// per-generation registries still store a shared node g times;
	// MatrixBytes deliberately excludes registries, as in plain GSS.)
	seen := map[string]bool{}
	for _, g := range s.gens {
		g.sketch.EachNode(func(id string) { seen[id] = true })
	}
	st.IndexedNodes = len(seen)
	if slots := len(s.gens) * s.skCfg.Width * s.skCfg.Width * s.skCfg.Rooms; slots > 0 {
		st.Occupancy = float64(st.MatrixEdges) / float64(slots)
	}
	if total := st.MatrixEdges + st.BufferEdges; total > 0 {
		st.BufferPct = float64(st.BufferEdges) / float64(total)
	}
	return st
}

// LiveGenerations reports how many generation sketches are resident.
func (s *Sliding) LiveGenerations() int { return len(s.gens) }

// MemoryBytes sums the matrix footprints of live generations.
func (s *Sliding) MemoryBytes() int64 {
	var sum int64
	for _, g := range s.gens {
		sum += g.sketch.MemoryBytes()
	}
	return sum
}
