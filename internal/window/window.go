// Package window extends GSS to sliding-window summarization of
// unbounded streams — an extension beyond the paper (its sketches grow
// with the whole stream). A Sliding summary keeps g generation sketches
// covering span/g time units each; expired generations are dropped
// whole, so the summary always covers between span·(g-1)/g and span
// time units and memory stays bounded regardless of stream length.
//
// Queries merge all live generations: weights add up, neighbor sets
// union, preserving the false-positive-only semantics of GSS.
package window

import (
	"errors"
	"sort"

	"repro/internal/gss"
	"repro/internal/stream"
)

// Config configures a sliding-window summary.
type Config struct {
	// Sketch is the per-generation GSS configuration.
	Sketch gss.Config
	// Span is the window length in stream-time units.
	Span int64
	// Generations is the rotation granularity g (>= 2). More
	// generations mean finer expiry at more memory.
	Generations int
}

// Sliding is a sliding-window GSS. Not safe for concurrent use.
type Sliding struct {
	cfg   Config
	gens  []generation
	epoch int64 // current generation index = floor(time/genSpan)
}

type generation struct {
	epoch  int64
	sketch *gss.GSS
}

// New builds an empty sliding-window summary.
func New(cfg Config) (*Sliding, error) {
	if cfg.Span <= 0 {
		return nil, errors.New("window: Config.Span must be positive")
	}
	if cfg.Generations < 2 {
		return nil, errors.New("window: Config.Generations must be at least 2")
	}
	if cfg.Span < int64(cfg.Generations) {
		return nil, errors.New("window: Span must be at least Generations time units")
	}
	if _, err := gss.New(cfg.Sketch); err != nil {
		return nil, err
	}
	return &Sliding{cfg: cfg, epoch: -1}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Sliding {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

func (s *Sliding) genSpan() int64 { return s.cfg.Span / int64(s.cfg.Generations) }

// Insert ingests one item, rotating generations forward to the item's
// timestamp. Items must arrive in non-decreasing time order; stragglers
// older than the window are dropped.
func (s *Sliding) Insert(it stream.Item) {
	epoch := it.Time / s.genSpan()
	if epoch > s.epoch {
		s.epoch = epoch
		s.expire()
	}
	if epoch <= s.epoch-int64(s.cfg.Generations) {
		return // too old for the window
	}
	g := s.generationFor(epoch)
	g.Insert(it)
}

func (s *Sliding) generationFor(epoch int64) *gss.GSS {
	for i := range s.gens {
		if s.gens[i].epoch == epoch {
			return s.gens[i].sketch
		}
	}
	sk := gss.MustNew(s.cfg.Sketch)
	s.gens = append(s.gens, generation{epoch: epoch, sketch: sk})
	sort.Slice(s.gens, func(i, j int) bool { return s.gens[i].epoch < s.gens[j].epoch })
	return sk
}

// expire drops generations that left the window.
func (s *Sliding) expire() {
	oldest := s.epoch - int64(s.cfg.Generations) + 1
	kept := s.gens[:0]
	for _, g := range s.gens {
		if g.epoch >= oldest {
			kept = append(kept, g)
		}
	}
	for i := len(kept); i < len(s.gens); i++ {
		s.gens[i] = generation{}
	}
	s.gens = kept
}

// EdgeWeight sums the edge's weight over all live generations.
func (s *Sliding) EdgeWeight(src, dst string) (int64, bool) {
	var sum int64
	found := false
	for _, g := range s.gens {
		if w, ok := g.sketch.EdgeWeight(src, dst); ok {
			sum += w
			found = true
		}
	}
	return sum, found
}

// Successors unions the 1-hop successors across generations.
func (s *Sliding) Successors(v string) []string {
	return s.unionSets(func(g *gss.GSS) []string { return g.Successors(v) })
}

// Precursors unions the 1-hop precursors across generations.
func (s *Sliding) Precursors(v string) []string {
	return s.unionSets(func(g *gss.GSS) []string { return g.Precursors(v) })
}

// Nodes unions the registered nodes across generations.
func (s *Sliding) Nodes() []string {
	return s.unionSets(func(g *gss.GSS) []string { return g.Nodes() })
}

func (s *Sliding) unionSets(get func(*gss.GSS) []string) []string {
	seen := map[string]bool{}
	for _, g := range s.gens {
		for _, v := range get(g.sketch) {
			seen[v] = true
		}
	}
	if len(seen) == 0 {
		return nil
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// LiveGenerations reports how many generation sketches are resident.
func (s *Sliding) LiveGenerations() int { return len(s.gens) }

// MemoryBytes sums the matrix footprints of live generations.
func (s *Sliding) MemoryBytes() int64 {
	var sum int64
	for _, g := range s.gens {
		sum += g.sketch.MemoryBytes()
	}
	return sum
}
