package window

import (
	"bytes"
	"testing"

	"repro/internal/gss"
	"repro/internal/stream"
)

func cfg() Config {
	return Config{
		Sketch:      gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4},
		Span:        100,
		Generations: 4,
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{Sketch: gss.Config{Width: 8}, Span: 0, Generations: 4},
		{Sketch: gss.Config{Width: 8}, Span: 100, Generations: 1},
		{Sketch: gss.Config{Width: 8}, Span: 2, Generations: 4},
		{Sketch: gss.Config{}, Span: 100, Generations: 4}, // invalid sketch
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if _, err := New(cfg()); err != nil {
		t.Fatal(err)
	}
}

func TestWindowAccumulatesWithinSpan(t *testing.T) {
	s := MustNew(cfg())
	s.Insert(stream.Item{Src: "a", Dst: "b", Time: 0, Weight: 2})
	s.Insert(stream.Item{Src: "a", Dst: "b", Time: 50, Weight: 3})
	if w, ok := s.EdgeWeight("a", "b"); !ok || w != 5 {
		t.Fatalf("w = %d,%v want 5", w, ok)
	}
	if got := s.Successors("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Successors = %v", got)
	}
	if got := s.Precursors("b"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Precursors = %v", got)
	}
}

func TestExpiry(t *testing.T) {
	s := MustNew(cfg()) // span 100, 4 generations of 25
	s.Insert(stream.Item{Src: "old", Dst: "x", Time: 0, Weight: 1})
	s.Insert(stream.Item{Src: "mid", Dst: "x", Time: 60, Weight: 1})
	// Advance past the window for the first item: epoch(0)=0 expires
	// once current epoch >= 4 (time >= 100).
	s.Insert(stream.Item{Src: "new", Dst: "x", Time: 110, Weight: 1})
	if _, ok := s.EdgeWeight("old", "x"); ok {
		t.Fatal("expired edge still visible")
	}
	if _, ok := s.EdgeWeight("mid", "x"); !ok {
		t.Fatal("in-window edge lost")
	}
	if _, ok := s.EdgeWeight("new", "x"); !ok {
		t.Fatal("current edge lost")
	}
	if n := s.LiveGenerations(); n > 4 {
		t.Fatalf("generations unbounded: %d", n)
	}
}

func TestStragglersDropped(t *testing.T) {
	s := MustNew(cfg())
	s.Insert(stream.Item{Src: "a", Dst: "b", Time: 500, Weight: 1})
	s.Insert(stream.Item{Src: "late", Dst: "b", Time: 10, Weight: 1}) // far out of window
	if _, ok := s.EdgeWeight("late", "b"); ok {
		t.Fatal("straggler older than the window was admitted")
	}
}

func TestMemoryBounded(t *testing.T) {
	s := MustNew(cfg())
	// Stream far past many windows; memory must stay at <= Generations
	// sketches.
	per := gss.MustNew(cfg().Sketch).MemoryBytes()
	for i := 0; i < 5000; i++ {
		s.Insert(stream.Item{Src: stream.NodeID(i % 50), Dst: stream.NodeID(i % 37), Time: int64(i), Weight: 1})
	}
	if s.LiveGenerations() > 4 {
		t.Fatalf("%d generations live", s.LiveGenerations())
	}
	if s.MemoryBytes() > int64(4)*per {
		t.Fatalf("memory %d exceeds %d", s.MemoryBytes(), 4*per)
	}
}

// TestEpochFloorDivision pins the negative-timestamp fix: truncating
// division collapsed epochs -1 and 0, so pre-epoch items survived one
// rotation longer than they should and adjacent negative/positive
// times shared a generation.
func TestEpochFloorDivision(t *testing.T) {
	// span 100, 4 generations of 25: time -30 is epoch -2, time -1 is
	// epoch -1, time 1 is epoch 0.
	s := MustNew(cfg())
	s.Insert(stream.Item{Src: "preepoch", Dst: "x", Time: -30, Weight: 1})
	s.Insert(stream.Item{Src: "justbefore", Dst: "x", Time: -1, Weight: 1})
	s.Insert(stream.Item{Src: "justafter", Dst: "x", Time: 1, Weight: 1})
	if n := s.LiveGenerations(); n != 3 {
		t.Fatalf("epochs -2, -1, 0 should be 3 generations, got %d", n)
	}
	// Advance to epoch 2 (time 70): window covers epochs -1..2, so
	// epoch -2 expires — under truncating division -30 mapped to epoch
	// -1 and would wrongly survive.
	s.Insert(stream.Item{Src: "now", Dst: "x", Time: 70, Weight: 1})
	if _, ok := s.EdgeWeight("preepoch", "x"); ok {
		t.Fatal("epoch -2 item survived a rotation that should expire it")
	}
	if _, ok := s.EdgeWeight("justbefore", "x"); !ok {
		t.Fatal("epoch -1 item expired too early")
	}
	// One more epoch (time 99 = epoch 3): now epoch -1 goes too.
	s.Insert(stream.Item{Src: "later", Dst: "x", Time: 99, Weight: 1})
	if _, ok := s.EdgeWeight("justbefore", "x"); ok {
		t.Fatal("epoch -1 item survived past its window")
	}
	if _, ok := s.EdgeWeight("justafter", "x"); !ok {
		t.Fatal("epoch 0 item should still be live at epoch 3")
	}
}

// TestFirstItemAtNegativeTime: the epoch cursor used -1 as an empty
// sentinel, which is a real epoch for negative timestamps.
func TestFirstItemAtNegativeTime(t *testing.T) {
	s := MustNew(cfg())
	s.Insert(stream.Item{Src: "a", Dst: "b", Time: -10, Weight: 2})
	if w, ok := s.EdgeWeight("a", "b"); !ok || w != 2 {
		t.Fatalf("first negative-time item lost: w = %d,%v", w, ok)
	}
	if n := s.LiveGenerations(); n != 1 {
		t.Fatalf("generations = %d, want 1", n)
	}
	// A deeply negative first item must not be treated as a straggler.
	s2 := MustNew(cfg())
	s2.Insert(stream.Item{Src: "deep", Dst: "past", Time: -1000, Weight: 1})
	if _, ok := s2.EdgeWeight("deep", "past"); !ok {
		t.Fatal("first item at deep negative time dropped as straggler")
	}
	if got := s2.Stats().DroppedStragglers; got != 0 {
		t.Fatalf("DroppedStragglers = %d, want 0", got)
	}
}

// TestStragglerBoundary: an item exactly Span old has left the window
// (the window is (now-Span, now] in generation granularity); one
// generation younger is still admitted.
func TestStragglerBoundary(t *testing.T) {
	s := MustNew(cfg())                                                 // span 100, genSpan 25
	s.Insert(stream.Item{Src: "now", Dst: "x", Time: 500, Weight: 1})   // epoch 20
	s.Insert(stream.Item{Src: "exact", Dst: "x", Time: 400, Weight: 1}) // epoch 16: exactly Span old
	if _, ok := s.EdgeWeight("exact", "x"); ok {
		t.Fatal("item exactly Span old was admitted")
	}
	s.Insert(stream.Item{Src: "edge", Dst: "x", Time: 425, Weight: 1}) // epoch 17: oldest live
	if _, ok := s.EdgeWeight("edge", "x"); !ok {
		t.Fatal("oldest in-window item was dropped")
	}
	if got := s.Stats().DroppedStragglers; got != 1 {
		t.Fatalf("DroppedStragglers = %d, want 1", got)
	}
}

func TestInsertBatchGroupsAndRotates(t *testing.T) {
	s := MustNew(cfg())
	batch := []stream.Item{
		{Src: "a", Dst: "b", Time: 0, Weight: 1},
		{Src: "a", Dst: "b", Time: 10, Weight: 2},    // same epoch 0
		{Src: "a", Dst: "b", Time: 30, Weight: 4},    // epoch 1
		{Src: "c", Dst: "d", Time: 120, Weight: 8},   // epoch 4: expires epoch 0
		{Src: "late", Dst: "d", Time: 10, Weight: 1}, // straggler now
	}
	s.InsertBatch(batch)
	if w, ok := s.EdgeWeight("a", "b"); !ok || w != 4 {
		t.Fatalf("a->b = %d,%v want 4 (epoch-0 run expired, epoch-1 run live)", w, ok)
	}
	if w, ok := s.EdgeWeight("c", "d"); !ok || w != 8 {
		t.Fatalf("c->d = %d,%v want 8", w, ok)
	}
	st := s.Stats()
	if st.DroppedStragglers != 1 {
		t.Fatalf("DroppedStragglers = %d, want 1", st.DroppedStragglers)
	}
	if st.ExpiredGenerations != 1 || st.ExpiredItems != 2 {
		t.Fatalf("expired = %d gens / %d items, want 1/2", st.ExpiredGenerations, st.ExpiredItems)
	}

	// A batch must behave exactly like the same items inserted one by
	// one.
	one := MustNew(cfg())
	for _, it := range batch {
		one.Insert(it)
	}
	if a, b := s.Stats(), one.Stats(); a != b {
		t.Fatalf("batch and per-item stats diverge: %+v vs %+v", a, b)
	}
}

// TestHeavyEdgesMergeAcrossGenerations: an edge can be heavy over the
// window while light in every single generation.
func TestHeavyEdgesMergeAcrossGenerations(t *testing.T) {
	s := MustNew(cfg())
	for epoch := int64(0); epoch < 4; epoch++ {
		s.Insert(stream.Item{Src: "spread", Dst: "out", Time: epoch * 25, Weight: 30})
	}
	s.Insert(stream.Item{Src: "small", Dst: "fry", Time: 80, Weight: 5})
	heavy := s.HeavyEdges(100)
	if len(heavy) != 1 || heavy[0].Weight != 120 {
		t.Fatalf("heavy = %+v, want one edge of weight 120", heavy)
	}
	if len(heavy[0].Srcs) != 1 || heavy[0].Srcs[0] != "spread" {
		t.Fatalf("heavy srcs = %v", heavy[0].Srcs)
	}
	// After rotation drops the first generation, the sum falls under
	// the threshold.
	s.Insert(stream.Item{Src: "tick", Dst: "over", Time: 100, Weight: 1})
	if heavy := s.HeavyEdges(100); len(heavy) != 0 {
		t.Fatalf("heavy after expiry = %+v, want none", heavy)
	}
	if heavy := s.HeavyEdges(90); len(heavy) != 1 || heavy[0].Weight != 90 {
		t.Fatalf("heavy(90) after expiry = %+v, want weight 90", heavy)
	}
}

func TestStatsAggregation(t *testing.T) {
	s := MustNew(cfg())
	s.Insert(stream.Item{Src: "a", Dst: "b", Time: 0, Weight: 1})
	s.Insert(stream.Item{Src: "b", Dst: "c", Time: 30, Weight: 1})
	st := s.Stats()
	if st.Items != 2 || st.LiveGenerations != 2 || st.WindowSpan != 100 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MatrixEdges != 2 {
		t.Fatalf("MatrixEdges = %d, want 2", st.MatrixEdges)
	}
	// "b" is live in both generations but is still one node: the count
	// must agree with Nodes(), not sum per-generation registries.
	if st.IndexedNodes != 3 || st.IndexedNodes != len(s.Nodes()) {
		t.Fatalf("IndexedNodes = %d, want 3 (= len(Nodes()))", st.IndexedNodes)
	}
	if st.MatrixBytes != 2*gss.MustNew(cfg().Sketch).MemoryBytes() {
		t.Fatalf("MatrixBytes = %d", st.MatrixBytes)
	}
	if st.Occupancy <= 0 {
		t.Fatal("occupancy not aggregated")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := MustNew(cfg())
	// Build history: an edge that expires, an edge that stays, a
	// dropped straggler — all of it must survive the round trip.
	s.Insert(stream.Item{Src: "old", Dst: "x", Time: 0, Weight: 3})
	s.Insert(stream.Item{Src: "keep", Dst: "x", Time: 60, Weight: 5})
	s.Insert(stream.Item{Src: "new", Dst: "x", Time: 110, Weight: 7})
	s.Insert(stream.Item{Src: "late", Dst: "x", Time: 1, Weight: 1}) // straggler

	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r := MustNew(cfg())
	if err := r.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if a, b := s.Stats(), r.Stats(); a != b {
		t.Fatalf("stats diverge after restore: %+v vs %+v", a, b)
	}
	// Expired data stays expired.
	if _, ok := r.EdgeWeight("old", "x"); ok {
		t.Fatal("expired edge resurrected by restore")
	}
	if w, ok := r.EdgeWeight("keep", "x"); !ok || w != 5 {
		t.Fatalf("keep = %d,%v want 5", w, ok)
	}
	// The epoch cursor survived: a straggler for the snapshotted
	// summary is still a straggler for the restored one.
	r.Insert(stream.Item{Src: "later", Dst: "x", Time: 2, Weight: 1})
	if _, ok := r.EdgeWeight("later", "x"); ok {
		t.Fatal("restored summary forgot its epoch cursor")
	}
	if got := r.Stats().DroppedStragglers; got != 2 {
		t.Fatalf("DroppedStragglers = %d, want 2 (1 restored + 1 new)", got)
	}

	// Garbage and config-mismatch snapshots are rejected, state intact.
	if err := r.Restore(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage restore accepted")
	}
	other := MustNew(Config{Sketch: cfg().Sketch, Span: 200, Generations: 4})
	if err := other.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("span-mismatched restore accepted")
	}
	// Same window shape but a different per-generation sketch config:
	// rejected too, or future generations and Stats would mix widths.
	diffSketch := cfg()
	diffSketch.Sketch.Width = 64
	mismatch := MustNew(diffSketch)
	if err := mismatch.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("sketch-config-mismatched restore accepted")
	}
	if w, ok := r.EdgeWeight("keep", "x"); !ok || w != 5 {
		t.Fatalf("state damaged by failed restore: %d,%v", w, ok)
	}
}

func TestWindowedQueriesMatchExactWindow(t *testing.T) {
	// Compare against an exact recomputation over the covered window.
	s := MustNew(Config{
		Sketch:      gss.Config{Width: 48, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4},
		Span:        1000,
		Generations: 4,
	})
	cfgDs := stream.LkmlReply().Scaled(0.002)
	items := stream.Generate(cfgDs)
	for _, it := range items {
		s.Insert(it)
	}
	last := items[len(items)-1].Time
	genSpan := int64(1000 / 4)
	oldestEpoch := last/genSpan - 4 + 1
	exact := map[[2]string]int64{}
	for _, it := range items {
		if it.Time/genSpan >= oldestEpoch {
			exact[[2]string{it.Src, it.Dst}] += it.Weight
		}
	}
	for k, want := range exact {
		got, ok := s.EdgeWeight(k[0], k[1])
		if !ok {
			t.Fatalf("in-window edge (%s,%s) lost", k[0], k[1])
		}
		if got < want {
			t.Fatalf("underestimate on (%s,%s): %d < %d", k[0], k[1], got, want)
		}
	}
	if len(s.Nodes()) == 0 {
		t.Fatal("no nodes reported")
	}
}

// TestInsertHashedBatchMatchesInsertBatch pins the pre-hashed ingest
// plane to the string one on the window: same epoch-run grouping, same
// generation rotation, same straggler drops, and — with a roomy sketch
// config where answers are exact — identical query results. (Room
// placement inside a generation may differ because the hashed plane
// region-packs, so the comparison is observational, not byte-level.)
func TestInsertHashedBatchMatchesInsertBatch(t *testing.T) {
	roomy := Config{
		Sketch:      gss.Config{Width: 128, FingerprintBits: 16, Rooms: 4, SeqLen: 8, Candidates: 8},
		Span:        100,
		Generations: 4,
	}
	cfgDs := stream.LkmlReply().Scaled(0.002)
	items := stream.Generate(cfgDs)
	// Inject a straggler so both planes exercise the drop path.
	items = append(items, stream.Item{Src: "late", Dst: "x", Time: items[0].Time - 10_000, Weight: 1})
	ref, hashed := MustNew(roomy), MustNew(roomy)
	for i := 0; i < len(items); i += 61 {
		j := i + 61
		if j > len(items) {
			j = len(items)
		}
		ref.InsertBatch(items[i:j])
		hashed.InsertHashedBatch(stream.HashItems(items[i:j], nil))
	}
	if a, b := ref.LiveGenerations(), hashed.LiveGenerations(); a != b {
		t.Fatalf("generation counts diverged: %d vs %d", a, b)
	}
	if a, b := ref.Stats().Items, hashed.Stats().Items; a != b {
		t.Fatalf("item counts diverged: %d vs %d", a, b)
	}
	seen := map[[2]string]bool{}
	for _, it := range items {
		k := [2]string{it.Src, it.Dst}
		if seen[k] {
			continue
		}
		seen[k] = true
		wa, oka := ref.EdgeWeight(it.Src, it.Dst)
		wb, okb := hashed.EdgeWeight(it.Src, it.Dst)
		if oka != okb || wa != wb {
			t.Fatalf("edge %v: string plane (%d,%v), hashed plane (%d,%v)", k, wa, oka, wb, okb)
		}
	}
	if ref.Stats().DroppedStragglers != hashed.Stats().DroppedStragglers {
		t.Fatalf("straggler accounting diverged: %d vs %d",
			ref.Stats().DroppedStragglers, hashed.Stats().DroppedStragglers)
	}
	if ref.Stats().DroppedStragglers == 0 {
		t.Fatal("test did not exercise the straggler path")
	}
}
