package window

import (
	"testing"

	"repro/internal/gss"
	"repro/internal/stream"
)

func cfg() Config {
	return Config{
		Sketch:      gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4},
		Span:        100,
		Generations: 4,
	}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{Sketch: gss.Config{Width: 8}, Span: 0, Generations: 4},
		{Sketch: gss.Config{Width: 8}, Span: 100, Generations: 1},
		{Sketch: gss.Config{Width: 8}, Span: 2, Generations: 4},
		{Sketch: gss.Config{}, Span: 100, Generations: 4}, // invalid sketch
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
	if _, err := New(cfg()); err != nil {
		t.Fatal(err)
	}
}

func TestWindowAccumulatesWithinSpan(t *testing.T) {
	s := MustNew(cfg())
	s.Insert(stream.Item{Src: "a", Dst: "b", Time: 0, Weight: 2})
	s.Insert(stream.Item{Src: "a", Dst: "b", Time: 50, Weight: 3})
	if w, ok := s.EdgeWeight("a", "b"); !ok || w != 5 {
		t.Fatalf("w = %d,%v want 5", w, ok)
	}
	if got := s.Successors("a"); len(got) != 1 || got[0] != "b" {
		t.Fatalf("Successors = %v", got)
	}
	if got := s.Precursors("b"); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Precursors = %v", got)
	}
}

func TestExpiry(t *testing.T) {
	s := MustNew(cfg()) // span 100, 4 generations of 25
	s.Insert(stream.Item{Src: "old", Dst: "x", Time: 0, Weight: 1})
	s.Insert(stream.Item{Src: "mid", Dst: "x", Time: 60, Weight: 1})
	// Advance past the window for the first item: epoch(0)=0 expires
	// once current epoch >= 4 (time >= 100).
	s.Insert(stream.Item{Src: "new", Dst: "x", Time: 110, Weight: 1})
	if _, ok := s.EdgeWeight("old", "x"); ok {
		t.Fatal("expired edge still visible")
	}
	if _, ok := s.EdgeWeight("mid", "x"); !ok {
		t.Fatal("in-window edge lost")
	}
	if _, ok := s.EdgeWeight("new", "x"); !ok {
		t.Fatal("current edge lost")
	}
	if n := s.LiveGenerations(); n > 4 {
		t.Fatalf("generations unbounded: %d", n)
	}
}

func TestStragglersDropped(t *testing.T) {
	s := MustNew(cfg())
	s.Insert(stream.Item{Src: "a", Dst: "b", Time: 500, Weight: 1})
	s.Insert(stream.Item{Src: "late", Dst: "b", Time: 10, Weight: 1}) // far out of window
	if _, ok := s.EdgeWeight("late", "b"); ok {
		t.Fatal("straggler older than the window was admitted")
	}
}

func TestMemoryBounded(t *testing.T) {
	s := MustNew(cfg())
	// Stream far past many windows; memory must stay at <= Generations
	// sketches.
	per := gss.MustNew(cfg().Sketch).MemoryBytes()
	for i := 0; i < 5000; i++ {
		s.Insert(stream.Item{Src: stream.NodeID(i % 50), Dst: stream.NodeID(i % 37), Time: int64(i), Weight: 1})
	}
	if s.LiveGenerations() > 4 {
		t.Fatalf("%d generations live", s.LiveGenerations())
	}
	if s.MemoryBytes() > int64(4)*per {
		t.Fatalf("memory %d exceeds %d", s.MemoryBytes(), 4*per)
	}
}

func TestWindowedQueriesMatchExactWindow(t *testing.T) {
	// Compare against an exact recomputation over the covered window.
	s := MustNew(Config{
		Sketch:      gss.Config{Width: 48, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4},
		Span:        1000,
		Generations: 4,
	})
	cfgDs := stream.LkmlReply().Scaled(0.002)
	items := stream.Generate(cfgDs)
	for _, it := range items {
		s.Insert(it)
	}
	last := items[len(items)-1].Time
	genSpan := int64(1000 / 4)
	oldestEpoch := last/genSpan - 4 + 1
	exact := map[[2]string]int64{}
	for _, it := range items {
		if it.Time/genSpan >= oldestEpoch {
			exact[[2]string{it.Src, it.Dst}] += it.Weight
		}
	}
	for k, want := range exact {
		got, ok := s.EdgeWeight(k[0], k[1])
		if !ok {
			t.Fatalf("in-window edge (%s,%s) lost", k[0], k[1])
		}
		if got < want {
			t.Fatalf("underestimate on (%s,%s): %d < %d", k[0], k[1], got, want)
		}
	}
	if len(s.Nodes()) == 0 {
		t.Fatal("no nodes reported")
	}
}
