package window

import (
	"errors"

	"repro/internal/gss"
	"repro/internal/stream"
)

// Partition operations over the sliding window: each live generation
// exports and drops independently (they are plain GSS sketches), and
// the windowed layer re-stamps stream time so the items land in the
// same generation at the new owner. See internal/gss/partition.go for
// the contract.

// ExportPartition streams every live moving sketch edge, stamped with
// its generation's epoch start so a windowed receiver with the same
// span/generations files it identically. Expired generations are gone
// and cannot be exported — migration moves the live window only, the
// same bound the window itself guarantees.
func (s *Sliding) ExportPartition(moving func(id string) bool, emit func(stream.Item) error) (gss.PartitionReport, error) {
	var rep gss.PartitionReport
	span := s.genSpan()
	for _, g := range s.gens {
		t := g.epoch * span
		r, err := g.sketch.ExportPartition(moving, func(it stream.Item) error {
			it.Time = t
			return emit(it)
		})
		rep.Add(r)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// DropPartition drops the moving edges from every live generation. The
// item budget is split greedily across generations; only the
// aggregated Stats().Items is observable, so any split summing to the
// budget is equivalent.
func (s *Sliding) DropPartition(moving func(id string) bool, items int64) (gss.PartitionReport, error) {
	var rep gss.PartitionReport
	remaining := items
	for _, g := range s.gens {
		take := remaining
		if have := g.sketch.Stats().Items; take > have {
			take = have
		}
		r, err := g.sketch.DropPartition(moving, take)
		remaining -= r.Items
		rep.Add(r)
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// AbsorbItems credits the newest live generation's item counter (any
// generation is equivalent for the aggregated Stats().Items; the newest
// is the last to expire, matching the intuition that a rebased counter
// describes recently transferred state). With no live generation there
// is nothing to hang the counter on, and the caller must retry after
// the transferred items have landed.
func (s *Sliding) AbsorbItems(n int64) error {
	if n <= 0 {
		return nil
	}
	if len(s.gens) == 0 {
		return errors.New("window: no live generation to absorb items into")
	}
	return s.gens[len(s.gens)-1].sketch.AbsorbItems(n)
}
