package window

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/gss"
)

// Windowed snapshot format (versioned, little-endian):
//
//	magic    "GSSW"                 4 bytes
//	version  uint16                 currently 1
//	window   span int64, generations int32
//	cursor   started uint8, epoch int64
//	counters expiredGens, expiredItems, droppedStragglers int64
//	gens     count uint32, then per generation:
//	         epoch int64 + one GSS snapshot (gss.WriteTo)
//
// The epoch cursor and the expiry counters round-trip so a restored
// summary keeps rotating exactly where the snapshotted one stopped:
// data that had expired stays expired, and a straggler that would have
// been dropped before the snapshot is still dropped after it.

var windowedMagic = [4]byte{'G', 'S', 'S', 'W'}

const snapshotVersion = 1

// ErrBadSnapshot reports a malformed or incompatible windowed snapshot.
var ErrBadSnapshot = errors.New("window: bad windowed snapshot")

// Snapshot serializes the summary: window configuration, epoch cursor,
// expiry counters, and every live generation.
func (s *Sliding) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var err error
	write := func(v interface{}) {
		if err == nil {
			err = binary.Write(bw, binary.LittleEndian, v)
		}
	}
	if _, werr := bw.Write(windowedMagic[:]); werr != nil {
		return werr
	}
	write(uint16(snapshotVersion))
	write(s.cfg.Span)
	write(int32(s.cfg.Generations))
	started := uint8(0)
	if s.started {
		started = 1
	}
	write(started)
	write(s.epoch)
	write(s.expiredGens)
	write(s.expiredItems)
	write(s.droppedStragglers)
	write(uint32(len(s.gens)))
	for _, g := range s.gens {
		write(g.epoch)
		if err == nil {
			err = g.sketch.Snapshot(bw)
		}
	}
	if err != nil {
		return err
	}
	return bw.Flush()
}

// Restore replaces the summary's state from a snapshot. The snapshot's
// span and generation count must match this summary's configuration —
// epoch indices are a function of span/generations, so restoring into
// a differently configured window would silently re-bucket time. The
// state is unchanged on error.
func (s *Sliding) Restore(r io.Reader) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if magic != windowedMagic {
		return fmt.Errorf("%w: not a windowed snapshot", ErrBadSnapshot)
	}
	read := func(v interface{}) error { return binary.Read(br, binary.LittleEndian, v) }
	var version uint16
	if err := read(&version); err != nil || version != snapshotVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, version)
	}
	var span int64
	var gens int32
	if err := read(&span); err != nil {
		return fmt.Errorf("%w: truncated window config", ErrBadSnapshot)
	}
	if err := read(&gens); err != nil {
		return fmt.Errorf("%w: truncated window config", ErrBadSnapshot)
	}
	if span != s.cfg.Span || int(gens) != s.cfg.Generations {
		return fmt.Errorf("%w: snapshot window %d/%d, summary %d/%d",
			ErrBadSnapshot, span, gens, s.cfg.Span, s.cfg.Generations)
	}
	var started uint8
	var epoch, expiredGens, expiredItems, droppedStragglers int64
	for _, v := range []interface{}{&started, &epoch, &expiredGens, &expiredItems, &droppedStragglers} {
		if err := read(v); err != nil {
			return fmt.Errorf("%w: truncated cursor", ErrBadSnapshot)
		}
	}
	var count uint32
	if err := read(&count); err != nil {
		return fmt.Errorf("%w: truncated generation count", ErrBadSnapshot)
	}
	if int(count) > s.cfg.Generations {
		return fmt.Errorf("%w: %d generations exceed configured %d",
			ErrBadSnapshot, count, s.cfg.Generations)
	}
	restored := make([]generation, 0, count)
	for i := uint32(0); i < count; i++ {
		var ge int64
		if err := read(&ge); err != nil {
			return fmt.Errorf("%w: truncated generation %d", ErrBadSnapshot, i)
		}
		sk, err := gss.ReadSketch(br)
		if err != nil {
			return fmt.Errorf("generation %d: %w", i, err)
		}
		// Every generation must match this summary's per-generation
		// config: future generations are built from s.cfg.Sketch, and
		// Stats aggregates as if all generations share one shape —
		// mixing widths would corrupt occupancy and the memory budget.
		if got := sk.Config(); got != s.skCfg {
			return fmt.Errorf("%w: generation %d config %+v does not match summary %+v",
				ErrBadSnapshot, i, got, s.skCfg)
		}
		restored = append(restored, generation{epoch: ge, sketch: sk})
	}
	s.gens = restored
	s.started = started != 0
	s.epoch = epoch
	s.expiredGens = expiredGens
	s.expiredItems = expiredItems
	s.droppedStragglers = droppedStragglers
	return nil
}
