package sketch

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/gss"
	"repro/internal/stream"
)

// runHashedScript mirrors runScript on the binary plane: the same
// warmup items and the same batch boundaries, but every batch is
// pre-hashed at the "edge" before it reaches the backend. The
// conformance battery then diffs every observable against the
// string-plane baseline — the cross-backend pin that the two ingest
// planes are the same sketch.
func runHashedScript(sk Sketch, items []stream.Item) {
	// Warmup stays per-item but rides the binary plane too, one
	// single-item batch each, exercising the len==1 fast paths.
	for _, it := range items[:50] {
		InsertHashedBatch(sk, stream.HashItems([]stream.Item{it}, nil))
	}
	// Uneven chunk sizes so batch boundaries never line up with any
	// internal grouping (shard groups, window epoch runs).
	rng := rand.New(rand.NewSource(7))
	rest := items[50:]
	for i := 0; i < len(rest); {
		j := i + 1 + rng.Intn(200)
		if j > len(rest) {
			j = len(rest)
		}
		InsertHashedBatch(sk, stream.HashItems(rest[i:j], nil))
		i = j
	}
}

// TestHashedConformance runs every backend through the pre-hashed
// ingest script and diffs all observables against the string-plane
// single-backend baseline, then checks snapshot/restore after hashed
// inserts and that a restored sketch keeps accepting hashed batches.
func TestHashedConformance(t *testing.T) {
	items := conformanceStream()
	baselineSk, err := New(BackendSingle, conformanceCfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	runScript(baselineSk, items)
	baseline := observe(baselineSk, items)
	if baseline.Items != int64(len(items)) || len(baseline.Edges) == 0 {
		t.Fatalf("weak baseline: %d items, %d edges", baseline.Items, len(baseline.Edges))
	}

	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			sk, err := New(backend, conformanceCfg, testOpts)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := sk.(HashedInserter); !ok {
				t.Fatalf("backend %q lost the binary ingest plane", backend)
			}
			runHashedScript(sk, items)
			diffObservations(t, "hashed ingest", observe(sk, items), baseline)

			// Snapshot after hashed inserts, restore into a fresh
			// instance, and keep ingesting on the binary plane.
			var snap bytes.Buffer
			if err := sk.Snapshot(&snap); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			restored, err := New(backend, conformanceCfg, testOpts)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("restore: %v", err)
			}
			diffObservations(t, "restore", observe(restored, items), baseline)
			post := stream.Item{Src: "post-restore", Dst: "hashed-write",
				Weight: 5, Time: items[len(items)-1].Time}
			InsertHashedBatch(restored, stream.HashItems([]stream.Item{post}, nil))
			if w, ok := restored.EdgeWeight(post.Src, post.Dst); !ok || w != 5 {
				t.Fatalf("post-restore hashed insert = %d,%v", w, ok)
			}
		})
	}
}

// TestInsertHashedBatchFallback pins the package-level adapter on a
// backend without the binary plane: the hashes are stripped and the
// string path produces the same sketch.
func TestInsertHashedBatchFallback(t *testing.T) {
	items := conformanceStream()[:500]
	ref, err := New(BackendSingle, conformanceCfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	ref.InsertBatch(items)
	plain := &stringOnlySketch{inner: mustNewSketch(t)}
	InsertHashedBatch(plain, stream.HashItems(items, nil))
	diffObservations(t, "fallback", observe(plain, items), observe(ref, items))
	if plain.batches == 0 {
		t.Fatal("fallback never reached InsertBatch")
	}
}

func mustNewSketch(t *testing.T) Sketch {
	t.Helper()
	sk, err := New(BackendSingle, conformanceCfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// stringOnlySketch hides the binary plane of an inner Sketch — the
// stand-in for a future backend that only implements the Sketch
// interface.
type stringOnlySketch struct {
	inner   Sketch
	batches int
}

func (s *stringOnlySketch) Insert(it stream.Item) { s.inner.Insert(it) }
func (s *stringOnlySketch) InsertBatch(items []stream.Item) {
	s.batches++
	s.inner.InsertBatch(items)
}
func (s *stringOnlySketch) EdgeWeight(src, dst string) (int64, bool) {
	return s.inner.EdgeWeight(src, dst)
}
func (s *stringOnlySketch) Successors(v string) []string         { return s.inner.Successors(v) }
func (s *stringOnlySketch) Precursors(v string) []string         { return s.inner.Precursors(v) }
func (s *stringOnlySketch) Nodes() []string                      { return s.inner.Nodes() }
func (s *stringOnlySketch) HeavyEdges(min int64) []gss.HeavyEdge { return s.inner.HeavyEdges(min) }
func (s *stringOnlySketch) Stats() gss.Stats                     { return s.inner.Stats() }
func (s *stringOnlySketch) Snapshot(w io.Writer) error           { return s.inner.Snapshot(w) }
func (s *stringOnlySketch) Restore(r io.Reader) error            { return s.inner.Restore(r) }
