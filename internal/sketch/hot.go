package sketch

import (
	"io"
	"sync/atomic"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

// Hot is an atomically swappable Sketch: every method runs against the
// current sketch, and Swap replaces it in one pointer store. It is the
// read-replica seam — a follower restores a fetched snapshot into a
// fresh backend off to the side (no locks held, readers untouched) and
// then swaps it in, so even a multi-second restore never blocks the
// read path. The wrapped sketches must themselves be safe for
// concurrent use; Hot adds no synchronization of its own.
//
// An operation that was already dispatched to the old sketch finishes
// against the old sketch — the swap is atomic per call, not a barrier.
// Callers that chain several primitives and must not see the sketch
// change mid-chain (the server's compound-query handlers) hold their
// own lock around the chain, as they already do for /restore.
type Hot struct {
	cur atomic.Pointer[Sketch]
}

// NewHot wraps sk, which becomes the initial current sketch.
func NewHot(sk Sketch) *Hot {
	h := &Hot{}
	h.Swap(sk)
	return h
}

// Swap atomically replaces the current sketch.
func (h *Hot) Swap(sk Sketch) { h.cur.Store(&sk) }

// Current returns the sketch operations currently dispatch to.
func (h *Hot) Current() Sketch { return *h.cur.Load() }

// Insert ingests one stream item.
func (h *Hot) Insert(it stream.Item) { h.Current().Insert(it) }

// InsertBatch ingests a slice of items.
func (h *Hot) InsertBatch(items []stream.Item) { h.Current().InsertBatch(items) }

// InsertHashedBatch ingests a pre-hashed batch against the current
// sketch, falling back to the string plane when it has no binary one.
// Per-call dispatch matches Hot's swap semantics.
func (h *Hot) InsertHashedBatch(items []stream.HashedItem) {
	InsertHashedBatch(h.Current(), items)
}

// EdgeWeight is the edge query primitive.
func (h *Hot) EdgeWeight(src, dst string) (int64, bool) { return h.Current().EdgeWeight(src, dst) }

// Successors is the 1-hop successor query primitive.
func (h *Hot) Successors(v string) []string { return h.Current().Successors(v) }

// Precursors is the 1-hop precursor query primitive.
func (h *Hot) Precursors(v string) []string { return h.Current().Precursors(v) }

// Nodes enumerates registered original node identifiers.
func (h *Hot) Nodes() []string { return h.Current().Nodes() }

// HeavyEdges lists sketch edges with weight >= minWeight.
func (h *Hot) HeavyEdges(minWeight int64) []gss.HeavyEdge { return h.Current().HeavyEdges(minWeight) }

// Stats snapshots sketch statistics.
func (h *Hot) Stats() gss.Stats { return h.Current().Stats() }

// Snapshot serializes the current sketch.
func (h *Hot) Snapshot(w io.Writer) error { return h.Current().Snapshot(w) }

// Restore replaces the current sketch's state in place (the backend's
// own Restore keeps the swap atomic under its locks). To restore
// without blocking readers, build a fresh backend, Restore into that,
// and Swap it in.
func (h *Hot) Restore(r io.Reader) error { return h.Current().Restore(r) }

// hashView returns the current sketch's hash plane, if it has one.
// Per-call resolution matches Hot's swap semantics: an operation
// dispatched to the old sketch finishes against the old sketch.
func (h *Hot) hashView() (query.HashSummary, bool) {
	hq, ok := h.Current().(query.HashSummary)
	return hq, ok
}

// NodeHash maps an identifier into the current sketch's hash space.
func (h *Hot) NodeHash(v string) uint64 {
	if hq, ok := h.hashView(); ok {
		return hq.NodeHash(v)
	}
	return 0
}

// EdgeWeightHash is the edge primitive over pre-hashed endpoints.
func (h *Hot) EdgeWeightHash(hs, hd uint64) (int64, bool) {
	if hq, ok := h.hashView(); ok {
		return hq.EdgeWeightHash(hs, hd)
	}
	return 0, false
}

// AppendSuccessorHashes appends the sketch successors of hv to dst.
func (h *Hot) AppendSuccessorHashes(hv uint64, dst []uint64) []uint64 {
	if hq, ok := h.hashView(); ok {
		return hq.AppendSuccessorHashes(hv, dst)
	}
	return dst
}

// AppendPrecursorHashes appends the sketch precursors of hv to dst.
func (h *Hot) AppendPrecursorHashes(hv uint64, dst []uint64) []uint64 {
	if hq, ok := h.hashView(); ok {
		return hq.AppendPrecursorHashes(hv, dst)
	}
	return dst
}

// AppendNodeHashes appends every registered node hash to dst.
func (h *Hot) AppendNodeHashes(dst []uint64) []uint64 {
	if hq, ok := h.hashView(); ok {
		return hq.AppendNodeHashes(dst)
	}
	return dst
}

// AppendHashIDs appends the identifiers registered under hv to dst.
func (h *Hot) AppendHashIDs(hv uint64, dst []string) []string {
	if hq, ok := h.hashView(); ok {
		return hq.AppendHashIDs(hv, dst)
	}
	return dst
}

// SupportsHashQueries reports whether the current sketch backs the
// hash plane.
func (h *Hot) SupportsHashQueries() bool {
	hq, ok := h.hashView()
	return ok && hq.SupportsHashQueries()
}

// Hot satisfies the deployment surface it wraps, including the
// hash-native query plane.
var (
	_ Sketch            = (*Hot)(nil)
	_ query.HashSummary = (*Hot)(nil)
)
