package sketch

import (
	"bytes"
	"testing"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

var testCfg = gss.Config{Width: 48, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}

// testOpts gives the windowed backend a span far beyond any generated
// timestamp, so in the cross-backend conformance tests it covers the
// whole stream and must agree with the unbounded backends exactly.
// Windowed-specific expiry behavior is exercised in windowed_test.go.
var testOpts = Options{Shards: 4, WindowSpan: 1 << 30, WindowGenerations: 4}

func TestFactoryBackends(t *testing.T) {
	for _, backend := range Backends() {
		sk, err := New(backend, testCfg, testOpts)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		sk.Insert(stream.Item{Src: "a", Dst: "b", Weight: 2})
		sk.InsertBatch([]stream.Item{
			{Src: "a", Dst: "b", Weight: 3},
			{Src: "b", Dst: "c", Weight: 1},
		})
		if w, ok := sk.EdgeWeight("a", "b"); !ok || w != 5 {
			t.Fatalf("%s: edge = %d,%v want 5", backend, w, ok)
		}
		succ := sk.Successors("a")
		if len(succ) != 1 || succ[0] != "b" {
			t.Fatalf("%s: successors = %v", backend, succ)
		}
		prec := sk.Precursors("c")
		if len(prec) != 1 || prec[0] != "b" {
			t.Fatalf("%s: precursors = %v", backend, prec)
		}
		if n := len(sk.Nodes()); n != 3 {
			t.Fatalf("%s: %d nodes, want 3", backend, n)
		}
		if st := sk.Stats(); st.Items != 3 {
			t.Fatalf("%s: items = %d, want 3", backend, st.Items)
		}
		if heavy := sk.HeavyEdges(5); len(heavy) != 1 || heavy[0].Weight != 5 {
			t.Fatalf("%s: heavy = %+v", backend, heavy)
		}
	}
}

func TestFactoryRejectsUnknownBackend(t *testing.T) {
	if _, err := New("raft", testCfg, Options{}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := New(BackendSharded, gss.Config{}, testOpts); err == nil {
		t.Fatal("invalid config accepted")
	}
}

// TestSketchAsQuerySummary pins the interface relationship the server
// relies on: any Sketch serves the compound query algorithms.
func TestSketchAsQuerySummary(t *testing.T) {
	sk, err := New(BackendSharded, testCfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	sk.InsertBatch([]stream.Item{
		{Src: "a", Dst: "b", Weight: 1},
		{Src: "b", Dst: "c", Weight: 2},
	})
	var s query.Summary = sk
	if !query.Reachable(s, "a", "c") {
		t.Fatal("a->c should be reachable")
	}
	if out := query.NodeOut(s, "b"); out != 2 {
		t.Fatalf("NodeOut(b) = %d, want 2", out)
	}
}

func TestSnapshotRestoreAllBackends(t *testing.T) {
	items := stream.Generate(stream.DatasetConfig{Name: "snap", Nodes: 100, Edges: 1000,
		DegreeSkew: 1.4, WeightSkew: 1.2, MaxWeight: 50, Seed: 9})
	for _, backend := range Backends() {
		src, err := New(backend, testCfg, testOpts)
		if err != nil {
			t.Fatal(err)
		}
		src.InsertBatch(items)
		var buf bytes.Buffer
		if err := src.Snapshot(&buf); err != nil {
			t.Fatalf("%s: snapshot: %v", backend, err)
		}
		dst, err := New(backend, testCfg, testOpts)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%s: restore: %v", backend, err)
		}
		if a, b := src.Stats(), dst.Stats(); a != b {
			t.Fatalf("%s: stats diverge after restore: %+v vs %+v", backend, a, b)
		}
		for _, it := range items[:200] {
			wa, oka := src.EdgeWeight(it.Src, it.Dst)
			wb, okb := dst.EdgeWeight(it.Src, it.Dst)
			if wa != wb || oka != okb {
				t.Fatalf("%s: edge (%s,%s) diverges after restore", backend, it.Src, it.Dst)
			}
		}
		if err := dst.Restore(bytes.NewReader([]byte("garbage"))); err == nil {
			t.Fatalf("%s: garbage restore accepted", backend)
		}
	}
}

func TestBackendsAgreeOnWeights(t *testing.T) {
	items := stream.Generate(stream.DatasetConfig{Name: "agree", Nodes: 200, Edges: 3000,
		DegreeSkew: 1.5, WeightSkew: 1.3, MaxWeight: 100, Seed: 11})
	// Oversized so nothing falls to the buffer: with no collisions and
	// no left-overs, every backend must report identical exact weights.
	cfg := gss.Config{Width: 128, FingerprintBits: 16, Rooms: 4, SeqLen: 8, Candidates: 8}
	sketches := map[string]Sketch{}
	for _, backend := range Backends() {
		sk, err := New(backend, cfg, testOpts)
		if err != nil {
			t.Fatal(err)
		}
		sk.InsertBatch(items)
		sketches[backend] = sk
	}
	for _, it := range items {
		w0, _ := sketches[BackendSingle].EdgeWeight(it.Src, it.Dst)
		for name, sk := range sketches {
			if w, ok := sk.EdgeWeight(it.Src, it.Dst); !ok || w != w0 {
				t.Fatalf("%s: edge (%s,%s) = %d,%v; single says %d",
					name, it.Src, it.Dst, w, ok, w0)
			}
		}
	}
}
