package sketch

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/stream"
)

// windowedOpts is a deliberately small window so expiry is exercised:
// span 100 in 4 generations of 25.
var windowedOpts = Options{WindowSpan: 100, WindowGenerations: 4}

func TestWindowedBackendExpires(t *testing.T) {
	sk, err := New(BackendWindowed, testCfg, windowedOpts)
	if err != nil {
		t.Fatal(err)
	}
	sk.Insert(stream.Item{Src: "old", Dst: "x", Time: 1, Weight: 1})
	sk.Insert(stream.Item{Src: "new", Dst: "x", Time: 150, Weight: 1})
	if _, ok := sk.EdgeWeight("old", "x"); ok {
		t.Fatal("expired edge visible through the factory-built backend")
	}
	if _, ok := sk.EdgeWeight("new", "x"); !ok {
		t.Fatal("live edge lost")
	}
	st := sk.Stats()
	if st.LiveGenerations < 1 || st.LiveGenerations > 4 {
		t.Fatalf("LiveGenerations = %d", st.LiveGenerations)
	}
	if st.WindowSpan != 100 || st.ExpiredGenerations == 0 {
		t.Fatalf("window stats not surfaced: %+v", st)
	}
}

func TestWindowedDefaultsApplied(t *testing.T) {
	sk, err := New(BackendWindowed, testCfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if span := sk.Stats().WindowSpan; span != DefaultWindowSpan {
		t.Fatalf("default span = %d, want %d", span, DefaultWindowSpan)
	}
	if _, err := New(BackendWindowed, testCfg, Options{WindowSpan: -5}); err == nil {
		t.Fatal("negative span accepted")
	}
	if _, err := New(BackendWindowed, testCfg, Options{WindowSpan: 100, WindowGenerations: 1}); err == nil {
		t.Fatal("single generation accepted")
	}
}

// TestWindowedSnapshotPreservesExpiry: restoring a windowed snapshot
// must not resurrect expired data, and the restored epoch cursor keeps
// rejecting stragglers.
func TestWindowedSnapshotPreservesExpiry(t *testing.T) {
	src, err := New(BackendWindowed, testCfg, windowedOpts)
	if err != nil {
		t.Fatal(err)
	}
	src.Insert(stream.Item{Src: "expired", Dst: "x", Time: 1, Weight: 1})
	src.Insert(stream.Item{Src: "live", Dst: "x", Time: 150, Weight: 3})

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst, err := New(BackendWindowed, testCfg, windowedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if a, b := src.Stats(), dst.Stats(); a != b {
		t.Fatalf("stats diverge: %+v vs %+v", a, b)
	}
	if _, ok := dst.EdgeWeight("expired", "x"); ok {
		t.Fatal("restore resurrected expired data")
	}
	if w, ok := dst.EdgeWeight("live", "x"); !ok || w != 3 {
		t.Fatalf("live edge = %d,%v want 3", w, ok)
	}
	dst.Insert(stream.Item{Src: "straggler", Dst: "x", Time: 2, Weight: 1})
	if _, ok := dst.EdgeWeight("straggler", "x"); ok {
		t.Fatal("restored backend forgot its epoch cursor")
	}
	// A windowed snapshot must not restore into a differently shaped
	// window.
	other, err := New(BackendWindowed, testCfg, Options{WindowSpan: 200, WindowGenerations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("span-mismatched restore accepted")
	}
}

// TestWindowedConcurrentIngestAndQueries hammers the thread-safe
// windowed backend from parallel writers and readers while the window
// rotates; run with -race this is the synchronization regression test
// for the adapter.
func TestWindowedConcurrentIngestAndQueries(t *testing.T) {
	sk, err := New(BackendWindowed, testCfg, windowedOpts)
	if err != nil {
		t.Fatal(err)
	}
	const writers, readers, perWriter = 4, 4, 400
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			batch := make([]stream.Item, 0, 8)
			for i := 0; i < perWriter; i++ {
				it := stream.Item{
					Src:    stream.NodeID(w*100 + i%50),
					Dst:    stream.NodeID(i % 37),
					Time:   int64(i), // advances through ~16 epochs
					Weight: 1,
				}
				if i%2 == 0 {
					sk.Insert(it)
					continue
				}
				batch = append(batch, it)
				if len(batch) == cap(batch) {
					sk.InsertBatch(batch)
					batch = batch[:0]
				}
			}
			sk.InsertBatch(batch)
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				sk.EdgeWeight(stream.NodeID(i%50), stream.NodeID(i%37))
				if i%25 == 0 {
					sk.Successors(stream.NodeID(i % 50))
					sk.HeavyEdges(10)
					sk.Stats()
				}
			}
		}(r)
	}
	wg.Wait()
	st := sk.Stats()
	if st.LiveGenerations > 4 {
		t.Fatalf("window unbounded under concurrency: %d generations", st.LiveGenerations)
	}
	total := st.Items + st.ExpiredItems + st.DroppedStragglers
	if total != writers*perWriter {
		t.Fatalf("items lost: live %d + expired %d + dropped %d = %d, want %d",
			st.Items, st.ExpiredItems, st.DroppedStragglers, total, writers*perWriter)
	}
}
