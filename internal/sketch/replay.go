package sketch

import "repro/internal/stream"

// Replay drains src into sk in batches, the apply path shared by
// startup log replay (server recovery) and spill-log replay (cluster
// router). Sketch state is a deterministic function of the item
// sequence — windowed backends rotate on item times, not wall time —
// so replaying the items a checkpoint does not cover reproduces the
// pre-crash state exactly. It returns the number of items applied;
// callers check src's own error reporting (e.g. oplog.Cursor.Err) for
// a truncated replay.
func Replay(sk Sketch, src stream.Source, batchSize int) int64 {
	if batchSize < 1 {
		batchSize = 512
	}
	batch := make([]stream.Item, 0, batchSize)
	var n int64
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		batch = append(batch, it)
		if len(batch) == batchSize {
			sk.InsertBatch(batch)
			n += int64(len(batch))
			batch = batch[:0]
		}
	}
	if len(batch) > 0 {
		sk.InsertBatch(batch)
		n += int64(len(batch))
	}
	return n
}
