package sketch

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/gss"
	"repro/internal/stream"
)

// Restore robustness: snapshots cross trust boundaries (HTTP /restore
// bodies, follower-fetched bytes, checkpoint files a crash may have
// torn), so Restore on every backend must treat arbitrary bytes as
// data, never as an invitation to panic or to allocate unbounded
// memory. Valid snapshots restore; everything else returns an error
// and leaves the sketch untouched.

// fuzzCfg is small so valid-snapshot seeds stay a few KB and the
// fuzzer explores structure, not padding.
var fuzzCfg = gss.Config{Width: 8, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}

var fuzzOpts = Options{Shards: 2, WindowSpan: 1 << 30, WindowGenerations: 4}

func fuzzSeedItems() []stream.Item {
	return []stream.Item{
		{Src: "a", Dst: "b", Weight: 5, Time: 1},
		{Src: "b", Dst: "c", Weight: 2, Time: 2},
		{Src: "c", Dst: "a", Weight: 9, Time: 3},
	}
}

// validSnapshots returns one snapshot per backend, for seeding.
func validSnapshots(tb testing.TB) map[string][]byte {
	snaps := map[string][]byte{}
	for _, backend := range Backends() {
		sk, err := New(backend, fuzzCfg, fuzzOpts)
		if err != nil {
			tb.Fatal(err)
		}
		sk.InsertBatch(fuzzSeedItems())
		var buf bytes.Buffer
		if err := sk.Snapshot(&buf); err != nil {
			tb.Fatal(err)
		}
		snaps[backend] = buf.Bytes()
	}
	return snaps
}

func FuzzRestore(f *testing.F) {
	for _, snap := range validSnapshots(f) {
		f.Add(snap)
		f.Add(snap[:len(snap)/2]) // truncated mid-write
		flipped := append([]byte(nil), snap...)
		flipped[len(flipped)/3] ^= 0x40 // bit rot
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("GSSK"))
	f.Add([]byte("GSSH\x02\x00\x00\x00"))
	f.Add([]byte("GSSW\x01\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, backend := range Backends() {
			sk, err := New(backend, fuzzCfg, fuzzOpts)
			if err != nil {
				t.Fatal(err)
			}
			sk.Insert(stream.Item{Src: "canary", Dst: "edge", Weight: 7, Time: 1})
			if err := sk.Restore(bytes.NewReader(data)); err != nil {
				// A failed restore must leave the sketch untouched.
				if w, ok := sk.EdgeWeight("canary", "edge"); !ok || w != 7 {
					t.Fatalf("%s: failed restore mutated state: %d,%v", backend, w, ok)
				}
				continue
			}
			// A restore that succeeded must leave a fully queryable
			// sketch, whatever the bytes were.
			sk.Stats()
			sk.Nodes()
			sk.HeavyEdges(1)
			sk.EdgeWeight("a", "b")
			sk.Successors("a")
			sk.Precursors("b")
			sk.Insert(stream.Item{Src: "post", Dst: "restore", Weight: 1, Time: 4})
		}
	})
}

// TestGenerateFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz when run with GSS_GEN_CORPUS=1; normally it just
// verifies the committed corpus parses and replays (go test runs every
// file in testdata/fuzz/FuzzRestore through FuzzRestore
// automatically). Regenerate after a snapshot format change:
//
//	GSS_GEN_CORPUS=1 go test ./internal/sketch -run TestGenerateFuzzCorpus
func TestGenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzRestore")
	if os.Getenv("GSS_GEN_CORPUS") == "" {
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			t.Fatalf("committed fuzz corpus missing (%v); regenerate with GSS_GEN_CORPUS=1", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(name string, data []byte) {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for backend, snap := range validSnapshots(t) {
		write("valid-"+backend, snap)
		write("truncated-"+backend, snap[:len(snap)/2])
		flipped := append([]byte(nil), snap...)
		flipped[len(flipped)/3] ^= 0x40
		write("bitflip-"+backend, flipped)
	}
	write("empty", nil)
	write("magic-only", []byte("GSSK"))
	// A header that promises a giant matrix backed by no body: the
	// allocation-bounding regression seed.
	write("forged-width", append([]byte("GSSK\x01\x00"),
		0xff, 0xff, 0xff, 0x7f, 16, 0, 0, 0, 2, 0, 0, 0, 4, 0, 0, 0, 4, 0, 0, 0, 0, 0, 0, 0))
}
