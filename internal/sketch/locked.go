package sketch

import (
	"bytes"
	"io"
	"sync"

	"repro/internal/gss"
	"repro/internal/stream"
)

// Locked adapts any Sketch to concurrent use with a single global
// mutex: every operation — read or write — is fully serialized. It is
// the simplest correct deployment and the baseline the batched sharded
// backend is benchmarked against ("single-lock" in cmd/gss-bench).
type Locked struct {
	mu sync.Mutex
	sk Sketch
}

// NewLocked wraps sk with one global mutex. sk must not be used
// directly afterwards.
func NewLocked(sk Sketch) *Locked { return &Locked{sk: sk} }

// Insert ingests one stream item.
func (l *Locked) Insert(it stream.Item) {
	l.mu.Lock()
	l.sk.Insert(it)
	l.mu.Unlock()
}

// InsertBatch ingests a batch under one lock acquisition.
func (l *Locked) InsertBatch(items []stream.Item) {
	l.mu.Lock()
	l.sk.InsertBatch(items)
	l.mu.Unlock()
}

// EdgeWeight is the edge query primitive.
func (l *Locked) EdgeWeight(src, dst string) (int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.EdgeWeight(src, dst)
}

// Successors is the 1-hop successor query primitive.
func (l *Locked) Successors(v string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Successors(v)
}

// Precursors is the 1-hop precursor query primitive.
func (l *Locked) Precursors(v string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Precursors(v)
}

// Nodes enumerates registered node identifiers.
func (l *Locked) Nodes() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Nodes()
}

// HeavyEdges lists sketch edges with weight >= minWeight.
func (l *Locked) HeavyEdges(minWeight int64) []gss.HeavyEdge {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.HeavyEdges(minWeight)
}

// Stats snapshots sketch statistics.
func (l *Locked) Stats() gss.Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Stats()
}

// Snapshot serializes the wrapped sketch.
func (l *Locked) Snapshot(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Snapshot(w)
}

// Restore replaces the wrapped sketch's state from a snapshot. The
// body is buffered before the lock is taken so a slow upload cannot
// stall every other operation behind the global mutex.
func (l *Locked) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Restore(bytes.NewReader(data))
}
