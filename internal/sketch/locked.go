package sketch

import (
	"bytes"
	"io"
	"sync"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

// Locked adapts any Sketch to concurrent use with a single global
// mutex: every operation — read or write — is fully serialized. It is
// the simplest correct deployment and the baseline the batched sharded
// backend is benchmarked against ("single-lock" in cmd/gss-bench).
type Locked struct {
	mu sync.Mutex
	sk Sketch

	// hq is sk's hash-native query plane when it has one; Locked
	// forwards the plane under the same mutex. nil when sk is not
	// hash-capable, in which case SupportsHashQueries answers false and
	// query.HashView routes callers to the string plane instead of the
	// forwarding methods.
	hq query.HashSummary

	// hi is sk's pre-hashed ingest plane when it has one; resolved once
	// at construction like hq so the hot path pays no per-batch type
	// assertion.
	hi HashedInserter

	// pm is sk's partition-migration surface when it has one, forwarded
	// under the same mutex (see partition.go).
	pm PartitionMigrator
}

// NewLocked wraps sk with one global mutex. sk must not be used
// directly afterwards.
func NewLocked(sk Sketch) *Locked {
	l := &Locked{sk: sk}
	l.hq, _ = sk.(query.HashSummary)
	l.hi, _ = sk.(HashedInserter)
	l.pm, _ = sk.(PartitionMigrator)
	return l
}

// Insert ingests one stream item.
func (l *Locked) Insert(it stream.Item) {
	l.mu.Lock()
	l.sk.Insert(it)
	l.mu.Unlock()
}

// InsertBatch ingests a batch under one lock acquisition.
func (l *Locked) InsertBatch(items []stream.Item) {
	l.mu.Lock()
	l.sk.InsertBatch(items)
	l.mu.Unlock()
}

// InsertHashedBatch ingests a pre-hashed batch under one lock
// acquisition, stripping the hashes when the inner sketch has no
// binary plane. The batch may be reordered in place.
func (l *Locked) InsertHashedBatch(items []stream.HashedItem) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hi != nil {
		l.hi.InsertHashedBatch(items)
		return
	}
	l.sk.InsertBatch(stream.StripHashed(items, nil))
}

// EdgeWeight is the edge query primitive.
func (l *Locked) EdgeWeight(src, dst string) (int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.EdgeWeight(src, dst)
}

// Successors is the 1-hop successor query primitive.
func (l *Locked) Successors(v string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Successors(v)
}

// Precursors is the 1-hop precursor query primitive.
func (l *Locked) Precursors(v string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Precursors(v)
}

// The hash-native query plane, forwarded under the mutex. The methods
// are only reachable through query.HashView, which consults
// SupportsHashQueries first; on a hash-incapable inner sketch they
// return their inputs untouched.

// NodeHash maps an identifier into the wrapped sketch's hash space.
func (l *Locked) NodeHash(v string) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hq == nil {
		return 0
	}
	return l.hq.NodeHash(v)
}

// EdgeWeightHash is the edge primitive over pre-hashed endpoints.
func (l *Locked) EdgeWeightHash(hs, hd uint64) (int64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hq == nil {
		return 0, false
	}
	return l.hq.EdgeWeightHash(hs, hd)
}

// AppendSuccessorHashes appends the sketch successors of hv to dst.
func (l *Locked) AppendSuccessorHashes(hv uint64, dst []uint64) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hq == nil {
		return dst
	}
	return l.hq.AppendSuccessorHashes(hv, dst)
}

// AppendPrecursorHashes appends the sketch precursors of hv to dst.
func (l *Locked) AppendPrecursorHashes(hv uint64, dst []uint64) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hq == nil {
		return dst
	}
	return l.hq.AppendPrecursorHashes(hv, dst)
}

// AppendNodeHashes appends every registered node hash to dst.
func (l *Locked) AppendNodeHashes(dst []uint64) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hq == nil {
		return dst
	}
	return l.hq.AppendNodeHashes(dst)
}

// AppendHashIDs appends the identifiers registered under hv to dst.
func (l *Locked) AppendHashIDs(hv uint64, dst []string) []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.hq == nil {
		return dst
	}
	return l.hq.AppendHashIDs(hv, dst)
}

// SupportsHashQueries reports whether the wrapped sketch backs the
// hash plane.
func (l *Locked) SupportsHashQueries() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hq != nil && l.hq.SupportsHashQueries()
}

// Nodes enumerates registered node identifiers.
func (l *Locked) Nodes() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Nodes()
}

// HeavyEdges lists sketch edges with weight >= minWeight.
func (l *Locked) HeavyEdges(minWeight int64) []gss.HeavyEdge {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.HeavyEdges(minWeight)
}

// Stats snapshots sketch statistics.
func (l *Locked) Stats() gss.Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Stats()
}

// Snapshot serializes the wrapped sketch.
func (l *Locked) Snapshot(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Snapshot(w)
}

// Restore replaces the wrapped sketch's state from a snapshot. The
// body is buffered before the lock is taken so a slow upload cannot
// stall every other operation behind the global mutex.
func (l *Locked) Restore(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sk.Restore(bytes.NewReader(data))
}
