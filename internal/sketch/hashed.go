package sketch

import (
	"repro/internal/gss"
	"repro/internal/stream"
	"repro/internal/window"
)

// HashedInserter is the optional binary ingest plane of a Sketch:
// batches whose items already carry (H(src), H(dst), fingerprints)
// from the edge, so the backend places edges without touching the
// identifier strings again. It is deliberately NOT part of Sketch —
// backends (and test fakes) that don't care keep compiling, and
// callers route through the package-level InsertHashedBatch, which
// falls back to stripping the hashes.
//
// Implementations may reorder the batch in place (region packing), so
// callers must not rely on item order after the call.
type HashedInserter interface {
	InsertHashedBatch(items []stream.HashedItem)
}

// InsertHashedBatch ingests a pre-hashed batch into sk on the fast
// plane when sk implements HashedInserter, and otherwise strips the
// carried hashes and takes the ordinary string path. Both planes
// produce identical sketches — the gss insert core hashes once at the
// edge or not at all — so the fallback is a compatibility seam, not a
// semantic fork.
func InsertHashedBatch(sk Sketch, items []stream.HashedItem) {
	if len(items) == 0 {
		return
	}
	if hi, ok := sk.(HashedInserter); ok {
		hi.InsertHashedBatch(items)
		return
	}
	sk.InsertBatch(stream.StripHashed(items, nil))
}

// Every backend New can return carries the binary plane, and the
// wrappers preserve it across composition.
var (
	_ HashedInserter = (*gss.GSS)(nil)
	_ HashedInserter = (*gss.Concurrent)(nil)
	_ HashedInserter = (*gss.Sharded)(nil)
	_ HashedInserter = (*window.Sliding)(nil)
	_ HashedInserter = (*Locked)(nil)
	_ HashedInserter = (*Hot)(nil)
)
