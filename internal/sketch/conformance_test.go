package sketch

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/gss"
	"repro/internal/stream"
)

// Cross-backend conformance battery. Every backend — current and
// future — runs the same insert/query/HeavyEdges/Stats/
// Snapshot-Restore/swap script, and every observable is diffed against
// the single-backend baseline. A backend that drifts (drops an item,
// mis-merges a heavy edge, loses state across snapshot or swap) fails
// here by name, not in some caller three layers up. New backends get
// coverage for free: they only need to appear in Backends().

// conformanceCfg is oversized for the conformance stream: no hash
// collisions and no buffer spill, so every backend must report
// identical exact answers, making byte-for-byte diffs meaningful.
var conformanceCfg = gss.Config{Width: 128, FingerprintBits: 16, Rooms: 4, SeqLen: 8, Candidates: 8}

// observation is everything a Sketch exposes, in canonical form.
type observation struct {
	Edges map[[2]string]int64
	Succ  map[string][]string
	Prec  map[string][]string
	Nodes []string
	Heavy map[int64][]string
	Items int64
}

// observe interrogates sk with every query primitive over the
// universe items define. Slices are sorted so backends that return
// sets in different orders still compare equal.
func observe(sk Sketch, items []stream.Item) observation {
	ob := observation{
		Edges: map[[2]string]int64{},
		Succ:  map[string][]string{},
		Prec:  map[string][]string{},
		Heavy: map[int64][]string{},
	}
	nodes := map[string]bool{}
	for _, it := range items {
		nodes[it.Src], nodes[it.Dst] = true, true
		if _, seen := ob.Edges[[2]string{it.Src, it.Dst}]; seen {
			continue
		}
		if w, ok := sk.EdgeWeight(it.Src, it.Dst); ok {
			ob.Edges[[2]string{it.Src, it.Dst}] = w
		}
	}
	for v := range nodes {
		ob.Succ[v] = sortedCopy(sk.Successors(v))
		ob.Prec[v] = sortedCopy(sk.Precursors(v))
	}
	ob.Nodes = sortedCopy(sk.Nodes())
	for _, min := range []int64{1, 10, 50, 200} {
		var formatted []string
		for _, he := range sk.HeavyEdges(min) {
			formatted = append(formatted, fmt.Sprintf("%v->%v=%d",
				sortedCopy(he.Srcs), sortedCopy(he.Dsts), he.Weight))
		}
		sort.Strings(formatted)
		ob.Heavy[min] = formatted
	}
	// Stats fields beyond Items are backend-shaped (per-shard widths,
	// window counters); the item count is the cross-backend invariant.
	ob.Items = sk.Stats().Items
	return ob
}

func sortedCopy(s []string) []string {
	out := append([]string{}, s...)
	sort.Strings(out)
	return out
}

// diffObservations reports where two observations disagree.
func diffObservations(t *testing.T, label string, got, want observation) {
	t.Helper()
	if got.Items != want.Items {
		t.Errorf("%s: Items = %d, want %d", label, got.Items, want.Items)
	}
	if !reflect.DeepEqual(got.Edges, want.Edges) {
		t.Errorf("%s: edge weights diverge from baseline", label)
	}
	if !reflect.DeepEqual(got.Succ, want.Succ) {
		t.Errorf("%s: successor sets diverge from baseline", label)
	}
	if !reflect.DeepEqual(got.Prec, want.Prec) {
		t.Errorf("%s: precursor sets diverge from baseline", label)
	}
	if !reflect.DeepEqual(got.Nodes, want.Nodes) {
		t.Errorf("%s: node sets diverge: %d vs %d nodes", label, len(got.Nodes), len(want.Nodes))
	}
	if !reflect.DeepEqual(got.Heavy, want.Heavy) {
		t.Errorf("%s: heavy-edge lists diverge:\n got %v\nwant %v", label, got.Heavy, want.Heavy)
	}
}

// runScript drives sk through the canonical ingestion script: a
// single-item warmup (the per-item path), then the batched path.
func runScript(sk Sketch, items []stream.Item) {
	for _, it := range items[:50] {
		sk.Insert(it)
	}
	sk.InsertBatch(items[50:])
}

func conformanceStream() []stream.Item {
	return stream.Generate(stream.DatasetConfig{Name: "conformance", Nodes: 150, Edges: 2500,
		DegreeSkew: 1.5, WeightSkew: 1.3, MaxWeight: 80, Seed: 23})
}

func TestBackendConformance(t *testing.T) {
	items := conformanceStream()
	baselineSk, err := New(BackendSingle, conformanceCfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	runScript(baselineSk, items)
	baseline := observe(baselineSk, items)
	if baseline.Items != int64(len(items)) || len(baseline.Edges) == 0 {
		t.Fatalf("weak baseline: %d items, %d edges", baseline.Items, len(baseline.Edges))
	}

	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			sk, err := New(backend, conformanceCfg, testOpts)
			if err != nil {
				t.Fatal(err)
			}
			runScript(sk, items)
			diffObservations(t, "ingest", observe(sk, items), baseline)

			// Snapshot → restore into a fresh instance: the restored
			// sketch must be observationally identical.
			var snap bytes.Buffer
			if err := sk.Snapshot(&snap); err != nil {
				t.Fatalf("snapshot: %v", err)
			}
			restored, err := New(backend, conformanceCfg, testOpts)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("restore: %v", err)
			}
			diffObservations(t, "restore", observe(restored, items), baseline)

			// Hot swap — the read-replica path: an empty Hot-wrapped
			// backend answers empty, swaps to the restored sketch in one
			// store, then matches the baseline and keeps ingesting.
			empty, err := New(backend, conformanceCfg, testOpts)
			if err != nil {
				t.Fatal(err)
			}
			hot := NewHot(empty)
			if n := hot.Stats().Items; n != 0 {
				t.Fatalf("pre-swap Hot has %d items", n)
			}
			hot.Swap(restored)
			diffObservations(t, "swap", observe(hot, items), baseline)
			hot.Insert(stream.Item{Src: "post-swap", Dst: "write",
				Weight: 3, Time: items[len(items)-1].Time})
			if w, ok := hot.EdgeWeight("post-swap", "write"); !ok || w != 3 {
				t.Fatalf("post-swap insert = %d,%v", w, ok)
			}

			// Garbage and truncation must error and leave state intact.
			probe := items[0]
			before, _ := restored.EdgeWeight(probe.Src, probe.Dst)
			if err := restored.Restore(strings.NewReader("not a snapshot")); err == nil {
				t.Fatal("garbage restore accepted")
			}
			if err := restored.Restore(bytes.NewReader(snap.Bytes()[:snap.Len()/2])); err == nil {
				t.Fatal("truncated restore accepted")
			}
			if after, _ := restored.EdgeWeight(probe.Src, probe.Dst); after != before {
				t.Fatalf("failed restore mutated state: %d -> %d", before, after)
			}
		})
	}
}

// TestConformanceDetectsDrift sanity-checks the battery itself: a
// sketch that diverges from the baseline must produce a non-equal
// observation, otherwise the battery proves nothing.
func TestConformanceDetectsDrift(t *testing.T) {
	items := conformanceStream()
	a, err := New(BackendSingle, conformanceCfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	runScript(a, items)
	b, err := New(BackendSingle, conformanceCfg, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	runScript(b, items)
	b.Insert(stream.Item{Src: items[0].Src, Dst: items[0].Dst, Weight: 1,
		Time: items[len(items)-1].Time})
	if reflect.DeepEqual(observe(a, items), observe(b, items)) {
		t.Fatal("observation blind to a one-item divergence")
	}
}
