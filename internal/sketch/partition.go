package sketch

import (
	"errors"

	"repro/internal/gss"
	"repro/internal/stream"
	"repro/internal/window"
)

// PartitionMigrator is the migration surface of a sketch: export the
// edges whose source node a predicate claims (as plain stream items)
// and drop them once the new owner absorbed the copy. Every backend
// New can return implements it; the wrappers forward it, so the server
// can offer partition export/drop over any deployment.
type PartitionMigrator interface {
	// ExportPartition streams every sketch edge whose source node
	// moves under the predicate to emit, without modifying the sketch.
	ExportPartition(moving func(id string) bool, emit func(stream.Item) error) (gss.PartitionReport, error)
	// DropPartition removes those edges and subtracts items from the
	// stream-item count (clamped to the items present).
	DropPartition(moving func(id string) bool, items int64) (gss.PartitionReport, error)
	// AbsorbItems adds n to the stream-item count without touching the
	// matrix — the drain-mode counter rebase (see gss.GSS.AbsorbItems).
	AbsorbItems(n int64) error
}

// ErrNoPartitionSupport is returned by wrappers whose inner sketch has
// no partition surface.
var ErrNoPartitionSupport = errors.New("sketch: backend does not support partition operations")

// PartitionView returns sk's partition surface, if it has one.
func PartitionView(sk Sketch) (PartitionMigrator, bool) {
	pm, ok := sk.(PartitionMigrator)
	return pm, ok
}

// ExportPartition forwards to the wrapped sketch under the global
// mutex; a long export stalls other operations, which is the Locked
// contract for every compound operation.
func (l *Locked) ExportPartition(moving func(id string) bool, emit func(stream.Item) error) (gss.PartitionReport, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pm == nil {
		return gss.PartitionReport{}, ErrNoPartitionSupport
	}
	return l.pm.ExportPartition(moving, emit)
}

// DropPartition forwards to the wrapped sketch under the global mutex.
func (l *Locked) DropPartition(moving func(id string) bool, items int64) (gss.PartitionReport, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pm == nil {
		return gss.PartitionReport{}, ErrNoPartitionSupport
	}
	return l.pm.DropPartition(moving, items)
}

// AbsorbItems forwards to the wrapped sketch under the global mutex.
func (l *Locked) AbsorbItems(n int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pm == nil {
		return ErrNoPartitionSupport
	}
	return l.pm.AbsorbItems(n)
}

// ExportPartition dispatches to the current sketch (per-call, matching
// Hot's swap semantics).
func (h *Hot) ExportPartition(moving func(id string) bool, emit func(stream.Item) error) (gss.PartitionReport, error) {
	if pm, ok := PartitionView(h.Current()); ok {
		return pm.ExportPartition(moving, emit)
	}
	return gss.PartitionReport{}, ErrNoPartitionSupport
}

// DropPartition dispatches to the current sketch.
func (h *Hot) DropPartition(moving func(id string) bool, items int64) (gss.PartitionReport, error) {
	if pm, ok := PartitionView(h.Current()); ok {
		return pm.DropPartition(moving, items)
	}
	return gss.PartitionReport{}, ErrNoPartitionSupport
}

// AbsorbItems dispatches to the current sketch.
func (h *Hot) AbsorbItems(n int64) error {
	if pm, ok := PartitionView(h.Current()); ok {
		return pm.AbsorbItems(n)
	}
	return ErrNoPartitionSupport
}

// Every backend and wrapper carries the partition surface.
var (
	_ PartitionMigrator = (*gss.GSS)(nil)
	_ PartitionMigrator = (*gss.Concurrent)(nil)
	_ PartitionMigrator = (*gss.Sharded)(nil)
	_ PartitionMigrator = (*window.Sliding)(nil)
	_ PartitionMigrator = (*Locked)(nil)
	_ PartitionMigrator = (*Hot)(nil)
)
