// Package sketch defines the common deployment surface of a graph
// stream summary: ingestion (single item and batched), the three query
// primitives of Definition 4, statistics, and snapshot/restore for
// fail-over. The HTTP server, the benchmark harness, and the examples
// all program against Sketch, so swapping the synchronization strategy
// — one global lock, a read-write lock, or hash-partitioned shards —
// is a flag, not a rewrite. This is the seam later scaling work
// (windowed sketches, replication, alternative backends) plugs into.
package sketch

import (
	"fmt"
	"io"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/window"
)

// Sketch is the full deployment interface. It is a superset of
// query.Summary, so any Sketch also serves the compound query
// algorithms (reachability, node aggregates) unchanged.
type Sketch interface {
	// Insert ingests one stream item.
	Insert(it stream.Item)
	// InsertBatch ingests a slice of items; synchronized backends
	// amortize lock acquisitions over the batch.
	InsertBatch(items []stream.Item)
	// EdgeWeight is the edge query primitive.
	EdgeWeight(src, dst string) (int64, bool)
	// Successors is the 1-hop successor query primitive.
	Successors(v string) []string
	// Precursors is the 1-hop precursor query primitive.
	Precursors(v string) []string
	// Nodes enumerates registered original node identifiers.
	Nodes() []string
	// HeavyEdges lists sketch edges with weight >= minWeight.
	HeavyEdges(minWeight int64) []gss.HeavyEdge
	// Stats snapshots sketch statistics.
	Stats() gss.Stats
	// Snapshot serializes the sketch state to w.
	Snapshot(w io.Writer) error
	// Restore replaces the sketch state from a snapshot; the state is
	// unchanged on error.
	Restore(r io.Reader) error
}

// The gss backends and the sliding-window summary satisfy Sketch, and
// every backend New can return also serves the hash-native query plane
// (query.HashSummary) — the compound-query fast path the server's
// /reachable and /nodeout handlers ride. Wrappers (Locked, Hot) keep
// the plane across composition.
var (
	_ Sketch = (*gss.GSS)(nil)
	_ Sketch = (*gss.Concurrent)(nil)
	_ Sketch = (*gss.Sharded)(nil)
	_ Sketch = (*window.Sliding)(nil)

	_ query.HashSummary = (*gss.GSS)(nil)
	_ query.HashSummary = (*gss.Concurrent)(nil)
	_ query.HashSummary = (*gss.Sharded)(nil)
	_ query.HashSummary = (*window.Sliding)(nil)
	_ query.HashSummary = (*Locked)(nil)
)

// Backend names accepted by New.
const (
	BackendSingle     = "single"     // one global mutex, everything serialized
	BackendConcurrent = "concurrent" // RWMutex: parallel reads, exclusive writes
	BackendSharded    = "sharded"    // per-shard mutexes, parallel ingestion
	BackendWindowed   = "windowed"   // sliding window of generation sketches, bounded memory
)

// Backends lists the accepted backend names.
func Backends() []string {
	return []string{BackendSingle, BackendConcurrent, BackendSharded, BackendWindowed}
}

// Windowed backend defaults: one hour of second-resolution timestamps
// in four 15-minute generations.
const (
	DefaultWindowSpan        = 3600
	DefaultWindowGenerations = 4
)

// Options carries the backend-specific construction parameters beyond
// the per-sketch gss.Config. Fields a backend does not consult are
// ignored.
type Options struct {
	// Shards is the shard count for the sharded backend
	// (values < 1 mean 1).
	Shards int
	// WindowSpan is the windowed backend's window length in
	// stream-time units (0 means DefaultWindowSpan).
	WindowSpan int64
	// WindowGenerations is the windowed backend's rotation granularity
	// (0 means DefaultWindowGenerations).
	WindowGenerations int
}

// New builds a thread-safe Sketch for the named backend.
func New(backend string, cfg gss.Config, opt Options) (Sketch, error) {
	switch backend {
	case BackendSingle:
		g, err := gss.New(cfg)
		if err != nil {
			return nil, err
		}
		return NewLocked(g), nil
	case BackendConcurrent:
		return gss.NewConcurrent(cfg)
	case BackendSharded:
		return gss.NewSharded(cfg, opt.Shards)
	case BackendWindowed:
		span := opt.WindowSpan
		if span == 0 {
			span = DefaultWindowSpan
		}
		gens := opt.WindowGenerations
		if gens == 0 {
			gens = DefaultWindowGenerations
		}
		// cfg.Width is the total matrix budget, like on the sharded
		// backend: each of the gens generation sketches gets
		// width/sqrt(gens), so their combined memory matches one
		// unbounded sketch of cfg. An invalid width passes through
		// unscaled for window.New to reject.
		scaled := cfg
		if cfg.Width > 0 && gens > 0 {
			scaled.Width = gss.ScaleWidth(cfg.Width, gens)
		}
		w, err := window.New(window.Config{Sketch: scaled, Span: span, Generations: gens})
		if err != nil {
			return nil, err
		}
		// Generation rotation makes every insert a potential structural
		// change, so the windowed summary gets the global-mutex adapter
		// rather than a reader-writer split.
		return NewLocked(w), nil
	default:
		return nil, fmt.Errorf("sketch: unknown backend %q (want %s, %s, %s or %s)",
			backend, BackendSingle, BackendConcurrent, BackendSharded, BackendWindowed)
	}
}
