// Package sketch defines the common deployment surface of a graph
// stream summary: ingestion (single item and batched), the three query
// primitives of Definition 4, statistics, and snapshot/restore for
// fail-over. The HTTP server, the benchmark harness, and the examples
// all program against Sketch, so swapping the synchronization strategy
// — one global lock, a read-write lock, or hash-partitioned shards —
// is a flag, not a rewrite. This is the seam later scaling work
// (windowed sketches, replication, alternative backends) plugs into.
package sketch

import (
	"fmt"
	"io"

	"repro/internal/gss"
	"repro/internal/stream"
)

// Sketch is the full deployment interface. It is a superset of
// query.Summary, so any Sketch also serves the compound query
// algorithms (reachability, node aggregates) unchanged.
type Sketch interface {
	// Insert ingests one stream item.
	Insert(it stream.Item)
	// InsertBatch ingests a slice of items; synchronized backends
	// amortize lock acquisitions over the batch.
	InsertBatch(items []stream.Item)
	// EdgeWeight is the edge query primitive.
	EdgeWeight(src, dst string) (int64, bool)
	// Successors is the 1-hop successor query primitive.
	Successors(v string) []string
	// Precursors is the 1-hop precursor query primitive.
	Precursors(v string) []string
	// Nodes enumerates registered original node identifiers.
	Nodes() []string
	// HeavyEdges lists sketch edges with weight >= minWeight.
	HeavyEdges(minWeight int64) []gss.HeavyEdge
	// Stats snapshots sketch statistics.
	Stats() gss.Stats
	// Snapshot serializes the sketch state to w.
	Snapshot(w io.Writer) error
	// Restore replaces the sketch state from a snapshot; the state is
	// unchanged on error.
	Restore(r io.Reader) error
}

// The three gss backends satisfy Sketch.
var (
	_ Sketch = (*gss.GSS)(nil)
	_ Sketch = (*gss.Concurrent)(nil)
	_ Sketch = (*gss.Sharded)(nil)
)

// Backend names accepted by New.
const (
	BackendSingle     = "single"     // one global mutex, everything serialized
	BackendConcurrent = "concurrent" // RWMutex: parallel reads, exclusive writes
	BackendSharded    = "sharded"    // per-shard mutexes, parallel ingestion
)

// Backends lists the accepted backend names.
func Backends() []string {
	return []string{BackendSingle, BackendConcurrent, BackendSharded}
}

// New builds a thread-safe Sketch for the named backend. shards is
// only consulted by the sharded backend (values < 1 mean 1).
func New(backend string, cfg gss.Config, shards int) (Sketch, error) {
	switch backend {
	case BackendSingle:
		g, err := gss.New(cfg)
		if err != nil {
			return nil, err
		}
		return NewLocked(g), nil
	case BackendConcurrent:
		return gss.NewConcurrent(cfg)
	case BackendSharded:
		return gss.NewSharded(cfg, shards)
	default:
		return nil, fmt.Errorf("sketch: unknown backend %q (want %s, %s or %s)",
			backend, BackendSingle, BackendConcurrent, BackendSharded)
	}
}
