package sketch

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

// Randomized equivalence suite for the hash-native query plane: every
// compound algorithm must answer exactly like its string-based
// reference (forced via query.StripHash) on every registered backend,
// on seeded random graphs. This is the cross-backend proof that the
// reverse column index, the occupancy-word walks and the dense-frontier
// traversals changed speed, not answers.
//
// The graphs are collision-free by construction (asserted below): under
// node-hash collisions the two planes legitimately differ — the hash
// plane treats colliding identifiers as one node — and the sized-up
// fingerprint space makes collisions a non-event at this node count.

// equivCfg is oversized like conformanceCfg so hash collisions cannot
// blur the comparison.
var equivCfg = gss.Config{Width: 96, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}

func equivStream(seed int64) []stream.Item {
	return stream.Generate(stream.DatasetConfig{Name: "query-equiv", Nodes: 120,
		Edges: 1800, DegreeSkew: 1.5, WeightSkew: 1.3, MaxWeight: 60, Seed: seed})
}

// assertCollisionFree fails when any two identifiers share a node hash;
// the seeds below were chosen so they never do.
func assertCollisionFree(t *testing.T, sk Sketch) query.HashSummary {
	t.Helper()
	h, ok := query.HashView(sk)
	if !ok {
		t.Fatal("backend does not expose a hash-native query plane")
	}
	for _, hv := range h.AppendNodeHashes(nil) {
		if ids := h.AppendHashIDs(hv, nil); len(ids) != 1 {
			t.Fatalf("hash %d registers %v; pick a collision-free seed", hv, ids)
		}
	}
	return h
}

func checkQueryEquivalence(t *testing.T, sk Sketch, items []stream.Item) {
	t.Helper()
	assertCollisionFree(t, sk)
	ref := query.StripHash(sk)
	if _, ok := query.HashView(ref); ok {
		t.Fatal("StripHash failed to hide the hash plane")
	}

	nodes := sk.Nodes()
	probes := append([]string{}, nodes[:12]...)
	probes = append(probes, "ghost-a", "ghost-b") // never inserted

	for i, a := range probes {
		for _, k := range []int{1, 2, 4} {
			if got, want := query.KHop(sk, a, k), query.KHop(ref, a, k); !reflect.DeepEqual(got, want) {
				t.Fatalf("KHop(%s,%d): fast %v != ref %v", a, k, got, want)
			}
		}
		if got, want := query.NodeOut(sk, a), query.NodeOut(ref, a); got != want {
			t.Fatalf("NodeOut(%s): fast %d != ref %d", a, got, want)
		}
		if got, want := query.NodeIn(sk, a), query.NodeIn(ref, a); got != want {
			t.Fatalf("NodeIn(%s): fast %d != ref %d", a, got, want)
		}
		for j, b := range probes {
			if got, want := query.Reachable(sk, a, b), query.Reachable(ref, a, b); got != want {
				t.Fatalf("Reachable(%s,%s): fast %v != ref %v", a, b, got, want)
			}
			if i%3 == 0 && j%3 == 0 {
				checkShortestPath(t, sk, ref, a, b)
			}
		}
	}

	if got, want := query.WeaklyConnectedComponents(sk), query.WeaklyConnectedComponents(ref); !reflect.DeepEqual(got, want) {
		t.Fatalf("WCC: fast %d comps != ref %d comps\nfast %v\nref  %v",
			len(got), len(want), got, want)
	}
	if got, want := query.Triangles(sk), query.Triangles(ref); got != want {
		t.Fatalf("Triangles: fast %d != ref %d", got, want)
	}

	fastPR := query.PageRank(sk, 0.85, 12)
	refPR := query.PageRank(ref, 0.85, 12)
	if len(fastPR) != len(refPR) {
		t.Fatalf("PageRank: fast has %d nodes, ref %d", len(fastPR), len(refPR))
	}
	for v, want := range refPR {
		got, ok := fastPR[v]
		if !ok {
			t.Fatalf("PageRank: fast path missing node %s", v)
		}
		// Summation order differs between the planes, so allow float
		// noise — anything beyond it is a real divergence.
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("PageRank(%s): fast %g != ref %g", v, got, want)
		}
	}
}

// checkShortestPath compares cost and reachability, and validates the
// fast path's route edge by edge: equal-cost ties may route
// differently, so path equality is deliberately not asserted.
func checkShortestPath(t *testing.T, sk Sketch, ref query.Summary, a, b string) {
	t.Helper()
	fastPath, fastCost, fastOK := query.ShortestPath(sk, a, b)
	_, refCost, refOK := query.ShortestPath(ref, a, b)
	if fastOK != refOK || fastCost != refCost {
		t.Fatalf("ShortestPath(%s,%s): fast (%d,%v) != ref (%d,%v)",
			a, b, fastCost, fastOK, refCost, refOK)
	}
	if !fastOK {
		return
	}
	if fastPath[0] != a || fastPath[len(fastPath)-1] != b {
		t.Fatalf("ShortestPath(%s,%s): endpoints %v", a, b, fastPath)
	}
	var sum int64
	for i := 0; i+1 < len(fastPath); i++ {
		w, ok := sk.EdgeWeight(fastPath[i], fastPath[i+1])
		if !ok || w <= 0 {
			t.Fatalf("ShortestPath(%s,%s): hop %s->%s not traversable",
				a, b, fastPath[i], fastPath[i+1])
		}
		sum += w
	}
	if sum != fastCost {
		t.Fatalf("ShortestPath(%s,%s): path sums to %d, reported %d", a, b, sum, fastCost)
	}
}

func TestQueryEquivalenceAcrossBackends(t *testing.T) {
	items := equivStream(71)
	for _, backend := range Backends() {
		t.Run(backend, func(t *testing.T) {
			sk, err := New(backend, equivCfg, testOpts)
			if err != nil {
				t.Fatal(err)
			}
			runScript(sk, items)
			checkQueryEquivalence(t, sk, items)

			// The plane must survive snapshot/restore — the reverse
			// index is rebuilt, not serialized, and the answers must
			// not notice.
			var snap bytes.Buffer
			if err := sk.Snapshot(&snap); err != nil {
				t.Fatal(err)
			}
			restored, err := New(backend, equivCfg, testOpts)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatal(err)
			}
			checkQueryEquivalence(t, restored, items)

			// And survive a Hot swap, the read-replica read path.
			hot := NewHot(restored)
			checkQueryEquivalence(t, hot, items)
		})
	}
}

// TestQueryEquivalenceSeeds runs the cheaper probes over several seeds
// on the single backend, widening the random coverage where it is
// cheapest.
func TestQueryEquivalenceSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed equivalence runs in the full suite")
	}
	for _, seed := range []int64{5, 17, 29, 83} {
		t.Run(fmt.Sprint(seed), func(t *testing.T) {
			sk, err := New(BackendSingle, equivCfg, testOpts)
			if err != nil {
				t.Fatal(err)
			}
			sk.InsertBatch(equivStream(seed))
			checkQueryEquivalence(t, sk, nil)
		})
	}
}

// TestHashViewGating: summaries without a node index must fall back to
// the string plane instead of claiming a hash plane that cannot expand
// results.
func TestHashViewGating(t *testing.T) {
	g, err := gss.New(gss.Config{Width: 32, DisableNodeIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := query.HashView(g); ok {
		t.Fatal("index-less GSS claims a backed hash plane")
	}
	locked := NewLocked(g)
	if _, ok := query.HashView(locked); ok {
		t.Fatal("Locked over index-less GSS claims a backed hash plane")
	}
	if _, ok := query.HashView(NewHot(locked)); ok {
		t.Fatal("Hot over index-less backend claims a backed hash plane")
	}
}
