package cms

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := New(Config{Width: 4, Depth: -1}); err == nil {
		t.Fatal("negative depth accepted")
	}
	if s := MustNew(Config{Width: 4}); s.cfg.Depth != 4 {
		t.Fatalf("default depth = %d", s.cfg.Depth)
	}
}

func TestCMNeverUnderestimates(t *testing.T) {
	s := MustNew(Config{Width: 256, Depth: 4})
	rng := rand.New(rand.NewSource(1))
	want := map[string]int64{}
	for i := 0; i < 5000; i++ {
		key := EdgeKey(stream.NodeID(rng.Intn(300)), stream.NodeID(rng.Intn(300)))
		w := int64(rng.Intn(5) + 1)
		s.Add(key, w)
		want[key] += w
	}
	for k, w := range want {
		if got := s.Estimate(k); got < w {
			t.Fatalf("CM underestimated %q: %d < %d", k, got, w)
		}
	}
}

func TestCUNeverUnderestimatesAndTighter(t *testing.T) {
	cm := MustNew(Config{Width: 128, Depth: 4})
	cu := MustNew(Config{Width: 128, Depth: 4, Conservative: true})
	rng := rand.New(rand.NewSource(2))
	want := map[string]int64{}
	for i := 0; i < 8000; i++ {
		key := EdgeKey(stream.NodeID(rng.Intn(400)), stream.NodeID(rng.Intn(400)))
		cm.Add(key, 1)
		cu.Add(key, 1)
		want[key]++
	}
	var cmErr, cuErr int64
	for k, w := range want {
		cmEst, cuEst := cm.Estimate(k), cu.Estimate(k)
		if cuEst < w {
			t.Fatalf("CU underestimated %q: %d < %d", k, cuEst, w)
		}
		if cuEst > cmEst {
			t.Fatalf("CU estimate above CM for %q: %d > %d", k, cuEst, cmEst)
		}
		cmErr += cmEst - w
		cuErr += cuEst - w
	}
	if cuErr > cmErr {
		t.Fatalf("CU total error %d not tighter than CM %d", cuErr, cmErr)
	}
}

func TestEdgeWeightAndItems(t *testing.T) {
	s := MustNew(Config{Width: 64})
	s.InsertItem(stream.Item{Src: "a", Dst: "b", Weight: 5})
	if w, ok := s.EdgeWeight("a", "b"); !ok || w < 5 {
		t.Fatalf("EdgeWeight = %d,%v", w, ok)
	}
	if _, ok := s.EdgeWeight("never", "seen"); ok {
		// Collisions can make this true in a tiny sketch, but at one
		// item it must be exact.
		t.Fatal("phantom edge in near-empty sketch")
	}
	if s.ItemCount() != 1 {
		t.Fatalf("ItemCount = %d", s.ItemCount())
	}
	if s.MemoryBytes() != 64*4*8 {
		t.Fatalf("MemoryBytes = %d", s.MemoryBytes())
	}
}

func TestNegativeWeightsFallBackToCM(t *testing.T) {
	cu := MustNew(Config{Width: 64, Conservative: true})
	cu.Add("k", 10)
	cu.Add("k", -4)
	if got := cu.Estimate("k"); got < 6 {
		t.Fatalf("after deletion estimate = %d, want >= 6", got)
	}
}

func TestEdgeKeyUnambiguous(t *testing.T) {
	// "ab"+"c" must differ from "a"+"bc".
	if EdgeKey("ab", "c") == EdgeKey("a", "bc") {
		t.Fatal("EdgeKey is ambiguous")
	}
}
