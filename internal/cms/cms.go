// Package cms implements the Count-Min sketch and its conservative-
// update variant (the CU sketch), the counter-array baselines of §II.
// They store each stream item independently: edge-weight queries work,
// but no topology query (successors, reachability) is possible — the
// limitation that motivates graph-aware summaries like TCM and GSS.
package cms

import (
	"errors"

	"repro/internal/hashing"
	"repro/internal/stream"
)

// Config configures a CM or CU sketch.
type Config struct {
	Width int // counters per row
	Depth int // number of rows; defaults to 4
	Seed  uint64
	// Conservative enables CU-sketch updates: only the minimal counters
	// advance, tightening over-estimates. CU supports non-negative
	// increments only; negative weights fall back to plain CM updates.
	Conservative bool
}

// Sketch is a Count-Min / CU sketch keyed by arbitrary strings. For
// graph streams the key is the edge "src -> dst". Not safe for
// concurrent use.
type Sketch struct {
	cfg      Config
	counters [][]int64
	items    int64
}

// New builds an empty sketch.
func New(cfg Config) (*Sketch, error) {
	if cfg.Width <= 0 {
		return nil, errors.New("cms: Config.Width must be positive")
	}
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	if cfg.Depth < 1 {
		return nil, errors.New("cms: Config.Depth must be positive")
	}
	s := &Sketch{cfg: cfg}
	for i := 0; i < cfg.Depth; i++ {
		s.counters = append(s.counters, make([]int64, cfg.Width))
	}
	return s, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Sketch {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// EdgeKey canonicalizes a directed edge into a sketch key.
func EdgeKey(src, dst string) string { return src + "\x00" + dst }

// InsertItem ingests a graph-stream item keyed by its edge.
func (s *Sketch) InsertItem(it stream.Item) { s.Add(EdgeKey(it.Src, it.Dst), it.Weight) }

// Add increments key's counters by w.
func (s *Sketch) Add(key string, w int64) {
	s.items++
	if s.cfg.Conservative && w > 0 {
		s.addConservative(key, w)
		return
	}
	for i := 0; i < s.cfg.Depth; i++ {
		s.counters[i][s.pos(key, i)] += w
	}
}

// addConservative raises only the counters below the new estimate —
// the CU-sketch rule of Estan & Varghese.
func (s *Sketch) addConservative(key string, w int64) {
	est := s.Estimate(key) + w
	for i := 0; i < s.cfg.Depth; i++ {
		p := s.pos(key, i)
		if s.counters[i][p] < est {
			s.counters[i][p] = est
		}
	}
}

// Estimate returns the minimum counter across rows for key.
func (s *Sketch) Estimate(key string) int64 {
	var est int64
	for i := 0; i < s.cfg.Depth; i++ {
		c := s.counters[i][s.pos(key, i)]
		if i == 0 || c < est {
			est = c
		}
	}
	return est
}

// EdgeWeight estimates the weight of edge (src,dst); zero means absent
// under additive positive weights.
func (s *Sketch) EdgeWeight(src, dst string) (int64, bool) {
	est := s.Estimate(EdgeKey(src, dst))
	return est, est != 0
}

func (s *Sketch) pos(key string, row int) int {
	return int(hashing.HashSeeded(key, s.cfg.Seed+uint64(row)*0x9e3779b97f4a7c15) % uint64(s.cfg.Width))
}

// MemoryBytes is the counter footprint.
func (s *Sketch) MemoryBytes() int64 {
	return int64(s.cfg.Depth) * int64(s.cfg.Width) * 8
}

// ItemCount is the number of Add calls.
func (s *Sketch) ItemCount() int64 { return s.items }
