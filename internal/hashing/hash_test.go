package hashing

import (
	"testing"
	"testing/quick"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64("node-a") != Hash64("node-a") {
		t.Fatal("Hash64 is not deterministic")
	}
	if Hash64("node-a") == Hash64("node-b") {
		t.Fatal("trivially distinct inputs collided (astronomically unlikely)")
	}
}

func TestHash64EmptyString(t *testing.T) {
	// The empty string must hash to a stable, usable value.
	if Hash64("") != Hash64("") {
		t.Fatal("empty-string hash unstable")
	}
}

func TestHashSeededIndependence(t *testing.T) {
	// Different seeds must give different hash functions.
	same := 0
	for i := 0; i < 1000; i++ {
		s := string(rune('a'+i%26)) + string(rune('0'+i%10))
		if HashSeeded(s, 1)%1024 == HashSeeded(s, 2)%1024 {
			same++
		}
	}
	// Expect ~1000/1024 collisions by chance; 100 is far beyond that.
	if same > 100 {
		t.Fatalf("seeded hashes look correlated: %d/1000 agree mod 1024", same)
	}
}

func TestNodeHasherSplitCombineRoundTrip(t *testing.T) {
	nh := NewNodeHasher(1000, 16)
	f := func(x uint64) bool {
		hv := x % nh.M()
		addr, fp := nh.Split(hv)
		return nh.Combine(addr, fp) == hv && addr < uint32(nh.Width) && uint64(fp) < nh.FSize
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNodeHasherRange(t *testing.T) {
	nh := NewNodeHasher(37, 12)
	for i := 0; i < 10000; i++ {
		hv := nh.Hash(string(rune(i)) + "x")
		if hv >= nh.M() {
			t.Fatalf("Hash out of range: %d >= %d", hv, nh.M())
		}
	}
}

func TestLRSequenceDeterministicAndDistinct(t *testing.T) {
	const r = 16
	seq1 := LRSequence(12345, make([]uint32, r))
	seq2 := LRSequence(12345, make([]uint32, r))
	for i := range seq1 {
		if seq1[i] != seq2[i] {
			t.Fatalf("sequence not deterministic at %d", i)
		}
	}
	seen := map[uint32]bool{}
	for _, q := range seq1 {
		if seen[q] {
			t.Fatalf("repeated value %d within r=%d", q, r)
		}
		seen[q] = true
	}
}

func TestLRSequenceNoRepeatsForAllFingerprints(t *testing.T) {
	// The paper requires the LCG cycle to be much larger than r so no
	// value repeats within a sequence. Verify across the whole 12-bit
	// fingerprint space and a sample of the 16-bit space.
	check := func(fp uint32) {
		seq := LRSequence(fp, make([]uint32, 16))
		seen := map[uint32]bool{}
		for _, q := range seq {
			if seen[q] {
				t.Fatalf("fp=%d: repeated LR value %d", fp, q)
			}
			seen[q] = true
		}
	}
	for fp := uint32(0); fp < 4096; fp++ {
		check(fp)
	}
	for fp := uint32(4096); fp < 65536; fp += 97 {
		check(fp)
	}
}

func TestLRAtMatchesSequence(t *testing.T) {
	f := func(fp uint32, idx uint8) bool {
		i := int(idx % 16)
		seq := LRSequence(fp, make([]uint32, 16))
		return LRAt(fp, i) == seq[i]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddressSequenceRange(t *testing.T) {
	const width = 997
	seq := AddressSequence(500, 777, width, make([]uint32, 16))
	for _, h := range seq {
		if h >= width {
			t.Fatalf("address %d out of range [0,%d)", h, width)
		}
	}
}

// TestRecoverAddressRoundTrip is the reversibility property at the heart
// of square hashing: from (row, fingerprint, index) the original matrix
// address must be recoverable exactly.
func TestRecoverAddressRoundTrip(t *testing.T) {
	f := func(addrRaw, fp uint32, idx uint8, widthRaw uint16) bool {
		width := int(widthRaw%2000) + 2
		r := int(idx%16) + 1
		addr := addrRaw % uint32(width)
		seq := AddressSequence(addr, fp, width, make([]uint32, r))
		for i, row := range seq {
			if RecoverAddress(row, fp, i, width) != addr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCandidatePairRange(t *testing.T) {
	for r := 1; r <= 16; r++ {
		for q := uint32(0); q < 1000; q++ {
			i, j := CandidatePair(q, r)
			if i < 0 || i >= r || j < 0 || j >= r {
				t.Fatalf("candidate pair (%d,%d) out of range r=%d", i, j, r)
			}
		}
	}
}

func TestSampleSequenceCoversManyPairs(t *testing.T) {
	// With k=16 samples over r=16 (256 buckets) we expect mostly
	// distinct candidate pairs; duplicates waste probes.
	const r, k = 16, 16
	dup := 0
	for seed := uint32(0); seed < 512; seed++ {
		seq := SampleSequence(seed, make([]uint32, k))
		seen := map[[2]int]bool{}
		for _, q := range seq {
			i, j := CandidatePair(q, r)
			if seen[[2]int{i, j}] {
				dup++
			}
			seen[[2]int{i, j}] = true
		}
	}
	// Birthday bound: expected ~ k^2/(2*256) ≈ 0.5 dups per seed.
	if dup > 512*4 {
		t.Fatalf("too many duplicate candidate pairs: %d over 512 seeds", dup)
	}
}

func BenchmarkHash64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Hash64("203.0.113.57->198.51.100.12")
	}
}

func BenchmarkAddressSequence(b *testing.B) {
	dst := make([]uint32, 16)
	for i := 0; i < b.N; i++ {
		AddressSequence(uint32(i)%1000, uint32(i)%65536, 1000, dst)
	}
}
