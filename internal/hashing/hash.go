// Package hashing provides the hash machinery used throughout the GSS
// reproduction: a 64-bit string hash, the node-hash decomposition into a
// matrix address and a fingerprint (Definition 5 of the paper), the
// linear-congruential address sequences used by square hashing (Eq. 1-2),
// and the candidate-bucket sampling sequences (Eq. 4-5).
package hashing

// Linear-congruential parameters shared by the address and sampling
// sequences. p is the prime 2^16+1 and a=75 is a primitive root modulo p
// (the classic Lehmer generator), so the homogeneous part of the
// recurrence has period p-1 and no value repeats within any realistic
// sequence length r. b is a small odd constant as the paper suggests.
const (
	lcgA = 75
	lcgB = 3
	lcgP = 65537
)

// Hash64 hashes s to a well-mixed 64-bit value. It is FNV-1a followed by
// a finalizing avalanche (the splitmix64 finalizer) so that the low bits
// used for fingerprints are as uniform as the high bits.
func Hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return Mix64(h)
}

// Mix64 applies the splitmix64 finalizer to x. It is exposed so that
// baselines (TCM, gMatrix, CM sketches) can derive independent hash
// functions from seed values.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashSeeded hashes s under an independent hash function identified by
// seed. Distinct seeds give (empirically) independent functions.
func HashSeeded(s string, seed uint64) uint64 {
	return Mix64(Hash64(s) ^ Mix64(seed))
}

// Rendezvous scores the key hash kh against every seed and returns the
// index of the highest-random-weight winner (rendezvous hashing). It is
// the single ownership function shared by the cluster ring and the
// server-side partition filter: both sides derive seeds the same way
// (Hash64 of the normalized member URL), so "which member owns this
// key" evaluates identically everywhere without coordination. Returns 0
// when seeds is empty.
func Rendezvous(seeds []uint64, kh uint64) int {
	best, bestScore := 0, uint64(0)
	for i, seed := range seeds {
		score := Mix64(kh ^ seed)
		if i == 0 || score > bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// NodeHasher maps node identifiers to the compressed node space [0, M)
// with M = Width * FSize, and splits each hash value H(v) into the matrix
// address h(v) = H(v) / F and the fingerprint f(v) = H(v) % F.
type NodeHasher struct {
	Width int    // m: matrix side length (number of distinct addresses)
	FSize uint64 // F: size of the fingerprint value range
}

// NewNodeHasher returns a NodeHasher for an m-wide matrix with
// fingerprintBits-bit fingerprints.
func NewNodeHasher(width int, fingerprintBits int) NodeHasher {
	return NodeHasher{Width: width, FSize: 1 << uint(fingerprintBits)}
}

// M is the size of the compressed node space, m*F.
func (nh NodeHasher) M() uint64 { return uint64(nh.Width) * nh.FSize }

// Hash returns H(v) in [0, M).
func (nh NodeHasher) Hash(v string) uint64 {
	return Hash64(v) % nh.M()
}

// Split decomposes H(v) into (h(v), f(v)).
func (nh NodeHasher) Split(hv uint64) (addr uint32, fp uint32) {
	return uint32(hv / nh.FSize), uint32(hv % nh.FSize)
}

// Combine is the inverse of Split: H(v) = h(v)*F + f(v).
func (nh NodeHasher) Combine(addr, fp uint32) uint64 {
	return uint64(addr)*nh.FSize + uint64(fp)
}

// LRSequence writes the linear-congruential sequence {q_i} seeded by the
// fingerprint fp into dst (Eq. 1 of the paper) and returns it. The
// sequence is fully determined by fp, which is what makes square hashing
// reversible: a bucket that stores fp and the index i lets the reader
// recompute q_i and recover the original matrix address.
func LRSequence(fp uint32, dst []uint32) []uint32 {
	q := (lcgA*uint64(fp%lcgP) + lcgB) % lcgP
	for i := range dst {
		dst[i] = uint32(q)
		q = (lcgA*q + lcgB) % lcgP
	}
	return dst
}

// LRAt returns the i-th element (0-based) of the LR sequence seeded by fp
// without materializing the prefix.
func LRAt(fp uint32, i int) uint32 {
	q := (lcgA*uint64(fp%lcgP) + lcgB) % lcgP
	for ; i > 0; i-- {
		q = (lcgA*q + lcgB) % lcgP
	}
	return uint32(q)
}

// AddressSequence writes the hash-address sequence {h_i(v)} of Eq. 2 into
// dst: h_i(v) = (h(v) + q_i(v)) mod m.
func AddressSequence(addr uint32, fp uint32, width int, dst []uint32) []uint32 {
	LRSequence(fp, dst)
	for i, q := range dst {
		dst[i] = (addr + q) % uint32(width)
	}
	return dst
}

// RecoverAddress inverts Eq. 2: given the row (or column) index where a
// bucket lives, the stored fingerprint and the stored sequence index, it
// returns the original matrix address h(v). The solution is unique
// because h(v) < m.
func RecoverAddress(rowOrCol uint32, fp uint32, seqIndex int, width int) uint32 {
	q := LRAt(fp, seqIndex) % uint32(width)
	return (rowOrCol + uint32(width) - q) % uint32(width)
}

// SampleSequence writes the candidate-bucket sampling sequence of Eq. 4
// into dst, seeded by seed(e) = f(s)+f(d).
func SampleSequence(seed uint32, dst []uint32) []uint32 {
	return LRSequence(seed, dst)
}

// CandidatePair maps the i-th sampling value q to a (rowIdx, colIdx) pair
// in [0, r) x [0, r) following Eq. 5: (floor(q/r) mod r, q mod r).
func CandidatePair(q uint32, r int) (rowIdx, colIdx int) {
	return int(q/uint32(r)) % r, int(q) % r
}
