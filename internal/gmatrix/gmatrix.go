// Package gmatrix implements gMatrix ("Query-friendly compression of
// graph streams", ASONAM 2016), the TCM variant the paper discusses in
// §II. Like TCM it keeps d adjacency-matrix sketches, but its node hash
// functions are *reversible* affine maps over a prime field, so query
// results can be decompressed back to candidate node IDs without a hash
// table — at the price of extra false positives from the reverse step,
// which is exactly why the paper finds its accuracy no better than TCM.
//
// gMatrix assumes integer node identifiers in [0, IDSpace), as the
// ASONAM paper does; the experiments adapt string IDs through
// stream.NodeID ordinals.
package gmatrix

import (
	"errors"
	"sort"
)

// Config configures a gMatrix summary.
type Config struct {
	Width   int    // side length of each matrix
	Depth   int    // number of sketches; defaults to 4
	IDSpace uint64 // node identifiers are in [0, IDSpace)
	Seed    uint64
}

// GMatrix is a reversible multi-sketch graph summary over integer node
// IDs. Not safe for concurrent use.
type GMatrix struct {
	cfg      Config
	p        uint64 // prime modulus > IDSpace
	a, b     []uint64
	ainv     []uint64
	counters [][]int64
	items    int64
}

// New builds an empty gMatrix.
func New(cfg Config) (*GMatrix, error) {
	if cfg.Width <= 0 {
		return nil, errors.New("gmatrix: Config.Width must be positive")
	}
	if cfg.IDSpace < 2 {
		return nil, errors.New("gmatrix: Config.IDSpace must be at least 2")
	}
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	if cfg.Depth < 1 {
		return nil, errors.New("gmatrix: Config.Depth must be positive")
	}
	p := nextPrime(cfg.IDSpace)
	g := &GMatrix{cfg: cfg, p: p}
	rng := cfg.Seed*2862933555777941757 + 3037000493
	for k := 0; k < cfg.Depth; k++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		a := rng%(p-1) + 1 // a in [1, p-1]: invertible mod p
		rng = rng*6364136223846793005 + 1442695040888963407
		b := rng % p
		g.a = append(g.a, a)
		g.b = append(g.b, b)
		g.ainv = append(g.ainv, modInverse(a, p))
		g.counters = append(g.counters, make([]int64, cfg.Width*cfg.Width))
	}
	return g, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *GMatrix {
	g, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// hash maps id through the k-th reversible affine function and folds it
// onto a matrix coordinate.
func (g *GMatrix) hash(id uint64, k int) (cell int, hv uint64) {
	hv = (mulMod(g.a[k], id%g.p, g.p) + g.b[k]) % g.p
	return int(hv % uint64(g.cfg.Width)), hv
}

// unhash inverts the k-th affine function: the id whose hash value is hv.
func (g *GMatrix) unhash(hv uint64, k int) uint64 {
	return mulMod(g.ainv[k], (hv+g.p-g.b[k])%g.p, g.p)
}

// InsertEdge adds w to edge (src,dst) in every sketch.
func (g *GMatrix) InsertEdge(src, dst uint64, w int64) {
	g.items++
	for k := 0; k < g.cfg.Depth; k++ {
		r, _ := g.hash(src, k)
		c, _ := g.hash(dst, k)
		g.counters[k][r*g.cfg.Width+c] += w
	}
}

// EdgeWeight estimates the weight of (src,dst) as the minimum over
// sketches; zero means absent under additive positive weights.
func (g *GMatrix) EdgeWeight(src, dst uint64) (int64, bool) {
	est := g.edgeEstimate(src, dst)
	return est, est != 0
}

func (g *GMatrix) edgeEstimate(src, dst uint64) int64 {
	var est int64
	for k := 0; k < g.cfg.Depth; k++ {
		r, _ := g.hash(src, k)
		c, _ := g.hash(dst, k)
		v := g.counters[k][r*g.cfg.Width+c]
		if k == 0 || v < est {
			est = v
		}
	}
	return est
}

// Successors decompresses the nonzero row cells of v in sketch 0 into
// candidate IDs via the reverse hash and keeps those confirmed by every
// other sketch. Candidates that were never inserted can survive — the
// reverse-procedure error the paper notes.
func (g *GMatrix) Successors(v uint64) []uint64 { return g.neighbors(v, true) }

// Precursors is the column-wise analogue of Successors.
func (g *GMatrix) Precursors(v uint64) []uint64 { return g.neighbors(v, false) }

func (g *GMatrix) neighbors(v uint64, forward bool) []uint64 {
	w := g.cfg.Width
	rv, _ := g.hash(v, 0)
	var out []uint64
	for c := 0; c < w; c++ {
		var cnt int64
		if forward {
			cnt = g.counters[0][rv*w+c]
		} else {
			cnt = g.counters[0][c*w+rv]
		}
		if cnt == 0 {
			continue
		}
		// Reverse sketch-0: every hash value congruent to c modulo the
		// width decompresses to one candidate ID.
		for hv := uint64(c); hv < g.p; hv += uint64(w) {
			id := g.unhash(hv, 0)
			if id >= g.cfg.IDSpace {
				continue
			}
			var est int64
			if forward {
				est = g.edgeEstimate(v, id)
			} else {
				est = g.edgeEstimate(id, v)
			}
			if est != 0 {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HeavyEdge is an edge whose estimated weight reached a threshold.
type HeavyEdge struct {
	Src, Dst uint64
	Weight   int64
}

// HeavyEdges reports the edge heavy hitters — the query class gMatrix
// adds over TCM (§II). Cells of sketch 0 at or above minWeight are
// decompressed into candidate endpoint pairs and cross-checked against
// the remaining sketches.
func (g *GMatrix) HeavyEdges(minWeight int64) []HeavyEdge {
	if minWeight <= 0 {
		minWeight = 1
	}
	w := g.cfg.Width
	var out []HeavyEdge
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			if g.counters[0][r*w+c] < minWeight {
				continue
			}
			for hs := uint64(r); hs < g.p; hs += uint64(w) {
				src := g.unhash(hs, 0)
				if src >= g.cfg.IDSpace {
					continue
				}
				for hd := uint64(c); hd < g.p; hd += uint64(w) {
					dst := g.unhash(hd, 0)
					if dst >= g.cfg.IDSpace {
						continue
					}
					if est := g.edgeEstimate(src, dst); est >= minWeight {
						out = append(out, HeavyEdge{Src: src, Dst: dst, Weight: est})
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// NodeOutWeight estimates the aggregate out-weight of v (row sum,
// minimized over sketches).
func (g *GMatrix) NodeOutWeight(v uint64) int64 {
	var est int64
	w := g.cfg.Width
	for k := 0; k < g.cfg.Depth; k++ {
		r, _ := g.hash(v, k)
		var sum int64
		for c := 0; c < w; c++ {
			sum += g.counters[k][r*w+c]
		}
		if k == 0 || sum < est {
			est = sum
		}
	}
	return est
}

// MemoryBytes is the counter footprint across sketches.
func (g *GMatrix) MemoryBytes() int64 {
	return int64(g.cfg.Depth) * int64(g.cfg.Width) * int64(g.cfg.Width) * 8
}

// ItemCount is the number of stream items ingested.
func (g *GMatrix) ItemCount() int64 { return g.items }
