package gmatrix

import "math/bits"

// mulMod computes a*b mod m without overflow using 128-bit intermediate
// arithmetic.
func mulMod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi%m, lo, m)
	return rem
}

// powMod computes base^exp mod m.
func powMod(base, exp, m uint64) uint64 {
	result := uint64(1)
	base %= m
	for exp > 0 {
		if exp&1 == 1 {
			result = mulMod(result, base, m)
		}
		base = mulMod(base, base, m)
		exp >>= 1
	}
	return result
}

// isPrime is a deterministic Miller-Rabin test valid for all uint64
// values (the listed witness set is proven sufficient below 2^64).
func isPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n%p == 0 {
			return n == p
		}
	}
	d := n - 1
	r := 0
	for d%2 == 0 {
		d /= 2
		r++
	}
	for _, a := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		x := powMod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		composite := true
		for i := 0; i < r-1; i++ {
			x = mulMod(x, x, n)
			if x == n-1 {
				composite = false
				break
			}
		}
		if composite {
			return false
		}
	}
	return true
}

// nextPrime returns the smallest prime >= n.
func nextPrime(n uint64) uint64 {
	if n <= 2 {
		return 2
	}
	if n%2 == 0 {
		n++
	}
	for !isPrime(n) {
		n += 2
	}
	return n
}

// modInverse returns a^-1 mod p for prime p (Fermat's little theorem).
func modInverse(a, p uint64) uint64 {
	return powMod(a%p, p-2, p)
}
