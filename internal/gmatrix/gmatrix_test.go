package gmatrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPrimeHelpers(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 65537, 2147483647}
	for _, p := range primes {
		if !isPrime(p) {
			t.Errorf("isPrime(%d) = false", p)
		}
	}
	composites := []uint64{0, 1, 4, 9, 65536, 2147483646, 3215031751}
	for _, c := range composites {
		if isPrime(c) {
			t.Errorf("isPrime(%d) = true", c)
		}
	}
	if got := nextPrime(1000); got != 1009 {
		t.Fatalf("nextPrime(1000) = %d, want 1009", got)
	}
	if got := nextPrime(2); got != 2 {
		t.Fatalf("nextPrime(2) = %d", got)
	}
}

func TestModInverse(t *testing.T) {
	f := func(a uint64) bool {
		const p = 1000003
		a = a%(p-1) + 1
		inv := modInverse(a, p)
		return mulMod(a, inv, p) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulModMatchesBigArithmetic(t *testing.T) {
	f := func(a, b uint64) bool {
		const m = 2147483647
		want := (a % m) * (b % m) % m // fits in uint64 since m < 2^31
		return mulMod(a%m, b%m, m) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashReversible(t *testing.T) {
	g := MustNew(Config{Width: 32, Depth: 4, IDSpace: 10000, Seed: 7})
	for id := uint64(0); id < 10000; id += 37 {
		for k := 0; k < 4; k++ {
			_, hv := g.hash(id, k)
			if got := g.unhash(hv, k); got != id {
				t.Fatalf("unhash(hash(%d)) = %d in sketch %d", id, got, k)
			}
		}
	}
}

func TestEdgeWeightOverestimateOnly(t *testing.T) {
	g := MustNew(Config{Width: 64, Depth: 4, IDSpace: 5000, Seed: 1})
	rng := rand.New(rand.NewSource(42))
	type key struct{ s, d uint64 }
	want := map[key]int64{}
	for i := 0; i < 3000; i++ {
		s, d := uint64(rng.Intn(5000)), uint64(rng.Intn(5000))
		w := int64(rng.Intn(10) + 1)
		g.InsertEdge(s, d, w)
		want[key{s, d}] += w
	}
	for k, w := range want {
		got, ok := g.EdgeWeight(k.s, k.d)
		if !ok || got < w {
			t.Fatalf("edge (%d,%d): got %d,%v want >= %d", k.s, k.d, got, ok, w)
		}
	}
}

func TestSuccessorsSupersetWithReverseError(t *testing.T) {
	g := MustNew(Config{Width: 64, Depth: 4, IDSpace: 2000, Seed: 3})
	truth := map[uint64]map[uint64]bool{}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1500; i++ {
		s, d := uint64(rng.Intn(2000)), uint64(rng.Intn(2000))
		g.InsertEdge(s, d, 1)
		if truth[s] == nil {
			truth[s] = map[uint64]bool{}
		}
		truth[s][d] = true
	}
	for s, ds := range truth {
		got := map[uint64]bool{}
		for _, d := range g.Successors(s) {
			got[d] = true
		}
		for d := range ds {
			if !got[d] {
				t.Fatalf("gMatrix lost successor %d of %d", d, s)
			}
		}
	}
}

func TestPrecursorsSuperset(t *testing.T) {
	g := MustNew(Config{Width: 48, Depth: 3, IDSpace: 1000, Seed: 5})
	g.InsertEdge(1, 42, 1)
	g.InsertEdge(2, 42, 1)
	got := map[uint64]bool{}
	for _, s := range g.Precursors(42) {
		got[s] = true
	}
	if !got[1] || !got[2] {
		t.Fatalf("Precursors(42) = %v", g.Precursors(42))
	}
}

func TestHeavyEdges(t *testing.T) {
	g := MustNew(Config{Width: 32, Depth: 4, IDSpace: 500, Seed: 11})
	g.InsertEdge(7, 9, 50)
	g.InsertEdge(3, 4, 2)
	heavy := g.HeavyEdges(25)
	found := false
	for _, he := range heavy {
		if he.Src == 7 && he.Dst == 9 && he.Weight >= 50 {
			found = true
		}
		if he.Weight < 25 {
			t.Fatalf("heavy edge below threshold: %+v", he)
		}
	}
	if !found {
		t.Fatalf("true heavy edge (7,9) missing from %v", heavy)
	}
}

func TestNodeOutWeight(t *testing.T) {
	g := MustNew(Config{Width: 64, Depth: 4, IDSpace: 100, Seed: 2})
	g.InsertEdge(5, 6, 3)
	g.InsertEdge(5, 7, 4)
	if got := g.NodeOutWeight(5); got < 7 {
		t.Fatalf("NodeOutWeight = %d, want >= 7", got)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Width: 0, IDSpace: 10}); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := New(Config{Width: 8, IDSpace: 1}); err == nil {
		t.Fatal("tiny ID space accepted")
	}
	if _, err := New(Config{Width: 8, IDSpace: 100, Depth: -2}); err == nil {
		t.Fatal("negative depth accepted")
	}
	g := MustNew(Config{Width: 8, IDSpace: 100})
	if g.cfg.Depth != 4 {
		t.Fatalf("default depth = %d", g.cfg.Depth)
	}
	if g.MemoryBytes() != 4*8*8*8 {
		t.Fatalf("MemoryBytes = %d", g.MemoryBytes())
	}
}
