// Package adjlist provides exact in-memory stores for streaming graphs.
//
// Graph is the map-indexed exact store used as ground truth for every
// accuracy metric in the experiments. Classic is a faithful adjacency
// list — per-node edge slices scanned linearly, with a map locating each
// node's list as in §VII-H — used as the "Adjacency Lists" baseline of
// Table I, where the paper shows its update cost is what rules it out
// for high-speed streams.
package adjlist

import "sort"

// Graph is an exact directed multigraph with summed edge weights.
// Insertion and edge lookup are O(1) expected. It is the ground truth
// the sketches are measured against.
type Graph struct {
	out   map[string]map[string]int64
	in    map[string]map[string]int64
	edges int   // distinct (src,dst) pairs
	items int64 // stream items inserted
}

// New returns an empty exact graph.
func New() *Graph {
	return &Graph{
		out: make(map[string]map[string]int64),
		in:  make(map[string]map[string]int64),
	}
}

// Insert adds w to the weight of edge (src,dst), creating it if needed.
// A negative w models deletion of earlier items per Definition 1.
func (g *Graph) Insert(src, dst string, w int64) {
	g.items++
	os, ok := g.out[src]
	if !ok {
		os = make(map[string]int64)
		g.out[src] = os
	}
	if _, existed := os[dst]; !existed {
		g.edges++
	}
	os[dst] += w

	is, ok := g.in[dst]
	if !ok {
		is = make(map[string]int64)
		g.in[dst] = is
	}
	is[src] += w
	// Ensure both endpoints are known even when they have edges in only
	// one direction.
	if _, ok := g.out[dst]; !ok {
		g.out[dst] = make(map[string]int64)
	}
	if _, ok := g.in[src]; !ok {
		g.in[src] = make(map[string]int64)
	}
}

// EdgeWeight returns the summed weight of edge (src,dst) and whether the
// edge exists.
func (g *Graph) EdgeWeight(src, dst string) (int64, bool) {
	w, ok := g.out[src][dst]
	return w, ok
}

// Successors returns the 1-hop successors of v, sorted for determinism.
func (g *Graph) Successors(v string) []string {
	return sortedKeys(g.out[v])
}

// Precursors returns the 1-hop precursors of v, sorted for determinism.
func (g *Graph) Precursors(v string) []string {
	return sortedKeys(g.in[v])
}

func sortedKeys(m map[string]int64) []string {
	if len(m) == 0 {
		return nil
	}
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// Nodes returns all node identifiers, sorted.
func (g *Graph) Nodes() []string {
	ks := make([]string, 0, len(g.out))
	for k := range g.out {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// NodeCount is |V|.
func (g *Graph) NodeCount() int { return len(g.out) }

// EdgeCount is the number of distinct directed edges.
func (g *Graph) EdgeCount() int { return g.edges }

// ItemCount is the number of stream items inserted.
func (g *Graph) ItemCount() int64 { return g.items }

// OutDegree returns the number of distinct out-edges of v.
func (g *Graph) OutDegree(v string) int { return len(g.out[v]) }

// InDegree returns the number of distinct in-edges of v.
func (g *Graph) InDegree(v string) int { return len(g.in[v]) }

// NodeOutWeight is the paper's node query ground truth: the sum of the
// weights of all edges with source node v.
func (g *Graph) NodeOutWeight(v string) int64 {
	var sum int64
	for _, w := range g.out[v] {
		sum += w
	}
	return sum
}

// NodeInWeight is the sum of the weights of all edges with destination v.
func (g *Graph) NodeInWeight(v string) int64 {
	var sum int64
	for _, w := range g.in[v] {
		sum += w
	}
	return sum
}

// Reachable reports whether dst can be reached from src by a directed
// path (BFS).
func (g *Graph) Reachable(src, dst string) bool {
	if src == dst {
		return true
	}
	if _, ok := g.out[src]; !ok {
		return false
	}
	visited := map[string]bool{src: true}
	queue := []string{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for u := range g.out[v] {
			if u == dst {
				return true
			}
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
	}
	return false
}

// Triangles counts the triangles of the undirected projection of the
// graph — the ground truth for the Fig. 14 experiment, matching TRIEST's
// undirected triangle semantics.
func (g *Graph) Triangles() int64 {
	neigh := g.undirected()
	var count int64
	for v, nv := range neigh {
		for u := range nv {
			if u <= v {
				continue // count each edge once, v < u
			}
			nu := neigh[u]
			// Iterate over the smaller neighborhood.
			small, large := nv, nu
			if len(nu) < len(nv) {
				small, large = nu, nv
			}
			for w := range small {
				if w > u && large[w] { // v < u < w: each triangle once
					count++
				}
			}
		}
	}
	return count
}

func (g *Graph) undirected() map[string]map[string]bool {
	neigh := make(map[string]map[string]bool, len(g.out))
	add := func(a, b string) {
		m, ok := neigh[a]
		if !ok {
			m = make(map[string]bool)
			neigh[a] = m
		}
		m[b] = true
	}
	for v, os := range g.out {
		for u := range os {
			if v == u {
				continue
			}
			add(v, u)
			add(u, v)
		}
	}
	return neigh
}

// MaxOutDegree returns the largest out-degree, a measure of the skew
// that motivates square hashing (§V-A).
func (g *Graph) MaxOutDegree() int {
	max := 0
	for _, os := range g.out {
		if len(os) > max {
			max = len(os)
		}
	}
	return max
}
