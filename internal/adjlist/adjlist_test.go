package adjlist

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func TestGraphBasicInsertAndQuery(t *testing.T) {
	g := New()
	g.Insert("a", "b", 1)
	g.Insert("a", "c", 1)
	g.Insert("a", "c", 3) // repeated edge: weights sum (Definition 1)
	if w, ok := g.EdgeWeight("a", "c"); !ok || w != 4 {
		t.Fatalf("EdgeWeight(a,c) = %d,%v want 4,true", w, ok)
	}
	if _, ok := g.EdgeWeight("c", "a"); ok {
		t.Fatal("reverse edge must not exist")
	}
	if got := g.Successors("a"); !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Fatalf("Successors(a) = %v", got)
	}
	if got := g.Precursors("c"); !reflect.DeepEqual(got, []string{"a"}) {
		t.Fatalf("Precursors(c) = %v", got)
	}
	if g.NodeCount() != 3 || g.EdgeCount() != 2 || g.ItemCount() != 3 {
		t.Fatalf("counts: V=%d E=%d items=%d", g.NodeCount(), g.EdgeCount(), g.ItemCount())
	}
}

func TestGraphPaperExample(t *testing.T) {
	// The Fig. 1 sample stream: weight of (a,c) accumulates 1+1+3 = 5.
	g := New()
	for _, it := range fig1Stream() {
		g.Insert(it.Src, it.Dst, it.Weight)
	}
	if w, _ := g.EdgeWeight("a", "c"); w != 5 {
		t.Fatalf("w(a,c) = %d, want 5", w)
	}
	if w, _ := g.EdgeWeight("d", "a"); w != 2 {
		t.Fatalf("w(d,a) = %d, want 2", w)
	}
	if got := g.NodeOutWeight("a"); got != 1+5+1+1+1 {
		t.Fatalf("node query a = %d, want 9", got)
	}
}

func fig1Stream() []stream.Item {
	return []stream.Item{
		{Src: "a", Dst: "b", Weight: 1}, {Src: "a", Dst: "c", Weight: 1},
		{Src: "b", Dst: "d", Weight: 1}, {Src: "a", Dst: "c", Weight: 1},
		{Src: "a", Dst: "f", Weight: 1}, {Src: "c", Dst: "f", Weight: 1},
		{Src: "a", Dst: "e", Weight: 1}, {Src: "a", Dst: "c", Weight: 3},
		{Src: "c", Dst: "f", Weight: 1}, {Src: "d", Dst: "a", Weight: 1},
		{Src: "d", Dst: "f", Weight: 1}, {Src: "f", Dst: "e", Weight: 3},
		{Src: "a", Dst: "g", Weight: 1}, {Src: "e", Dst: "b", Weight: 2},
		{Src: "d", Dst: "a", Weight: 1},
	}
}

func TestGraphDeletion(t *testing.T) {
	g := New()
	g.Insert("a", "b", 5)
	g.Insert("a", "b", -3)
	if w, ok := g.EdgeWeight("a", "b"); !ok || w != 2 {
		t.Fatalf("after deletion w = %d,%v", w, ok)
	}
}

func TestGraphReachable(t *testing.T) {
	g := New()
	g.Insert("a", "b", 1)
	g.Insert("b", "c", 1)
	g.Insert("x", "y", 1)
	cases := []struct {
		s, d string
		want bool
	}{
		{"a", "c", true}, {"c", "a", false}, {"a", "y", false},
		{"x", "y", true}, {"a", "a", true}, {"missing", "c", false},
	}
	for _, c := range cases {
		if got := g.Reachable(c.s, c.d); got != c.want {
			t.Errorf("Reachable(%s,%s) = %v want %v", c.s, c.d, got, c.want)
		}
	}
}

func TestGraphTriangles(t *testing.T) {
	g := New()
	// Directed cycle a->b->c->a: one undirected triangle.
	g.Insert("a", "b", 1)
	g.Insert("b", "c", 1)
	g.Insert("c", "a", 1)
	if got := g.Triangles(); got != 1 {
		t.Fatalf("Triangles = %d, want 1", got)
	}
	// A reciprocal edge must not create a new triangle.
	g.Insert("b", "a", 1)
	if got := g.Triangles(); got != 1 {
		t.Fatalf("Triangles after reciprocal = %d, want 1", got)
	}
	// d connected to a and b closes a second triangle.
	g.Insert("d", "a", 1)
	g.Insert("b", "d", 1)
	if got := g.Triangles(); got != 2 {
		t.Fatalf("Triangles = %d, want 2", got)
	}
}

func TestGraphTrianglesK4(t *testing.T) {
	g := New()
	nodes := []string{"a", "b", "c", "d"}
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			g.Insert(u, v, 1)
		}
	}
	if got := g.Triangles(); got != 4 {
		t.Fatalf("K4 triangles = %d, want 4", got)
	}
}

func TestGraphDegreesAndWeights(t *testing.T) {
	g := New()
	g.Insert("a", "b", 2)
	g.Insert("a", "c", 3)
	g.Insert("d", "a", 7)
	if g.OutDegree("a") != 2 || g.InDegree("a") != 1 {
		t.Fatalf("degrees: out=%d in=%d", g.OutDegree("a"), g.InDegree("a"))
	}
	if g.NodeOutWeight("a") != 5 || g.NodeInWeight("a") != 7 {
		t.Fatalf("weights: out=%d in=%d", g.NodeOutWeight("a"), g.NodeInWeight("a"))
	}
	if g.MaxOutDegree() != 2 {
		t.Fatalf("MaxOutDegree = %d", g.MaxOutDegree())
	}
}

func TestClassicMatchesGraph(t *testing.T) {
	items := stream.Generate(stream.EmailEuAll().Scaled(0.002))
	g, c := New(), NewClassic()
	for _, it := range items {
		g.Insert(it.Src, it.Dst, it.Weight)
		c.Insert(it.Src, it.Dst, it.Weight)
	}
	if g.NodeCount() != c.NodeCount() {
		t.Fatalf("node counts differ: %d vs %d", g.NodeCount(), c.NodeCount())
	}
	for _, it := range items {
		gw, gok := g.EdgeWeight(it.Src, it.Dst)
		cw, cok := c.EdgeWeight(it.Src, it.Dst)
		if gw != cw || gok != cok {
			t.Fatalf("edge (%s,%s): graph %d,%v classic %d,%v", it.Src, it.Dst, gw, gok, cw, cok)
		}
	}
	for _, v := range g.Nodes()[:min(50, g.NodeCount())] {
		gs := g.Successors(v)
		cs := c.Successors(v)
		if len(gs) != len(cs) {
			t.Fatalf("successor counts differ for %s: %d vs %d", v, len(gs), len(cs))
		}
		gp := g.Precursors(v)
		cp := c.Precursors(v)
		if len(gp) != len(cp) {
			t.Fatalf("precursor counts differ for %s: %d vs %d", v, len(gp), len(cp))
		}
	}
}

func TestClassicEmpty(t *testing.T) {
	c := NewClassic()
	if _, ok := c.EdgeWeight("a", "b"); ok {
		t.Fatal("empty classic reported an edge")
	}
	if c.Successors("a") != nil || c.Precursors("a") != nil {
		t.Fatal("empty classic reported neighbors")
	}
}

// Property: Graph edge weight equals the sum of all inserted weights for
// that (src,dst) pair, for arbitrary insertion interleavings.
func TestGraphWeightSumProperty(t *testing.T) {
	f := func(ws []int8) bool {
		g := New()
		var want int64
		for i, w := range ws {
			g.Insert("s", "d", int64(w))
			want += int64(w)
			// Interleave unrelated edges.
			g.Insert("s", stream.NodeID(i), 1)
		}
		got, ok := g.EdgeWeight("s", "d")
		if len(ws) == 0 {
			return !ok
		}
		return ok && got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
