package adjlist

// Classic is the adjacency-list baseline of Table I: each node's
// out-edges live in a slice that is scanned linearly on every update, so
// inserting an edge costs O(out-degree). A map locates each node's list
// in O(1) — §VII-H: "accelerated using a map that records the position
// of the list for each node" — but the scan inside the list is what
// makes adjacency lists too slow for high-speed graph streams.
type Classic struct {
	index map[string]int // node -> position in lists
	lists [][]classicEdge
	names []string
	items int64
}

type classicEdge struct {
	dst    string
	weight int64
}

// NewClassic returns an empty classic adjacency list.
func NewClassic() *Classic {
	return &Classic{index: make(map[string]int)}
}

func (c *Classic) nodePos(v string) int {
	if p, ok := c.index[v]; ok {
		return p
	}
	p := len(c.lists)
	c.index[v] = p
	c.lists = append(c.lists, nil)
	c.names = append(c.names, v)
	return p
}

// Insert adds w to edge (src,dst), scanning src's list for an existing
// entry as a textbook adjacency list does.
func (c *Classic) Insert(src, dst string, w int64) {
	c.items++
	p := c.nodePos(src)
	c.nodePos(dst)
	list := c.lists[p]
	for i := range list {
		if list[i].dst == dst {
			list[i].weight += w
			return
		}
	}
	c.lists[p] = append(list, classicEdge{dst: dst, weight: w})
}

// EdgeWeight scans src's list for dst.
func (c *Classic) EdgeWeight(src, dst string) (int64, bool) {
	p, ok := c.index[src]
	if !ok {
		return 0, false
	}
	for _, e := range c.lists[p] {
		if e.dst == dst {
			return e.weight, true
		}
	}
	return 0, false
}

// Successors returns the 1-hop successors of v in insertion order.
func (c *Classic) Successors(v string) []string {
	p, ok := c.index[v]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(c.lists[p]))
	for _, e := range c.lists[p] {
		out = append(out, e.dst)
	}
	return out
}

// Precursors scans every list — the classic structure has no reverse
// index, which is part of why the paper needs a purpose-built summary.
func (c *Classic) Precursors(v string) []string {
	var out []string
	for i, list := range c.lists {
		for _, e := range list {
			if e.dst == v {
				out = append(out, c.names[i])
				break
			}
		}
	}
	return out
}

// Nodes returns all node identifiers in first-seen order.
func (c *Classic) Nodes() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// NodeCount is |V|.
func (c *Classic) NodeCount() int { return len(c.names) }

// ItemCount is the number of stream items inserted.
func (c *Classic) ItemCount() int64 { return c.items }
