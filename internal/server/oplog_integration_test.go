package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/gss"
	"repro/internal/replica"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Operation-log integration: the primary appends every applied batch
// before acking, recovery is checkpoint + replay from the checkpoint's
// sequence, /log serves the records, and a tailing follower converges
// on deltas instead of whole snapshots.

func logOpts(t *testing.T, base string) Options {
	return Options{
		CheckpointDir:      filepath.Join(base, "ckpt"),
		CheckpointInterval: time.Hour,
		LogDir:             filepath.Join(base, "log"),
		LogSyncEvery:       -1, // sync every append: crashes lose nothing
		Logf:               quiet(t),
	}
}

// TestLogRecoveryReplaysTail is the finer-grained durability scenario
// the log buys: items ingested after the last checkpoint survive a
// kill, because recovery replays the log from the checkpoint's
// sequence.
func TestLogRecoveryReplaysTail(t *testing.T) {
	base := t.TempDir()
	cfg := gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	opt := logOpts(t, base)

	s1, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	items := replicaItems(2000)
	ingestAll(t, ts1.URL, items[:1500])
	if _, err := s1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, ts1.URL, items[1500:]) // the tail only the log holds
	var wantStats gss.Stats
	getJSON(t, ts1.URL+"/stats", &wantStats)
	wantHeavy := heavyBody(t, ts1.URL)

	// Crash: drop the listener, never Close (no final checkpoint).
	ts1.Close()

	s2, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	var gotStats gss.Stats
	getJSON(t, ts2.URL+"/stats", &gotStats)
	if gotStats != wantStats {
		t.Fatalf("restarted stats = %+v, want pre-kill %+v", gotStats, wantStats)
	}
	if gotStats.Items != 2000 {
		t.Fatalf("recovered items = %d, want all 2000 (1500 checkpointed + 500 replayed)", gotStats.Items)
	}
	if got := heavyBody(t, ts2.URL); got != wantHeavy {
		t.Fatalf("restarted /heavy diverges:\n got %s\nwant %s", got, wantHeavy)
	}
	var rs ReplicaStats
	getJSON(t, ts2.URL+"/replica/stats", &rs)
	if rs.ReplayedItems != 500 {
		t.Fatalf("replayed_items = %d, want 500", rs.ReplayedItems)
	}
	if rs.Log == nil || rs.Log.NextSeq != 2000 {
		t.Fatalf("log stats after recovery: %+v", rs.Log)
	}
}

// TestLogOnlyRecovery: with no checkpoint directory the log alone
// rebuilds the whole state.
func TestLogOnlyRecovery(t *testing.T) {
	base := t.TempDir()
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	opt := Options{LogDir: filepath.Join(base, "log"), LogSyncEvery: -1, Logf: quiet(t)}

	s1, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	ingestAll(t, ts1.URL, replicaItems(800))
	var want gss.Stats
	getJSON(t, ts1.URL+"/stats", &want)
	ts1.Close() // crash

	s2, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Sketch().Stats(); got != want {
		t.Fatalf("log-only recovery: stats %+v, want %+v", got, want)
	}
}

// TestLogRecoveryWindowedBackend pins the replay-determinism argument
// for the stateful-in-time backend: window rotation follows item
// times, so checkpoint + replay lands in the same window state.
func TestLogRecoveryWindowedBackend(t *testing.T) {
	base := t.TempDir()
	cfg := gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	opt := logOpts(t, base)
	opt.Backend = sketch.BackendWindowed
	opt.WindowSpan = 500
	opt.WindowGenerations = 4

	s1, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	items := replicaItems(2000) // times 1..2000 sweep several generations
	ingestAll(t, ts1.URL, items[:700])
	if _, err := s1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, ts1.URL, items[700:])
	var want gss.Stats
	getJSON(t, ts1.URL+"/stats", &want)
	wantHeavy := heavyBody(t, ts1.URL)
	ts1.Close() // crash

	s2, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	var got gss.Stats
	getJSON(t, ts2.URL+"/stats", &got)
	if got != want {
		t.Fatalf("windowed recovery stats = %+v, want %+v", got, want)
	}
	if h := heavyBody(t, ts2.URL); h != wantHeavy {
		t.Fatalf("windowed recovery /heavy diverges:\n got %s\nwant %s", h, wantHeavy)
	}
}

// TestRecoveryOlderCheckpointReplaysLongerTail: when the newest
// checkpoint is corrupt, recovery falls back to an older one — and the
// log must still hold that older checkpoint's tail, because retention
// is keyed to the oldest retained checkpoint, not the newest.
func TestRecoveryOlderCheckpointReplaysLongerTail(t *testing.T) {
	base := t.TempDir()
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	opt := logOpts(t, base)

	s1, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	items := replicaItems(900)
	ingestAll(t, ts1.URL, items[:300])
	if _, err := s1.CheckpointNow(); err != nil { // seq 300
		t.Fatal(err)
	}
	ingestAll(t, ts1.URL, items[300:600])
	if _, err := s1.CheckpointNow(); err != nil { // seq 600
		t.Fatal(err)
	}
	ingestAll(t, ts1.URL, items[600:])
	var want gss.Stats
	getJSON(t, ts1.URL+"/stats", &want)
	ts1.Close() // crash

	// Corrupt the newest checkpoint; its sidecar stays, which is
	// exactly the hard case: recovery must use the older pair.
	cks, err := replica.List(opt.CheckpointDir)
	if err != nil || len(cks) < 2 {
		t.Fatalf("checkpoints: %v %v", cks, err)
	}
	newest := cks[len(cks)-1].Path
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Sketch().Stats(); got != want {
		t.Fatalf("fallback recovery stats = %+v, want %+v", got, want)
	}
	// 300 from the older checkpoint + 600 replayed.
	var rs ReplicaStats
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	getJSON(t, ts2.URL+"/replica/stats", &rs)
	if rs.ReplayedItems != 600 {
		t.Fatalf("replayed_items = %d, want 600 (tail of the older checkpoint)", rs.ReplayedItems)
	}
}

// TestLogEndpoint drives GET /log directly: paging, headers, and the
// error statuses followers key their fallback on.
func TestLogEndpoint(t *testing.T) {
	base := t.TempDir()
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	opt := Options{LogDir: filepath.Join(base, "log"), LogSyncEvery: -1, Logf: quiet(t)}
	s, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	items := replicaItems(100)
	ingestAll(t, ts.URL, items)

	fetch := func(q string) (*http.Response, []stream.Item) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/log" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("GET /log%s: %d %s", q, resp.StatusCode, b)
		}
		got, err := stream.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("decoding /log%s body: %v", q, err)
		}
		return resp, got
	}

	resp, got := fetch("?from=0&max=40")
	if len(got) != 40 {
		t.Fatalf("page 1: %d items, want 40", len(got))
	}
	if h := resp.Header.Get("X-Log-Next"); h != "40" {
		t.Fatalf("X-Log-Next = %q, want 40", h)
	}
	if h := resp.Header.Get("X-Log-End"); h != "100" {
		t.Fatalf("X-Log-End = %q, want 100", h)
	}
	// The served records are the ingested items, timestamps included.
	for i, it := range got {
		if it != items[i] {
			t.Fatalf("record %d = %+v, want %+v", i, it, items[i])
		}
	}
	_, got = fetch("?from=40")
	if len(got) != 60 {
		t.Fatalf("page 2: %d items, want the remaining 60", len(got))
	}

	for _, tc := range []struct {
		q    string
		code int
	}{
		{"?from=101", http.StatusRequestedRangeNotSatisfiable},
		{"?from=-1", http.StatusBadRequest},
		{"?from=0&max=0", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + "/log" + tc.q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Fatalf("GET /log%s: status %d, want %d", tc.q, resp.StatusCode, tc.code)
		}
	}

	// A server without a log answers 404 — the follower's cue to stay
	// on snapshot polling.
	_, plain := newTestServer(t)
	resp2, err := http.Get(plain.URL + "/log?from=0")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("logless /log status = %d, want 404", resp2.StatusCode)
	}

	// /snapshot on a logging primary carries the resume offset.
	resp3, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if h := resp3.Header.Get("X-Log-Seq"); h != "100" {
		t.Fatalf("X-Log-Seq = %q, want 100", h)
	}
}

// TestLogRetirementAnswers410: once a checkpoint lets the log retire
// old segments, reading below the horizon is 410 Gone with the oldest
// retained offset — the follower re-syncs from /snapshot.
func TestLogRetirementAnswers410(t *testing.T) {
	base := t.TempDir()
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	opt := logOpts(t, base)
	opt.CheckpointKeep = 1
	s, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Two checkpoint cycles: the first seals everything so far; the
	// second (with Keep=1 pruning the first) lets retention move the
	// horizon past it.
	ingestAll(t, ts.URL, replicaItems(400))
	if _, err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ingestAll(t, ts.URL, replicaItems(400))
	if _, err := s.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	var rs ReplicaStats
	getJSON(t, ts.URL+"/replica/stats", &rs)
	if rs.Log == nil || rs.Log.OldestSeq == 0 {
		t.Fatalf("retention never moved: log stats %+v", rs.Log)
	}
	resp, err := http.Get(ts.URL + "/log?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("retired offset status = %d, want 410", resp.StatusCode)
	}
	if resp.Header.Get("X-Log-Oldest") == "" {
		t.Fatal("410 response missing X-Log-Oldest")
	}
}

// TestFollowerTailConvergence: a log-tailing follower converges on the
// primary's state and reports tail-mode stats; the wire cost is the
// delta, not the snapshot.
func TestFollowerTailConvergence(t *testing.T) {
	base := t.TempDir()
	cfg := gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	popt := Options{LogDir: filepath.Join(base, "log"), LogSyncEvery: -1, Logf: quiet(t)}
	p, err := NewWithOptions(cfg, popt)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tsP := httptest.NewServer(p.Handler())
	defer tsP.Close()

	items := replicaItems(1000)
	ingestAll(t, tsP.URL, items[:600])

	f, err := NewWithOptions(cfg, Options{
		FollowURL: tsP.URL, FollowTail: true,
		FollowInterval: 20 * time.Millisecond, Logf: quiet(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tsF := httptest.NewServer(f.Handler())
	defer tsF.Close()

	waitConverged := func(wantItems int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			var st gss.Stats
			getJSON(t, tsF.URL+"/stats", &st)
			if st.Items == wantItems {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("follower stuck at %d items, want %d", st.Items, wantItems)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitConverged(600) // bootstrap snapshot

	ingestAll(t, tsP.URL, items[600:])
	waitConverged(1000) // tailed delta

	var want, got gss.Stats
	getJSON(t, tsP.URL+"/stats", &want)
	getJSON(t, tsF.URL+"/stats", &got)
	if got != want {
		t.Fatalf("follower stats %+v, want primary %+v", got, want)
	}

	var rs ReplicaStats
	getJSON(t, tsF.URL+"/replica/stats", &rs)
	fs := rs.Follower
	if fs == nil || fs.Mode != "tail" {
		t.Fatalf("follower stats: %+v", fs)
	}
	if fs.TailedItems != 400 {
		t.Fatalf("tailed_items = %d, want the 400 post-bootstrap items", fs.TailedItems)
	}
	if fs.LogSeq != 1000 {
		t.Fatalf("log_seq = %d, want 1000", fs.LogSeq)
	}
	// One bootstrap snapshot; everything after came over /log.
	if fs.SnapshotBytes == 0 || fs.TailedBytes == 0 {
		t.Fatalf("wire counters empty: %+v", fs)
	}
	if fs.LagItems != 0 {
		t.Fatalf("lag_items = %d after convergence, want 0", fs.LagItems)
	}
}

// TestFollowerSkipsUnchangedSnapshot: a snapshot-polling follower must
// not rebuild and hot-swap a sketch for a byte-identical snapshot.
func TestFollowerSkipsUnchangedSnapshot(t *testing.T) {
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	p, err := NewWithOptions(cfg, Options{Logf: quiet(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	tsP := httptest.NewServer(p.Handler())
	defer tsP.Close()
	ingestAll(t, tsP.URL, replicaItems(200))

	f, err := NewWithOptions(cfg, Options{
		FollowURL: tsP.URL, FollowInterval: 15 * time.Millisecond, Logf: quiet(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tsF := httptest.NewServer(f.Handler())
	defer tsF.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var rs ReplicaStats
		getJSON(t, tsF.URL+"/replica/stats", &rs)
		if fs := rs.Follower; fs != nil && fs.SkippedUnchanged >= 2 {
			if fs.Applied != 1 {
				t.Fatalf("applied = %d with an unchanged primary, want exactly 1", fs.Applied)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower kept re-applying an unchanged snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFollowerWithLogDirRefused: the two roles are exclusive.
func TestFollowerWithLogDirRefused(t *testing.T) {
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	_, err := NewWithOptions(cfg, Options{
		LogDir: t.TempDir(), FollowURL: "http://localhost:1", Logf: quiet(t)})
	if err == nil {
		t.Fatal("LogDir+FollowURL must be rejected")
	}
}

// TestRestoreResetsLog: /restore replaces state wholesale, so the
// pre-restore log must not replay over it after a crash.
func TestRestoreResetsLog(t *testing.T) {
	base := t.TempDir()
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	opt := logOpts(t, base)

	// A donor snapshot with known contents.
	donor, err := NewWithOptions(cfg, Options{Logf: quiet(t)})
	if err != nil {
		t.Fatal(err)
	}
	tsD := httptest.NewServer(donor.Handler())
	ingestAll(t, tsD.URL, replicaItems(100))
	snapResp, err := http.Get(tsD.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(snapResp.Body)
	snapResp.Body.Close()
	tsD.Close()
	donor.Close()

	s1, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	ingestAll(t, ts1.URL, replicaItems(700)) // pre-restore garbage
	req, err := http.NewRequest(http.MethodPost, ts1.URL+"/restore", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restore status %d", resp.StatusCode)
	}
	var want gss.Stats
	getJSON(t, ts1.URL+"/stats", &want)
	if want.Items != 100 {
		t.Fatalf("restored items = %d, want the donor's 100", want.Items)
	}
	ts1.Close() // crash right after the restore

	s2, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Sketch().Stats(); got != want {
		t.Fatalf("post-restore recovery stats = %+v, want %+v", got, want)
	}
}
