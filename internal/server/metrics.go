package server

import (
	"io"
	"sync"
	"time"

	"repro/internal/gss"
	"repro/internal/telemetry"
)

// Metrics wiring: every instrument the server exposes at GET /metrics.
// Hot-path handles (the ingest plane counters) are registered once
// here and bumped with plain atomics; everything that already lives in
// another subsystem's stats — sketch occupancy, oplog sequences,
// checkpoint and follower counters, pipeline depth — is bridged with
// scrape-time funcs over a short-TTL cache, so a scrape costs one
// Stats() call per subsystem, not one per metric, and an unscraped
// server pays nothing.

// statsTTL bounds how often a scrape recomputes the cached subsystem
// snapshots. Sketch Stats() walks the matrix under the backend's lock;
// a scraper refreshing every 10-15s never notices a quarter second of
// staleness, and a tight scrape loop cannot turn stats into load.
const statsTTL = 250 * time.Millisecond

// planeStats is the per-ingest-plane counter set ("ndjson" or "gsb1").
type planeStats struct {
	items        *telemetry.Counter
	batches      *telemetry.Counter
	bytes        *telemetry.Counter
	decodeErrors *telemetry.Counter
	rejected     *telemetry.Counter // batches answered 429
}

type serverMetrics struct {
	reg  *telemetry.Registry
	http *telemetry.HTTPMetrics

	ndjson planeStats
	gsb1   planeStats

	sketchMu sync.Mutex
	sketchAt time.Time
	sketch   gss.Stats

	replMu sync.Mutex
	replAt time.Time
	repl   ReplicaStats
}

func newPlaneStats(reg *telemetry.Registry, plane string) planeStats {
	l := telemetry.L("plane", plane)
	return planeStats{
		items:        reg.Counter("gss_ingest_items_total", "Items accepted for ingest, by wire plane.", l),
		batches:      reg.Counter("gss_ingest_batches_total", "Batches accepted for ingest, by wire plane.", l),
		bytes:        reg.Counter("gss_ingest_bytes_total", "Request body bytes read by the ingest decoders, by wire plane.", l),
		decodeErrors: reg.Counter("gss_ingest_decode_errors_total", "Ingest requests rejected mid-body for a malformed line or frame, by wire plane.", l),
		rejected:     reg.Counter("gss_ingest_rejected_batches_total", "Batches answered 429 because the async queue was full, by wire plane.", l),
	}
}

// newServerMetrics registers the server's instruments in reg. The
// scrape funcs capture s and check the optional subsystems (pipeline,
// oplog, checkpointer, follower) for nil at scrape time, so the family
// set is identical however the server is configured — a golden metric
// list holds across deployments.
func newServerMetrics(s *Server, reg *telemetry.Registry, slow *telemetry.SlowQueryLog) *serverMetrics {
	m := &serverMetrics{
		reg:    reg,
		http:   telemetry.NewHTTPMetrics(reg, slow),
		ndjson: newPlaneStats(reg, "ndjson"),
		gsb1:   newPlaneStats(reg, "gsb1"),
	}

	// Async ingest pipeline. The funcs must not start the pool — an
	// idle server stays at zero goroutines — so they go through
	// startedPipeline.
	pipeC := func(get func(*pipeline) int64) func() int64 {
		return func() int64 {
			if p := s.startedPipeline(); p != nil {
				return get(p)
			}
			return 0
		}
	}
	reg.CounterFunc("gss_ingest_enqueued_items_total", "Items accepted into the async ingest queue.",
		pipeC(func(p *pipeline) int64 { return p.enqueuedItems.Load() }))
	reg.CounterFunc("gss_ingest_processed_items_total", "Items the async workers applied to the sketch.",
		pipeC(func(p *pipeline) int64 { return p.processedItems.Load() }))
	reg.CounterFunc("gss_ingest_dropped_items_total", "Items dropped because the async queue was full.",
		pipeC(func(p *pipeline) int64 { return p.droppedItems.Load() }))
	reg.GaugeFunc("gss_ingest_queue_depth", "Async ingest batches waiting in the queue.",
		func() float64 {
			if p := s.startedPipeline(); p != nil {
				return float64(len(p.queue))
			}
			return 0
		})

	// Sketch state, through the TTL cache.
	sketchG := func(get func(gss.Stats) float64) func() float64 {
		return func() float64 { return get(m.sketchStats(s)) }
	}
	reg.GaugeFunc("gss_sketch_items", "Stream items resident in the sketch (windowed: still live in the window).",
		sketchG(func(st gss.Stats) float64 { return float64(st.Items) }))
	reg.GaugeFunc("gss_sketch_indexed_nodes", "Registered original node identifiers (0 when the index is disabled).",
		sketchG(func(st gss.Stats) float64 { return float64(st.IndexedNodes) }))
	reg.GaugeFunc("gss_sketch_matrix_edges", "Distinct sketch edges resident in the matrix.",
		sketchG(func(st gss.Stats) float64 { return float64(st.MatrixEdges) }))
	reg.GaugeFunc("gss_sketch_buffer_edges", "Distinct left-over sketch edges in the buffer.",
		sketchG(func(st gss.Stats) float64 { return float64(st.BufferEdges) }))
	reg.GaugeFunc("gss_sketch_occupancy", "Fraction of matrix rooms occupied.",
		sketchG(func(st gss.Stats) float64 { return st.Occupancy }))
	reg.GaugeFunc("gss_sketch_matrix_bytes", "Matrix footprint in bytes (the paper-comparable figure).",
		sketchG(func(st gss.Stats) float64 { return float64(st.MatrixBytes) }))
	reg.GaugeFunc("gss_sketch_reverse_index_bytes", "Per-column reverse index footprint in bytes.",
		sketchG(func(st gss.Stats) float64 { return float64(st.ReverseIndexBytes) }))
	reg.GaugeFunc("gss_sketch_window_live_generations", "Resident generation sketches (windowed backends only).",
		sketchG(func(st gss.Stats) float64 { return float64(st.LiveGenerations) }))
	reg.CounterFunc("gss_sketch_window_expired_items_total", "Items that left the sliding window with a rotated generation.",
		func() int64 { return m.sketchStats(s).ExpiredItems })
	reg.CounterFunc("gss_sketch_window_dropped_stragglers_total", "Items older than the window on arrival, dropped.",
		func() int64 { return m.sketchStats(s).DroppedStragglers })

	// Operation log, checkpoints and replication, through one cached
	// replicaStats() snapshot. Unconfigured subsystems read as zero.
	logC := func(get func(ReplicaStats) int64) func() int64 {
		return func() int64 { return get(m.replicaSnap(s)) }
	}
	logG := func(get func(ReplicaStats) float64) func() float64 {
		return func() float64 { return get(m.replicaSnap(s)) }
	}
	reg.GaugeFunc("gss_oplog_next_seq", "Next operation-log sequence number to be assigned.",
		logG(func(st ReplicaStats) float64 {
			if st.Log != nil {
				return float64(st.Log.NextSeq)
			}
			return 0
		}))
	reg.GaugeFunc("gss_oplog_oldest_seq", "Oldest operation-log sequence still retained.",
		logG(func(st ReplicaStats) float64 {
			if st.Log != nil {
				return float64(st.Log.OldestSeq)
			}
			return 0
		}))
	reg.GaugeFunc("gss_oplog_segments", "Operation-log segment files on disk.",
		logG(func(st ReplicaStats) float64 {
			if st.Log != nil {
				return float64(st.Log.Segments)
			}
			return 0
		}))
	reg.GaugeFunc("gss_oplog_size_bytes", "Total operation-log bytes on disk.",
		logG(func(st ReplicaStats) float64 {
			if st.Log != nil {
				return float64(st.Log.SizeBytes)
			}
			return 0
		}))
	reg.CounterFunc("gss_oplog_appended_items_total", "Items appended to the operation log.",
		logC(func(st ReplicaStats) int64 {
			if st.Log != nil {
				return st.Log.AppendedItems
			}
			return 0
		}))
	reg.CounterFunc("gss_oplog_syncs_total", "fsyncs the operation log issued.",
		logC(func(st ReplicaStats) int64 {
			if st.Log != nil {
				return st.Log.Syncs
			}
			return 0
		}))
	reg.CounterFunc("gss_checkpoint_written_total", "Durable checkpoints written.",
		logC(func(st ReplicaStats) int64 {
			if st.Checkpoint != nil {
				return st.Checkpoint.Written
			}
			return 0
		}))
	reg.CounterFunc("gss_checkpoint_failed_total", "Checkpoint attempts that failed.",
		logC(func(st ReplicaStats) int64 {
			if st.Checkpoint != nil {
				return st.Checkpoint.Failed
			}
			return 0
		}))
	reg.GaugeFunc("gss_checkpoint_last_unix", "Unix time of the newest checkpoint (0 when none).",
		logG(func(st ReplicaStats) float64 {
			if st.Checkpoint != nil {
				return float64(st.Checkpoint.LastUnix)
			}
			return 0
		}))
	reg.GaugeFunc("gss_replica_lag_items", "Items the follower is behind the primary's log.",
		logG(func(st ReplicaStats) float64 {
			if st.Follower != nil {
				return float64(st.Follower.LagItems)
			}
			return 0
		}))
	reg.GaugeFunc("gss_replica_lag_bytes", "Bytes the follower is behind the primary's log.",
		logG(func(st ReplicaStats) float64 {
			if st.Follower != nil {
				return float64(st.Follower.LagBytes)
			}
			return 0
		}))
	reg.GaugeFunc("gss_replica_log_seq", "Log sequence the follower has applied through.",
		logG(func(st ReplicaStats) float64 {
			if st.Follower != nil {
				return float64(st.Follower.LogSeq)
			}
			return 0
		}))
	reg.GaugeFunc("gss_replica_staleness_ms", "Milliseconds since the follower last applied from the primary.",
		logG(func(st ReplicaStats) float64 {
			if st.Follower != nil {
				return float64(st.Follower.StalenessMs)
			}
			return 0
		}))
	reg.CounterFunc("gss_replica_snapshot_fallbacks_total", "Times a tailing follower fell back to a full snapshot fetch.",
		logC(func(st ReplicaStats) int64 {
			if st.Follower != nil {
				return st.Follower.SnapshotFallbacks
			}
			return 0
		}))
	reg.CounterFunc("gss_replica_tailed_items_total", "Items the follower applied by tailing the primary's log.",
		logC(func(st ReplicaStats) int64 {
			if st.Follower != nil {
				return st.Follower.TailedItems
			}
			return 0
		}))
	reg.GaugeFunc("gss_replica_replayed_items", "Log items startup recovery replayed on top of the recovered checkpoint.",
		func() float64 { return float64(s.replayed.Load()) })
	return m
}

// plane selects the counter set for one ingest request.
func (m *serverMetrics) plane(binary bool) *planeStats {
	if binary {
		return &m.gsb1
	}
	return &m.ndjson
}

// sketchStats returns the cached sketch snapshot, refreshing it at
// most once per statsTTL.
func (m *serverMetrics) sketchStats(s *Server) gss.Stats {
	m.sketchMu.Lock()
	defer m.sketchMu.Unlock()
	if now := time.Now(); now.Sub(m.sketchAt) > statsTTL {
		m.sketch = s.sk.Stats()
		m.sketchAt = now
	}
	return m.sketch
}

// replicaSnap is sketchStats for the replication subsystems.
func (m *serverMetrics) replicaSnap(s *Server) ReplicaStats {
	m.replMu.Lock()
	defer m.replMu.Unlock()
	if now := time.Now(); now.Sub(m.replAt) > statsTTL {
		m.repl = s.replicaStats()
		m.replAt = now
	}
	return m.repl
}

// countingReader counts body bytes into a plane's bytes counter as the
// decoders pull them — per-Read atomic adds, amortized over the
// decoder's internal buffering.
type countingReader struct {
	r io.Reader
	c *telemetry.Counter
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.c.Add(int64(n))
	}
	return n, err
}
