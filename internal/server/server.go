// Package server exposes a Graph Stream Sketch over HTTP, the way a
// monitoring pipeline would deploy it: collectors POST stream items,
// dashboards and responders GET queries, and operators snapshot or
// restore the sketch for fail-over. All handlers are JSON except the
// binary snapshot endpoints.
//
//	POST /insert        {"src":"a","dst":"b","weight":1}  (or an array)
//	POST /ingest        NDJSON bulk ingest, one item per line
//	POST /ingest?async=1  enqueue to the worker pool; 429 when full
//	GET  /ingest/stats  ingest pipeline counters and queue depth
//	GET  /edge?src=a&dst=b
//	GET  /successors?v=a
//	GET  /precursors?v=a
//	GET  /nodes?limit=100   (limit=0 returns all; default 10000)
//	GET  /nodeout?v=a
//	GET  /nodein?v=a
//	GET  /reachable?src=a&dst=b
//	GET  /heavy?min=100
//	GET  /stats
//	GET  /snapshot      (binary sketch snapshot; X-Log-Seq on logging primaries)
//	GET  /log?from=N    (operation-log records for tailing followers)
//	POST /restore       (binary sketch snapshot)
//	POST /checkpoint    force a durable checkpoint (checkpointing servers)
//	GET  /replica/stats replication role, checkpoint and follower counters
//	GET  /healthz       liveness: role, backend name, uptime
//
// The sketch backend is selected at construction: "single" serializes
// everything through one global lock, "concurrent" allows parallel
// reads under a read-write lock, "sharded" partitions the sketch so
// ingestion itself runs in parallel, and "windowed" summarizes only a
// sliding window of recent stream time in bounded memory. All
// synchronization lives in the backend (see internal/sketch); handlers
// just call it.
//
// Items that arrive without a timestamp (or with time 0 — the wire
// form cannot tell them apart) are stamped with the server's arrival
// clock before insertion, so windowed backends rotate correctly even
// for producers that never set "time".
//
// Deployments that must survive restarts set Options.CheckpointDir: the
// server recovers from the newest valid checkpoint at startup and
// streams periodic snapshots to disk. Deployments that must scale reads
// set Options.FollowURL: the server becomes a read replica that polls
// the primary's /snapshot and answers 403 on every write endpoint (see
// replica.go and internal/replica).
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gss"
	"repro/internal/oplog"
	"repro/internal/query"
	"repro/internal/replica"
	"repro/internal/sketch"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Options configures the server's backend and ingest pipeline. The
// zero value means: concurrent backend (parallel reads, like the
// pre-pipeline server), batch size 512, a 64-batch async queue
// drained by 2 workers.
type Options struct {
	// Backend is the sketch synchronization strategy: "single",
	// "concurrent", "sharded" or "windowed" (default "concurrent";
	// "single" serializes reads too and exists as the benchmark
	// baseline).
	Backend string
	// Shards is the shard count for the sharded backend (default 8).
	Shards int
	// WindowSpan is the windowed backend's window length in
	// stream-time units (default sketch.DefaultWindowSpan).
	WindowSpan int64
	// WindowGenerations is the windowed backend's rotation granularity
	// (default sketch.DefaultWindowGenerations).
	WindowGenerations int
	// BatchSize is the default /ingest decode batch size, overridable
	// per request with ?batch=N (default 512).
	BatchSize int
	// QueueDepth is the async ingest queue capacity in batches
	// (default 64).
	QueueDepth int
	// Workers is the async ingest worker count (default 2).
	Workers int
	// Now reports the current stream time; items that arrive with no
	// timestamp are stamped with it so windowed backends rotate on
	// arrival time. Defaults to the Unix-seconds wall clock;
	// injectable for tests and replays. Handlers call it from
	// concurrent request goroutines, so an injected clock must be safe
	// for concurrent use.
	Now func() int64

	// LogDir enables the append-only operation log: every applied
	// insert/ingest batch is appended (and fsynced per LogSyncEvery)
	// before the request is acknowledged, startup recovery replays the
	// log from the newest checkpoint's sequence, and GET /log serves
	// the records so followers can tail deltas instead of re-fetching
	// snapshots. Empty disables the log. Mutually exclusive with
	// FollowURL — a follower replicates, it does not originate a log.
	LogDir string
	// LogSegmentBytes is the segment rotation threshold (default 8 MiB).
	LogSegmentBytes int64
	// LogSyncEvery is the fsync batching window: an append only forces
	// fsync when this much time passed since the last one (default
	// 50ms; <0 syncs every append). Crash loss is bounded by the
	// window; checkpoints and clean Close always sync.
	LogSyncEvery time.Duration

	// CheckpointDir enables durable checkpoints: the server recovers
	// from the newest valid checkpoint in this directory at startup
	// (corrupt ones are skipped with a warning) and periodically
	// snapshots the sketch into it. Empty disables checkpointing.
	CheckpointDir string
	// CheckpointInterval is the time between periodic checkpoints
	// (default 30s). Close always takes one final checkpoint.
	CheckpointInterval time.Duration
	// CheckpointKeep is how many checkpoints to retain (default 3).
	CheckpointKeep int

	// FollowURL makes this server a read replica of the primary at the
	// given base URL: it polls FollowURL/snapshot, hot-swaps each fetch
	// behind the read path, and rejects /insert, /ingest and /restore
	// with 403. A follower may still checkpoint (set CheckpointDir) to
	// be a warm spare with local durability. Empty means primary.
	FollowURL string
	// FollowInterval is the follower's poll interval (default 2s); the
	// first poll happens immediately, so a fresh follower serves
	// current reads within one interval.
	FollowInterval time.Duration
	// FollowTail makes the follower tail the primary's operation log
	// (GET /log) instead of re-fetching whole snapshots, falling back
	// to a snapshot fetch whenever its offset has been retired or the
	// primary serves no log.
	FollowTail bool

	// MaxRestoreBytes caps the /restore request body so a rogue client
	// cannot OOM the server (default 1 GiB).
	MaxRestoreBytes int64

	// Logf receives operational warnings (checkpoint failures, skipped
	// corrupt checkpoints, failed follower polls). Defaults to
	// log.Printf; inject to route or silence.
	Logf func(format string, args ...interface{})

	// Metrics is the registry the server registers its instruments in
	// and serves at GET /metrics. Nil means a fresh private registry —
	// tests and embedders that never scrape pay only the registration.
	Metrics *telemetry.Registry
	// SlowQuery, when non-nil, receives every request that ran past its
	// threshold, with the per-member span trace the middleware collects.
	// The server does not own it: the caller that built it closes it
	// after the server stops.
	SlowQuery *telemetry.SlowQueryLog
}

func (o Options) withDefaults() Options {
	if o.Backend == "" {
		o.Backend = sketch.BackendConcurrent
	}
	if o.Shards < 1 {
		o.Shards = 8
	}
	if o.BatchSize < 1 {
		o.BatchSize = 512
	}
	if o.QueueDepth < 1 {
		o.QueueDepth = 64
	}
	if o.Workers < 1 {
		o.Workers = 2
	}
	if o.Now == nil {
		o.Now = func() int64 { return time.Now().Unix() }
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = 30 * time.Second
	}
	if o.CheckpointKeep < 1 {
		o.CheckpointKeep = 3
	}
	if o.FollowInterval <= 0 {
		o.FollowInterval = 2 * time.Second
	}
	if o.MaxRestoreBytes < 1 {
		o.MaxRestoreBytes = 1 << 30
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Server serves a Sketch over HTTP.
type Server struct {
	sk    sketch.Sketch
	opt   Options
	start time.Time // construction time; /healthz reports uptime from it

	// pipeMu guards the lazily started async worker pool. A sync.Once
	// would be simpler, but Close must be able to ask "did it ever
	// start?" without starting it.
	pipeMu sync.Mutex
	pipe   *pipeline

	// restoreMu keeps /restore and follower snapshot swaps atomic with
	// respect to compound queries. Single-primitive handlers rely on
	// the backend's own synchronization, but /reachable and /nodeout
	// chain several primitives and must not see the sketch swapped
	// mid-chain.
	restoreMu sync.RWMutex

	// applyMu is the log/sketch consistency barrier on logging
	// primaries: appliers hold it shared around append+insert, and the
	// checkpoint snapshot holds it exclusively while capturing the log
	// sequence together with the sketch bytes — so replay from a
	// checkpoint's sequence never double-counts or misses a batch.
	applyMu sync.RWMutex
	olog    *oplog.Log
	// snapSeq is the log sequence captured with the latest checkpoint
	// snapshot, handed to the checkpointer's meta sidecar.
	snapSeq atomic.Uint64
	// replayed counts the log items startup recovery replayed.
	replayed atomic.Int64

	// Replication (see replica.go); nil unless configured in Options.
	ckpt *replica.Checkpointer
	fol  *replica.Follower
	hot  *sketch.Hot // the swappable read path, set in follower mode

	// met holds the /metrics instruments (see metrics.go); always set.
	met *serverMetrics
}

// New builds a Server around an empty concurrent sketch with default
// options.
func New(cfg gss.Config) (*Server, error) {
	return NewWithOptions(cfg, Options{})
}

// NewWithOptions builds a Server with the chosen backend, ingest
// pipeline and replication configuration. Checkpoint recovery happens
// here, before the first request can be served.
func NewWithOptions(cfg gss.Config, opt Options) (*Server, error) {
	opt = opt.withDefaults()
	build := func() (sketch.Sketch, error) {
		return sketch.New(opt.Backend, cfg, sketch.Options{
			Shards:            opt.Shards,
			WindowSpan:        opt.WindowSpan,
			WindowGenerations: opt.WindowGenerations,
		})
	}
	sk, err := build()
	if err != nil {
		return nil, err
	}
	s := NewFromSketch(sk, opt)
	if err := s.initReplication(build); err != nil {
		s.Close() // stop whatever partially started
		return nil, err
	}
	return s, nil
}

// NewFromSketch builds a Server around a caller-provided sketch. The
// sketch must be safe for concurrent use. Replication options are not
// wired here — building follower backends needs the sketch
// configuration, which only NewWithOptions has.
func NewFromSketch(sk sketch.Sketch, opt Options) *Server {
	s := &Server{sk: sk, opt: opt.withDefaults(), start: time.Now()}
	reg := s.opt.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s.met = newServerMetrics(s, reg, s.opt.SlowQuery)
	return s
}

// Metrics returns the registry the server's instruments live in — the
// one /metrics serves.
func (s *Server) Metrics() *telemetry.Registry { return s.met.reg }

// pipeline lazily starts the async worker pool on first use, so
// servers that never see an async ingest spawn no goroutines and need
// no Close.
func (s *Server) pipeline() *pipeline {
	s.pipeMu.Lock()
	defer s.pipeMu.Unlock()
	if s.pipe == nil {
		s.pipe = newPipeline(s.applyJob, s.opt.QueueDepth, s.opt.Workers)
	}
	return s.pipe
}

// applyBatch is the single write path behind every ingest route: on a
// logging primary the batch is appended to the operation log before it
// is inserted (and thus before the request is acknowledged), under the
// shared side of applyMu so checkpoints capture a consistent
// (snapshot, log sequence) pair. A log append failure is logged and
// the insert still happens — availability over replayability — but the
// torn batch was rolled back, so the log stays internally consistent.
func (s *Server) applyBatch(items []stream.Item) {
	if s.olog == nil {
		s.sk.InsertBatch(items)
		return
	}
	s.applyMu.RLock()
	defer s.applyMu.RUnlock()
	if _, _, err := s.olog.Append(items); err != nil {
		s.opt.Logf("server: oplog append: %v", err)
	}
	s.sk.InsertBatch(items)
}

// applyJob dispatches a pipeline job to its plane's applier.
func (s *Server) applyJob(job ingestJob) {
	if job.hashed != nil {
		s.applyHashedBatch(job)
		return
	}
	s.applyBatch(job.items)
}

// applyHashedBatch is applyBatch for the binary plane. When the job
// still carries its wire payload views, the log append is a straight
// byte copy (oplog.AppendEncoded); a stamped batch lost that shortcut
// and re-encodes. Either way the log holds identical bytes to what the
// string plane would have written, so replay and follower tailing see
// one log format. The append happens before the insert because the
// sketch may reorder the hashed batch in place.
func (s *Server) applyHashedBatch(job ingestJob) {
	if s.olog == nil {
		sketch.InsertHashedBatch(s.sk, job.hashed)
		return
	}
	s.applyMu.RLock()
	defer s.applyMu.RUnlock()
	if job.payloads != nil {
		if _, _, err := s.olog.AppendEncoded(job.payloads); err != nil {
			s.opt.Logf("server: oplog append: %v", err)
		}
	} else {
		if _, _, err := s.olog.Append(stream.StripHashed(job.hashed, nil)); err != nil {
			s.opt.Logf("server: oplog append: %v", err)
		}
	}
	sketch.InsertHashedBatch(s.sk, job.hashed)
}

// startedPipeline returns the worker pool if one has started, without
// starting it — Close and the stats endpoint must observe an idle
// server, not create work in it.
func (s *Server) startedPipeline() *pipeline {
	s.pipeMu.Lock()
	defer s.pipeMu.Unlock()
	return s.pipe
}

// Sketch returns the backing sketch (for embedding and tests).
func (s *Server) Sketch() sketch.Sketch { return s.sk }

// Close drains and stops the async ingest workers if any started, then
// stops the replication loops: the follower poller, and the
// checkpointer after one final checkpoint — taken after the ingest
// queue drained, so a clean shutdown persists every accepted item. The
// server must not receive requests afterwards.
func (s *Server) Close() {
	if p := s.startedPipeline(); p != nil {
		p.close()
	}
	if s.fol != nil {
		s.fol.Close()
	}
	if s.ckpt != nil {
		s.ckpt.Close()
	}
	// After the final checkpoint: everything the log still holds is
	// covered, and nothing appends anymore.
	if s.olog != nil {
		if err := s.olog.Close(); err != nil {
			s.opt.Logf("server: closing oplog: %v", err)
		}
	}
}

// Item is the JSON wire form of a stream item.
type Item struct {
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	Weight int64  `json:"weight"`
	Time   int64  `json:"time,omitempty"`
	Label  uint32 `json:"label,omitempty"`
}

// Handler returns the HTTP handler for the API. Every route goes
// through the telemetry middleware — request counts by status class,
// in-flight gauge, latency histogram, request-ID minting — which
// passes response bytes through untouched; the instrumented routes
// answer byte-for-byte what the bare handlers would.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(route string, h http.HandlerFunc) {
		mux.HandleFunc(route, s.met.http.Wrap(route, h))
	}
	handle("/insert", s.handleInsert)
	handle("/ingest", s.handleIngest)
	handle("/ingest/stats", s.handleIngestStats)
	handle("/edge", s.handleEdge)
	handle("/successors", s.handleNeighbors(true))
	handle("/precursors", s.handleNeighbors(false))
	handle("/nodes", s.handleNodes)
	handle("/nodeout", s.handleNodeOut)
	handle("/nodein", s.handleNodeIn)
	handle("/reachable", s.handleReachable)
	handle("/heavy", s.handleHeavy)
	handle("/stats", s.handleStats)
	handle("/snapshot", s.handleSnapshot)
	handle("/log", s.handleLog)
	handle("/partition/export", s.handlePartitionExport)
	handle("/partition/drop", s.handlePartitionDrop)
	handle("/partition/absorb", s.handlePartitionAbsorb)
	handle("/restore", s.handleRestore)
	handle("/checkpoint", s.handleCheckpoint)
	handle("/replica/stats", s.handleReplicaStats)
	handle("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.met.reg.Handler())
	return mux
}

// Healthz is the /healthz payload: a k8s-style liveness answer that also
// tells a prober (the cluster router, an orchestrator) what it is
// talking to — a primary or a read-only follower — and which backend is
// behind it.
type Healthz struct {
	Status        string `json:"status"` // always "ok" when the handler answers
	Role          string `json:"role"`   // "primary" or "follower"
	Backend       string `json:"backend"`
	UptimeSeconds int64  `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	role := "primary"
	if s.follower() {
		role = "follower"
	}
	writeJSON(w, Healthz{
		Status:        "ok",
		Role:          role,
		Backend:       s.opt.Backend,
		UptimeSeconds: int64(time.Since(s.start).Seconds()),
	})
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	dec := json.NewDecoder(r.Body)
	var batch []Item
	// Accept a single object or an array.
	tok, err := dec.Token()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if delim, ok := tok.(json.Delim); ok && delim == '[' {
		for dec.More() {
			it := Item{Weight: 1} // omitted weight means one observation
			if err := dec.Decode(&it); err != nil {
				httpError(w, http.StatusBadRequest, "bad item: %v", err)
				return
			}
			batch = append(batch, it)
		}
	} else {
		// Re-decode the single object: simplest is to re-read from the
		// token stream by hand.
		it := Item{Weight: 1}
		if err := decodeObjectAfterBrace(dec, tok, &it); err != nil {
			httpError(w, http.StatusBadRequest, "bad item: %v", err)
			return
		}
		batch = append(batch, it)
	}
	for _, it := range batch {
		if it.Src == "" || it.Dst == "" {
			httpError(w, http.StatusBadRequest, "src and dst are required")
			return
		}
	}
	items := make([]stream.Item, len(batch))
	for i, it := range batch {
		items[i] = stream.Item{Src: it.Src, Dst: it.Dst, Weight: it.Weight,
			Time: it.Time, Label: it.Label}
	}
	s.stampArrival(items)
	s.applyBatch(items)
	writeJSON(w, map[string]int{"inserted": len(batch)})
}

// stampArrival fills in the arrival time on items that carry no
// timestamp. The JSON wire form cannot distinguish an absent "time"
// from an explicit 0, so time 0 means "now". Windowed backends need
// every item timed to rotate generations; whole-stream backends ignore
// the field. Every ingest path — /insert, sync and async /ingest —
// stamps before handing items to the sketch, so the async worker pool
// sees arrival times, not enqueue-drain times.
func (s *Server) stampArrival(items []stream.Item) {
	var now int64
	stamped := false
	for i := range items {
		if items[i].Time != 0 {
			continue
		}
		if !stamped {
			now, stamped = s.opt.Now(), true
		}
		items[i].Time = now
	}
}

// stampArrivalHashed is stampArrival for pre-hashed batches (the
// hashes do not cover the timestamp, so stamping is safe). It reports
// whether anything was stamped — the signal that the batch's wire
// payload bytes went stale for logging.
func (s *Server) stampArrivalHashed(items []stream.HashedItem) bool {
	var now int64
	stamped := false
	for i := range items {
		if items[i].Time != 0 {
			continue
		}
		if !stamped {
			now, stamped = s.opt.Now(), true
		}
		items[i].Time = now
	}
	return stamped
}

// decodeObjectAfterBrace finishes decoding a JSON object whose opening
// '{' token has already been consumed.
func decodeObjectAfterBrace(dec *json.Decoder, open json.Token, it *Item) error {
	if delim, ok := open.(json.Delim); !ok || delim != '{' {
		return fmt.Errorf("expected object or array, got %v", open)
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key, _ := keyTok.(string)
		switch key {
		case "src":
			if err := dec.Decode(&it.Src); err != nil {
				return err
			}
		case "dst":
			if err := dec.Decode(&it.Dst); err != nil {
				return err
			}
		case "weight":
			if err := dec.Decode(&it.Weight); err != nil {
				return err
			}
		case "time":
			if err := dec.Decode(&it.Time); err != nil {
				return err
			}
		case "label":
			if err := dec.Decode(&it.Label); err != nil {
				return err
			}
		default:
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return err
			}
		}
	}
	_, err := dec.Token() // closing brace
	return err
}

func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		httpError(w, http.StatusBadRequest, "src and dst are required")
		return
	}
	weight, ok := s.sk.EdgeWeight(src, dst)
	writeJSON(w, map[string]interface{}{"src": src, "dst": dst, "weight": weight, "found": ok})
}

func (s *Server) handleNeighbors(successors bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v := r.URL.Query().Get("v")
		if v == "" {
			httpError(w, http.StatusBadRequest, "v is required")
			return
		}
		var nodes []string
		if successors {
			nodes = s.sk.Successors(v)
		} else {
			nodes = s.sk.Precursors(v)
		}
		if nodes == nil {
			nodes = []string{}
		}
		writeJSON(w, map[string]interface{}{"v": v, "nodes": nodes})
	}
}

// defaultNodesLimit caps /nodes responses unless the client overrides
// it: a million-node sketch must not serialize (or sort) its whole node
// set because a dashboard polled the endpoint.
const defaultNodesLimit = 10000

func (s *Server) handleNodes(w http.ResponseWriter, r *http.Request) {
	limit := defaultNodesLimit
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "limit must be a non-negative integer (0 = unlimited)")
			return
		}
		limit = n
	}
	nodes, total := s.nodesPage(limit)
	if nodes == nil {
		nodes = []string{}
	}
	writeJSON(w, map[string]interface{}{
		"nodes":     nodes,
		"total":     total,
		"truncated": len(nodes) < total,
	})
}

// nodesPage returns up to limit node identifiers (0 = all) and the
// total count. Hash-capable backends enumerate the registry without
// sorting the full identifier set: the hash list is sorted (cheap
// integers) so the page cut is deterministic per sketch state, but
// only the returned page of strings is sorted — a bounded request
// against a huge sketch costs O(nodes log nodes) integer work plus
// O(limit log limit) string work, not a full-set string sort. Clients
// that need the full set pass limit=0.
func (s *Server) nodesPage(limit int) ([]string, int) {
	if hq, ok := query.HashView(s.sk); ok {
		hashes := hq.AppendNodeHashes(nil)
		slices.Sort(hashes)
		var nodes []string
		total := 0
		for _, hv := range hashes {
			mark := len(nodes)
			nodes = hq.AppendHashIDs(hv, nodes)
			total += len(nodes) - mark
			if limit > 0 && len(nodes) > limit {
				nodes = nodes[:limit]
			}
		}
		sort.Strings(nodes)
		return nodes, total
	}
	nodes := s.sk.Nodes()
	total := len(nodes)
	if limit > 0 && total > limit {
		nodes = nodes[:limit]
	}
	return nodes, total
}

func (s *Server) handleNodeOut(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("v")
	if v == "" {
		httpError(w, http.StatusBadRequest, "v is required")
		return
	}
	s.restoreMu.RLock()
	total := query.NodeOut(s.sk, v)
	s.restoreMu.RUnlock()
	writeJSON(w, map[string]interface{}{"v": v, "out": total})
}

func (s *Server) handleNodeIn(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("v")
	if v == "" {
		httpError(w, http.StatusBadRequest, "v is required")
		return
	}
	s.restoreMu.RLock()
	total := query.NodeIn(s.sk, v)
	s.restoreMu.RUnlock()
	writeJSON(w, map[string]interface{}{"v": v, "in": total})
}

func (s *Server) handleReachable(w http.ResponseWriter, r *http.Request) {
	src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		httpError(w, http.StatusBadRequest, "src and dst are required")
		return
	}
	s.restoreMu.RLock()
	ok := query.Reachable(s.sk, src, dst)
	s.restoreMu.RUnlock()
	writeJSON(w, map[string]interface{}{"src": src, "dst": dst, "reachable": ok})
}

func (s *Server) handleHeavy(w http.ResponseWriter, r *http.Request) {
	min, err := strconv.ParseInt(r.URL.Query().Get("min"), 10, 64)
	if err != nil || min <= 0 {
		httpError(w, http.StatusBadRequest, "positive integer min is required")
		return
	}
	heavy := s.sk.HeavyEdges(min)
	type edge struct {
		Srcs   []string `json:"srcs"`
		Dsts   []string `json:"dsts"`
		Weight int64    `json:"weight"`
	}
	out := make([]edge, 0, len(heavy))
	for _, he := range heavy {
		out = append(out, edge{Srcs: he.Srcs, Dsts: he.Dsts, Weight: he.Weight})
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.sk.Stats())
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// Buffer the whole snapshot before touching the ResponseWriter: a
	// mid-stream Snapshot error after the first write would otherwise
	// produce a truncated body under a committed 200, and a follower or
	// checkpoint consumer would ingest a torn snapshot. Buffering also
	// yields a Content-Length, so clients detect truncated transfers.
	// On a logging primary, the buffer fills under the apply barrier so
	// the X-Log-Seq header names exactly the sequence this body covers
	// — the offset a tailing follower resumes from.
	var buf bytes.Buffer
	var seq uint64
	var err error
	if s.olog != nil {
		s.applyMu.Lock()
		seq = s.olog.NextSeq()
		err = s.sk.Snapshot(&buf)
		s.applyMu.Unlock()
	} else {
		err = s.sk.Snapshot(&buf)
	}
	if err != nil {
		httpError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	if s.olog != nil {
		w.Header().Set("X-Log-Seq", strconv.FormatUint(seq, 10))
	}
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Buffer the snapshot before taking restoreMu so a slow upload
	// cannot stall the compound-query handlers sharing the lock. The
	// body is capped: an unbounded read would hand any client an OOM
	// lever.
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxRestoreBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"snapshot exceeds %d bytes", tooBig.Limit)
			return
		}
		httpError(w, http.StatusBadRequest, "reading snapshot: %v", err)
		return
	}
	if s.olog != nil {
		// A restore replaces state wholesale, so the log's history no
		// longer leads to it: seal and retire everything logged so far
		// (sequence numbering continues) under the apply barrier, then
		// checkpoint so crash recovery restarts from the restored state
		// rather than replaying the pre-restore log.
		s.applyMu.Lock()
		s.restoreMu.Lock()
		err = s.sk.Restore(bytes.NewReader(data))
		if err == nil {
			if rerr := s.olog.Rotate(); rerr != nil {
				s.opt.Logf("server: rotating oplog after restore: %v", rerr)
			}
			s.olog.Retain(s.olog.NextSeq())
		}
		s.restoreMu.Unlock()
		s.applyMu.Unlock()
		if err == nil {
			if s.ckpt != nil {
				if _, cerr := s.ckpt.CheckpointNow(); cerr != nil {
					s.opt.Logf("server: checkpoint after restore: %v", cerr)
				}
			} else {
				s.opt.Logf("server: restored without a checkpoint dir: a crash before the log refills loses the restored state")
			}
		}
	} else {
		s.restoreMu.Lock()
		err = s.sk.Restore(bytes.NewReader(data))
		s.restoreMu.Unlock()
	}
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad snapshot: %v", err)
		return
	}
	writeJSON(w, map[string]string{"status": "restored"})
}

// maxLogBatch bounds one /log response; clients page with ?from=.
const maxLogBatch = 1 << 16

// handleLog (GET /log?from=N&max=M) streams operation-log records
// [from, from+M) in the GSS1 binary stream format. Response headers:
// X-Log-From echoes from, X-Log-Next is the sequence after the last
// returned record (the next ?from to poll), X-Log-End is the log's
// current end. 410 Gone means from was retired (re-sync from
// /snapshot, whose X-Log-Seq gives the resume offset); 416 means from
// is beyond the end; 404 means this server keeps no log.
func (s *Server) handleLog(w http.ResponseWriter, r *http.Request) {
	if s.olog == nil {
		httpError(w, http.StatusNotFound, "no operation log on this server")
		return
	}
	var from uint64
	if raw := r.URL.Query().Get("from"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "from must be a non-negative integer")
			return
		}
		from = n
	}
	max := 8192
	if raw := r.URL.Query().Get("max"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > maxLogBatch {
			httpError(w, http.StatusBadRequest, "max must be an integer in [1,%d]", maxLogBatch)
			return
		}
		max = n
	}
	var buf bytes.Buffer
	sw := stream.NewWriter(&buf)
	next, err := s.olog.ReadFrom(from, max, sw.WriteItem)
	switch {
	case err == oplog.ErrRetired:
		w.Header().Set("X-Log-Oldest", strconv.FormatUint(s.olog.OldestSeq(), 10))
		httpError(w, http.StatusGone,
			"offset %d has been retired (oldest retained: %d); re-sync from /snapshot", from, s.olog.OldestSeq())
		return
	case err == oplog.ErrFuture:
		httpError(w, http.StatusRequestedRangeNotSatisfiable,
			"offset %d is beyond the log end %d", from, s.olog.NextSeq())
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, "reading log: %v", err)
		return
	}
	if err := sw.Flush(); err != nil {
		httpError(w, http.StatusInternalServerError, "encoding log: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.Header().Set("X-Log-From", strconv.FormatUint(from, 10))
	w.Header().Set("X-Log-Next", strconv.FormatUint(next, 10))
	w.Header().Set("X-Log-End", strconv.FormatUint(s.olog.NextSeq(), 10))
	_, _ = w.Write(buf.Bytes())
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeBody encodes v after the caller has already written the status
// code and headers.
func writeBody(w http.ResponseWriter, v interface{}) {
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
