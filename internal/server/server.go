// Package server exposes a Graph Stream Sketch over HTTP, the way a
// monitoring pipeline would deploy it: collectors POST stream items,
// dashboards and responders GET queries, and operators snapshot or
// restore the sketch for fail-over. All handlers are JSON except the
// binary snapshot endpoints.
//
//	POST /insert       {"src":"a","dst":"b","weight":1}  (or an array)
//	GET  /edge?src=a&dst=b
//	GET  /successors?v=a
//	GET  /precursors?v=a
//	GET  /nodeout?v=a
//	GET  /reachable?src=a&dst=b
//	GET  /heavy?min=100
//	GET  /stats
//	GET  /snapshot     (binary sketch snapshot)
//	POST /restore      (binary sketch snapshot)
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/gss"
	"repro/internal/query"
	"repro/internal/stream"
)

// Server wraps a GSS with an HTTP API. Reads take a shared lock so
// queries run concurrently; inserts and restore take it exclusively.
type Server struct {
	mu sync.RWMutex
	g  *gss.GSS
}

// New builds a Server around an empty sketch.
func New(cfg gss.Config) (*Server, error) {
	g, err := gss.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{g: g}, nil
}

// Item is the JSON wire form of a stream item.
type Item struct {
	Src    string `json:"src"`
	Dst    string `json:"dst"`
	Weight int64  `json:"weight"`
	Time   int64  `json:"time,omitempty"`
	Label  uint32 `json:"label,omitempty"`
}

// Handler returns the HTTP handler for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/insert", s.handleInsert)
	mux.HandleFunc("/edge", s.handleEdge)
	mux.HandleFunc("/successors", s.handleNeighbors(true))
	mux.HandleFunc("/precursors", s.handleNeighbors(false))
	mux.HandleFunc("/nodeout", s.handleNodeOut)
	mux.HandleFunc("/reachable", s.handleReachable)
	mux.HandleFunc("/heavy", s.handleHeavy)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/snapshot", s.handleSnapshot)
	mux.HandleFunc("/restore", s.handleRestore)
	return mux
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	dec := json.NewDecoder(r.Body)
	var batch []Item
	// Accept a single object or an array.
	tok, err := dec.Token()
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	if delim, ok := tok.(json.Delim); ok && delim == '[' {
		for dec.More() {
			var it Item
			if err := dec.Decode(&it); err != nil {
				httpError(w, http.StatusBadRequest, "bad item: %v", err)
				return
			}
			batch = append(batch, it)
		}
	} else {
		// Re-decode the single object: simplest is to re-read from the
		// token stream by hand.
		var it Item
		if err := decodeObjectAfterBrace(dec, tok, &it); err != nil {
			httpError(w, http.StatusBadRequest, "bad item: %v", err)
			return
		}
		batch = append(batch, it)
	}
	for _, it := range batch {
		if it.Src == "" || it.Dst == "" {
			httpError(w, http.StatusBadRequest, "src and dst are required")
			return
		}
	}
	s.mu.Lock()
	for _, it := range batch {
		s.g.Insert(stream.Item{Src: it.Src, Dst: it.Dst, Weight: it.Weight,
			Time: it.Time, Label: it.Label})
	}
	s.mu.Unlock()
	writeJSON(w, map[string]int{"inserted": len(batch)})
}

// decodeObjectAfterBrace finishes decoding a JSON object whose opening
// '{' token has already been consumed.
func decodeObjectAfterBrace(dec *json.Decoder, open json.Token, it *Item) error {
	if delim, ok := open.(json.Delim); !ok || delim != '{' {
		return fmt.Errorf("expected object or array, got %v", open)
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return err
		}
		key, _ := keyTok.(string)
		switch key {
		case "src":
			if err := dec.Decode(&it.Src); err != nil {
				return err
			}
		case "dst":
			if err := dec.Decode(&it.Dst); err != nil {
				return err
			}
		case "weight":
			if err := dec.Decode(&it.Weight); err != nil {
				return err
			}
		case "time":
			if err := dec.Decode(&it.Time); err != nil {
				return err
			}
		case "label":
			if err := dec.Decode(&it.Label); err != nil {
				return err
			}
		default:
			var skip json.RawMessage
			if err := dec.Decode(&skip); err != nil {
				return err
			}
		}
	}
	_, err := dec.Token() // closing brace
	return err
}

func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		httpError(w, http.StatusBadRequest, "src and dst are required")
		return
	}
	s.mu.RLock()
	weight, ok := s.g.EdgeWeight(src, dst)
	s.mu.RUnlock()
	writeJSON(w, map[string]interface{}{"src": src, "dst": dst, "weight": weight, "found": ok})
}

func (s *Server) handleNeighbors(successors bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		v := r.URL.Query().Get("v")
		if v == "" {
			httpError(w, http.StatusBadRequest, "v is required")
			return
		}
		s.mu.RLock()
		var nodes []string
		if successors {
			nodes = s.g.Successors(v)
		} else {
			nodes = s.g.Precursors(v)
		}
		s.mu.RUnlock()
		if nodes == nil {
			nodes = []string{}
		}
		writeJSON(w, map[string]interface{}{"v": v, "nodes": nodes})
	}
}

func (s *Server) handleNodeOut(w http.ResponseWriter, r *http.Request) {
	v := r.URL.Query().Get("v")
	if v == "" {
		httpError(w, http.StatusBadRequest, "v is required")
		return
	}
	s.mu.RLock()
	total := query.NodeOut(s.g, v)
	s.mu.RUnlock()
	writeJSON(w, map[string]interface{}{"v": v, "out": total})
}

func (s *Server) handleReachable(w http.ResponseWriter, r *http.Request) {
	src, dst := r.URL.Query().Get("src"), r.URL.Query().Get("dst")
	if src == "" || dst == "" {
		httpError(w, http.StatusBadRequest, "src and dst are required")
		return
	}
	s.mu.RLock()
	ok := query.Reachable(s.g, src, dst)
	s.mu.RUnlock()
	writeJSON(w, map[string]interface{}{"src": src, "dst": dst, "reachable": ok})
}

func (s *Server) handleHeavy(w http.ResponseWriter, r *http.Request) {
	min, err := strconv.ParseInt(r.URL.Query().Get("min"), 10, 64)
	if err != nil || min <= 0 {
		httpError(w, http.StatusBadRequest, "positive integer min is required")
		return
	}
	s.mu.RLock()
	heavy := s.g.HeavyEdges(min)
	s.mu.RUnlock()
	type edge struct {
		Srcs   []string `json:"srcs"`
		Dsts   []string `json:"dsts"`
		Weight int64    `json:"weight"`
	}
	out := make([]edge, 0, len(heavy))
	for _, he := range heavy {
		out = append(out, edge{Srcs: he.Srcs, Dsts: he.Dsts, Weight: he.Weight})
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	st := s.g.Stats()
	s.mu.RUnlock()
	writeJSON(w, st)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/octet-stream")
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, err := s.g.WriteTo(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	g, err := gss.ReadSketch(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad snapshot: %v", err)
		return
	}
	s.mu.Lock()
	s.g = g
	s.mu.Unlock()
	writeJSON(w, map[string]string{"status": "restored"})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
