package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gss"
	"repro/internal/sketch"
	"repro/internal/stream"
)

func newIngestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewWithOptions(
		gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}, opt)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

func ndjson(t *testing.T, items []stream.Item) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := stream.EncodeNDJSON(&buf, items); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestIngestEndToEnd is the full bulk path: NDJSON upload through the
// sharded backend, then every query endpoint agrees with ground truth.
func TestIngestEndToEnd(t *testing.T) {
	_, ts := newIngestServer(t, Options{Backend: sketch.BackendSharded, Shards: 4, BatchSize: 64})
	items := stream.Generate(stream.DatasetConfig{Name: "e2e", Nodes: 100, Edges: 2000,
		DegreeSkew: 1.4, WeightSkew: 1.2, MaxWeight: 50, Seed: 5})

	resp := post(t, ts.URL+"/ingest", ndjson(t, items).String())
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest status %d: %s", resp.StatusCode, b)
	}
	var ack struct {
		Mode     string `json:"mode"`
		Ingested int64  `json:"ingested"`
		Batches  int64  `json:"batches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Mode != "sync" || ack.Ingested != int64(len(items)) {
		t.Fatalf("ack = %+v, want %d items", ack, len(items))
	}
	if want := int64((len(items) + 63) / 64); ack.Batches != want {
		t.Fatalf("batches = %d, want %d", ack.Batches, want)
	}

	// Ground-truth totals per edge.
	truth := map[[2]string]int64{}
	for _, it := range items {
		truth[[2]string{it.Src, it.Dst}] += it.Weight
	}
	var edge struct {
		Weight int64 `json:"weight"`
		Found  bool  `json:"found"`
	}
	for k, want := range truth {
		getJSON(t, fmt.Sprintf("%s/edge?src=%s&dst=%s", ts.URL, k[0], k[1]), &edge)
		if !edge.Found || edge.Weight < want {
			t.Fatalf("edge %v = %+v, want >= %d", k, edge, want)
		}
	}
	var st gss.Stats
	getJSON(t, ts.URL+"/stats", &st)
	if st.Items != int64(len(items)) {
		t.Fatalf("stats items = %d, want %d", st.Items, len(items))
	}
}

func TestIngestBatchParamAndErrors(t *testing.T) {
	_, ts := newIngestServer(t, Options{})
	// Per-request batch override shows up in the batch count.
	items := make([]stream.Item, 10)
	for i := range items {
		items[i] = stream.Item{Src: "a", Dst: stream.NodeID(i), Weight: 1}
	}
	resp := post(t, ts.URL+"/ingest?batch=3", ndjson(t, items).String())
	var ack struct {
		Batches int64 `json:"batches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ack.Batches != 4 { // 3+3+3+1
		t.Fatalf("batches = %d, want 4", ack.Batches)
	}

	for _, bad := range []string{"/ingest?batch=0", "/ingest?batch=abc",
		"/ingest?batch=999999999", "/ingest?async=maybe"} {
		resp := post(t, ts.URL+bad, `{"src":"a","dst":"b"}`)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	// GET is not allowed.
	resp2, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest status %d", resp2.StatusCode)
	}
	// A bad line mid-stream: 400 naming the line, earlier items kept.
	resp3 := post(t, ts.URL+"/ingest", "{\"src\":\"x\",\"dst\":\"y\"}\nnope\n")
	body, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "line 2") {
		t.Fatalf("mid-stream error: status %d body %s", resp3.StatusCode, body)
	}
	var edge struct {
		Found bool `json:"found"`
	}
	getJSON(t, ts.URL+"/edge?src=x&dst=y", &edge)
	if !edge.Found {
		t.Fatal("items before the bad line were not ingested")
	}
}

// blockingSketch wraps a Sketch, parking every InsertBatch until
// released — a deterministic stand-in for slow ingestion so the async
// queue can be filled at will.
type blockingSketch struct {
	sketch.Sketch
	entered chan struct{} // signaled when a worker enters InsertBatch
	release chan struct{} // closed to let workers proceed
}

func (b *blockingSketch) InsertBatch(items []stream.Item) {
	b.entered <- struct{}{}
	<-b.release
	b.Sketch.InsertBatch(items)
}

func TestIngestAsyncBackpressure429(t *testing.T) {
	inner, err := sketch.New(sketch.BackendConcurrent,
		gss.Config{Width: 32, SeqLen: 4, Candidates: 4}, sketch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	blocking := &blockingSketch{Sketch: inner,
		entered: make(chan struct{}, 16), release: make(chan struct{})}
	// One worker, queue capacity 1: the worker parks on the first
	// batch, the second batch fills the queue, the third must get 429.
	s := NewFromSketch(blocking, Options{QueueDepth: 1, Workers: 1, BatchSize: 8})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	postBatch := func(src string) *http.Response {
		items := []stream.Item{{Src: src, Dst: "d", Weight: 1}}
		return post(t, ts.URL+"/ingest?async=1", ndjson(t, items).String())
	}

	resp1 := postBatch("a")
	resp1.Body.Close()
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first async ingest status %d, want 202", resp1.StatusCode)
	}
	<-blocking.entered // worker is now parked inside InsertBatch

	resp2 := postBatch("b") // sits in the queue
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second async ingest status %d, want 202", resp2.StatusCode)
	}

	resp3 := postBatch("c") // queue full -> backpressure
	body, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third async ingest status %d, want 429 (body %s)", resp3.StatusCode, body)
	}
	if ra, err := strconv.Atoi(resp3.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want integer seconds >= 1", resp3.Header.Get("Retry-After"))
	}
	var rej struct {
		Error   string `json:"error"`
		Dropped int64  `json:"dropped"`
	}
	if err := json.Unmarshal(body, &rej); err != nil {
		t.Fatal(err)
	}
	if rej.Error == "" || rej.Dropped != 1 {
		t.Fatalf("429 body = %+v", rej)
	}

	var st IngestStats
	getJSON(t, ts.URL+"/ingest/stats", &st)
	if st.DroppedBatches != 1 || st.DroppedItems != 1 || st.EnqueuedItems != 2 {
		t.Fatalf("ingest stats = %+v", st)
	}
	if st.QueueCapacity != 1 || st.Workers != 1 {
		t.Fatalf("ingest config stats = %+v", st)
	}

	// Release the workers; both accepted batches must land.
	close(blocking.release)
	drainEntered(blocking.entered)
	s.Close()
	if got := s.Sketch().Stats().Items; got != 2 {
		t.Fatalf("items after drain = %d, want 2", got)
	}
	getJSON(t, ts.URL+"/ingest/stats", &st)
	if st.ProcessedItems != 2 || st.PendingItems != 0 {
		t.Fatalf("post-drain stats = %+v", st)
	}
}

func drainEntered(ch chan struct{}) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// TestIngestAsyncDrains checks the happy async path: 202 on accept,
// and the queue drains into queryable state.
func TestIngestAsyncDrains(t *testing.T) {
	s, ts := newIngestServer(t, Options{Backend: sketch.BackendSharded, Shards: 4,
		BatchSize: 32, QueueDepth: 16, Workers: 2})
	items := stream.Generate(stream.DatasetConfig{Name: "async", Nodes: 50, Edges: 500,
		DegreeSkew: 1.3, WeightSkew: 1.1, MaxWeight: 20, Seed: 8})
	resp := post(t, ts.URL+"/ingest?async=1", ndjson(t, items).String())
	var ack struct {
		Mode     string `json:"mode"`
		Enqueued int64  `json:"enqueued"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || ack.Mode != "async" || ack.Enqueued != int64(len(items)) {
		t.Fatalf("async ack: status %d body %+v", resp.StatusCode, ack)
	}
	// Wait for the pipeline to drain (bounded).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if s.Sketch().Stats().Items == int64(len(items)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline did not drain: %d/%d items", s.Sketch().Stats().Items, len(items))
		}
		time.Sleep(5 * time.Millisecond)
	}
	var st IngestStats
	getJSON(t, ts.URL+"/ingest/stats", &st)
	if st.ProcessedItems != int64(len(items)) || st.DroppedItems != 0 {
		t.Fatalf("ingest stats = %+v", st)
	}
}

// TestIngestConcurrentBulkClients hammers /ingest from several
// goroutines against the sharded backend; totals must be exact.
func TestIngestConcurrentBulkClients(t *testing.T) {
	s, ts := newIngestServer(t, Options{Backend: sketch.BackendSharded, Shards: 8, BatchSize: 50})
	const clients = 4
	items := stream.Generate(stream.DatasetConfig{Name: "conc", Nodes: 200, Edges: 4000,
		DegreeSkew: 1.5, WeightSkew: 1.2, MaxWeight: 30, Seed: 13})
	per := len(items) / clients
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		chunk := items[c*per : (c+1)*per]
		wg.Add(1)
		go func(chunk []stream.Item) {
			defer wg.Done()
			var buf bytes.Buffer
			if err := stream.EncodeNDJSON(&buf, chunk); err != nil {
				t.Error(err)
				return
			}
			resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", &buf)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
			}
		}(chunk)
	}
	wg.Wait()
	if got := s.Sketch().Stats().Items; got != int64(per*clients) {
		t.Fatalf("items = %d, want %d", got, per*clients)
	}
}

func TestBackendSelector(t *testing.T) {
	for _, backend := range sketch.Backends() {
		_, ts := newIngestServer(t, Options{Backend: backend, Shards: 2})
		resp := post(t, ts.URL+"/insert", `{"src":"a","dst":"b","weight":5}`)
		resp.Body.Close()
		var edge struct {
			Weight int64 `json:"weight"`
			Found  bool  `json:"found"`
		}
		getJSON(t, ts.URL+"/edge?src=a&dst=b", &edge)
		if !edge.Found || edge.Weight != 5 {
			t.Fatalf("%s: edge = %+v", backend, edge)
		}
	}
	if _, err := NewWithOptions(gss.Config{Width: 32, SeqLen: 4, Candidates: 4},
		Options{Backend: "bogus"}); err == nil {
		t.Fatal("bogus backend accepted")
	}
}

// TestInsertDefaultWeight pins /insert and /ingest to the same
// convention: an omitted weight is one observation.
func TestInsertDefaultWeight(t *testing.T) {
	_, ts := newIngestServer(t, Options{})
	post(t, ts.URL+"/insert", `{"src":"a","dst":"b"}`).Body.Close()
	post(t, ts.URL+"/insert", `[{"src":"a","dst":"b"},{"src":"a","dst":"b","weight":0}]`).Body.Close()
	var edge struct {
		Weight int64 `json:"weight"`
		Found  bool  `json:"found"`
	}
	getJSON(t, ts.URL+"/edge?src=a&dst=b", &edge)
	if !edge.Found || edge.Weight != 2 { // 1 + 1 + explicit 0
		t.Fatalf("edge = %+v, want weight 2", edge)
	}
}

func TestNodesEndpoint(t *testing.T) {
	_, ts := newIngestServer(t, Options{})
	post(t, ts.URL+"/insert", `{"src":"a","dst":"b","weight":1}`).Body.Close()
	var nodes struct {
		Nodes []string `json:"nodes"`
	}
	getJSON(t, ts.URL+"/nodes", &nodes)
	if len(nodes.Nodes) != 2 {
		t.Fatalf("nodes = %v", nodes.Nodes)
	}
}

// drainEstimateSecs turns the pipeline's observed apply cost into the
// Retry-After hint; the table pins the estimate's shape — fallback
// before any observation, round-up, per-worker division, and the
// [1, 30] clamp.
func TestDrainEstimateSecs(t *testing.T) {
	sec := int64(time.Second)
	cases := []struct {
		name    string
		depth   int
		batches int64
		nanos   int64
		workers int
		want    int
	}{
		{"no observations yet", 8, 0, 0, 2, 1},
		{"fast drain rounds up to one second", 4, 100, 100 * int64(time.Millisecond), 2, 1},
		{"one worker at one second per batch", 3, 10, 10 * sec, 1, 4},
		{"two workers halve the estimate", 3, 10, 10 * sec, 2, 2},
		{"deep backlog clamps at 30s", 1000, 1, 2 * sec, 1, 30},
		{"zero workers falls back", 8, 10, 10 * sec, 0, 1},
	}
	for _, tc := range cases {
		if got := drainEstimateSecs(tc.depth, tc.batches, tc.nanos, tc.workers); got != tc.want {
			t.Errorf("%s: drainEstimateSecs(%d, %d, %d, %d) = %d, want %d",
				tc.name, tc.depth, tc.batches, tc.nanos, tc.workers, got, tc.want)
		}
	}
}

// The Retry-After a live 429 carries must track the backlog: with one
// parked worker whose only completed batch took a measurable time, the
// estimate is the observed cost times the queued batches.
func TestRetryAfterTracksDrainState(t *testing.T) {
	p := newPipeline(func(ingestJob) {}, 4, 2)
	defer p.close()
	if got := p.retryAfterSecs(); got != 1 {
		t.Fatalf("retryAfterSecs with no history = %d, want fallback 1", got)
	}
	// Simulate history: 2 batches took 6s total -> avg 3s; empty queue
	// means one in-flight slot over 2 workers -> ceil(3s/2) = 2.
	p.processedBatches.Store(2)
	p.applyNanos.Store(6 * int64(time.Second))
	if got := p.retryAfterSecs(); got != 2 {
		t.Fatalf("retryAfterSecs with 3s avg, empty queue, 2 workers = %d, want 2", got)
	}
}
