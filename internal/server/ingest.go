package server

import (
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stream"
)

// ingestJob is one batch on its way to the sketch, on either ingest
// plane. String-plane jobs carry items; binary-plane jobs carry the
// pre-hashed batch plus (when no arrival stamping rewrote the times)
// the encoded payload views the operation log can append verbatim.
type ingestJob struct {
	items    []stream.Item
	hashed   []stream.HashedItem
	payloads [][]byte
}

func (j ingestJob) len() int {
	if j.hashed != nil {
		return len(j.hashed)
	}
	return len(j.items)
}

// pipeline is the bounded async ingest path: request handlers decode
// the body into batches and try to enqueue them; a fixed worker pool
// drains the queue into the sketch. The queue is a plain buffered
// channel, so "full" is immediate and cheap to detect — that is the
// backpressure signal handlers turn into HTTP 429, pushing flow
// control back to producers instead of buffering without bound.
type pipeline struct {
	apply   func(ingestJob)
	queue   chan ingestJob
	workers int
	wg      sync.WaitGroup

	enqueuedItems    atomic.Int64
	enqueuedBatches  atomic.Int64
	processedItems   atomic.Int64
	processedBatches atomic.Int64
	droppedItems     atomic.Int64
	droppedBatches   atomic.Int64
	applyNanos       atomic.Int64 // total wall time spent inside apply

	closeOnce sync.Once
}

func newPipeline(apply func(ingestJob), queueDepth, workers int) *pipeline {
	p := &pipeline{apply: apply, queue: make(chan ingestJob, queueDepth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pipeline) worker() {
	defer p.wg.Done()
	for job := range p.queue {
		start := time.Now()
		p.apply(job)
		p.applyNanos.Add(time.Since(start).Nanoseconds())
		p.processedItems.Add(int64(job.len()))
		p.processedBatches.Add(1)
	}
}

// retryAfterSecs is the backoff hint a 429 carries: an estimate of how
// long the worker pool needs to drain the queue as it stands, from the
// observed mean per-batch apply cost.
func (p *pipeline) retryAfterSecs() int {
	return drainEstimateSecs(len(p.queue), p.processedBatches.Load(),
		p.applyNanos.Load(), p.workers)
}

// drainEstimateSecs estimates, in whole seconds (rounded up), the time
// `workers` goroutines need to drain `depth` queued batches plus the
// one in flight, given `nanos` total apply time over `batches`
// completed batches. Before the first batch completes there is no
// observation and the historical fixed 1s stands in. Clamped to
// [1, 30]: the estimate is a hint, and a huge backlog should slow
// producers down, not park them for minutes against a queue that
// drains nonlinearly.
func drainEstimateSecs(depth int, batches, nanos int64, workers int) int {
	if batches <= 0 || nanos <= 0 || workers < 1 {
		return 1
	}
	avg := nanos / batches
	est := time.Duration((int64(depth) + 1) * avg / int64(workers))
	secs := int((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// tryEnqueue hands a job to the worker pool without blocking. A false
// return means the queue is full; the job is counted as dropped.
func (p *pipeline) tryEnqueue(job ingestJob) bool {
	select {
	case p.queue <- job:
		p.enqueuedItems.Add(int64(job.len()))
		p.enqueuedBatches.Add(1)
		return true
	default:
		p.droppedItems.Add(int64(job.len()))
		p.droppedBatches.Add(1)
		return false
	}
}

// close stops accepting work, drains the queue and waits for workers.
func (p *pipeline) close() {
	p.closeOnce.Do(func() {
		close(p.queue)
		p.wg.Wait()
	})
}

// IngestStats is the /ingest/stats payload: pipeline configuration and
// counters. PendingItems = EnqueuedItems - ProcessedItems is the items
// accepted but not yet visible to queries.
type IngestStats struct {
	BatchSize     int `json:"batch_size"`
	Workers       int `json:"workers"`
	QueueCapacity int `json:"queue_capacity"`
	QueueDepth    int `json:"queue_depth"` // batches waiting right now

	EnqueuedItems    int64 `json:"enqueued_items"`
	EnqueuedBatches  int64 `json:"enqueued_batches"`
	ProcessedItems   int64 `json:"processed_items"`
	ProcessedBatches int64 `json:"processed_batches"`
	PendingItems     int64 `json:"pending_items"`
	DroppedItems     int64 `json:"dropped_items"`
	DroppedBatches   int64 `json:"dropped_batches"`
}

func (s *Server) ingestStats() IngestStats {
	st := IngestStats{
		BatchSize:     s.opt.BatchSize,
		Workers:       s.opt.Workers,
		QueueCapacity: s.opt.QueueDepth,
	}
	// A stats poll reports on the pool, it must not start one: an idle
	// server stays at zero goroutines.
	p := s.startedPipeline()
	if p == nil {
		return st
	}
	// Load processed before enqueued: workers only ever process what
	// was already enqueued, so this order (plus the clamp) keeps the
	// derived pending count non-negative under concurrent updates.
	proc := p.processedItems.Load()
	enq := p.enqueuedItems.Load()
	pending := enq - proc
	if pending < 0 {
		pending = 0
	}
	st.QueueDepth = len(p.queue)
	st.EnqueuedItems = enq
	st.EnqueuedBatches = p.enqueuedBatches.Load()
	st.ProcessedItems = proc
	st.ProcessedBatches = p.processedBatches.Load()
	st.PendingItems = pending
	st.DroppedItems = p.droppedItems.Load()
	st.DroppedBatches = p.droppedBatches.Load()
	return st
}

// maxIngestBatch bounds the per-request ?batch= override.
const maxIngestBatch = 1 << 16

// handleIngest is the bulk-ingest endpoint. Content-Type selects the
// plane: NDJSON (default) is decoded in batches of ?batch=N items
// (default Options.BatchSize) so the request streams; the binary
// content type (application/x-gss-batch) carries framed pre-hashed
// batches that skip identifier re-hashing entirely. Unknown content
// types answer 415.
//
// Sync mode (default) inserts each batch before reading the next and
// replies 200 once the whole body is ingested. Async mode (?async=1)
// enqueues batches to the worker pool and replies 202 as soon as the
// body is parsed; if the queue fills mid-request the handler replies
// 429 with counts of what was enqueued versus dropped, and the client
// should back off and retry the remainder.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.rejectFollowerWrite(w) {
		return
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	binary, ok := stream.IngestPlane(r.Header.Get("Content-Type"))
	if !ok {
		httpError(w, http.StatusUnsupportedMediaType,
			"unsupported Content-Type %q (want application/x-ndjson or %s)",
			r.Header.Get("Content-Type"), stream.ContentTypeBinary)
		return
	}
	pm := s.met.plane(binary)
	batchSize := s.opt.BatchSize
	if raw := r.URL.Query().Get("batch"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 || n > maxIngestBatch {
			httpError(w, http.StatusBadRequest, "batch must be an integer in [1,%d]", maxIngestBatch)
			return
		}
		batchSize = n
	}
	async := false
	switch r.URL.Query().Get("async") {
	case "", "0", "false":
	case "1", "true":
		async = true
	default:
		httpError(w, http.StatusBadRequest, "async must be 0 or 1")
		return
	}
	if binary {
		s.ingestBinary(w, r, async, pm)
		return
	}

	dec := stream.NewBatchDecoder(&countingReader{r: r.Body, c: pm.bytes}, batchSize)
	// The sync path inserts each batch before decoding the next, so the
	// decoder can recycle one batch slice for the whole request. Async
	// batches are retained by the worker queue and must stay fresh.
	if !async {
		dec.SetReuse(true)
	}
	var items int64
	var batches int64
	for {
		batch := dec.Next()
		if batch == nil {
			break
		}
		s.stampArrival(batch)
		if async {
			if !s.enqueueOr429(w, ingestJob{items: batch}, items, pm) {
				return
			}
		} else {
			s.applyBatch(batch)
		}
		items += int64(len(batch))
		batches++
		pm.items.Add(int64(len(batch)))
		pm.batches.Inc()
	}
	if err := dec.Err(); err != nil {
		// Everything before the bad line was already ingested or
		// enqueued; report how far we got.
		pm.decodeErrors.Inc()
		httpError(w, http.StatusBadRequest, "line %d: %v (%d items accepted)",
			dec.Line(), err, items)
		return
	}
	if async {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		writeBody(w, map[string]interface{}{"mode": "async", "enqueued": items, "batches": batches})
		return
	}
	writeJSON(w, map[string]interface{}{"mode": "sync", "ingested": items, "batches": batches})
}

// enqueueOr429 enqueues one job, replying 429 (and returning false)
// when the ingest queue is full. Retry-After is derived from the
// queue's drain state rather than fixed, so a client backs off in
// proportion to the actual backlog.
func (s *Server) enqueueOr429(w http.ResponseWriter, job ingestJob, accepted int64, pm *planeStats) bool {
	p := s.pipeline()
	if p.tryEnqueue(job) {
		return true
	}
	pm.rejected.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(p.retryAfterSecs()))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	writeBody(w, map[string]interface{}{
		"error":    "ingest queue full",
		"enqueued": accepted,
		"dropped":  int64(job.len()),
	})
	return false
}

// ingestBinary drains a GSB1 body frame by frame. Each frame arrives
// pre-hashed, so the sketch never touches the identifier strings
// again, and on logging primaries the untouched frames' payload bytes
// go to the operation log verbatim — no decode, no re-encode. Only a
// frame whose items needed arrival stamping loses that shortcut: its
// encoded times went stale, so the log takes the re-encoding path.
func (s *Server) ingestBinary(w http.ResponseWriter, r *http.Request, async bool, pm *planeStats) {
	dec := stream.NewBinaryBatchDecoder(&countingReader{r: r.Body, c: pm.bytes})
	// Mirror the NDJSON reuse discipline: the sync path recycles one
	// frame buffer; async jobs are retained by the queue.
	if !async {
		dec.SetReuse(true)
	}
	var items int64
	var batches int64
	for {
		batch := dec.Next()
		if batch == nil {
			break
		}
		payloads := dec.Payloads()
		if s.stampArrivalHashed(batch) {
			// The payload views still encode Time 0; dropping them makes
			// the applier re-encode the stamped items for the log.
			payloads = nil
		}
		job := ingestJob{hashed: batch, payloads: payloads}
		if async {
			if !s.enqueueOr429(w, job, items, pm) {
				return
			}
		} else {
			s.applyHashedBatch(job)
		}
		items += int64(len(batch))
		batches++
		pm.items.Add(int64(len(batch)))
		pm.batches.Inc()
	}
	if err := dec.Err(); err != nil {
		// Whole frames before the bad one were already ingested or
		// enqueued; a bad frame is rejected atomically.
		pm.decodeErrors.Inc()
		httpError(w, http.StatusBadRequest, "frame %d: %v (%d items accepted)",
			dec.Frames()+1, err, items)
		return
	}
	if async {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		writeBody(w, map[string]interface{}{"mode": "async", "enqueued": items, "batches": batches})
		return
	}
	writeJSON(w, map[string]interface{}{"mode": "sync", "ingested": items, "batches": batches})
}

func (s *Server) handleIngestStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ingestStats())
}
