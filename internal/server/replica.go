package server

import (
	"errors"
	"io"
	"net/http"

	"repro/internal/replica"
	"repro/internal/sketch"
)

// Replication glue: durable checkpoints and read-replica fail-over
// (see internal/replica for the mechanics).
//
// A primary given Options.CheckpointDir recovers from the newest valid
// checkpoint at startup, then streams periodic snapshots to that
// directory; a clean Close takes a final checkpoint, so only a crash
// can lose the tail since the last interval. A server given
// Options.FollowURL is a read replica: it polls the primary's
// /snapshot, restores each fetch into a fresh backend off to the side,
// and atomically swaps it behind the read path — queries are served
// throughout, and every write endpoint answers 403.

// initReplication wires checkpoint recovery, the checkpoint loop and
// the follower loop per s.opt. build constructs a fresh empty backend
// of the server's configuration; the follower restores into such a
// backend before swapping it in, so a restore in progress never blocks
// the read path.
func (s *Server) initReplication(build func() (sketch.Sketch, error)) error {
	opt := s.opt
	if opt.FollowURL != "" {
		hot := sketch.NewHot(s.sk)
		s.sk = hot
		s.hot = hot
	}
	if opt.CheckpointDir != "" {
		// Recover before the checkpointer starts: the first periodic
		// checkpoint must already contain the recovered state, not race
		// with the restore.
		used, err := replica.RecoverNewest(opt.CheckpointDir, s.sk.Restore, opt.Logf)
		if err != nil {
			return err
		}
		if used != "" {
			opt.Logf("server: recovered sketch from checkpoint %s", used)
		}
		ck, err := replica.NewCheckpointer(replica.CheckpointConfig{
			Dir:      opt.CheckpointDir,
			Interval: opt.CheckpointInterval,
			Keep:     opt.CheckpointKeep,
			Snapshot: s.sk.Snapshot,
			Logf:     opt.Logf,
		})
		if err != nil {
			return err
		}
		s.ckpt = ck
		ck.Start()
	}
	if opt.FollowURL != "" {
		f, err := replica.NewFollower(replica.FollowerConfig{
			URL:      opt.FollowURL,
			Interval: opt.FollowInterval,
			Apply:    func(r io.Reader) error { return s.applySnapshot(build, r) },
			Logf:     opt.Logf,
		})
		if err != nil {
			return err
		}
		s.fol = f
		f.Start()
	}
	return nil
}

// applySnapshot installs one fetched snapshot: restore into a fresh
// backend with no locks held (readers keep hitting the old sketch),
// then swap pointers under restoreMu so compound queries never see the
// sketch change mid-chain. The fetched body gets the same size cap as
// a /restore upload — a misconfigured or hostile primary streaming
// without end must fail the poll, not OOM the replica.
func (s *Server) applySnapshot(build func() (sketch.Sketch, error), r io.Reader) error {
	fresh, err := build()
	if err != nil {
		return err
	}
	if err := fresh.Restore(io.LimitReader(r, s.opt.MaxRestoreBytes)); err != nil {
		return err
	}
	s.restoreMu.Lock()
	s.hot.Swap(fresh)
	s.restoreMu.Unlock()
	return nil
}

// follower reports whether this server is a read replica — keyed on
// the running poll loop, not the FollowURL option, so a NewFromSketch
// server (where replication options are documented as not wired) never
// 403s writes it would silently drop.
func (s *Server) follower() bool { return s.fol != nil }

// rejectFollowerWrite answers 403 on a write endpoint of a read
// replica and reports whether it did. Followers converge on whatever
// the primary holds at the next poll, so accepting a local write would
// silently drop it.
func (s *Server) rejectFollowerWrite(w http.ResponseWriter) bool {
	if !s.follower() {
		return false
	}
	httpError(w, http.StatusForbidden,
		"read-only follower (following %s): send writes to the primary", s.opt.FollowURL)
	return true
}

// CheckpointNow forces one durable checkpoint and returns its path.
// It errors when the server has no checkpoint directory configured.
func (s *Server) CheckpointNow() (string, error) {
	if s.ckpt == nil {
		return "", errors.New("server: no checkpoint directory configured")
	}
	return s.ckpt.CheckpointNow()
}

// ReplicaStats is the /replica/stats payload: the server's replication
// role plus checkpoint and follower counters when configured.
type ReplicaStats struct {
	Role       string                   `json:"role"` // "primary" or "follower"
	FollowURL  string                   `json:"follow_url,omitempty"`
	Checkpoint *replica.CheckpointStats `json:"checkpoint,omitempty"`
	Follower   *replica.FollowerStats   `json:"follower,omitempty"`
}

func (s *Server) replicaStats() ReplicaStats {
	st := ReplicaStats{Role: "primary"}
	if s.follower() {
		st.Role = "follower"
		st.FollowURL = s.opt.FollowURL
	}
	if s.ckpt != nil {
		cs := s.ckpt.Stats()
		st.Checkpoint = &cs
	}
	if s.fol != nil {
		fs := s.fol.Stats()
		st.Follower = &fs
	}
	return st
}

func (s *Server) handleReplicaStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.replicaStats())
}

// handleCheckpoint (POST /checkpoint) forces a checkpoint — the ops
// hook for taking a durable point right before maintenance.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	path, err := s.CheckpointNow()
	if err != nil {
		if s.ckpt == nil {
			httpError(w, http.StatusConflict, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		}
		return
	}
	writeJSON(w, map[string]string{"path": path})
}
