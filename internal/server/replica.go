package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/oplog"
	"repro/internal/replica"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// Replication glue: durable checkpoints, the append-only operation
// log, and read-replica fail-over (see internal/replica and
// internal/oplog for the mechanics).
//
// A primary given Options.CheckpointDir recovers from the newest valid
// checkpoint at startup, then streams periodic snapshots to that
// directory; a clean Close takes a final checkpoint, so only a crash
// can lose the tail since the last interval. Adding Options.LogDir
// closes that window to the fsync batching interval: every applied
// batch is appended to the log before its request is acknowledged, the
// checkpoint records the log sequence its snapshot covers (in a .meta
// sidecar), and recovery is checkpoint + log replay from that
// sequence. Log segments below the oldest retained checkpoint's
// sequence are retired after each checkpoint, so disk use tracks the
// checkpoint window, not total history.
//
// A server given Options.FollowURL is a read replica: it polls the
// primary's /snapshot (or, with Options.FollowTail, tails its /log and
// applies only the delta), restores into a fresh backend off to the
// side, and atomically swaps it behind the read path — queries are
// served throughout, and every write endpoint answers 403.

// defaultLogSync is the fsync batching window when Options.LogSyncEvery
// is zero.
const defaultLogSync = 50 * time.Millisecond

// initReplication wires the operation log, checkpoint recovery, the
// checkpoint loop and the follower loop per s.opt. build constructs a
// fresh empty backend of the server's configuration; the follower
// restores into such a backend before swapping it in, so a restore in
// progress never blocks the read path.
func (s *Server) initReplication(build func() (sketch.Sketch, error)) error {
	opt := s.opt
	if opt.LogDir != "" && opt.FollowURL != "" {
		return errors.New("server: LogDir and FollowURL are mutually exclusive: a follower tails the primary's log, it does not originate one")
	}
	if opt.FollowURL != "" {
		hot := sketch.NewHot(s.sk)
		s.sk = hot
		s.hot = hot
	}
	if opt.LogDir != "" {
		sync := opt.LogSyncEvery
		if sync == 0 {
			sync = defaultLogSync
		}
		l, err := oplog.Open(oplog.Options{
			Dir:          opt.LogDir,
			SegmentBytes: opt.LogSegmentBytes,
			SyncEvery:    sync,
			Logf:         opt.Logf,
		})
		if err != nil {
			return err
		}
		s.olog = l
	}
	if opt.CheckpointDir != "" {
		// Recover before the checkpointer starts: the first periodic
		// checkpoint must already contain the recovered state, not race
		// with the restore.
		used, meta, err := replica.RecoverNewestWithMeta(opt.CheckpointDir, s.sk.Restore, opt.Logf)
		if err != nil {
			return err
		}
		if used != "" {
			opt.Logf("server: recovered sketch from checkpoint %s", used)
		}
		if s.olog != nil {
			if err := s.replayLog(meta); err != nil {
				return err
			}
		}
		cfg := replica.CheckpointConfig{
			Dir:      opt.CheckpointDir,
			Interval: opt.CheckpointInterval,
			Keep:     opt.CheckpointKeep,
			Snapshot: s.checkpointSnapshot,
			Logf:     opt.Logf,
		}
		if s.olog != nil {
			cfg.Meta = func() []byte {
				return []byte(strconv.FormatUint(s.snapSeq.Load(), 10))
			}
			cfg.AfterCheckpoint = s.retireLogSegments
		}
		ck, err := replica.NewCheckpointer(cfg)
		if err != nil {
			return err
		}
		s.ckpt = ck
		ck.Start()
	} else if s.olog != nil {
		// No checkpoints: the log is the only durable state; replay all
		// of it.
		if err := s.replayLog(nil); err != nil {
			return err
		}
	}
	if opt.FollowURL != "" {
		f, err := replica.NewFollower(replica.FollowerConfig{
			URL:      opt.FollowURL,
			Interval: opt.FollowInterval,
			Apply:    func(r io.Reader) error { return s.applySnapshot(build, r) },
			TailLog:  opt.FollowTail,
			ApplyItems: func(items []stream.Item) error {
				// Tailed items were stamped and ordered by the primary;
				// they go straight into the hot sketch.
				s.sk.InsertBatch(items)
				return nil
			},
			MaxSnapshotBytes: opt.MaxRestoreBytes,
			Logf:             opt.Logf,
		})
		if err != nil {
			return err
		}
		s.fol = f
		f.Start()
	}
	return nil
}

// replayLog brings the sketch from the recovered checkpoint's state to
// the log's end. meta is the checkpoint's sidecar (the log sequence
// its snapshot captured); nil or empty means no checkpoint was
// recovered and the whole retained log replays.
func (s *Server) replayLog(meta []byte) error {
	var seq uint64
	if len(meta) > 0 {
		n, err := strconv.ParseUint(strings.TrimSpace(string(meta)), 10, 64)
		if err != nil {
			return fmt.Errorf("server: bad checkpoint meta %q: %v", meta, err)
		}
		seq = n
	}
	if next := s.olog.NextSeq(); seq > next {
		// The checkpoint is newer than the log — the log directory was
		// lost or swapped. Fast-forward so new appends get sequence
		// numbers the checkpoint does not already cover; the skipped
		// range reads as retired, which sends tailing followers through
		// their snapshot fallback.
		s.opt.Logf("server: checkpoint seq %d is beyond the log end %d; fast-forwarding the log", seq, next)
		return s.olog.SkipTo(seq)
	}
	if oldest := s.olog.OldestSeq(); seq < oldest {
		// The log retired records below the recovered state's sequence
		// (e.g. the checkpoint directory was wiped but the log kept
		// rolling). Nothing can resurrect the gap; replay what remains
		// so at least the retained suffix is present.
		s.opt.Logf("server: log records [%d,%d) were retired; replaying from %d (state may be missing the gap)",
			seq, oldest, oldest)
		seq = oldest
	}
	cur := s.olog.Cursor(seq)
	n := sketch.Replay(s.sk, cur, s.opt.BatchSize)
	if err := cur.Err(); err != nil {
		return fmt.Errorf("server: replaying log from seq %d: %w", seq, err)
	}
	s.replayed.Store(n)
	if n > 0 {
		s.opt.Logf("server: replayed %d log items from seq %d", n, seq)
	}
	return nil
}

// checkpointSnapshot is the Snapshot func handed to the checkpointer.
// On a logging primary it serializes the sketch into memory under the
// exclusive side of the apply barrier while capturing the log's next
// sequence — the pair the .meta sidecar persists — so replay from that
// sequence reproduces exactly the items the snapshot had absorbed.
func (s *Server) checkpointSnapshot(w io.Writer) error {
	if s.olog == nil {
		return s.sk.Snapshot(w)
	}
	s.applyMu.Lock()
	seq := s.olog.NextSeq()
	var buf bytes.Buffer
	err := s.sk.Snapshot(&buf)
	s.applyMu.Unlock()
	if err != nil {
		return err
	}
	s.snapSeq.Store(seq)
	_, err = io.Copy(w, &buf)
	return err
}

// retireLogSegments runs after each successful checkpoint: it seals
// the active segment and retires everything below the *oldest*
// retained checkpoint's sequence — not the newest — so that if the
// newest checkpoint proves corrupt at recovery, every older retained
// one still pairs with the log records it needs for replay.
func (s *Server) retireLogSegments() {
	cks, err := replica.List(s.opt.CheckpointDir)
	if err != nil || len(cks) == 0 {
		return
	}
	minSeq := uint64(math.MaxUint64)
	for _, ck := range cks {
		meta := replica.ReadMeta(ck.Path)
		if meta == nil {
			return // a pre-log checkpoint is retained; retire nothing
		}
		n, err := strconv.ParseUint(strings.TrimSpace(string(meta)), 10, 64)
		if err != nil {
			return
		}
		if n < minSeq {
			minSeq = n
		}
	}
	if minSeq == 0 || minSeq == math.MaxUint64 {
		return
	}
	if err := s.olog.Rotate(); err != nil {
		s.opt.Logf("server: rotating oplog: %v", err)
		return
	}
	s.olog.Retain(minSeq)
}

// applySnapshot installs one fetched snapshot: restore into a fresh
// backend with no locks held (readers keep hitting the old sketch),
// then swap pointers under restoreMu so compound queries never see the
// sketch change mid-chain. The fetched body gets the same size cap as
// a /restore upload — a misconfigured or hostile primary streaming
// without end must fail the poll, not OOM the replica.
func (s *Server) applySnapshot(build func() (sketch.Sketch, error), r io.Reader) error {
	fresh, err := build()
	if err != nil {
		return err
	}
	if err := fresh.Restore(io.LimitReader(r, s.opt.MaxRestoreBytes)); err != nil {
		return err
	}
	s.restoreMu.Lock()
	s.hot.Swap(fresh)
	s.restoreMu.Unlock()
	return nil
}

// follower reports whether this server is a read replica — keyed on
// the running poll loop, not the FollowURL option, so a NewFromSketch
// server (where replication options are documented as not wired) never
// 403s writes it would silently drop.
func (s *Server) follower() bool { return s.fol != nil }

// rejectFollowerWrite answers 403 on a write endpoint of a read
// replica and reports whether it did. Followers converge on whatever
// the primary holds at the next poll, so accepting a local write would
// silently drop it.
func (s *Server) rejectFollowerWrite(w http.ResponseWriter) bool {
	if !s.follower() {
		return false
	}
	httpError(w, http.StatusForbidden,
		"read-only follower (following %s): send writes to the primary", s.opt.FollowURL)
	return true
}

// CheckpointNow forces one durable checkpoint and returns its path.
// It errors when the server has no checkpoint directory configured.
func (s *Server) CheckpointNow() (string, error) {
	if s.ckpt == nil {
		return "", errors.New("server: no checkpoint directory configured")
	}
	return s.ckpt.CheckpointNow()
}

// ReplicaStats is the /replica/stats payload: the server's replication
// role plus checkpoint, operation-log and follower counters when
// configured. ReplayedItems is how many log items startup recovery
// replayed on top of the recovered checkpoint.
type ReplicaStats struct {
	Role          string                   `json:"role"` // "primary" or "follower"
	FollowURL     string                   `json:"follow_url,omitempty"`
	Checkpoint    *replica.CheckpointStats `json:"checkpoint,omitempty"`
	Log           *oplog.Stats             `json:"log,omitempty"`
	ReplayedItems int64                    `json:"replayed_items,omitempty"`
	Follower      *replica.FollowerStats   `json:"follower,omitempty"`
}

func (s *Server) replicaStats() ReplicaStats {
	st := ReplicaStats{Role: "primary"}
	if s.follower() {
		st.Role = "follower"
		st.FollowURL = s.opt.FollowURL
	}
	if s.ckpt != nil {
		cs := s.ckpt.Stats()
		st.Checkpoint = &cs
	}
	if s.olog != nil {
		ls := s.olog.Stats()
		st.Log = &ls
		st.ReplayedItems = s.replayed.Load()
	}
	if s.fol != nil {
		fs := s.fol.Stats()
		st.Follower = &fs
	}
	return st
}

func (s *Server) handleReplicaStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.replicaStats())
}

// handleCheckpoint (POST /checkpoint) forces a checkpoint — the ops
// hook for taking a durable point right before maintenance.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	path, err := s.CheckpointNow()
	if err != nil {
		if s.ckpt == nil {
			httpError(w, http.StatusConflict, "%v", err)
		} else {
			httpError(w, http.StatusInternalServerError, "checkpoint: %v", err)
		}
		return
	}
	writeJSON(w, map[string]string{"path": path})
}
