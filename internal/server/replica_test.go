package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/gss"
	"repro/internal/replica"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// quiet silences a test server's operational log (expected checkpoint
// warnings would otherwise spam the test output); routing it through
// t.Logf keeps it visible on failure.
func quiet(t *testing.T) func(string, ...interface{}) {
	return func(format string, args ...interface{}) { t.Logf(format, args...) }
}

func replicaItems(n int) []stream.Item {
	items := make([]stream.Item, n)
	for i := range items {
		items[i] = stream.Item{
			Src:    fmt.Sprintf("s%d", i%50),
			Dst:    fmt.Sprintf("d%d", i%31),
			Weight: int64(i%7) + 1,
			Time:   1 + int64(i),
		}
	}
	return items
}

func ingestAll(t *testing.T, url string, items []stream.Item) {
	t.Helper()
	resp := post(t, url+"/ingest", ndjson(t, items).String())
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("ingest status %d: %s", resp.StatusCode, b)
	}
}

func heavyBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/heavy?min=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heavy status %d: %s", resp.StatusCode, b)
	}
	return string(b)
}

// TestKillAndRestartRecovery is the durability acceptance scenario: a
// primary is killed without any shutdown courtesy and restarted over
// the same checkpoint directory; it must answer /stats and /heavy
// exactly as it did at its last durable point.
func TestKillAndRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	opt := Options{Backend: sketch.BackendSharded, Shards: 4,
		CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: quiet(t)}

	s1, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	items := replicaItems(2000)
	ingestAll(t, ts1.URL, items[:1500])

	// Force a durable point over the ops endpoint, then write more that
	// will be lost with the crash.
	resp := post(t, ts1.URL+"/checkpoint", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}
	var wantStats gss.Stats
	getJSON(t, ts1.URL+"/stats", &wantStats)
	wantHeavy := heavyBody(t, ts1.URL)
	ingestAll(t, ts1.URL, items[1500:]) // post-checkpoint tail, lost by the crash

	// Crash: drop the listener, never call Close (no final checkpoint).
	ts1.Close()

	s2, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	var gotStats gss.Stats
	getJSON(t, ts2.URL+"/stats", &gotStats)
	if gotStats != wantStats {
		t.Fatalf("restarted stats = %+v, want pre-kill %+v", gotStats, wantStats)
	}
	if gotStats.Items != 1500 {
		t.Fatalf("recovered items = %d, want the 1500 checkpointed ones", gotStats.Items)
	}
	if got := heavyBody(t, ts2.URL); got != wantHeavy {
		t.Fatalf("restarted /heavy diverges:\n got %s\nwant %s", got, wantHeavy)
	}
}

// TestCloseTakesFinalCheckpoint: a clean shutdown loses nothing even
// if no periodic tick ever fired.
func TestCloseTakesFinalCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	opt := Options{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: quiet(t)}

	s1, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	ingestAll(t, ts1.URL, replicaItems(500))
	ts1.Close()
	s1.Close()

	s2, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Sketch().Stats(); st.Items != 500 {
		t.Fatalf("clean shutdown lost items: recovered %d of 500", st.Items)
	}
}

// TestRecoverySkipsCorruptCheckpoint: a torn newest checkpoint must not
// take the server down or win recovery — the newest valid one does.
func TestRecoverySkipsCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	opt := Options{CheckpointDir: dir, CheckpointInterval: time.Hour, Logf: quiet(t)}

	s1, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	ingestAll(t, ts1.URL, replicaItems(300))
	if _, err := s1.CheckpointNow(); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// Tear the "newest" checkpoint two ways a crash could: one
	// truncated mid-write, one bit-flipped.
	cks, err := replica.List(dir)
	if err != nil || len(cks) == 0 {
		t.Fatalf("checkpoints: %v %v", cks, err)
	}
	valid, err := os.ReadFile(cks[len(cks)-1].Path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte(nil), valid[:len(valid)/3]...)
	if err := os.WriteFile(filepath.Join(dir, "checkpoint-0000000000000098.gss"), torn, 0o644); err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), valid...)
	flipped[2] ^= 0xff // break the magic
	if err := os.WriteFile(filepath.Join(dir, "checkpoint-0000000000000099.gss"), flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	var warnings int
	opt.Logf = func(format string, args ...interface{}) {
		if strings.Contains(format, "skipping") {
			warnings++
		}
		t.Logf(format, args...)
	}
	s2, err := NewWithOptions(cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Sketch().Stats(); st.Items != 300 {
		t.Fatalf("recovered %d items, want 300 from the valid checkpoint", st.Items)
	}
	if warnings != 2 {
		t.Fatalf("corrupt-checkpoint warnings = %d, want 2", warnings)
	}
}

// TestFollowerServesReadsRejectsWrites is the fail-over acceptance
// scenario: a follower converges on the primary's state within one
// poll interval, serves every read endpoint, and answers 403 on every
// write endpoint.
func TestFollowerServesReadsRejectsWrites(t *testing.T) {
	cfg := gss.Config{Width: 64, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	primary, tsP := newIngestServer(t, Options{Backend: sketch.BackendSharded, Shards: 4})
	_ = primary
	items := replicaItems(1000)
	ingestAll(t, tsP.URL, items[:600])

	follower, err := NewWithOptions(cfg, Options{Backend: sketch.BackendSharded, Shards: 4,
		FollowURL: tsP.URL, FollowInterval: 25 * time.Millisecond, Logf: quiet(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Close)
	tsF := httptest.NewServer(follower.Handler())
	t.Cleanup(tsF.Close)

	statsOf := func(url string) gss.Stats {
		var st gss.Stats
		getJSON(t, url+"/stats", &st)
		return st
	}
	waitConverged := func(want gss.Stats) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for statsOf(tsF.URL) != want {
			if time.Now().After(deadline) {
				t.Fatalf("follower never converged: %+v vs %+v", statsOf(tsF.URL), want)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitConverged(statsOf(tsP.URL))
	if got, want := heavyBody(t, tsF.URL), heavyBody(t, tsP.URL); got != want {
		t.Fatalf("follower /heavy diverges:\n got %s\nwant %s", got, want)
	}

	// New primary writes become visible on the follower.
	ingestAll(t, tsP.URL, items[600:])
	waitConverged(statsOf(tsP.URL))

	// Every write endpoint answers 403 with the primary's address.
	writes := []struct{ path, body string }{
		{"/insert", `{"src":"a","dst":"b"}`},
		{"/ingest", `{"src":"a","dst":"b"}`},
		{"/ingest?async=1", `{"src":"a","dst":"b"}`},
		{"/restore", "whatever"},
	}
	for _, c := range writes {
		resp := post(t, tsF.URL+c.path, c.body)
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Fatalf("follower POST %s = %d, want 403", c.path, resp.StatusCode)
		}
		if !strings.Contains(string(b), tsP.URL) {
			t.Fatalf("403 body does not name the primary: %s", b)
		}
	}

	// Role and counters are visible for operators.
	var rs ReplicaStats
	getJSON(t, tsF.URL+"/replica/stats", &rs)
	if rs.Role != "follower" || rs.FollowURL != tsP.URL {
		t.Fatalf("replica stats = %+v", rs)
	}
	if rs.Follower == nil || rs.Follower.Applied < 1 || rs.Follower.LastAppliedUnix == 0 {
		t.Fatalf("follower counters = %+v", rs.Follower)
	}
	var prs ReplicaStats
	getJSON(t, tsP.URL+"/replica/stats", &prs)
	if prs.Role != "primary" || prs.Follower != nil {
		t.Fatalf("primary replica stats = %+v", prs)
	}
}

// TestFollowerSurvivesPrimaryDeath: when the primary dies, the
// follower keeps serving its last-applied state — that is the whole
// point of a read replica.
func TestFollowerSurvivesPrimaryDeath(t *testing.T) {
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}
	_, tsP := newIngestServer(t, Options{})
	ingestAll(t, tsP.URL, replicaItems(400))

	follower, err := NewWithOptions(cfg, Options{
		FollowURL: tsP.URL, FollowInterval: 20 * time.Millisecond, Logf: quiet(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Close)
	tsF := httptest.NewServer(follower.Handler())
	t.Cleanup(tsF.Close)

	deadline := time.Now().Add(5 * time.Second)
	for follower.Sketch().Stats().Items != 400 {
		if time.Now().After(deadline) {
			t.Fatal("follower never caught up")
		}
		time.Sleep(5 * time.Millisecond)
	}
	tsP.Close() // primary dies

	// Wait until the follower has noticed (a failed poll), then reads
	// must still work against the stale-but-available state.
	deadline = time.Now().Add(5 * time.Second)
	for {
		var rs ReplicaStats
		getJSON(t, tsF.URL+"/replica/stats", &rs)
		if rs.Follower != nil && rs.Follower.Failed > 0 {
			if rs.Follower.LastError == "" {
				t.Fatalf("failed poll left no LastError: %+v", rs.Follower)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never recorded the primary's death")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var st gss.Stats
	getJSON(t, tsF.URL+"/stats", &st)
	if st.Items != 400 {
		t.Fatalf("follower lost state after primary death: %d items", st.Items)
	}
}

// TestReplicationLoopsStopOnClose guards the PR 2 lazy-pool regression
// class: a server with both replication loops (plus an async ingest
// pool) must return to the baseline goroutine count after Close.
func TestReplicationLoopsStopOnClose(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := gss.Config{Width: 32, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}

	primary, err := NewWithOptions(cfg, Options{
		CheckpointDir: t.TempDir(), CheckpointInterval: 10 * time.Millisecond, Logf: quiet(t)})
	if err != nil {
		t.Fatal(err)
	}
	tsP := httptest.NewServer(primary.Handler())
	follower, err := NewWithOptions(cfg, Options{
		FollowURL: tsP.URL, FollowInterval: 10 * time.Millisecond, Logf: quiet(t)})
	if err != nil {
		t.Fatal(err)
	}
	tsF := httptest.NewServer(follower.Handler())

	// Start the async pool on the primary too, and let a few checkpoint
	// and poll ticks fire.
	rec := httptest.NewRecorder()
	primary.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/ingest?async=1",
		strings.NewReader(`{"src":"a","dst":"b"}`)))
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async ingest status %d", rec.Code)
	}
	time.Sleep(30 * time.Millisecond)

	tsF.Close()
	follower.Close()
	tsP.Close()
	primary.Close()
	waitForGoroutines(t, before)
}

// snapshotFailSketch wraps a Sketch with a Snapshot that fails after
// writing a partial prefix — the torn-snapshot scenario.
type snapshotFailSketch struct{ sketch.Sketch }

func (s snapshotFailSketch) Snapshot(w io.Writer) error {
	if _, err := w.Write([]byte("partial snapshot bytes")); err != nil {
		return err
	}
	return errors.New("sketch exploded mid-snapshot")
}

// TestSnapshotErrorIsA500 is the torn-snapshot regression test: a
// mid-stream Snapshot failure must surface as an HTTP error, never as
// a truncated 200 body a follower or checkpoint would ingest.
func TestSnapshotErrorIsA500(t *testing.T) {
	base, err := sketch.New(sketch.BackendSingle, gss.Config{
		Width: 16, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4}, sketch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewFromSketch(snapshotFailSketch{base}, Options{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("snapshot status = %d, want 500 (body %q)", resp.StatusCode, body)
	}
	if bytes.Contains(body, []byte("partial snapshot bytes")) {
		t.Fatalf("torn snapshot bytes leaked to the client: %q", body)
	}
}

// TestRestoreBodyCap: /restore must refuse bodies over the configured
// limit instead of buffering them whole.
func TestRestoreBodyCap(t *testing.T) {
	s, err := NewWithOptions(
		gss.Config{Width: 16, FingerprintBits: 16, Rooms: 2, SeqLen: 4, Candidates: 4},
		Options{MaxRestoreBytes: 32 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := post(t, ts.URL+"/restore", strings.Repeat("x", 64*1024))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized restore status = %d, want 413 (body %q)", resp.StatusCode, body)
	}

	// A snapshot inside the limit still restores.
	var buf bytes.Buffer
	if err := s.Sketch().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 32*1024 {
		t.Fatalf("test snapshot unexpectedly large: %d bytes", buf.Len())
	}
	resp = post(t, ts.URL+"/restore", buf.String())
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-limit restore status = %d", resp.StatusCode)
	}
}

// TestFollowerWindowedBackend: fail-over works on the windowed backend
// too — the snapshot carries generations and the epoch cursor, so the
// follower's window is positioned exactly like the primary's.
func TestFollowerWindowedBackend(t *testing.T) {
	cfg := gss.Config{Width: 48, FingerprintBits: 16, Rooms: 2, SeqLen: 8, Candidates: 8}
	primary, err := NewWithOptions(cfg, Options{Backend: sketch.BackendWindowed,
		WindowSpan: 100, WindowGenerations: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(primary.Close)
	tsP := httptest.NewServer(primary.Handler())
	t.Cleanup(tsP.Close)
	items := windowItems(1200, 100, 5)
	ingestAll(t, tsP.URL, items)

	follower, err := NewWithOptions(cfg, Options{Backend: sketch.BackendWindowed,
		WindowSpan: 100, WindowGenerations: 4,
		FollowURL: tsP.URL, FollowInterval: 20 * time.Millisecond, Logf: quiet(t)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(follower.Close)

	want := primary.Sketch().Stats()
	deadline := time.Now().Add(5 * time.Second)
	for follower.Sketch().Stats() != want {
		if time.Now().After(deadline) {
			t.Fatalf("windowed follower never converged: %+v vs %+v",
				follower.Sketch().Stats(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if want.ExpiredGenerations == 0 {
		t.Fatal("test stream never rotated the window; weak test")
	}
}
